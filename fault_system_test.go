package lfrc_test

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"lfrc"
)

// faultWorkload runs a fixed single-threaded op sequence against sys and
// returns its firing schedule rendered as "point@attempt" strings.
func faultWorkload(t *testing.T, sys *lfrc.System) []string {
	t.Helper()
	d, err := sys.NewDeque()
	if err != nil {
		t.Fatal(err)
	}
	set, err := sys.NewSet()
	if err != nil {
		t.Fatal(err)
	}
	for i := lfrc.Value(1); i <= 300; i++ {
		if err := d.PushRight(i); err != nil {
			t.Fatalf("PushRight(%d): %v", i, err)
		}
		if i%3 == 0 {
			d.PopLeft()
		}
		if _, err := set.Insert(i % 64); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		if i%5 == 0 {
			set.Delete(i % 64)
		}
	}
	d.Close()
	set.Close()
	var out []string
	for _, f := range sys.FaultSchedule() {
		out = append(out, f.Name+"@"+itoa(f.Attempt))
	}
	return out
}

func itoa(n uint64) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestFaultDeterminism is the tentpole guarantee at the System level: the
// same plan and seed reproduce the identical firing schedule on identical
// workloads, and a different seed produces a different one.
func TestFaultDeterminism(t *testing.T) {
	const plan = "core.load:p=0.05;core.dcas:p=0.1;snark.pushright:p=0.02;set.insert:p=0.02"
	build := func(seed uint64) *lfrc.System {
		sys, err := lfrc.New(lfrc.WithFaultPlan(plan), lfrc.WithFaultSeed(seed))
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	a := build(12345)
	b := build(12345)
	c := build(54321)
	defer a.Close()
	defer b.Close()
	defer c.Close()

	schedA := faultWorkload(t, a)
	schedB := faultWorkload(t, b)
	schedC := faultWorkload(t, c)

	if len(schedA) == 0 {
		t.Fatal("plan injected nothing; the workload or probabilities are off")
	}
	if strings.Join(schedA, " ") != strings.Join(schedB, " ") {
		t.Errorf("same seed diverged:\n a: %v\n b: %v", schedA, schedB)
	}
	if strings.Join(schedA, " ") == strings.Join(schedC, " ") {
		t.Error("different seeds produced identical schedules")
	}
	sa, sb := a.Stats(), b.Stats()
	if sa.Fault.Injected != sb.Fault.Injected {
		t.Errorf("same seed injected %d vs %d total", sa.Fault.Injected, sb.Fault.Injected)
	}
	if !sa.Fault.Enabled || sa.Fault.Seed != 12345 {
		t.Errorf("Fault stats surface wrong: %+v", sa.Fault)
	}
}

func TestFaultPlanRejected(t *testing.T) {
	if _, err := lfrc.New(lfrc.WithFaultPlan("no.such.point:p=0.5")); err == nil {
		t.Error("New accepted an unknown injection point")
	}
	if _, err := lfrc.New(lfrc.WithFaultPlan("core.load:p=7")); err == nil {
		t.Error("New accepted probability > 1")
	}
}

// TestFaultChaosSweep is the correctness acceptance gate: across multiple
// seeds, concurrent workloads on all four structures under fault injection
// must leave zero lifecycle violations, a clean quiescent rc audit, and zero
// leaked objects. Run under -race by `make check-fault`.
func TestFaultChaosSweep(t *testing.T) {
	const plan = "core.*:p=0.01;snark.*:p=0.02;queue.*:p=0.02;stack.*:p=0.02;set.*:p=0.02;mem.alloc:p=0.002;mem.alloc.slow:p=0.01"
	for _, seed := range []uint64{1, 7, 20260805} {
		seed := seed
		t.Run("seed="+itoa(seed), func(t *testing.T) {
			sys, err := lfrc.New(
				lfrc.WithFaultPlan(plan),
				lfrc.WithFaultSeed(seed),
				lfrc.WithHeapPressurePolicy(lfrc.DefaultHeapPressurePolicy()),
				lfrc.WithLifecycleLedger(1),
			)
			if err != nil {
				t.Fatal(err)
			}
			defer sys.Close()
			d, err := sys.NewDeque()
			if err != nil {
				t.Fatal(err)
			}
			q, err := sys.NewQueue()
			if err != nil {
				t.Fatal(err)
			}
			st, err := sys.NewStack()
			if err != nil {
				t.Fatal(err)
			}
			set, err := sys.NewSet()
			if err != nil {
				t.Fatal(err)
			}

			const workers, opsPer = 4, 400
			var wg sync.WaitGroup
			errc := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(id uint64) {
					defer wg.Done()
					rng := id*0x9E3779B97F4A7C15 + seed
					for i := 0; i < opsPer; i++ {
						rng = rng*6364136223846793005 + 1442695040888963407
						v := lfrc.Value(rng >> 16 & 0xFFFF)
						var err error
						switch rng % 8 {
						case 0:
							err = d.PushLeft(v)
						case 1:
							err = d.PushRight(v)
						case 2:
							d.PopLeft()
						case 3:
							err = q.Enqueue(v)
						case 4:
							q.Dequeue()
						case 5:
							err = st.Push(v)
						case 6:
							_, err = set.Insert(v)
						case 7:
							st.Pop()
							set.Delete(v)
						}
						if err != nil && !errors.Is(err, lfrc.ErrOutOfMemory) {
							errc <- err
							return
						}
					}
				}(uint64(w))
			}
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Fatalf("worker error: %v", err)
			}

			if vs := sys.AuditPass(); len(vs) != 0 {
				t.Errorf("lifecycle auditor flagged %d violations: %+v", len(vs), vs[0])
			}
			if all := sys.Violations(); len(all) != 0 {
				t.Errorf("%d lifecycle violations accumulated", len(all))
			}
			if audit := sys.Audit(); len(audit) != 0 {
				t.Errorf("rc audit: %v", audit)
			}
			d.Close()
			q.Close()
			st.Close()
			set.Close()
			sys.DrainZombies(0)
			if live := sys.Stats().Heap.LiveObjects; live != 0 {
				t.Errorf("%d objects leaked after close", live)
			}
			if sys.Stats().Fault.Injected == 0 {
				t.Error("sweep injected nothing; plan or workload is off")
			}
		})
	}
}

// TestFaultDisabledZeroSurface locks the default: without WithFaultPlan the
// injector is absent, Stats reports it disabled, and the schedule is empty.
func TestFaultDisabledZeroSurface(t *testing.T) {
	sys, err := lfrc.New()
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if s := sys.Stats(); s.Fault.Enabled || s.Fault.Injected != 0 || len(s.Fault.Points) != 0 {
		t.Errorf("disabled fault surface not zero: %+v", s.Fault)
	}
	if sched := sys.FaultSchedule(); len(sched) != 0 {
		t.Errorf("disabled injector recorded %d firings", len(sched))
	}
}
