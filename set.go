package lfrc

import (
	"iter"

	"lfrc/internal/dlist"
)

// Set is a GC-independent lock-free sorted set over uint64 keys, built
// directly on the LFRC operations with a DCAS-based marked-node linked list
// (see internal/dlist). It demonstrates the methodology on a structure the
// paper did not itself transform, using the mixed pointer/scalar DCAS
// extension its §2.1 anticipates.
type Set struct {
	l *dlist.List
	handle
}

// NewSet creates an empty set on this system.
func (s *System) NewSet() (*Set, error) {
	ts, err := s.setTypes.get(s.heap, dlist.RegisterTypes)
	if err != nil {
		return nil, err
	}
	var l *dlist.List
	if err := s.withPressure(func() error {
		var err error
		l, err = dlist.New(s.rc, ts)
		return err
	}); err != nil {
		return nil, err
	}
	return &Set{l: l, handle: s.newHandle(l.Anchor(), "set", l.Close)}, nil
}

// Insert adds k to the set; it returns false (and no error) if k was already
// present. It fails with ErrValueRange if k exceeds MaxValue, ErrClosed
// after Close, and ErrOutOfMemory if the heap is exhausted (after the
// heap-pressure policy, if any, has run).
func (st *Set) Insert(k Value) (bool, error) {
	if st.closed.Load() {
		return false, ErrClosed
	}
	added, err := st.l.Insert(k)
	if err != nil {
		err = st.sys.retryPressure(err, func() error {
			var e error
			added, e = st.l.Insert(k)
			return e
		})
	}
	return added, err
}

// Delete removes k, returning whether this call removed it.
func (st *Set) Delete(k Value) bool { return st.l.Delete(k) }

// Contains reports whether k is in the set.
func (st *Set) Contains(k Value) bool { return st.l.Contains(k) }

// PopMin removes and returns the smallest element — the set doubles as a
// priority queue; ok is false when the set is observed empty.
func (st *Set) PopMin() (k Value, ok bool) { return st.l.PopMin() }

// Len counts the elements. Exact at quiescence; a snapshot otherwise.
func (st *Set) Len() int { return st.l.Len() }

// All returns an iterator over the elements in ascending order:
//
//	for k := range st.All() { use(k) }
//
// The traversal holds a counted reference to the node it stands on — and
// releases it even on early break — so concurrent deleters can never free
// the ground under it. The sequence is exact at quiescence and a consistent
// snapshot of the traversal path otherwise; it does not consume the set. A
// closed set yields nothing.
func (st *Set) All() iter.Seq[Value] {
	return func(yield func(Value) bool) {
		if st.closed.Load() {
			return
		}
		st.l.Range(yield)
	}
}

// Keys returns the elements in ascending order: it is All collected into a
// slice. Exact at quiescence.
func (st *Set) Keys() []Value {
	var out []Value
	for k := range st.All() {
		out = append(out, k)
	}
	return out
}
