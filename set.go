package lfrc

import "lfrc/internal/dlist"

// Set is a GC-independent lock-free sorted set over uint64 keys, built
// directly on the LFRC operations with a DCAS-based marked-node linked list
// (see internal/dlist). It demonstrates the methodology on a structure the
// paper did not itself transform, using the mixed pointer/scalar DCAS
// extension its §2.1 anticipates.
type Set struct {
	l *dlist.List
	handle
}

// NewSet creates an empty set on this system.
func (s *System) NewSet() (*Set, error) {
	ts, err := s.setTypes.get(s.heap, dlist.RegisterTypes)
	if err != nil {
		return nil, err
	}
	l, err := dlist.New(s.rc, ts)
	if err != nil {
		return nil, err
	}
	return &Set{l: l, handle: s.newHandle(l.Anchor(), l.Close)}, nil
}

// Insert adds k to the set; it returns false (and no error) if k was
// already present. Keys must be at most MaxValue.
func (st *Set) Insert(k Value) (bool, error) { return st.l.Insert(k) }

// Delete removes k, returning whether this call removed it.
func (st *Set) Delete(k Value) bool { return st.l.Delete(k) }

// Contains reports whether k is in the set.
func (st *Set) Contains(k Value) bool { return st.l.Contains(k) }

// PopMin removes and returns the smallest element — the set doubles as a
// priority queue; ok is false when the set is observed empty.
func (st *Set) PopMin() (k Value, ok bool) { return st.l.PopMin() }

// Len counts the elements. Exact at quiescence; a snapshot otherwise.
func (st *Set) Len() int { return st.l.Len() }

// Keys returns the elements in ascending order. Exact at quiescence.
func (st *Set) Keys() []Value { return st.l.Keys() }
