package lfrc

// ParseEngine resolves an engine name ("locking" or "mcas", as printed by
// Engine.String) to its Engine value. It is the inverse of String and the
// canonical way for command-line tools to accept an -engine flag; Engine also
// implements flag.Value, so flag.Var(&engine, "engine", ...) works directly.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "locking":
		return EngineLocking, nil
	case "mcas":
		return EngineMCAS, nil
	default:
		return 0, unknownNameError("engine", s, "locking", "mcas")
	}
}

// Set implements flag.Value: together with String it lets an Engine variable
// be bound straight to a command-line flag.
func (e *Engine) Set(s string) error {
	v, err := ParseEngine(s)
	if err != nil {
		return err
	}
	*e = v
	return nil
}
