package lfrc_test

import (
	"math/rand"
	"sync"
	"testing"

	"lfrc"
)

// TestSplitStrategySystem runs the full public surface under the split RC
// strategy on both engines: structure round trips, a quiescent Audit (which
// must understand weighted links), a Census (zero mismatches, no false
// cycles), the backup collector, and clean teardown.
func TestSplitStrategySystem(t *testing.T) {
	for name, sys := range systems(t, lfrc.WithRCStrategy(lfrc.RCSplit)) {
		t.Run(name, func(t *testing.T) {
			if got := sys.RCStrategyName(); got != "split" {
				t.Fatalf("RCStrategyName = %q, want split", got)
			}
			if got := sys.Stats().RCStrategy; got != "split" {
				t.Fatalf("Stats().RCStrategy = %q, want split", got)
			}

			d, err := sys.NewDeque()
			if err != nil {
				t.Fatalf("NewDeque: %v", err)
			}
			q, err := sys.NewQueue()
			if err != nil {
				t.Fatalf("NewQueue: %v", err)
			}
			for v := lfrc.Value(1); v <= 64; v++ {
				if err := d.PushRight(v); err != nil {
					t.Fatal(err)
				}
				if err := q.Enqueue(v); err != nil {
					t.Fatal(err)
				}
			}
			for v := lfrc.Value(1); v <= 32; v++ {
				if got, ok := d.PopLeft(); !ok || got != v {
					t.Fatalf("PopLeft = (%d,%v), want (%d,true)", got, ok, v)
				}
				if got, ok := q.Dequeue(); !ok || got != v {
					t.Fatalf("Dequeue = (%d,%v), want (%d,true)", got, ok, v)
				}
			}

			// Quiescent audit must re-derive counts through the link codec.
			if vs := sys.Audit(); len(vs) != 0 {
				t.Fatalf("Audit under split: %d violations, first %s", len(vs), vs[0])
			}
			snap := sys.Census()
			if snap.RCMismatchCount != 0 {
				t.Fatalf("census mismatches = %d (first %+v)", snap.RCMismatchCount, snap.RCMismatches)
			}
			if snap.CycleCount != 0 {
				t.Fatalf("census found %d false cycles", snap.CycleCount)
			}
			if snap.Unreachable.Objects != 0 {
				t.Fatalf("census found %d unreachable objects on a rooted heap", snap.Unreachable.Objects)
			}

			// The backup collector must trace through packed links: a live
			// structure survives a collection untouched.
			before := sys.Stats().Heap.LiveObjects
			res := sys.Collect()
			if res.Freed != 0 {
				t.Fatalf("Collect freed %d live objects", res.Freed)
			}
			if got := sys.Stats().Heap.LiveObjects; got != before {
				t.Fatalf("LiveObjects %d -> %d across a no-op Collect", before, got)
			}

			d.Close()
			q.Close()
			sys.DrainZombies(0)
			if got := sys.Stats().Heap.LiveObjects; got != 0 {
				t.Errorf("LiveObjects = %d after Close, want 0", got)
			}
		})
	}
}

// TestSplitStrategyConcurrentChurn hammers a split-strategy deque from many
// goroutines and then audits: the weighted-count invariant must hold at
// quiescence on both engines.
func TestSplitStrategyConcurrentChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("churn test skipped in -short")
	}
	for name, sys := range systems(t, lfrc.WithRCStrategy(lfrc.RCSplit)) {
		t.Run(name, func(t *testing.T) {
			d, err := sys.NewDeque()
			if err != nil {
				t.Fatalf("NewDeque: %v", err)
			}
			const workers, opsEach = 8, 400
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w) + 1))
					for i := 0; i < opsEach; i++ {
						switch rng.Intn(4) {
						case 0:
							_ = d.PushLeft(lfrc.Value(w*opsEach + i + 1))
						case 1:
							_ = d.PushRight(lfrc.Value(w*opsEach + i + 1))
						case 2:
							d.PopLeft()
						default:
							d.PopRight()
						}
					}
				}(w)
			}
			wg.Wait()
			if vs := sys.Audit(); len(vs) != 0 {
				t.Fatalf("Audit after churn: %d violations, first %s", len(vs), vs[0])
			}
			st := sys.Stats()
			if st.Heap.Corruptions != 0 || st.Heap.DoubleFrees != 0 {
				t.Fatalf("heap damage: corruptions=%d doubleFrees=%d",
					st.Heap.Corruptions, st.Heap.DoubleFrees)
			}
			d.Close()
			sys.DrainZombies(0)
			if got := sys.Stats().Heap.LiveObjects; got != 0 {
				t.Errorf("LiveObjects = %d after Close, want 0", got)
			}
		})
	}
}
