package lfrc

import (
	"bytes"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"

	"lfrc/internal/mem"
)

// buildCycle plants the paper's unfixable garbage: a doubly-linked A⇄B pair
// whose counts each settle at 1 (held only by the other member) with no
// Go-side reference remaining. LFRC can never free it — exactly what the
// census exists to report.
func buildCycle(t *testing.T, sys *System) (a, b mem.Ref) {
	t.Helper()
	tid, err := sys.heap.RegisterType(mem.TypeDesc{Name: "cyclepair", NumFields: 2, PtrFields: []int{0, 1}})
	if err != nil {
		t.Fatalf("RegisterType: %v", err)
	}
	a, err = sys.rc.NewObject(tid) // rc=1 (our handle)
	if err != nil {
		t.Fatalf("NewObject: %v", err)
	}
	b, err = sys.rc.NewObject(tid) // rc=1 (our handle)
	if err != nil {
		t.Fatalf("NewObject: %v", err)
	}
	sys.rc.Store(sys.heap.FieldAddr(a, 0), b) // b rc=2
	sys.rc.Store(sys.heap.FieldAddr(b, 0), a) // a rc=2
	sys.rc.Destroy(a, b)                      // drop our handles: rc=1 each, unreachable
	return a, b
}

// TestCensusCycleLeak is the acceptance scenario: a deliberately constructed
// doubly-linked cycle, unreachable after the structures close, is reported by
// the census — with its member list, retained bytes, and a non-zero
// lfrc_census_cycle_bytes gauge — on both reclamation backends. On the epoch
// backend the pre-drain census must additionally classify retired husks as
// limbo, never as leaks.
func TestCensusCycleLeak(t *testing.T) {
	for _, backend := range []Reclaimer{ReclaimerLFRC, ReclaimerEpoch} {
		t.Run(backend.String(), func(t *testing.T) {
			sys, err := New(WithReclamation(backend))
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			defer sys.Close()
			q, err := sys.NewQueue()
			if err != nil {
				t.Fatalf("NewQueue: %v", err)
			}
			for i := Value(0); i < 64; i++ {
				if err := q.Enqueue(i); err != nil {
					t.Fatalf("Enqueue: %v", err)
				}
			}
			for i := 0; i < 32; i++ {
				if _, ok := q.Dequeue(); !ok {
					t.Fatal("Dequeue: empty")
				}
			}
			a, b := buildCycle(t, sys)

			pre := sys.Census()
			if pre.Unreachable.Objects != 2 {
				t.Errorf("pre-drain unreachable = %d, want 2 (only the cycle): %+v",
					pre.Unreachable.Objects, pre.Unreachable)
			}
			if backend == ReclaimerEpoch && pre.Limbo.Objects == 0 {
				t.Errorf("epoch pre-drain census shows no limbo despite 32 undrained retirees")
			}

			q.Close()
			sys.DrainZombies(0)
			c := sys.Census()

			if c.Limbo.Objects != 0 {
				t.Errorf("post-drain limbo = %d, want 0", c.Limbo.Objects)
			}
			if c.CycleCount != 1 || len(c.Cycles) != 1 {
				t.Fatalf("cycle count = %d (%d listed), want 1", c.CycleCount, len(c.Cycles))
			}
			cy := c.Cycles[0]
			if cy.Size != 2 || cy.Bytes <= 0 || cy.RetainedBytes < cy.Bytes {
				t.Errorf("cycle = %+v, want size 2 with positive (retained) bytes", cy)
			}
			members := map[uint32]uint64{}
			for _, o := range cy.Objects {
				members[o.Ref] = o.RC
				if o.Type != "cyclepair" {
					t.Errorf("member type = %q, want cyclepair", o.Type)
				}
			}
			if members[uint32(a)] != 1 || members[uint32(b)] != 1 {
				t.Errorf("members = %v, want a=%d and b=%d at rc=1", cy.Objects, a, b)
			}
			if c.CycleBytes <= 0 || c.Unreachable.Objects != 2 {
				t.Errorf("cycle_bytes=%d unreachable=%d, want >0 and 2", c.CycleBytes, c.Unreachable.Objects)
			}
			// The cycle's counts are consistent (1 in-edge each), so it must
			// NOT be flagged as an rc mismatch — it is a leak, not a count bug.
			if c.RCMismatchCount != 0 {
				t.Errorf("rc mismatches = %d (%v), want 0", c.RCMismatchCount, c.RCMismatches)
			}

			var buf bytes.Buffer
			sys.WriteMetrics(&buf)
			v, ok := metricValue(buf.String(), "lfrc_census_cycle_bytes")
			if !ok || v <= 0 {
				t.Errorf("lfrc_census_cycle_bytes = %v (found=%v), want > 0", v, ok)
			}
		})
	}
}

// metricValue scans Prometheus text exposition for an unlabelled series.
func metricValue(text, name string) (float64, bool) {
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name+" ")), 64)
		if err != nil {
			return 0, false
		}
		return v, true
	}
	return 0, false
}

// TestCensusExtraRoots: a counted reference held only in a Go-side variable
// would be misreported as a leak; WithCensusRoots declares it, which both
// reclassifies its subgraph as reachable and fixes the expected in-edge count.
func TestCensusExtraRoots(t *testing.T) {
	var held uint32
	sys, err := New(WithCensusRoots(func() []uint32 { return []uint32{held} }))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer sys.Close()
	tid, err := sys.heap.RegisterType(mem.TypeDesc{Name: "held", NumFields: 1})
	if err != nil {
		t.Fatalf("RegisterType: %v", err)
	}
	r, err := sys.rc.NewObject(tid)
	if err != nil {
		t.Fatalf("NewObject: %v", err)
	}
	held = uint32(r)

	c := sys.Census()
	if c.Reachable.Objects != 1 || c.Unreachable.Objects != 0 {
		t.Errorf("reachable=%d unreachable=%d, want 1/0", c.Reachable.Objects, c.Unreachable.Objects)
	}
	if c.RCMismatchCount != 0 {
		t.Errorf("declared root still flagged as mismatch: %v", c.RCMismatches)
	}
	found := false
	for _, root := range c.Roots {
		if root.Ref == held && root.Name == "extra" && root.Count == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("extra root not listed: %+v", c.Roots)
	}

	// Undeclared, the same object is a leak candidate: unreachable with a
	// stuck count.
	held = 0
	c = sys.Census()
	if c.Unreachable.Objects != 1 || c.RCMismatchCount != 1 {
		t.Errorf("undeclared handle not reported: unreachable=%d mismatches=%d, want 1/1",
			c.Unreachable.Objects, c.RCMismatchCount)
	}
}

// TestCensusWhileMutating locks the read-only guarantee under -race: censuses
// taken while mutator goroutines hammer the structures must be race-clean,
// and a census must never free or retain anything itself.
func TestCensusWhileMutating(t *testing.T) {
	sys, err := New()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer sys.Close()
	q, err := sys.NewQueue()
	if err != nil {
		t.Fatalf("NewQueue: %v", err)
	}
	st, err := sys.NewStack()
	if err != nil {
		t.Fatalf("NewStack: %v", err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := seed*0x9E3779B97F4A7C15 + 1
			for {
				select {
				case <-stop:
					return
				default:
				}
				rng = rng*6364136223846793005 + 1442695040888963407
				v := Value(rng >> 16 & 0xFFFF)
				switch rng % 4 {
				case 0:
					q.Enqueue(v)
				case 1:
					q.Dequeue()
				case 2:
					st.Push(v)
				case 3:
					st.Pop()
				}
			}
		}(uint64(w + 1))
	}
	for i := 0; i < 20; i++ {
		c := sys.Census()
		// Moving-target snapshots are approximate but must stay internally
		// partitioned.
		if got := c.Reachable.Objects + c.Unreachable.Objects + c.Limbo.Objects; got != c.LiveObjects {
			t.Errorf("buckets do not partition a concurrent census: %d != %d", got, c.LiveObjects)
		}
	}
	close(stop)
	wg.Wait()

	// Quiescent: the census itself must not move the heap.
	before := sys.Stats().Heap
	c := sys.Census()
	after := sys.Stats().Heap
	if before.LiveObjects != after.LiveObjects || before.Frees != after.Frees || before.Allocs != after.Allocs {
		t.Errorf("census moved the heap: before=%+v after=%+v", before, after)
	}
	if c.LiveObjects != before.LiveObjects {
		t.Errorf("census live=%d, heap live=%d", c.LiveObjects, before.LiveObjects)
	}
}

// TestWriteCensusProfileCapture regenerates the census.pb.gz capture quoted
// in README.md ("Heap census"): a queue plus one planted cycle, closed and
// drained, so `go tool pprof -top` shows the cycle-leak class on top. Skipped
// unless CENSUS_CAPTURE names an output path:
//
//	CENSUS_CAPTURE=/tmp/census.pb.gz go test -run TestWriteCensusProfileCapture .
//	go tool pprof -top /tmp/census.pb.gz
func TestWriteCensusProfileCapture(t *testing.T) {
	out := os.Getenv("CENSUS_CAPTURE")
	if out == "" {
		t.Skip("set CENSUS_CAPTURE=<path> to write the README capture")
	}
	sys, err := New()
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer sys.Close()
	q, err := sys.NewQueue()
	if err != nil {
		t.Fatalf("NewQueue: %v", err)
	}
	for i := Value(0); i < 64; i++ {
		if err := q.Enqueue(i); err != nil {
			t.Fatalf("Enqueue: %v", err)
		}
	}
	buildCycle(t, sys)
	f, err := os.Create(out)
	if err != nil {
		t.Fatalf("create %s: %v", out, err)
	}
	defer f.Close()
	if err := sys.WriteCensusProfile(f); err != nil {
		t.Fatalf("WriteCensusProfile: %v", err)
	}
}
