package lfrc_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"lfrc"
)

// exhaustSystem builds a system whose heap is small enough to exhaust under
// the degradation policy, pushes until it does, and returns it with at least
// one degraded-mode exhaustion on the books.
func exhaustSystem(t *testing.T, opts ...lfrc.Option) *lfrc.System {
	t.Helper()
	opts = append([]lfrc.Option{
		lfrc.WithMaxHeapWords(1 << 12),
		lfrc.WithHeapPressurePolicy(lfrc.DefaultHeapPressurePolicy()),
		lfrc.WithTimeline(lfrc.TimelineOptions{Manual: true}),
	}, opts...)
	sys, err := lfrc.New(opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(sys.Close)
	d, err := sys.NewDeque()
	if err != nil {
		t.Fatalf("NewDeque: %v", err)
	}
	for i := 0; i < 1<<16; i++ {
		if err := d.PushRight(lfrc.Value(i + 1)); err != nil {
			if !errors.Is(err, lfrc.ErrOutOfMemory) {
				t.Fatalf("PushRight: %v", err)
			}
			break
		}
	}
	if sys.Stats().Degraded.Exhaustions == 0 {
		t.Fatal("heap never exhausted; grow the push loop or shrink the heap")
	}
	return sys
}

// TestWatchdogRidesTimeline: the watchdog is on whenever the timeline is on,
// evaluates once per capture, and can be disabled without losing the
// timeline.
func TestWatchdogRidesTimeline(t *testing.T) {
	sys, err := lfrc.New(lfrc.WithTimeline(lfrc.TimelineOptions{Manual: true}))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer sys.Close()
	for i := 0; i < 5; i++ {
		sys.CaptureTimelineSample()
	}
	st := sys.WatchdogStats()
	if !st.Enabled || st.Evals != 5 || st.Rules == 0 {
		t.Errorf("WatchdogStats = %+v, want enabled with 5 evals", st)
	}
	if got := sys.Stats().Watchdog; got != st {
		t.Errorf("Stats().Watchdog = %+v, want %+v", got, st)
	}
	if incs := sys.Incidents(); len(incs) != 0 {
		t.Errorf("healthy quiet system has incidents: %+v", incs)
	}

	off, err := lfrc.New(
		lfrc.WithTimeline(lfrc.TimelineOptions{Manual: true}),
		lfrc.WithWatchdog(lfrc.WatchdogOptions{Disabled: true}),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer off.Close()
	off.CaptureTimelineSample()
	if st := off.WatchdogStats(); st.Enabled || st.Evals != 0 {
		t.Errorf("disabled watchdog stats = %+v", st)
	}
	if off.TimelineStats().Captures != 1 {
		t.Error("disabling the watchdog lost the timeline")
	}
}

// TestWatchdogHeapExhaustionIncident: a real exhaustion surfaces as a
// critical incident on the next capture.
func TestWatchdogHeapExhaustionIncident(t *testing.T) {
	sys := exhaustSystem(t)
	sys.CaptureTimelineSample()
	incs := sys.Incidents()
	var found *lfrc.Incident
	for i := range incs {
		if incs[i].Rule == "heap_exhaustion" {
			found = &incs[i]
		}
	}
	if found == nil {
		t.Fatalf("no heap_exhaustion incident: %+v", incs)
	}
	if found.Severity != "critical" || found.Value == 0 || found.Message == "" {
		t.Errorf("incident = %+v", *found)
	}
	if sys.WatchdogStats().LastIncidentTS == 0 {
		t.Error("LastIncidentTS not stamped")
	}
}

// TestWatchdogCensusProbe: the sampled census cross-check runs on its
// configured cadence and a healthy heap raises nothing.
func TestWatchdogCensusProbe(t *testing.T) {
	sys, err := lfrc.New(
		lfrc.WithTimeline(lfrc.TimelineOptions{Manual: true}),
		lfrc.WithWatchdog(lfrc.WatchdogOptions{CensusProbeEvery: 2}),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer sys.Close()
	d, err := sys.NewDeque()
	if err != nil {
		t.Fatalf("NewDeque: %v", err)
	}
	for i := lfrc.Value(1); i <= 8; i++ {
		if err := d.PushRight(i); err != nil {
			t.Fatalf("PushRight: %v", err)
		}
	}
	for i := 0; i < 6; i++ {
		sys.CaptureTimelineSample()
	}
	st := sys.WatchdogStats()
	if st.CensusProbes != 3 {
		t.Errorf("CensusProbes = %d after 6 ticks at every-2, want 3", st.CensusProbes)
	}
	if incs := sys.Incidents(); len(incs) != 0 {
		t.Errorf("healthy heap raised incidents: %+v", incs)
	}
}

// TestWatchdogIncidentsSchemaGolden locks the incidents.json key set: the
// document is consumed offline by cmd/lfrcdoctor and scraped by lfrctop, so
// schema drift must surface as a golden diff in review.
//
// Regenerate with: UPDATE_GOLDEN=1 go test -run TestWatchdogIncidentsSchemaGolden .
func TestWatchdogIncidentsSchemaGolden(t *testing.T) {
	sys := exhaustSystem(t)
	sys.CaptureTimelineSample()
	if len(sys.Incidents()) == 0 {
		t.Fatal("no incident to lock the incidents[] shape with")
	}

	var buf bytes.Buffer
	if err := sys.WriteIncidentsJSON(&buf); err != nil {
		t.Fatalf("WriteIncidentsJSON: %v", err)
	}
	var tree any
	if err := json.Unmarshal(buf.Bytes(), &tree); err != nil {
		t.Fatalf("incidents.json invalid: %v", err)
	}
	keys := keyPaths("", tree)
	sort.Strings(keys)
	got := strings.Join(keys, "\n") + "\n"

	golden := filepath.Join("testdata", "incidents_schema.golden")
	if os.Getenv("UPDATE_GOLDEN") == "1" {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("incidents.json key set changed.\n--- got ---\n%s--- want (%s) ---\n%s"+
			"If the change is intentional, regenerate with UPDATE_GOLDEN=1 and call it out in review.",
			got, golden, want)
	}
}
