# Development entry points. Everything is stdlib-only; plain `go` suffices.

GO ?= go

# Per-benchmark time budget for `make bench` (passed to -benchtime when set;
# e.g. `make bench BENCHTIME=100ms` for a quick sweep, `BENCHTIME=5x` for
# iteration counts).
BENCHTIME ?=

# Perf-regression gate knobs (see perf-check). PERF_BASELINE is the committed
# trajectory point to compare against — BENCH_0007.json is a multi-record
# array (one record per GOMAXPROCS; lfrcperf selects the one matching the
# candidate). PERF_TOL is the relative tolerance; PERF_STRICT=1 turns a
# regression into a hard failure.
PERF_BASELINE ?= BENCH_0007.json
PERF_TOL ?= 0.25
PERF_STRICT ?= 0

.PHONY: all check build vet test check-race check-fault check-reclaim check-timeline check-census race cover bench bench-smoke perf-baseline perf-check fuzz experiments stress explore examples clean

all: check

# The default gate: compile, vet, tests, and the race detector in one target.
# check-race runs first: it covers the packages with the trickiest
# concurrency (seqlock rings, the lifecycle ledger/auditor, the LFRC core)
# and fails fast before the full -race sweep. check-fault stresses every
# structure under deterministic fault injection with the lifecycle auditor
# armed. check-reclaim repeats that sweep across both reclamation backends.
# check-timeline covers the telemetry ring (seqlock capture vs read) and the
# lfrctop render layer under the race detector.
# check-census covers the heap-census graph pass — including censuses taken
# while mutators run, which must be race-clean and strictly read-only.
# perf-check rides along as a soft gate (warn-only unless PERF_STRICT=1).
check: build vet test check-race check-fault check-reclaim check-timeline check-census race perf-check

# Focused race gate over the concurrency-critical packages.
check-race:
	$(GO) test -race ./internal/obs ./internal/lifecycle ./internal/core ./internal/contend

# Fault-injection gate: the multi-seed chaos sweep and the degraded-mode /
# typed-error tests, under the race detector.
check-fault:
	$(GO) test -race -count=1 -run 'TestFault|TestDegraded|TestHeapExhaust|TestErr' .

# Cross-backend reclamation gate: the backend unit matrix (both backends share
# one suite in internal/reclaim) plus the system-level fault/chaos/auditor
# sweep parameterized over {lfrc, epoch}, 3 seeds each, under the race
# detector.
check-reclaim:
	$(GO) test -race -count=1 ./internal/reclaim
	$(GO) test -race -count=1 -run 'TestReclaim|TestReclamation' .

# Telemetry-timeline gate: the ring's concurrent capture-vs-read seqlock
# tests, the system-level timeline tests, and the lfrctop render/fetch tests.
check-timeline:
	$(GO) test -race -count=1 ./internal/timeline ./cmd/lfrctop
	$(GO) test -race -count=1 -run 'TestTimeline' .

# Heap-census gate: the graph/SCC unit suite, the cycle-leak acceptance
# scenario on both reclamation backends, and censuses taken while mutator
# goroutines run — all under the race detector, which is what proves the
# census's read-only snapshot loads never race the engines.
check-census:
	$(GO) test -race -count=1 ./internal/census ./internal/pprofenc
	$(GO) test -race -count=1 -run 'TestCensus|TestDebugMux' .

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' $(if $(BENCHTIME),-benchtime=$(BENCHTIME)) ./...

# One quick pass over the sharded-allocator benchmark (experiment A3), the
# observer-overhead benchmark (O1), the lifecycle-ledger benchmark (O2), the
# contention-observatory benchmark (O3) and the timeline capture path (O4;
# the benchmark itself fails if a snapshot exceeds 1µs).
bench-smoke:
	$(GO) test -bench='BenchmarkAllocShards|BenchmarkObserverOverhead|BenchmarkLifecycleLedger|BenchmarkContention|BenchmarkTimelineCapture' -benchtime=1x -run='^$$' .

# Record a new perf-trajectory point against which perf-check gates. Commit
# the refreshed $(PERF_BASELINE) when the change in performance is intended.
# NOTE: this writes a single record at the current GOMAXPROCS; multi-record
# baselines like BENCH_0007.json are assembled by running it once per proc
# count and wrapping the records in a JSON array.
perf-baseline:
	$(GO) run ./cmd/lfrcbench -bench-json $(PERF_BASELINE) -bench-runs 5 -dur 250ms

# Compare current performance against the committed baseline. Soft by
# default: a regression prints the lfrcperf table and a warning. Set
# PERF_STRICT=1 (CI on quiet hardware) to fail the build instead.
perf-check:
	@tmp=$$(mktemp /tmp/lfrc-bench-XXXXXX.json); \
	$(GO) run ./cmd/lfrcbench -bench-json $$tmp -bench-runs 5 -dur 250ms >/dev/null || exit 1; \
	if $(GO) run ./cmd/lfrcperf -old $(PERF_BASELINE) -new $$tmp -tol $(PERF_TOL); then \
		rm -f $$tmp; \
	else \
		status=$$?; rm -f $$tmp; \
		if [ "$(PERF_STRICT)" = "1" ]; then \
			echo "perf-check: FAILED (PERF_STRICT=1)"; exit $$status; \
		else \
			echo "perf-check: regression vs $(PERF_BASELINE) (warn-only; set PERF_STRICT=1 to enforce)"; \
		fi; \
	fi

# Short fuzzing burst per fuzzer (seed corpora always run under `make test`).
fuzz:
	$(GO) test -fuzz=FuzzDequeModel -fuzztime=30s ./internal/snark/
	$(GO) test -fuzz=FuzzSetModel -fuzztime=30s ./internal/dlist/
	$(GO) test -fuzz=FuzzEnginesAgree -fuzztime=30s ./internal/dcas/

# Reproduce every experiment table in EXPERIMENTS.md.
experiments:
	$(GO) run ./cmd/lfrcbench -engine both -scale 2 -dur 300ms -workers 1,2,4,8

stress:
	$(GO) run ./cmd/snarkstress -dur 30s

# Deep schedule-space hunt (historical Snark races, LFRC safety).
explore:
	$(GO) run ./cmd/lfrcexplore -preemptions 4 -maxruns 200000

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/workstealing
	$(GO) run ./examples/pipeline
	$(GO) run ./examples/memshrink
	$(GO) run ./examples/membership

clean:
	$(GO) clean -testcache
