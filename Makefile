# Development entry points. Everything is stdlib-only; plain `go` suffices.

GO ?= go

# Per-benchmark time budget for `make bench` (passed to -benchtime when set;
# e.g. `make bench BENCHTIME=100ms` for a quick sweep, `BENCHTIME=5x` for
# iteration counts).
BENCHTIME ?=

# Perf-regression gate knobs (see perf-check). PERF_BASELINE is the committed
# trajectory point to compare against — BENCH_0007.json is a multi-record
# array (one record per GOMAXPROCS; lfrcperf selects the one matching the
# candidate). PERF_TOL is the relative tolerance; PERF_STRICT=1 turns a
# regression into a hard failure.
PERF_BASELINE ?= BENCH_0009.json
PERF_TOL ?= 0.25
PERF_STRICT ?= 0

.PHONY: all check build vet test check-race check-fault check-reclaim check-rc check-timeline check-census check-doctor race cover bench bench-smoke perf-baseline perf-check fuzz experiments stress explore examples clean

all: check

# The default gate: compile, vet, tests, and the race detector in one target.
# check-race runs first: it covers the packages with the trickiest
# concurrency (seqlock rings, the lifecycle ledger/auditor, the LFRC core)
# and fails fast before the full -race sweep. check-fault stresses every
# structure under deterministic fault injection with the lifecycle auditor
# armed. check-reclaim repeats that sweep across both reclamation backends.
# check-rc repeats it again across both reference-count strategies — the
# count protocol is safety, not policy, so every cell must pass unconditionally.
# check-timeline covers the telemetry ring (seqlock capture vs read) and the
# lfrctop render layer under the race detector.
# check-census covers the heap-census graph pass — including censuses taken
# while mutators run, which must be race-clean and strictly read-only.
# check-doctor covers the health watchdog's rule engine, bundle capture, and
# the chaos -> bundle -> lfrcdoctor offline-diagnosis loop on both backends.
# perf-check rides along as a soft gate (warn-only unless PERF_STRICT=1).
check: build vet test check-race check-fault check-reclaim check-rc check-timeline check-census check-doctor race perf-check

# Focused race gate over the concurrency-critical packages.
check-race:
	$(GO) test -race ./internal/obs ./internal/lifecycle ./internal/core ./internal/contend

# Fault-injection gate: the multi-seed chaos sweep and the degraded-mode /
# typed-error tests, under the race detector.
check-fault:
	$(GO) test -race -count=1 -run 'TestFault|TestDegraded|TestHeapExhaust|TestErr' .

# Cross-backend reclamation gate: the backend unit matrix (both backends share
# one suite in internal/reclaim) plus the system-level fault/chaos/auditor
# sweep parameterized over {lfrc, epoch}, 3 seeds each, under the race
# detector.
check-reclaim:
	$(GO) test -race -count=1 ./internal/reclaim
	$(GO) test -race -count=1 -run 'TestReclaim|TestReclamation' .

# Cross-strategy RC gate: the strategy unit matrix in internal/core (figure2
# vs split protocol equivalence, packing boundaries, refill/merge paths), the
# split boundary tests on both engines, and the system-level fault/chaos/
# auditor sweep over every {figure2, split} x {locking, mcas} x {lfrc, epoch}
# cell, 2 seeds each, under the race detector.
check-rc:
	$(GO) test -race -count=1 ./internal/core
	$(GO) test -race -count=1 -run 'TestRCStrategy|TestSplit' .

# Telemetry-timeline gate: the ring's concurrent capture-vs-read seqlock
# tests, the system-level timeline tests, and the lfrctop render/fetch tests.
check-timeline:
	$(GO) test -race -count=1 ./internal/timeline ./cmd/lfrctop
	$(GO) test -race -count=1 -run 'TestTimeline' .

# Heap-census gate: the graph/SCC unit suite, the cycle-leak acceptance
# scenario on both reclamation backends, and censuses taken while mutator
# goroutines run — all under the race detector, which is what proves the
# census's read-only snapshot loads never race the engines.
check-census:
	$(GO) test -race -count=1 ./internal/census ./internal/pprofenc
	$(GO) test -race -count=1 -run 'TestCensus|TestDebugMux' .

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' $(if $(BENCHTIME),-benchtime=$(BENCHTIME)) ./...

# One quick pass over the sharded-allocator benchmark (experiment A3), the
# observer-overhead benchmark (O1), the lifecycle-ledger benchmark (O2), the
# contention-observatory benchmark (O3), the timeline capture path (O4;
# the benchmark itself fails if a snapshot exceeds 1µs) and the watchdog's
# quiet path (O6; must stay allocation-free).
bench-smoke:
	$(GO) test -bench='BenchmarkAllocShards|BenchmarkObserverOverhead|BenchmarkLifecycleLedger|BenchmarkContention|BenchmarkTimelineCapture|BenchmarkWatchdogQuietPath' -benchtime=1x -run='^$$' .

# Record a new perf-trajectory point against which perf-check gates. Commit
# the refreshed $(PERF_BASELINE) when the change in performance is intended.
# NOTE: this writes a single record at the current GOMAXPROCS; multi-record
# baselines like BENCH_0007.json are assembled by running it once per proc
# count and wrapping the records in a JSON array.
perf-baseline:
	$(GO) run ./cmd/lfrcbench -bench-json $(PERF_BASELINE) -bench-runs 5 -dur 250ms

# Compare current performance against the committed baseline. Soft by
# default: a regression prints the lfrcperf table and a warning. Set
# PERF_STRICT=1 (CI on quiet hardware) to fail the build instead.
perf-check:
	@tmp=$$(mktemp /tmp/lfrc-bench-XXXXXX.json); \
	$(GO) run ./cmd/lfrcbench -bench-json $$tmp -bench-runs 5 -dur 250ms >/dev/null || exit 1; \
	if $(GO) run ./cmd/lfrcperf -old $(PERF_BASELINE) -new $$tmp -tol $(PERF_TOL); then \
		rm -f $$tmp; \
	else \
		status=$$?; rm -f $$tmp; \
		if [ "$(PERF_STRICT)" = "1" ]; then \
			echo "perf-check: FAILED (PERF_STRICT=1)"; exit $$status; \
		else \
			echo "perf-check: regression vs $(PERF_BASELINE) (warn-only; set PERF_STRICT=1 to enforce)"; \
		fi; \
	fi

# Watchdog / diagnostic-bundle gate. Three layers:
#   1. the rule-engine unit suite and the system-level watchdog/bundle tests
#      (capture-while-mutating runs under the race detector);
#   2. a planted epoch starvation (reclaim.epoch:p=1 pins the epoch, so limbo
#      grows with zero drains): the chaos run must FAIL, auto-capture a
#      bundle, and lfrcdoctor — offline, from the tarball alone — must reach
#      the limbo_stall verdict with exit 1;
#   3. a planted retry storm on the lfrc backend (core.load:p=0.85 forces the
#      paper's §5 retry window): the chaos run itself stays clean, the
#      explicitly requested bundle must carry the storm, and lfrcdoctor must
#      surface the retry_storm finding.
check-doctor:
	$(GO) test -count=1 ./internal/watchdog
	$(GO) test -race -count=1 -run 'TestWatchdog|TestBundle' .
	$(GO) test -count=1 ./cmd/lfrcdoctor
	@dir=$$(mktemp -d /tmp/lfrc-doctor-XXXXXX); \
	echo "check-doctor: epoch limbo starvation -> bundle -> lfrcdoctor"; \
	if $(GO) run ./cmd/lfrcbench -fault-plan 'reclaim.epoch:p=1' -reclaim epoch \
		-dur 500ms -workers 4 -destroy-budget 1 -bundle $$dir/epoch.tar.gz >$$dir/epoch.log 2>&1; then \
		echo "check-doctor: planted epoch starvation did not FAIL chaos"; cat $$dir/epoch.log; rm -rf $$dir; exit 1; \
	fi; \
	grep -q '^bundle=' $$dir/epoch.log || { echo "check-doctor: FAIL did not capture a bundle"; cat $$dir/epoch.log; rm -rf $$dir; exit 1; }; \
	if $(GO) run ./cmd/lfrcdoctor -json $$dir/epoch.tar.gz >$$dir/epoch.json 2>&1; then \
		echo "check-doctor: lfrcdoctor called the starved epoch bundle healthy"; cat $$dir/epoch.json; rm -rf $$dir; exit 1; \
	fi; \
	grep -q '"rule": "limbo_stall"' $$dir/epoch.json || { echo "check-doctor: no limbo_stall verdict"; cat $$dir/epoch.json; rm -rf $$dir; exit 1; }; \
	grep -q '"reclaimer": "epoch"' $$dir/epoch.json || { echo "check-doctor: wrong backend in verdict"; cat $$dir/epoch.json; rm -rf $$dir; exit 1; }; \
	echo "check-doctor: lfrc retry storm -> bundle -> lfrcdoctor"; \
	$(GO) run ./cmd/lfrcbench -fault-plan 'core.load:p=0.85' -reclaim lfrc \
		-dur 500ms -workers 4 -bundle $$dir/lfrc.tar.gz >$$dir/lfrc.log 2>&1 || { echo "check-doctor: retry-storm chaos run failed"; cat $$dir/lfrc.log; rm -rf $$dir; exit 1; }; \
	$(GO) run ./cmd/lfrcdoctor -json $$dir/lfrc.tar.gz >$$dir/lfrc.json 2>&1; \
	grep -q '"rule": "retry_storm"' $$dir/lfrc.json || { echo "check-doctor: no retry_storm finding"; cat $$dir/lfrc.json; rm -rf $$dir; exit 1; }; \
	grep -q '"reclaimer": "lfrc"' $$dir/lfrc.json || { echo "check-doctor: wrong backend in verdict"; cat $$dir/lfrc.json; rm -rf $$dir; exit 1; }; \
	rm -rf $$dir; echo "check-doctor: PASS"

# Short fuzzing burst per fuzzer (seed corpora always run under `make test`).
fuzz:
	$(GO) test -fuzz=FuzzDequeModel -fuzztime=30s ./internal/snark/
	$(GO) test -fuzz=FuzzSetModel -fuzztime=30s ./internal/dlist/
	$(GO) test -fuzz=FuzzEnginesAgree -fuzztime=30s ./internal/dcas/

# Reproduce every experiment table in EXPERIMENTS.md.
experiments:
	$(GO) run ./cmd/lfrcbench -engine both -scale 2 -dur 300ms -workers 1,2,4,8

stress:
	$(GO) run ./cmd/snarkstress -dur 30s

# Deep schedule-space hunt (historical Snark races, LFRC safety).
explore:
	$(GO) run ./cmd/lfrcexplore -preemptions 4 -maxruns 200000

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/workstealing
	$(GO) run ./examples/pipeline
	$(GO) run ./examples/memshrink
	$(GO) run ./examples/membership

clean:
	$(GO) clean -testcache
