# Development entry points. Everything is stdlib-only; plain `go` suffices.

GO ?= go

.PHONY: all check build vet test check-race race cover bench bench-smoke fuzz experiments stress explore examples clean

all: check

# The default gate: compile, vet, tests, and the race detector in one target.
# check-race runs first: it covers the packages with the trickiest
# concurrency (seqlock rings, the lifecycle ledger/auditor, the LFRC core)
# and fails fast before the full -race sweep.
check: build vet test check-race race

# Focused race gate over the concurrency-critical packages.
check-race:
	$(GO) test -race ./internal/obs ./internal/lifecycle ./internal/core

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

# One quick pass over the sharded-allocator benchmark (experiment A3) and
# the observer-overhead benchmark (experiment O1).
bench-smoke:
	$(GO) test -bench='BenchmarkAllocShards|BenchmarkObserverOverhead' -benchtime=1x -run='^$$' .

# Short fuzzing burst per fuzzer (seed corpora always run under `make test`).
fuzz:
	$(GO) test -fuzz=FuzzDequeModel -fuzztime=30s ./internal/snark/
	$(GO) test -fuzz=FuzzSetModel -fuzztime=30s ./internal/dlist/
	$(GO) test -fuzz=FuzzEnginesAgree -fuzztime=30s ./internal/dcas/

# Reproduce every experiment table in EXPERIMENTS.md.
experiments:
	$(GO) run ./cmd/lfrcbench -engine both -scale 2 -dur 300ms -workers 1,2,4,8

stress:
	$(GO) run ./cmd/snarkstress -dur 30s

# Deep schedule-space hunt (historical Snark races, LFRC safety).
explore:
	$(GO) run ./cmd/lfrcexplore -preemptions 4 -maxruns 200000

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/workstealing
	$(GO) run ./examples/pipeline
	$(GO) run ./examples/memshrink
	$(GO) run ./examples/membership

clean:
	$(GO) clean -testcache
