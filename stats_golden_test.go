package lfrc_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"lfrc"
)

// TestStatsJSONKeysGolden locks the Stats JSON surface: the full set of key
// paths produced by marshalling a populated Stats snapshot must match
// testdata/stats_keys.golden. The stats JSON is an exported interface — it is
// embedded in experiment notes, dumped by lfrcbench -stats-json, and served
// on /debug/lfrc/stats and /debug/vars — so renaming or dropping a key is a
// breaking change that must show up in review as a golden-file diff.
//
// Regenerate with: UPDATE_GOLDEN=1 go test -run TestStatsJSONKeysGolden .
func TestStatsJSONKeysGolden(t *testing.T) {
	sys, err := lfrc.New(lfrc.WithAllocShards(2), lfrc.WithIncrementalDestroy(4),
		// A never-firing fault rule and an armed pressure policy put the
		// fault/degraded sections (including per-point stats) into the
		// locked key set without perturbing the run.
		lfrc.WithFaultPlan("core.load:nth=1000000000"),
		lfrc.WithHeapPressurePolicy(lfrc.DefaultHeapPressurePolicy()))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	d, err := sys.NewDeque()
	if err != nil {
		t.Fatalf("NewDeque: %v", err)
	}
	for i := lfrc.Value(1); i <= 16; i++ {
		if err := d.PushRight(i); err != nil {
			t.Fatalf("PushRight: %v", err)
		}
	}
	d.Close()

	raw, err := json.Marshal(sys.Stats())
	if err != nil {
		t.Fatalf("marshal Stats: %v", err)
	}
	var tree any
	if err := json.Unmarshal(raw, &tree); err != nil {
		t.Fatalf("unmarshal Stats: %v", err)
	}
	keys := keyPaths("", tree)
	sort.Strings(keys)
	got := strings.Join(keys, "\n") + "\n"

	golden := filepath.Join("testdata", "stats_keys.golden")
	if os.Getenv("UPDATE_GOLDEN") == "1" {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("Stats JSON key set changed.\n--- got ---\n%s--- want (%s) ---\n%s"+
			"If the change is intentional, regenerate with UPDATE_GOLDEN=1 and call it out in review.",
			got, golden, want)
	}
}

// keyPaths flattens a decoded JSON tree into sorted dotted key paths. Array
// elements collapse into one "[]" segment: per-shard stats repeat the same
// shape, and the golden file locks the shape, not the shard count.
func keyPaths(prefix string, v any) []string {
	switch x := v.(type) {
	case map[string]any:
		var out []string
		for k, child := range x {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			out = append(out, p)
			out = append(out, keyPaths(p, child)...)
		}
		return out
	case []any:
		seen := map[string]bool{}
		var out []string
		for _, child := range x {
			for _, p := range keyPaths(prefix+"[]", child) {
				if !seen[p] {
					seen[p] = true
					out = append(out, p)
				}
			}
		}
		return out
	default:
		return nil
	}
}
