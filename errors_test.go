package lfrc_test

import (
	"errors"
	"testing"

	"lfrc"
)

// fillHeap pushes onto st until the heap refuses an allocation, returning the
// number of successful pushes. The final error must be ErrOutOfMemory.
func fillHeap(t *testing.T, st *lfrc.Stack) int {
	t.Helper()
	n := 0
	for {
		err := st.Push(lfrc.Value(n % 1000))
		if err == nil {
			n++
			if n > 1<<22 {
				t.Fatal("tiny heap never filled up")
			}
			continue
		}
		if !errors.Is(err, lfrc.ErrOutOfMemory) {
			t.Fatalf("filling push failed with %v, want ErrOutOfMemory", err)
		}
		return n
	}
}

// exhaust runs op until it reports ErrOutOfMemory; any other error fails the
// test. Residual bump space can still fit objects smaller than the one that
// first failed, so a thorough exhaustion drives every size class dry.
func exhaust(t *testing.T, name string, op func() error) {
	t.Helper()
	for i := 0; ; i++ {
		err := op()
		if err == nil {
			if i > 1<<22 {
				t.Fatalf("%s never exhausted the heap", name)
			}
			continue
		}
		if !errors.Is(err, lfrc.ErrOutOfMemory) {
			t.Fatalf("%s failed with %v, want ErrOutOfMemory", name, err)
		}
		return
	}
}

// TestErrOutOfMemoryTyped drives every constructor and every allocating
// operation into a genuinely exhausted heap and asserts each failure matches
// the root sentinel via errors.Is — the typed-error contract documented in
// errors.go — and that Close releases the memory back.
func TestErrOutOfMemoryTyped(t *testing.T) {
	sys, err := lfrc.New(lfrc.WithMaxHeapWords(1<<16), lfrc.WithAllocShards(1))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	filler, err := sys.NewStack()
	if err != nil {
		t.Fatal(err)
	}
	// Pre-create one of each so the allocating operations can be probed on a
	// full heap too (their lazy type registration also happens now, while
	// there is still room for anchors).
	d, err := sys.NewDeque()
	if err != nil {
		t.Fatal(err)
	}
	q, err := sys.NewQueue()
	if err != nil {
		t.Fatal(err)
	}
	set, err := sys.NewSet()
	if err != nil {
		t.Fatal(err)
	}
	// Exhaust every size class the structures allocate: node types first,
	// then anchors (NewStack allocates only a one-field anchor, so looping it
	// dry removes the last size the residual bump space could serve).
	fillHeap(t, filler)
	next := lfrc.Value(0)
	exhaust(t, "Insert", func() error { next++; _, err := set.Insert(next); return err })
	exhaust(t, "Enqueue", func() error { return q.Enqueue(1) })
	exhaust(t, "PushRight", func() error { return d.PushRight(1) })
	exhaust(t, "NewStack", func() error { _, err := sys.NewStack(); return err })

	// All four constructors must refuse with the typed sentinel.
	if _, err := sys.NewDeque(); !errors.Is(err, lfrc.ErrOutOfMemory) {
		t.Errorf("NewDeque on full heap: %v, want ErrOutOfMemory", err)
	}
	if _, err := sys.NewQueue(); !errors.Is(err, lfrc.ErrOutOfMemory) {
		t.Errorf("NewQueue on full heap: %v, want ErrOutOfMemory", err)
	}
	if _, err := sys.NewStack(); !errors.Is(err, lfrc.ErrOutOfMemory) {
		t.Errorf("NewStack on full heap: %v, want ErrOutOfMemory", err)
	}
	if _, err := sys.NewSet(); !errors.Is(err, lfrc.ErrOutOfMemory) {
		t.Errorf("NewSet on full heap: %v, want ErrOutOfMemory", err)
	}

	// Every allocating operation likewise.
	if err := d.PushLeft(1); !errors.Is(err, lfrc.ErrOutOfMemory) {
		t.Errorf("PushLeft on full heap: %v, want ErrOutOfMemory", err)
	}
	if err := d.PushRight(1); !errors.Is(err, lfrc.ErrOutOfMemory) {
		t.Errorf("PushRight on full heap: %v, want ErrOutOfMemory", err)
	}
	if err := q.Enqueue(1); !errors.Is(err, lfrc.ErrOutOfMemory) {
		t.Errorf("Enqueue on full heap: %v, want ErrOutOfMemory", err)
	}
	if _, err := set.Insert(1); !errors.Is(err, lfrc.ErrOutOfMemory) {
		t.Errorf("Insert on full heap: %v, want ErrOutOfMemory", err)
	}

	// Close releases the filler's memory: the structures work again.
	filler.Close()
	sys.DrainZombies(0)
	if err := q.Enqueue(7); err != nil {
		t.Fatalf("Enqueue after reclaim: %v", err)
	}
	if v, ok := q.Dequeue(); !ok || v != 7 {
		t.Fatalf("Dequeue after reclaim = %d, %v", v, ok)
	}
}

func TestErrValueRangeTyped(t *testing.T) {
	sys, err := lfrc.New()
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	d, _ := sys.NewDeque()
	q, _ := sys.NewQueue()
	st, _ := sys.NewStack()
	set, _ := sys.NewSet()
	// MaxValue is the conservative bound (deque claiming bit); the queue,
	// stack and set accept a little more, so probe with a value above every
	// structure's mask.
	huge := ^lfrc.Value(0)
	for name, err := range map[string]error{
		"PushLeft":  d.PushLeft(huge),
		"PushRight": d.PushRight(huge),
		"Enqueue":   q.Enqueue(huge),
		"Push":      st.Push(huge),
	} {
		if !errors.Is(err, lfrc.ErrValueRange) {
			t.Errorf("%s(MaxValue+1): %v, want ErrValueRange", name, err)
		}
	}
	if _, err := set.Insert(huge); !errors.Is(err, lfrc.ErrValueRange) {
		t.Errorf("Insert(MaxValue+1): %v, want ErrValueRange", err)
	}
}

func TestErrClosedTyped(t *testing.T) {
	sys, err := lfrc.New()
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	d, _ := sys.NewDeque()
	q, _ := sys.NewQueue()
	st, _ := sys.NewStack()
	set, _ := sys.NewSet()
	d.Close()
	q.Close()
	st.Close()
	set.Close()
	for name, err := range map[string]error{
		"PushLeft":  d.PushLeft(1),
		"PushRight": d.PushRight(1),
		"Enqueue":   q.Enqueue(1),
		"Push":      st.Push(1),
	} {
		if !errors.Is(err, lfrc.ErrClosed) {
			t.Errorf("%s after Close: %v, want ErrClosed", name, err)
		}
	}
	if _, err := set.Insert(1); !errors.Is(err, lfrc.ErrClosed) {
		t.Errorf("Insert after Close: %v, want ErrClosed", err)
	}
	// Closed structures yield empty iterators rather than panicking.
	for range d.Drain() {
		t.Fatal("Drain on closed deque yielded a value")
	}
	for range set.All() {
		t.Fatal("All on closed set yielded a value")
	}
}

// TestDegradedPolicyRunsBeforeFailure fills a tiny heap and asserts that,
// with a heap-pressure policy installed, the failing operation runs the full
// bounded retry cycle before surfacing ErrOutOfMemory — and that the
// degraded counters record it.
func TestDegradedPolicyRunsBeforeFailure(t *testing.T) {
	sys, err := lfrc.New(
		lfrc.WithMaxHeapWords(1<<16),
		lfrc.WithAllocShards(1),
		lfrc.WithHeapPressurePolicy(lfrc.HeapPressurePolicy{MaxRetries: 3}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	st, err := sys.NewStack()
	if err != nil {
		t.Fatal(err)
	}
	fillHeap(t, st)

	deg := sys.Stats().Degraded
	if !deg.PolicyEnabled {
		t.Error("Degraded.PolicyEnabled = false with a policy installed")
	}
	if deg.Retries < 3 {
		t.Errorf("Degraded.Retries = %d, want >= 3 (one full policy run)", deg.Retries)
	}
	if deg.Exhaustions < 1 {
		t.Errorf("Degraded.Exhaustions = %d, want >= 1", deg.Exhaustions)
	}
}

// TestDegradedRecovery parks a closed structure's nodes in the zombie
// backlog (incremental destroy), exhausts the heap, and asserts a push under
// the pressure policy recovers by draining zombies instead of failing.
func TestDegradedRecovery(t *testing.T) {
	// One shard, or a single-goroutine exhaustion only dries the shard its
	// P maps to and a migration mid-test exposes the others' leftover space.
	sys, err := lfrc.New(
		lfrc.WithMaxHeapWords(1<<16),
		lfrc.WithAllocShards(1),
		lfrc.WithIncrementalDestroy(1),
		lfrc.WithHeapPressurePolicy(lfrc.HeapPressurePolicy{MaxRetries: 4}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	filler, err := sys.NewSet()
	if err != nil {
		t.Fatal(err)
	}
	probe, err := sys.NewSet()
	if err != nil {
		t.Fatal(err)
	}
	// Descending keys insert at the head, keeping the O(n) sorted-list walk
	// out of the fill loop.
	next := lfrc.Value(1 << 40)
	exhaust(t, "Insert", func() error { next--; _, err := filler.Insert(next); return err })
	// Closing the filler set drops its whole chain in one pointer release;
	// with destroy budget 1 almost every node parks in the zombie backlog,
	// so the heap is still full — of zombies. The probe allocates the same
	// node size class, so only a degraded-mode drain can satisfy it.
	filler.Close()
	if sys.ZombieCount() == 0 {
		t.Fatal("incremental destroy parked no zombies; recovery path not exercised")
	}
	// Close frees its destroy-budget's worth of nodes inline before the
	// remainder parks, so the first probe insert may recycle without
	// pressure; a handful guarantees one lands on an empty free list.
	for i := lfrc.Value(0); i < 8; i++ {
		if _, err := probe.Insert(42 + i); err != nil {
			t.Fatalf("Insert did not recover via zombie drain: %v", err)
		}
	}
	deg := sys.Stats().Degraded
	if deg.Recoveries < 1 {
		t.Errorf("Degraded.Recoveries = %d, want >= 1", deg.Recoveries)
	}
	if deg.ZombiesDrained < 1 {
		t.Errorf("Degraded.ZombiesDrained = %d, want >= 1", deg.ZombiesDrained)
	}
}

func TestParseEngine(t *testing.T) {
	if e, err := lfrc.ParseEngine("locking"); err != nil || e != lfrc.EngineLocking {
		t.Errorf("ParseEngine(locking) = %v, %v", e, err)
	}
	if e, err := lfrc.ParseEngine("mcas"); err != nil || e != lfrc.EngineMCAS {
		t.Errorf("ParseEngine(mcas) = %v, %v", e, err)
	}
	if _, err := lfrc.ParseEngine("tcas"); err == nil {
		t.Error("ParseEngine(tcas) succeeded")
	}
	// Engine implements flag.Value.
	var e lfrc.Engine
	if err := e.Set("mcas"); err != nil || e != lfrc.EngineMCAS || e.String() != "mcas" {
		t.Errorf("flag.Value round-trip: %v, %v", e, err)
	}
	if err := e.Set("nope"); err == nil {
		t.Error("Engine.Set(nope) succeeded")
	}
}
