package lfrc

import (
	"fmt"

	"lfrc/internal/core"
)

// RCStrategy selects the reference-count protocol behind every LFRC
// operation: how counts are represented, and which memory a Load must touch
// to secure a reference. Both strategies uphold the paper's two guarantees
// (no premature free, no leak of acyclic garbage); the choice trades
// paper-fidelity against contention on hot objects' count words. See
// DESIGN.md §3.14.
type RCStrategy int

// Reference-count strategies.
const (
	// RCFigure2 is the paper's protocol (Figure 2, PODC 2001): one count
	// per object, every Load guarded by a DCAS on the pointer cell and the
	// referent's count word together. It is the ablation baseline — kept
	// bit-for-bit identical to the pre-seam implementation — and the
	// default.
	RCFigure2 RCStrategy = iota + 1

	// RCSplit is weighted reference counting: each link carries an
	// external count (a weight stash packed into the pointer word) while
	// the object's count word holds the total outstanding weight. Loads
	// borrow from the stash with a single-word CAS on the pointer cell
	// alone — the count word stays untouched on the read fast path, which
	// removes the figure2 protocol's rc DCAS hot spot. The count word is
	// only touched on link creation/destruction (merging a dying link's
	// remaining stash back in one update) and on the rare stash refill.
	RCSplit
)

// String implements fmt.Stringer.
func (r RCStrategy) String() string {
	switch r {
	case RCFigure2:
		return "figure2"
	case RCSplit:
		return "split"
	default:
		return fmt.Sprintf("RCStrategy(%d)", int(r))
	}
}

// ParseRCStrategy resolves a strategy name ("figure2" or "split", as printed
// by RCStrategy.String) to its RCStrategy value. It is the inverse of String
// and the canonical way for command-line tools to accept a -rc flag;
// RCStrategy also implements flag.Value, so flag.Var(&rc, "rc", ...) works
// directly.
func ParseRCStrategy(s string) (RCStrategy, error) {
	switch s {
	case "figure2":
		return RCFigure2, nil
	case "split":
		return RCSplit, nil
	default:
		return 0, unknownNameError("rc strategy", s, "figure2", "split")
	}
}

// Set implements flag.Value: together with String it lets an RCStrategy
// variable be bound straight to a command-line flag.
func (r *RCStrategy) Set(s string) error {
	v, err := ParseRCStrategy(s)
	if err != nil {
		return err
	}
	*r = v
	return nil
}

// kind maps the public enum onto the internal strategy selector.
func (r RCStrategy) kind() core.StrategyKind {
	if r == RCSplit {
		return core.StrategySplit
	}
	return core.StrategyFigure2
}

// WithRCStrategy selects the reference-count strategy. The default is
// RCFigure2, the paper-faithful protocol. Both strategies run under the same
// structures, engines, reclamation backends, fault points, lifecycle auditor
// and census, so they can be compared on identical workloads (experiment
// R3); cmd/lfrcperf refuses to compare bench records taken under different
// strategies.
func WithRCStrategy(r RCStrategy) Option {
	return optionFunc(func(c *config) { c.rcStrategy = r })
}

// RCStrategyName reports which reference-count strategy the system runs on.
func (s *System) RCStrategyName() string { return s.rc.StrategyName() }
