package lfrc_test

import (
	"runtime"
	"sync"
	"testing"

	"lfrc"
)

func systems(t *testing.T, opts ...lfrc.Option) map[string]*lfrc.System {
	t.Helper()
	out := make(map[string]*lfrc.System, 2)
	for _, e := range []lfrc.Engine{lfrc.EngineLocking, lfrc.EngineMCAS} {
		sys, err := lfrc.New(append([]lfrc.Option{lfrc.WithEngine(e)}, opts...)...)
		if err != nil {
			t.Fatalf("New(%v): %v", e, err)
		}
		out[e.String()] = sys
	}
	return out
}

func TestQuickstartFlow(t *testing.T) {
	for name, sys := range systems(t) {
		t.Run(name, func(t *testing.T) {
			d, err := sys.NewDeque()
			if err != nil {
				t.Fatalf("NewDeque: %v", err)
			}
			if err := d.PushRight(42); err != nil {
				t.Fatalf("PushRight: %v", err)
			}
			if err := d.PushLeft(7); err != nil {
				t.Fatalf("PushLeft: %v", err)
			}
			if v, ok := d.PopLeft(); !ok || v != 7 {
				t.Fatalf("PopLeft = (%d,%v), want (7,true)", v, ok)
			}
			if v, ok := d.PopRight(); !ok || v != 42 {
				t.Fatalf("PopRight = (%d,%v), want (42,true)", v, ok)
			}
			d.Close()
			if got := sys.Stats().Heap.LiveObjects; got != 0 {
				t.Errorf("LiveObjects = %d after Close, want 0", got)
			}
		})
	}
}

func TestAllStructuresRoundTrip(t *testing.T) {
	for name, sys := range systems(t) {
		t.Run(name, func(t *testing.T) {
			d, _ := sys.NewDeque()
			q, _ := sys.NewQueue()
			s, _ := sys.NewStack()

			for v := lfrc.Value(1); v <= 100; v++ {
				if err := d.PushRight(v); err != nil {
					t.Fatal(err)
				}
				if err := q.Enqueue(v); err != nil {
					t.Fatal(err)
				}
				if err := s.Push(v); err != nil {
					t.Fatal(err)
				}
			}
			for v := lfrc.Value(1); v <= 100; v++ {
				if got, ok := d.PopLeft(); !ok || got != v {
					t.Fatalf("deque: (%d,%v), want (%d,true)", got, ok, v)
				}
				if got, ok := q.Dequeue(); !ok || got != v {
					t.Fatalf("queue: (%d,%v), want (%d,true)", got, ok, v)
				}
				want := 101 - v
				if got, ok := s.Pop(); !ok || got != want {
					t.Fatalf("stack: (%d,%v), want (%d,true)", got, ok, want)
				}
			}
			d.Close()
			q.Close()
			s.Close()
			if got := sys.Stats().Heap.LiveObjects; got != 0 {
				t.Errorf("LiveObjects = %d, want 0", got)
			}
		})
	}
}

func TestAuditOnLiveSystem(t *testing.T) {
	for name, sys := range systems(t) {
		t.Run(name, func(t *testing.T) {
			d, _ := sys.NewDeque()
			q, _ := sys.NewQueue()
			for v := lfrc.Value(1); v <= 50; v++ {
				_ = d.PushLeft(v)
				_ = q.Enqueue(v)
			}
			d.PopRight()
			q.Dequeue()

			if vs := sys.Audit(); len(vs) != 0 {
				t.Errorf("Audit found violations: %v", vs)
			}
			d.Close()
			q.Close()
		})
	}
}

func TestCollectIsNoOpOnAcyclicStructures(t *testing.T) {
	sys, err := lfrc.New()
	if err != nil {
		t.Fatal(err)
	}
	d, _ := sys.NewDeque()
	for v := lfrc.Value(1); v <= 50; v++ {
		_ = d.PushRight(v)
	}
	res := sys.Collect()
	if res.Freed != 0 {
		t.Errorf("Collect freed %d objects from a healthy structure", res.Freed)
	}
	if res.Marked == 0 {
		t.Error("Collect marked nothing; structure roots not registered?")
	}
	// The structure still works.
	for v := lfrc.Value(1); v <= 50; v++ {
		if got, ok := d.PopLeft(); !ok || got != v {
			t.Fatalf("PopLeft = (%d,%v), want (%d,true)", got, ok, v)
		}
	}
	d.Close()
}

func TestValueClaimingOption(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	sys, err := lfrc.New()
	if err != nil {
		t.Fatal(err)
	}
	d, err := sys.NewDeque(lfrc.WithValueClaiming())
	if err != nil {
		t.Fatal(err)
	}

	const workers, perW = 4, 1000
	var (
		mu     sync.Mutex
		popped = map[lfrc.Value]int{}
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				v := lfrc.Value(w*perW + i + 1)
				_ = d.PushLeft(v)
				if got, ok := d.PopRight(); ok {
					mu.Lock()
					popped[got]++
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	for {
		v, ok := d.PopLeft()
		if !ok {
			break
		}
		popped[v]++
	}
	for v, n := range popped {
		if n != 1 {
			t.Errorf("value %d delivered %d times", v, n)
		}
	}
	if len(popped) != workers*perW {
		t.Errorf("delivered %d distinct values, want %d", len(popped), workers*perW)
	}
	d.Close()
}

func TestIncrementalDestroyOption(t *testing.T) {
	sys, err := lfrc.New(lfrc.WithIncrementalDestroy(16))
	if err != nil {
		t.Fatal(err)
	}
	q, _ := sys.NewQueue()
	for v := lfrc.Value(1); v <= 1000; v++ {
		_ = q.Enqueue(v)
	}
	q.Close()

	if sys.Stats().Heap.LiveObjects == 0 && sys.ZombieCount() == 0 {
		// Nothing deferred: acceptable only if drain already happened.
		return
	}
	sys.DrainZombies(0)
	if got := sys.Stats().Heap.LiveObjects; got != 0 {
		t.Errorf("LiveObjects = %d after drain, want 0", got)
	}
}

func TestHeapLimitSurfacesError(t *testing.T) {
	sys, err := lfrc.New(lfrc.WithMaxHeapWords(1 << 16))
	if err != nil {
		t.Fatal(err)
	}
	q, err := sys.NewQueue()
	if err != nil {
		t.Fatal(err)
	}
	var enq lfrc.Value
	for {
		if err := q.Enqueue(enq); err != nil {
			break
		}
		enq++
		if enq > 1<<20 {
			t.Fatal("tiny heap never filled up")
		}
	}
	// Freeing memory makes enqueues work again.
	for i := 0; i < 100; i++ {
		if _, ok := q.Dequeue(); !ok {
			t.Fatal("queue empty while freeing room")
		}
	}
	if err := q.Enqueue(999); err != nil {
		t.Errorf("Enqueue after freeing room: %v", err)
	}
	q.Close()
}

func TestPushRejectsTooLargeValue(t *testing.T) {
	sys, _ := lfrc.New()
	d, _ := sys.NewDeque()
	defer d.Close()
	if err := d.PushLeft(lfrc.MaxValue + 1); err == nil {
		t.Error("PushLeft accepted out-of-range value")
	}
	if err := d.PushLeft(lfrc.MaxValue); err != nil {
		t.Errorf("PushLeft rejected MaxValue: %v", err)
	}
}

func TestEngineString(t *testing.T) {
	if lfrc.EngineLocking.String() != "locking" || lfrc.EngineMCAS.String() != "mcas" {
		t.Error("Engine.String mismatch")
	}
}

func TestUnknownEngineRejected(t *testing.T) {
	if _, err := lfrc.New(lfrc.WithEngine(lfrc.Engine(42))); err == nil {
		t.Error("New accepted an unknown engine")
	}
}

func TestStatsExposed(t *testing.T) {
	sys, _ := lfrc.New()
	d, _ := sys.NewDeque()
	_ = d.PushLeft(1)
	d.PopRight()
	d.Close()

	s := sys.Stats()
	if s.Heap.Allocs == 0 || s.Heap.Frees == 0 {
		t.Errorf("Stats.Heap not populated: %+v", s.Heap)
	}
	if s.RC.Loads == 0 || s.RC.DCASOps == 0 {
		t.Errorf("Stats.RC not populated: %+v", s.RC)
	}
	if sys.EngineName() != "locking" {
		t.Errorf("EngineName = %q", sys.EngineName())
	}
}
