package lfrc_test

import (
	"runtime"
	"sync"
	"testing"

	"lfrc"
)

func TestSetBasics(t *testing.T) {
	for name, sys := range systems(t) {
		t.Run(name, func(t *testing.T) {
			s, err := sys.NewSet()
			if err != nil {
				t.Fatalf("NewSet: %v", err)
			}
			for _, k := range []lfrc.Value{30, 10, 20} {
				ok, err := s.Insert(k)
				if err != nil || !ok {
					t.Fatalf("Insert(%d) = (%v,%v)", k, ok, err)
				}
			}
			if ok, _ := s.Insert(20); ok {
				t.Error("duplicate insert succeeded")
			}
			if !s.Contains(10) || s.Contains(15) {
				t.Error("Contains wrong")
			}
			keys := s.Keys()
			if len(keys) != 3 || keys[0] != 10 || keys[1] != 20 || keys[2] != 30 {
				t.Errorf("Keys = %v, want [10 20 30]", keys)
			}
			if !s.Delete(20) || s.Delete(20) {
				t.Error("Delete semantics wrong")
			}
			if s.Len() != 2 {
				t.Errorf("Len = %d, want 2", s.Len())
			}
			s.Close()
			if got := sys.Stats().Heap.LiveObjects; got != 0 {
				t.Errorf("LiveObjects = %d after Close, want 0", got)
			}
		})
	}
}

func TestSetAuditAndCollect(t *testing.T) {
	sys, err := lfrc.New()
	if err != nil {
		t.Fatal(err)
	}
	s, err := sys.NewSet()
	if err != nil {
		t.Fatal(err)
	}
	for k := lfrc.Value(0); k < 100; k++ {
		if _, err := s.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	for k := lfrc.Value(0); k < 100; k += 2 {
		s.Delete(k)
	}
	if vs := sys.Audit(); len(vs) != 0 {
		t.Errorf("Audit violations: %v", vs)
	}
	if res := sys.Collect(); res.Freed != 0 {
		t.Errorf("Collect freed %d from a healthy set", res.Freed)
	}
	if s.Len() != 50 {
		t.Errorf("Len = %d, want 50", s.Len())
	}
	s.Close()
}

func TestSetConcurrentSmoke(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	sys, err := lfrc.New(lfrc.WithEngine(lfrc.EngineMCAS))
	if err != nil {
		t.Fatal(err)
	}
	s, err := sys.NewSet()
	if err != nil {
		t.Fatal(err)
	}
	const workers, perW = 4, 300
	var wg sync.WaitGroup
	for p := 0; p < workers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			base := lfrc.Value(p * 1000)
			for i := 0; i < perW; i++ {
				k := base + lfrc.Value(i)
				if _, err := s.Insert(k); err != nil {
					t.Errorf("Insert: %v", err)
					return
				}
				if i%2 == 0 {
					s.Delete(k)
				}
			}
		}(p)
	}
	wg.Wait()
	if got, want := s.Len(), workers*perW/2; got != want {
		t.Errorf("Len = %d, want %d", got, want)
	}
	s.Close()
	if got := sys.Stats().Heap.LiveObjects; got != 0 {
		t.Errorf("LiveObjects = %d, want 0", got)
	}
}

func TestSetPopMin(t *testing.T) {
	sys, err := lfrc.New()
	if err != nil {
		t.Fatal(err)
	}
	s, err := sys.NewSet()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for _, k := range []lfrc.Value{30, 10, 20} {
		if _, err := s.Insert(k); err != nil {
			t.Fatal(err)
		}
	}
	want := []lfrc.Value{10, 20, 30}
	for _, w := range want {
		k, ok := s.PopMin()
		if !ok || k != w {
			t.Fatalf("PopMin = (%d,%v), want (%d,true)", k, ok, w)
		}
	}
	if _, ok := s.PopMin(); ok {
		t.Error("PopMin on drained set reported a value")
	}
}
