package lfrc_test

import (
	"errors"
	"flag"
	"strings"
	"testing"

	"lfrc"
)

// The three pluggable seams — engine, reclaimer, RC strategy — share one
// parser contract: String and Parse are inverses over every valid value,
// flag.Value works out of the box, and a bad name yields the one shared
// error shape (ErrUnknownName, listing the valid spellings).

// seamValue abstracts one enum value for the table: its canonical name and
// a round-trip through the seam's Parse function.
type seamCase struct {
	seam  string
	name  string             // String() of a valid value
	parse func(string) error // parse + compare against the value
	flagv func() flag.Value  // fresh flag.Value for Set round-trip
}

func roundTripCases() []seamCase {
	mk := func(seam, name string, parse func(string) error, flagv func() flag.Value) seamCase {
		return seamCase{seam: seam, name: name, parse: parse, flagv: flagv}
	}
	return []seamCase{
		mk("engine", lfrc.EngineLocking.String(),
			func(s string) error {
				v, err := lfrc.ParseEngine(s)
				if err == nil && v != lfrc.EngineLocking {
					return errors.New("wrong value")
				}
				return err
			},
			func() flag.Value { v := new(lfrc.Engine); return v }),
		mk("engine", lfrc.EngineMCAS.String(),
			func(s string) error {
				v, err := lfrc.ParseEngine(s)
				if err == nil && v != lfrc.EngineMCAS {
					return errors.New("wrong value")
				}
				return err
			},
			func() flag.Value { v := new(lfrc.Engine); return v }),
		mk("reclaimer", lfrc.ReclaimerLFRC.String(),
			func(s string) error {
				v, err := lfrc.ParseReclaimer(s)
				if err == nil && v != lfrc.ReclaimerLFRC {
					return errors.New("wrong value")
				}
				return err
			},
			func() flag.Value { v := new(lfrc.Reclaimer); return v }),
		mk("reclaimer", lfrc.ReclaimerEpoch.String(),
			func(s string) error {
				v, err := lfrc.ParseReclaimer(s)
				if err == nil && v != lfrc.ReclaimerEpoch {
					return errors.New("wrong value")
				}
				return err
			},
			func() flag.Value { v := new(lfrc.Reclaimer); return v }),
		mk("rc strategy", lfrc.RCFigure2.String(),
			func(s string) error {
				v, err := lfrc.ParseRCStrategy(s)
				if err == nil && v != lfrc.RCFigure2 {
					return errors.New("wrong value")
				}
				return err
			},
			func() flag.Value { v := new(lfrc.RCStrategy); return v }),
		mk("rc strategy", lfrc.RCSplit.String(),
			func(s string) error {
				v, err := lfrc.ParseRCStrategy(s)
				if err == nil && v != lfrc.RCSplit {
					return errors.New("wrong value")
				}
				return err
			},
			func() flag.Value { v := new(lfrc.RCStrategy); return v }),
	}
}

func TestSeamStringParseRoundTrip(t *testing.T) {
	for _, tc := range roundTripCases() {
		t.Run(tc.seam+"/"+tc.name, func(t *testing.T) {
			if err := tc.parse(tc.name); err != nil {
				t.Errorf("Parse(String()) round trip failed: %v", err)
			}
			// flag.Value Set must accept the same spelling and String it back.
			v := tc.flagv()
			if err := v.Set(tc.name); err != nil {
				t.Fatalf("Set(%q): %v", tc.name, err)
			}
			if got := v.String(); got != tc.name {
				t.Errorf("flag.Value String() = %q after Set(%q)", got, tc.name)
			}
		})
	}
}

func TestSeamParsersShareErrorShape(t *testing.T) {
	parsers := []struct {
		seam  string
		parse func(string) error
		names []string
	}{
		{"engine", func(s string) error { _, err := lfrc.ParseEngine(s); return err }, []string{"locking", "mcas"}},
		{"reclaimer", func(s string) error { _, err := lfrc.ParseReclaimer(s); return err }, []string{"lfrc", "epoch"}},
		{"rc strategy", func(s string) error { _, err := lfrc.ParseRCStrategy(s); return err }, []string{"figure2", "split"}},
	}
	for _, p := range parsers {
		t.Run(p.seam, func(t *testing.T) {
			err := p.parse("bogus")
			if err == nil {
				t.Fatal("parser accepted a bogus name")
			}
			if !errors.Is(err, lfrc.ErrUnknownName) {
				t.Errorf("error %v does not wrap ErrUnknownName", err)
			}
			for _, n := range p.names {
				if !strings.Contains(err.Error(), `"`+n+`"`) {
					t.Errorf("error %q does not list valid name %q", err, n)
				}
			}
			if !strings.Contains(err.Error(), `"bogus"`) {
				t.Errorf("error %q does not echo the rejected input", err)
			}
		})
	}
}
