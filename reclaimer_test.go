package lfrc_test

import (
	"strings"
	"testing"

	"lfrc"
)

func TestParseReclaimer(t *testing.T) {
	if r, err := lfrc.ParseReclaimer("lfrc"); err != nil || r != lfrc.ReclaimerLFRC {
		t.Errorf("ParseReclaimer(lfrc) = %v, %v", r, err)
	}
	if r, err := lfrc.ParseReclaimer("epoch"); err != nil || r != lfrc.ReclaimerEpoch {
		t.Errorf("ParseReclaimer(epoch) = %v, %v", r, err)
	}
	if _, err := lfrc.ParseReclaimer("hazard"); err == nil {
		t.Error("ParseReclaimer(hazard) succeeded")
	}
	// Reclaimer implements flag.Value.
	var r lfrc.Reclaimer
	if err := r.Set("epoch"); err != nil || r != lfrc.ReclaimerEpoch || r.String() != "epoch" {
		t.Errorf("flag.Value round-trip: %v, %v", r, err)
	}
	if err := r.Set("nope"); err == nil {
		t.Error("Reclaimer.Set(nope) succeeded")
	}
}

func TestNewRejectsUnknownReclaimer(t *testing.T) {
	_, err := lfrc.New(lfrc.WithReclamation(lfrc.Reclaimer(42)))
	if err == nil || !strings.Contains(err.Error(), "unknown reclaimer") {
		t.Fatalf("New(WithReclamation(42)) err = %v", err)
	}
}

// TestReclamationBackends runs the same workload under both backends on both
// engines and checks the shared invariant: after Close and a full drain, no
// zombies remain, every alloc was freed, and the Reclaim stats block names
// the configured backend consistently with ReclaimerName.
func TestReclamationBackends(t *testing.T) {
	for _, rec := range []lfrc.Reclaimer{lfrc.ReclaimerLFRC, lfrc.ReclaimerEpoch} {
		t.Run(rec.String(), func(t *testing.T) {
			for name, sys := range systems(t, lfrc.WithReclamation(rec)) {
				t.Run(name, func(t *testing.T) {
					if got := sys.ReclaimerName(); got != rec.String() {
						t.Fatalf("ReclaimerName = %q, want %q", got, rec)
					}
					q, err := sys.NewQueue()
					if err != nil {
						t.Fatal(err)
					}
					for v := lfrc.Value(1); v <= 200; v++ {
						if err := q.Enqueue(v); err != nil {
							t.Fatal(err)
						}
					}
					for v := lfrc.Value(1); v <= 200; v++ {
						got, ok := q.Dequeue()
						if !ok || got != v {
							t.Fatalf("Dequeue = (%d,%v), want (%d,true)", got, ok, v)
						}
					}
					q.Close()
					sys.DrainZombies(0)
					st := sys.Stats()
					if st.Reclaim.Backend != rec.String() {
						t.Errorf("Stats().Reclaim.Backend = %q, want %q", st.Reclaim.Backend, rec)
					}
					if st.Zombies != 0 || st.Reclaim.Pending != 0 {
						t.Errorf("zombies = %d, pending = %d after full drain, want 0",
							st.Zombies, st.Reclaim.Pending)
					}
					if st.Heap.LiveObjects != 0 {
						t.Errorf("LiveObjects = %d after Close+drain, want 0", st.Heap.LiveObjects)
					}
					// Freed counts cascaded descendants too, so it can
					// exceed Retired; with nothing pending it must at
					// least cover everything ever retired.
					if st.Reclaim.Freed < st.Reclaim.Retired {
						t.Errorf("freed %d < retired %d with empty backlog",
							st.Reclaim.Freed, st.Reclaim.Retired)
					}
					if rec == lfrc.ReclaimerEpoch && st.Reclaim.EpochAdvances == 0 {
						t.Error("epoch backend reported no advances after a drained workload")
					}
				})
			}
		})
	}
}
