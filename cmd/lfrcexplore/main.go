// Command lfrcexplore runs the controlled-concurrency explorer (see
// internal/explore) against the deque scenarios at user-chosen depth — the
// tool for hunting interleaving bugs beyond what CI-budgeted tests cover,
// such as the value-level races Doherty et al. (SPAA 2004) proved exist in
// the published Snark algorithm.
//
// Usage:
//
//	lfrcexplore [-scenario all] [-engine locking|mcas] [-reclaim lfrc|epoch]
//	            [-rc figure2|split] [-preemptions 3] [-maxruns 200000]
//	            [-claiming] [-random 0] [-maxsteps 200000]
//
// With -random N > 0, N seeded random schedules run instead of the
// preemption-bounded DFS. Exit status is 0 even when anomalies are found —
// finding them is the tool's purpose; heap-integrity violations (which the
// LFRC paper's guarantees forbid) exit non-zero.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"lfrc"
	"lfrc/internal/core"
	"lfrc/internal/dcas"
	"lfrc/internal/explore"
	"lfrc/internal/mem"
	"lfrc/internal/reclaim"
	"lfrc/internal/snark"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lfrcexplore:", err)
		os.Exit(1)
	}
}

type dequeOp struct {
	push  bool
	left  bool
	value uint64
}

func popL() dequeOp          { return dequeOp{left: true} }
func popR() dequeOp          { return dequeOp{} }
func pushR(v uint64) dequeOp { return dequeOp{push: true, value: v} }
func pushL(v uint64) dequeOp { return dequeOp{push: true, left: true, value: v} }

type namedScenario struct {
	name    string
	prefill []uint64
	threads [][]dequeOp
}

// scenarios are the near-empty shapes where the historical races live,
// plus slightly deeper ones for longer hunts.
func scenarios() []namedScenario {
	return []namedScenario{
		{name: "2elem-popL-popR", prefill: []uint64{1, 2}, threads: [][]dequeOp{{popL()}, {popR()}}},
		{name: "1elem-popL-popR", prefill: []uint64{1}, threads: [][]dequeOp{{popL()}, {popR()}}},
		{name: "1elem-popL-popR-pushR", prefill: []uint64{1}, threads: [][]dequeOp{{popL()}, {popR()}, {pushR(2)}}},
		{name: "2elem-popLpopL-popR", prefill: []uint64{1, 2}, threads: [][]dequeOp{{popL(), popL()}, {popR()}}},
		{name: "2elem-popL-popR-pushL-pushR", prefill: []uint64{1, 2},
			threads: [][]dequeOp{{popL()}, {popR()}, {pushL(3)}, {pushR(4)}}},
		{name: "3elem-popLpopL-popRpopR", prefill: []uint64{1, 2, 3},
			threads: [][]dequeOp{{popL(), popL()}, {popR(), popR()}}},
		{name: "empty-pushL-popR-pushR-popL", prefill: nil,
			threads: [][]dequeOp{{pushL(1), popR()}, {pushR(2), popL()}}},
	}
}

func buildScenario(sc namedScenario, engine lfrc.Engine, rec lfrc.Reclaimer, strat lfrc.RCStrategy, claiming bool) explore.Scenario {
	return func(instrument func(dcas.Engine) dcas.Engine) ([]func(), func() error) {
		h := mem.NewHeap()
		var base dcas.Engine
		if engine == lfrc.EngineMCAS {
			base = dcas.NewMCAS(h)
		} else {
			base = dcas.NewLocking(h)
		}
		e := instrument(base)
		// lfrc.Reclaimer is numerically aligned with reclaim.Kind, and
		// lfrc.RCStrategy with core.StrategyKind.
		rc := core.New(h, e,
			core.WithReclaimerKind(reclaim.Kind(rec)),
			core.WithStrategyKind(core.StrategyKind(strat)))
		var sopts []snark.Option
		if claiming {
			sopts = append(sopts, snark.WithValueClaiming())
		}
		d, err := snark.New(rc, snark.MustRegisterTypes(h), sopts...)
		if err != nil {
			panic(err)
		}
		expected := map[uint64]int{}
		for _, v := range sc.prefill {
			if err := d.PushRight(v); err != nil {
				panic(err)
			}
			expected[v]++
		}
		results := make([][]uint64, len(sc.threads))
		threads := make([]func(), len(sc.threads))
		for i, script := range sc.threads {
			i, script := i, script
			for _, op := range script {
				if op.push {
					expected[op.value]++
				}
			}
			threads[i] = func() {
				for _, op := range script {
					switch {
					case op.push && op.left:
						_ = d.PushLeft(op.value)
					case op.push:
						_ = d.PushRight(op.value)
					case op.left:
						if v, ok := d.PopLeft(); ok {
							results[i] = append(results[i], v)
						}
					default:
						if v, ok := d.PopRight(); ok {
							results[i] = append(results[i], v)
						}
					}
				}
			}
		}
		check := func() error {
			got := map[uint64]int{}
			for _, rs := range results {
				for _, v := range rs {
					got[v]++
				}
			}
			for {
				v, ok := d.PopLeft()
				if !ok {
					break
				}
				got[v]++
			}
			var problems []string
			for v, n := range got {
				if n != expected[v] {
					problems = append(problems, fmt.Sprintf("value %d delivered %d times (want %d)", v, n, expected[v]))
				}
			}
			for v := range expected {
				if got[v] == 0 && expected[v] > 0 {
					problems = append(problems, fmt.Sprintf("value %d lost", v))
				}
			}
			d.Close()
			// The epoch backend defers frees into limbo bins; finish its
			// work before demanding an empty heap.
			rc.DrainZombies(0)
			if hs := h.Stats(); hs.Corruptions != 0 || hs.DoubleFrees != 0 || hs.LiveObjects != 0 {
				problems = append(problems, fmt.Sprintf(
					"HEAP: corruptions=%d doubleFrees=%d live=%d", hs.Corruptions, hs.DoubleFrees, hs.LiveObjects))
			}
			if len(problems) > 0 {
				sort.Strings(problems)
				return fmt.Errorf("%v", problems)
			}
			return nil
		}
		return threads, check
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lfrcexplore", flag.ContinueOnError)
	engine := lfrc.EngineLocking
	var (
		scenarioName = fs.String("scenario", "all", "scenario name or 'all' (see -list)")
		list         = fs.Bool("list", false, "list scenarios and exit")
		preemptions  = fs.Int("preemptions", 3, "DFS preemption bound")
		maxRuns      = fs.Int("maxruns", 200_000, "maximum schedules per scenario")
		maxSteps     = fs.Int("maxsteps", 200_000, "step cap per run (livelock guard)")
		claiming     = fs.Bool("claiming", false, "use the value-claiming deque variant")
		random       = fs.Int("random", 0, "run N random schedules instead of DFS")
	)
	fs.Var(&engine, "engine", "DCAS engine under exploration: locking or mcas")
	reclaimer := lfrc.ReclaimerLFRC
	fs.Var(&reclaimer, "reclaim", "reclamation backend under exploration: lfrc or epoch")
	rcStrategy := lfrc.RCFigure2
	fs.Var(&rcStrategy, "rc", "reference-count strategy under exploration: figure2 or split")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, sc := range scenarios() {
			fmt.Println(sc.name)
		}
		return nil
	}

	heapProblem := false
	for _, sc := range scenarios() {
		if *scenarioName != "all" && sc.name != *scenarioName {
			continue
		}
		s := buildScenario(sc, engine, reclaimer, rcStrategy, *claiming)
		start := time.Now()
		var res explore.Result
		mode := fmt.Sprintf("dfs(<=%d preemptions)", *preemptions)
		if *random > 0 {
			res = explore.RunRandom(s, *random, 3, *maxSteps)
			mode = fmt.Sprintf("random(%d seeds)", *random)
		} else {
			res = explore.RunDFS(s, *preemptions, *maxRuns, *maxSteps)
		}
		fmt.Printf("%-28s %-22s runs=%-8d anomalies=%-4d incomplete=%-3d %v\n",
			sc.name, mode, res.Runs, res.Violations, res.Incomplete, time.Since(start).Round(time.Millisecond))
		if res.Violations > 0 {
			fmt.Printf("  first: %v\n  trace: %v\n", res.FirstError, res.FirstViolation)
			if strings.Contains(res.FirstError.Error(), "HEAP:") {
				heapProblem = true
			}
		}
	}
	if heapProblem {
		return fmt.Errorf("heap-integrity violation found (LFRC guarantee broken)")
	}
	return nil
}
