package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lfrc/internal/workload"
)

// record builds a minimal BenchRecord with the given per-experiment runs.
func record(t *testing.T, runs map[string][]float64) *workload.BenchRecord {
	t.Helper()
	rec := &workload.BenchRecord{
		SchemaVersion: workload.BenchSchemaVersion,
		CreatedUnixNS: 1,
		Host: workload.BenchHost{
			GOOS: "linux", GOARCH: "amd64", NumCPU: 8, GOMAXPROCS: 8, GoVersion: "go1.22",
		},
		Engine: "locking",
		Config: workload.BenchConfig{DurNS: 1e8, Runs: 5, Workers: 4, Prefill: 64},
	}
	// Deterministic order keeps output assertions simple.
	for _, id := range []string{"deque/balanced", "deque/push_heavy", "deque/pop_heavy"} {
		rs, ok := runs[id]
		if !ok {
			continue
		}
		sorted := append([]float64(nil), rs...)
		for i := 1; i < len(sorted); i++ { // insertion sort; tiny n
			for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		med := sorted[len(sorted)/2]
		if len(sorted)%2 == 0 {
			med = (sorted[len(sorted)/2-1] + sorted[len(sorted)/2]) / 2
		}
		rec.Experiments = append(rec.Experiments, workload.BenchExperiment{
			ID: id, Unit: "ops/sec", Runs: rs, Median: med,
		})
	}
	return rec
}

func writeRecord(t *testing.T, rec *workload.BenchRecord) string {
	t.Helper()
	raw, err := json.Marshal(rec)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	path := filepath.Join(t.TempDir(), "rec.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	return path
}

func TestIdenticalRecordsPass(t *testing.T) {
	runs := map[string][]float64{
		"deque/balanced":   {1e6, 1.1e6, 0.9e6, 1.05e6, 0.95e6},
		"deque/push_heavy": {2e6, 2.2e6, 1.8e6, 2.1e6, 1.9e6},
	}
	path := writeRecord(t, record(t, runs))
	var out bytes.Buffer
	n, err := run([]string{"-old", path, "-new", path}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if n != 0 {
		t.Errorf("identical records reported %d regressions:\n%s", n, out.String())
	}
	if !strings.Contains(out.String(), "no regressions") {
		t.Errorf("missing pass summary:\n%s", out.String())
	}
}

func TestInjectedSlowdownFlagged(t *testing.T) {
	old := map[string][]float64{
		"deque/balanced":   {1e6, 1.1e6, 0.9e6, 1.05e6, 0.95e6},
		"deque/push_heavy": {2e6, 2.2e6, 1.8e6, 2.1e6, 1.9e6},
	}
	// balanced runs at half throughput — a 2x slowdown; push_heavy unchanged.
	slow := map[string][]float64{
		"deque/balanced":   {0.5e6, 0.55e6, 0.45e6, 0.52e6, 0.48e6},
		"deque/push_heavy": old["deque/push_heavy"],
	}
	oldPath := writeRecord(t, record(t, old))
	newPath := writeRecord(t, record(t, slow))
	var out bytes.Buffer
	n, err := run([]string{"-old", oldPath, "-new", newPath}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if n != 1 {
		t.Errorf("2x slowdown on one experiment reported %d regressions, want 1:\n%s", n, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("missing REGRESSION verdict:\n%s", out.String())
	}
}

func TestNoisyButStableRunsPassAndSpeedupIsNotRegression(t *testing.T) {
	old := map[string][]float64{
		"deque/balanced": {1e6, 1.1e6, 0.9e6, 1.05e6, 0.95e6},
	}
	// Per-run jitter within tolerance of the pair, median ~unchanged.
	jitter := map[string][]float64{
		"deque/balanced": {0.95e6, 1.15e6, 0.87e6, 1.0e6, 1.0e6},
	}
	faster := map[string][]float64{
		"deque/balanced": {2e6, 2.2e6, 1.8e6, 2.1e6, 1.9e6},
	}
	oldPath := writeRecord(t, record(t, old))
	for name, rec := range map[string]map[string][]float64{"jitter": jitter, "faster": faster} {
		newPath := writeRecord(t, record(t, rec))
		var out bytes.Buffer
		n, err := run([]string{"-old", oldPath, "-new", newPath}, &out)
		if err != nil {
			t.Fatalf("%s: run: %v", name, err)
		}
		if n != 0 {
			t.Errorf("%s record reported %d regressions:\n%s", name, n, out.String())
		}
	}
}

func TestOneBadRunDoesNotFail(t *testing.T) {
	// A single outlier run (GC pause, scheduler hiccup) must not trip the
	// gate: the sign test needs a majority of degraded pairs.
	old := map[string][]float64{
		"deque/balanced": {1e6, 1e6, 1e6, 1e6, 1e6},
	}
	oneBad := map[string][]float64{
		"deque/balanced": {1e6, 0.3e6, 1e6, 1e6, 1e6},
	}
	oldPath := writeRecord(t, record(t, old))
	newPath := writeRecord(t, record(t, oneBad))
	n, err := run([]string{"-old", oldPath, "-new", newPath}, io.Discard)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if n != 0 {
		t.Errorf("one outlier run out of five reported %d regressions", n)
	}
}

func TestSchemaVersionMismatchRefused(t *testing.T) {
	runs := map[string][]float64{"deque/balanced": {1e6, 1e6, 1e6}}
	oldRec := record(t, runs)
	newRec := record(t, runs)
	newRec.SchemaVersion = workload.BenchSchemaVersion + 1
	_, err := run([]string{"-old", writeRecord(t, oldRec), "-new", writeRecord(t, newRec)}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "schema version") {
		t.Errorf("mismatched schema versions not refused: %v", err)
	}
}

func TestBadInputsRejected(t *testing.T) {
	runs := map[string][]float64{"deque/balanced": {1e6}}
	good := writeRecord(t, record(t, runs))
	if _, err := run([]string{"-new", good}, io.Discard); err == nil {
		t.Error("missing -old accepted")
	}
	if _, err := run([]string{"-old", good, "-new", good, "-tol", "1.5"}, io.Discard); err == nil {
		t.Error("-tol 1.5 accepted")
	}
	notJSON := filepath.Join(t.TempDir(), "x.json")
	os.WriteFile(notJSON, []byte("{}"), 0o644)
	if _, err := run([]string{"-old", notJSON, "-new", good}, io.Discard); err == nil {
		t.Error("record without schema_version accepted")
	}
	disjoint := record(t, map[string][]float64{"deque/pop_heavy": {1e6}})
	if _, err := run([]string{"-old", good, "-new", writeRecord(t, disjoint)}, io.Discard); err == nil {
		t.Error("records with no common experiments accepted")
	}
}

func TestHostMismatchWarnsButCompares(t *testing.T) {
	runs := map[string][]float64{"deque/balanced": {1e6, 1e6, 1e6}}
	oldRec := record(t, runs)
	newRec := record(t, runs)
	newRec.Host.NumCPU = 64
	var out bytes.Buffer
	n, err := run([]string{"-old", writeRecord(t, oldRec), "-new", writeRecord(t, newRec)}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if n != 0 {
		t.Errorf("host mismatch alone reported %d regressions", n)
	}
	if !strings.Contains(out.String(), "host mismatch") {
		t.Errorf("no host-mismatch warning:\n%s", out.String())
	}
}

func TestGOMAXPROCSMismatchRefused(t *testing.T) {
	runs := map[string][]float64{"deque/balanced": {1e6, 1e6, 1e6}}
	oldRec := record(t, runs)
	newRec := record(t, runs)
	newRec.Host.GOMAXPROCS = 4
	_, err := run([]string{"-old", writeRecord(t, oldRec), "-new", writeRecord(t, newRec)}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "gomaxprocs mismatch") {
		t.Errorf("cross-GOMAXPROCS records not refused: %v", err)
	}
}

// writeRecords commits a multi-record baseline array (the BENCH_0007.json
// shape: one record per GOMAXPROCS).
func writeRecords(t *testing.T, recs ...*workload.BenchRecord) string {
	t.Helper()
	flat := make([]workload.BenchRecord, len(recs))
	for i, r := range recs {
		flat[i] = *r
	}
	raw, err := json.Marshal(flat)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	path := filepath.Join(t.TempDir(), "recs.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	return path
}

func TestMultiRecordBaselineSelectsByGOMAXPROCS(t *testing.T) {
	// The gmp=1 baseline is slow and the gmp=8 one fast; a fast new record
	// at gmp=8 must be judged against the fast baseline (verdict ok), not
	// fall through to the slow one and read as an improvement.
	slow := record(t, map[string][]float64{"deque/balanced": {0.5e6, 0.5e6, 0.5e6}})
	slow.Host.GOMAXPROCS = 1
	fast := record(t, map[string][]float64{"deque/balanced": {1e6, 1e6, 1e6}})
	newRec := record(t, map[string][]float64{"deque/balanced": {1e6, 1e6, 1e6}})
	oldPath := writeRecords(t, slow, fast)

	var out bytes.Buffer
	n, err := run([]string{"-old", oldPath, "-new", writeRecord(t, newRec)}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if n != 0 || strings.Contains(out.String(), "improved") {
		t.Errorf("baseline selection picked the wrong record:\n%s", out.String())
	}

	// No record at the candidate's proc count: refuse, never cross-compare.
	newRec.Host.GOMAXPROCS = 2
	_, err = run([]string{"-old", oldPath, "-new", writeRecord(t, newRec)}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "gomaxprocs=2") {
		t.Errorf("missing-proc-count baseline not refused: %v", err)
	}
}

// withSeries attaches a per-interval telemetry series to one experiment.
func withSeries(rec *workload.BenchRecord, id string, series []float64) *workload.BenchRecord {
	for i := range rec.Experiments {
		if rec.Experiments[i].ID == id {
			rec.Experiments[i].Series = series
			rec.Experiments[i].SeriesUnit = "rc_ops/sec"
			rec.Experiments[i].IntervalNS = 1e7
		}
	}
	return rec
}

func TestSteadyStateWindowOverridesWholeRunMedian(t *testing.T) {
	// Whole-run pairs degrade ~30%, but both series agree once the two
	// warmup intervals are dropped: the slowdown was all warmup. With the
	// steady window the ratio is 1.0 and the gate passes; without series
	// the same records would regress (checked below).
	old := map[string][]float64{"deque/balanced": {1e6, 1e6, 1e6, 1e6, 1e6}}
	slow := map[string][]float64{"deque/balanced": {0.7e6, 0.7e6, 0.7e6, 0.7e6, 0.7e6}}
	steady := []float64{2e5, 5e5, 1e6, 1e6, 1e6, 1e6}

	oldPath := writeRecord(t, withSeries(record(t, old), "deque/balanced", steady))
	newPath := writeRecord(t, withSeries(record(t, slow), "deque/balanced", steady))
	var out bytes.Buffer
	n, err := run([]string{"-old", oldPath, "-new", newPath}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if n != 0 {
		t.Errorf("steady-equal records reported %d regressions:\n%s", n, out.String())
	}
	if !strings.Contains(out.String(), "(steady)") {
		t.Errorf("steady window not marked in output:\n%s", out.String())
	}

	// Control: the same medians without series DO regress, proving the
	// steady window (not the tolerance) carried the verdict above.
	n, err = run([]string{"-old", writeRecord(t, record(t, old)), "-new", writeRecord(t, record(t, slow))}, io.Discard)
	if err != nil {
		t.Fatalf("control run: %v", err)
	}
	if n != 1 {
		t.Errorf("control without series reported %d regressions, want 1", n)
	}

	// A one-sided series must not flip to the steady window.
	var out2 bytes.Buffer
	n, err = run([]string{"-old", writeRecord(t, record(t, old)),
		"-new", writeRecord(t, withSeries(record(t, slow), "deque/balanced", steady))}, &out2)
	if err != nil {
		t.Fatalf("one-sided run: %v", err)
	}
	if n != 1 || strings.Contains(out2.String(), "(steady)") {
		t.Errorf("one-sided series misjudged (n=%d):\n%s", n, out2.String())
	}
}

func TestSteadyStateCatchesSteadyRegression(t *testing.T) {
	// Inverse of the above: when the steady windows genuinely diverge the
	// gate still fires, and the verdict is marked as steady-judged.
	old := map[string][]float64{"deque/balanced": {1e6, 1e6, 1e6, 1e6, 1e6}}
	slow := map[string][]float64{"deque/balanced": {0.8e6, 0.8e6, 0.8e6, 0.8e6, 0.8e6}}
	oldSeries := []float64{5e5, 1e6, 1e6, 1e6, 1e6, 1e6}
	newSeries := []float64{5e5, 1e6, 0.6e6, 0.6e6, 0.6e6, 0.6e6}

	oldPath := writeRecord(t, withSeries(record(t, old), "deque/balanced", oldSeries))
	newPath := writeRecord(t, withSeries(record(t, slow), "deque/balanced", newSeries))
	var out bytes.Buffer
	n, err := run([]string{"-old", oldPath, "-new", newPath}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if n != 1 || !strings.Contains(out.String(), "REGRESSION (steady)") {
		t.Errorf("steady regression missed (n=%d):\n%s", n, out.String())
	}
}

func TestRCStrategyMismatchRefused(t *testing.T) {
	runs := map[string][]float64{"deque/balanced": {1e6, 1e6, 1e6}}
	oldRec := record(t, runs) // no rc_strategy field: legacy record, reads as figure2
	newRec := record(t, runs)
	newRec.RCStrategy = "split"
	_, err := run([]string{"-old", writeRecord(t, oldRec), "-new", writeRecord(t, newRec)}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "rc strategy mismatch") {
		t.Errorf("cross-strategy records not refused: %v", err)
	}
	// A refusal is a hard error, exit 2 — distinct from exit 1's regression
	// verdict, so CI can tell "cannot compare" from "compared and regressed".
	if got := exitCode(0, err); got != 2 {
		t.Errorf("refusal exit code = %d, want 2", got)
	}

	// Same strategy — explicitly or via the legacy default — compares fine.
	newRec.RCStrategy = "figure2"
	if _, err := run([]string{"-old", writeRecord(t, oldRec), "-new", writeRecord(t, newRec)}, io.Discard); err != nil {
		t.Errorf("legacy-vs-figure2 records refused: %v", err)
	}
	oldRec.RCStrategy, newRec.RCStrategy = "split", "split"
	if _, err := run([]string{"-old", writeRecord(t, oldRec), "-new", writeRecord(t, newRec)}, io.Discard); err != nil {
		t.Errorf("split-vs-split records refused: %v", err)
	}
}

func TestSchemaV1V2Comparable(t *testing.T) {
	// v2 only added rc_strategy: a v1 baseline must stay usable against a v2
	// candidate (and vice versa), while unknown versions are still refused
	// (TestSchemaVersionMismatchRefused).
	runs := map[string][]float64{"deque/balanced": {1e6, 1e6, 1e6}}
	oldRec := record(t, runs)
	oldRec.SchemaVersion = 1
	newRec := record(t, runs)
	if _, err := run([]string{"-old", writeRecord(t, oldRec), "-new", writeRecord(t, newRec)}, io.Discard); err != nil {
		t.Errorf("v1 baseline vs v2 candidate refused: %v", err)
	}
}

func TestReclaimerMismatchRefused(t *testing.T) {
	runs := map[string][]float64{"deque/balanced": {1e6, 1e6, 1e6}}
	oldRec := record(t, runs) // no reclaimer field: legacy record, reads as lfrc
	newRec := record(t, runs)
	newRec.Reclaimer = "epoch"
	_, err := run([]string{"-old", writeRecord(t, oldRec), "-new", writeRecord(t, newRec)}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "reclaimer mismatch") {
		t.Errorf("cross-backend records not refused: %v", err)
	}

	// Same backend — explicitly or via the legacy default — compares fine.
	newRec.Reclaimer = "lfrc"
	if _, err := run([]string{"-old", writeRecord(t, oldRec), "-new", writeRecord(t, newRec)}, io.Discard); err != nil {
		t.Errorf("legacy-vs-lfrc records refused: %v", err)
	}
	oldRec.Reclaimer, newRec.Reclaimer = "epoch", "epoch"
	if _, err := run([]string{"-old", writeRecord(t, oldRec), "-new", writeRecord(t, newRec)}, io.Discard); err != nil {
		t.Errorf("epoch-vs-epoch records refused: %v", err)
	}
}
