// Command lfrcperf compares two machine-readable benchmark records written
// by `lfrcbench -bench-json` and fails (exit 1) on performance regression.
//
// Usage:
//
//	lfrcperf -old BENCH_0004.json -new current.json [-tol 0.10]
//
// Throughput on a shared machine drifts by tens of percent across seconds,
// so a naive "median got smaller" check would cry wolf constantly. The
// verdict is therefore noise-aware, per experiment:
//
//   - the i-th runs of the two records are paired (both records interleave
//     their runs round-robin, so run i saw comparable machine state) and a
//     sign test counts how many pairs degraded by more than the tolerance;
//   - an experiment regresses only when a majority of pairs degraded AND
//     the median ratio new/old is below 1 - tolerance;
//   - when both records carry a per-interval telemetry series (the timeline
//     trajectory of each experiment's final run), the median ratio is taken
//     over the steady-state window — the first warmupIntervals samples are
//     excluded — instead of whole-run medians, so allocator/scheduler warmup
//     can neither mask nor fake a regression.
//
// A record is refused (exit 2, a hard error distinct from exit 1's
// regression verdict) when the schema versions are incompatible (v1 and v2
// differ only by the additive rc_strategy field and remain comparable), when
// the two records measured different reclamation backends — lfrc-vs-epoch
// deltas are a policy comparison (experiment R2), not a regression signal, so
// comparing them here would poison the gate — when they measured different
// reference-count strategies — figure2-vs-split is experiment R3's protocol
// comparison, and the protocols do different per-operation work by design —
// and when they ran at different GOMAXPROCS: the scalability curve is not
// flat, so a 4-proc record "regressing" against a 1-proc record (or vice
// versa) is a topology delta, not a code one. Records written before the
// reclaimer and rc_strategy fields existed count as "lfrc" and "figure2", the
// only choices of their era. Any other host mismatch is reported but compared
// anyway (with a warning — cross-host ratios need generous tolerance).
//
// The -old baseline may be a JSON array of records (one per GOMAXPROCS, as
// in BENCH_0007.json); the record whose gomaxprocs matches the -new record
// is selected automatically.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"

	"lfrc/internal/workload"
)

func main() {
	regressions, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lfrcperf:", err)
	}
	os.Exit(exitCode(regressions, err))
}

// exitCode maps run's outcome to the process exit status: refusals and other
// hard errors exit 2, regressions exit 1, a clean comparison exits 0.
func exitCode(regressions int, err error) int {
	switch {
	case err != nil:
		return 2
	case regressions > 0:
		return 1
	default:
		return 0
	}
}

// run executes the comparison and returns how many experiments regressed.
func run(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("lfrcperf", flag.ContinueOnError)
	var (
		oldPath = fs.String("old", "", "baseline record (from lfrcbench -bench-json)")
		newPath = fs.String("new", "", "candidate record to judge against the baseline")
		tol     = fs.Float64("tol", 0.10, "relative tolerance: a run pair degrades when new < old*(1-tol)")
	)
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	if *oldPath == "" || *newPath == "" {
		return 0, fmt.Errorf("both -old and -new are required")
	}
	if *tol < 0 || *tol >= 1 {
		return 0, fmt.Errorf("-tol %v out of range [0, 1)", *tol)
	}

	newRec, err := readRecord(*newPath)
	if err != nil {
		return 0, err
	}
	oldRec, err := readBaseline(*oldPath, newRec.Host.GOMAXPROCS)
	if err != nil {
		return 0, err
	}
	if !compatibleSchemas(oldRec.SchemaVersion, newRec.SchemaVersion) {
		return 0, fmt.Errorf("schema version mismatch: %s is v%d, %s is v%d",
			*oldPath, oldRec.SchemaVersion, *newPath, newRec.SchemaVersion)
	}
	if err := refuseMismatch("reclaimer", *oldPath, reclaimerOf(oldRec), *newPath, reclaimerOf(newRec),
		"backend policies are compared in experiment R2, not gated here"); err != nil {
		return 0, err
	}
	if err := refuseMismatch("rc strategy", *oldPath, rcStrategyOf(oldRec), *newPath, rcStrategyOf(newRec),
		"the protocols do different per-operation work by design, so the delta "+
			"is experiment R3's comparison, not a regression"); err != nil {
		return 0, err
	}
	og, ng := oldRec.Host.GOMAXPROCS, newRec.Host.GOMAXPROCS
	if err := refuseMismatch("gomaxprocs", *oldPath, strconv.Itoa(og), *newPath, strconv.Itoa(ng),
		fmt.Sprintf("throughput does not scale flat across proc counts, so the delta "+
			"is topology, not regression — record a baseline at GOMAXPROCS=%d", ng)); err != nil {
		return 0, err
	}
	if oldRec.Host != newRec.Host {
		fmt.Fprintf(stdout, "warning: host mismatch (%+v vs %+v); cross-host ratios need generous -tol\n",
			oldRec.Host, newRec.Host)
	}
	if oldRec.Engine != newRec.Engine {
		fmt.Fprintf(stdout, "warning: engine mismatch (%s vs %s)\n", oldRec.Engine, newRec.Engine)
	}

	oldByID := map[string]workload.BenchExperiment{}
	for _, e := range oldRec.Experiments {
		oldByID[e.ID] = e
	}

	fmt.Fprintf(stdout, "%-20s %14s %14s %8s %8s  %s\n",
		"experiment", "old median", "new median", "ratio", "pairs", "verdict")
	regressions := 0
	compared := 0
	for _, ne := range newRec.Experiments {
		oe, ok := oldByID[ne.ID]
		if !ok {
			fmt.Fprintf(stdout, "%-20s %14s %14s %8s %8s  new (no baseline)\n",
				ne.ID, "-", fmtRate(ne.Median), "-", "-")
			continue
		}
		delete(oldByID, ne.ID)
		compared++

		n := len(oe.Runs)
		if len(ne.Runs) < n {
			n = len(ne.Runs)
		}
		worse, better := 0, 0
		for i := 0; i < n; i++ {
			switch {
			case ne.Runs[i] < oe.Runs[i]*(1-*tol):
				worse++
			case ne.Runs[i] > oe.Runs[i]*(1+*tol):
				better++
			}
		}
		ratio := 0.0
		if oe.Median > 0 {
			ratio = ne.Median / oe.Median
		}
		window := ""
		if so, sn, ok := steadyMedians(oe, ne); ok {
			ratio = sn / so
			window = " (steady)"
		}

		verdict := "ok"
		switch {
		case n == 0 || oe.Median <= 0:
			verdict = "no data"
		case worse > n/2 && ratio < 1-*tol:
			verdict = "REGRESSION"
			regressions++
		case better > n/2 && ratio > 1+*tol:
			verdict = "improved"
		}
		fmt.Fprintf(stdout, "%-20s %14s %14s %7.2fx %5d/%-2d  %s%s\n",
			ne.ID, fmtRate(oe.Median), fmtRate(ne.Median), ratio, worse, n, verdict, window)
	}
	for id := range oldByID {
		fmt.Fprintf(stdout, "%-20s dropped from the new record\n", id)
	}
	if compared == 0 {
		return 0, fmt.Errorf("no experiments in common between the two records")
	}
	if regressions > 0 {
		fmt.Fprintf(stdout, "%d regression(s) beyond tol=%.0f%%\n", regressions, *tol*100)
	} else {
		fmt.Fprintf(stdout, "no regressions beyond tol=%.0f%%\n", *tol*100)
	}
	return regressions, nil
}

// warmupIntervals is how many leading timeline samples the steady-state
// window drops: the first intervals of a run see allocator cold paths, page
// faults, and scheduler ramp, none of which are the code under judgment.
const warmupIntervals = 2

// steadyMedians returns the steady-state medians of both experiments'
// per-interval series. ok is false unless BOTH records carry a series long
// enough to leave data past the warmup window — a one-sided window would
// compare steady-state against whole-run and bias the ratio.
func steadyMedians(oe, ne workload.BenchExperiment) (so, sn float64, ok bool) {
	if len(oe.Series) <= warmupIntervals || len(ne.Series) <= warmupIntervals {
		return 0, 0, false
	}
	so = medianOf(oe.Series[warmupIntervals:])
	sn = medianOf(ne.Series[warmupIntervals:])
	return so, sn, so > 0
}

// medianOf computes the median of vals without mutating them.
func medianOf(vals []float64) float64 {
	s := append([]float64(nil), vals...)
	if len(s) == 0 {
		return 0
	}
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

// refuseMismatch is the one comparison-refusal shape: when a configuration
// axis differs between the two records the comparison itself is meaningless,
// so the gate must answer "cannot compare" (exit 2), never "regression"
// (exit 1) or "ok" (exit 0). A nil return means the axis matches.
func refuseMismatch(what, oldPath, oldVal, newPath, newVal, why string) error {
	if oldVal == newVal {
		return nil
	}
	return fmt.Errorf("%s mismatch: %s measured %q, %s measured %q; %s",
		what, oldPath, oldVal, newPath, newVal, why)
}

// compatibleSchemas reports whether two BenchRecord schema versions can be
// compared: v2 only added the rc_strategy field to v1 (read back as
// "figure2"), so v1 and v2 records remain mutually comparable.
func compatibleSchemas(a, b int) bool {
	if a == b {
		return true
	}
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	return lo == 1 && hi == 2
}

// reclaimerOf names a record's reclamation backend; records that predate the
// field were all taken on the lfrc backend.
func reclaimerOf(rec *workload.BenchRecord) string {
	if rec.Reclaimer == "" {
		return "lfrc"
	}
	return rec.Reclaimer
}

// rcStrategyOf names a record's reference-count strategy; records that
// predate the field (schema v1) were all taken on the figure2 protocol.
func rcStrategyOf(rec *workload.BenchRecord) string {
	if rec.RCStrategy == "" {
		return "figure2"
	}
	return rec.RCStrategy
}

func readRecord(path string) (*workload.BenchRecord, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec workload.BenchRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rec.SchemaVersion == 0 {
		return nil, fmt.Errorf("%s: not a lfrcbench -bench-json record (no schema_version)", path)
	}
	return &rec, nil
}

// readBaseline reads the -old side, which may be either a single record or a
// JSON array of records taken at different GOMAXPROCS (BENCH_0007.json
// onward). From an array it selects the record matching the candidate's
// GOMAXPROCS, so one committed baseline file serves every machine shape.
func readBaseline(path string, gomaxprocs int) (*workload.BenchRecord, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	trimmed := bytes.TrimLeft(raw, " \t\r\n")
	if len(trimmed) == 0 || trimmed[0] != '[' {
		return readRecord(path)
	}
	var recs []workload.BenchRecord
	if err := json.Unmarshal(raw, &recs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	for i := range recs {
		if recs[i].SchemaVersion == 0 {
			return nil, fmt.Errorf("%s: baseline record %d has no schema_version", path, i)
		}
	}
	for i := range recs {
		if recs[i].Host.GOMAXPROCS == gomaxprocs {
			return &recs[i], nil
		}
	}
	return nil, fmt.Errorf("%s: no baseline record at gomaxprocs=%d among %d records; "+
		"re-record the baseline at that proc count", path, gomaxprocs, len(recs))
}

func fmtRate(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fM/s", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk/s", v/1e3)
	default:
		return fmt.Sprintf("%.0f/s", v)
	}
}
