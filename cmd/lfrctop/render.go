package main

import (
	"fmt"
	"strings"
	"time"

	"lfrc/internal/timeline"
	"lfrc/internal/watchdog"
)

// sparkRunes is the 8-level sparkline alphabet, lowest to highest.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline renders vals as one sparkline string, scaling to the series max.
// An all-zero (or empty) series renders as the lowest bar throughout.
func sparkline(vals []float64) string {
	max := 0.0
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		i := 0
		if max > 0 && v > 0 {
			i = int(v / max * float64(len(sparkRunes)-1))
			if i < 0 {
				i = 0
			}
			if i >= len(sparkRunes) {
				i = len(sparkRunes) - 1
			}
		}
		b.WriteRune(sparkRunes[i])
	}
	return b.String()
}

// series extracts one per-sample metric as floats over the trailing window.
func series(ss []timeline.Sample, window int, get func(timeline.Sample) float64) []float64 {
	if len(ss) > window {
		ss = ss[len(ss)-window:]
	}
	out := make([]float64, len(ss))
	for i, s := range ss {
		out[i] = get(s)
	}
	return out
}

// fmtCount renders a count with k/M suffixes to keep panel rows narrow.
func fmtCount(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// panel renders one dashboard row: a fixed-width title, the sparkline over
// the window, and the newest value.
func panel(title string, vals []float64, unit string) string {
	cur := 0.0
	if len(vals) > 0 {
		cur = vals[len(vals)-1]
	}
	return fmt.Sprintf("  %-14s %s  %s %s\n", title, sparkline(vals), fmtCount(cur), unit)
}

// incidentGlyphs maps watchdog severity levels to panel glyphs.
func incidentGlyph(level watchdog.Severity) string {
	switch level {
	case watchdog.SevCritical:
		return "✖"
	case watchdog.SevWarn:
		return "▲"
	default:
		return "•"
	}
}

// incidentsPanel renders the watchdog's last few incidents, newest last. An
// absent or disabled watchdog document renders nothing (older muxes without
// /debug/lfrc/incidents.json keep the dashboard usable).
func incidentsPanel(b *strings.Builder, inc watchdog.Doc, keep int, now time.Time) {
	if !inc.Enabled {
		return
	}
	b.WriteString("\n  incidents (health watchdog)\n")
	if len(inc.Incidents) == 0 {
		b.WriteString("    (none — all rules quiet)\n")
		return
	}
	recs := inc.Incidents
	if len(recs) > keep {
		recs = recs[len(recs)-keep:]
	}
	for _, r := range recs {
		age := ""
		if r.LastTS > 0 {
			age = fmtAge(now.Sub(time.Unix(0, r.LastTS)))
		}
		fmt.Fprintf(b, "    %s %-8s %-15s ×%-3d %-5s %s\n",
			incidentGlyph(r.Level), r.Severity, r.Rule, r.Count, age, r.Message)
	}
}

// fmtAge renders an incident age compactly ("3s", "2m", "1h").
func fmtAge(d time.Duration) string {
	switch {
	case d < 0:
		return "0s"
	case d < time.Minute:
		return fmt.Sprintf("%ds", int(d.Seconds()))
	case d < time.Hour:
		return fmt.Sprintf("%dm", int(d.Minutes()))
	default:
		return fmt.Sprintf("%dh", int(d.Hours()))
	}
}

// render builds one complete dashboard frame from a timeline document plus
// the watchdog's incident document. Pure text: the caller owns cursor
// control.
func render(doc timeline.Doc, inc watchdog.Doc, window int, now time.Time) string {
	var b strings.Builder
	ss := doc.Samples

	fmt.Fprintf(&b, "lfrctop — lfrc telemetry timeline (schema v%d)  %s\n",
		doc.SchemaVersion, now.Format("15:04:05"))
	if !doc.Enabled {
		b.WriteString("\n  timeline disabled: build the system with lfrc.WithTimeline\n")
		return b.String()
	}
	fmt.Fprintf(&b, "interval %v · ring %d/%d · %d captured · %d dropped\n\n",
		time.Duration(doc.IntervalNS), doc.Retained, doc.Slots, doc.Captures, doc.Dropped)
	if len(ss) == 0 {
		b.WriteString("  no samples yet\n")
		return b.String()
	}

	b.WriteString(panel("throughput", series(ss, window, func(s timeline.Sample) float64 { return s.Rate() }), "ops/s"))
	b.WriteString(panel("rc churn", series(ss, window, func(s timeline.Sample) float64 {
		return float64(s.RCDestroys + s.RCZombiePushes + s.HeapFrees)
	}), "frees/intv"))
	b.WriteString(panel("load retries", series(ss, window, func(s timeline.Sample) float64 {
		return float64(s.RCLoadRetries)
	}), "/intv"))
	b.WriteString(panel("zombie/limbo", series(ss, window, func(s timeline.Sample) float64 {
		return float64(s.ReclaimPending)
	}), "pending"))
	b.WriteString(panel("degradation", series(ss, window, func(s timeline.Sample) float64 {
		return float64(s.DegRetries + s.DegExhaustions)
	}), "/intv"))
	b.WriteString(panel("faults", series(ss, window, func(s timeline.Sample) float64 {
		return float64(s.FaultInjected)
	}), "/intv"))
	b.WriteString(panel("live objects", series(ss, window, func(s timeline.Sample) float64 {
		return float64(s.HeapLiveObjects)
	}), "objs"))

	newest := ss[len(ss)-1]
	if newest.LatLoadP50 > 0 || newest.RetryP99 > 0 {
		fmt.Fprintf(&b, "\n  latency  load p50 %s p99 %s · store p50 %s p99 %s · retry p99 %d\n",
			fmtNS(newest.LatLoadP50), fmtNS(newest.LatLoadP99),
			fmtNS(newest.LatStoreP50), fmtNS(newest.LatStoreP99), newest.RetryP99)
	}

	b.WriteString("\n  contention heatmap (hottest cells now)\n")
	hot := false
	for _, h := range newest.Hot {
		if h.Addr == 0 {
			continue
		}
		hot = true
		fmt.Fprintf(&b, "    %-10s %-10s hot %-8s failures %s\n",
			fmt.Sprintf("%#x", h.Addr), h.Role, fmtCount(float64(h.Hot)), fmtCount(float64(h.Failures)))
	}
	if !hot {
		b.WriteString("    (quiet — no contended cells)\n")
	}
	incidentsPanel(&b, inc, 4, now)
	return b.String()
}

// fmtNS renders nanoseconds with a unit suffix.
func fmtNS(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
