// Command lfrctop is the live terminal dashboard for an lfrc system: it polls
// the /debug/lfrc/timeline.json and /debug/lfrc/incidents.json endpoints (see
// lfrc.WithTimeline, lfrc.WithWatchdog and lfrc.NewDebugMux) and redraws
// sparkline panels for throughput, RC churn, zombie/limbo depth, degradation
// activity, the contention heatmap, and the health watchdog's latest
// incidents.
//
// Usage:
//
//	lfrcbench -run O1 -metrics :8080 &   # anything serving the debug mux
//	lfrctop -addr localhost:8080
//
// Flags:
//
//	-addr     host:port or URL of the debug mux (default localhost:8080)
//	-interval poll/redraw cadence (default 1s)
//	-window   how many trailing samples the sparklines span (default 60)
//	-once     fetch once, print one frame without ANSI control, and exit
//
// The dashboard is stdlib-only: plain ANSI escapes, no terminal library.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"lfrc/internal/timeline"
	"lfrc/internal/watchdog"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "debug-mux address (host:port or full URL)")
	interval := flag.Duration("interval", time.Second, "poll/redraw cadence")
	window := flag.Int("window", 60, "trailing samples shown in sparklines")
	once := flag.Bool("once", false, "fetch once, print one plain frame, exit")
	flag.Parse()

	url := timelineURL(*addr)
	incURL := incidentsURL(*addr)
	client := &http.Client{Timeout: 5 * time.Second}

	if *once {
		doc, err := fetch(client, url)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lfrctop: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(render(doc, fetchIncidents(client, incURL), *window, time.Now()))
		return
	}

	// Alternate-screen + hidden cursor for flicker-free redraw; restore on
	// exit. Each frame homes the cursor and clears to end-of-screen.
	fmt.Print("\x1b[?1049h\x1b[?25l")
	defer fmt.Print("\x1b[?25h\x1b[?1049l")
	for {
		doc, err := fetch(client, url)
		frame := ""
		if err != nil {
			frame = fmt.Sprintf("lfrctop: %s\n\n%v\n(retrying every %v)\n", url, err, *interval)
		} else {
			frame = render(doc, fetchIncidents(client, incURL), *window, time.Now())
		}
		fmt.Print("\x1b[H" + strings.ReplaceAll(frame, "\n", "\x1b[K\n") + "\x1b[J")
		time.Sleep(*interval)
	}
}

// timelineURL normalizes -addr into the timeline endpoint URL.
func timelineURL(addr string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimSuffix(addr, "/") + "/debug/lfrc/timeline.json"
}

// incidentsURL normalizes -addr into the watchdog incidents endpoint URL.
func incidentsURL(addr string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimSuffix(addr, "/") + "/debug/lfrc/incidents.json"
}

// fetchIncidents retrieves the watchdog incident document. Best-effort: any
// error (including a mux predating the endpoint) yields a zero document,
// which renders as no panel at all.
func fetchIncidents(client *http.Client, url string) watchdog.Doc {
	var doc watchdog.Doc
	resp, err := client.Get(url)
	if err != nil {
		return watchdog.Doc{}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return watchdog.Doc{}
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return watchdog.Doc{}
	}
	return doc
}

// fetch retrieves and decodes one timeline document.
func fetch(client *http.Client, url string) (timeline.Doc, error) {
	var doc timeline.Doc
	resp, err := client.Get(url)
	if err != nil {
		return doc, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return doc, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return doc, fmt.Errorf("decode %s: %w", url, err)
	}
	if doc.SchemaVersion != timeline.SchemaVersion {
		return doc, fmt.Errorf("timeline schema v%d, this lfrctop speaks v%d", doc.SchemaVersion, timeline.SchemaVersion)
	}
	return doc, nil
}
