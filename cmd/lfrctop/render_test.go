package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lfrc"
	"lfrc/internal/timeline"
	"lfrc/internal/watchdog"
)

func TestSparklineScaling(t *testing.T) {
	cases := []struct {
		vals []float64
		want string
	}{
		{nil, ""},
		{[]float64{0, 0, 0}, "▁▁▁"},
		{[]float64{1, 1, 1}, "███"},
		{[]float64{0, 50, 100}, "▁▄█"},
		{[]float64{100}, "█"},
	}
	for _, c := range cases {
		if got := sparkline(c.vals); got != c.want {
			t.Errorf("sparkline(%v) = %q, want %q", c.vals, got, c.want)
		}
	}
}

func TestSeriesWindow(t *testing.T) {
	ss := make([]timeline.Sample, 10)
	for i := range ss {
		ss[i].ReclaimPending = int64(i)
	}
	got := series(ss, 4, func(s timeline.Sample) float64 { return float64(s.ReclaimPending) })
	if len(got) != 4 || got[0] != 6 || got[3] != 9 {
		t.Errorf("series window = %v, want trailing [6 7 8 9]", got)
	}
}

// sampleDoc builds a small synthetic timeline document.
func sampleDoc() timeline.Doc {
	ss := make([]timeline.Sample, 8)
	for i := range ss {
		ss[i].Seq = uint64(i + 1)
		ss[i].DurNS = int64(100 * time.Millisecond)
		ss[i].RCLoads = int64(1000 * (i + 1))
		ss[i].ReclaimPending = int64(64 * (8 - i))
		ss[i].DegRetries = int64(i)
		ss[i].HeapLiveObjects = 500
		ss[i].LatLoadP50 = 256
		ss[i].LatLoadP99 = 4096
		ss[i].RetryP99 = 4
	}
	ss[7].Hot[0] = timeline.HotCell{Addr: 0x40, Role: "right_hat", Hot: 99, Failures: 12}
	return timeline.Doc{
		SchemaVersion: timeline.SchemaVersion,
		Enabled:       true,
		IntervalNS:    int64(100 * time.Millisecond),
		Slots:         512,
		Captures:      8,
		Retained:      8,
		Samples:       ss,
	}
}

// sampleIncidents builds a synthetic watchdog incident document: one stale
// warning and one fresh critical, as the panel would see mid-incident.
func sampleIncidents() watchdog.Doc {
	return watchdog.Doc{
		SchemaVersion: watchdog.SchemaVersion,
		Enabled:       true,
		Incidents: []watchdog.Incident{
			{ID: 1, Rule: "retry_storm", Severity: "warn", Level: watchdog.SevWarn,
				Message: "retry p99 held at 12 (threshold 8) across 5 intervals",
				Count:   3, LastTS: time.Unix(100, 0).UnixNano()},
			{ID: 2, Rule: "limbo_stall", Severity: "critical", Level: watchdog.SevCritical,
				Message: "limbo grew 80→1880 over 1.0s with zero drains",
				Count:   1, LastTS: time.Unix(175, 0).UnixNano()},
		},
	}
}

func TestRenderFrame(t *testing.T) {
	frame := render(sampleDoc(), watchdog.Doc{}, 60, time.Unix(0, 0))
	for _, want := range []string{
		"lfrctop", "schema v1", "throughput", "rc churn", "zombie/limbo",
		"degradation", "contention heatmap", "0x40", "right_hat",
		"latency", "retry p99 4",
	} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame missing %q:\n%s", want, frame)
		}
	}
	// The limbo panel must carry a real sparkline (the series is nonzero).
	for _, line := range strings.Split(frame, "\n") {
		if strings.Contains(line, "zombie/limbo") && !strings.ContainsAny(line, "▂▃▄▅▆▇█") {
			t.Errorf("limbo panel has a flat sparkline: %q", line)
		}
	}
	if strings.Contains(frame, "\x1b") {
		t.Error("render output contains ANSI escapes; cursor control belongs to the caller")
	}
	// Without a watchdog document there must be no incidents panel at all.
	if strings.Contains(frame, "incidents") {
		t.Errorf("frame renders an incidents panel without a watchdog doc:\n%s", frame)
	}
}

// TestRenderIncidentsPanel: the panel shows the newest incidents with the
// right severity glyphs, firing counts, and ages relative to the frame time.
func TestRenderIncidentsPanel(t *testing.T) {
	now := time.Unix(180, 0)
	frame := render(sampleDoc(), sampleIncidents(), 60, now)
	for _, want := range []string{
		"incidents (health watchdog)",
		"▲ warn     retry_storm     ×3   1m",
		"✖ critical limbo_stall     ×1   5s",
		"limbo grew 80→1880",
	} {
		if !strings.Contains(frame, want) {
			t.Errorf("frame missing %q:\n%s", want, frame)
		}
	}

	// An enabled watchdog with nothing on the books says so explicitly.
	frame = render(sampleDoc(), watchdog.Doc{Enabled: true}, 60, now)
	if !strings.Contains(frame, "all rules quiet") {
		t.Errorf("quiet watchdog frame missing placeholder:\n%s", frame)
	}

	// The panel keeps only the newest few records.
	doc := watchdog.Doc{Enabled: true}
	for i := 1; i <= 9; i++ {
		doc.Incidents = append(doc.Incidents, watchdog.Incident{
			ID: int64(i), Rule: "retry_storm", Severity: "warn",
			Level: watchdog.SevWarn, Message: "m", Count: int64(i),
		})
	}
	frame = render(sampleDoc(), doc, 60, now)
	if strings.Contains(frame, "×5 ") || !strings.Contains(frame, "×9 ") {
		t.Errorf("panel should keep only the newest incidents:\n%s", frame)
	}
}

func TestRenderDisabledAndEmpty(t *testing.T) {
	frame := render(timeline.Doc{SchemaVersion: 1}, watchdog.Doc{}, 60, time.Unix(0, 0))
	if !strings.Contains(frame, "timeline disabled") {
		t.Errorf("disabled frame = %q", frame)
	}
	frame = render(timeline.Doc{SchemaVersion: 1, Enabled: true}, watchdog.Doc{}, 60, time.Unix(0, 0))
	if !strings.Contains(frame, "no samples yet") {
		t.Errorf("empty frame = %q", frame)
	}
}

// TestFetchAgainstLiveMux polls a real system's debug mux end to end — the
// exact path the dashboard takes.
func TestFetchAgainstLiveMux(t *testing.T) {
	sys, err := lfrc.New(
		lfrc.WithTimeline(lfrc.TimelineOptions{Manual: true}),
		lfrc.WithWatchdog(lfrc.WatchdogOptions{}),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer sys.Close()
	sys.CaptureTimelineSample()
	sys.CaptureTimelineSample()

	srv := httptest.NewServer(lfrc.NewDebugMux(func() *lfrc.System { return sys }))
	defer srv.Close()

	doc, err := fetch(&http.Client{}, timelineURL(srv.URL))
	if err != nil {
		t.Fatalf("fetch: %v", err)
	}
	if !doc.Enabled || len(doc.Samples) != 2 {
		t.Fatalf("doc = enabled %v, %d samples; want enabled with 2", doc.Enabled, len(doc.Samples))
	}
	inc := fetchIncidents(&http.Client{}, incidentsURL(srv.URL))
	if !inc.Enabled {
		t.Error("incidents doc not enabled on a watchdog-bearing system")
	}
	frame := render(doc, inc, 60, time.Unix(0, 0))
	if !strings.Contains(frame, "throughput") {
		t.Errorf("live frame missing panels:\n%s", frame)
	}
	if !strings.Contains(frame, "all rules quiet") {
		t.Errorf("live frame missing incidents panel:\n%s", frame)
	}
}

func TestTimelineURL(t *testing.T) {
	for in, want := range map[string]string{
		"localhost:8080":         "http://localhost:8080/debug/lfrc/timeline.json",
		"http://10.0.0.7:9999/":  "http://10.0.0.7:9999/debug/lfrc/timeline.json",
		"https://lfrc.test:8443": "https://lfrc.test:8443/debug/lfrc/timeline.json",
	} {
		if got := timelineURL(in); got != want {
			t.Errorf("timelineURL(%q) = %q, want %q", in, got, want)
		}
	}
}
