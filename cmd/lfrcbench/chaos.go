package main

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lfrc"
	"lfrc/internal/workload"
)

// runChaos is lfrcbench's fault-injection mode (-fault-plan): it builds one
// system with the plan armed, the lifecycle ledger sampling every object, and
// the default heap-pressure policy; hammers all four structures from workers
// goroutines for dur; then audits the survivors and prints the injection
// accounting. The exit status is the verdict: any lifecycle violation,
// rc-audit discrepancy, or leaked object fails the run.
//
// The firing schedule is replayable: the fault_seed= / fault_plan= /
// fault_schedule= lines identify exactly which attempts were failed, and
// rerunning with the same seed and plan re-fails the same attempt ordinals at
// every point.
//
// A FAIL additionally captures a diagnostic bundle (to bundlePath, or an
// auto-generated name) and echoes it as a machine-readable "bundle=" line so
// harnesses can hand the black box straight to cmd/lfrcdoctor.
func runChaos(stdout io.Writer, eng lfrc.Engine, rec lfrc.Reclaimer, strat lfrc.RCStrategy, plan string, seed uint64, dur time.Duration, workers int, bundlePath string, destroyBudget, heapWords int) error {
	opts := []lfrc.Option{
		lfrc.WithEngine(eng),
		lfrc.WithReclamation(rec),
		lfrc.WithRCStrategy(strat),
		lfrc.WithFaultPlan(plan),
		lfrc.WithFaultSeed(seed),
		lfrc.WithHeapPressurePolicy(lfrc.DefaultHeapPressurePolicy()),
		lfrc.WithObservability(lfrc.ObservabilityOptions{
			LifecycleEvery: 1,
			SampleEvery:    64,
		}),
		// The telemetry timeline rides along at a chaos-friendly cadence
		// (~10ms instead of the default): chaos runs last fractions of a
		// second, and the watchdog's windowed rules (limbo_stall needs ten
		// qualifying samples) must be able to fire inside one. A -metrics
		// chaos run serves the same samples live on
		// /debug/lfrc/timeline.json — the epoch backend's limbo backlog
		// rising and draining is the headline trajectory.
		lfrc.WithTimeline(lfrc.TimelineOptions{Interval: 10 * time.Millisecond}),
		// Probe the census more often than the always-on default for the
		// same reason: short run, want at least a few cross-checks.
		lfrc.WithWatchdog(lfrc.WatchdogOptions{CensusProbeEvery: 16}),
	}
	if destroyBudget > 0 {
		opts = append(opts, lfrc.WithIncrementalDestroy(destroyBudget))
	}
	if heapWords > 0 {
		// A deliberately tiny arena turns sustained pushes into genuine
		// heap-pressure exhaustions — the planted scenario for the
		// watchdog's heap_exhaustion rule.
		opts = append(opts, lfrc.WithMaxHeapWords(uint64(heapWords)))
	}
	sys, err := lfrc.New(opts...)
	if err != nil {
		return err
	}
	defer sys.Close()
	// capture writes the black box: a bundle carrying the timeline,
	// incidents, census and fault schedule that explain the run, diagnosable
	// offline by cmd/lfrcdoctor. Every FAIL captures one (auto-named when
	// -bundle is unset); an explicit -bundle path is written even on PASS so
	// harnesses can always collect the capsule.
	capture := func() {
		path := bundlePath
		if path == "" {
			path = fmt.Sprintf("lfrc-chaos-%s-%s.tar.gz", eng, sys.ReclaimerName())
		}
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(stdout, "bundle_error=%v\n", err)
			return
		}
		werr := sys.WriteBundle(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(stdout, "bundle_error=%v\n", werr)
			return
		}
		fmt.Fprintf(stdout, "bundle=%s\n", path)
	}
	fail := func(verdict error) error {
		capture()
		return verdict
	}
	// Publish for the -metrics mux: a chaos run is exactly when live
	// /debug/lfrc/timeline.json (and the rest of the surface) matters.
	workload.SetCurrentSystem(sys)

	d, err := sys.NewDeque()
	if err != nil {
		return err
	}
	q, err := sys.NewQueue()
	if err != nil {
		return err
	}
	st, err := sys.NewStack()
	if err != nil {
		return err
	}
	set, err := sys.NewSet()
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "chaos: engine=%s reclaim=%s rc=%s workers=%d dur=%v\n", eng, sys.ReclaimerName(), sys.RCStrategyName(), workers, dur)
	fmt.Fprintf(stdout, "fault_seed=%d\n", seed)
	fmt.Fprintf(stdout, "fault_plan=%s\n", plan)

	var ops, oom atomic.Int64
	stop := make(chan struct{})
	errc := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			rng := id*0x9E3779B97F4A7C15 + 1
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rng = rng*6364136223846793005 + 1442695040888963407
				v := lfrc.Value(rng >> 16 & 0xFFFF)
				var err error
				switch rng % 8 {
				case 0:
					err = d.PushLeft(v)
				case 1:
					err = d.PushRight(v)
				case 2:
					_, _ = d.PopLeft()
				case 3:
					err = q.Enqueue(v)
				case 4:
					_, _ = q.Dequeue()
				case 5:
					err = st.Push(v)
				case 6:
					_, err = set.Insert(v)
					if rng%2 == 0 {
						set.Delete(v)
					}
				case 7:
					if _, ok := st.Pop(); !ok {
						_, _ = d.PopRight()
					}
				}
				ops.Add(1)
				if err != nil {
					// Heap exhaustion (genuine or injected) is an expected
					// chaos outcome; anything else is a bug.
					if errors.Is(err, lfrc.ErrOutOfMemory) {
						oom.Add(1)
						continue
					}
					errc <- fmt.Errorf("worker %d: %w", id, err)
					return
				}
			}
		}(uint64(w))
	}
	timer := time.NewTimer(dur)
	select {
	case err := <-errc:
		close(stop)
		wg.Wait()
		return fail(err)
	case <-timer.C:
		close(stop)
		wg.Wait()
	}
	select {
	case err := <-errc:
		return fail(err)
	default:
	}

	// Quiescent now: audit, take the pre-teardown census, then tear
	// everything down and demand an empty heap — with the post-teardown
	// census as the ground-truth leak verdict (a cycle would survive both
	// the closes and the drain with its counts still up).
	violations := len(sys.AuditPass()) + len(sys.Violations())
	rcAudit := sys.Audit()
	preCensus := sys.Census()
	d.Close()
	q.Close()
	st.Close()
	set.Close()
	sys.DrainZombies(0)
	live := sys.Stats().Heap.LiveObjects
	postCensus := sys.Census()

	s := sys.Stats()
	fmt.Fprintf(stdout, "\n%-20s %12s %12s\n", "point", "attempts", "injected")
	for _, p := range s.Fault.Points {
		fmt.Fprintf(stdout, "%-20s %12d %12d\n", p.Name, p.Attempts, p.Fires)
	}
	fmt.Fprintf(stdout, "ops=%d oom=%d injected_total=%d\n", ops.Load(), oom.Load(), s.Fault.Injected)
	fmt.Fprintf(stdout, "degraded: retries=%d recoveries=%d exhaustions=%d zombies_drained=%d\n",
		s.Degraded.Retries, s.Degraded.Recoveries, s.Degraded.Exhaustions, s.Degraded.ZombiesDrained)

	// Machine-readable replay identity: the tail of the firing schedule.
	sched := sys.FaultSchedule()
	const tail = 32
	if len(sched) > tail {
		sched = sched[len(sched)-tail:]
	}
	var sb strings.Builder
	for i, f := range sched {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s@%d", f.Name, f.Attempt)
	}
	fmt.Fprintf(stdout, "fault_schedule=%s\n", sb.String())

	// The census diff across teardown: everything the structures held
	// should move from reachable to freed, leaving nothing unreachable.
	cd := lfrc.CensusDiff(preCensus, postCensus)
	fmt.Fprintf(stdout, "census: pre live=%d reachable=%d limbo=%d; post live=%d unreachable=%d limbo=%d cycles=%d new_cycles=%d rc_mismatches=%d\n",
		preCensus.LiveObjects, preCensus.Reachable.Objects, preCensus.Limbo.Objects,
		postCensus.LiveObjects, postCensus.Unreachable.Objects, postCensus.Limbo.Objects,
		postCensus.CycleCount, cd.NewCycles, postCensus.RCMismatchCount)

	switch {
	case violations > 0:
		return fail(fmt.Errorf("chaos: %d lifecycle violations (see postmortems)", violations))
	case len(rcAudit) > 0:
		return fail(fmt.Errorf("chaos: rc audit failed: %s", strings.Join(rcAudit, "; ")))
	case postCensus.CycleCount > 0:
		return fail(fmt.Errorf("chaos: census found %d cycle leaks holding %d bytes (first: %v)",
			postCensus.CycleCount, postCensus.CycleBytes, cycleMembers(postCensus.Cycles[0])))
	case postCensus.Unreachable.Objects > 0:
		return fail(fmt.Errorf("chaos: census found %d unreachable objects (%d bytes) after close+drain",
			postCensus.Unreachable.Objects, postCensus.Unreachable.Bytes))
	case live != 0:
		return fail(fmt.Errorf("chaos: %d objects leaked after close", live))
	}
	if bundlePath != "" {
		capture()
	}
	fmt.Fprintln(stdout, "chaos: PASS (0 violations, clean rc audit, clean census, 0 leaked objects)")
	return nil
}
