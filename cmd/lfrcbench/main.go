// Command lfrcbench runs the reproduction's experiment suite (E1..E9, A1,
// A2, A3, L1, G1, R2, O1..O6 — see DESIGN.md §4 and EXPERIMENTS.md)
// and prints
// one table per experiment, in the same format EXPERIMENTS.md records. A3's
// notes include the unified System.Stats snapshot as JSON.
//
// Usage:
//
//	lfrcbench [-run E1,E5] [-engine locking|mcas|both] [-reclaim lfrc|epoch]
//	          [-rc figure2|split] [-scale N] [-dur 250ms] [-workers 1,2,4,8]
//	          [-markdown] [-stats-json] [-census] [-metrics addr]
//	          [-trace out.json] [-bench-json out.json] [-bench-runs N]
//
// With no -run flag every experiment runs. -stats-json appends the final
// unified System.Stats of the last system an experiment published (O1, O2,
// O3, O4, A3) as one JSON object on stdout. -metrics serves /metrics (Prometheus
// text), /debug/vars (expvar), /debug/lfrc/{stats,trace} (JSON),
// /debug/lfrc/trace.json (Chrome trace_event export) and /debug/pprof on
// addr for the lifetime of the run, reporting on the same published system;
// the bound address is echoed as a machine-readable "metrics_addr=" line so
// harnesses can pass ":0". -trace writes the published system's Chrome
// trace_event export (flight events plus lifecycle timelines; open in
// Perfetto) to a file after the run. -bench-json skips the experiment tables
// and instead writes a schema-versioned perf-telemetry record (medians over
// -bench-runs adjacent runs per workload, plus a contention summary) for
// cmd/lfrcperf to gate regressions on; the path is echoed as a
// machine-readable "bench_json=" line. -reclaim selects the reclamation
// backend for -bench-json, -fault-plan chaos runs, and the R2 backend
// comparison (experiment R2 itself always measures both backends).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"lfrc"
	"lfrc/internal/workload"
)

func main() {
	// SIGQUIT is the field escape hatch: instead of the runtime's goroutine
	// dump, capture a diagnostic bundle of whatever system is currently
	// published (chaos runs, O-series experiments, -bench-json) so a stuck or
	// misbehaving run can be frozen for cmd/lfrcdoctor without killing it.
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	go func() {
		for range quit {
			writeSignalBundle(os.Stderr)
		}
	}()
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "lfrcbench:", err)
		os.Exit(1)
	}
}

// writeSignalBundle dumps the published system's bundle to an auto-named file
// and echoes the machine-readable bundle= line on w.
func writeSignalBundle(w io.Writer) {
	sys := workload.CurrentSystem()
	if sys == nil {
		fmt.Fprintln(w, "lfrcbench: SIGQUIT: no published system to bundle yet")
		return
	}
	path := fmt.Sprintf("lfrc-sigquit-%d.tar.gz", os.Getpid())
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(w, "lfrcbench: SIGQUIT: %v\n", err)
		return
	}
	werr := sys.WriteBundle(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		fmt.Fprintf(w, "lfrcbench: SIGQUIT: %v\n", werr)
		return
	}
	fmt.Fprintf(w, "bundle=%s\n", path)
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("lfrcbench", flag.ContinueOnError)
	var (
		runList   = fs.String("run", "", "comma-separated experiment ids (default: all)")
		engine    = fs.String("engine", "locking", "engine for single-engine experiments: locking, mcas or both")
		scale     = fs.Int("scale", 1, "iteration multiplier (1 = quick)")
		dur       = fs.Duration("dur", 250*time.Millisecond, "measurement window for timed experiments")
		workers   = fs.String("workers", "1,2,4,8", "worker counts for the E5 sweep")
		markdown  = fs.Bool("markdown", false, "emit GitHub-flavoured markdown tables")
		statsJSON = fs.Bool("stats-json", false, "dump the published system's unified Stats as JSON on stdout after the run")
		metrics   = fs.String("metrics", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. :9100) during the run")
		tracePath = fs.String("trace", "", "write the published system's Chrome trace_event export to this file after the run")
		benchJSON = fs.String("bench-json", "", "skip the experiment tables and write a perf-telemetry record (for cmd/lfrcperf) to this file")
		benchRuns = fs.Int("bench-runs", 5, "adjacent runs per workload in -bench-json mode")
		faultPlan = fs.String("fault-plan", "", "chaos mode: skip the experiment tables and stress all structures under this fault-injection plan (e.g. 'core.*:p=0.01;mem.alloc:every=500')")
		faultSeed = fs.Uint64("fault-seed", 1, "fault-injection seed; same seed and plan replay the same firing schedule")
		bundle    = fs.String("bundle", "", "chaos mode: write the diagnostic bundle here even on PASS; a FAIL always captures one (auto-named lfrc-chaos-<engine>-<reclaim>.tar.gz when unset)")
		destroyB  = fs.Int("destroy-budget", 0, "chaos mode: incremental-destroy budget (objects parked per release; 0 = eager)")
		heapWords = fs.Int("heap-words", 0, "chaos mode: cap the arena at this many words (0 = default) to plant heap-pressure exhaustions")
		doCensus  = fs.Bool("census", false, "after the run, take a heap census of the published system, drain zombies, take another, and print the summaries plus the diff")
	)
	reclaimer := lfrc.ReclaimerLFRC
	fs.Var(&reclaimer, "reclaim", "reclamation backend: lfrc or epoch (applies to -bench-json, -fault-plan and R2)")
	rcStrategy := lfrc.RCFigure2
	fs.Var(&rcStrategy, "rc", "reference-count strategy: figure2 or split (applies to -bench-json and -fault-plan; experiment R3 always measures both)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	kinds, err := parseEngines(*engine)
	if err != nil {
		return err
	}
	workerCounts, err := parseInts(*workers)
	if err != nil {
		return fmt.Errorf("-workers: %w", err)
	}
	sc := workload.Scale(*scale)

	if *metrics != "" {
		ln, err := net.Listen("tcp", *metrics)
		if err != nil {
			return fmt.Errorf("-metrics: %w", err)
		}
		defer ln.Close()
		fmt.Fprintf(stdout, "metrics listening on http://%s/metrics\n", ln.Addr())
		// Machine-readable form for harnesses that bind ":0" and need the
		// chosen port.
		fmt.Fprintf(stdout, "metrics_addr=%s\n", ln.Addr())
		go func() {
			_ = http.Serve(ln, lfrc.NewDebugMux(workload.CurrentSystem))
		}()
	}

	wanted := map[string]bool{}
	if *runList != "" {
		for _, id := range strings.Split(*runList, ",") {
			wanted[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	// -bench-json and -fault-plan each replace the experiment tables with
	// their own harness; the tail flags (-metrics, -stats-json, -trace) still
	// apply to the system the harness publishes.
	benchMode := *benchJSON != ""
	chaosMode := *faultPlan != ""
	want := func(id string) bool { return !benchMode && !chaosMode && (len(wanted) == 0 || wanted[id]) }

	if chaosMode {
		if len(kinds) != 1 {
			return fmt.Errorf("-fault-plan: pick a single engine (locking or mcas), not both")
		}
		nw := workerCounts[len(workerCounts)-1]
		return runChaos(stdout, lfrc.Engine(kinds[0]), reclaimer, rcStrategy, *faultPlan, *faultSeed, *dur, nw, *bundle, *destroyB, *heapWords)
	}

	if benchMode {
		if len(kinds) != 1 {
			return fmt.Errorf("-bench-json: pick a single engine (locking or mcas), not both")
		}
		if *benchRuns < 1 {
			return fmt.Errorf("-bench-runs %d < 1", *benchRuns)
		}
		rec, err := workload.RunBenchJSON(kinds[0], reclaimer, rcStrategy, *dur, *benchRuns)
		if err != nil {
			return fmt.Errorf("-bench-json: %w", err)
		}
		rec.CreatedUnixNS = time.Now().UnixNano()
		raw, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			return fmt.Errorf("-bench-json: %w", err)
		}
		if err := os.WriteFile(*benchJSON, append(raw, '\n'), 0o644); err != nil {
			return fmt.Errorf("-bench-json: %w", err)
		}
		// Machine-readable form, mirroring metrics_addr=.
		fmt.Fprintf(stdout, "bench_json=%s\n", *benchJSON)
	}

	emit := func(t *workload.Table) {
		if *markdown {
			fmt.Fprintln(stdout, t.Markdown())
		} else {
			fmt.Fprintln(stdout, t.String())
		}
	}

	for _, kind := range kinds {
		if want("E1") {
			emit(workload.RunE1(kind, sc))
		}
		if want("E2") {
			emit(workload.RunE2(kind, sc))
		}
		if want("E3") {
			emit(workload.RunE3(kind, sc))
		}
		if want("E4") {
			emit(workload.RunE4(kind, *dur))
		}
		if want("E7") {
			emit(workload.RunE7(kind, sc))
		}
		if want("E8") {
			emit(workload.RunE8(kind, sc))
		}
		if want("E9") {
			emit(workload.RunE9(kind, sc))
		}
		if want("A2") {
			emit(workload.RunA2(kind, sc))
		}
		if want("L1") {
			emit(workload.RunL1(kind, sc))
		}
		if want("G1") {
			emit(workload.RunG1(kind, *dur))
		}
		if want("R2") {
			emit(workload.RunR2(kind, *dur))
		}
		if want("O1") {
			emit(workload.RunO1(kind, *dur))
		}
		if want("O2") {
			emit(workload.RunO2(kind, *dur))
		}
		if want("O3") {
			emit(workload.RunO3(kind, *dur))
		}
		if want("O4") {
			emit(workload.RunO4(kind, *dur))
		}
		if want("O5") {
			emit(workload.RunO5(kind, sc))
		}
		if want("O6") {
			emit(workload.RunO6(kind, *dur))
		}
	}
	// Engine-sweeping experiments run once.
	if want("E5") {
		emit(workload.RunE5(*dur, workerCounts))
	}
	if want("E6") {
		emit(workload.RunE6(sc))
	}
	if want("A1") {
		emit(workload.RunA1(*dur))
	}
	if want("A3") {
		emit(workload.RunA3(*dur))
	}
	if want("R3") {
		emit(workload.RunR3(*dur))
	}

	if *tracePath != "" {
		sys := workload.CurrentSystem()
		if sys == nil {
			return fmt.Errorf("-trace: no experiment published a System (include O1, O2 or A3 in -run)")
		}
		f, err := os.Create(*tracePath)
		if err != nil {
			return fmt.Errorf("-trace: %w", err)
		}
		if err := sys.WriteChromeTrace(f); err != nil {
			f.Close()
			return fmt.Errorf("-trace: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("-trace: %w", err)
		}
		fmt.Fprintf(stdout, "trace written to %s\n", *tracePath)
	}

	if *doCensus {
		sys := workload.CurrentSystem()
		if sys == nil {
			return fmt.Errorf("-census: no experiment published a System (include O1, O5 or A3 in -run)")
		}
		reportCensus(stdout, sys)
	}

	if *statsJSON {
		sys := workload.CurrentSystem()
		if sys == nil {
			return fmt.Errorf("-stats-json: no experiment published a System (include O1 or A3 in -run)")
		}
		raw, err := json.Marshal(sys.Stats())
		if err != nil {
			return fmt.Errorf("-stats-json: %w", err)
		}
		fmt.Fprintln(stdout, string(raw))
	}
	return nil
}

// parseEngines accepts everything lfrc.ParseEngine does, plus "both" for the
// engine-comparison sweeps. workload.EngineKind values are numerically
// aligned with lfrc.Engine.
func parseEngines(s string) ([]workload.EngineKind, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if s == "both" {
		return workload.Engines, nil
	}
	e, err := lfrc.ParseEngine(s)
	if err != nil {
		return nil, fmt.Errorf(`unknown engine %q (want "locking", "mcas" or "both")`, s)
	}
	return []workload.EngineKind{workload.EngineKind(e)}, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		if n < 1 {
			return nil, fmt.Errorf("worker count %d < 1", n)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no worker counts in %q", s)
	}
	return out, nil
}
