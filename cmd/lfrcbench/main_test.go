package main

import (
	"testing"

	"lfrc/internal/workload"
)

func TestParseEngines(t *testing.T) {
	tests := []struct {
		give    string
		want    []workload.EngineKind
		wantErr bool
	}{
		{give: "locking", want: []workload.EngineKind{workload.EngineLocking}},
		{give: "mcas", want: []workload.EngineKind{workload.EngineMCAS}},
		{give: "MCAS", want: []workload.EngineKind{workload.EngineMCAS}},
		{give: " both ", want: workload.Engines},
		{give: "neither", wantErr: true},
		{give: "", wantErr: true},
	}
	for _, tt := range tests {
		got, err := parseEngines(tt.give)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseEngines(%q) error = %v, wantErr %v", tt.give, err, tt.wantErr)
			continue
		}
		if err != nil {
			continue
		}
		if len(got) != len(tt.want) {
			t.Errorf("parseEngines(%q) = %v, want %v", tt.give, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("parseEngines(%q)[%d] = %v, want %v", tt.give, i, got[i], tt.want[i])
			}
		}
	}
}

func TestParseInts(t *testing.T) {
	tests := []struct {
		give    string
		want    []int
		wantErr bool
	}{
		{give: "1,2,4", want: []int{1, 2, 4}},
		{give: " 8 ", want: []int{8}},
		{give: "1,,2", want: []int{1, 2}},
		{give: "0", wantErr: true},
		{give: "x", wantErr: true},
		{give: "", wantErr: true},
		{give: ",", wantErr: true},
	}
	for _, tt := range tests {
		got, err := parseInts(tt.give)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseInts(%q) error = %v, wantErr %v", tt.give, err, tt.wantErr)
			continue
		}
		if err != nil {
			continue
		}
		if len(got) != len(tt.want) {
			t.Errorf("parseInts(%q) = %v, want %v", tt.give, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("parseInts(%q) = %v, want %v", tt.give, got, tt.want)
				break
			}
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-engine", "bogus"}); err == nil {
		t.Error("run accepted a bogus engine")
	}
	if err := run([]string{"-workers", "0"}); err == nil {
		t.Error("run accepted zero workers")
	}
}

func TestRunSingleQuickExperiment(t *testing.T) {
	// E7 at scale 1 is fast and deterministic.
	if err := run([]string{"-run", "E7", "-scale", "1"}); err != nil {
		t.Errorf("run(E7): %v", err)
	}
}
