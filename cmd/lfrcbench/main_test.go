package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"lfrc/internal/workload"
)

func TestParseEngines(t *testing.T) {
	tests := []struct {
		give    string
		want    []workload.EngineKind
		wantErr bool
	}{
		{give: "locking", want: []workload.EngineKind{workload.EngineLocking}},
		{give: "mcas", want: []workload.EngineKind{workload.EngineMCAS}},
		{give: "MCAS", want: []workload.EngineKind{workload.EngineMCAS}},
		{give: " both ", want: workload.Engines},
		{give: "neither", wantErr: true},
		{give: "", wantErr: true},
	}
	for _, tt := range tests {
		got, err := parseEngines(tt.give)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseEngines(%q) error = %v, wantErr %v", tt.give, err, tt.wantErr)
			continue
		}
		if err != nil {
			continue
		}
		if len(got) != len(tt.want) {
			t.Errorf("parseEngines(%q) = %v, want %v", tt.give, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("parseEngines(%q)[%d] = %v, want %v", tt.give, i, got[i], tt.want[i])
			}
		}
	}
}

func TestParseInts(t *testing.T) {
	tests := []struct {
		give    string
		want    []int
		wantErr bool
	}{
		{give: "1,2,4", want: []int{1, 2, 4}},
		{give: " 8 ", want: []int{8}},
		{give: "1,,2", want: []int{1, 2}},
		{give: "0", wantErr: true},
		{give: "x", wantErr: true},
		{give: "", wantErr: true},
		{give: ",", wantErr: true},
	}
	for _, tt := range tests {
		got, err := parseInts(tt.give)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseInts(%q) error = %v, wantErr %v", tt.give, err, tt.wantErr)
			continue
		}
		if err != nil {
			continue
		}
		if len(got) != len(tt.want) {
			t.Errorf("parseInts(%q) = %v, want %v", tt.give, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("parseInts(%q) = %v, want %v", tt.give, got, tt.want)
				break
			}
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-engine", "bogus"}, io.Discard); err == nil {
		t.Error("run accepted a bogus engine")
	}
	if err := run([]string{"-workers", "0"}, io.Discard); err == nil {
		t.Error("run accepted zero workers")
	}
}

func TestRunSingleQuickExperiment(t *testing.T) {
	// E7 at scale 1 is fast and deterministic.
	if err := run([]string{"-run", "E7", "-scale", "1"}, io.Discard); err != nil {
		t.Errorf("run(E7): %v", err)
	}
}

func TestStatsJSONDumpsOneObject(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-run", "O1", "-dur", "20ms", "-stats-json"}, &out); err != nil {
		t.Fatalf("run(O1 -stats-json): %v", err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	last := lines[len(lines)-1]
	var stats struct {
		Engine string `json:"engine"`
		Heap   struct {
			Allocs int64 `json:"allocs"`
		} `json:"heap"`
		RC struct {
			Loads int64 `json:"loads"`
		} `json:"rc"`
	}
	if err := json.Unmarshal([]byte(last), &stats); err != nil {
		t.Fatalf("last stdout line is not a Stats JSON object: %v\n%s", err, last)
	}
	if stats.Engine == "" || stats.Heap.Allocs == 0 || stats.RC.Loads == 0 {
		t.Errorf("stats dump looks empty: %s", last)
	}
}

func TestStatsJSONWithoutPublishingExperimentErrors(t *testing.T) {
	workload.SetCurrentSystem(nil)
	if err := run([]string{"-run", "E7", "-scale", "1", "-stats-json"}, io.Discard); err == nil {
		t.Error("run accepted -stats-json with no publishing experiment")
	}
}

// syncWriter lets the scraper goroutine read run's output while run writes.
type syncWriter struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

func TestMetricsFlagServesEndpoint(t *testing.T) {
	var out syncWriter
	scraped := make(chan string, 1)
	done := make(chan struct{})

	// run announces the bound address before the experiments execute and
	// serves until it returns; scrape /metrics while O1 is still running.
	go func() {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			first := strings.SplitN(out.String(), "\n", 2)[0]
			if url, ok := strings.CutPrefix(first, "metrics listening on "); ok {
				resp, err := http.Get(strings.TrimSpace(url))
				if err == nil {
					raw, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					scraped <- string(raw)
					return
				}
			}
			select {
			case <-done:
				return
			case <-time.After(2 * time.Millisecond):
			}
		}
	}()

	err := run([]string{"-run", "O1", "-dur", "100ms", "-metrics", "127.0.0.1:0"}, &out)
	close(done)
	if err != nil {
		t.Fatalf("run(O1 -metrics): %v", err)
	}
	select {
	case body := <-scraped:
		if !strings.Contains(body, "lfrc_ops_total") && !strings.Contains(body, "no live lfrc system") {
			t.Errorf("scrape returned neither metrics nor the no-system notice:\n%.400s", body)
		}
	default:
		t.Fatal("never scraped the announced metrics endpoint")
	}
	if !strings.HasPrefix(out.String(), "metrics listening on http://127.0.0.1:") {
		t.Errorf("no metrics announcement, got %q", strings.SplitN(out.String(), "\n", 2)[0])
	}
}

func TestMetricsFlagPrintsMachineReadableAddr(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-run", "E7", "-scale", "1", "-metrics", "127.0.0.1:0"}, &out); err != nil {
		t.Fatalf("run(E7 -metrics): %v", err)
	}
	var addr string
	for _, line := range strings.Split(out.String(), "\n") {
		if a, ok := strings.CutPrefix(line, "metrics_addr="); ok {
			addr = strings.TrimSpace(a)
		}
	}
	if addr == "" {
		t.Fatalf("no metrics_addr= line in output:\n%.400s", out.String())
	}
	host, port, err := net.SplitHostPort(addr)
	if err != nil || host != "127.0.0.1" || port == "0" || port == "" {
		t.Errorf("metrics_addr %q is not a usable host:port (err=%v)", addr, err)
	}
}

func TestTraceFlagWritesChromeExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	var out bytes.Buffer
	// O2's full mode tracks every object, so the export has lifetime spans.
	if err := run([]string{"-run", "O2", "-dur", "20ms", "-trace", path}, &out); err != nil {
		t.Fatalf("run(O2 -trace): %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	var trace struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("trace file is not Chrome trace JSON: %v", err)
	}
	phases := map[string]bool{}
	for _, e := range trace.TraceEvents {
		phases[e.Ph] = true
	}
	for _, ph := range []string{"M", "b", "e"} {
		if !phases[ph] {
			t.Errorf("export lacks phase %q events (got %v)", ph, phases)
		}
	}
	if !strings.Contains(out.String(), "trace written to ") {
		t.Errorf("no trace confirmation line:\n%.400s", out.String())
	}
}

func TestBenchJSONWritesRecordAndComposesWithMetrics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out bytes.Buffer
	err := run([]string{
		"-bench-json", path, "-bench-runs", "2", "-dur", "10ms",
		"-metrics", "127.0.0.1:0", "-stats-json",
	}, &out)
	if err != nil {
		t.Fatalf("run(-bench-json -metrics): %v", err)
	}

	// Both machine-readable lines must be present: harnesses scrape
	// metrics_addr= for the port and bench_json= for the record path.
	var benchPath, metricsAddr string
	for _, line := range strings.Split(out.String(), "\n") {
		if p, ok := strings.CutPrefix(line, "bench_json="); ok {
			benchPath = strings.TrimSpace(p)
		}
		if a, ok := strings.CutPrefix(line, "metrics_addr="); ok {
			metricsAddr = strings.TrimSpace(a)
		}
	}
	if benchPath != path {
		t.Errorf("bench_json= line = %q, want %q", benchPath, path)
	}
	if metricsAddr == "" {
		t.Errorf("no metrics_addr= line alongside -bench-json:\n%.400s", out.String())
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("record not written: %v", err)
	}
	var rec workload.BenchRecord
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatalf("record is not valid JSON: %v", err)
	}
	if rec.SchemaVersion != workload.BenchSchemaVersion {
		t.Errorf("schema_version = %d, want %d", rec.SchemaVersion, workload.BenchSchemaVersion)
	}
	if rec.CreatedUnixNS == 0 {
		t.Error("created_unix_ns not stamped")
	}
	if rec.Engine != "locking" {
		t.Errorf("engine = %q, want locking", rec.Engine)
	}
	if len(rec.Experiments) == 0 {
		t.Fatal("record has no experiments")
	}
	for _, e := range rec.Experiments {
		if len(e.Runs) != 2 {
			t.Errorf("%s: %d runs, want 2", e.ID, len(e.Runs))
		}
		if e.Median <= 0 {
			t.Errorf("%s: non-positive median %v", e.ID, e.Median)
		}
	}
	if rec.Contention == nil {
		t.Error("record lacks the contention summary")
	}

	// The contention-instrumented run publishes its system, so -stats-json
	// composes with -bench-json: the last line is a Stats object.
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	var stats struct {
		Engine string `json:"engine"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &stats); err != nil {
		t.Errorf("-stats-json after -bench-json did not emit a Stats object: %v", err)
	}
}

func TestBenchJSONRejectsBothEngines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-bench-json", path, "-engine", "both"}, io.Discard); err == nil {
		t.Error("run accepted -bench-json with -engine both")
	}
	if err := run([]string{"-bench-json", path, "-bench-runs", "0"}, io.Discard); err == nil {
		t.Error("run accepted -bench-runs 0")
	}
}

func TestTraceFlagWithoutPublishingExperimentErrors(t *testing.T) {
	workload.SetCurrentSystem(nil)
	path := filepath.Join(t.TempDir(), "out.json")
	if err := run([]string{"-run", "E7", "-scale", "1", "-trace", path}, io.Discard); err == nil {
		t.Error("run accepted -trace with no publishing experiment")
	}
}
