package main

import (
	"fmt"
	"io"

	"lfrc"
)

// reportCensus is lfrcbench's -census tail: it takes a whole-heap census of
// the published system, drains the deferred-reclamation backlog, takes a
// second census, and prints the summary plus the diff. The drain is the
// decisive step: limbo husks disappear under it, true leaks (cycles) do not,
// so the post-drain snapshot is the ground-truth leak verdict.
func reportCensus(stdout io.Writer, sys *lfrc.System) {
	before := sys.Census()
	printCensus(stdout, "census (pre-drain)", before)
	drained := sys.DrainZombies(0)
	after := sys.Census()
	printCensus(stdout, fmt.Sprintf("census (post-drain, %d drained)", drained), after)
	printCensusDiff(stdout, lfrc.CensusDiff(before, after))
}

// printCensus prints one snapshot's summary block.
func printCensus(w io.Writer, title string, c *lfrc.CensusSnapshot) {
	fmt.Fprintf(w, "\n%s: backend=%s live=%d (%d B) reachable=%d unreachable=%d limbo=%d edges=%d wall=%dus\n",
		title, c.Backend, c.LiveObjects, c.LiveBytes,
		c.Reachable.Objects, c.Unreachable.Objects, c.Limbo.Objects, c.Edges, c.WallNS/1000)
	if c.RCMismatchCount > 0 {
		fmt.Fprintf(w, "  rc mismatches: %d (first: %+v)\n", c.RCMismatchCount, c.RCMismatches[0])
	}
	for i, t := range c.Types {
		if i >= 5 {
			fmt.Fprintf(w, "  ... %d more types\n", len(c.Types)-i)
			break
		}
		fmt.Fprintf(w, "  type %-24s objects=%-8d bytes=%-10d unreachable=%d limbo=%d\n",
			t.Name, t.Objects, t.Bytes, t.UnreachableObjects, t.LimboObjects)
	}
	for i, cy := range c.Cycles {
		if i >= 5 {
			fmt.Fprintf(w, "  ... %d more cycles\n", int(c.CycleCount)-i)
			break
		}
		fmt.Fprintf(w, "  CYCLE LEAK key=%s size=%d bytes=%d retained=%d B members=%v\n",
			cy.Key, cy.Size, cy.Bytes, cy.RetainedBytes, cycleMembers(cy))
	}
}

// cycleMembers renders a cycle's member list compactly.
func cycleMembers(c lfrc.CensusCycle) []string {
	out := make([]string, 0, len(c.Objects))
	for _, o := range c.Objects {
		out = append(out, fmt.Sprintf("%#x(%s,rc=%d)", o.Ref, o.Type, o.RC))
	}
	if c.Truncated {
		out = append(out, "...")
	}
	return out
}

// printCensusDiff prints the two-snapshot delta: per-type growth and new
// cycles.
func printCensusDiff(w io.Writer, d lfrc.CensusDelta) {
	fmt.Fprintf(w, "census diff: live%+d objects (%+d B), unreachable%+d, limbo%+d, new_cycles=%d (%d B)\n",
		d.LiveObjects, d.LiveBytes, d.UnreachableObjects, d.LimboObjects, d.NewCycles, d.NewCycleBytes)
	for i, t := range d.Types {
		if i >= 5 {
			fmt.Fprintf(w, "  ... %d more types changed\n", len(d.Types)-i)
			break
		}
		fmt.Fprintf(w, "  type %-24s objects%+-8d bytes%+-10d unreachable_bytes%+d\n",
			t.Name, t.Objects, t.Bytes, t.UnreachableBytes)
	}
}
