package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lfrc"
)

// captureBundle writes sys's bundle to a file under t.TempDir and returns the
// path — the doctor only ever sees the tarball, exactly as in the field.
func captureBundle(t *testing.T, sys *lfrc.System) string {
	t.Helper()
	var buf bytes.Buffer
	if err := sys.WriteBundle(&buf); err != nil {
		t.Fatalf("WriteBundle: %v", err)
	}
	path := filepath.Join(t.TempDir(), "bundle.tar.gz")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatalf("write bundle: %v", err)
	}
	return path
}

// TestDoctorDiagnosesExhaustion: a system driven into heap exhaustion yields a
// bundle the doctor — offline, from the tarball alone — diagnoses with the
// right rule, and the offline replay independently corroborates the live
// watchdog's record.
func TestDoctorDiagnosesExhaustion(t *testing.T) {
	sys, err := lfrc.New(
		lfrc.WithMaxHeapWords(1<<12),
		lfrc.WithHeapPressurePolicy(lfrc.DefaultHeapPressurePolicy()),
		lfrc.WithTimeline(lfrc.TimelineOptions{Manual: true}),
	)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer sys.Close()
	d, err := sys.NewDeque()
	if err != nil {
		t.Fatalf("NewDeque: %v", err)
	}
	for i := 0; i < 1<<16; i++ {
		if err := d.PushRight(lfrc.Value(i + 1)); err != nil {
			if !errors.Is(err, lfrc.ErrOutOfMemory) {
				t.Fatalf("PushRight: %v", err)
			}
			break
		}
	}
	if sys.Stats().Degraded.Exhaustions == 0 {
		t.Fatal("heap never exhausted")
	}
	sys.CaptureTimelineSample()

	path := captureBundle(t, sys)
	b, err := load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	rep := analyze(path, b)
	if rep.Healthy {
		t.Fatal("doctor called an exhausted system healthy")
	}

	var f *finding
	for i := range rep.Findings {
		if rep.Findings[i].Rule == "heap_exhaustion" {
			f = &rep.Findings[i]
		}
	}
	if f == nil {
		t.Fatalf("no heap_exhaustion finding: %+v", rep.Findings)
	}
	if f.Severity != "critical" {
		t.Errorf("severity = %q, want critical", f.Severity)
	}
	srcs := strings.Join(f.Sources, "+")
	if !strings.Contains(srcs, "replay") || !strings.Contains(srcs, "live") {
		t.Errorf("sources = %v, want replay corroborating live", f.Sources)
	}
	// Findings are ranked: criticals before warnings.
	for i := 1; i < len(rep.Findings); i++ {
		if rep.Findings[i].Level > rep.Findings[i-1].Level {
			t.Errorf("findings not ranked by severity: %+v", rep.Findings)
		}
	}

	var human bytes.Buffer
	printHuman(&human, rep)
	out := human.String()
	for _, want := range []string{"UNHEALTHY", "heap_exhaustion", "engine ", "reclaimer "} {
		if !strings.Contains(out, want) {
			t.Errorf("human verdict lacks %q:\n%s", want, out)
		}
	}
}

// TestDoctorHealthyBundle: a quiet instrumented system produces a bundle the
// doctor pronounces healthy, and the JSON report round-trips.
func TestDoctorHealthyBundle(t *testing.T) {
	sys, err := lfrc.New(lfrc.WithTimeline(lfrc.TimelineOptions{Manual: true}))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer sys.Close()
	d, err := sys.NewDeque()
	if err != nil {
		t.Fatalf("NewDeque: %v", err)
	}
	for i := lfrc.Value(1); i <= 16; i++ {
		if err := d.PushRight(i); err != nil {
			t.Fatalf("PushRight: %v", err)
		}
	}
	sys.CaptureTimelineSample()
	sys.CaptureTimelineSample()

	path := captureBundle(t, sys)
	b, err := load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	rep := analyze(path, b)
	if !rep.Healthy || len(rep.Findings) != 0 {
		t.Fatalf("healthy system diagnosed sick: %+v", rep.Findings)
	}

	var human bytes.Buffer
	printHuman(&human, rep)
	if !strings.Contains(human.String(), "HEALTHY") {
		t.Errorf("human verdict lacks HEALTHY:\n%s", human.String())
	}

	js, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	var back report
	if err := json.Unmarshal(js, &back); err != nil {
		t.Fatalf("unmarshal report: %v", err)
	}
	if !back.Healthy || back.Manifest.Engine != rep.Manifest.Engine {
		t.Errorf("report round-trip lost data: %+v", back)
	}
}

// TestDoctorRejectsGarbage: load errors cleanly on missing and non-bundle
// inputs instead of misdiagnosing them.
func TestDoctorRejectsGarbage(t *testing.T) {
	if _, err := load(filepath.Join(t.TempDir(), "nope.tar.gz")); err == nil {
		t.Error("load of a missing file succeeded")
	}
	junk := filepath.Join(t.TempDir(), "junk.tar.gz")
	if err := os.WriteFile(junk, []byte("this is not a bundle"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := load(junk); err == nil {
		t.Error("load of a non-gzip file succeeded")
	}
}
