// Command lfrcdoctor is the offline diagnostic-bundle analyzer: point it at a
// tar.gz captured by System.WriteBundle (an incident auto-capture, the
// /debug/lfrc/bundle.tar.gz endpoint, SIGQUIT in the CLIs, or lfrcbench's
// chaos-mode FAIL capture) and it re-runs the health watchdog's rule engine
// over the bundle's timeline, cross-checks the census, merges what the live
// watchdog had already recorded, and prints a ranked verdict.
//
// It never touches a live system: everything it knows comes from the bundle,
// which is the point — a capsule captured in production is diagnosable on any
// machine, after the process is gone.
//
//	lfrcdoctor bundle.tar.gz          human verdict
//	lfrcdoctor -json bundle.tar.gz    machine-readable verdict for CI
//
// Exit status: 0 healthy (no critical findings), 1 critical findings, 2 the
// bundle could not be loaded.
package main

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"lfrc"
	"lfrc/internal/census"
	"lfrc/internal/timeline"
	"lfrc/internal/watchdog"
)

// bundle is a loaded diagnostic bundle. Artifacts the bundle lacks stay zero;
// analysis degrades gracefully (a bundle without a timeline still gets its
// census cross-checked).
type bundle struct {
	Manifest  lfrc.BundleManifest
	Timeline  timeline.Doc
	Incidents watchdog.Doc
	Census    census.Snapshot
	HaveCensus bool

	PostmortemCount int
}

// load reads and parses a bundle tar.gz.
func load(path string) (*bundle, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	gz, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		return nil, fmt.Errorf("%s: not a gzip archive: %w", path, err)
	}
	arts := map[string][]byte{}
	tr := tar.NewReader(gz)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%s: tar: %w", path, err)
		}
		b, err := io.ReadAll(tr)
		if err != nil {
			return nil, fmt.Errorf("%s: %s: %w", path, hdr.Name, err)
		}
		arts[hdr.Name] = b
	}

	b := &bundle{}
	mb, ok := arts["manifest.json"]
	if !ok {
		return nil, fmt.Errorf("%s: no manifest.json — not a diagnostic bundle", path)
	}
	if err := json.Unmarshal(mb, &b.Manifest); err != nil {
		return nil, fmt.Errorf("%s: manifest.json: %w", path, err)
	}
	if raw, ok := arts["timeline.json"]; ok {
		if err := json.Unmarshal(raw, &b.Timeline); err != nil {
			return nil, fmt.Errorf("%s: timeline.json: %w", path, err)
		}
	}
	if raw, ok := arts["incidents.json"]; ok {
		if err := json.Unmarshal(raw, &b.Incidents); err != nil {
			return nil, fmt.Errorf("%s: incidents.json: %w", path, err)
		}
	}
	if raw, ok := arts["census.json"]; ok {
		if err := json.Unmarshal(raw, &b.Census); err != nil {
			return nil, fmt.Errorf("%s: census.json: %w", path, err)
		}
		b.HaveCensus = true
	}
	if raw, ok := arts["postmortems.json"]; ok {
		var pm struct {
			Postmortems []json.RawMessage `json:"postmortems"`
		}
		if err := json.Unmarshal(raw, &pm); err != nil {
			return nil, fmt.Errorf("%s: postmortems.json: %w", path, err)
		}
		b.PostmortemCount = len(pm.Postmortems)
	}
	return b, nil
}

// finding is one merged verdict line: a rule that fired in the offline replay
// of the bundle's timeline, in the live watchdog's own records, or both.
type finding struct {
	Rule     string   `json:"rule"`
	Severity string   `json:"severity"`
	Level    int      `json:"level"`
	Message  string   `json:"message"`
	Count    int64    `json:"count"`
	FromSeq  uint64   `json:"from_seq"`
	ToSeq    uint64   `json:"to_seq"`
	FirstTS  int64    `json:"first_ts"`
	LastTS   int64    `json:"last_ts"`
	Sources  []string `json:"sources"`
}

// report is the full verdict.
type report struct {
	Bundle   string             `json:"bundle"`
	Manifest lfrc.BundleManifest `json:"manifest"`
	Healthy  bool               `json:"healthy"`
	Findings []finding          `json:"findings"`
	Context  []string           `json:"context"`
}

// replay runs the watchdog's default rules over the bundle's samples plus one
// final census/postmortem cross-check tick, exactly as the live engine would
// have seen them. An hour-long cooldown folds sustained conditions into one
// incident per rule, which is the shape a verdict wants.
func replay(b *bundle) []watchdog.Incident {
	eng := watchdog.New(watchdog.Options{Cooldown: time.Hour})
	var last timeline.Sample
	for _, sm := range b.Timeline.Samples {
		in := watchdog.Input{Sample: sm}
		eng.Observe(&in)
		last = sm
	}
	if len(b.Timeline.Samples) == 0 {
		// No timeline: feed a zero baseline so delta rules have a prev.
		eng.Observe(&watchdog.Input{})
	}
	final := watchdog.Input{
		Sample:      timeline.Sample{Seq: last.Seq + 1, TS: last.TS},
		Postmortems: uint64(b.PostmortemCount),
	}
	if b.HaveCensus {
		final.Probed = true
		final.CensusMismatches = b.Census.RCMismatchCount
		final.CensusCycles = b.Census.CycleCount
		final.CensusCycleBytes = b.Census.CycleBytes
		final.CensusUnreachable = b.Census.Unreachable.Objects
	}
	eng.Observe(&final)
	return eng.Incidents()
}

// analyze merges the offline replay with the bundle's live incident records
// into one ranked finding list.
func analyze(path string, b *bundle) report {
	merged := map[string]*finding{}
	order := []string{}
	absorb := func(inc watchdog.Incident, source string) {
		f := merged[inc.Rule]
		if f == nil {
			f = &finding{
				Rule:     inc.Rule,
				Severity: inc.Severity,
				Level:    int(inc.Level),
				Message:  inc.Message,
				Count:    inc.Count,
				FromSeq:  inc.FromSeq,
				ToSeq:    inc.ToSeq,
				FirstTS:  inc.FirstTS,
				LastTS:   inc.LastTS,
			}
			merged[inc.Rule] = f
			order = append(order, inc.Rule)
		} else {
			// Keep the wider evidence window and the higher firing count.
			if inc.Count > f.Count {
				f.Count, f.Message = inc.Count, inc.Message
			}
			if inc.FromSeq < f.FromSeq {
				f.FromSeq, f.FirstTS = inc.FromSeq, inc.FirstTS
			}
			if inc.ToSeq > f.ToSeq {
				f.ToSeq, f.LastTS = inc.ToSeq, inc.LastTS
			}
		}
		for _, s := range f.Sources {
			if s == source {
				return
			}
		}
		f.Sources = append(f.Sources, source)
	}
	for _, inc := range replay(b) {
		absorb(inc, "replay")
	}
	for _, inc := range b.Incidents.Incidents {
		absorb(inc, "live")
	}

	findings := make([]finding, 0, len(order))
	for _, rule := range order {
		findings = append(findings, *merged[rule])
	}
	sort.SliceStable(findings, func(i, j int) bool {
		if findings[i].Level != findings[j].Level {
			return findings[i].Level > findings[j].Level
		}
		return findings[i].Count > findings[j].Count
	})

	rep := report{
		Bundle:   path,
		Manifest: b.Manifest,
		Healthy:  true,
		Findings: findings,
		Context:  contextLines(b),
	}
	for _, f := range findings {
		if f.Level >= int(watchdog.SevCritical) {
			rep.Healthy = false
		}
	}
	return rep
}

// contextLines summarizes the bundle's surroundings: the telemetry span, the
// census totals, and the hottest contention cell at the end of the window.
func contextLines(b *bundle) []string {
	var out []string
	if n := len(b.Timeline.Samples); n > 0 {
		first, last := b.Timeline.Samples[0], b.Timeline.Samples[n-1]
		out = append(out, fmt.Sprintf("timeline: %d samples over %.1fs at %v cadence",
			n, float64(last.TS-first.TS)/1e9, time.Duration(b.Timeline.IntervalNS)))
		if hot := last.Hot[0]; hot.Addr != 0 {
			total := int64(0)
			for _, h := range last.Hot {
				total += h.Failures
			}
			share := ""
			if total > 0 {
				share = fmt.Sprintf(" (%d%% of top-K failures)", hot.Failures*100/total)
			}
			out = append(out, fmt.Sprintf("top contention cell %s: hot %d, %d attributed failures%s",
				hot.Role, hot.Hot, hot.Failures, share))
		}
	} else {
		out = append(out, "timeline: no samples (bundle captured without WithTimeline?)")
	}
	if b.HaveCensus {
		out = append(out, fmt.Sprintf(
			"census (%s backend): %d live objects — %d reachable, %d limbo, %d unreachable; %d cycle(s), %d rc mismatch(es)",
			b.Census.Backend, b.Census.LiveObjects, b.Census.Reachable.Objects,
			b.Census.Limbo.Objects, b.Census.Unreachable.Objects,
			b.Census.CycleCount, b.Census.RCMismatchCount))
	}
	if b.PostmortemCount > 0 {
		out = append(out, fmt.Sprintf("%d violation postmortem(s) on board", b.PostmortemCount))
	}
	return out
}

// glyphs per severity level, matching lfrctop's incidents panel.
func glyph(level int) string {
	switch watchdog.Severity(level) {
	case watchdog.SevCritical:
		return "✖"
	case watchdog.SevWarn:
		return "▲"
	default:
		return "•"
	}
}

// printHuman renders the verdict for a terminal.
func printHuman(w io.Writer, rep report) {
	m := rep.Manifest
	fmt.Fprintf(w, "lfrcdoctor: %s\n", rep.Bundle)
	fmt.Fprintf(w, "  engine %s · reclaimer %s · %s %s/%s · GOMAXPROCS %d\n",
		m.Engine, m.Reclaimer, m.Host.GoVersion, m.Host.GOOS, m.Host.GOARCH, m.Host.GOMAXPROCS)
	if m.FaultPlan != "" {
		fmt.Fprintf(w, "  fault plan %q seed %d", m.FaultPlan, m.FaultSeed)
		if m.FaultSchedule != "" {
			fmt.Fprintf(w, "; schedule tail: %s", m.FaultSchedule)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
	if len(rep.Findings) == 0 {
		fmt.Fprintf(w, "VERDICT: HEALTHY — no rule fired in replay and the live watchdog recorded nothing\n")
	} else {
		crit, warn := 0, 0
		for _, f := range rep.Findings {
			switch {
			case f.Level >= int(watchdog.SevCritical):
				crit++
			case f.Level == int(watchdog.SevWarn):
				warn++
			}
		}
		verdict := "DEGRADED"
		if crit > 0 {
			verdict = "UNHEALTHY"
		}
		fmt.Fprintf(w, "VERDICT: %s — %d critical, %d warning\n\n", verdict, crit, warn)
		for _, f := range rep.Findings {
			src := ""
			for i, s := range f.Sources {
				if i > 0 {
					src += "+"
				}
				src += s
			}
			fmt.Fprintf(w, "  %s %-8s %-15s [%s] %s (samples %d–%d, ×%d)\n",
				glyph(f.Level), f.Severity, f.Rule, src, f.Message, f.FromSeq, f.ToSeq, f.Count)
		}
	}
	if len(rep.Context) > 0 {
		fmt.Fprintf(w, "\ncontext:\n")
		for _, line := range rep.Context {
			fmt.Fprintf(w, "  %s\n", line)
		}
	}
}

func main() {
	jsonOut := flag.Bool("json", false, "emit the verdict as JSON (for CI)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: lfrcdoctor [-json] bundle.tar.gz\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(0)
	b, err := load(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lfrcdoctor: %v\n", err)
		os.Exit(2)
	}
	rep := analyze(path, b)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
	} else {
		printHuman(os.Stdout, rep)
	}
	if !rep.Healthy {
		os.Exit(1)
	}
}
