// Command snarkstress soaks the LFRC structures under randomized concurrent
// load with periodic invariant audits: reference counts are re-derived from
// the heap graph at quiescent checkpoints, poison integrity is scanned, and
// value conservation is checked on teardown. It is the long-running
// validation companion to the unit tests.
//
// Usage:
//
//	snarkstress [-dur 10s] [-workers 8] [-engine locking|mcas]
//	            [-reclaim lfrc|epoch] [-rc figure2|split]
//	            [-structure deque|queue|stack|all]
//	            [-checkpoint 2s] [-claim]
//
// Exit status is non-zero if any invariant is violated.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lfrc"
	"lfrc/internal/check"
	"lfrc/internal/core"
	"lfrc/internal/mem"
	"lfrc/internal/reclaim"
	"lfrc/internal/snark"
	"lfrc/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "snarkstress:", err)
		os.Exit(1)
	}
}

type options struct {
	dur        time.Duration
	workers    int
	engine     workload.EngineKind
	reclaimer  lfrc.Reclaimer
	rcStrategy lfrc.RCStrategy
	structures []string
	checkpoint time.Duration
	claim      bool
}

func run(args []string) error {
	fs := flag.NewFlagSet("snarkstress", flag.ContinueOnError)
	engine := lfrc.EngineLocking
	var (
		dur        = fs.Duration("dur", 10*time.Second, "total soak duration per structure")
		workers    = fs.Int("workers", 8, "concurrent workers")
		structure  = fs.String("structure", "all", "deque, queue, stack or all")
		checkpoint = fs.Duration("checkpoint", 2*time.Second, "interval between quiescent audits")
		claim      = fs.Bool("claim", true, "use the value-claiming deque variant")
	)
	fs.Var(&engine, "engine", "DCAS engine: locking or mcas")
	reclaimer := lfrc.ReclaimerLFRC
	fs.Var(&reclaimer, "reclaim", "reclamation backend: lfrc or epoch")
	rcStrategy := lfrc.RCFigure2
	fs.Var(&rcStrategy, "rc", "reference-count strategy: figure2 or split")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// workload.EngineKind is numerically aligned with lfrc.Engine.
	kind := workload.EngineKind(engine)

	var structures []string
	switch strings.ToLower(*structure) {
	case "all":
		structures = []string{"deque", "queue", "stack"}
	case "deque", "queue", "stack":
		structures = []string{strings.ToLower(*structure)}
	default:
		return fmt.Errorf("unknown structure %q", *structure)
	}

	opts := options{
		dur:        *dur,
		workers:    *workers,
		engine:     kind,
		reclaimer:  reclaimer,
		rcStrategy: rcStrategy,
		structures: structures,
		checkpoint: *checkpoint,
		claim:      *claim,
	}
	if runtime.GOMAXPROCS(0) < 4 {
		runtime.GOMAXPROCS(4)
	}

	failures := 0
	for _, st := range opts.structures {
		fmt.Printf("=== soaking %s (%s engine, %s reclaim, %s rc, %d workers, %v) ===\n",
			st, opts.engine, opts.reclaimer, opts.rcStrategy, opts.workers, opts.dur)
		if err := soak(st, opts); err != nil {
			fmt.Printf("FAIL %s: %v\n", st, err)
			failures++
		} else {
			fmt.Printf("PASS %s\n", st)
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d structure(s) failed", failures)
	}
	return nil
}

// ops abstracts one structure under soak.
type ops struct {
	apply  func(op int, v uint64) (uint64, bool, bool) // returns (popped, wasPop, popOK)
	close  func()
	anchor func() mem.Ref
}

func buildOps(st string, env *workload.Env, claim bool) (ops, error) {
	switch st {
	case "deque":
		var sopts []snark.Option
		if claim {
			sopts = append(sopts, snark.WithValueClaiming())
		}
		d, err := env.NewDeque(sopts...)
		if err != nil {
			return ops{}, err
		}
		return ops{
			apply: func(op int, v uint64) (uint64, bool, bool) {
				switch op {
				case 0:
					return 0, false, d.PushLeft(v) == nil
				case 1:
					return 0, false, d.PushRight(v) == nil
				case 2:
					pv, ok := d.PopLeft()
					return pv, true, ok
				default:
					pv, ok := d.PopRight()
					return pv, true, ok
				}
			},
			close:  d.Close,
			anchor: d.Anchor,
		}, nil
	case "queue":
		q, err := env.NewQueue()
		if err != nil {
			return ops{}, err
		}
		return ops{
			apply: func(op int, v uint64) (uint64, bool, bool) {
				if op < 2 {
					return 0, false, q.Enqueue(v) == nil
				}
				pv, ok := q.Dequeue()
				return pv, true, ok
			},
			close:  q.Close,
			anchor: q.Anchor,
		}, nil
	case "stack":
		s, err := env.NewStack()
		if err != nil {
			return ops{}, err
		}
		return ops{
			apply: func(op int, v uint64) (uint64, bool, bool) {
				if op < 2 {
					return 0, false, s.Push(v) == nil
				}
				pv, ok := s.Pop()
				return pv, true, ok
			},
			close:  s.Close,
			anchor: s.Anchor,
		}, nil
	}
	return ops{}, fmt.Errorf("unknown structure %q", st)
}

func soak(st string, o options) error {
	// lfrc.Reclaimer is numerically aligned with reclaim.Kind, and
	// lfrc.RCStrategy with core.StrategyKind.
	env := workload.NewEnv(o.engine,
		core.WithReclaimerKind(reclaim.Kind(o.reclaimer)),
		core.WithStrategyKind(core.StrategyKind(o.rcStrategy)))
	structure, err := buildOps(st, env, o.claim)
	if err != nil {
		return err
	}

	var (
		pushed, popped atomic.Int64
		totalOps       atomic.Int64
	)
	deadline := time.Now().Add(o.dur)
	audits := 0

	for time.Now().Before(deadline) {
		// One concurrent burst...
		var (
			stop atomic.Bool
			wg   sync.WaitGroup
		)
		for w := 0; w < o.workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w)*31 + time.Now().UnixNano()))
				v := uint64(w)<<40 | 1
				for !stop.Load() {
					_, wasPop, ok := structure.apply(rng.Intn(4), v)
					if wasPop {
						if ok {
							popped.Add(1)
						}
					} else if ok {
						pushed.Add(1)
						v++
					}
					totalOps.Add(1)
				}
			}(w)
		}
		burst := o.checkpoint
		if remaining := time.Until(deadline); remaining < burst {
			burst = remaining
		}
		time.Sleep(burst)
		stop.Store(true)
		wg.Wait()

		// ...then a quiescent audit.
		audits++
		extra := map[mem.Ref]int64{structure.anchor(): 1}
		if vs := check.AuditRCDecoded(env.Heap, extra, env.RC.DecodeLink); len(vs) != 0 {
			return fmt.Errorf("audit %d: %d rc violations, first: %s", audits, len(vs), vs[0])
		}
		if vs := check.ScanPoison(env.Heap); len(vs) != 0 {
			return fmt.Errorf("audit %d: %d poison violations, first: %s", audits, len(vs), vs[0])
		}
		hs := env.Heap.Stats()
		if hs.Corruptions != 0 || hs.DoubleFrees != 0 {
			return fmt.Errorf("audit %d: corruptions=%d doubleFrees=%d", audits, hs.Corruptions, hs.DoubleFrees)
		}
		fmt.Printf("  checkpoint %d: ops=%d live=%d audits clean\n",
			audits, totalOps.Load(), hs.LiveObjects)
	}

	// Teardown: drain, check conservation, close, check leaks.
	drained := int64(0)
	for {
		_, wasPop, ok := structure.apply(2, 0)
		if !wasPop || !ok {
			break
		}
		drained++
	}
	if got := popped.Load() + drained; got != pushed.Load() {
		return fmt.Errorf("conservation: pushed %d, recovered %d", pushed.Load(), got)
	}
	// A census before teardown shows what the structure held.
	for _, c := range check.Census(env.Heap) {
		fmt.Printf("  census: %-16s live=%-6d freed-slots=%-6d live-words=%d\n",
			c.Name, c.Live, c.Freed, c.LiveWords)
	}
	structure.close()
	// The epoch backend holds freed-at-count-zero objects in limbo; finish
	// its deferred work before demanding an empty heap.
	env.RC.DrainZombies(0)
	if leaks := check.Leaks(env.Heap); len(leaks) != 0 {
		return fmt.Errorf("%d objects leaked after close", len(leaks))
	}
	fmt.Printf("  done: %d ops, %d values pushed and fully recovered, zero leaks\n",
		totalOps.Load(), pushed.Load())
	return nil
}
