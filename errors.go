package lfrc

import (
	"errors"

	"lfrc/internal/mem"
)

// Typed error sentinels. Every error the package returns either is one of
// these or wraps one, so callers branch with errors.Is rather than string
// matching:
//
//	if errors.Is(err, lfrc.ErrOutOfMemory) { shedLoad() }
var (
	// ErrOutOfMemory reports heap exhaustion: the arena limit
	// (WithMaxHeapWords) was reached and the free lists and deferred-
	// reclamation backlog had nothing to recycle. With a heap-pressure
	// policy installed (WithHeapPressurePolicy), operations surface it only
	// after the policy's bounded retry/backoff/drain cycle has run dry.
	ErrOutOfMemory = mem.ErrOutOfMemory

	// ErrValueRange reports a payload or key that does not fit in a cell:
	// values must be at most MaxValue.
	ErrValueRange = mem.ErrValueRange

	// ErrTooManyTypes reports that the heap's type table is full; it can
	// surface from the first constructor of a structure family, whose
	// lazy type registration overflowed the table.
	ErrTooManyTypes = mem.ErrTooManyTypes

	// ErrClosed reports an operation on a structure after its Close.
	ErrClosed = errors.New("lfrc: structure is closed")
)
