package lfrc

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"lfrc/internal/mem"
)

// Typed error sentinels. Every error the package returns either is one of
// these or wraps one, so callers branch with errors.Is rather than string
// matching:
//
//	if errors.Is(err, lfrc.ErrOutOfMemory) { shedLoad() }
var (
	// ErrOutOfMemory reports heap exhaustion: the arena limit
	// (WithMaxHeapWords) was reached and the free lists and deferred-
	// reclamation backlog had nothing to recycle. With a heap-pressure
	// policy installed (WithHeapPressurePolicy), operations surface it only
	// after the policy's bounded retry/backoff/drain cycle has run dry.
	ErrOutOfMemory = mem.ErrOutOfMemory

	// ErrValueRange reports a payload or key that does not fit in a cell:
	// values must be at most MaxValue.
	ErrValueRange = mem.ErrValueRange

	// ErrTooManyTypes reports that the heap's type table is full; it can
	// surface from the first constructor of a structure family, whose
	// lazy type registration overflowed the table.
	ErrTooManyTypes = mem.ErrTooManyTypes

	// ErrClosed reports an operation on a structure after its Close.
	ErrClosed = errors.New("lfrc: structure is closed")

	// ErrUnknownName reports a name that resolves to no value of one of the
	// pluggable seams: ParseEngine, ParseReclaimer and ParseRCStrategy all
	// wrap it (listing the valid names), so flag plumbing and config
	// loaders can branch on bad selector input with a single errors.Is.
	ErrUnknownName = errors.New("lfrc: unknown")
)

// unknownNameError is the one error shape shared by every seam parser:
// what the name was supposed to select, what was given, and the full list
// of valid spellings — wrapped around ErrUnknownName.
func unknownNameError(what, got string, valid ...string) error {
	quoted := make([]string, len(valid))
	for i, v := range valid {
		quoted[i] = strconv.Quote(v)
	}
	return fmt.Errorf("%w %s %q (want %s)", ErrUnknownName, what, got, strings.Join(quoted, " or "))
}
