package lfrc

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"lfrc/internal/timeline"
	"lfrc/internal/watchdog"
)

// Incident is one structured health finding: a watchdog rule that held for
// its full evidence window, with severity, firing counters, and the evidence
// values at the start and end of the qualifying streak. See WithWatchdog.
type Incident = watchdog.Incident

// WatchdogStats is the watchdog engine's own accounting (rule evaluations,
// firings, coalescing, retention drops).
type WatchdogStats = watchdog.Stats

// DefaultCensusProbeEvery is how many timeline ticks separate the watchdog's
// census probes when WatchdogOptions.CensusProbeEvery is zero: at the default
// 100ms cadence, one whole-heap cross-check roughly every 6.4s.
const DefaultCensusProbeEvery = 64

// WatchdogOptions configures the health watchdog (WithWatchdog). The zero
// value is the default always-on configuration.
type WatchdogOptions struct {
	// Disabled turns the watchdog off entirely (it is on by default
	// whenever the timeline is on — the watchdog rides the sampler's
	// cadence and has none of its own).
	Disabled bool

	// MaxIncidents bounds the retained incident records (oldest evicted);
	// 0 selects the 64-record default.
	MaxIncidents int

	// Cooldown is the per-rule rate limit: re-firings within it coalesce
	// into the rule's open incident instead of minting a new record.
	// 0 selects the 5s default; negative disables coalescing.
	Cooldown time.Duration

	// CensusProbeEvery is how many timeline ticks separate census probes —
	// the sampled whole-heap cross-check feeding the rc_mismatch and
	// cycle_leak rules. 0 selects DefaultCensusProbeEvery; negative
	// disables probing (the probe is the one watchdog activity that is not
	// allocation-free, which is why it is sampled so coarsely). A probe
	// tick that lands on a busy interval is skipped: the census is exact
	// only at quiescence, and asserting from a moving heap would turn
	// transient in-flight states into false incidents.
	CensusProbeEvery int

	// BundleDir, when set, auto-captures a diagnostic bundle (WriteBundle)
	// into this directory for every newly minted incident, named
	// lfrc-incident-<id>-<rule>.tar.gz. Captures run on their own
	// goroutine; overlapping incidents skip the capture rather than queue.
	BundleDir string

	// OnIncident, when set, is called (on its own goroutine) with each
	// newly minted incident.
	OnIncident func(Incident)
}

// WithWatchdog configures the always-on health watchdog: a rule engine that
// evaluates every timeline sample against the failure modes the telemetry
// can express — sustained retry storms, a reclamation backlog rising with
// zero drains, heap-pressure exhaustions, new violation postmortems, census
// rc-mismatch and cycle-leak findings, and the contention heatmap flipping
// onto an rc-role cell — and turns threshold crossings into rate-limited
// Incidents (System.Incidents, /debug/lfrc/incidents.json, lfrc_watchdog_*
// metrics). The watchdog is on by default whenever WithTimeline is on; use
// this option to tune it, arm auto-capture, or disable it. Implies
// WithTimeline at its defaults when no timeline was requested (unless
// Disabled).
func WithWatchdog(o WatchdogOptions) Option {
	return optionFunc(func(c *config) {
		c.watchdog = o
		if !o.Disabled {
			c.timeline = true
		}
	})
}

// newWatchdog builds the watchdog engine. Called from New before newTimeline
// (the sampler's on-sample hook feeds it).
func (s *System) newWatchdog(o WatchdogOptions) {
	probeEvery := o.CensusProbeEvery
	if probeEvery == 0 {
		probeEvery = DefaultCensusProbeEvery
	}
	s.wdProbeEvery = probeEvery
	var onInc func(watchdog.Incident)
	if o.OnIncident != nil || o.BundleDir != "" {
		userCB, dir := o.OnIncident, o.BundleDir
		onInc = func(inc watchdog.Incident) {
			// Called under the engine and sampler locks: hand every
			// consequence to its own goroutine.
			if userCB != nil {
				go userCB(inc)
			}
			if dir != "" {
				s.captureIncidentBundle(dir, inc)
			}
		}
	}
	s.wd = watchdog.New(watchdog.Options{
		MaxIncidents: o.MaxIncidents,
		Cooldown:     o.Cooldown,
		OnIncident:   onInc,
	})
}

// observeHealth is the timeline sampler's on-sample hook: it assembles the
// watchdog input from the published sample plus the out-of-band signals and
// runs one rule evaluation. Quiet-path allocation-free; every
// CensusProbeEvery-th tick it additionally takes a whole-heap census (the
// sampled cross-check, allocation allowed).
func (s *System) observeHealth(sm *timeline.Sample) {
	in := watchdog.Input{Sample: *sm}
	if s.obs != nil {
		in.Postmortems = s.obs.PostmortemCount()
	}
	s.wdTicks++
	if s.wdProbeEvery > 0 && s.wdTicks%uint64(s.wdProbeEvery) == 0 && quiescent(sm) {
		cs := s.Census()
		in.Probed = true
		in.CensusMismatches = cs.RCMismatchCount
		in.CensusCycles = cs.CycleCount
		in.CensusCycleBytes = cs.CycleBytes
		in.CensusUnreachable = cs.Unreachable.Objects
	}
	s.wd.Observe(&in)
}

// quiescent reports whether the sampled interval saw no RC mutations. The
// census counts stored RCs against in-edges across a moving heap, so its
// mismatch and cycle verdicts are exact only at quiescence — probing a busy
// interval would turn transient in-flight states into false critical
// incidents. (Offline, cmd/lfrcdoctor gets the same guarantee from the
// bundle's census, which chaos captures after close+drain.)
func quiescent(sm *timeline.Sample) bool {
	return sm.RCStores == 0 && sm.RCCAS == 0 && sm.RCDCAS == 0 && sm.RCDestroys == 0
}

// captureIncidentBundle writes one auto-capture bundle on its own goroutine.
// A capture already in flight makes this a no-op (bundles are seconds-class;
// incidents inside one capture are already represented in it).
func (s *System) captureIncidentBundle(dir string, inc watchdog.Incident) {
	if !s.bundleBusy.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer s.bundleBusy.Store(false)
		name := filepath.Join(dir, fmt.Sprintf("lfrc-incident-%03d-%s.tar.gz", inc.ID, inc.Rule))
		f, err := os.Create(name)
		if err != nil {
			return
		}
		err = s.WriteBundle(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			os.Remove(name)
		}
	}()
}

// Incidents returns the watchdog's retained incident records, oldest first.
// Without a watchdog (WithTimeline off, or WatchdogOptions.Disabled) it
// returns nil.
func (s *System) Incidents() []Incident { return s.wd.Incidents() }

// WatchdogStats reports the watchdog engine's accounting. Without a watchdog
// every field is zero.
func (s *System) WatchdogStats() WatchdogStats { return s.wd.Stats() }

// WriteIncidentsJSON writes the schema-versioned incidents document (the
// same bytes served on /debug/lfrc/incidents.json). Without a watchdog it
// writes a valid document with Enabled false.
func (s *System) WriteIncidentsJSON(w io.Writer) error { return s.wd.WriteJSON(w) }
