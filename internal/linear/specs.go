package linear

import (
	"fmt"
	"sort"
)

// Action codes shared by the bundled specs.
const (
	ActPushLeft = iota + 1
	ActPushRight
	ActPopLeft
	ActPopRight
	ActInsert
	ActDelete
	ActContains
)

// DequeSpec is the sequential double-ended queue specification. It also
// serves queues (PushRight/PopLeft) and stacks (PushRight/PopRight), which
// are action-restricted deques.
type DequeSpec struct{}

var _ Spec = DequeSpec{}

// dequeState is an immutable value sequence.
type dequeState struct {
	vals []uint64
}

// Key implements State.
func (s dequeState) Key() string { return fmt.Sprint(s.vals) }

// Init implements Spec.
func (DequeSpec) Init() State { return dequeState{} }

// Apply implements Spec.
func (DequeSpec) Apply(st State, op Op) (bool, State) {
	s := st.(dequeState)
	switch op.Action {
	case ActPushLeft:
		if !op.OK {
			return false, nil // pushes in these tests never fail
		}
		next := make([]uint64, 0, len(s.vals)+1)
		next = append(next, op.Input)
		next = append(next, s.vals...)
		return true, dequeState{vals: next}
	case ActPushRight:
		if !op.OK {
			return false, nil
		}
		next := make([]uint64, len(s.vals), len(s.vals)+1)
		copy(next, s.vals)
		next = append(next, op.Input)
		return true, dequeState{vals: next}
	case ActPopLeft:
		if !op.OK {
			return len(s.vals) == 0, s
		}
		if len(s.vals) == 0 || s.vals[0] != op.Output {
			return false, nil
		}
		return true, dequeState{vals: append([]uint64(nil), s.vals[1:]...)}
	case ActPopRight:
		if !op.OK {
			return len(s.vals) == 0, s
		}
		if len(s.vals) == 0 || s.vals[len(s.vals)-1] != op.Output {
			return false, nil
		}
		return true, dequeState{vals: append([]uint64(nil), s.vals[:len(s.vals)-1]...)}
	default:
		return false, nil
	}
}

// SetSpec is the sequential set specification.
type SetSpec struct{}

var _ Spec = SetSpec{}

type setState struct {
	keys map[uint64]bool
}

// Key implements State.
func (s setState) Key() string {
	ks := make([]uint64, 0, len(s.keys))
	for k := range s.keys {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return fmt.Sprint(ks)
}

// Init implements Spec.
func (SetSpec) Init() State { return setState{keys: map[uint64]bool{}} }

// Apply implements Spec.
func (SetSpec) Apply(st State, op Op) (bool, State) {
	s := st.(setState)
	present := s.keys[op.Input]
	clone := func(add, del bool) setState {
		next := make(map[uint64]bool, len(s.keys)+1)
		for k := range s.keys {
			next[k] = true
		}
		if add {
			next[op.Input] = true
		}
		if del {
			delete(next, op.Input)
		}
		return setState{keys: next}
	}
	switch op.Action {
	case ActInsert:
		if op.OK == present {
			return false, nil // insert succeeds iff absent
		}
		if op.OK {
			return true, clone(true, false)
		}
		return true, s
	case ActDelete:
		if op.OK != present {
			return false, nil // delete succeeds iff present
		}
		if op.OK {
			return true, clone(false, true)
		}
		return true, s
	case ActContains:
		return op.OK == present, s
	default:
		return false, nil
	}
}
