package linear

import (
	"testing"
)

// seqEvent builds a non-overlapping event at logical time t.
func seqEvent(t int64, op Op) Event {
	return Event{Op: op, Invoke: t * 10, Return: t*10 + 5}
}

// overlapping builds an event covering [from, to].
func overlapping(from, to int64, op Op) Event {
	return Event{Op: op, Invoke: from, Return: to}
}

func push(side int, v uint64) Op { return Op{Action: side, Input: v, OK: true} }
func popOK(side int, v uint64) Op {
	return Op{Action: side, Output: v, OK: true}
}
func popEmpty(side int) Op { return Op{Action: side} }

func TestEmptyHistoryIsLinearizable(t *testing.T) {
	res, err := CheckEvents(DequeSpec{}, nil)
	if err != nil || !res.Linearizable {
		t.Fatalf("empty history: %v %v", res, err)
	}
}

func TestSequentialDequeHistory(t *testing.T) {
	events := []Event{
		seqEvent(1, push(ActPushRight, 1)),
		seqEvent(2, push(ActPushRight, 2)),
		seqEvent(3, popOK(ActPopLeft, 1)),
		seqEvent(4, push(ActPushLeft, 3)),
		seqEvent(5, popOK(ActPopRight, 2)),
		seqEvent(6, popOK(ActPopLeft, 3)),
		seqEvent(7, popEmpty(ActPopLeft)),
	}
	res, err := CheckEvents(DequeSpec{}, events)
	if err != nil || !res.Linearizable {
		t.Fatalf("legal sequential history rejected: %v %v", res, err)
	}
}

func TestSequentialFIFOViolationRejected(t *testing.T) {
	// Two non-overlapping pushes then pops in the wrong order: no
	// linearization may reorder non-overlapping operations.
	events := []Event{
		seqEvent(1, push(ActPushRight, 1)),
		seqEvent(2, push(ActPushRight, 2)),
		seqEvent(3, popOK(ActPopLeft, 2)), // must have been 1
		seqEvent(4, popOK(ActPopLeft, 1)),
	}
	if _, err := CheckEvents(DequeSpec{}, events); err == nil {
		t.Fatal("FIFO violation accepted")
	}
}

func TestOverlappingReorderAccepted(t *testing.T) {
	// The same wrong-looking pop order is fine when the pushes overlap:
	// they may linearize in either order.
	events := []Event{
		overlapping(0, 100, push(ActPushRight, 1)),
		overlapping(0, 100, push(ActPushRight, 2)),
		seqEvent(20, popOK(ActPopLeft, 2)), // waits: invoke 200
		seqEvent(21, popOK(ActPopLeft, 1)),
	}
	res, err := CheckEvents(DequeSpec{}, events)
	if err != nil || !res.Linearizable {
		t.Fatalf("legal overlapped history rejected: %v %v", res, err)
	}
}

func TestPopOfUnknownValueRejected(t *testing.T) {
	events := []Event{
		seqEvent(1, push(ActPushRight, 1)),
		seqEvent(2, popOK(ActPopLeft, 99)),
	}
	if _, err := CheckEvents(DequeSpec{}, events); err == nil {
		t.Fatal("pop of never-pushed value accepted")
	}
}

func TestDuplicateDeliveryRejected(t *testing.T) {
	events := []Event{
		seqEvent(1, push(ActPushRight, 7)),
		seqEvent(2, popOK(ActPopLeft, 7)),
		seqEvent(3, popOK(ActPopLeft, 7)),
	}
	if _, err := CheckEvents(DequeSpec{}, events); err == nil {
		t.Fatal("duplicate delivery accepted")
	}
}

func TestEmptyPopWhileValuePresentRejected(t *testing.T) {
	events := []Event{
		seqEvent(1, push(ActPushRight, 7)),
		seqEvent(2, popEmpty(ActPopLeft)),
		seqEvent(3, popOK(ActPopLeft, 7)),
	}
	if _, err := CheckEvents(DequeSpec{}, events); err == nil {
		t.Fatal("empty pop with value present accepted")
	}
}

func TestEmptyPopOverlappingPushAccepted(t *testing.T) {
	events := []Event{
		overlapping(0, 100, push(ActPushRight, 7)),
		overlapping(1, 99, popEmpty(ActPopLeft)), // may linearize before the push
		seqEvent(20, popOK(ActPopLeft, 7)),
	}
	res, err := CheckEvents(DequeSpec{}, events)
	if err != nil || !res.Linearizable {
		t.Fatalf("legal empty-pop overlap rejected: %v %v", res, err)
	}
}

func TestStackLIFOHistory(t *testing.T) {
	events := []Event{
		seqEvent(1, push(ActPushRight, 1)),
		seqEvent(2, push(ActPushRight, 2)),
		seqEvent(3, popOK(ActPopRight, 2)),
		seqEvent(4, popOK(ActPopRight, 1)),
	}
	res, err := CheckEvents(DequeSpec{}, events)
	if err != nil || !res.Linearizable {
		t.Fatalf("legal LIFO history rejected: %v %v", res, err)
	}
}

func TestSetSpecHistories(t *testing.T) {
	ins := func(k uint64, ok bool) Op { return Op{Action: ActInsert, Input: k, OK: ok} }
	del := func(k uint64, ok bool) Op { return Op{Action: ActDelete, Input: k, OK: ok} }
	has := func(k uint64, ok bool) Op { return Op{Action: ActContains, Input: k, OK: ok} }

	t.Run("legal", func(t *testing.T) {
		events := []Event{
			seqEvent(1, ins(5, true)),
			seqEvent(2, ins(5, false)),
			seqEvent(3, has(5, true)),
			seqEvent(4, del(5, true)),
			seqEvent(5, del(5, false)),
			seqEvent(6, has(5, false)),
		}
		if _, err := CheckEvents(SetSpec{}, events); err != nil {
			t.Fatalf("legal set history rejected: %v", err)
		}
	})
	t.Run("double insert both succeed", func(t *testing.T) {
		events := []Event{
			seqEvent(1, ins(5, true)),
			seqEvent(2, ins(5, true)),
		}
		if _, err := CheckEvents(SetSpec{}, events); err == nil {
			t.Fatal("two successful non-overlapping inserts accepted")
		}
	})
	t.Run("racing inserts one wins", func(t *testing.T) {
		events := []Event{
			overlapping(0, 10, ins(5, true)),
			overlapping(0, 10, ins(5, false)),
		}
		if _, err := CheckEvents(SetSpec{}, events); err != nil {
			t.Fatalf("racing inserts rejected: %v", err)
		}
	})
	t.Run("contains sees deleted key", func(t *testing.T) {
		events := []Event{
			seqEvent(1, ins(5, true)),
			seqEvent(2, del(5, true)),
			seqEvent(3, has(5, true)), // stale read: illegal
		}
		if _, err := CheckEvents(SetSpec{}, events); err == nil {
			t.Fatal("stale contains accepted")
		}
	})
}

func TestLongSequentialHistoryIsFast(t *testing.T) {
	// Windowing must keep a long non-overlapping history linear-time.
	var events []Event
	for i := int64(0); i < 5000; i++ {
		events = append(events, seqEvent(2*i, push(ActPushRight, uint64(i+1))))
		events = append(events, seqEvent(2*i+1, popOK(ActPopLeft, uint64(i+1))))
	}
	res, err := CheckEvents(DequeSpec{}, events)
	if err != nil || !res.Linearizable {
		t.Fatalf("long history rejected: %v %v", res, err)
	}
	if res.StatesExplored > 4*len(events) {
		t.Errorf("windowing ineffective: explored %d states for %d events", res.StatesExplored, len(events))
	}
}

func TestRecorderLimitsConcurrency(t *testing.T) {
	r := NewRecorder(2)
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func(i int) {
			r.Record(func() Op { return push(ActPushRight, uint64(i+1)) })
			done <- struct{}{}
		}(i)
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if got := r.History().Len(); got != 4 {
		t.Errorf("recorded %d events, want 4", got)
	}
}
