package linear

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"lfrc/internal/core"
	"lfrc/internal/dcas"
	"lfrc/internal/mem"
	"lfrc/internal/snark"
)

// TestPublishedSnarkHistories runs the *published* Snark algorithm (no
// value claiming) through the linearizability checker on pop-heavy,
// near-empty workloads -- the neighbourhood of the two races Doherty et al.
// (SPAA 2004) later proved exist in the published algorithm. The races
// required a model checker to find originally and have never manifested
// under this harness's natural scheduling; a non-zero count here would be a
// reproduction of that result, so it is logged rather than asserted. The
// WithValueClaiming variant is the one the exact-semantics tests assert on.
func TestPublishedSnarkHistories(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	violations := 0
	rounds := 300
	for r := 0; r < rounds; r++ {
		h := mem.NewHeap()
		rc := core.New(h, dcas.NewLocking(h))
		d, err := snark.New(rc, snark.MustRegisterTypes(h)) // published, no claiming
		if err != nil {
			t.Fatal(err)
		}
		rec := NewRecorder(3)
		var wg sync.WaitGroup
		var next struct {
			sync.Mutex
			v uint64
		}
		next.v = 1
		fresh := func() uint64 { next.Lock(); defer next.Unlock(); v := next.v; next.v++; return v }
		for w := 0; w < 3; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(r*31 + w)))
				for i := 0; i < 120; i++ {
					rec.Record(func() Op {
						// pop-heavy: hover near empty where the races live
						switch rng.Intn(5) {
						case 0:
							v := fresh()
							return Op{Action: ActPushLeft, Input: v, OK: d.PushLeft(v) == nil}
						case 1:
							v := fresh()
							return Op{Action: ActPushRight, Input: v, OK: d.PushRight(v) == nil}
						case 2, 3:
							v, ok := d.PopLeft()
							return Op{Action: ActPopLeft, Output: v, OK: ok}
						default:
							v, ok := d.PopRight()
							return Op{Action: ActPopRight, Output: v, OK: ok}
						}
					})
				}
			}(w)
		}
		wg.Wait()
		if _, err := Check(DequeSpec{}, rec.History()); err != nil {
			violations++
		}
		d.Close()
	}
	t.Logf("published Snark: %d/%d histories non-linearizable", violations, rounds)
}
