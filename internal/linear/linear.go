// Package linear is a small linearizability checker in the style of Wing &
// Gong (and Lowe's refinements): it records a concurrent history of
// operation invocations and responses and searches for a legal sequential
// witness against a user-supplied specification.
//
// The LFRC paper's correctness story for the transformed structures is
// "the methodology preserves the original algorithm's semantics" (§3, §4).
// Model tests cover the sequential half; this package covers the concurrent
// half: stress tests record real histories from the LFRC deque, queue, set
// and stack and assert a linearization exists.
//
// The checker is exponential in the number of overlapping operations, as
// all such checkers are; keep histories to a few thousand operations with
// modest concurrency (the recorder's windowing helpers do this).
package linear

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Spec models the sequential object: an immutable-state step function.
// State values must be comparable via the Equal method so the checker can
// prune revisited configurations.
type Spec interface {
	// Init returns the initial state.
	Init() State

	// Apply runs one operation against the state, returning whether the
	// recorded output is legal there and, if so, the successor state.
	// Implementations must not mutate the input state.
	Apply(s State, op Op) (ok bool, next State)
}

// State is an opaque sequential-object state. Implementations must provide
// a stable Key for memoization.
type State interface {
	// Key returns a canonical encoding of the state; two states with the
	// same key are interchangeable.
	Key() string
}

// Op is one completed operation: an action code plus input and output.
type Op struct {
	// Action is a spec-defined operation code.
	Action int

	// Input and Output are spec-defined values.
	Input, Output uint64

	// OK is a spec-defined boolean output (e.g. pop success).
	OK bool
}

// Event is an operation with its real-time invocation/response interval.
type Event struct {
	Op
	// Invoke and Return are monotonic timestamps (nanoseconds).
	Invoke, Return int64
}

// History is a recorded set of events.
type History struct {
	mu     sync.Mutex
	events []Event
	clock  func() int64
}

// NewHistory creates an empty history using the runtime monotonic clock.
func NewHistory() *History {
	start := time.Now()
	return &History{clock: func() int64 { return int64(time.Since(start)) }}
}

// Begin records an invocation and returns its timestamp.
func (h *History) Begin() int64 { return h.clock() }

// End records the completion of an operation that began at invoke.
func (h *History) End(invoke int64, op Op) {
	ret := h.clock()
	h.mu.Lock()
	h.events = append(h.events, Event{Op: op, Invoke: invoke, Return: ret})
	h.mu.Unlock()
}

// Len returns the number of recorded events.
func (h *History) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.events)
}

// Events returns a copy of the recorded events.
func (h *History) Events() []Event {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Event(nil), h.events...)
}

// CheckResult reports a linearizability check.
type CheckResult struct {
	// Linearizable reports whether a witness was found (or the history
	// is empty).
	Linearizable bool

	// Events is the number of events checked.
	Events int

	// StatesExplored counts search configurations visited.
	StatesExplored int
}

// Check searches for a linearization of the history against spec. It
// decomposes the history into independent windows (maximal groups of
// real-time-overlapping operations are never split) only when the object
// state can be threaded through — which is always, since windows are
// processed in real-time order against the running state.
func Check(spec Spec, h *History) (CheckResult, error) {
	events := h.Events()
	return CheckEvents(spec, events)
}

// CheckEvents is Check over an explicit event slice.
//
// The search is the Wing–Gong construction with memoization over
// configurations. Events are sorted by invocation time; a configuration is
// (p, extras, state) where every event before index p is linearized, extras
// is the sparse set of linearized events at or past p, and state is the
// sequential object state. The key property that keeps candidate
// enumeration cheap: an event i may linearize next iff no *pending* event j
// returned before i invoked, and any such blocker sorts before i — so
// candidates are found by a forward scan from p that stops at the first
// pending event whose return time precedes the candidate's invocation.
func CheckEvents(spec Spec, events []Event) (CheckResult, error) {
	res := CheckResult{Events: len(events)}
	if len(events) == 0 {
		res.Linearizable = true
		return res, nil
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].Invoke != events[j].Invoke {
			return events[i].Invoke < events[j].Invoke
		}
		return events[i].Return < events[j].Return
	})

	n := len(events)
	seen := map[string]bool{}
	explored := 0
	var deepest int

	type extrasSet map[int]bool

	keyOf := func(p int, extras extrasSet, st State) string {
		ks := make([]int, 0, len(extras))
		for i := range extras {
			ks = append(ks, i)
		}
		sort.Ints(ks)
		return fmt.Sprintf("%d|%v|%s", p, ks, st.Key())
	}

	var dfs func(p int, extras extrasSet, st State) bool
	dfs = func(p int, extras extrasSet, st State) bool {
		// Normalize: advance p over linearized extras.
		for extras[p] {
			delete(extras, p)
			p++
		}
		if p > deepest {
			deepest = p
		}
		if p == n {
			return true
		}
		explored++
		k := keyOf(p, extras, st)
		if seen[k] {
			return false
		}
		seen[k] = true

		// Enumerate candidates: scan forward from p. minRet tracks the
		// earliest return among pending events seen so far; once a
		// candidate invokes after minRet, it and everything later is
		// blocked by that pending event.
		minRet := int64(math.MaxInt64)
		for i := p; i < n; i++ {
			if extras[i] {
				continue
			}
			if events[i].Invoke > minRet {
				break
			}
			if ok, next := spec.Apply(st, events[i].Op); ok {
				var e2 extrasSet
				if i == p {
					e2 = make(extrasSet, len(extras))
					for x := range extras {
						e2[x] = true
					}
					if dfs(p+1, e2, next) {
						return true
					}
				} else {
					e2 = make(extrasSet, len(extras)+1)
					for x := range extras {
						e2[x] = true
					}
					e2[i] = true
					if dfs(p, e2, next) {
						return true
					}
				}
			}
			if events[i].Return < minRet {
				minRet = events[i].Return
			}
		}
		return false
	}

	ok := dfs(0, extrasSet{}, spec.Init())
	res.StatesExplored = explored
	if !ok {
		return res, fmt.Errorf("linear: no linearization (search stuck after %d of %d events)", deepest, n)
	}
	res.Linearizable = true
	return res, nil
}

// Recorder wraps a history with a concurrency limiter so that windows stay
// small enough to check: at most maxConcurrent operations may overlap.
type Recorder struct {
	h   *History
	sem chan struct{}

	dropped atomic.Int64
}

// NewRecorder builds a recorder allowing up to maxConcurrent overlapping
// operations.
func NewRecorder(maxConcurrent int) *Recorder {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	return &Recorder{h: NewHistory(), sem: make(chan struct{}, maxConcurrent)}
}

// Record runs fn as one recorded operation.
func (r *Recorder) Record(fn func() Op) {
	r.sem <- struct{}{}
	inv := r.h.Begin()
	op := fn()
	r.h.End(inv, op)
	<-r.sem
}

// History returns the underlying history.
func (r *Recorder) History() *History { return r.h }
