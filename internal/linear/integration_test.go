package linear

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"lfrc/internal/core"
	"lfrc/internal/dcas"
	"lfrc/internal/dlist"
	"lfrc/internal/mem"
	"lfrc/internal/msqueue"
	"lfrc/internal/snark"
	"lfrc/internal/stackrc"
)

// These tests record real concurrent histories from the LFRC structures and
// check them for linearizability — the concurrent half of the paper's
// "the transformation preserves semantics" claim (§3/§4).

type env struct {
	h  *mem.Heap
	rc *core.RC
}

func newEnv(t *testing.T, engine string) *env {
	t.Helper()
	h := mem.NewHeap()
	var e dcas.Engine
	if engine == "mcas" {
		e = dcas.NewMCAS(h)
	} else {
		e = dcas.NewLocking(h)
	}
	return &env{h: h, rc: core.New(h, e)}
}

// runRecorded drives ops workers through fn, recording each operation.
func runRecorded(t *testing.T, workers, opsPerWorker, maxConcurrent int, fn func(w, i int, rng *rand.Rand) Op) *History {
	t.Helper()
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	rec := NewRecorder(maxConcurrent)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 11))
			for i := 0; i < opsPerWorker; i++ {
				rec.Record(func() Op { return fn(w, i, rng) })
			}
		}(w)
	}
	wg.Wait()
	return rec.History()
}

func checkHistory(t *testing.T, spec Spec, h *History) {
	t.Helper()
	res, err := Check(spec, h)
	if err != nil {
		t.Fatalf("history not linearizable: %v", err)
	}
	if !res.Linearizable {
		t.Fatal("history not linearizable")
	}
	t.Logf("%d events linearizable (%d states explored)", res.Events, res.StatesExplored)
}

func TestSnarkClaimingDequeLinearizable(t *testing.T) {
	for _, engine := range []string{"locking", "mcas"} {
		t.Run(engine, func(t *testing.T) {
			e := newEnv(t, engine)
			d, err := snark.New(e.rc, snark.MustRegisterTypes(e.h), snark.WithValueClaiming())
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()

			var next struct {
				sync.Mutex
				v uint64
			}
			next.v = 1
			fresh := func() uint64 {
				next.Lock()
				defer next.Unlock()
				v := next.v
				next.v++
				return v
			}

			h := runRecorded(t, 4, 500, 3, func(w, i int, rng *rand.Rand) Op {
				switch rng.Intn(4) {
				case 0:
					v := fresh()
					return Op{Action: ActPushLeft, Input: v, OK: d.PushLeft(v) == nil}
				case 1:
					v := fresh()
					return Op{Action: ActPushRight, Input: v, OK: d.PushRight(v) == nil}
				case 2:
					v, ok := d.PopLeft()
					return Op{Action: ActPopLeft, Output: v, OK: ok}
				default:
					v, ok := d.PopRight()
					return Op{Action: ActPopRight, Output: v, OK: ok}
				}
			})
			checkHistory(t, DequeSpec{}, h)
		})
	}
}

func TestMSQueueLinearizable(t *testing.T) {
	for _, engine := range []string{"locking", "mcas"} {
		t.Run(engine, func(t *testing.T) {
			e := newEnv(t, engine)
			q, err := msqueue.New(e.rc, msqueue.MustRegisterTypes(e.h))
			if err != nil {
				t.Fatal(err)
			}
			defer q.Close()

			h := runRecorded(t, 4, 500, 3, func(w, i int, rng *rand.Rand) Op {
				if rng.Intn(2) == 0 {
					v := uint64(w)<<32 | uint64(i) + 1
					return Op{Action: ActPushRight, Input: v, OK: q.Enqueue(v) == nil}
				}
				v, ok := q.Dequeue()
				return Op{Action: ActPopLeft, Output: v, OK: ok}
			})
			checkHistory(t, DequeSpec{}, h)
		})
	}
}

func TestTreiberStackLinearizable(t *testing.T) {
	for _, engine := range []string{"locking", "mcas"} {
		t.Run(engine, func(t *testing.T) {
			e := newEnv(t, engine)
			s, err := stackrc.New(e.rc, stackrc.MustRegisterTypes(e.h))
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()

			h := runRecorded(t, 4, 500, 3, func(w, i int, rng *rand.Rand) Op {
				if rng.Intn(2) == 0 {
					v := uint64(w)<<32 | uint64(i) + 1
					return Op{Action: ActPushRight, Input: v, OK: s.Push(v) == nil}
				}
				v, ok := s.Pop()
				return Op{Action: ActPopRight, Output: v, OK: ok}
			})
			checkHistory(t, DequeSpec{}, h)
		})
	}
}

func TestSortedSetLinearizable(t *testing.T) {
	for _, engine := range []string{"locking", "mcas"} {
		t.Run(engine, func(t *testing.T) {
			e := newEnv(t, engine)
			l, err := dlist.New(e.rc, dlist.MustRegisterTypes(e.h))
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()

			h := runRecorded(t, 4, 500, 3, func(w, i int, rng *rand.Rand) Op {
				k := uint64(rng.Intn(8)) // tiny key space: heavy contention
				switch rng.Intn(3) {
				case 0:
					ok, err := l.Insert(k)
					if err != nil {
						t.Errorf("Insert: %v", err)
					}
					return Op{Action: ActInsert, Input: k, OK: ok}
				case 1:
					return Op{Action: ActDelete, Input: k, OK: l.Delete(k)}
				default:
					return Op{Action: ActContains, Input: k, OK: l.Contains(k)}
				}
			})
			checkHistory(t, SetSpec{}, h)
		})
	}
}
