package timeline

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// SchemaVersion identifies the timeline.json layout. Bump it on any breaking
// change to Doc or Sample JSON tags; the schema golden test at the repo root
// locks the key set.
const SchemaVersion = 1

// Doc is the one-call JSON export served on /debug/lfrc/timeline.json.
type Doc struct {
	// SchemaVersion is SchemaVersion at write time.
	SchemaVersion int `json:"schema_version"`

	// Enabled reports whether a sampler is installed; the remaining
	// fields are zero when it is not.
	Enabled bool `json:"enabled"`

	// IntervalNS, Slots, Captures, Retained, Dropped mirror Stats.
	IntervalNS int64  `json:"interval_ns"`
	Slots      int    `json:"slots"`
	Captures   uint64 `json:"captures"`
	Retained   int    `json:"retained"`
	Dropped    uint64 `json:"dropped"`

	// Samples is the retained series, oldest first.
	Samples []Sample `json:"samples"`
}

// Document builds the export Doc from the sampler's current state. Nil-safe:
// a nil sampler produces a valid disabled document.
func (s *Sampler) Document() Doc {
	if s == nil {
		return Doc{SchemaVersion: SchemaVersion, Samples: []Sample{}}
	}
	st := s.Stats()
	samples := s.Snapshot()
	if samples == nil {
		samples = []Sample{}
	}
	return Doc{
		SchemaVersion: SchemaVersion,
		Enabled:       true,
		IntervalNS:    st.IntervalNS,
		Slots:         st.Slots,
		Captures:      st.Captures,
		Retained:      st.Retained,
		Dropped:       st.Dropped,
		Samples:       samples,
	}
}

// WriteJSON writes the timeline document as indented JSON.
func (s *Sampler) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.Document())
}

// csvColumns is the column set WriteCSV emits, one row per sample. The hot
// cells are flattened to the single hottest entry; the full heatmap lives in
// the JSON export.
var csvColumns = []string{
	"seq", "ts", "dur_ns",
	"ops", "rate_ops_per_sec",
	"heap_allocs", "heap_frees", "heap_recycles",
	"heap_live_objects", "heap_live_words",
	"rc_loads", "rc_load_retries", "rc_stores", "rc_copies", "rc_cas",
	"rc_dcas", "rc_destroys", "rc_zombie_pushes",
	"alloc_global_free",
	"zombies", "reclaim_retired", "reclaim_freed", "reclaim_pending",
	"reclaim_epoch",
	"deg_retries", "deg_recoveries", "deg_exhaustions", "deg_zombies_drained",
	"fault_injected", "obs_recorded",
	"lat_load_p50_ns", "lat_load_p99_ns", "retry_p99",
	"hot_addr", "hot_role", "hot_score", "hot_failures",
}

// WriteCSV writes the retained samples as CSV (header row + one row per
// sample, oldest first) for spreadsheet and gnuplot consumption. Nil-safe: a
// nil sampler writes only the header.
func (s *Sampler) WriteCSV(w io.Writer) error {
	for i, c := range csvColumns {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, c); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(w, "\n"); err != nil {
		return err
	}
	for _, sm := range s.Snapshot() {
		row := []string{
			strconv.FormatUint(sm.Seq, 10),
			strconv.FormatInt(sm.TS, 10),
			strconv.FormatInt(sm.DurNS, 10),
			strconv.FormatInt(sm.Ops(), 10),
			strconv.FormatFloat(sm.Rate(), 'f', 1, 64),
			strconv.FormatInt(sm.HeapAllocs, 10),
			strconv.FormatInt(sm.HeapFrees, 10),
			strconv.FormatInt(sm.HeapRecycles, 10),
			strconv.FormatInt(sm.HeapLiveObjects, 10),
			strconv.FormatInt(sm.HeapLiveWords, 10),
			strconv.FormatInt(sm.RCLoads, 10),
			strconv.FormatInt(sm.RCLoadRetries, 10),
			strconv.FormatInt(sm.RCStores, 10),
			strconv.FormatInt(sm.RCCopies, 10),
			strconv.FormatInt(sm.RCCAS, 10),
			strconv.FormatInt(sm.RCDCAS, 10),
			strconv.FormatInt(sm.RCDestroys, 10),
			strconv.FormatInt(sm.RCZombiePushes, 10),
			strconv.FormatInt(sm.AllocGlobalFree, 10),
			strconv.FormatInt(sm.Zombies, 10),
			strconv.FormatInt(sm.ReclaimRetired, 10),
			strconv.FormatInt(sm.ReclaimFreed, 10),
			strconv.FormatInt(sm.ReclaimPending, 10),
			strconv.FormatUint(sm.ReclaimEpoch, 10),
			strconv.FormatInt(sm.DegRetries, 10),
			strconv.FormatInt(sm.DegRecoveries, 10),
			strconv.FormatInt(sm.DegExhaustions, 10),
			strconv.FormatInt(sm.DegZombiesDrained, 10),
			strconv.FormatUint(sm.FaultInjected, 10),
			strconv.FormatUint(sm.ObsRecorded, 10),
			strconv.FormatInt(sm.LatLoadP50, 10),
			strconv.FormatInt(sm.LatLoadP99, 10),
			strconv.FormatInt(sm.RetryP99, 10),
			fmt.Sprintf("%#x", sm.Hot[0].Addr),
			sm.Hot[0].Role,
			strconv.FormatInt(sm.Hot[0].Hot, 10),
			strconv.FormatInt(sm.Hot[0].Failures, 10),
		}
		for i, v := range row {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if _, err := io.WriteString(w, v); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}
