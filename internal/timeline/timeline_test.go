package timeline

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// fillCumulative writes a deterministic cumulative counter set derived from
// tick into every field the delta pass touches, plus a few gauges.
func fillCumulative(s *Sample, tick int64) {
	s.HeapAllocs = 10 * tick
	s.HeapFrees = 9 * tick
	s.HeapLiveObjects = tick // gauge
	s.RCLoads = 100 * tick
	s.RCStores = 50 * tick
	s.RCDCAS = 25 * tick
	s.Shards = 2
	s.ShardAllocs[0] = 4 * tick
	s.ShardAllocs[1] = 6 * tick
	s.Zombies = 3 // gauge
	s.ReclaimRetired = 7 * tick
	s.ReclaimFreed = 6 * tick
	s.ReclaimPending = tick % 5 // gauge
	s.ReclaimEpoch = uint64(tick)
	s.FaultInjected = uint64(2 * tick)
	s.ObsRecorded = uint64(3 * tick)
	s.LatLoadP50 = 128 // quantile: instantaneous
	s.Hot[0] = HotCell{Addr: 0x40, RoleID: 1, Hot: tick, Failures: tick / 2}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	var s Sample
	fillCumulative(&s, 41)
	s.TS = 12345
	s.DurNS = 678
	var buf [payloadWords]uint64
	s.encode(&buf)
	var got Sample
	got.decode(&buf)
	got.Seq = s.Seq
	if got != s {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, s)
	}
}

func TestDeltasAndGauges(t *testing.T) {
	tick := int64(0)
	s := New(func(sm *Sample) {
		tick++
		fillCumulative(sm, tick)
	})
	s.CaptureNow()
	s.CaptureNow()
	ss := s.Snapshot()
	if len(ss) != 2 {
		t.Fatalf("retained %d samples, want 2", len(ss))
	}
	first, second := ss[0], ss[1]
	// First capture has no baseline: published as-is with DurNS 0.
	if first.DurNS != 0 {
		t.Errorf("first capture DurNS = %d, want 0", first.DurNS)
	}
	// Second capture: counters are per-interval deltas of the cumulative
	// ramp, gauges instantaneous.
	if second.RCLoads != 100 || second.RCStores != 50 || second.RCDCAS != 25 {
		t.Errorf("rc deltas = %d/%d/%d, want 100/50/25",
			second.RCLoads, second.RCStores, second.RCDCAS)
	}
	if second.HeapAllocs != 10 || second.HeapFrees != 9 {
		t.Errorf("heap deltas = %d/%d, want 10/9", second.HeapAllocs, second.HeapFrees)
	}
	if second.ShardAllocs[0] != 4 || second.ShardAllocs[1] != 6 {
		t.Errorf("shard deltas = %v, want [4 6 ...]", second.ShardAllocs)
	}
	if second.ReclaimRetired != 7 || second.ReclaimFreed != 6 {
		t.Errorf("reclaim deltas = %d/%d, want 7/6", second.ReclaimRetired, second.ReclaimFreed)
	}
	if second.FaultInjected != 2 || second.ObsRecorded != 3 {
		t.Errorf("fault/obs deltas = %d/%d, want 2/3", second.FaultInjected, second.ObsRecorded)
	}
	// Gauges stay instantaneous.
	if second.HeapLiveObjects != 2 {
		t.Errorf("live objects gauge = %d, want 2", second.HeapLiveObjects)
	}
	if second.Zombies != 3 || second.LatLoadP50 != 128 {
		t.Errorf("gauge fields disturbed: zombies=%d latp50=%d", second.Zombies, second.LatLoadP50)
	}
	if second.ReclaimEpoch != 2 {
		t.Errorf("epoch gauge = %d, want 2", second.ReclaimEpoch)
	}
	if second.Ops() != 100+50+25 {
		t.Errorf("Ops() = %d, want 175", second.Ops())
	}
	if second.DurNS <= 0 {
		t.Errorf("second capture DurNS = %d, want > 0", second.DurNS)
	}
	if second.Rate() <= 0 {
		t.Errorf("Rate() = %v, want > 0", second.Rate())
	}
}

func TestDeltaClampsBackwardCounters(t *testing.T) {
	vals := []int64{100, 40} // striped read runs backwards
	i := 0
	s := New(func(sm *Sample) {
		sm.RCLoads = vals[i]
		i++
	})
	s.CaptureNow()
	s.CaptureNow()
	ss := s.Snapshot()
	if got := ss[1].RCLoads; got != 0 {
		t.Fatalf("backwards counter delta = %d, want clamp to 0", got)
	}
}

func TestWraparoundDropsOldest(t *testing.T) {
	tick := int64(0)
	s := New(func(sm *Sample) {
		tick++
		fillCumulative(sm, tick)
	}, WithSlots(8))
	if s.Slots() != 8 {
		t.Fatalf("Slots() = %d, want 8", s.Slots())
	}
	const captures = 100
	for i := 0; i < captures; i++ {
		s.CaptureNow()
	}
	ss := s.Snapshot()
	if len(ss) != 8 {
		t.Fatalf("retained %d samples after wraparound, want 8", len(ss))
	}
	for i, sm := range ss {
		want := uint64(captures - 8 + 1 + i)
		if sm.Seq != want {
			t.Errorf("sample %d Seq = %d, want %d (newest 8 retained, oldest dropped)", i, sm.Seq, want)
		}
	}
	st := s.Stats()
	if st.Captures != captures || st.Retained != 8 || st.Dropped != captures-8 {
		t.Errorf("Stats = %+v, want captures=%d retained=8 dropped=%d", st, captures, captures-8)
	}
}

func TestSlotsRoundUpToPowerOfTwo(t *testing.T) {
	s := New(func(*Sample) {}, WithSlots(100))
	if s.Slots() != 128 {
		t.Errorf("Slots() = %d, want 128", s.Slots())
	}
	s = New(func(*Sample) {}, WithSlots(1))
	if s.Slots() != 8 {
		t.Errorf("Slots() = %d, want minimum 8", s.Slots())
	}
}

// TestConcurrentCaptureAndRead drives capture and Snapshot from concurrent
// goroutines; under -race this proves the seqlock publication is data-race
// free, and the body checks no torn sample ever escapes (deltas derived from
// the same tick are internally consistent).
func TestConcurrentCaptureAndRead(t *testing.T) {
	tick := int64(0)
	s := New(func(sm *Sample) {
		tick++
		// Invariant a torn read would break: RCStores is always
		// exactly half RCLoads in cumulative space, so any published
		// delta must keep the 2:1 ratio.
		sm.RCLoads = 200 * tick
		sm.RCStores = 100 * tick
	}, WithSlots(16))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s.CaptureNow()
			}
		}
	}()
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, sm := range s.Snapshot() {
					if sm.Seq > 1 && sm.RCLoads != 2*sm.RCStores {
						t.Errorf("torn sample escaped: seq=%d loads=%d stores=%d",
							sm.Seq, sm.RCLoads, sm.RCStores)
						return
					}
				}
			}
		}()
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func TestStartStopBackgroundSampler(t *testing.T) {
	var mu sync.Mutex
	tick := int64(0)
	s := New(func(sm *Sample) {
		mu.Lock()
		tick++
		fillCumulative(sm, tick)
		mu.Unlock()
	}, WithInterval(time.Millisecond))
	s.Start()
	deadline := time.Now().Add(2 * time.Second)
	for s.Captures() < 5 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	s.Stop()
	if got := s.Captures(); got < 5 {
		t.Fatalf("background sampler took %d captures in 2s, want >= 5", got)
	}
	after := s.Captures()
	time.Sleep(5 * time.Millisecond)
	if got := s.Captures(); got != after {
		t.Errorf("sampler still capturing after Stop: %d -> %d", after, got)
	}
	s.Stop() // idempotent
}

func TestRoleNamesFilledAtSnapshot(t *testing.T) {
	s := New(func(sm *Sample) {
		sm.Hot[0] = HotCell{Addr: 0x10, RoleID: 2, Hot: 5}
	}, WithRoleNames(func(id uint8) string {
		if id == 2 {
			return "left_hat"
		}
		return "?"
	}))
	s.CaptureNow()
	ss := s.Snapshot()
	if got := ss[0].Hot[0].Role; got != "left_hat" {
		t.Errorf("Role = %q, want left_hat", got)
	}
	if got := ss[0].Hot[1].Role; got != "" {
		t.Errorf("empty cell got role %q", got)
	}
}

func TestNilSamplerIsSafe(t *testing.T) {
	var s *Sampler
	s.Start()
	s.Stop()
	s.CaptureNow()
	if s.Snapshot() != nil || s.Captures() != 0 || s.Slots() != 0 {
		t.Error("nil sampler leaked state")
	}
	if st := s.Stats(); st != (Stats{}) {
		t.Errorf("nil Stats = %+v, want zero", st)
	}
	doc := s.Document()
	if doc.Enabled || doc.SchemaVersion != SchemaVersion || len(doc.Samples) != 0 {
		t.Errorf("nil Document = %+v", doc)
	}
	var b bytes.Buffer
	if err := s.WriteJSON(&b); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
	b.Reset()
	if err := s.WriteCSV(&b); err != nil {
		t.Fatalf("nil WriteCSV: %v", err)
	}
	if lines := strings.Count(b.String(), "\n"); lines != 1 {
		t.Errorf("nil CSV has %d lines, want header only", lines)
	}
}

func TestWriteJSONDocument(t *testing.T) {
	tick := int64(0)
	s := New(func(sm *Sample) {
		tick++
		fillCumulative(sm, tick)
	}, WithSlots(8), WithRoleNames(func(uint8) string { return "role" }))
	for i := 0; i < 3; i++ {
		s.CaptureNow()
	}
	var b bytes.Buffer
	if err := s.WriteJSON(&b); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var doc Doc
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.SchemaVersion != SchemaVersion || !doc.Enabled {
		t.Errorf("doc header = %+v", doc)
	}
	if len(doc.Samples) != 3 || doc.Captures != 3 {
		t.Errorf("doc carries %d samples / %d captures, want 3/3", len(doc.Samples), doc.Captures)
	}
	if doc.Samples[0].Seq != 1 || doc.Samples[2].Seq != 3 {
		t.Errorf("samples out of order: %d..%d", doc.Samples[0].Seq, doc.Samples[2].Seq)
	}
}

func TestWriteCSVShape(t *testing.T) {
	tick := int64(0)
	s := New(func(sm *Sample) {
		tick++
		fillCumulative(sm, tick)
	}, WithSlots(8))
	for i := 0; i < 2; i++ {
		s.CaptureNow()
	}
	var b bytes.Buffer
	if err := s.WriteCSV(&b); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want header + 2 rows", len(lines))
	}
	cols := strings.Split(lines[0], ",")
	if len(cols) != len(csvColumns) {
		t.Fatalf("header has %d columns, want %d", len(cols), len(csvColumns))
	}
	for i, line := range lines[1:] {
		if got := strings.Count(line, ",") + 1; got != len(csvColumns) {
			t.Errorf("row %d has %d fields, want %d", i, got, len(csvColumns))
		}
	}
}

// BenchmarkCapture measures the raw sampler cost with a realistic-size
// capture callback; the root package's BenchmarkTimelineCapture measures the
// full stack against a live system.
func BenchmarkCapture(b *testing.B) {
	tick := int64(0)
	s := New(func(sm *Sample) {
		tick++
		fillCumulative(sm, tick)
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.CaptureNow()
	}
}
