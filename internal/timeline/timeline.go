// Package timeline is the continuous telemetry timeline: a background
// sampler that turns the reproduction's point-in-time counters into
// inspectable time series.
//
// Every observability surface built before it — /metrics, Stats(), the
// contention report — answers "what is true now"; bench-json records answer
// "what was the median over a whole run". The phenomena that matter to the
// north star are trajectories between those two extremes: the epoch
// backend's limbo backlog grows and drains over seconds, degradation retry
// storms are bursty, and contention hot-spots migrate between the deque's
// hats under phase-shifting load. The timeline captures a compact delta
// snapshot of all the existing counters every interval (default 100ms) into
// a fixed-size ring, so any of them can be read back as a series.
//
// The design obeys the same hard rule as the flight recorder (package obs):
// it must never perturb the algorithms it watches. Concretely:
//
//   - Capture is strictly read-only against the existing striped counters.
//     Instrumented operations pay nothing new: no additional counter, no
//     extra branch, no write they did not already do. The sampler is a pure
//     reader on a 100ms-class cadence.
//   - Capture allocates nothing. The capture callback fills a caller-owned
//     Sample in place (fixed-size fields only, no slices or maps), deltas
//     are computed against a sampler-private previous Sample, and the result
//     is encoded into a preallocated ring slot.
//   - The ring is lock-free for readers: power-of-two slots, each published
//     seqlock-style through atomic words (sequence word written last), so a
//     concurrent Snapshot sees every slot either whole or not at all.
//     Wraparound silently drops the oldest samples; nothing ever blocks.
//
// The root package owns the capture callback (it can see every subsystem);
// this package owns the cadence, the ring, and the export encodings.
package timeline

import (
	"sync"
	"sync/atomic"
	"time"
)

// MaxShards is how many allocation shards a Sample records individually;
// shards beyond it are still counted in the aggregate heap counters.
const MaxShards = 8

// TopK is how many contention hot cells a Sample carries.
const TopK = 4

// HotCell is one contention heatmap entry carried by a Sample.
type HotCell struct {
	// Addr is the cell's word address (0 = empty entry).
	Addr uint32 `json:"addr"`

	// RoleID is the cell's role as a small integer; Role is its rendered
	// name, filled at snapshot time from the sampler's role namer (the
	// capture path must not touch strings).
	RoleID uint8  `json:"-"`
	Role   string `json:"role"`

	// Hot is the decaying activity score; Failures the attributed failed
	// attempts (cumulative).
	Hot      int64 `json:"hot"`
	Failures int64 `json:"failures"`
}

// Sample is one timeline interval. Counter fields hold the delta over the
// interval (DurNS); gauge and quantile fields hold the instantaneous value at
// capture time. The capture callback fills every field with the *cumulative*
// counter value; the sampler turns cumulative fields into deltas against the
// previous capture before publication.
type Sample struct {
	// Seq is the capture's 1-based ordinal; TS its capture time in
	// nanoseconds since the Unix epoch; DurNS the elapsed time since the
	// previous capture (0 on the first).
	Seq   uint64 `json:"seq"`
	TS    int64  `json:"ts"`
	DurNS int64  `json:"dur_ns"`

	// Heap counters (deltas) and gauges.
	HeapAllocs      int64 `json:"heap_allocs"`
	HeapFrees       int64 `json:"heap_frees"`
	HeapRecycles    int64 `json:"heap_recycles"`
	HeapLiveObjects int64 `json:"heap_live_objects"` // gauge
	HeapLiveWords   int64 `json:"heap_live_words"`   // gauge
	HeapHighWater   int64 `json:"heap_high_water"`   // gauge

	// LFRC operation counters (deltas).
	RCLoads        int64 `json:"rc_loads"`
	RCLoadRetries  int64 `json:"rc_load_retries"`
	RCStores       int64 `json:"rc_stores"`
	RCCopies       int64 `json:"rc_copies"`
	RCCAS          int64 `json:"rc_cas"`
	RCDCAS         int64 `json:"rc_dcas"`
	RCDestroys     int64 `json:"rc_destroys"`
	RCZombiePushes int64 `json:"rc_zombie_pushes"`

	// Sharded allocator: the global overflow list occupancy (gauge), the
	// configured shard count, and per-shard allocation deltas for the
	// first MaxShards shards.
	AllocGlobalFree int64            `json:"alloc_global_free"` // gauge
	Shards          int64            `json:"shards"`
	ShardAllocs     [MaxShards]int64 `json:"shard_allocs"`

	// Deferred reclamation: the pending backlog (limbo bins or zombie
	// stack) as a gauge, plus retire/free deltas and the backend epoch.
	Zombies        int64  `json:"zombies"`         // gauge
	ReclaimRetired int64  `json:"reclaim_retired"` // delta
	ReclaimFreed   int64  `json:"reclaim_freed"`   // delta
	ReclaimPending int64  `json:"reclaim_pending"` // gauge
	ReclaimEpoch   uint64 `json:"reclaim_epoch"`   // gauge

	// Heap-pressure degradation counters (deltas).
	DegRetries        int64 `json:"deg_retries"`
	DegRecoveries     int64 `json:"deg_recoveries"`
	DegExhaustions    int64 `json:"deg_exhaustions"`
	DegZombiesDrained int64 `json:"deg_zombies_drained"`

	// Fault injector firings and flight-recorder events (deltas).
	FaultInjected uint64 `json:"fault_injected"`
	ObsRecorded   uint64 `json:"obs_recorded"`

	// Flight-recorder digests at capture time: sampled load/store latency
	// quantiles and the retry-count p99 (cumulative-histogram quantiles,
	// not per-interval).
	LatLoadP50  int64 `json:"lat_load_p50_ns"`
	LatLoadP99  int64 `json:"lat_load_p99_ns"`
	LatStoreP50 int64 `json:"lat_store_p50_ns"`
	LatStoreP99 int64 `json:"lat_store_p99_ns"`
	RetryP99    int64 `json:"retry_p99"`

	// Hot is the contention observatory's top-K heatmap at capture time
	// (zero-Addr entries are unused slots).
	Hot [TopK]HotCell `json:"hot"`
}

// payloadWords is the encoded size of a Sample minus its Seq (which lives in
// the slot's publication word): 34 scalar words + MaxShards shard words +
// 3 words per hot cell. encode panics if this drifts from the field list.
const payloadWords = 34 + MaxShards + 3*TopK

// slot is one ring entry: w0 carries the sample's Seq and doubles as the
// seqlock publication word (0 = empty or being rewritten), words the encoded
// payload. Every word is atomic so capture-vs-read is race-free; the release
// ordering of the final w0 store publishes the payload whole.
type slot struct {
	w0    atomic.Uint64
	words [payloadWords]atomic.Uint64
}

// encode flattens the sample (minus Seq) into dst. The field order is the
// decode order; both sides go through the same cursor so they cannot drift.
func (s *Sample) encode(dst *[payloadWords]uint64) {
	i := 0
	put := func(v uint64) { dst[i] = v; i++ }
	put(uint64(s.TS))
	put(uint64(s.DurNS))
	put(uint64(s.HeapAllocs))
	put(uint64(s.HeapFrees))
	put(uint64(s.HeapRecycles))
	put(uint64(s.HeapLiveObjects))
	put(uint64(s.HeapLiveWords))
	put(uint64(s.HeapHighWater))
	put(uint64(s.RCLoads))
	put(uint64(s.RCLoadRetries))
	put(uint64(s.RCStores))
	put(uint64(s.RCCopies))
	put(uint64(s.RCCAS))
	put(uint64(s.RCDCAS))
	put(uint64(s.RCDestroys))
	put(uint64(s.RCZombiePushes))
	put(uint64(s.AllocGlobalFree))
	put(uint64(s.Shards))
	for j := 0; j < MaxShards; j++ {
		put(uint64(s.ShardAllocs[j]))
	}
	put(uint64(s.Zombies))
	put(uint64(s.ReclaimRetired))
	put(uint64(s.ReclaimFreed))
	put(uint64(s.ReclaimPending))
	put(s.ReclaimEpoch)
	put(uint64(s.DegRetries))
	put(uint64(s.DegRecoveries))
	put(uint64(s.DegExhaustions))
	put(uint64(s.DegZombiesDrained))
	put(s.FaultInjected)
	put(s.ObsRecorded)
	put(uint64(s.LatLoadP50))
	put(uint64(s.LatLoadP99))
	put(uint64(s.LatStoreP50))
	put(uint64(s.LatStoreP99))
	put(uint64(s.RetryP99))
	for j := 0; j < TopK; j++ {
		put(uint64(s.Hot[j].Addr) | uint64(s.Hot[j].RoleID)<<32)
		put(uint64(s.Hot[j].Hot))
		put(uint64(s.Hot[j].Failures))
	}
	if i != payloadWords {
		panic("timeline: encode cursor out of sync with payloadWords")
	}
}

// decode is encode's inverse (Seq comes from the slot's w0).
func (s *Sample) decode(src *[payloadWords]uint64) {
	i := 0
	get := func() uint64 { v := src[i]; i++; return v }
	s.TS = int64(get())
	s.DurNS = int64(get())
	s.HeapAllocs = int64(get())
	s.HeapFrees = int64(get())
	s.HeapRecycles = int64(get())
	s.HeapLiveObjects = int64(get())
	s.HeapLiveWords = int64(get())
	s.HeapHighWater = int64(get())
	s.RCLoads = int64(get())
	s.RCLoadRetries = int64(get())
	s.RCStores = int64(get())
	s.RCCopies = int64(get())
	s.RCCAS = int64(get())
	s.RCDCAS = int64(get())
	s.RCDestroys = int64(get())
	s.RCZombiePushes = int64(get())
	s.AllocGlobalFree = int64(get())
	s.Shards = int64(get())
	for j := 0; j < MaxShards; j++ {
		s.ShardAllocs[j] = int64(get())
	}
	s.Zombies = int64(get())
	s.ReclaimRetired = int64(get())
	s.ReclaimFreed = int64(get())
	s.ReclaimPending = int64(get())
	s.ReclaimEpoch = get()
	s.DegRetries = int64(get())
	s.DegRecoveries = int64(get())
	s.DegExhaustions = int64(get())
	s.DegZombiesDrained = int64(get())
	s.FaultInjected = get()
	s.ObsRecorded = get()
	s.LatLoadP50 = int64(get())
	s.LatLoadP99 = int64(get())
	s.LatStoreP50 = int64(get())
	s.LatStoreP99 = int64(get())
	s.RetryP99 = int64(get())
	for j := 0; j < TopK; j++ {
		w := get()
		s.Hot[j].Addr = uint32(w)
		s.Hot[j].RoleID = uint8(w >> 32)
		s.Hot[j].Hot = int64(get())
		s.Hot[j].Failures = int64(get())
	}
}

// store publishes s into the slot: invalidate, write payload, publish. buf is
// caller-owned scratch (the sampler's, so the capture path allocates nothing).
func (sl *slot) store(s *Sample, buf *[payloadWords]uint64) {
	s.encode(buf)
	sl.w0.Store(0)
	for i := range buf {
		sl.words[i].Store(buf[i])
	}
	sl.w0.Store(s.Seq)
}

// load returns the slot's sample, or ok=false if the slot is empty or was
// being rewritten while we read it.
func (sl *slot) load() (Sample, bool) {
	seq := sl.w0.Load()
	if seq == 0 {
		return Sample{}, false
	}
	var buf [payloadWords]uint64
	for i := range buf {
		buf[i] = sl.words[i].Load()
	}
	if sl.w0.Load() != seq {
		return Sample{}, false
	}
	var s Sample
	s.decode(&buf)
	s.Seq = seq
	return s, true
}

// deltas turns the cumulative counter fields of cur into deltas against
// prev, leaving gauges and quantiles untouched. Counters are monotonic, but
// a racy striped read can momentarily run backwards; negative deltas clamp
// to zero so the series never shows phantom reversals.
func (cur *Sample) deltas(prev *Sample) {
	d := func(c, p int64) int64 {
		if c < p {
			return 0
		}
		return c - p
	}
	du := func(c, p uint64) uint64 {
		if c < p {
			return 0
		}
		return c - p
	}
	cur.HeapAllocs = d(cur.HeapAllocs, prev.HeapAllocs)
	cur.HeapFrees = d(cur.HeapFrees, prev.HeapFrees)
	cur.HeapRecycles = d(cur.HeapRecycles, prev.HeapRecycles)
	cur.RCLoads = d(cur.RCLoads, prev.RCLoads)
	cur.RCLoadRetries = d(cur.RCLoadRetries, prev.RCLoadRetries)
	cur.RCStores = d(cur.RCStores, prev.RCStores)
	cur.RCCopies = d(cur.RCCopies, prev.RCCopies)
	cur.RCCAS = d(cur.RCCAS, prev.RCCAS)
	cur.RCDCAS = d(cur.RCDCAS, prev.RCDCAS)
	cur.RCDestroys = d(cur.RCDestroys, prev.RCDestroys)
	cur.RCZombiePushes = d(cur.RCZombiePushes, prev.RCZombiePushes)
	for i := range cur.ShardAllocs {
		cur.ShardAllocs[i] = d(cur.ShardAllocs[i], prev.ShardAllocs[i])
	}
	cur.ReclaimRetired = d(cur.ReclaimRetired, prev.ReclaimRetired)
	cur.ReclaimFreed = d(cur.ReclaimFreed, prev.ReclaimFreed)
	cur.DegRetries = d(cur.DegRetries, prev.DegRetries)
	cur.DegRecoveries = d(cur.DegRecoveries, prev.DegRecoveries)
	cur.DegExhaustions = d(cur.DegExhaustions, prev.DegExhaustions)
	cur.DegZombiesDrained = d(cur.DegZombiesDrained, prev.DegZombiesDrained)
	cur.FaultInjected = du(cur.FaultInjected, prev.FaultInjected)
	cur.ObsRecorded = du(cur.ObsRecorded, prev.ObsRecorded)
}

// Ops is the sample's total LFRC operation delta — the throughput series the
// dashboard's headline panel plots.
func (s Sample) Ops() int64 {
	return s.RCLoads + s.RCStores + s.RCCopies + s.RCCAS + s.RCDCAS + s.RCDestroys
}

// Rate is the sample's LFRC operation rate in ops/sec (0 when the interval
// duration is unknown, i.e. the first capture).
func (s Sample) Rate() float64 {
	if s.DurNS <= 0 {
		return 0
	}
	return float64(s.Ops()) / (float64(s.DurNS) / 1e9)
}

// DefaultInterval is the sampling cadence when WithInterval is not given.
const DefaultInterval = 100 * time.Millisecond

// DefaultSlots is the default ring capacity: ~51s of history at the default
// interval.
const DefaultSlots = 512

// Option configures a Sampler.
type Option func(*Sampler)

// WithInterval sets the capture cadence. Non-positive selects
// DefaultInterval.
func WithInterval(d time.Duration) Option {
	return func(s *Sampler) {
		if d > 0 {
			s.interval = d
		}
	}
}

// WithSlots sets the ring capacity, rounded up to a power of two (minimum
// 8). The ring retains the newest Slots samples; wraparound drops oldest.
// Non-positive keeps the default (so option plumbing can pass a zero value
// through without shrinking the ring to the minimum).
func WithSlots(n int) Option {
	return func(s *Sampler) {
		if n <= 0 {
			return
		}
		size := 8
		for size < n {
			size <<= 1
		}
		s.ring = make([]slot, size)
		s.mask = uint64(size - 1)
	}
}

// WithRoleNames installs the renderer for HotCell role ids (the capture path
// stores only the id; Snapshot fills the name). A nil namer leaves roles
// numeric.
func WithRoleNames(f func(uint8) string) Option {
	return func(s *Sampler) { s.roleName = f }
}

// WithOnSample installs a post-publication hook: after each capture is
// delta-converted and published into the ring, fn is called with the
// published sample (delta form, Seq set). It runs on the capture path under
// the writer lock, so it inherits the capture contract: it must not block,
// allocate on its quiet path, or call back into the Sampler. The health
// watchdog rides this hook so it evaluates exactly once per interval with no
// cadence of its own.
func WithOnSample(fn func(*Sample)) Option {
	return func(s *Sampler) { s.onSample = fn }
}

// Sampler owns the ring and the capture cadence. Create with New, then
// Start/Stop the background goroutine (or drive it manually with CaptureNow
// in tests and benchmarks). All read methods are safe for concurrent use
// with an active sampler.
type Sampler struct {
	capture  func(*Sample)
	roleName func(uint8) string
	onSample func(*Sample)
	interval time.Duration

	ring []slot
	mask uint64
	pos  atomic.Uint64 // captures taken; next slot index

	// mu serializes writers (the background goroutine and manual
	// CaptureNow calls): the delta state below is single-writer by
	// construction. Readers never take it.
	// All capture scratch state is reused per capture so the path stays
	// allocation-free (the buffers escape through the indirect capture
	// call; locals would heap-allocate). bufs holds the two cumulative
	// captures — current and previous — addressed through curIdx and
	// swapped by flipping the index, so becoming "previous" costs nothing;
	// delta is the delta-converted output the ring slot is encoded from.
	mu      sync.Mutex
	bufs    [2]Sample
	curIdx  int
	prevSet bool
	delta   Sample
	scratch [payloadWords]uint64

	stopOnce sync.Once
	stopc    chan struct{}
	donec    chan struct{}
	running  atomic.Bool
}

// New creates a Sampler around a capture callback. The callback must fill
// the Sample with cumulative counter values and instantaneous gauges; it must
// not allocate, block, or write to anything the algorithms under observation
// read.
func New(capture func(*Sample), opts ...Option) *Sampler {
	s := &Sampler{
		capture:  capture,
		interval: DefaultInterval,
		stopc:    make(chan struct{}),
		donec:    make(chan struct{}),
	}
	WithSlots(DefaultSlots)(s)
	for _, o := range opts {
		o(s)
	}
	return s
}

// Interval reports the configured capture cadence.
func (s *Sampler) Interval() time.Duration {
	if s == nil {
		return 0
	}
	return s.interval
}

// Slots reports the ring capacity.
func (s *Sampler) Slots() int {
	if s == nil {
		return 0
	}
	return len(s.ring)
}

// Captures reports how many samples have been captured since creation (the
// ring retains only the newest Slots of them).
func (s *Sampler) Captures() uint64 {
	if s == nil {
		return 0
	}
	return s.pos.Load()
}

// Start launches the background capture goroutine. Starting an already
// started (or stopped) sampler is a no-op.
func (s *Sampler) Start() {
	if s == nil || !s.running.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer close(s.donec)
		t := time.NewTicker(s.interval)
		defer t.Stop()
		for {
			select {
			case <-s.stopc:
				return
			case <-t.C:
				s.CaptureNow()
			}
		}
	}()
}

// Stop halts the background goroutine and waits for it to exit. Safe to call
// multiple times and on a never-started sampler; the ring stays readable.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.stopOnce.Do(func() { close(s.stopc) })
	if s.running.Load() {
		<-s.donec
	}
}

// CaptureNow takes one sample immediately: fills a cumulative Sample through
// the capture callback, converts counters to deltas against the previous
// capture, and publishes it into the ring. It is the body of every background
// tick and the manual-drive entry point for tests and benchmarks; concurrent
// calls serialize on an internal mutex (readers are unaffected).
func (s *Sampler) CaptureNow() {
	if s == nil {
		return
	}
	s.mu.Lock()
	cur, prev := &s.bufs[s.curIdx], &s.bufs[1-s.curIdx]
	*cur = Sample{}
	cur.TS = time.Now().UnixNano()
	s.capture(cur)
	out := &s.delta
	*out = *cur // cur stays the cumulative view and becomes the delta base
	if s.prevSet {
		out.DurNS = cur.TS - prev.TS
		out.deltas(prev)
	}
	s.curIdx = 1 - s.curIdx
	s.prevSet = true
	out.Seq = s.pos.Add(1)
	s.ring[(out.Seq-1)&s.mask].store(out, &s.scratch)
	if s.onSample != nil {
		s.onSample(out)
	}
	s.mu.Unlock()
}

// Snapshot returns the retained samples in capture order (oldest first).
// Slots being rewritten during the scan are skipped whole (seqlock), never
// returned torn. Cold path; allocates. Nil-safe.
func (s *Sampler) Snapshot() []Sample {
	if s == nil {
		return nil
	}
	out := make([]Sample, 0, len(s.ring))
	for i := range s.ring {
		if sm, ok := s.ring[i].load(); ok {
			if s.roleName != nil {
				for j := range sm.Hot {
					if sm.Hot[j].Addr != 0 {
						sm.Hot[j].Role = s.roleName(sm.Hot[j].RoleID)
					}
				}
			}
			out = append(out, sm)
		}
	}
	sortSamples(out)
	return out
}

// sortSamples orders by Seq ascending (insertion sort: the ring is nearly
// sorted already — at most one rotation point).
func sortSamples(ss []Sample) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j].Seq < ss[j-1].Seq; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// Stats is the sampler's own accounting (the lfrc_timeline_* meta-metrics).
type Stats struct {
	// IntervalNS is the capture cadence; Slots the ring capacity.
	IntervalNS int64 `json:"interval_ns"`
	Slots      int   `json:"slots"`

	// Captures counts samples ever taken; Retained is how many the ring
	// currently holds; Dropped is how many wraparound has discarded.
	Captures uint64 `json:"captures"`
	Retained int    `json:"retained"`
	Dropped  uint64 `json:"dropped"`
}

// Stats snapshots the sampler's accounting. Nil-safe.
func (s *Sampler) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	n := s.pos.Load()
	st := Stats{
		IntervalNS: int64(s.interval),
		Slots:      len(s.ring),
		Captures:   n,
	}
	if n > uint64(len(s.ring)) {
		st.Retained = len(s.ring)
		st.Dropped = n - uint64(len(s.ring))
	} else {
		st.Retained = int(n)
	}
	return st
}
