package reclaim

import (
	"sync"
	"testing"

	"lfrc/internal/fault"
	"lfrc/internal/mem"
)

// fakeEnv is a toy object graph implementing Env: objects have children with
// toy reference counts, a link word, and a freed flag. It is mutex-protected
// so concurrent backend paths can run under -race.
type fakeEnv struct {
	mu        sync.Mutex
	rc        map[mem.Ref]int
	children  map[mem.Ref][]mem.Ref
	links     map[mem.Ref]uint64
	freed     map[mem.Ref]bool
	freeOrder []mem.Ref
	doubles   int
}

func newFakeEnv() *fakeEnv {
	return &fakeEnv{
		rc:       make(map[mem.Ref]int),
		children: make(map[mem.Ref][]mem.Ref),
		links:    make(map[mem.Ref]uint64),
		freed:    make(map[mem.Ref]bool),
	}
}

// add registers an object with the given reference count and children.
func (e *fakeEnv) add(p mem.Ref, rc int, children ...mem.Ref) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rc[p] = rc
	e.children[p] = children
}

func (e *fakeEnv) ReleaseChildren(p mem.Ref, dst []mem.Ref) []mem.Ref {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, c := range e.children[p] {
		e.rc[c]--
		if e.rc[c] == 0 {
			dst = append(dst, c)
		}
	}
	// Mirror the real Env: releasing also nulls the fields, so a second
	// call on the same object releases nothing.
	e.children[p] = nil
	return dst
}

func (e *fakeEnv) FreeObject(p mem.Ref) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.freed[p] {
		e.doubles++
		return
	}
	e.freed[p] = true
	e.freeOrder = append(e.freeOrder, p)
}

func (e *fakeEnv) LinkLoad(p mem.Ref) uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.links[p]
}

func (e *fakeEnv) LinkStore(p mem.Ref, v uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.links[p] = v
}

func (e *fakeEnv) freeCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.freeOrder)
}

func (e *fakeEnv) isFreed(p mem.Ref) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.freed[p]
}

// kinds runs a subtest per backend kind, the "green under both backends"
// harness the satellite checklist asks for.
func kinds(t *testing.T, fn func(t *testing.T, k Kind)) {
	t.Helper()
	for _, k := range []Kind{KindLFRC, KindEpoch} {
		t.Run(k.String(), func(t *testing.T) { fn(t, k) })
	}
}

// settle forces any deferred work to completion so both backends can be
// checked against the same end state.
func settle(t *testing.T, r Reclaimer) {
	t.Helper()
	r.Drain(0)
	if p := r.Pending(); p != 0 {
		t.Fatalf("%s: pending = %d after full drain, want 0", r.Name(), p)
	}
}

func TestKindString(t *testing.T) {
	if KindLFRC.String() != "lfrc" || KindEpoch.String() != "epoch" {
		t.Fatalf("kind names: %q, %q", KindLFRC, KindEpoch)
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Fatalf("unknown kind name = %q", got)
	}
}

func TestNewFallsBackToLFRC(t *testing.T) {
	r := New(Kind(0), newFakeEnv())
	if r.Name() != "lfrc" {
		t.Fatalf("unknown kind built %q, want lfrc fallback", r.Name())
	}
}

// TestRetireFreesEverything: with no budget, every retired object (and every
// descendant that hits zero) is freed by retire+settle, exactly once.
func TestRetireFreesEverything(t *testing.T) {
	kinds(t, func(t *testing.T, k Kind) {
		env := newFakeEnv()
		// 10 → 11 → 12 chain, each child held only by its parent.
		env.add(10, 0, 11)
		env.add(11, 1, 12)
		env.add(12, 1)
		r := New(k, env)
		r.Retire([]mem.Ref{10})
		settle(t, r)
		for _, p := range []mem.Ref{10, 11, 12} {
			if !env.isFreed(p) {
				t.Fatalf("ref %d not freed", p)
			}
		}
		if env.doubles != 0 {
			t.Fatalf("%d double frees", env.doubles)
		}
		s := r.Stats()
		if s.Retired != 1 || s.Freed != 3 {
			t.Fatalf("stats = %+v, want retired 1 freed 3", s)
		}
		if s.Backend != k.String() {
			t.Fatalf("stats backend = %q, want %q", s.Backend, k)
		}
	})
}

// TestSharedChildFreedOnce: a child held by two retired parents is freed
// exactly once, when the second parent releases it.
func TestSharedChildFreedOnce(t *testing.T) {
	kinds(t, func(t *testing.T, k Kind) {
		env := newFakeEnv()
		env.add(10, 0, 30)
		env.add(20, 0, 30)
		env.add(30, 2)
		r := New(k, env)
		r.Retire([]mem.Ref{10, 20})
		settle(t, r)
		if !env.isFreed(30) {
			t.Fatal("shared child not freed")
		}
		if env.doubles != 0 {
			t.Fatalf("%d double frees", env.doubles)
		}
		if got := env.freeCount(); got != 3 {
			t.Fatalf("freed %d objects, want 3", got)
		}
	})
}

// TestEpochReleasesEdgesAtRetire: the epoch backend must drop an object's
// edges when it parks, not when it frees — a parked object that kept its
// fields would hold its successor's count up for a whole grace period, and
// on chain-shaped structures (an MS-queue's dequeued head → next → next...)
// one parked node would transitively pin everything behind it in limbo.
func TestEpochReleasesEdgesAtRetire(t *testing.T) {
	env := newFakeEnv()
	env.add(10, 0, 11)
	env.add(11, 1)
	// epochEvery large enough that nothing auto-advances.
	r := New(KindEpoch, env, WithEpochEvery(1000))
	r.Retire([]mem.Ref{10})
	if env.freeCount() != 0 {
		t.Fatal("epoch backend freed inline")
	}
	env.mu.Lock()
	childRC := env.rc[11]
	env.mu.Unlock()
	if childRC != 0 {
		t.Fatalf("child rc = %d after retire, want 0 (edges released at park time)", childRC)
	}
	if p := r.Pending(); p != 2 {
		t.Fatalf("pending = %d, want 2 (parent and child both parked as husks)", p)
	}
	settle(t, r)
	if !env.isFreed(10) || !env.isFreed(11) {
		t.Fatal("husks not freed after drain")
	}
}

// TestLFRCParkedZombieKeepsChildren: the lfrc backend is the paper's §7
// incremental destroy — a budget-parked zombie's fields stay intact, and its
// children are released only when its destruction resumes at free time.
func TestLFRCParkedZombieKeepsChildren(t *testing.T) {
	env := newFakeEnv()
	env.add(10, 0)
	env.add(20, 0, 21)
	env.add(21, 1)
	r := New(KindLFRC, env, WithBudget(1))
	r.Retire([]mem.Ref{20, 10}) // frees 10 (budget), parks 20 with 21 intact
	if got := env.freeCount(); got != 1 {
		t.Fatalf("freed %d inline, want budget 1", got)
	}
	env.mu.Lock()
	childRC := env.rc[21]
	env.mu.Unlock()
	if childRC != 1 {
		t.Fatalf("parked zombie's child rc = %d, want 1 (release deferred to free time)", childRC)
	}
	settle(t, r)
	if !env.isFreed(20) || !env.isFreed(21) {
		t.Fatal("zombie or its child not freed after drain")
	}
}

// TestBudgetParksRemainder: the lfrc backend frees at most budget objects per
// Retire and parks the rest; Drain finishes the job.
func TestBudgetParksRemainder(t *testing.T) {
	env := newFakeEnv()
	for p := mem.Ref(10); p < 15; p++ {
		env.add(p, 0)
	}
	r := New(KindLFRC, env, WithBudget(2))
	r.Retire([]mem.Ref{10, 11, 12, 13, 14})
	if got := env.freeCount(); got != 2 {
		t.Fatalf("freed %d inline, want budget 2", got)
	}
	if p := r.Pending(); p != 3 {
		t.Fatalf("pending = %d, want 3", p)
	}
	if s := r.Stats(); s.Parked != 3 {
		t.Fatalf("parked = %d, want 3", s.Parked)
	}
	settle(t, r)
	if got := env.freeCount(); got != 5 {
		t.Fatalf("freed %d total, want 5", got)
	}
}

// TestDrainBounded: Drain(max) frees at most max objects and leaves the rest
// pending.
func TestDrainBounded(t *testing.T) {
	kinds(t, func(t *testing.T, k Kind) {
		env := newFakeEnv()
		var roots []mem.Ref
		for p := mem.Ref(10); p < 20; p++ {
			env.add(p, 0)
			roots = append(roots, p)
		}
		var r Reclaimer
		if k == KindLFRC {
			// Budget 0 would free eagerly; park everything with a
			// tiny budget spread across many Retire calls.
			r = New(k, env, WithBudget(1))
			r.Retire(roots)
			// 1 freed inline, 9 parked.
		} else {
			r = New(k, env, WithEpochEvery(1000))
			r.Retire(roots)
		}
		before := env.freeCount()
		n := r.Drain(4)
		if n > 4 {
			t.Fatalf("Drain(4) freed %d", n)
		}
		if got := env.freeCount() - before; got != n {
			t.Fatalf("Drain reported %d, env saw %d", n, got)
		}
		settle(t, r)
		if got := env.freeCount(); got != 10 {
			t.Fatalf("freed %d total, want 10", got)
		}
	})
}

// TestEpochGraceDiscipline: a retired object waits out the three-bin grace
// cycle — it is not freed by the advance that merely follows its epoch, only
// once its bin reaches the expired position.
func TestEpochGraceDiscipline(t *testing.T) {
	env := newFakeEnv()
	env.add(10, 0)
	r := New(KindEpoch, env, WithEpochEvery(1000)).(*epochReclaimer)
	r.Retire([]mem.Ref{10})        // parks in bin epoch%3 = bin 0
	if n := r.advance(0); n != 0 { // epoch 0→1, flushes bin 1 (empty)
		t.Fatalf("first advance freed %d, want 0", n)
	}
	if n := r.advance(0); n != 0 { // epoch 1→2, flushes bin 2 (empty)
		t.Fatalf("second advance freed %d, want 0", n)
	}
	if env.isFreed(10) {
		t.Fatal("object freed before its bin expired")
	}
	if n := r.advance(0); n != 1 { // flushes bin 0, two advances after fill
		t.Fatalf("third advance freed %d, want 1", n)
	}
	if !env.isFreed(10) {
		t.Fatal("object not freed once its bin expired")
	}
}

// TestEpochAutoAdvance: steady retirement traffic advances the epoch on its
// own every epochEvery retirements, so old bins flush without Drain.
func TestEpochAutoAdvance(t *testing.T) {
	env := newFakeEnv()
	r := New(KindEpoch, env, WithEpochEvery(4))
	for p := mem.Ref(10); p < 34; p++ {
		env.add(p, 0)
		r.Retire([]mem.Ref{p})
	}
	// 24 retirements at epochEvery=4 → 6 advances; bins filled in early
	// epochs have long expired.
	if got := env.freeCount(); got == 0 {
		t.Fatal("no frees from automatic epoch advances")
	}
	s := r.Stats()
	if s.EpochAdvances == 0 || s.Epoch == 0 {
		t.Fatalf("stats = %+v, want nonzero epoch progress", s)
	}
	settle(t, r)
	if got := env.freeCount(); got != 24 {
		t.Fatalf("freed %d total, want 24", got)
	}
}

// TestCounterPackingWraparound: the deferral stacks pack a 32-bit pop counter
// above the 32-bit object address (cnt<<32 | ref). Seed the counter at the
// top of its range and check pops still return the right objects while the
// counter wraps to zero instead of spilling into the address half.
func TestCounterPackingWraparound(t *testing.T) {
	kinds(t, func(t *testing.T, k Kind) {
		env := newFakeEnv()
		for p := mem.Ref(10); p < 13; p++ {
			env.add(p, 0)
		}
		var head *uint64head
		var pop func() mem.Ref
		switch k {
		case KindLFRC:
			z := New(k, env, WithBudget(1)).(*lfrcReclaimer)
			// budget 1: the DFS frees 10 inline, then parks 11 and 12.
			z.Retire([]mem.Ref{11, 12, 10})
			head = &uint64head{load: z.head.Load, store: z.head.Store}
			pop = z.pop
		case KindEpoch:
			z := New(k, env, WithEpochEvery(1000)).(*epochReclaimer)
			z.Retire([]mem.Ref{11, 12})
			bin := &z.bins[z.epoch.Load()%3]
			head = &uint64head{load: bin.head.Load, store: bin.head.Store}
			pop = func() mem.Ref { return z.popBin(bin) }
		}

		// Seed the pop counter one below the 32-bit boundary.
		old := head.load()
		if ref := old & 0xFFFF_FFFF; ref != 12 {
			t.Fatalf("head ref = %d, want 12 (LIFO)", ref)
		}
		head.store(uint64(0xFFFF_FFFF)<<32 | old&0xFFFF_FFFF)

		// First pop increments the counter off 0xFFFF_FFFF: it must wrap
		// to 0 in the high half, leaving the address half intact.
		if p := pop(); p != 12 {
			t.Fatalf("pop = %d, want 12", p)
		}
		after := head.load()
		if cnt := after >> 32; cnt != 0 {
			t.Fatalf("counter after wraparound pop = %#x, want 0", cnt)
		}
		if ref := after & 0xFFFF_FFFF; ref != 11 {
			t.Fatalf("head ref after pop = %d, want 11", ref)
		}

		// Next pop continues normally from the wrapped counter.
		if p := pop(); p != 11 {
			t.Fatalf("pop = %d, want 11", p)
		}
		if cnt := head.load() >> 32; cnt != 1 {
			t.Fatalf("counter = %#x, want 1", head.load()>>32)
		}
		if p := pop(); p != 0 {
			t.Fatalf("pop on empty = %d, want 0", p)
		}
	})
}

// uint64head adapts either backend's stack head for the wraparound test.
type uint64head struct {
	load  func() uint64
	store func(uint64)
}

// TestCounterPackingLargeRef: a ref with all 32 low bits in play must survive
// the packing round-trip next to a saturated counter.
func TestCounterPackingLargeRef(t *testing.T) {
	env := newFakeEnv()
	const big = mem.Ref(0xFFFF_FFF0)
	env.add(big, 0)
	z := New(KindLFRC, env, WithBudget(1)).(*lfrcReclaimer)
	env.add(1, 0)
	z.Retire([]mem.Ref{big, 1}) // frees 1 (budget), parks big
	z.head.Store(uint64(0xFFFF_FFFF)<<32 | z.head.Load()&0xFFFF_FFFF)
	if p := z.pop(); p != big {
		t.Fatalf("pop = %#x, want %#x", p, big)
	}
	if h := z.head.Load(); h != 0 {
		t.Fatalf("head = %#x after last pop, want 0 (wrapped counter, null ref)", h)
	}
}

// TestFaultInjectionRetries: armed reclaim.* points force the park/pop CAS
// loops around extra laps without corrupting the outcome.
func TestFaultInjectionRetries(t *testing.T) {
	kinds(t, func(t *testing.T, k Kind) {
		pl, err := fault.Parse("reclaim.push:nth=1;reclaim.drain:nth=1")
		if err != nil {
			t.Fatal(err)
		}
		env := newFakeEnv()
		var roots []mem.Ref
		for p := mem.Ref(10); p < 15; p++ {
			env.add(p, 0)
			roots = append(roots, p)
		}
		opts := []Option{WithFault(fault.NewInjector(pl, 1))}
		if k == KindLFRC {
			opts = append(opts, WithBudget(1))
		} else {
			opts = append(opts, WithEpochEvery(1000))
		}
		r := New(k, env, opts...)
		r.Retire(roots)
		settle(t, r)
		if got := env.freeCount(); got != 5 {
			t.Fatalf("freed %d, want 5", got)
		}
		if env.doubles != 0 {
			t.Fatalf("%d double frees", env.doubles)
		}
	})
}

// TestEpochAdvanceFaultTerminates: with reclaim.epoch firing on every
// attempt, advances never tick and Drain must give up instead of spinning.
func TestEpochAdvanceFaultTerminates(t *testing.T) {
	pl, err := fault.Parse("reclaim.epoch:p=1")
	if err != nil {
		t.Fatal(err)
	}
	env := newFakeEnv()
	env.add(10, 0)
	r := New(KindEpoch, env, WithEpochEvery(1000), WithFault(fault.NewInjector(pl, 1)))
	r.Retire([]mem.Ref{10})
	if n := r.Drain(0); n != 0 {
		t.Fatalf("Drain freed %d with advance disabled, want 0", n)
	}
	if p := r.Pending(); p != 1 {
		t.Fatalf("pending = %d, want 1 (stuck in limbo)", p)
	}
}

// TestConcurrentRetireDrain: hammer Retire and Drain from many goroutines;
// -race plus the fake env's double-free detector do the checking.
func TestConcurrentRetireDrain(t *testing.T) {
	kinds(t, func(t *testing.T, k Kind) {
		env := newFakeEnv()
		const goroutines, each = 4, 200
		for g := 0; g < goroutines; g++ {
			for i := 0; i < each; i++ {
				env.add(mem.Ref(1000+g*each+i), 0)
			}
		}
		var opts []Option
		if k == KindLFRC {
			opts = append(opts, WithBudget(1))
		} else {
			opts = append(opts, WithEpochEvery(16))
		}
		r := New(k, env, opts...)
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < each; i++ {
					r.Retire([]mem.Ref{mem.Ref(1000 + g*each + i)})
					if i%32 == 0 {
						r.Drain(8)
					}
				}
			}(g)
		}
		wg.Wait()
		settle(t, r)
		if got := env.freeCount(); got != goroutines*each {
			t.Fatalf("freed %d, want %d", got, goroutines*each)
		}
		if env.doubles != 0 {
			t.Fatalf("%d double frees", env.doubles)
		}
		s := r.Stats()
		if s.Retired != goroutines*each || s.Freed != int64(goroutines*each) {
			t.Fatalf("stats = %+v", s)
		}
	})
}
