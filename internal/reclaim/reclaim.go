// Package reclaim is the pluggable reclamation seam: the machinery that
// turns "this object's reference count reached zero" into "this object's
// memory is reusable", factored out of the LFRC core behind one interface.
//
// Meyer & Wolff (Decoupling Lock-Free Data Structures from Memory
// Reclamation) argue a lock-free structure and its reclamation scheme should
// be separable; Anderson, Blelloch & Wei (Turning Manual Concurrent Memory
// Reclamation into Automatic Reference Counting) show the two families are
// interconvertible through exactly such a seam. This package is that seam
// for the reproduction: the same structures, fault plans, and auditors run
// over multiple backends, so reclamation policies can be compared on
// identical workloads.
//
// The contract between the core and a backend:
//
//   - The core hands a Reclaimer every object whose reference count it
//     observed dropping to zero (Retire). Count-zero objects are already
//     unreachable under the LFRC invariants, so a backend is free to release
//     them immediately or to defer — the choice is policy, not safety.
//   - The backend eventually frees every retired object through the Env:
//     releasing the object's children first (which may surface more
//     count-zero objects — the backend owns those too) and then returning
//     the slot to the heap.
//   - Drain lets maintenance code finish deferred work on demand; Pending
//     reports the deferred backlog (exported as the zombie backlog).
//
// Two backends ship: the paper-faithful LFRC zombie stack (§7 incremental
// destruction — eager frees up to a per-release budget, the remainder parked
// on a Treiber stack), and an epoch-based backend that defers every free
// into per-epoch limbo bins and releases a bin only after two epoch
// advances, the grace-period discipline of EBR. Both thread their deferral
// traffic through the flight recorder (zombie push/drain events, so
// lifecycle timelines and the stuck-zombie auditor work unchanged) and the
// fault injector (the reclaim.* points).
package reclaim

import (
	"fmt"

	"lfrc/internal/fault"
	"lfrc/internal/mem"
	"lfrc/internal/obs"
)

// Kind selects a reclamation backend.
type Kind int

// Backends.
const (
	// KindLFRC is the paper's scheme: objects are destroyed eagerly when
	// their count hits zero, except that a positive incremental-destroy
	// budget caps the work per release and parks the remainder on the
	// zombie stack (paper §7).
	KindLFRC Kind = iota + 1

	// KindEpoch defers every free into per-epoch limbo bins and releases
	// a bin only once it is two epoch advances old — the grace-period
	// batching of epoch-based reclamation. Under LFRC a count-zero object
	// needs no grace period, so the discipline here buys batching (and a
	// test bench for EBR-style backlogs), not safety.
	KindEpoch
)

// String implements fmt.Stringer with the stable spec names ("lfrc",
// "epoch") the root package's ParseReclaimer accepts.
func (k Kind) String() string {
	switch k {
	case KindLFRC:
		return "lfrc"
	case KindEpoch:
		return "epoch"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Env is what a backend needs from the layer that owns the objects: how to
// release an object's children, how to return its slot to the heap, and one
// spare word per dead object to link deferral lists through. The LFRC core
// implements it; tests implement it with toy heaps.
//
// All methods must be safe for concurrent use.
type Env interface {
	// ReleaseChildren decrements the reference count of every pointer
	// field of p, clears the field, appends the children whose count
	// reached zero to dst, and returns dst. It is called exactly once
	// per object, but backends differ on when: the lfrc backend calls
	// it at free time (a budget-parked zombie keeps its fields intact
	// until its destruction resumes, the paper's §7 discipline), while
	// the epoch backend calls it at retire time so that limbo holds
	// only edge-free husks — an intact edge in limbo would keep the
	// child's count up for a whole grace period and, on chain-shaped
	// structures, transitively pin the entire chain.
	ReleaseChildren(p mem.Ref, dst []mem.Ref) []mem.Ref

	// FreeObject returns p's slot to the heap (counting frees and
	// rejected double-frees in the owner's accounting).
	FreeObject(p mem.Ref)

	// LinkLoad and LinkStore access the per-object link word (the aux
	// cell) a backend may use to build intrusive lists of dead objects.
	// The word is dedicated to reclamation from the moment an object is
	// retired until it is freed.
	LinkLoad(p mem.Ref) uint64
	LinkStore(p mem.Ref, v uint64)
}

// Reclaimer is the reclamation backend contract. Implementations must be
// safe for concurrent use: Retire is called from every releasing goroutine,
// and Drain may run concurrently with Retire (the degraded-mode drain path
// does exactly that).
type Reclaimer interface {
	// Name is the backend's stable spec name ("lfrc", "epoch").
	Name() string

	// Retire hands over objects whose reference count reached zero. The
	// backend owns them from this call on and must eventually free each
	// one (and any descendants that reach zero when it does) through the
	// Env.
	Retire(roots []mem.Ref)

	// Drain performs up to max objects' worth of deferred reclamation
	// (0 = drain everything), returning the number of objects freed.
	Drain(max int) int

	// Pending reports the number of objects handed to Retire (or parked
	// during a bounded free pass) that have not been freed yet.
	Pending() int64

	// Stats snapshots the backend's accounting.
	Stats() Stats
}

// Stats is a backend accounting snapshot. The JSON tags are part of the
// root Stats surface (Stats().Reclaim) and locked by the stats golden.
type Stats struct {
	// Backend is the backend's spec name.
	Backend string `json:"backend"`

	// Retired counts objects handed to Retire; Freed counts objects the
	// backend actually freed, including cascaded descendants discovered
	// while freeing. Parked counts pushes onto deferred storage (the
	// zombie stack or a limbo bin); Pending is the current deferred
	// backlog.
	Retired int64 `json:"retired"`
	Freed   int64 `json:"freed"`
	Parked  int64 `json:"parked"`
	Pending int64 `json:"pending"`

	// Drains counts explicit Drain calls (maintenance or degraded-mode).
	Drains int64 `json:"drains"`

	// Epoch is the backend's reclamation epoch and EpochAdvances the
	// number of advances; both stay zero on the lfrc backend.
	Epoch         uint64 `json:"epoch"`
	EpochAdvances int64  `json:"epoch_advances"`
}

// Option configures a backend.
type Option func(*config)

type config struct {
	budget     int
	epochEvery int
	obs        *obs.Recorder
	fj         *fault.Injector
}

// WithBudget caps the objects freed per release (Retire on the lfrc
// backend; an automatic epoch-advance flush on the epoch backend) at budget;
// the remainder stays deferred. 0 (the default) means unbounded.
func WithBudget(budget int) Option {
	return func(c *config) { c.budget = budget }
}

// WithEpochEvery sets how many retirements the epoch backend batches before
// it advances its epoch and flushes the expired bin. Values below 1 select
// the default (DefaultEpochEvery). The lfrc backend ignores it.
func WithEpochEvery(n int) Option {
	return func(c *config) { c.epochEvery = n }
}

// WithObserver attaches the flight recorder: deferral traffic is noted as
// zombie push/drain events, so lifecycle timelines and the stuck-zombie
// auditor see both backends identically. A nil recorder disables the tap.
func WithObserver(r *obs.Recorder) Option {
	return func(c *config) { c.obs = r }
}

// WithFault attaches the fault injector: the deferral-list CASes consult
// the reclaim.push / reclaim.drain points and the epoch backend's advance
// CAS consults reclaim.epoch. A nil injector disables injection.
func WithFault(in *fault.Injector) Option {
	return func(c *config) { c.fj = in }
}

// New builds the backend of the given kind over env. An unknown kind falls
// back to KindLFRC, the paper-faithful default.
func New(kind Kind, env Env, opts ...Option) Reclaimer {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	switch kind {
	case KindEpoch:
		return newEpoch(env, cfg)
	default:
		return newLFRC(env, cfg)
	}
}

// freeDFS frees every object on stack plus any descendant whose count drops
// to zero while doing so, depth-first. With a positive budget it frees at
// most budget objects and hands the rest to park; with budget 0 it frees
// everything. It returns the number of objects freed.
//
// This is the paper's LFRCDestroy recursion (Figure 2, lines 13–15) with
// the §7 budget cut-off. Only the lfrc backend uses it: there, a deferred
// object's children are released at free time, never at retire time. The
// epoch backend runs the same recursion inside Retire instead (edges must
// not survive into limbo — see epochReclaimer).
func freeDFS(env Env, stack []mem.Ref, budget int, park func(mem.Ref)) int {
	freed := 0
	for len(stack) > 0 {
		if budget > 0 && freed >= budget {
			for _, p := range stack {
				park(p)
			}
			return freed
		}
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		stack = env.ReleaseChildren(p, stack)
		env.FreeObject(p)
		freed++
	}
	return freed
}
