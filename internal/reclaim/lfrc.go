package reclaim

import (
	"sync/atomic"

	"lfrc/internal/fault"
	"lfrc/internal/mem"
	"lfrc/internal/obs"
)

// lfrcReclaimer is the paper-faithful backend: count-zero objects are
// destroyed eagerly, except that a positive budget caps the reclamation work
// done by any single Retire call (the paper's §7 incremental collection of
// large structures) and parks the remainder on a zombie stack.
//
// The zombie stack is a Treiber stack linked through each parked object's
// link word; the head packs a 32-bit pop counter with the 32-bit object
// address (cnt<<32 | ref) so a pop that raced with a push-pop-push of the
// same object cannot succeed on a stale next pointer (ABA).
type lfrcReclaimer struct {
	env    Env
	budget int
	obs    *obs.Recorder
	fj     *fault.Injector

	head    atomic.Uint64
	pending atomic.Int64

	retired atomic.Int64
	freed   atomic.Int64
	parked  atomic.Int64
	drains  atomic.Int64
}

func newLFRC(env Env, cfg config) *lfrcReclaimer {
	return &lfrcReclaimer{env: env, budget: cfg.budget, obs: cfg.obs, fj: cfg.fj}
}

// Name implements Reclaimer.
func (z *lfrcReclaimer) Name() string { return KindLFRC.String() }

// Retire implements Reclaimer: it frees the roots (and any descendants that
// hit zero) immediately, up to the incremental-destroy budget; excess
// objects park on the zombie stack for a later Drain.
func (z *lfrcReclaimer) Retire(roots []mem.Ref) {
	z.retired.Add(int64(len(roots)))
	n := freeDFS(z.env, roots, z.budget, z.push)
	z.freed.Add(int64(n))
}

// Drain implements Reclaimer: it reclaims up to max parked objects (and
// their newly dead descendants), returning the number actually freed. A max
// of 0 drains everything.
func (z *lfrcReclaimer) Drain(max int) int {
	z.drains.Add(1)
	processed := 0
	for max <= 0 || processed < max {
		p := z.pop()
		if p == 0 {
			break
		}
		budget := 0
		if max > 0 {
			budget = max - processed
		}
		processed += freeDFS(z.env, []mem.Ref{p}, budget, z.push)
	}
	z.freed.Add(int64(processed))
	return processed
}

// Pending implements Reclaimer.
func (z *lfrcReclaimer) Pending() int64 { return z.pending.Load() }

// Stats implements Reclaimer.
func (z *lfrcReclaimer) Stats() Stats {
	return Stats{
		Backend: z.Name(),
		Retired: z.retired.Load(),
		Freed:   z.freed.Load(),
		Parked:  z.parked.Load(),
		Pending: z.pending.Load(),
		Drains:  z.drains.Load(),
	}
}

// push parks a dead object (count already zero) on the zombie stack,
// linking through its link word.
func (z *lfrcReclaimer) push(p mem.Ref) {
	for {
		old := z.head.Load()
		z.env.LinkStore(p, old&0xFFFF_FFFF)
		if z.fj.Inject(fault.ReclaimPush) {
			continue
		}
		if z.head.CompareAndSwap(old, old&^uint64(0xFFFF_FFFF)|uint64(p)) {
			z.pending.Add(1)
			z.parked.Add(1)
			z.obs.Note(obs.KindZombiePush, uint32(p), 0)
			return
		}
	}
}

// pop removes one parked object, or returns 0 if none are parked. The pop
// counter in the head's high half increments on every successful pop, which
// is what defeats ABA on the next pointer.
func (z *lfrcReclaimer) pop() mem.Ref {
	for {
		old := z.head.Load()
		p := mem.Ref(old & 0xFFFF_FFFF)
		if p == 0 {
			return 0
		}
		next := z.env.LinkLoad(p) & 0xFFFF_FFFF
		cnt := (old >> 32) + 1
		if z.fj.Inject(fault.ReclaimDrain) {
			continue
		}
		if z.head.CompareAndSwap(old, cnt<<32|next) {
			z.pending.Add(-1)
			z.obs.Note(obs.KindZombieDrain, uint32(p), 0)
			return p
		}
	}
}
