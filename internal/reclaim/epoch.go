package reclaim

import (
	"sync/atomic"

	"lfrc/internal/fault"
	"lfrc/internal/mem"
	"lfrc/internal/obs"
)

// DefaultEpochEvery is how many retirements the epoch backend batches
// between automatic epoch advances when WithEpochEvery does not say
// otherwise. Small enough that the limbo backlog stays shallow under steady
// traffic, large enough that frees amortize into batches.
const DefaultEpochEvery = 64

// epochReclaimer is the epoch-based (EBR-style) backend: a retired object is
// never freed inline. Its reference-count edges are released immediately —
// Retire runs the destroy recursion, parking every object it visits as an
// edge-free husk — but the husk's memory is pushed onto the limbo bin of the
// current epoch, and a bin is flushed only when it is about to be reused:
// two epoch advances after the epoch that filled it, the classic three-bin
// grace discipline of epoch-based reclamation.
//
// Edges must drop at retire time, not free time: a parked object that kept
// its fields would keep its whole subgraph's counts up, and on chain-shaped
// structures one parked node transitively pins everything behind it (the F1
// pinning pathology — the Michael–Scott queue's dequeued head points at the
// next node, which points at the next...), growing the limbo backlog without
// bound. Releasing eagerly is safe because a count-zero object is already
// provably unreachable under the LFRC invariants.
//
// Under LFRC the grace period buys nothing for safety (DCAS closed the §5
// window), which is exactly what makes this backend a clean experiment: same
// structures, same invariants, different deferral policy. What it does buy
// is batching — frees happen epochEvery at a time, off the retiring
// operation's critical path — at the price of a standing limbo backlog of up
// to three bins.
//
// Each bin is a Treiber stack linked through the parked objects' link
// words, its head packing a 32-bit pop counter with the 32-bit object
// address (the same cnt<<32|ref encoding as the lfrc backend's zombie
// stack, defeating ABA on pops).
type epochReclaimer struct {
	env        Env
	budget     int
	epochEvery int
	obs        *obs.Recorder
	fj         *fault.Injector

	epoch   atomic.Uint64
	bins    [3]limboBin
	pending atomic.Int64

	// sinceAdvance counts retirements toward the next automatic advance.
	sinceAdvance atomic.Int64

	retired  atomic.Int64
	freed    atomic.Int64
	parked   atomic.Int64
	drains   atomic.Int64
	advances atomic.Int64
}

// limboBin is one epoch's deferred-free stack, padded so neighbouring bins
// on concurrent push paths don't false-share.
type limboBin struct {
	head atomic.Uint64
	_    [56]byte
}

func newEpoch(env Env, cfg config) *epochReclaimer {
	every := cfg.epochEvery
	if every < 1 {
		every = DefaultEpochEvery
	}
	return &epochReclaimer{
		env:        env,
		budget:     cfg.budget,
		epochEvery: every,
		obs:        cfg.obs,
		fj:         cfg.fj,
	}
}

// Name implements Reclaimer.
func (z *epochReclaimer) Name() string { return KindEpoch.String() }

// Retire implements Reclaimer: each root's subgraph is released depth-first
// — every object visited drops its child edges and parks as a husk in the
// current epoch's limbo bin — and every epochEvery parks the epoch advances
// and the expired bin is flushed (bounded by the incremental-destroy budget
// when one is set).
func (z *epochReclaimer) Retire(roots []mem.Ref) {
	z.retired.Add(int64(len(roots)))
	parked := 0
	var stack []mem.Ref
	for _, p := range roots {
		stack = append(stack[:0], p)
		for len(stack) > 0 {
			q := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			stack = z.env.ReleaseChildren(q, stack)
			z.park(q)
			parked++
		}
	}
	if z.sinceAdvance.Add(int64(parked)) >= int64(z.epochEvery) {
		z.sinceAdvance.Store(0)
		z.freed.Add(int64(z.advance(z.budget)))
	}
}

// Drain implements Reclaimer: it forces epoch advances, flushing expired
// bins until max objects are freed (0 = until the limbo backlog is empty).
// Each advance lets one bin's contents reach the expired position, so a
// full drain takes up to three advances per bin generation; the loop stops
// once consecutive advances stop producing frees.
func (z *epochReclaimer) Drain(max int) int {
	z.drains.Add(1)
	freed, idle := 0, 0
	for (max <= 0 || freed < max) && z.pending.Load() > 0 {
		budget := 0
		if max > 0 {
			budget = max - freed
		}
		n := z.advance(budget)
		freed += n
		if n == 0 {
			// Three empty advances cycle every bin through the
			// expired position; a fourth means the backlog is out
			// of reach (e.g. an injected advance failure).
			if idle++; idle > 3 {
				break
			}
		} else {
			idle = 0
		}
	}
	z.freed.Add(int64(freed))
	return freed
}

// Pending implements Reclaimer.
func (z *epochReclaimer) Pending() int64 { return z.pending.Load() }

// Stats implements Reclaimer.
func (z *epochReclaimer) Stats() Stats {
	return Stats{
		Backend:       z.Name(),
		Retired:       z.retired.Load(),
		Freed:         z.freed.Load(),
		Parked:        z.parked.Load(),
		Pending:       z.pending.Load(),
		Drains:        z.drains.Load(),
		Epoch:         z.epoch.Load(),
		EpochAdvances: z.advances.Load(),
	}
}

// Epoch reports the backend's current reclamation epoch.
func (z *epochReclaimer) Epoch() uint64 { return z.epoch.Load() }

// advance ticks the epoch and flushes the bin that thereby expires (the one
// the new epoch will fill next, whose contents are at least two advances
// old), freeing at most budget objects (0 = all). Losing the epoch CAS
// means another goroutine advanced concurrently; the loser does not retry —
// one tick per trigger is the intended rate — but still helps flush, so a
// budget-bounded leftover cannot outlive its bin's next turn.
func (z *epochReclaimer) advance(budget int) int {
	e := z.epoch.Load()
	if z.fj.Inject(fault.ReclaimEpoch) {
		return 0
	}
	if z.epoch.CompareAndSwap(e, e+1) {
		z.advances.Add(1)
	}
	return z.flush(&z.bins[(e+1)%3], budget)
}

// flush pops every object out of bin and frees it until the bin is empty or
// budget objects have been freed. Parked objects are edge-free husks (Retire
// released their children), so flushing is pure memory return — no cascade
// can start here. A budget-cut leftover stays in its bin and is reached
// again the next time the bin expires.
func (z *epochReclaimer) flush(bin *limboBin, budget int) int {
	freed := 0
	for budget <= 0 || freed < budget {
		p := z.popBin(bin)
		if p == 0 {
			break
		}
		z.env.FreeObject(p)
		freed++
	}
	return freed
}

// park pushes a dead object onto the current epoch's limbo bin.
func (z *epochReclaimer) park(p mem.Ref) {
	bin := &z.bins[z.epoch.Load()%3]
	for {
		old := bin.head.Load()
		z.env.LinkStore(p, old&0xFFFF_FFFF)
		if z.fj.Inject(fault.ReclaimPush) {
			continue
		}
		if bin.head.CompareAndSwap(old, old&^uint64(0xFFFF_FFFF)|uint64(p)) {
			z.pending.Add(1)
			z.parked.Add(1)
			z.obs.Note(obs.KindZombiePush, uint32(p), 0)
			return
		}
	}
}

// popBin removes one object from bin, or returns 0 if it is empty.
func (z *epochReclaimer) popBin(bin *limboBin) mem.Ref {
	for {
		old := bin.head.Load()
		p := mem.Ref(old & 0xFFFF_FFFF)
		if p == 0 {
			return 0
		}
		next := z.env.LinkLoad(p) & 0xFFFF_FFFF
		cnt := (old >> 32) + 1
		if z.fj.Inject(fault.ReclaimDrain) {
			continue
		}
		if bin.head.CompareAndSwap(old, cnt<<32|next) {
			z.pending.Add(-1)
			z.obs.Note(obs.KindZombieDrain, uint32(p), 0)
			return p
		}
	}
}
