package dcas

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"testing/quick"

	"lfrc/internal/mem"
)

// multiFactories enumerates the NCAS-capable engines.
func multiFactories() map[string]func(h *mem.Heap) MultiEngine {
	return map[string]func(h *mem.Heap) MultiEngine{
		"locking": func(h *mem.Heap) MultiEngine { return NewLocking(h) },
		"mcas":    func(h *mem.Heap) MultiEngine { return NewMCAS(h) },
	}
}

func TestNCASSemantics(t *testing.T) {
	for name, mk := range multiFactories() {
		t.Run(name, func(t *testing.T) {
			h := mem.NewHeap()
			e := mk(h)
			cells := newCells(t, h, 4)
			reset := func(vals ...uint64) {
				for i, v := range vals {
					e.Write(cells[i], v)
				}
			}

			// Three-word success.
			reset(1, 2, 3, 4)
			if !e.NCAS(cells[:3], []uint64{1, 2, 3}, []uint64{10, 20, 30}) {
				t.Fatal("3-word NCAS with matching olds failed")
			}
			for i, want := range []uint64{10, 20, 30, 4} {
				if got := e.Read(cells[i]); got != want {
					t.Errorf("cell %d = %d, want %d", i, got, want)
				}
			}

			// Four-word failure on the last comparand leaves all cells.
			reset(1, 2, 3, 4)
			if e.NCAS(cells[:4], []uint64{1, 2, 3, 9}, []uint64{0, 0, 0, 0}) {
				t.Fatal("4-word NCAS with a mismatch succeeded")
			}
			for i, want := range []uint64{1, 2, 3, 4} {
				if got := e.Read(cells[i]); got != want {
					t.Errorf("cell %d = %d after failed NCAS, want %d", i, got, want)
				}
			}

			// One-word degenerates to CAS.
			reset(5)
			if !e.NCAS(cells[:1], []uint64{5}, []uint64{6}) {
				t.Fatal("1-word NCAS failed")
			}
			if got := e.Read(cells[0]); got != 6 {
				t.Errorf("cell0 = %d, want 6", got)
			}
		})
	}
}

func TestNCASRejectsBadArguments(t *testing.T) {
	for name, mk := range multiFactories() {
		t.Run(name, func(t *testing.T) {
			h := mem.NewHeap()
			e := mk(h)
			cells := newCells(t, h, 5)

			if e.NCAS(nil, nil, nil) {
				t.Error("empty NCAS succeeded")
			}
			if e.NCAS(cells[:2], []uint64{0}, []uint64{1, 1}) {
				t.Error("mismatched slice lengths accepted")
			}
			if e.NCAS(cells[:5], make([]uint64, 5), make([]uint64, 5)) {
				t.Error("5-word NCAS accepted (max is 4)")
			}
			dup := []mem.Addr{cells[0], cells[1], cells[0]}
			if e.NCAS(dup, make([]uint64, 3), []uint64{1, 1, 2}) {
				t.Error("duplicate address accepted")
			}
			// Arguments in any order are honoured positionally.
			e.Write(cells[0], 1)
			e.Write(cells[1], 2)
			if !e.NCAS([]mem.Addr{cells[1], cells[0]}, []uint64{2, 1}, []uint64{20, 10}) {
				t.Fatal("reversed-order NCAS failed")
			}
			if e.Read(cells[0]) != 10 || e.Read(cells[1]) != 20 {
				t.Error("reversed-order NCAS applied values to wrong cells")
			}
		})
	}
}

// TestNCASEnginesAgree replays identical random NCAS scripts on both
// engines; outcomes and final states must match.
func TestNCASEnginesAgree(t *testing.T) {
	f := func(seed int64) bool {
		const nCells = 5
		run := func(mk func(h *mem.Heap) MultiEngine) ([]bool, []uint64) {
			h := mem.NewHeap()
			id := h.MustRegisterType(mem.TypeDesc{Name: "c", NumFields: nCells})
			r := h.MustAlloc(id)
			cells := make([]mem.Addr, nCells)
			for i := range cells {
				cells[i] = h.FieldAddr(r, i)
			}
			e := mk(h)
			rng := rand.New(rand.NewSource(seed))
			var outcomes []bool
			for i := 0; i < 150; i++ {
				n := rng.Intn(4) + 1
				perm := rng.Perm(nCells)[:n]
				addrs := make([]mem.Addr, n)
				olds := make([]uint64, n)
				news := make([]uint64, n)
				for j, idx := range perm {
					addrs[j] = cells[idx]
					olds[j] = uint64(rng.Intn(3))
					news[j] = uint64(rng.Intn(3))
				}
				outcomes = append(outcomes, e.NCAS(addrs, olds, news))
			}
			final := make([]uint64, nCells)
			for i, a := range cells {
				final[i] = e.Read(a)
			}
			return outcomes, final
		}
		o1, f1 := run(func(h *mem.Heap) MultiEngine { return NewLocking(h) })
		o2, f2 := run(func(h *mem.Heap) MultiEngine { return NewMCAS(h) })
		for i := range o1 {
			if o1[i] != o2[i] {
				return false
			}
		}
		for i := range f1 {
			if f1[i] != f2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestNCASConcurrentRotation has workers NCAS-rotate a 3-cell ring; every
// success preserves the multiset {0,1,2}, and the success count must equal
// the number of net rotations observed.
func TestNCASConcurrentRotation(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	for name, mk := range multiFactories() {
		t.Run(name, func(t *testing.T) {
			h := mem.NewHeap()
			e := mk(h)
			cells := newCells(t, h, 3)
			for i, v := range []uint64{0, 1, 2} {
				e.Write(cells[i], v)
			}

			const workers, perW = 6, 2000
			var wg sync.WaitGroup
			wins := make([]int64, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < perW; i++ {
						a := e.Read(cells[0])
						b := e.Read(cells[1])
						c := e.Read(cells[2])
						if e.NCAS(cells, []uint64{a, b, c}, []uint64{c, a, b}) {
							wins[w]++
						}
					}
				}(w)
			}
			wg.Wait()

			got := map[uint64]bool{}
			for _, a := range cells {
				got[e.Read(a)] = true
			}
			for v := uint64(0); v < 3; v++ {
				if !got[v] {
					t.Errorf("value %d lost from the ring (multiset broken)", v)
				}
			}
			var total int64
			for _, w := range wins {
				total += w
			}
			// Rotation count mod 3 must match the final configuration.
			rot := 0
			for r := 0; r < 3; r++ {
				if e.Read(cells[0]) == uint64((3-r)%3) {
					rot = r
				}
			}
			if int(total%3) != rot {
				t.Errorf("success count %d (mod 3 = %d) inconsistent with final rotation %d",
					total, total%3, rot)
			}
		})
	}
}
