package dcas

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"testing/quick"

	"lfrc/internal/mem"
)

func TestDescriptorRefPacking(t *testing.T) {
	f := func(rdcss bool, slot uint32, ver uint64) bool {
		s := slot & slotMask
		v := ver & verMask
		ref := packRef(rdcss, s, v)
		gotSlot, gotVer := unpackRef(ref)
		return isDescriptor(ref) &&
			isRDCSSRef(ref) == rdcss &&
			gotSlot == s &&
			gotVer == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestApplicationValuesAreNotDescriptors(t *testing.T) {
	f := func(v uint64) bool {
		return !isDescriptor(v & mem.ValueMask)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestConcurrentCounterCAS drives a shared counter with engine CAS from many
// goroutines; the total must be exact for both engines.
func TestConcurrentCounterCAS(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	for name, mk := range engineFactories() {
		t.Run(name, func(t *testing.T) {
			h := mem.NewHeap()
			e := mk(h)
			a := newCells(t, h, 1)[0]

			const workers, perW = 8, 3000
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perW; i++ {
						for {
							cur := e.Read(a)
							if e.CAS(a, cur, cur+1) {
								break
							}
						}
					}
				}()
			}
			wg.Wait()
			if got := e.Read(a); got != workers*perW {
				t.Errorf("counter = %d, want %d", got, workers*perW)
			}
		})
	}
}

// TestConcurrentTransferInvariant runs DCAS "transfers" between two cells;
// the sum is invariant under every successful DCAS, and the final state must
// account for exactly the successful operations.
func TestConcurrentTransferInvariant(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	for name, mk := range engineFactories() {
		t.Run(name, func(t *testing.T) {
			h := mem.NewHeap()
			e := mk(h)
			cells := newCells(t, h, 2)
			const total = 1 << 20
			e.Write(cells[0], total)
			e.Write(cells[1], 0)

			const workers, perW = 8, 2000
			succ := make([]int64, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < perW; i++ {
						x := e.Read(cells[0])
						y := e.Read(cells[1])
						if x == 0 {
							continue
						}
						if e.DCAS(cells[0], cells[1], x, y, x-1, y+1) {
							succ[w]++
						}
					}
				}(w)
			}
			wg.Wait()

			var wins int64
			for _, s := range succ {
				wins += s
			}
			x, y := e.Read(cells[0]), e.Read(cells[1])
			if x+y != total {
				t.Errorf("sum invariant broken: %d + %d != %d", x, y, total)
			}
			if y != uint64(wins) {
				t.Errorf("cell1 = %d, want number of successful DCAS = %d", y, wins)
			}
		})
	}
}

// TestConcurrentRandomPairsDCAS has workers DCAS-increment random pairs from
// a pool of cells. Each success adds exactly 1 to each of two cells, so the
// grand total must equal 2 × successes; additionally no read may ever
// observe a descriptor-tagged value.
func TestConcurrentRandomPairsDCAS(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	for name, mk := range engineFactories() {
		t.Run(name, func(t *testing.T) {
			h := mem.NewHeap()
			e := mk(h)
			cells := newCells(t, h, 8)

			const workers, perW = 8, 3000
			succ := make([]int64, workers)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w) + 1))
					for i := 0; i < perW; i++ {
						i0 := rng.Intn(len(cells))
						i1 := rng.Intn(len(cells))
						if i0 == i1 {
							i1 = (i1 + 1) % len(cells)
						}
						a0, a1 := cells[i0], cells[i1]
						x := e.Read(a0)
						y := e.Read(a1)
						if !isValue(x) || !isValue(y) {
							t.Errorf("Read returned a descriptor: %#x %#x", x, y)
							return
						}
						if e.DCAS(a0, a1, x, y, x+1, y+1) {
							succ[w]++
						}
					}
				}(w)
			}
			wg.Wait()

			var wins int64
			for _, s := range succ {
				wins += s
			}
			var sum uint64
			for _, a := range cells {
				v := e.Read(a)
				if !isValue(v) {
					t.Fatalf("descriptor left in cell: %#x", v)
				}
				sum += v
			}
			if sum != 2*uint64(wins) {
				t.Errorf("sum = %d, want 2×successes = %d", sum, 2*wins)
			}
		})
	}
}

func isValue(v uint64) bool { return !isDescriptor(v) }

// TestMCASSmallPool forces heavy descriptor-slot contention: with a pool of
// just two slots and eight workers, operations must still complete and stay
// exact.
func TestMCASSmallPool(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	h := mem.NewHeap()
	e := NewMCAS(h, WithPoolSize(2))
	cells := newCells(t, h, 2)

	const workers, perW = 8, 500
	succ := make([]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				for {
					x := e.Read(cells[0])
					y := e.Read(cells[1])
					if e.DCAS(cells[0], cells[1], x, y, x+1, y+1) {
						succ[w]++
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()

	want := uint64(workers * perW)
	if x := e.Read(cells[0]); x != want {
		t.Errorf("cell0 = %d, want %d", x, want)
	}
	if y := e.Read(cells[1]); y != want {
		t.Errorf("cell1 = %d, want %d", y, want)
	}
}

// TestMCASMixedSingleAndDouble mixes single CAS, DCAS and writes on
// overlapping cells and then checks a conservation invariant: cell0 is only
// ever moved in lockstep with cell1 by DCAS, while CAS increments cell2.
func TestMCASMixedSingleAndDouble(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	h := mem.NewHeap()
	e := NewMCAS(h)
	cells := newCells(t, h, 3)

	const workers, perW = 6, 2000
	var wg sync.WaitGroup
	dcasWins := make([]int64, workers)
	casWins := make([]int64, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				if i%2 == 0 {
					x := e.Read(cells[0])
					y := e.Read(cells[1])
					if e.DCAS(cells[0], cells[1], x, y, x+1, y+1) {
						dcasWins[w]++
					}
				} else {
					z := e.Read(cells[2])
					if e.CAS(cells[2], z, z+1) {
						casWins[w]++
					}
				}
			}
		}(w)
	}
	wg.Wait()

	var dw, cw int64
	for w := 0; w < workers; w++ {
		dw += dcasWins[w]
		cw += casWins[w]
	}
	if x, y := e.Read(cells[0]), e.Read(cells[1]); x != y || x != uint64(dw) {
		t.Errorf("cells0/1 = %d/%d, want both %d", x, y, dw)
	}
	if z := e.Read(cells[2]); z != uint64(cw) {
		t.Errorf("cell2 = %d, want %d", z, cw)
	}
}

// TestEnginesAgreeSequentially replays an identical random operation script
// against both engines and requires identical results and final state: the
// lock-free construction must be observationally equivalent to the modeled
// hardware.
func TestEnginesAgreeSequentially(t *testing.T) {
	f := func(seed int64) bool {
		const nCells = 6
		run := func(e Engine, h *mem.Heap, cells []mem.Addr) ([]bool, []uint64) {
			rng := rand.New(rand.NewSource(seed))
			var outcomes []bool
			for i := 0; i < 200; i++ {
				op := rng.Intn(3)
				a0 := cells[rng.Intn(nCells)]
				a1 := cells[rng.Intn(nCells)]
				v0 := uint64(rng.Intn(4))
				v1 := uint64(rng.Intn(4))
				n0 := uint64(rng.Intn(4))
				n1 := uint64(rng.Intn(4))
				switch op {
				case 0:
					e.Write(a0, n0)
				case 1:
					outcomes = append(outcomes, e.CAS(a0, v0, n0))
				case 2:
					outcomes = append(outcomes, e.DCAS(a0, a1, v0, v1, n0, n1))
				}
			}
			final := make([]uint64, nCells)
			for i, a := range cells {
				final[i] = e.Read(a)
			}
			return outcomes, final
		}

		h1 := mem.NewHeap()
		id1 := h1.MustRegisterType(mem.TypeDesc{Name: "c", NumFields: nCells})
		r1 := h1.MustAlloc(id1)
		cells1 := make([]mem.Addr, nCells)
		for i := range cells1 {
			cells1[i] = h1.FieldAddr(r1, i)
		}
		h2 := mem.NewHeap()
		id2 := h2.MustRegisterType(mem.TypeDesc{Name: "c", NumFields: nCells})
		r2 := h2.MustAlloc(id2)
		cells2 := make([]mem.Addr, nCells)
		for i := range cells2 {
			cells2[i] = h2.FieldAddr(r2, i)
		}

		o1, f1 := run(NewLocking(h1), h1, cells1)
		o2, f2 := run(NewMCAS(h2), h2, cells2)
		if len(o1) != len(o2) {
			return false
		}
		for i := range o1 {
			if o1[i] != o2[i] {
				return false
			}
		}
		for i := range f1 {
			if f1[i] != f2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
