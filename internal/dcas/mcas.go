package dcas

import (
	"runtime"
	"sync/atomic"

	"lfrc/internal/mem"
)

// MCASEngine is a lock-free DCAS built from single-word CAS, following the
// RDCSS and MCAS constructions of Harris, Fraser & Pratt, "A Practical
// Multi-Word Compare-and-Swap Operation" (DISC 2002), specialized to two
// locations.
//
// Descriptors do not live in the heap; they live in two fixed pools of
// slots, and a descriptor *reference* — the value temporarily stored in a
// heap cell — packs a tag, a slot index, and a 42-bit version:
//
//	bit 63        descriptor tag (never set by application values)
//	bit 62        1 = RDCSS descriptor, 0 = MCAS descriptor
//	bits 20..61   slot version at publication time
//	bits  0..19   slot index
//
// A slot's version is bumped when the slot is acquired (becoming odd) and
// again when it is released (becoming even). Helpers snapshot a descriptor's
// fields, re-validate the version, and perform only CAS operations whose
// expected value embeds the version — so a helper that raced with completion
// and slot reuse can never corrupt anything: its CASes simply fail.
//
// The MCAS status word additionally packs the version
// (version<<2 | state), so a stale helper cannot decide a recycled
// descriptor's status either.
type MCASEngine struct {
	h CellStore

	mcasPool  descPool
	rdcssPool descPool
	mcas      []mcasDesc
	rdcss     []rdcssDesc
}

var _ Engine = (*MCASEngine)(nil)

const (
	descBit  uint64 = 1 << 63
	rdcssBit uint64 = 1 << 62

	slotBits = 20
	slotMask = 1<<slotBits - 1
	verBits  = 42
	verMask  = 1<<verBits - 1

	// MCAS status states (low two bits of the packed status word).
	stUndecided = 0
	stSucceeded = 1
	stFailed    = 2
)

// isDescriptor reports whether a cell value is a descriptor reference.
func isDescriptor(v uint64) bool { return v&descBit != 0 }

// isRDCSSRef reports whether a descriptor reference names an RDCSS slot.
func isRDCSSRef(v uint64) bool { return v&rdcssBit != 0 }

// packRef builds a descriptor reference.
func packRef(rdcss bool, slot uint32, ver uint64) uint64 {
	r := descBit | uint64(slot)&slotMask | (ver&verMask)<<slotBits
	if rdcss {
		r |= rdcssBit
	}
	return r
}

// unpackRef splits a descriptor reference into slot index and version.
func unpackRef(ref uint64) (slot uint32, ver uint64) {
	return uint32(ref & slotMask), (ref >> slotBits) & verMask
}

// maxNCAS is the largest location count one MCAS operation may cover.
const maxNCAS = 4

// mcasDesc is one MCAS operation: up to maxNCAS (addr, old, new) triples
// plus a version-packed status word.
type mcasDesc struct {
	ver    atomic.Uint64 // odd while active
	status atomic.Uint64 // ver<<2 | state
	n      atomic.Uint32
	addrs  [maxNCAS]atomic.Uint32
	olds   [maxNCAS]atomic.Uint64
	news   [maxNCAS]atomic.Uint64
}

// rdcssDesc is one conditional install: write mref into a2 if *a2 == o2 and
// the MCAS op named by mref is still undecided.
type rdcssDesc struct {
	ver  atomic.Uint64 // odd while active
	mref atomic.Uint64 // the MCAS descriptor reference being installed
	a2   atomic.Uint32
	o2   atomic.Uint64
}

// Option configures an MCASEngine.
type Option func(*config)

type config struct {
	poolSize int
}

// WithPoolSize sets the number of descriptor slots in each pool. A slot is
// held only for the duration of one DCAS (plus helping), so the pool bounds
// the number of concurrent operations, not the total; the default of 4096 is
// far beyond any realistic goroutine count. An exhausted pool makes the
// *requester* wait for a slot — a documented deviation from pure
// lock-freedom, configurable away by sizing the pool to the thread count.
func WithPoolSize(n int) Option {
	return func(c *config) { c.poolSize = n }
}

// NewMCAS returns a lock-free MCAS engine over h.
func NewMCAS(h CellStore, opts ...Option) *MCASEngine {
	cfg := config{poolSize: 4096}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.poolSize < 2 {
		cfg.poolSize = 2
	}
	if cfg.poolSize > slotMask {
		cfg.poolSize = slotMask
	}
	e := &MCASEngine{
		h:     h,
		mcas:  make([]mcasDesc, cfg.poolSize),
		rdcss: make([]rdcssDesc, cfg.poolSize),
	}
	e.mcasPool.init(cfg.poolSize)
	e.rdcssPool.init(cfg.poolSize)
	return e
}

// Name implements Engine.
func (e *MCASEngine) Name() string { return "mcas" }

// Read implements Engine.
func (e *MCASEngine) Read(a mem.Addr) uint64 {
	for {
		v := e.h.Load(a)
		if !isDescriptor(v) {
			return v
		}
		e.help(v)
	}
}

// Write implements Engine.
func (e *MCASEngine) Write(a mem.Addr, v uint64) {
	for {
		cur := e.h.Load(a)
		if isDescriptor(cur) {
			e.help(cur)
			continue
		}
		if e.h.CAS(a, cur, v) {
			return
		}
	}
}

// CAS implements Engine.
func (e *MCASEngine) CAS(a mem.Addr, old, new uint64) bool {
	for {
		if e.h.CAS(a, old, new) {
			return true
		}
		cur := e.h.Load(a)
		if isDescriptor(cur) {
			e.help(cur)
			continue
		}
		if cur != old {
			return false
		}
		// Transient race between our CAS and Load; try again.
	}
}

// DCAS implements Engine.
func (e *MCASEngine) DCAS(a0, a1 mem.Addr, old0, old1, new0, new1 uint64) bool {
	if a0 == a1 {
		if old0 != old1 || new0 != new1 {
			return false
		}
		return e.CAS(a0, old0, new0)
	}
	// Process addresses in increasing order so concurrent MCASes that
	// overlap acquire locations in a consistent order.
	if a0 > a1 {
		a0, a1 = a1, a0
		old0, old1 = old1, old0
		new0, new1 = new1, new0
	}
	return e.runMCAS([]mem.Addr{a0, a1}, []uint64{old0, old1}, []uint64{new0, new1})
}

// NCAS atomically compares-and-swaps up to maxNCAS distinct locations — the
// full generality of the Harris–Fraser–Pratt construction the DCAS above is
// a special case of. It returns false without side effects if the slices
// disagree in length, are empty, exceed maxNCAS locations, or repeat an
// address.
func (e *MCASEngine) NCAS(addrs []mem.Addr, olds, news []uint64) bool {
	n := len(addrs)
	if n == 0 || n > maxNCAS || len(olds) != n || len(news) != n {
		return false
	}
	if n == 1 {
		return e.CAS(addrs[0], olds[0], news[0])
	}
	// Sort the triples by address (n is tiny; insertion sort) and reject
	// duplicates.
	as := append([]mem.Addr(nil), addrs...)
	os := append([]uint64(nil), olds...)
	ns := append([]uint64(nil), news...)
	for i := 1; i < n; i++ {
		for j := i; j > 0 && as[j] < as[j-1]; j-- {
			as[j], as[j-1] = as[j-1], as[j]
			os[j], os[j-1] = os[j-1], os[j]
			ns[j], ns[j-1] = ns[j-1], ns[j]
		}
	}
	for i := 1; i < n; i++ {
		if as[i] == as[i-1] {
			return false
		}
	}
	return e.runMCAS(as, os, ns)
}

// runMCAS publishes a descriptor for the (sorted, distinct) triples and
// drives it to completion.
func (e *MCASEngine) runMCAS(addrs []mem.Addr, olds, news []uint64) bool {
	n := len(addrs)
	slot := e.mcasPool.acquire()
	d := &e.mcas[slot]
	ver := d.ver.Load() + 1 // becomes odd
	d.n.Store(uint32(n))
	for i := 0; i < n; i++ {
		d.addrs[i].Store(uint32(addrs[i]))
		d.olds[i].Store(olds[i])
		d.news[i].Store(news[i])
	}
	d.status.Store(ver<<2 | stUndecided)
	d.ver.Store(ver) // publish

	ref := packRef(false, slot, ver)
	ok := e.helpMCAS(ref)

	d.ver.Store(ver + 1) // retire (even)
	e.mcasPool.release(slot)
	return ok
}

// help advances whatever operation published the descriptor reference v.
func (e *MCASEngine) help(v uint64) {
	if isRDCSSRef(v) {
		e.completeRDCSS(v)
	} else {
		e.helpMCAS(v)
	}
}

// statusOf reads the packed status of the MCAS op named by mref. ok is
// false if the descriptor has been retired (the op finished long ago).
func (e *MCASEngine) statusOf(mref uint64) (state uint64, ok bool) {
	slot, ver := unpackRef(mref)
	st := e.mcas[slot].status.Load()
	if (st>>2)&verMask != ver {
		return 0, false
	}
	return st & 3, true
}

// helpMCAS drives the MCAS op named by ref to completion (phases 1 and 2 of
// Harris et al.) and reports whether it succeeded. It is idempotent and may
// be called by any number of helpers concurrently.
func (e *MCASEngine) helpMCAS(ref uint64) bool {
	slot, ver := unpackRef(ref)
	d := &e.mcas[slot]

	// Snapshot fields, then validate the version: if the op has been
	// retired the snapshot is garbage, but then our caller's cell no
	// longer holds ref either, so there is nothing to do.
	n := int(d.n.Load())
	var addrs [maxNCAS]mem.Addr
	var olds, news [maxNCAS]uint64
	if n > maxNCAS {
		n = maxNCAS
	}
	for i := 0; i < n; i++ {
		addrs[i] = mem.Addr(d.addrs[i].Load())
		olds[i] = d.olds[i].Load()
		news[i] = d.news[i].Load()
	}
	if d.ver.Load() != ver {
		st, ok := e.statusOf(ref)
		return ok && st == stSucceeded
	}

	// Phase 1: install ref into every location, gated on the op still
	// being undecided.
	desired := uint64(stSucceeded)
phase1:
	for i := 0; i < n; i++ {
		for {
			st, ok := e.statusOf(ref)
			if !ok {
				// Retired while we were helping; outcome
				// unknowable here, but the owner knows it.
				return false
			}
			if st != stUndecided {
				desired = st
				break phase1
			}
			v := e.rdcssInstall(ref, addrs[i], olds[i])
			if v == ref {
				break // installed (by us or a helper)
			}
			if isDescriptor(v) && !isRDCSSRef(v) {
				// Another MCAS holds the cell; help it out of
				// the way first.
				e.helpMCAS(v)
				continue
			}
			if v != olds[i] {
				desired = stFailed
				break phase1
			}
			// v == olds[i]: the status was decided while our
			// install was in flight and the cell was restored;
			// loop to re-check the status.
		}
	}

	// Decide. The CAS embeds the version, so deciding a recycled slot is
	// impossible.
	d.status.CompareAndSwap(ver<<2|stUndecided, ver<<2|desired)
	st, ok := e.statusOf(ref)
	if !ok {
		return false
	}

	// Phase 2: release the cells, writing news on success and restoring
	// olds on failure.
	for i := 0; i < n; i++ {
		v := olds[i]
		if st == stSucceeded {
			v = news[i]
		}
		e.h.CAS(addrs[i], ref, v)
	}
	return st == stSucceeded
}

// rdcssInstall tries to place mref into cell a2 on condition that *a2 == o2
// and the MCAS op is still undecided (RDCSS with the op's status word as the
// control location). It returns mref if the descriptor was installed, or the
// conflicting cell value otherwise; a return of o2 means the status was
// decided concurrently and the caller must re-check it.
func (e *MCASEngine) rdcssInstall(mref uint64, a2 mem.Addr, o2 uint64) uint64 {
	slot := e.rdcssPool.acquire()
	d := &e.rdcss[slot]
	ver := d.ver.Load() + 1
	d.mref.Store(mref)
	d.a2.Store(uint32(a2))
	d.o2.Store(o2)
	d.ver.Store(ver) // publish

	ref := packRef(true, slot, ver)
	result := o2
	for {
		if e.h.CAS(a2, o2, ref) {
			// Installed; resolve against the op status.
			if st, ok := e.statusOf(mref); ok && st == stUndecided {
				e.h.CAS(a2, ref, mref)
				result = mref
			} else {
				e.h.CAS(a2, ref, o2)
				result = o2
			}
			break
		}
		v := e.h.Load(a2)
		if v == o2 {
			continue // transient race; retry the install
		}
		if isDescriptor(v) && isRDCSSRef(v) {
			e.completeRDCSS(v)
			continue
		}
		result = v // plain mismatch or an MCAS descriptor
		break
	}

	d.ver.Store(ver + 1) // retire
	e.rdcssPool.release(slot)
	return result
}

// completeRDCSS finishes an RDCSS whose descriptor reference was found in a
// cell: it replaces the descriptor with the MCAS reference if the op is
// still undecided, and restores the expected old value otherwise.
func (e *MCASEngine) completeRDCSS(ref uint64) {
	slot, ver := unpackRef(ref)
	d := &e.rdcss[slot]
	mref := d.mref.Load()
	a2 := mem.Addr(d.a2.Load())
	o2 := d.o2.Load()
	if d.ver.Load() != ver {
		return // retired; the cell has been cleaned already
	}
	if st, ok := e.statusOf(mref); ok && st == stUndecided {
		e.h.CAS(a2, ref, mref)
	} else {
		e.h.CAS(a2, ref, o2)
	}
}

// descPool is a lock-free stack of free descriptor slots. The head packs a
// 32-bit pop counter with a 32-bit (index+1); links live in next.
type descPool struct {
	head atomic.Uint64
	next []atomic.Uint32
}

func (p *descPool) init(n int) {
	p.next = make([]atomic.Uint32, n)
	for i := n - 1; i >= 0; i-- {
		p.releaseSlot(uint32(i))
	}
}

func (p *descPool) acquire() uint32 {
	for spins := 0; ; spins++ {
		old := p.head.Load()
		idx1 := uint32(old)
		if idx1 == 0 {
			// Pool exhausted: wait for a slot. See WithPoolSize.
			runtime.Gosched()
			continue
		}
		next := p.next[idx1-1].Load()
		cnt := (old >> 32) + 1
		if p.head.CompareAndSwap(old, cnt<<32|uint64(next)) {
			return idx1 - 1
		}
	}
}

func (p *descPool) release(slot uint32) { p.releaseSlot(slot) }

func (p *descPool) releaseSlot(slot uint32) {
	for {
		old := p.head.Load()
		p.next[slot].Store(uint32(old))
		if p.head.CompareAndSwap(old, old&^uint64(0xFFFF_FFFF)|uint64(slot+1)) {
			return
		}
	}
}
