package dcas

import (
	"sort"
	"sync"

	"lfrc/internal/mem"
)

const lockStripes = 256

// LockingEngine models a hardware DCAS with an address-striped lock table:
// the critical section stands in for the bus lock the original instruction
// used. Reads bypass the locks entirely — single-word atomic loads commute
// with DCAS when observed one word at a time — so only writers pay for the
// simulation.
type LockingEngine struct {
	h     CellStore
	locks [lockStripes]sync.Mutex
}

var _ Engine = (*LockingEngine)(nil)

// NewLocking returns a LockingEngine over h.
func NewLocking(h CellStore) *LockingEngine {
	return &LockingEngine{h: h}
}

// Name implements Engine.
func (e *LockingEngine) Name() string { return "locking" }

// stripe maps an address onto a lock index with a multiplicative hash so
// that neighbouring cells of one object spread across stripes.
func stripe(a mem.Addr) uint32 {
	return uint32((uint64(a) * 0x9E3779B97F4A7C15) >> 56)
}

// Read implements Engine.
func (e *LockingEngine) Read(a mem.Addr) uint64 { return e.h.Load(a) }

// Write implements Engine.
func (e *LockingEngine) Write(a mem.Addr, v uint64) {
	s := stripe(a)
	e.locks[s].Lock()
	e.h.Store(a, v)
	e.locks[s].Unlock()
}

// CAS implements Engine.
func (e *LockingEngine) CAS(a mem.Addr, old, new uint64) bool {
	s := stripe(a)
	e.locks[s].Lock()
	ok := e.h.Load(a) == old
	if ok {
		e.h.Store(a, new)
	}
	e.locks[s].Unlock()
	return ok
}

// NCAS atomically compares-and-swaps up to four distinct locations,
// mirroring MCASEngine.NCAS on the modeled hardware. Same argument
// validation rules apply.
func (e *LockingEngine) NCAS(addrs []mem.Addr, olds, news []uint64) bool {
	n := len(addrs)
	if n == 0 || n > 4 || len(olds) != n || len(news) != n {
		return false
	}
	if n == 1 {
		return e.CAS(addrs[0], olds[0], news[0])
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if addrs[i] == addrs[j] {
				return false
			}
		}
	}
	// Lock the deduplicated stripes in ascending order.
	var stripes []uint32
	for _, a := range addrs {
		s := stripe(a)
		dup := false
		for _, x := range stripes {
			if x == s {
				dup = true
			}
		}
		if !dup {
			stripes = append(stripes, s)
		}
	}
	sort.Slice(stripes, func(i, j int) bool { return stripes[i] < stripes[j] })
	for _, s := range stripes {
		e.locks[s].Lock()
	}
	ok := true
	for i := 0; i < n; i++ {
		if e.h.Load(addrs[i]) != olds[i] {
			ok = false
			break
		}
	}
	if ok {
		for i := 0; i < n; i++ {
			e.h.Store(addrs[i], news[i])
		}
	}
	for i := len(stripes) - 1; i >= 0; i-- {
		e.locks[stripes[i]].Unlock()
	}
	return ok
}

// DCAS implements Engine.
func (e *LockingEngine) DCAS(a0, a1 mem.Addr, old0, old1, new0, new1 uint64) bool {
	if a0 == a1 {
		if old0 != old1 || new0 != new1 {
			return false
		}
		return e.CAS(a0, old0, new0)
	}
	s0, s1 := stripe(a0), stripe(a1)
	if s0 > s1 {
		s0, s1 = s1, s0
	}
	e.locks[s0].Lock()
	if s1 != s0 {
		e.locks[s1].Lock()
	}
	ok := e.h.Load(a0) == old0 && e.h.Load(a1) == old1
	if ok {
		e.h.Store(a0, new0)
		e.h.Store(a1, new1)
	}
	if s1 != s0 {
		e.locks[s1].Unlock()
	}
	e.locks[s0].Unlock()
	return ok
}
