package dcas

import (
	"testing"

	"lfrc/internal/mem"
)

// FuzzEnginesAgree interprets the fuzz input as an operation script over a
// small cell soup and requires the locking engine (the modeled hardware
// DCAS) and the software MCAS engine to produce identical outcomes and
// final states.
func FuzzEnginesAgree(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5})
	f.Add([]byte{2, 0, 1, 3, 2, 0, 1, 3})
	f.Add([]byte{3, 3, 3, 3})
	f.Add([]byte{1, 0, 2, 2, 1, 0})

	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 600 {
			script = script[:600]
		}
		const nCells = 4

		run := func(mk func(h *mem.Heap) Engine) ([]bool, [nCells]uint64) {
			h := mem.NewHeap()
			id := h.MustRegisterType(mem.TypeDesc{Name: "c", NumFields: nCells})
			r := h.MustAlloc(id)
			cells := [nCells]mem.Addr{}
			for i := range cells {
				cells[i] = h.FieldAddr(r, i)
			}
			e := mk(h)

			var outcomes []bool
			for i := 0; i+4 < len(script); i += 5 {
				op := script[i] % 3
				a0 := cells[script[i+1]%nCells]
				a1 := cells[script[i+2]%nCells]
				v0 := uint64(script[i+3] % 4)
				v1 := uint64(script[i+4] % 4)
				switch op {
				case 0:
					e.Write(a0, v0)
				case 1:
					outcomes = append(outcomes, e.CAS(a0, v0, v1))
				case 2:
					outcomes = append(outcomes, e.DCAS(a0, a1, v0, v1, v1, v0))
				}
			}
			var final [nCells]uint64
			for i, a := range cells {
				final[i] = e.Read(a)
			}
			return outcomes, final
		}

		o1, f1 := run(func(h *mem.Heap) Engine { return NewLocking(h) })
		o2, f2 := run(func(h *mem.Heap) Engine { return NewMCAS(h) })
		if len(o1) != len(o2) {
			t.Fatalf("outcome count differs: %d vs %d", len(o1), len(o2))
		}
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("outcome %d differs: locking=%v mcas=%v", i, o1[i], o2[i])
			}
		}
		if f1 != f2 {
			t.Fatalf("final state differs: %v vs %v", f1, f2)
		}
	})
}
