package dcas

import "lfrc/internal/mem"

// Attribute assigns blame for a failed DCAS attempt: it re-reads the two
// comparands through the engine and reports which of them no longer holds
// the value the attempt expected. The contention observatory uses it to
// charge a failure to the cell that actually moved rather than splitting it
// blindly — a Load that keeps losing because the *pointer* is churning is a
// different diagnosis from one losing because the referent's *count* is.
//
// The attribution is best-effort, not linearized with the failure: by the
// time of the re-read a cell may have changed again, or changed and changed
// back (ABA), in which case neither re-read mismatches and both results are
// false. Callers conventionally charge such transient failures to the
// operation's primary cell. For a degenerate attempt (a0 == a1) only m0 is
// meaningful; m1 is reported false.
func Attribute(e Engine, a0, a1 mem.Addr, old0, old1 uint64) (m0, m1 bool) {
	m0 = e.Read(a0) != old0
	if a1 != a0 {
		m1 = e.Read(a1) != old1
	}
	return m0, m1
}
