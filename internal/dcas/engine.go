// Package dcas provides the double-compare-and-swap substrate the LFRC paper
// assumes.
//
// The paper relies on a hardware DCAS instruction (two independently chosen
// memory words compared and updated atomically, as in the Motorola
// 68020/68040 CAS2). No commodity hardware offers one today, and Go exposes
// only single-word atomics, so this package supplies two interchangeable
// engines over the simulated heap:
//
//   - LockingEngine simulates the hardware: an address-striped lock table
//     stands in for the atomic execution the instruction would provide.
//     It is simple and fast, but its lock-freedom is a property of the
//     modeled hardware, not of the simulation.
//   - MCASEngine is a genuinely lock-free software DCAS built from
//     single-word CAS using the RDCSS and MCAS constructions of Harris,
//     Fraser & Pratt (DISC 2002), with a version-validated descriptor pool
//     so helpers can never be confused by descriptor reuse.
//
// All pointer and reference-count cells of LFRC-managed objects are accessed
// exclusively through an Engine, which is what lets the two implementations
// swap freely (ablation A1 in EXPERIMENTS.md).
package dcas

import "lfrc/internal/mem"

// CellStore is the word-granular memory the engines build on. *mem.Heap
// implements it; test harnesses substitute instrumented stores to interleave
// engine-internal steps (see internal/explore).
type CellStore interface {
	// Load atomically reads the cell at a.
	Load(a mem.Addr) uint64

	// Store atomically writes v into the cell at a.
	Store(a mem.Addr, v uint64)

	// CAS atomically compares-and-swaps the cell at a.
	CAS(a mem.Addr, old, new uint64) bool
}

var _ CellStore = (*mem.Heap)(nil)

// Engine provides atomic access to heap cells, including the two-word DCAS
// the LFRC algorithms are built on.
//
// Values stored through an Engine must fit in mem.ValueMask (top two bits
// clear); those bits are reserved for MCAS descriptor tags.
type Engine interface {
	// Name identifies the engine in benchmark output.
	Name() string

	// Read atomically reads the cell at a, helping any in-flight
	// multi-word operation it encounters.
	Read(a mem.Addr) uint64

	// Write atomically replaces the value of the cell at a.
	Write(a mem.Addr, v uint64)

	// CAS atomically compares-and-swaps the cell at a.
	CAS(a mem.Addr, old, new uint64) bool

	// DCAS atomically compares the cells at a0 and a1 with old0 and old1
	// and, if both match, replaces them with new0 and new1. It returns
	// whether the replacement happened. If a0 == a1 the operation
	// degenerates to a single CAS and requires old0 == old1 and
	// new0 == new1.
	DCAS(a0, a1 mem.Addr, old0, old1, new0, new1 uint64) bool
}

// MultiEngine is implemented by engines that additionally support N-word
// CAS over up to four distinct locations (the full Harris–Fraser–Pratt
// generality). Both bundled engines implement it.
type MultiEngine interface {
	Engine

	// NCAS atomically compares every cell at addrs[i] with olds[i] and,
	// if all match, replaces each with news[i]. It returns false without
	// side effects on mismatched slice lengths, empty or oversized input,
	// or duplicate addresses.
	NCAS(addrs []mem.Addr, olds, news []uint64) bool
}

var (
	_ MultiEngine = (*LockingEngine)(nil)
	_ MultiEngine = (*MCASEngine)(nil)
)
