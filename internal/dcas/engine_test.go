package dcas

import (
	"fmt"
	"testing"

	"lfrc/internal/mem"
)

// engineFactories enumerates the implementations under test so every
// semantic test runs against both.
func engineFactories() map[string]func(h *mem.Heap) Engine {
	return map[string]func(h *mem.Heap) Engine{
		"locking": func(h *mem.Heap) Engine { return NewLocking(h) },
		"mcas":    func(h *mem.Heap) Engine { return NewMCAS(h) },
	}
}

// newCells allocates n adjacent test cells and returns their addresses.
func newCells(t *testing.T, h *mem.Heap, n int) []mem.Addr {
	t.Helper()
	id := h.MustRegisterType(mem.TypeDesc{Name: fmt.Sprintf("cells%d", n), NumFields: n})
	r := h.MustAlloc(id)
	addrs := make([]mem.Addr, n)
	for i := range addrs {
		addrs[i] = h.FieldAddr(r, i)
	}
	return addrs
}

func TestEngineReadWrite(t *testing.T) {
	for name, mk := range engineFactories() {
		t.Run(name, func(t *testing.T) {
			h := mem.NewHeap()
			e := mk(h)
			a := newCells(t, h, 1)[0]

			if got := e.Read(a); got != 0 {
				t.Fatalf("fresh cell = %d, want 0", got)
			}
			e.Write(a, 7)
			if got := e.Read(a); got != 7 {
				t.Fatalf("after Write, cell = %d, want 7", got)
			}
			e.Write(a, mem.ValueMask)
			if got := e.Read(a); got != mem.ValueMask {
				t.Fatalf("max value round-trip = %#x, want %#x", got, mem.ValueMask)
			}
		})
	}
}

func TestEngineCAS(t *testing.T) {
	for name, mk := range engineFactories() {
		t.Run(name, func(t *testing.T) {
			h := mem.NewHeap()
			e := mk(h)
			a := newCells(t, h, 1)[0]
			e.Write(a, 10)

			if e.CAS(a, 11, 12) {
				t.Fatal("CAS succeeded with wrong expected value")
			}
			if got := e.Read(a); got != 10 {
				t.Fatalf("failed CAS changed the cell to %d", got)
			}
			if !e.CAS(a, 10, 11) {
				t.Fatal("CAS failed with right expected value")
			}
			if got := e.Read(a); got != 11 {
				t.Fatalf("after CAS, cell = %d, want 11", got)
			}
		})
	}
}

func TestEngineDCASSemantics(t *testing.T) {
	for name, mk := range engineFactories() {
		t.Run(name, func(t *testing.T) {
			tests := []struct {
				name         string
				init0, init1 uint64
				old0, old1   uint64
				new0, new1   uint64
				want         bool
				end0, end1   uint64
			}{
				{
					name:  "both match",
					init0: 1, init1: 2, old0: 1, old1: 2, new0: 10, new1: 20,
					want: true, end0: 10, end1: 20,
				},
				{
					name:  "first mismatch",
					init0: 1, init1: 2, old0: 9, old1: 2, new0: 10, new1: 20,
					want: false, end0: 1, end1: 2,
				},
				{
					name:  "second mismatch",
					init0: 1, init1: 2, old0: 1, old1: 9, new0: 10, new1: 20,
					want: false, end0: 1, end1: 2,
				},
				{
					name:  "both mismatch",
					init0: 1, init1: 2, old0: 7, old1: 9, new0: 10, new1: 20,
					want: false, end0: 1, end1: 2,
				},
				{
					name:  "identity update",
					init0: 5, init1: 6, old0: 5, old1: 6, new0: 5, new1: 6,
					want: true, end0: 5, end1: 6,
				},
			}
			for _, tt := range tests {
				t.Run(tt.name, func(t *testing.T) {
					h := mem.NewHeap()
					e := mk(h)
					cells := newCells(t, h, 2)
					e.Write(cells[0], tt.init0)
					e.Write(cells[1], tt.init1)

					got := e.DCAS(cells[0], cells[1], tt.old0, tt.old1, tt.new0, tt.new1)
					if got != tt.want {
						t.Errorf("DCAS = %v, want %v", got, tt.want)
					}
					if v := e.Read(cells[0]); v != tt.end0 {
						t.Errorf("cell0 = %d, want %d", v, tt.end0)
					}
					if v := e.Read(cells[1]); v != tt.end1 {
						t.Errorf("cell1 = %d, want %d", v, tt.end1)
					}
				})
			}
		})
	}
}

func TestEngineDCASReversedAddressOrder(t *testing.T) {
	for name, mk := range engineFactories() {
		t.Run(name, func(t *testing.T) {
			h := mem.NewHeap()
			e := mk(h)
			cells := newCells(t, h, 2)
			e.Write(cells[0], 1)
			e.Write(cells[1], 2)

			// Pass the higher address first; semantics must be
			// position-faithful regardless of internal sorting.
			if !e.DCAS(cells[1], cells[0], 2, 1, 20, 10) {
				t.Fatal("reversed-order DCAS failed")
			}
			if v := e.Read(cells[0]); v != 10 {
				t.Errorf("cell0 = %d, want 10", v)
			}
			if v := e.Read(cells[1]); v != 20 {
				t.Errorf("cell1 = %d, want 20", v)
			}
		})
	}
}

func TestEngineDCASSameAddress(t *testing.T) {
	for name, mk := range engineFactories() {
		t.Run(name, func(t *testing.T) {
			h := mem.NewHeap()
			e := mk(h)
			a := newCells(t, h, 1)[0]
			e.Write(a, 5)

			if e.DCAS(a, a, 5, 5, 6, 7) {
				t.Error("same-address DCAS with conflicting news succeeded")
			}
			if e.DCAS(a, a, 5, 4, 6, 6) {
				t.Error("same-address DCAS with conflicting olds succeeded")
			}
			if !e.DCAS(a, a, 5, 5, 6, 6) {
				t.Error("degenerate same-address DCAS failed")
			}
			if got := e.Read(a); got != 6 {
				t.Errorf("cell = %d, want 6", got)
			}
		})
	}
}

func TestEngineNames(t *testing.T) {
	h := mem.NewHeap()
	if got := NewLocking(h).Name(); got != "locking" {
		t.Errorf("LockingEngine name = %q", got)
	}
	if got := NewMCAS(h).Name(); got != "mcas" {
		t.Errorf("MCASEngine name = %q", got)
	}
}
