// Package stripe provides the striping hint shared by the heap's sharded
// allocator and the striped statistic counters.
//
// Go exposes no goroutine or processor identity, so perfectly pinning a
// goroutine to a stripe is impossible without runtime hacks. Hint instead
// hashes the address of a stack variable: goroutines run on distinct stacks,
// so concurrent callers spread across stripes without touching any shared
// state — the whole point of striping is to avoid a shared cache line, and a
// shared round-robin cursor would reintroduce one.
package stripe

import "unsafe"

// MaxStripes bounds stripe counts so hint distribution stays meaningful and
// padded counter arrays stay small.
const MaxStripes = 64

// Clamp normalizes a requested stripe count to [1, MaxStripes], mapping
// n <= 0 to fallback (itself clamped).
func Clamp(n, fallback int) int {
	if n <= 0 {
		n = fallback
	}
	if n < 1 {
		n = 1
	}
	if n > MaxStripes {
		n = MaxStripes
	}
	return n
}

// Hint returns a cheap quasi-per-goroutine index in [0, n). The value is
// stable while a goroutine's stack stays put and its call depth is fixed; it
// may change across stack growth or different call paths. Callers must treat
// it as a locality hint only, never as an identity: any stripe may be
// touched by any goroutine.
func Hint(n int) int {
	if n <= 1 {
		return 0
	}
	var b byte
	p := uint64(uintptr(unsafe.Pointer(&b)))
	// Fibonacci hashing; the low bits are frame alignment, so mix from the
	// middle of the word.
	h := (p >> 4) * 0x9E3779B97F4A7C15
	return int((h >> 33) % uint64(n))
}
