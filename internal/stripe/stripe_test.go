package stripe

import (
	"sync"
	"testing"
)

func TestClamp(t *testing.T) {
	tests := []struct {
		n, fallback, want int
	}{
		{n: 0, fallback: 4, want: 4},
		{n: -3, fallback: 8, want: 8},
		{n: 1, fallback: 4, want: 1},
		{n: 16, fallback: 4, want: 16},
		{n: MaxStripes + 1, fallback: 4, want: MaxStripes},
		{n: 0, fallback: 0, want: 1},
		{n: 0, fallback: MaxStripes * 2, want: MaxStripes},
	}
	for _, tt := range tests {
		if got := Clamp(tt.n, tt.fallback); got != tt.want {
			t.Errorf("Clamp(%d, %d) = %d, want %d", tt.n, tt.fallback, got, tt.want)
		}
	}
}

func TestHintInRange(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 64} {
		for i := 0; i < 100; i++ {
			if h := Hint(n); h < 0 || h >= n {
				t.Fatalf("Hint(%d) = %d out of range", n, h)
			}
		}
	}
}

func TestHintStableWithinCall(t *testing.T) {
	// Same goroutine, same call site: the hint must not flap between
	// consecutive calls (stack in place, depth fixed).
	first := Hint(64)
	for i := 0; i < 1000; i++ {
		if got := Hint(64); got != first {
			t.Fatalf("Hint flapped from %d to %d at iteration %d", first, got, i)
		}
	}
}

func TestHintSpreadsAcrossGoroutines(t *testing.T) {
	// Distinct goroutines run on distinct stacks; with many goroutines the
	// hints must not all collapse onto a single stripe.
	const n = 64
	const goroutines = 64
	hints := make([]int, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			hints[g] = Hint(n)
		}(g)
	}
	wg.Wait()
	seen := map[int]bool{}
	for _, h := range hints {
		seen[h] = true
	}
	if len(seen) < 2 {
		t.Errorf("64 goroutines all hashed to stripe set %v; hint does not spread", seen)
	}
}
