// Package pprofenc hand-encodes pprof's gzipped profile.proto wire format.
// The repo is stdlib-only by policy, so rather than depending on
// github.com/google/pprof this package implements the tiny subset the
// exported profiles need: varints, length-delimited fields, packed repeated
// scalars, and an interning builder for the string table, synthetic
// functions, and locations. It serves both the contention profile
// (/debug/lfrc/contention.pb.gz) and the heap-census profile
// (/debug/lfrc/census.pb.gz).
//
// Field numbers below follow profile.proto: Profile.sample_type = 1,
// sample = 2, location = 4, function = 5, string_table = 6, time_nanos = 9,
// period_type = 11, period = 12, comment = 13, default_sample_type = 14.
package pprofenc

import (
	"compress/gzip"
	"io"
)

// Builder interns strings, functions and locations while the caller streams
// samples into Msg (the top-level Profile message).
type Builder struct {
	// Msg accumulates the top-level Profile message; callers append
	// sample_type, sample, and scalar fields to it directly.
	Msg Buf

	strings []string
	strIdx  map[string]int64
	locIdx  map[string]uint64
	locs    []string // location id-1 -> name
}

// NewBuilder returns a Builder with the mandatory empty string interned at
// string-table index 0.
func NewBuilder() *Builder {
	b := &Builder{strIdx: map[string]int64{}, locIdx: map[string]uint64{}}
	b.Str("")
	return b
}

// Str interns s in the profile string table and returns its index.
func (b *Builder) Str(s string) int64 {
	if i, ok := b.strIdx[s]; ok {
		return i
	}
	i := int64(len(b.strings))
	b.strings = append(b.strings, s)
	b.strIdx[s] = i
	return i
}

// ValueType encodes a ValueType message ({type, unit} string indices).
func (b *Builder) ValueType(typ, unit string) []byte {
	var m Buf
	m.Int64Field(1, b.Str(typ))
	m.Int64Field(2, b.Str(unit))
	return m.buf
}

// Label encodes a string Label message.
func (b *Builder) Label(key, value string) []byte {
	var m Buf
	m.Int64Field(1, b.Str(key))
	m.Int64Field(2, b.Str(value))
	return m.buf
}

// Location interns a synthetic one-frame location named name and returns its
// id. Locations and their functions are emitted by FlushLocations.
func (b *Builder) Location(name string) uint64 {
	if id, ok := b.locIdx[name]; ok {
		return id
	}
	id := uint64(len(b.locs) + 1)
	b.locs = append(b.locs, name)
	b.locIdx[name] = id
	return id
}

// FlushLocations emits one Function and one Location per interned name,
// sharing ids (function i backs location i). Call it once, after the last
// Location call.
func (b *Builder) FlushLocations() {
	for i, name := range b.locs {
		id := uint64(i + 1)

		var fn Buf
		fn.Uint64Field(1, id)
		fn.Int64Field(2, b.Str(name))
		fn.Int64Field(3, b.Str(name))
		b.Msg.BytesField(5, fn.buf)

		var line Buf
		line.Uint64Field(1, id)
		var loc Buf
		loc.Uint64Field(1, id)
		loc.BytesField(4, line.buf)
		b.Msg.BytesField(4, loc.buf)
	}
}

// WriteGzipped appends the string table to Msg and writes the gzipped
// profile. It must be the last call on the builder: string indices handed out
// after it are not in the emitted table.
func (b *Builder) WriteGzipped(w io.Writer) error {
	for _, s := range b.strings {
		b.Msg.StringField(6, s)
	}
	gz := gzip.NewWriter(w)
	if _, err := gz.Write(b.Msg.buf); err != nil {
		return err
	}
	return gz.Close()
}

// Buf is a minimal protobuf wire-format writer: varints, length-delimited
// fields, and packed repeated scalars — all profile.proto needs.
type Buf struct{ buf []byte }

// Bytes returns the accumulated encoding.
func (b *Buf) Bytes() []byte { return b.buf }

// Varint appends v in base-128 varint encoding.
func (b *Buf) Varint(v uint64) {
	for v >= 0x80 {
		b.buf = append(b.buf, byte(v)|0x80)
		v >>= 7
	}
	b.buf = append(b.buf, byte(v))
}

// Tag writes a field key (field number + wire type).
func (b *Buf) Tag(field, wire int) { b.Varint(uint64(field)<<3 | uint64(wire)) }

// Int64Field writes a varint field; zero values are omitted per proto3.
func (b *Buf) Int64Field(field int, v int64) {
	if v == 0 {
		return
	}
	b.Tag(field, 0)
	b.Varint(uint64(v))
}

// Uint64Field writes a varint field; zero values are omitted per proto3.
func (b *Buf) Uint64Field(field int, v uint64) {
	if v == 0 {
		return
	}
	b.Tag(field, 0)
	b.Varint(v)
}

// BytesField writes a length-delimited field.
func (b *Buf) BytesField(field int, data []byte) {
	b.Tag(field, 2)
	b.Varint(uint64(len(data)))
	b.buf = append(b.buf, data...)
}

// StringField writes a length-delimited field from a string.
func (b *Buf) StringField(field int, s string) {
	b.Tag(field, 2)
	b.Varint(uint64(len(s)))
	b.buf = append(b.buf, s...)
}

// PackedUint64 writes a packed repeated varint field.
func (b *Buf) PackedUint64(field int, vs []uint64) {
	var body Buf
	for _, v := range vs {
		body.Varint(v)
	}
	b.BytesField(field, body.buf)
}

// PackedInt64 writes a packed repeated varint field.
func (b *Buf) PackedInt64(field int, vs []int64) {
	var body Buf
	for _, v := range vs {
		body.Varint(uint64(v))
	}
	b.BytesField(field, body.buf)
}
