package pprofenc_test

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"testing"

	"lfrc/internal/pprofenc"
)

// scanTop walks one protobuf message and calls fn for each field with its
// wire type and payload (varint value or raw bytes). It is deliberately tiny:
// just enough decoding to prove the writer emits structurally valid wire
// format.
func scanTop(data []byte, fn func(field, wire int, varint uint64, raw []byte) error) error {
	for len(data) > 0 {
		key, n := varint(data)
		if n == 0 {
			return fmt.Errorf("bad tag varint at tail %d", len(data))
		}
		data = data[n:]
		field, wire := int(key>>3), int(key&7)
		switch wire {
		case 0:
			v, n := varint(data)
			if n == 0 {
				return fmt.Errorf("field %d: bad varint", field)
			}
			data = data[n:]
			if err := fn(field, wire, v, nil); err != nil {
				return err
			}
		case 2:
			l, n := varint(data)
			if n == 0 || uint64(len(data)-n) < l {
				return fmt.Errorf("field %d: bad length", field)
			}
			if err := fn(field, wire, 0, data[n:n+int(l)]); err != nil {
				return err
			}
			data = data[n+int(l):]
		default:
			return fmt.Errorf("field %d: unexpected wire type %d", field, wire)
		}
	}
	return nil
}

func varint(data []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(data) && i < 10; i++ {
		v |= uint64(data[i]&0x7f) << (7 * i)
		if data[i] < 0x80 {
			return v, i + 1
		}
	}
	return 0, 0
}

func TestBuilderEmitsDecodableProfile(t *testing.T) {
	b := pprofenc.NewBuilder()
	b.Msg.BytesField(1, b.ValueType("objects", "count"))
	b.Msg.BytesField(1, b.ValueType("bytes", "bytes"))

	leaf := b.Location("leaf")
	parent := b.Location("parent")
	var sample pprofenc.Buf
	sample.PackedUint64(1, []uint64{leaf, parent})
	sample.PackedInt64(2, []int64{3, 192})
	sample.BytesField(3, b.Label("class", "unreachable"))
	b.Msg.BytesField(2, sample.Bytes())

	b.FlushLocations()
	b.Msg.Int64Field(9, 12345)
	b.Msg.BytesField(11, b.ValueType("bytes", "bytes"))
	b.Msg.Int64Field(12, 1)

	var out bytes.Buffer
	if err := b.WriteGzipped(&out); err != nil {
		t.Fatalf("WriteGzipped: %v", err)
	}
	zr, err := gzip.NewReader(&out)
	if err != nil {
		t.Fatalf("output is not gzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("gunzip: %v", err)
	}

	var strTable []string
	counts := map[int]int{}
	var timeNanos uint64
	err = scanTop(raw, func(field, wire int, v uint64, data []byte) error {
		counts[field]++
		switch field {
		case 6:
			strTable = append(strTable, string(data))
		case 9:
			timeNanos = v
		}
		return nil
	})
	if err != nil {
		t.Fatalf("profile does not decode: %v", err)
	}

	// 2 sample types, 1 sample, 2 locations, 2 functions, a period type.
	for field, want := range map[int]int{1: 2, 2: 1, 4: 2, 5: 2, 11: 1} {
		if counts[field] != want {
			t.Errorf("field %d count = %d, want %d", field, counts[field], want)
		}
	}
	if timeNanos != 12345 {
		t.Errorf("time_nanos = %d", timeNanos)
	}
	if len(strTable) == 0 || strTable[0] != "" {
		t.Fatalf("string table must start with the empty string: %q", strTable)
	}
	want := map[string]bool{"objects": true, "bytes": true, "leaf": true, "parent": true, "class": true, "unreachable": true}
	for _, s := range strTable {
		delete(want, s)
	}
	if len(want) != 0 {
		t.Errorf("string table missing %v; got %q", want, strTable)
	}
}

// TestStrInterns: repeated Str calls return a stable index and add one table
// entry.
func TestStrInterns(t *testing.T) {
	b := pprofenc.NewBuilder()
	i1 := b.Str("x")
	i2 := b.Str("x")
	if i1 != i2 || i1 == 0 {
		t.Errorf("Str not interning: %d vs %d", i1, i2)
	}
	if l1, l2 := b.Location("f"), b.Location("f"); l1 != l2 || l1 == 0 {
		t.Errorf("Location not interning: %d vs %d", l1, l2)
	}
}

// TestZeroFieldsOmitted: proto3 scalar zeroes must not hit the wire.
func TestZeroFieldsOmitted(t *testing.T) {
	var m pprofenc.Buf
	m.Int64Field(7, 0)
	m.Uint64Field(8, 0)
	if len(m.Bytes()) != 0 {
		t.Errorf("zero fields emitted %d bytes", len(m.Bytes()))
	}
	m.Int64Field(7, 1)
	if len(m.Bytes()) == 0 {
		t.Errorf("non-zero field omitted")
	}
}
