package gctrace

import (
	"testing"

	"lfrc/internal/core"
	"lfrc/internal/dcas"
	"lfrc/internal/mem"
	"lfrc/internal/snark"
)

type world struct {
	h    *mem.Heap
	rc   *core.RC
	gc   *Collector
	node mem.TypeID
}

func newWorld(t *testing.T) *world {
	t.Helper()
	h := mem.NewHeap()
	return &world{
		h:    h,
		rc:   core.New(h, dcas.NewLocking(h)),
		gc:   New(h),
		node: h.MustRegisterType(mem.TypeDesc{Name: "node", NumFields: 3, PtrFields: []int{0, 1}}),
	}
}

func TestCollectEmptyHeap(t *testing.T) {
	w := newWorld(t)
	res := w.gc.Collect()
	if res.Marked != 0 || res.Freed != 0 {
		t.Errorf("Collect on empty heap = %+v, want zeros", res)
	}
}

func TestCollectSparesRootReachable(t *testing.T) {
	w := newWorld(t)
	root, _ := w.rc.NewObject(w.node)
	child, _ := w.rc.NewObject(w.node)
	w.rc.StoreAlloc(w.h.FieldAddr(root, 0), child)
	w.gc.AddRoot(root)

	res := w.gc.Collect()
	if res.Freed != 0 {
		t.Errorf("Collect freed %d root-reachable objects", res.Freed)
	}
	if res.Marked != 2 {
		t.Errorf("Marked = %d, want 2", res.Marked)
	}
	if w.h.IsFreed(root) || w.h.IsFreed(child) {
		t.Error("root-reachable object freed")
	}
}

func TestCollectReclaimsSimpleCycle(t *testing.T) {
	w := newWorld(t)
	a, _ := w.rc.NewObject(w.node)
	b, _ := w.rc.NewObject(w.node)
	w.rc.Store(w.h.FieldAddr(a, 0), b)
	w.rc.Store(w.h.FieldAddr(b, 0), a)
	w.rc.Destroy(a, b) // now pure garbage cycle; LFRC cannot reclaim it

	if got := w.h.Stats().LiveObjects; got != 2 {
		t.Fatalf("precondition: LiveObjects = %d, want 2 leaked", got)
	}
	res := w.gc.Collect()
	if res.Freed != 2 {
		t.Errorf("Freed = %d, want 2", res.Freed)
	}
	if got := w.h.Stats().LiveObjects; got != 0 {
		t.Errorf("LiveObjects = %d after Collect, want 0", got)
	}
}

func TestCollectReclaimsSelfCycle(t *testing.T) {
	w := newWorld(t)
	a, _ := w.rc.NewObject(w.node)
	w.rc.Store(w.h.FieldAddr(a, 0), a) // self-pointer, like a Snark sentinel
	w.rc.Destroy(a)

	res := w.gc.Collect()
	if res.Freed != 1 {
		t.Errorf("Freed = %d, want 1", res.Freed)
	}
}

func TestCollectAdjustsSurvivorCounts(t *testing.T) {
	w := newWorld(t)
	// Garbage cycle {a,b}; b also points at live survivor s.
	s, _ := w.rc.NewObject(w.node)
	a, _ := w.rc.NewObject(w.node)
	b, _ := w.rc.NewObject(w.node)
	w.rc.Store(w.h.FieldAddr(a, 0), b)
	w.rc.Store(w.h.FieldAddr(b, 0), a)
	w.rc.Store(w.h.FieldAddr(b, 1), s)
	w.rc.Destroy(a, b)
	w.gc.AddRoot(s)

	if got := w.rc.RCOf(s); got != 2 {
		t.Fatalf("precondition: rc(s) = %d, want 2 (local + garbage ref)", got)
	}
	res := w.gc.Collect()
	if res.Freed != 2 {
		t.Errorf("Freed = %d, want 2", res.Freed)
	}
	if res.RCAdjusted != 1 {
		t.Errorf("RCAdjusted = %d, want 1", res.RCAdjusted)
	}
	if got := w.rc.RCOf(s); got != 1 {
		t.Errorf("rc(s) = %d after Collect, want 1", got)
	}
	// Ordinary LFRC reclamation must work again afterwards.
	w.gc.RemoveRoot(s)
	w.rc.Destroy(s)
	if got := w.h.Stats().LiveObjects; got != 0 {
		t.Errorf("LiveObjects = %d, want 0", got)
	}
}

func TestRootRegistrationCounts(t *testing.T) {
	w := newWorld(t)
	a, _ := w.rc.NewObject(w.node)
	w.gc.AddRoot(a)
	w.gc.AddRoot(a)
	w.gc.RemoveRoot(a)

	// Still rooted once: must survive.
	if res := w.gc.Collect(); res.Freed != 0 {
		t.Errorf("Freed = %d with live root, want 0", res.Freed)
	}
	w.gc.RemoveRoot(a)
	if res := w.gc.Collect(); res.Freed != 1 {
		t.Errorf("Freed = %d after last RemoveRoot, want 1", res.Freed)
	}
}

// TestBackupCollectorOnCyclicSnark is the paper's §7 scenario end to end:
// the original self-pointer Snark strands sentinel cycles that LFRC cannot
// reclaim; an occasional tracing pass collects them while sparing the live
// deque (experiment E8).
func TestBackupCollectorOnCyclicSnark(t *testing.T) {
	w := newWorld(t)
	ts := snark.MustRegisterTypes(w.h)
	d, err := snark.New(w.rc, ts, snark.WithCyclicSentinels())
	if err != nil {
		t.Fatalf("snark.New: %v", err)
	}

	const n = 100
	for v := snark.Value(0); v < n; v++ {
		if err := d.PushRight(v); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n/2; i++ {
		if _, ok := d.PopRight(); !ok {
			t.Fatalf("premature empty at %d", i)
		}
	}

	liveBefore := w.h.Stats().LiveObjects
	// Root the deque through its anchor: everything the live structure
	// needs hangs off it.
	w.gc.AddRoot(d.Anchor())
	res := w.gc.Collect()
	if res.Freed == 0 {
		t.Fatal("backup collector reclaimed nothing; expected stranded sentinel cycles")
	}
	t.Logf("backup trace freed %d of %d live objects", res.Freed, liveBefore)

	// The live half of the deque must still drain correctly.
	for i := 0; i < n/2; i++ {
		if _, ok := d.PopLeft(); !ok {
			t.Fatalf("deque lost live element %d after trace", i)
		}
	}
	if _, ok := d.PopLeft(); ok {
		t.Error("deque has extra elements after trace")
	}
}
