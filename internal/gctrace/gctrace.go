// Package gctrace implements a stop-the-world mark–sweep collector over the
// simulated heap.
//
// The LFRC paper's §7 names the one reclamation gap of reference counting —
// cyclic garbage — and proposes "to integrate a tracing collector that can
// be invoked occasionally in order to identify and collect cyclic garbage".
// This package is that collector. It is deliberately stop-the-world: the
// paper positions it as an occasional backup pass run at quiescence, not as
// a concurrent collector (making *it* lock-free is exactly the future work
// the paper leaves open).
//
// Collect marks every object reachable from the registered roots through
// registered pointer fields, then sweeps: unreachable live objects are freed
// regardless of their reference counts (a garbage cycle's counts never reach
// zero — that is the point), and any references such objects held into the
// surviving graph are subtracted from the survivors' counts so ordinary LFRC
// reclamation stays exact afterwards.
package gctrace

import (
	"sync"

	"lfrc/internal/mem"
)

// Collector performs stop-the-world mark–sweep passes over one heap.
// Methods are mutually excluded; the heap itself must be quiescent (no
// running mutators) for the duration of Collect.
type Collector struct {
	h *mem.Heap

	mu     sync.Mutex
	roots  map[mem.Ref]*rootEntry
	decode func(uint64) (mem.Ref, int64)
}

// rootEntry is one registered root's bookkeeping: how many handles hold it
// and what kind of structure anchored it (for diagnostic exports).
type rootEntry struct {
	count int
	name  string
}

// New creates a collector for h.
func New(h *mem.Heap) *Collector {
	return &Collector{h: h, roots: make(map[mem.Ref]*rootEntry)}
}

// SetDecoder installs a link decoder mapping a raw pointer-cell word to
// (referent, count weight). RC strategies that pack per-link state into the
// pointer word (split) need it so the mark phase follows real edges and the
// sweep phase subtracts each dying link's full weight from its survivor. A
// nil decoder (the default) reads bare refs at weight 1 — the figure2 layout.
func (c *Collector) SetDecoder(decode func(uint64) (mem.Ref, int64)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.decode = decode
}

// decodeCell applies the installed decoder (or the bare-ref default) to one
// pointer-cell word. Callers hold c.mu.
func (c *Collector) decodeCell(u uint64) (mem.Ref, int64) {
	if c.decode != nil {
		return c.decode(u)
	}
	if u == 0 {
		return 0, 0
	}
	return mem.Ref(u), 1
}

// AddRoot registers a root reference: an object the mutator side holds alive
// outside the heap (for example a deque's anchor). Roots may be registered
// multiple times; each AddRoot needs a matching RemoveRoot.
func (c *Collector) AddRoot(r mem.Ref) { c.AddNamedRoot(r, "") }

// AddNamedRoot is AddRoot with a structure-kind label ("deque", "queue", ...)
// that diagnostic exports — the heap census, DOT dumps — attach to the root.
// The first non-empty name registered for a ref wins.
func (c *Collector) AddNamedRoot(r mem.Ref, name string) {
	if r == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.roots[r]
	if e == nil {
		e = &rootEntry{}
		c.roots[r] = e
	}
	e.count++
	if e.name == "" {
		e.name = name
	}
}

// RemoveRoot unregisters a root previously added with AddRoot.
func (c *Collector) RemoveRoot(r mem.Ref) {
	if r == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.roots[r]; e != nil {
		if e.count <= 1 {
			delete(c.roots, r)
		} else {
			e.count--
		}
	}
}

// Roots returns a snapshot of the registered roots and their registration
// counts (one registration per external handle).
func (c *Collector) Roots() map[mem.Ref]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[mem.Ref]int64, len(c.roots))
	for r, e := range c.roots {
		out[r] = int64(e.count)
	}
	return out
}

// NamedRoot is one root in a NamedRoots snapshot.
type NamedRoot struct {
	Count int64
	Name  string
}

// NamedRoots returns a snapshot of the registered roots with their
// registration counts and structure-kind labels.
func (c *Collector) NamedRoots() map[mem.Ref]NamedRoot {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[mem.Ref]NamedRoot, len(c.roots))
	for r, e := range c.roots {
		out[r] = NamedRoot{Count: int64(e.count), Name: e.name}
	}
	return out
}

// Result describes one collection pass.
type Result struct {
	// Marked is the number of live objects reachable from the roots.
	Marked int

	// Freed is the number of unreachable live objects reclaimed — with a
	// correct mutator these are exactly the cyclic-garbage objects LFRC
	// cannot reclaim on its own.
	Freed int

	// RCAdjusted counts survivor reference counts that were decremented
	// because a swept object pointed at them.
	RCAdjusted int
}

// Collect runs one stop-the-world mark–sweep pass and returns its result.
// The heap must be quiescent.
func (c *Collector) Collect() Result {
	c.mu.Lock()
	defer c.mu.Unlock()

	// Mark phase: BFS from the roots through registered pointer fields.
	marked := make(map[mem.Ref]bool, len(c.roots)*4)
	stack := make([]mem.Ref, 0, len(c.roots))
	for r := range c.roots {
		if !c.h.IsFreed(r) && !marked[r] {
			marked[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		d, err := c.h.Type(c.h.TypeOf(p))
		if err != nil {
			continue
		}
		for _, f := range d.PtrFields {
			t, _ := c.decodeCell(c.h.Load(c.h.FieldAddr(p, f)))
			if t == 0 || marked[t] || c.h.IsFreed(t) {
				continue
			}
			marked[t] = true
			stack = append(stack, t)
		}
	}

	// Sweep phase: gather unreachable live objects first, then adjust
	// survivor counts, then free.
	var garbage []mem.Ref
	c.h.Walk(func(r mem.Ref, freed bool) bool {
		if !freed && !marked[r] {
			garbage = append(garbage, r)
		}
		return true
	})

	res := Result{Marked: len(marked)}
	for _, g := range garbage {
		d, err := c.h.Type(c.h.TypeOf(g))
		if err != nil {
			continue
		}
		for _, f := range d.PtrFields {
			t, w := c.decodeCell(c.h.Load(c.h.FieldAddr(g, f)))
			if t == 0 || !marked[t] {
				continue // fellow garbage needs no bookkeeping
			}
			// Subtract the full weight the dying link held (its unspent
			// stash under split, exactly 1 under figure2), clamping at 0.
			a := c.h.RCAddr(t)
			for {
				old := c.h.Load(a)
				nw := uint64(0)
				if old > uint64(w) {
					nw = old - uint64(w)
				}
				if old == 0 || c.h.CAS(a, old, nw) {
					break
				}
			}
			res.RCAdjusted++
		}
	}
	for _, g := range garbage {
		if err := c.h.Free(g); err == nil {
			res.Freed++
		}
	}
	return res
}
