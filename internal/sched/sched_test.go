package sched

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"lfrc/internal/core"
	"lfrc/internal/dcas"
	"lfrc/internal/mem"
	"lfrc/internal/snark"
)

type world struct {
	h  *mem.Heap
	rc *core.RC
	ts snark.Types
}

func newWorld(t *testing.T, engine string) *world {
	t.Helper()
	h := mem.NewHeap()
	var e dcas.Engine
	if engine == "mcas" {
		e = dcas.NewMCAS(h)
	} else {
		e = dcas.NewLocking(h)
	}
	return &world{h: h, rc: core.New(h, e), ts: snark.MustRegisterTypes(h)}
}

func TestPoolExecutesEveryTaskOnce(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	for _, engine := range []string{"locking", "mcas"} {
		t.Run(engine, func(t *testing.T) {
			w := newWorld(t, engine)
			const n = 5000
			var counts [n]atomic.Int32
			p, err := New(w.rc, w.ts, func(_ *Worker, task uint64) error {
				counts[task].Add(1)
				return nil
			}, Config{Workers: 4})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			for i := uint64(0); i < n; i++ {
				if err := p.Submit(i); err != nil {
					t.Fatalf("Submit: %v", err)
				}
			}
			if err := p.Wait(); err != nil {
				t.Fatalf("Wait: %v", err)
			}
			for i := range counts {
				if got := counts[i].Load(); got != 1 {
					t.Fatalf("task %d executed %d times", i, got)
				}
			}
			s := p.Stats()
			if s.Executed != n || s.Submits != n {
				t.Errorf("stats = %+v, want %d executed/submitted", s, n)
			}
			p.Close()
			if got := w.h.Stats().LiveObjects; got != 0 {
				t.Errorf("LiveObjects = %d after Close, want 0", got)
			}
		})
	}
}

func TestForkJoinTaskTree(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	w := newWorld(t, "locking")

	// Task payload encodes remaining depth; depth 0 is a leaf.
	const depth = 12
	var leaves atomic.Int64
	p, err := New(w.rc, w.ts, func(wk *Worker, task uint64) error {
		if task == 0 {
			leaves.Add(1)
			return nil
		}
		if err := wk.Submit(task - 1); err != nil {
			return err
		}
		return wk.Submit(task - 1)
	}, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(depth); err != nil {
		t.Fatal(err)
	}
	if err := p.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if got, want := leaves.Load(), int64(1)<<depth; got != want {
		t.Errorf("leaves = %d, want %d", got, want)
	}
	if p.Stats().Steals == 0 {
		t.Log("note: no steals occurred (possible on an idle machine)")
	}
	p.Close()
	if got := w.h.Stats().LiveObjects; got != 0 {
		t.Errorf("LiveObjects = %d, want 0", got)
	}
}

func TestHandlerErrorStopsPool(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	w := newWorld(t, "locking")
	boom := errors.New("boom")
	p, err := New(w.rc, w.ts, func(_ *Worker, task uint64) error {
		if task == 13 {
			return boom
		}
		return nil
	}, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		if err := p.Submit(i); err != nil {
			break // pool may stop mid-submission
		}
	}
	if err := p.Wait(); !errors.Is(err, boom) {
		t.Errorf("Wait = %v, want boom", err)
	}
	if err := p.Submit(1); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("Submit after failure = %v, want ErrPoolClosed", err)
	}
	p.Close()
}

func TestSubmitAfterCloseFails(t *testing.T) {
	w := newWorld(t, "locking")
	p, err := New(w.rc, w.ts, func(_ *Worker, _ uint64) error { return nil }, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	if err := p.Submit(1); !errors.Is(err, ErrPoolClosed) {
		t.Errorf("Submit = %v, want ErrPoolClosed", err)
	}
	p.Close() // idempotent
}

func TestNilHandlerRejected(t *testing.T) {
	w := newWorld(t, "locking")
	if _, err := New(w.rc, w.ts, nil, Config{}); err == nil {
		t.Error("New accepted a nil handler")
	}
}

func TestWaitAllowsResubmission(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	w := newWorld(t, "locking")
	var total atomic.Int64
	p, err := New(w.rc, w.ts, func(_ *Worker, _ uint64) error {
		total.Add(1)
		return nil
	}, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		for i := uint64(0); i < 100; i++ {
			if err := p.Submit(i); err != nil {
				t.Fatal(err)
			}
		}
		if err := p.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if got := total.Load(); got != 300 {
		t.Errorf("total executed = %d, want 300", got)
	}
	p.Close()
}

func TestConcurrentSubmitters(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	w := newWorld(t, "locking")
	var executed atomic.Int64
	p, err := New(w.rc, w.ts, func(_ *Worker, _ uint64) error {
		executed.Add(1)
		return nil
	}, Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	const submitters, perS = 4, 500
	var wg sync.WaitGroup
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perS; i++ {
				if err := p.Submit(uint64(s*perS + i)); err != nil {
					t.Errorf("Submit: %v", err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := executed.Load(); got != submitters*perS {
		t.Errorf("executed = %d, want %d", got, submitters*perS)
	}
	p.Close()
	if got := w.h.Stats().LiveObjects; got != 0 {
		t.Errorf("LiveObjects = %d, want 0", got)
	}
}
