// Package sched is a work-stealing task pool built on the LFRC Snark
// deques — the application that motivated DCAS-based deques in the first
// place (Arora-Blumofe-Plaxton-style scheduling). Each worker owns a deque
// it uses as a LIFO stack (push/pop on the right), while idle workers steal
// from the opposite end (FIFO on the left), which preserves locality for
// the owner and steals the oldest — typically largest — tasks.
//
// The pool demonstrates the LFRC structures as an embedded substrate: all
// task-queue memory lives on the simulated manual heap and is reclaimed by
// reference counts, so Close tears the pool down to zero live objects with
// no garbage collector involved. Value claiming gives exactly-once task
// execution.
//
// Tasks are identified by uint64 payloads chosen by the caller (at most
// lfrc's MaxValue); the pool maps them to the registered handler. Tasks may
// submit further tasks (fork), and Wait blocks until the task graph
// quiesces.
package sched

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"lfrc/internal/core"
	"lfrc/internal/snark"
)

// Handler processes one task payload on some worker. It may call
// Pool.Submit to fork further tasks. A non-nil error stops the pool and is
// returned from Wait.
type Handler func(w *Worker, task uint64) error

// Config configures a Pool.
type Config struct {
	// Workers is the number of worker goroutines (default
	// runtime.GOMAXPROCS(0)).
	Workers int

	// StealTries bounds the random victim probes per idle round
	// (default: 2×Workers).
	StealTries int
}

// Pool is a work-stealing task pool.
type Pool struct {
	rc      *core.RC
	ts      snark.Types
	handler Handler

	workers []*Worker

	inFlight atomic.Int64 // submitted but not yet completed tasks
	stopped  atomic.Bool
	failure  atomic.Pointer[error]

	wg     sync.WaitGroup
	wake   chan struct{}
	stopCh chan struct{}
	closed bool

	stats poolCounters
}

// Worker is one scheduling context; handlers receive the worker that runs
// them and submit forked tasks through it for locality.
type Worker struct {
	pool *Pool
	id   int
	dq   *snark.Deque
	rng  *rand.Rand
}

// ID returns the worker's index.
func (w *Worker) ID() int { return w.id }

type poolCounters struct {
	executed atomic.Int64
	steals   atomic.Int64
	submits  atomic.Int64
}

// Stats is a snapshot of pool counters.
type Stats struct {
	// Executed counts completed tasks, Steals successful steals, and
	// Submits total submissions.
	Executed, Steals, Submits int64
}

// ErrPoolClosed is returned by Submit after Close.
var ErrPoolClosed = errors.New("sched: pool closed")

// New builds a pool whose task queues live on the given RC's heap. The
// snark types must already be registered on that heap.
func New(rc *core.RC, ts snark.Types, handler Handler, cfg Config) (*Pool, error) {
	if handler == nil {
		return nil, errors.New("sched: nil handler")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.StealTries <= 0 {
		cfg.StealTries = 2 * cfg.Workers
	}
	p := &Pool{
		rc:      rc,
		ts:      ts,
		handler: handler,
		wake:    make(chan struct{}, cfg.Workers),
		stopCh:  make(chan struct{}),
	}
	for i := 0; i < cfg.Workers; i++ {
		dq, err := snark.New(rc, ts, snark.WithValueClaiming())
		if err != nil {
			for _, w := range p.workers {
				w.dq.Close()
			}
			return nil, fmt.Errorf("sched: worker deque: %w", err)
		}
		p.workers = append(p.workers, &Worker{
			pool: p,
			id:   i,
			dq:   dq,
			rng:  rand.New(rand.NewSource(int64(i)*2654435761 + 1)),
		})
	}
	for _, w := range p.workers {
		p.wg.Add(1)
		go w.run(cfg.StealTries)
	}
	return p, nil
}

// Submit schedules a task on an arbitrary worker's deque. For forked tasks
// prefer Worker.Submit, which targets the forking worker's own deque.
func (p *Pool) Submit(task uint64) error {
	if p.stopped.Load() {
		return ErrPoolClosed
	}
	w := p.workers[int(task)%len(p.workers)]
	return p.submitTo(w, task)
}

// Submit schedules a forked task on this worker's own deque (LIFO end).
func (w *Worker) Submit(task uint64) error {
	return w.pool.submitTo(w, task)
}

func (p *Pool) submitTo(w *Worker, task uint64) error {
	p.inFlight.Add(1)
	if err := w.dq.PushRight(task); err != nil {
		p.inFlight.Add(-1)
		return err
	}
	p.stats.submits.Add(1)
	select {
	case p.wake <- struct{}{}:
	default:
	}
	return nil
}

// run is the worker loop: own work LIFO, then steal FIFO, then park.
func (w *Worker) run(stealTries int) {
	defer w.pool.wg.Done()
	p := w.pool
	for {
		if p.stopped.Load() {
			return
		}
		if v, ok := w.dq.PopRight(); ok {
			w.execute(v)
			continue
		}
		stolen := false
		for try := 0; try < stealTries; try++ {
			victim := p.workers[w.rng.Intn(len(p.workers))]
			if victim == w {
				continue
			}
			if v, ok := victim.dq.PopLeft(); ok {
				p.stats.steals.Add(1)
				w.execute(v)
				stolen = true
				break
			}
		}
		if stolen {
			continue
		}
		if p.inFlight.Load() > 0 {
			// Work exists somewhere but the probes missed it; spin
			// briefly rather than park.
			runtime.Gosched()
			continue
		}
		// Nothing anywhere: park until a submit or shutdown wakes us.
		// Stranding is impossible: Submit always sends a wake after
		// raising inFlight, and a woken worker re-checks inFlight
		// before parking again.
		select {
		case <-p.wake:
		case <-p.stopCh:
			return
		}
	}
}

func (w *Worker) execute(task uint64) {
	p := w.pool
	if err := p.handler(w, task); err != nil {
		e := err
		p.failure.CompareAndSwap(nil, &e)
		p.stopped.Store(true)
	}
	p.stats.executed.Add(1)
	p.inFlight.Add(-1)
}

// Wait blocks until every submitted task (including forks) has completed,
// or a handler failed. It does not close the pool; more work may be
// submitted afterwards.
func (p *Pool) Wait() error {
	for {
		if err := p.failure.Load(); err != nil {
			return *err
		}
		if p.inFlight.Load() == 0 {
			return nil
		}
		runtime.Gosched()
	}
}

// Stats returns a snapshot of the pool's counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Executed: p.stats.executed.Load(),
		Steals:   p.stats.steals.Load(),
		Submits:  p.stats.submits.Load(),
	}
}

// Close stops the workers and releases every deque. Pending tasks are
// discarded. Close is idempotent and must not race with Submit.
func (p *Pool) Close() {
	if p.closed {
		return
	}
	p.closed = true
	p.stopped.Store(true)
	close(p.stopCh)
	p.wg.Wait()
	for _, w := range p.workers {
		w.dq.Close()
	}
}
