// Package valois implements the CAS-only reference-counting scheme of
// Valois ("Lock-Free Linked Lists Using Compare-and-Swap", PODC 1995, with
// the corrections of Michael & Scott) applied to a Michael–Scott queue.
//
// This is the LFRC paper's foil (§1 and §5): because a CAS-only SafeRead
// increments a node's count in a separate step from reading the pointer, the
// increment can land after the node was reclaimed. Valois's scheme tolerates
// that only by making node memory *type-stable* — reclaimed nodes go onto a
// permanent free list and are never returned to the general heap, "thereby
// preventing the space consumption of a list from shrinking over time"
// (paper §5). Experiment E3 plots exactly this: the valois queue's live
// words ratchet up to the high-water mark and never come back down, while
// the LFRC queue's footprint tracks its contents.
//
// Reference counts live in each node's count cell in units of two, with the
// low bit as Valois's claim bit: a node whose count reaches zero is claimed
// by a single releaser (CAS 0 -> 1) and pushed onto the pool. Spurious
// increments from racing SafeReads are benign precisely because the cell is
// always a live count cell — the property the general heap cannot offer.
package valois

import (
	"fmt"
	"sync/atomic"

	"lfrc/internal/mem"
)

// Value is the payload type. Values must be at most mem.ValueMask.
type Value = uint64

// Node field indices.
const (
	fNext = 0 // next node (pointer)
	fV    = 1 // payload (scalar)
)

// Anchor field indices.
const (
	aHead = 0
	aTail = 1
)

// Types holds the heap type ids the queue uses; register once per heap.
type Types struct {
	Node   mem.TypeID
	Anchor mem.TypeID
}

// RegisterTypes registers the queue's node and anchor types on h.
func RegisterTypes(h *mem.Heap) (Types, error) {
	node, err := h.RegisterType(mem.TypeDesc{
		Name:      "valois.Node",
		NumFields: 2,
		PtrFields: []int{fNext},
	})
	if err != nil {
		return Types{}, fmt.Errorf("valois: register node: %w", err)
	}
	anchor, err := h.RegisterType(mem.TypeDesc{
		Name:      "valois.Anchor",
		NumFields: 2,
		PtrFields: []int{aHead, aTail},
	})
	if err != nil {
		return Types{}, fmt.Errorf("valois: register anchor: %w", err)
	}
	return Types{Node: node, Anchor: anchor}, nil
}

// MustRegisterTypes is RegisterTypes for static setup; it panics on error.
func MustRegisterTypes(h *mem.Heap) Types {
	ts, err := RegisterTypes(h)
	if err != nil {
		panic(err)
	}
	return ts
}

// Queue is a Michael–Scott queue reclaimed by Valois-style CAS-only
// reference counting over a type-stable node pool.
type Queue struct {
	h  *mem.Heap
	ts Types

	anchor mem.Ref
	headA  mem.Addr
	tailA  mem.Addr

	// pool is the permanent free list: a Treiber stack of claimed nodes
	// linked through their aux words, its head packing a pop counter and
	// a node address.
	pool          atomic.Uint64
	poolSize      atomic.Int64
	poolHighWater atomic.Int64
	nodesCreated  atomic.Int64

	closed bool
}

// New builds an empty queue with a dummy node.
func New(h *mem.Heap, ts Types) (*Queue, error) {
	q := &Queue{h: h, ts: ts}
	anchor, err := h.Alloc(ts.Anchor)
	if err != nil {
		return nil, fmt.Errorf("valois: allocate anchor: %w", err)
	}
	q.anchor = anchor
	q.headA = h.FieldAddr(anchor, aHead)
	q.tailA = h.FieldAddr(anchor, aTail)

	dummy, err := q.allocNode()
	if err != nil {
		return nil, fmt.Errorf("valois: allocate dummy: %w", err)
	}
	// The dummy is referenced by both Head and Tail: its local reference
	// becomes the Head link, and Tail adds one more.
	q.incRC(dummy)
	h.Store(q.headA, uint64(dummy))
	h.Store(q.tailA, uint64(dummy))
	return q, nil
}

func (q *Queue) rcA(n mem.Ref) mem.Addr   { return q.h.RCAddr(n) }
func (q *Queue) nextA(n mem.Ref) mem.Addr { return q.h.FieldAddr(n, fNext) }
func (q *Queue) vA(n mem.Ref) mem.Addr    { return q.h.FieldAddr(n, fV) }

// incRC adds one reference (two count units).
func (q *Queue) incRC(n mem.Ref) {
	a := q.rcA(n)
	for {
		old := q.h.Load(a)
		if q.h.CAS(a, old, old+2) {
			return
		}
	}
}

// release drops one reference; the releaser that takes the count to zero
// claims the node (CAS 0 -> 1), releases the reference held by the node's
// own next pointer — Valois's analogue of LFRCDestroy's recursion — and
// returns the node to the type-stable pool.
func (q *Queue) release(n mem.Ref) {
	if n == 0 {
		return
	}
	a := q.rcA(n)
	for {
		old := q.h.Load(a)
		if q.h.CAS(a, old, old-2) {
			if old-2 == 0 && q.h.CAS(a, 0, 1) {
				nx := mem.Ref(q.h.Load(q.nextA(n)))
				q.h.Store(q.nextA(n), 0)
				q.pushPool(n)
				q.release(nx)
			}
			return
		}
	}
}

// safeRead is Valois's SafeRead: load a shared pointer, conservatively
// increment the target's count, and validate that the pointer is unchanged;
// retry otherwise. The increment may hit a pooled (reclaimed) node — that is
// safe here, and only here, because nodes are type-stable.
func (q *Queue) safeRead(a mem.Addr) mem.Ref {
	for {
		p := mem.Ref(q.h.Load(a))
		if p == 0 {
			return 0
		}
		q.incRC(p)
		if mem.Ref(q.h.Load(a)) == p {
			return p
		}
		q.release(p)
	}
}

// allocNode recycles a pooled node or carves a new one. The returned node
// carries one (local) reference.
func (q *Queue) allocNode() (mem.Ref, error) {
	if n := q.popPool(); n != 0 {
		// The node sits claimed at count 2k+1 (k = racing spurious
		// SafeRead references). Add our reference, then clear the
		// claim bit atomically with a plain decrement — both survive
		// arbitrary concurrent spurious increments/releases.
		a := q.rcA(n)
		for {
			old := q.h.Load(a)
			if q.h.CAS(a, old, old+2-1) {
				break
			}
		}
		q.h.Store(q.nextA(n), 0)
		return n, nil
	}
	n, err := q.h.Alloc(q.ts.Node)
	if err != nil {
		return 0, err
	}
	// Fresh arena words: no thread can hold a stale reference, so a
	// plain store is safe exactly once.
	q.h.Store(q.rcA(n), 2)
	q.nodesCreated.Add(1)
	return n, nil
}

// pushPool adds a claimed node to the permanent pool.
func (q *Queue) pushPool(n mem.Ref) {
	for {
		old := q.pool.Load()
		q.h.Store(q.h.AuxAddr(n), old&0xFFFF_FFFF)
		if q.pool.CompareAndSwap(old, old&^uint64(0xFFFF_FFFF)|uint64(n)) {
			size := q.poolSize.Add(1)
			for {
				hw := q.poolHighWater.Load()
				if size <= hw || q.poolHighWater.CompareAndSwap(hw, size) {
					break
				}
			}
			return
		}
	}
}

// popPool removes a node from the pool, or returns 0 if it is empty.
func (q *Queue) popPool() mem.Ref {
	for {
		old := q.pool.Load()
		n := mem.Ref(old & 0xFFFF_FFFF)
		if n == 0 {
			return 0
		}
		next := q.h.Load(q.h.AuxAddr(n)) & 0xFFFF_FFFF
		cnt := (old >> 32) + 1
		if q.pool.CompareAndSwap(old, cnt<<32|next) {
			q.poolSize.Add(-1)
			return n
		}
	}
}

// Enqueue appends v at the tail.
func (q *Queue) Enqueue(v Value) error {
	if v > mem.ValueMask {
		return fmt.Errorf("valois: value %#x out of range", v)
	}
	n, err := q.allocNode()
	if err != nil {
		return fmt.Errorf("valois: %w", err)
	}
	q.h.Store(q.vA(n), v)

	for {
		t := q.safeRead(q.tailA)
		nx := q.safeRead(q.nextA(t))
		if nx == 0 {
			q.incRC(n) // prospective next link
			if q.h.CAS(q.nextA(t), 0, uint64(n)) {
				q.incRC(n) // prospective tail link
				if q.h.CAS(q.tailA, uint64(t), uint64(n)) {
					q.release(t) // tail cell's displaced reference
				} else {
					q.release(n) // compensate
				}
				q.release(t) // local
				q.release(n) // local
				return nil
			}
			q.release(n) // compensate failed link
		} else {
			// Tail lags: help swing it to nx.
			q.incRC(nx)
			if q.h.CAS(q.tailA, uint64(t), uint64(nx)) {
				q.release(t)
			} else {
				q.release(nx)
			}
			q.release(nx) // local
		}
		q.release(t) // local
	}
}

// Dequeue removes and returns the oldest value; ok is false when empty.
func (q *Queue) Dequeue() (v Value, ok bool) {
	for {
		hd := q.safeRead(q.headA)
		t := q.safeRead(q.tailA)
		nx := q.safeRead(q.nextA(hd))
		if hd == t {
			if nx == 0 {
				q.release(hd)
				q.release(t)
				return 0, false
			}
			q.incRC(nx)
			if q.h.CAS(q.tailA, uint64(t), uint64(nx)) {
				q.release(t)
			} else {
				q.release(nx)
			}
		} else if nx != 0 {
			value := q.h.Load(q.vA(nx))
			q.incRC(nx) // prospective head link
			if q.h.CAS(q.headA, uint64(hd), uint64(nx)) {
				q.release(hd) // head cell's displaced reference
				q.release(hd) // local
				q.release(t)
				q.release(nx)
				return value, true
			}
			q.release(nx) // compensate
		}
		q.release(hd)
		q.release(t)
		q.release(nx)
	}
}

// Close drains the queue and severs the anchor. Pooled nodes remain live
// forever — that is the scheme's documented cost. Must not run concurrently
// with other operations.
func (q *Queue) Close() {
	if q.closed {
		return
	}
	q.closed = true
	for {
		if _, ok := q.Dequeue(); !ok {
			break
		}
	}
	// Release the dummy's two anchor references, sending it to the pool.
	dummy := mem.Ref(q.h.Load(q.headA))
	q.h.Store(q.headA, 0)
	q.h.Store(q.tailA, 0)
	q.release(dummy)
	q.release(dummy)
	// The anchor itself is ordinary heap memory.
	_ = q.h.Free(q.anchor)
	q.anchor = 0
}

// PoolStats describes the type-stable pool's footprint.
type PoolStats struct {
	// Size is the number of nodes currently parked in the pool.
	Size int64

	// HighWater is the largest Size ever observed.
	HighWater int64

	// NodesCreated is the number of nodes ever carved from the arena;
	// none are ever returned to it.
	NodesCreated int64
}

// PoolStats returns a snapshot of the pool's accounting.
func (q *Queue) PoolStats() PoolStats {
	return PoolStats{
		Size:         q.poolSize.Load(),
		HighWater:    q.poolHighWater.Load(),
		NodesCreated: q.nodesCreated.Load(),
	}
}
