package valois

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"lfrc/internal/mem"
)

func newWorld(t *testing.T) (*mem.Heap, *Queue) {
	t.Helper()
	h := mem.NewHeap()
	q, err := New(h, MustRegisterTypes(h))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return h, q
}

func TestEmptyDequeue(t *testing.T) {
	_, q := newWorld(t)
	defer q.Close()
	if _, ok := q.Dequeue(); ok {
		t.Error("Dequeue on empty queue reported a value")
	}
}

func TestFIFOOrder(t *testing.T) {
	_, q := newWorld(t)
	defer q.Close()
	for v := Value(1); v <= 100; v++ {
		if err := q.Enqueue(v); err != nil {
			t.Fatalf("Enqueue: %v", err)
		}
	}
	for v := Value(1); v <= 100; v++ {
		got, ok := q.Dequeue()
		if !ok || got != v {
			t.Fatalf("Dequeue = (%d,%v), want (%d,true)", got, ok, v)
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Error("queue not empty at end")
	}
}

func TestQuickFIFOModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		_, q := newWorld(t)
		defer q.Close()

		var model []Value
		next := Value(1)
		for i := 0; i < 300; i++ {
			if rng.Intn(2) == 0 {
				if q.Enqueue(next) != nil {
					return false
				}
				model = append(model, next)
				next++
			} else {
				v, ok := q.Dequeue()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[0] {
						return false
					}
					model = model[1:]
				}
			}
		}
		for _, want := range model {
			v, ok := q.Dequeue()
			if !ok || v != want {
				return false
			}
		}
		_, ok := q.Dequeue()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPoolNeverShrinks pins the cost the LFRC paper criticizes in §1/§5:
// nodes reclaimed by the CAS-only scheme stay in the type-stable pool, so
// the heap footprint ratchets to the high-water mark even after the queue
// drains. (Contrast with msqueue.TestCloseReclaimsEverything.)
func TestPoolNeverShrinks(t *testing.T) {
	h, q := newWorld(t)

	const n = 1000
	for v := Value(0); v < n; v++ {
		if err := q.Enqueue(v); err != nil {
			t.Fatal(err)
		}
	}
	grown := h.Stats().LiveObjects
	for {
		if _, ok := q.Dequeue(); !ok {
			break
		}
	}

	// Every node is still live (in the pool), none returned to the heap.
	afterDrain := h.Stats().LiveObjects
	if afterDrain != grown {
		t.Errorf("LiveObjects after drain = %d, want unchanged %d", afterDrain, grown)
	}
	ps := q.PoolStats()
	if ps.Size < n {
		t.Errorf("pool size = %d, want at least %d drained nodes", ps.Size, n)
	}
	if got := h.Stats().Frees; got != 0 {
		t.Errorf("heap Frees = %d, want 0 (type-stable pool never frees)", got)
	}

	// Refilling reuses pooled nodes without growing the arena.
	created := q.PoolStats().NodesCreated
	for v := Value(0); v < n/2; v++ {
		if err := q.Enqueue(v); err != nil {
			t.Fatal(err)
		}
	}
	if got := q.PoolStats().NodesCreated; got != created {
		t.Errorf("refill carved %d new nodes, want 0 new", got-created)
	}
	q.Close()
}

// TestConcurrentExactSemantics checks multiset delivery under concurrency —
// the Valois scheme is safe (given type-stability), just space-hungry.
func TestConcurrentExactSemantics(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	h, q := newWorld(t)

	const producers, consumers, perP = 4, 4, 1500
	var (
		mu   sync.Mutex
		got  = make(map[Value]int)
		done atomic.Int64
		wg   sync.WaitGroup
	)
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer done.Add(1)
			for i := 0; i < perP; i++ {
				if err := q.Enqueue(Value(p*perP + i + 1)); err != nil {
					t.Errorf("Enqueue: %v", err)
					return
				}
			}
		}(p)
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v, ok := q.Dequeue()
				if ok {
					mu.Lock()
					got[v]++
					mu.Unlock()
					continue
				}
				if done.Load() == producers {
					if v, ok := q.Dequeue(); ok {
						mu.Lock()
						got[v]++
						mu.Unlock()
						continue
					}
					return
				}
				runtime.Gosched()
			}
		}()
	}
	wg.Wait()

	if len(got) != producers*perP {
		t.Errorf("got %d distinct values, want %d", len(got), producers*perP)
	}
	for v, n := range got {
		if n != 1 {
			t.Errorf("value %d delivered %d times", v, n)
		}
	}
	q.Close()

	hs := h.Stats()
	if hs.Corruptions != 0 || hs.DoubleFrees != 0 {
		t.Errorf("Corruptions=%d DoubleFrees=%d, want 0/0", hs.Corruptions, hs.DoubleFrees)
	}
}

// TestRefCountQuiescentAudit checks that after quiescence, every node's
// count equals twice the number of shared pointers to it (no claim bits on
// live nodes, no lost or extra references).
func TestRefCountQuiescentAudit(t *testing.T) {
	h, q := newWorld(t)
	defer q.Close()

	for v := Value(0); v < 50; v++ {
		if err := q.Enqueue(v); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		q.Dequeue()
	}

	// Count in-structure references: head cell, tail cell, and each
	// linked node's next pointer.
	refs := map[mem.Ref]int{}
	refs[mem.Ref(h.Load(q.headA))] += 2
	refs[mem.Ref(h.Load(q.tailA))] += 2
	for n := mem.Ref(h.Load(q.headA)); n != 0; n = mem.Ref(h.Load(q.nextA(n))) {
		if nx := mem.Ref(h.Load(q.nextA(n))); nx != 0 {
			refs[nx] += 2
		}
	}
	for n, want := range refs {
		if n == 0 {
			continue
		}
		if got := h.Load(q.rcA(n)); got != uint64(want) {
			t.Errorf("node %d count = %d, want %d", n, got, want)
		}
	}
}
