package workload

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestG1Shape(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	tab := RunG1(EngineLocking, 150*time.Millisecond)
	if len(tab.Rows) != 2 {
		t.Fatalf("G1 rows = %d, want 2:\n%s", len(tab.Rows), tab)
	}
	// Row 0: stop-the-world must actually have stopped the world.
	if pauses := cellInt(t, tab, 0, 4); pauses == 0 {
		t.Errorf("stw regime recorded no pauses:\n%s", tab)
	}
	stoppedPct := cell(t, tab, 0, 7)
	if stoppedPct == "0%" {
		t.Errorf("stw stopped%% = %s, want > 0:\n%s", stoppedPct, tab)
	}
	// Row 1: lfrc never stops the world.
	if got := cell(t, tab, 1, 7); got != "0%" {
		t.Errorf("lfrc stopped%% = %s, want 0%%", got)
	}
	if got := cellInt(t, tab, 1, 4); got != 0 {
		t.Errorf("lfrc pauses = %d, want 0", got)
	}
	// Both made progress.
	for r := 0; r < 2; r++ {
		if ops := cellFloat(t, tab, r, 2); ops <= 0 {
			t.Errorf("row %d ops/sec = %f", r, ops)
		}
	}
	if !strings.Contains(tab.Claim, "stop-the-world") {
		t.Errorf("claim text missing anchor: %q", tab.Claim)
	}
}
