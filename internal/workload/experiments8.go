package workload

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"lfrc"
)

// o2Mode is one ledger configuration of experiment O2.
type o2Mode struct {
	name string
	// every is the 1-in-n object sampling interval handed to the ledger via
	// ObservabilityOptions.LifecycleEvery; < 0 means no ledger at all (the
	// baseline).
	every int
}

var o2Modes = []o2Mode{
	{"baseline", -1},  // observer only, no ledger installed
	{"disabled", 0},   // ledger installed, object sampling off: fixed hot-path cost
	{"sampled", 1024}, // the default production setting
	{"dense", 64},     // every 64th object
	{"full", 1},       // every object tracked
}

// o2Run builds one system in the given mode, runs the balanced throughput
// workload, and returns the rate with the system (for its lifecycle stats).
func o2Run(kind EngineKind, every int, dur time.Duration) (float64, *lfrc.System, error) {
	opts := []lfrc.Option{lfrc.WithObservability(lfrc.ObservabilityOptions{SampleEvery: 64})}
	switch kind {
	case EngineMCAS:
		opts = append(opts, lfrc.WithEngine(lfrc.EngineMCAS))
	default:
		opts = append(opts, lfrc.WithEngine(lfrc.EngineLocking))
	}
	if every > 0 {
		opts = append(opts, lfrc.WithObservability(lfrc.ObservabilityOptions{LifecycleEvery: every}))
	} else if every == 0 {
		// Installed with object sampling off: the nil-sink tax alone.
		opts = append(opts, lfrc.WithObservability(lfrc.ObservabilityOptions{LifecycleEvery: -1}))
	}
	sys, err := lfrc.New(opts...)
	if err != nil {
		return 0, nil, err
	}
	d, err := sys.NewDeque()
	if err != nil {
		return 0, nil, err
	}
	const (
		workers = 4
		prefill = 64
	)
	res := RunThroughput(d, workers, dur, Balanced, prefill)
	d.Close()
	// Keep one run's GC debt from billing the next.
	runtime.GC()
	return res.OpsPerSec(), sys, nil
}

// RunO2 measures the lifecycle ledger's overhead on the balanced deque
// throughput workload. Every mode runs with the production flight-recorder
// configuration (1-in-64 op sampling) so only the ledger varies: none,
// installed-but-off, 1-in-1024 objects, 1-in-64 objects, and every object.
// The claim under test is that per-object diagnosis is affordable: the
// disabled ledger must be free (its hot-path cost is one atomic load on the
// sink's tracked-ref set) and default sampling must stay within a few
// percent of baseline.
//
// Measurement: throughput on a shared machine drifts by tens of percent
// across seconds — far more than the overheads under test — so absolute
// rates from different moments cannot be compared. Each mode is therefore
// measured as adjacent (baseline, mode) pairs: the two runs execute
// back-to-back so they see near-identical machine state, and the reported
// "vs baseline" is the median of the pairwise ratios.
func RunO2(kind EngineKind, dur time.Duration) *Table {
	t := &Table{
		ID:     "O2",
		Title:  "lifecycle ledger overhead: balanced deque throughput by object-sampling mode",
		Claim:  "per-object lifecycle diagnosis is affordable: the disabled ledger is free and 1-in-1024 object sampling stays within a few percent of baseline",
		Header: []string{"engine", "mode", "objects 1-in", "ops/sec", "vs baseline", "objects sampled", "tracked"},
	}
	// pairs of adjacent (baseline, mode) runs per mode.
	const pairs = 5

	// Warm up the process (page faults, scheduler, frequency) off the books.
	if _, _, err := o2Run(kind, -1, dur/4); err != nil {
		t.Notes = append(t.Notes, fmt.Sprintf("warmup FAILED: %v", err))
		return t
	}

	type acc struct {
		best   float64
		ratios []float64
		sys    *lfrc.System
	}
	accs := make([]acc, len(o2Modes))

	for i, m := range o2Modes {
		if m.every < 0 {
			continue // the baseline row is filled from the paired runs below
		}
		for p := 0; p < pairs; p++ {
			baseRate, baseSys, err := o2Run(kind, -1, dur)
			if err != nil {
				t.Notes = append(t.Notes, fmt.Sprintf("mode=baseline FAILED: %v", err))
				break
			}
			if baseRate > accs[0].best {
				accs[0].best, accs[0].sys = baseRate, baseSys
			}
			rate, sys, err := o2Run(kind, m.every, dur)
			if err != nil {
				t.Notes = append(t.Notes, fmt.Sprintf("mode=%s FAILED: %v", m.name, err))
				break
			}
			if baseRate > 0 {
				accs[i].ratios = append(accs[i].ratios, rate/baseRate)
			}
			if rate > accs[i].best {
				accs[i].best, accs[i].sys = rate, sys
			}
		}
	}

	for i, m := range o2Modes {
		a := accs[i]
		if a.sys == nil {
			continue
		}
		rel := "1.00x"
		if r, ok := median(a.ratios); ok {
			rel = fmt.Sprintf("%.2fx", r)
		}
		lc := a.sys.Stats().Lifecycle
		t.AddRow(kind.String(), m.name, m.every, a.best, rel,
			int64(lc.SampledObjects), lc.Tracked)
		SetCurrentSystem(a.sys)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("workers=4 prefill=64 mix=balanced; 'vs baseline' is the median ratio of %d adjacent (baseline, mode) run pairs, ops/sec the best run; all modes use 1-in-64 op tracing, only the object ledger varies", pairs),
		"'objects 1-in' -1 means no ledger, 0 means installed with object sampling off (an off ledger detaches from the recorder); disabled must sample zero objects",
	)
	return t
}

// median returns the middle paired ratio (mean of the middle two for even
// counts); ok is false for an empty slice.
func median(xs []float64) (float64, bool) {
	if len(xs) == 0 {
		return 0, false
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2], true
	} else {
		return (s[n/2-1] + s[n/2]) / 2, true
	}
}
