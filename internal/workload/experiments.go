package workload

import (
	"math/rand"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"lfrc/internal/mem"
)

// Scale globally multiplies experiment iteration counts; cmd/lfrcbench
// exposes it as -scale. 1 gives quick, CI-friendly runs.
type Scale int

func (s Scale) times(n int) int {
	if s < 1 {
		s = 1
	}
	return int(s) * n
}

// RunE1 reproduces the paper's §5 argument for DCAS: a CAS-only load
// protocol ("naive", the Valois approach without type-stable memory) writes
// to freed memory when the referent is freed between the pointer read and
// the count increment, while the DCAS-based LFRCLoad never does.
//
// The adversarial interleaving the paper describes — the loading thread is
// preempted inside its read-then-increment window while another thread
// swings the pointer and frees the old referent — is injected directly via
// the load hooks: on a fixed fraction of windows, the shared pointer is
// swung to a fresh object (freeing the displaced referent) before the load
// resumes. The identical injection is applied to both protocols; the DCAS
// protocol simply retries while the naive protocol stomps on poisoned
// memory. Natural (uninjected) concurrent churn from a second reader runs
// throughout.
func RunE1(kind EngineKind, scale Scale) *Table {
	t := &Table{
		ID:     "E1",
		Title:  "safe DCAS load vs naive CAS-only load under adversarial preemption",
		Claim:  "§5: with CAS alone \"there is a risk that the object will be freed before we increment the reference count\"; DCAS closes the window",
		Header: []string{"protocol", "engine", "loads", "injected swings", "poisoned rc updates", "heap corruptions", "double frees"},
		Notes: []string{
			"expected shape: naive > 0 corruption events, safe == 0 under the identical injected schedule",
		},
	}

	loadsPerRun := scale.times(20_000)
	for _, naive := range []bool{false, true} {
		env := NewEnv(kind)
		rc, h := env.RC, env.Heap
		holder, err := rc.NewObject(env.CellType)
		if err != nil {
			t.Notes = append(t.Notes, "setup failed: "+err.Error())
			return t
		}
		a := h.FieldAddr(holder, 0)
		seed, _ := rc.NewObject(env.SnarkTypes.SNode)
		rc.StoreAlloc(a, seed)

		// The injected adversary: every 4th window, swing the shared
		// pointer to a fresh object, freeing the displaced referent
		// (unless some reader still holds it counted).
		var windows, swings atomic.Int64
		inject := func(mem.Ref) {
			if windows.Add(1)%4 != 0 {
				return
			}
			n, err := rc.NewObject(env.SnarkTypes.SNode)
			if err != nil {
				return
			}
			rc.StoreAlloc(a, n)
			swings.Add(1)
		}
		rc.LoadHook = inject
		rc.NaiveHook = inject

		var (
			stop atomic.Bool
			wg   sync.WaitGroup
		)
		// A second reader supplies natural concurrent churn.
		wg.Add(1)
		go func() {
			defer wg.Done()
			var dst mem.Ref
			for !stop.Load() {
				// Release the previous reference first, as a loader
				// with no stake in the target (the paper's scenario).
				rc.Destroy(dst)
				dst = 0
				if naive {
					rc.NaiveLoad(a, &dst)
				} else {
					rc.Load(a, &dst)
				}
				runtime.Gosched()
			}
			rc.Destroy(dst)
		}()

		var dst mem.Ref
		for i := 0; i < loadsPerRun; i++ {
			rc.Destroy(dst)
			dst = 0
			if naive {
				rc.NaiveLoad(a, &dst)
			} else {
				rc.Load(a, &dst)
			}
		}
		rc.Destroy(dst)
		stop.Store(true)
		wg.Wait()

		name := "safe (LFRCLoad)"
		if naive {
			name = "naive (CAS-only)"
		}
		hs, rs := h.Stats(), rc.Stats()
		t.AddRow(name, kind.String(), rs.Loads, swings.Load(), rs.PoisonedRCUpdates, hs.Corruptions, hs.DoubleFrees)
	}
	return t
}

// RunE2 checks leak freedom (paper §1: "if the number of pointers is zero,
// then the reference count eventually becomes zero... so that it can be
// freed"): after a randomized concurrent workload and teardown, zero live
// objects remain for every structure.
func RunE2(kind EngineKind, scale Scale) *Table {
	t := &Table{
		ID:     "E2",
		Title:  "leak freedom after concurrent churn and teardown",
		Claim:  "§1: objects are eventually freed when no pointers remain (acyclic garbage)",
		Header: []string{"structure", "engine", "allocs", "frees", "live after close", "corruptions"},
		Notes:  []string{"expected shape: live after close == 0 for every structure"},
	}

	const workers = 4
	perWorker := scale.times(3000)

	run := func(name string, make func(env *Env) (func(op int, v uint64), func())) {
		env := NewEnv(kind)
		apply, closeFn := make(env)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w) + 99))
				for i := 0; i < perWorker; i++ {
					apply(rng.Intn(4), uint64(w)<<32|uint64(i)+1)
				}
			}(w)
		}
		wg.Wait()
		closeFn()
		hs := env.Heap.Stats()
		t.AddRow(name, kind.String(), hs.Allocs, hs.Frees, hs.LiveObjects, hs.Corruptions)
	}

	run("snark deque", func(env *Env) (func(int, uint64), func()) {
		d, _ := env.NewDeque()
		return func(op int, v uint64) {
			switch op {
			case 0:
				_ = d.PushLeft(v)
			case 1:
				_ = d.PushRight(v)
			case 2:
				d.PopLeft()
			default:
				d.PopRight()
			}
		}, d.Close
	})
	run("ms queue", func(env *Env) (func(int, uint64), func()) {
		q, _ := env.NewQueue()
		return func(op int, v uint64) {
			if op < 2 {
				_ = q.Enqueue(v)
			} else {
				q.Dequeue()
			}
		}, q.Close
	})
	run("treiber stack", func(env *Env) (func(int, uint64), func()) {
		s, _ := env.NewStack()
		return func(op int, v uint64) {
			if op < 2 {
				_ = s.Push(v)
			} else {
				s.Pop()
			}
		}, s.Close
	})
	return t
}

// RunE3 contrasts memory footprints (paper §1: LFRC "allows the memory
// consumption of the implementation to grow and shrink over time", unlike
// free-list schemes [19]): both queues run identical grow/drain phases and
// the live words on each heap are sampled after every phase.
func RunE3(kind EngineKind, scale Scale) *Table {
	t := &Table{
		ID:     "E3",
		Title:  "footprint over grow/drain phases: LFRC vs Valois type-stable pool",
		Claim:  "§1/§5: LFRC storage shrinks after drains; Valois's free list \"prevent[s] the space consumption of a list from shrinking over time\"",
		Header: []string{"phase", "lfrc live words", "valois live words"},
		Notes: []string{
			"expected shape: lfrc returns to its resting footprint after each drain; valois ratchets to the high-water mark",
		},
	}

	lfrcEnv := NewEnv(kind)
	lq, err := lfrcEnv.NewQueue()
	if err != nil {
		t.Notes = append(t.Notes, "setup failed: "+err.Error())
		return t
	}
	valEnv := NewEnv(kind)
	vq, err := valEnv.NewValoisQueue()
	if err != nil {
		t.Notes = append(t.Notes, "setup failed: "+err.Error())
		return t
	}

	big := scale.times(2000)
	phases := []struct {
		name string
		grow int // elements to add; 0 means drain completely
	}{
		{name: "start", grow: -1},
		{name: "grow to N", grow: big},
		{name: "drain", grow: 0},
		{name: "grow to N/2", grow: big / 2},
		{name: "drain", grow: 0},
	}
	for _, ph := range phases {
		switch {
		case ph.grow > 0:
			for i := 0; i < ph.grow; i++ {
				_ = lq.Enqueue(uint64(i + 1))
				_ = vq.Enqueue(uint64(i + 1))
			}
		case ph.grow == 0:
			for {
				if _, ok := lq.Dequeue(); !ok {
					break
				}
			}
			for {
				if _, ok := vq.Dequeue(); !ok {
					break
				}
			}
		}
		t.AddRow(ph.name, lfrcEnv.Heap.Stats().LiveWords, valEnv.Heap.Stats().LiveWords)
	}
	ps := vq.PoolStats()
	t.Notes = append(t.Notes,
		"valois pool high water: "+strconv.FormatInt(ps.HighWater, 10)+" nodes, none ever returned to the heap")
	lq.Close()
	vq.Close()
	return t
}
