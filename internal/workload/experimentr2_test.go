package workload

import (
	"testing"
	"time"
)

func TestRunR2Shape(t *testing.T) {
	tab := RunR2(EngineLocking, 40*time.Millisecond)
	if tab.ID != "R2" {
		t.Fatalf("ID = %q", tab.ID)
	}
	// Two workloads x two backends, in a fixed order.
	if len(tab.Rows) != 4 {
		t.Fatalf("got %d rows, want 4:\n%s", len(tab.Rows), tab)
	}
	wantBackend := []string{"lfrc", "epoch", "lfrc", "epoch"}
	for i, row := range tab.Rows {
		if row[1] != wantBackend[i] {
			t.Errorf("row %d backend = %q, want %q", i, row[1], wantBackend[i])
		}
		if row[2] == "0.0" {
			t.Errorf("row %d (%s on %s) measured zero throughput", i, row[0], row[1])
		}
	}
}
