package workload

import (
	"fmt"
	"sync/atomic"
	"time"

	"lfrc"
)

// current is the most recent System a workload experiment built and finished
// with; cmd/lfrcbench's -stats-json and -metrics flags read it. Stored
// atomically because the metrics mux reads it from HTTP handler goroutines
// while experiments swap it.
var current atomic.Pointer[lfrc.System]

// SetCurrentSystem publishes s as the system observability surfaces report
// on. Experiments that build a System through the public API call this with
// their final (quiescent) system.
func SetCurrentSystem(s *lfrc.System) { current.Store(s) }

// CurrentSystem returns the last published system, or nil if no experiment
// has published one yet.
func CurrentSystem() *lfrc.System { return current.Load() }

// o1Mode is one observer configuration of experiment O1.
type o1Mode struct {
	name string
	// sample is the 1-in-n trace sampling interval; < 0 means no observer
	// at all (the baseline).
	sample int
}

var o1Modes = []o1Mode{
	{"baseline", -1}, // no recorder installed
	{"disabled", 0},  // recorder installed, sampling off: fixed hot-path cost
	{"sampled", 64},  // the default production setting
	{"full", 1},      // every operation recorded
}

// RunO1 measures the flight recorder's overhead on the balanced deque
// throughput workload (the same workload experiment E4's healthy workers
// run): no recorder, recorder installed but disabled, default 1-in-64
// sampling, and full recording. The claim under test is that observability
// is affordable: the disabled and sampled modes must cost only a few percent
// of baseline throughput.
func RunO1(kind EngineKind, dur time.Duration) *Table {
	t := &Table{
		ID:     "O1",
		Title:  "flight recorder overhead: balanced deque throughput by observer mode",
		Claim:  "sampled lock-free tracing costs little enough to leave on: disabled and 1-in-64 modes stay within a few percent of baseline",
		Header: []string{"engine", "mode", "sample 1-in", "ops/sec", "vs baseline", "events recorded"},
	}
	const (
		workers = 4
		prefill = 64
	)

	var baseline float64
	for _, m := range o1Modes {
		opts := []lfrc.Option{}
		switch kind {
		case EngineMCAS:
			opts = append(opts, lfrc.WithEngine(lfrc.EngineMCAS))
		default:
			opts = append(opts, lfrc.WithEngine(lfrc.EngineLocking))
		}
		if m.sample > 0 {
			opts = append(opts, lfrc.WithObservability(lfrc.ObservabilityOptions{SampleEvery: m.sample}))
		} else if m.sample == 0 {
			// Installed with recording off: the fixed hot-path tax alone.
			opts = append(opts, lfrc.WithObservability(lfrc.ObservabilityOptions{SampleEvery: -1}))
		}
		sys, err := lfrc.New(opts...)
		if err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("mode=%s FAILED: %v", m.name, err))
			continue
		}
		d, err := sys.NewDeque()
		if err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("mode=%s FAILED: %v", m.name, err))
			continue
		}
		res := RunThroughput(d, workers, dur, Balanced, prefill)
		d.Close()

		rate := res.OpsPerSec()
		rel := "1.00x"
		if m.sample < 0 {
			baseline = rate
		} else if baseline > 0 {
			rel = fmt.Sprintf("%.2fx", rate/baseline)
		}
		tr := sys.Trace()
		t.AddRow(kind.String(), m.name, m.sample, rate, rel, int64(tr.Recorded))
		if m.sample == 1 {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"full-mode trace digest: load p99=%dns push_right p99=%dns retries p99=%d",
				tr.Latency["load"].P99, tr.Latency["push_right"].P99, tr.Retries.P99))
		}
		SetCurrentSystem(sys)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("workers=%d prefill=%d mix=balanced; 'sample 1-in' -1 means no recorder, 0 means installed but off", workers, prefill),
		"events recorded counts ring entries: baseline and disabled must record zero, full must exceed sampled",
	)
	return t
}
