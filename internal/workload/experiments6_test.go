package workload

import (
	"strings"
	"testing"
	"time"
)

func TestRunA3Quick(t *testing.T) {
	tab := RunA3(20 * time.Millisecond)
	if tab.ID != "A3" {
		t.Fatalf("ID = %q", tab.ID)
	}
	for _, note := range tab.Notes {
		if strings.Contains(note, "FAILED") {
			t.Errorf("cell failed: %s", note)
		}
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range tab.Rows {
		if got := row[len(row)-1]; got != "true" {
			t.Errorf("row %v: safety column = %q, want true", row, got)
		}
	}
	out := tab.String()
	if !strings.Contains(out, "unified System.Stats") || !strings.Contains(out, `"alloc"`) {
		t.Errorf("notes should embed the unified Stats JSON; got:\n%s", out)
	}
}
