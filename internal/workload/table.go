package workload

import (
	"fmt"
	"strings"
)

// Table is the uniform result format for experiment drivers: cmd/lfrcbench
// prints it, EXPERIMENTS.md embeds it.
type Table struct {
	// ID is the experiment identifier (E1..E9, A1, A2).
	ID string

	// Title is a one-line description.
	Title string

	// Claim quotes or paraphrases the paper claim under test.
	Claim string

	// Header names the columns.
	Header []string

	// Rows holds the measurements, one formatted cell per column.
	Rows [][]string

	// Notes carries caveats and the expected shape of the result.
	Notes []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table in aligned plain text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "claim: %s\n", t.Claim)
	}

	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavoured markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "**%s — %s**\n\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "Claim: %s\n\n", t.Claim)
	}
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n_%s_\n", n)
	}
	return b.String()
}
