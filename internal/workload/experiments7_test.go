package workload

import (
	"testing"
	"time"
)

// TestO1Shape locks experiment O1's structure and the recorder's behavioural
// facts: four observer modes per engine; baseline and disabled record zero
// events; full recording records more than 1-in-64 sampling, which records
// more than nothing. Timing claims (the ≤3% overhead acceptance number) are
// asserted only in EXPERIMENTS.md, where the measurement window is long
// enough to be stable.
func TestO1Shape(t *testing.T) {
	tab := RunO1(EngineLocking, 30*time.Millisecond)
	if len(tab.Rows) != 4 {
		t.Fatalf("O1 rows = %d, want 4:\n%s", len(tab.Rows), tab)
	}
	wantModes := []string{"baseline", "disabled", "sampled", "full"}
	for i, mode := range wantModes {
		if got := cell(t, tab, i, 1); got != mode {
			t.Errorf("row %d mode = %q, want %q", i, got, mode)
		}
		if rate := cellFloat(t, tab, i, 3); rate <= 0 {
			t.Errorf("%s ops/sec = %v, want > 0:\n%s", mode, rate, tab)
		}
	}
	baselineEvents := cellInt(t, tab, 0, 5)
	disabledEvents := cellInt(t, tab, 1, 5)
	sampledEvents := cellInt(t, tab, 2, 5)
	fullEvents := cellInt(t, tab, 3, 5)
	if baselineEvents != 0 || disabledEvents != 0 {
		t.Errorf("baseline/disabled recorded events: %d/%d, want 0/0", baselineEvents, disabledEvents)
	}
	if sampledEvents <= 0 {
		t.Errorf("sampled mode recorded %d events, want > 0", sampledEvents)
	}
	if fullEvents <= sampledEvents {
		t.Errorf("full mode recorded %d events, not above sampled %d", fullEvents, sampledEvents)
	}
	// O1 publishes its last (full-mode) system for -stats-json / -metrics.
	sys := CurrentSystem()
	if sys == nil {
		t.Fatal("RunO1 did not publish a current system")
	}
	if sys.Trace().Recorded == 0 {
		t.Error("published system has an empty trace; want the full-mode system")
	}
}
