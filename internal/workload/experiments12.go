package workload

import (
	"fmt"
	"time"

	"lfrc"
)

// o6Mode is one watchdog configuration of experiment O6.
type o6Mode struct {
	name string
	// watchdog is false for the baseline: timeline on at the production
	// cadence, rule engine disabled.
	watchdog bool
	// interval is the timeline cadence the watchdog rides.
	interval time.Duration
	// probeEvery is the census cross-check sampling period in ticks.
	probeEvery int
}

var o6Modes = []o6Mode{
	{"off", false, 100 * time.Millisecond, 0},
	{"default", true, 100 * time.Millisecond, lfrc.DefaultCensusProbeEvery},
	{"aggressive", true, 10 * time.Millisecond, 16},
}

// o6Rounds matches O4's regimen: interleaved round-robin rounds with per-mode
// medians, because the claim is a sub-2% effect on a host whose single runs
// swing more than that.
const o6Rounds = 5

// RunO6 measures the health watchdog's overhead on the balanced deque
// throughput workload. The baseline runs the timeline at its production
// cadence with the rule engine disabled, so the delta is the watchdog alone:
// one allocation-free rule evaluation per sample on the quiet path, plus the
// sampled census cross-check. The claim under test is that always-on health
// checking is free enough to never turn off — the default configuration must
// stay within 2% of watchdog-off.
func RunO6(kind EngineKind, dur time.Duration) *Table {
	t := &Table{
		ID:     "O6",
		Title:  "health-watchdog overhead: balanced deque throughput by rule-engine configuration",
		Claim:  "always-on health checking is affordable: the default watchdog stays within 2% of rules-off at the same telemetry cadence",
		Header: []string{"engine", "watchdog", "ops/sec", "vs off", "evals", "probes", "firings"},
	}
	const (
		workers = 4
		prefill = 64
	)

	rates := make([][]float64, len(o6Modes))
	stats := make([]lfrc.WatchdogStats, len(o6Modes))
	for round := 0; round < o6Rounds; round++ {
		for i, m := range o6Modes {
			opts := []lfrc.Option{
				lfrc.WithTimeline(lfrc.TimelineOptions{Interval: m.interval}),
			}
			switch kind {
			case EngineMCAS:
				opts = append(opts, lfrc.WithEngine(lfrc.EngineMCAS))
			default:
				opts = append(opts, lfrc.WithEngine(lfrc.EngineLocking))
			}
			if m.watchdog {
				opts = append(opts, lfrc.WithWatchdog(lfrc.WatchdogOptions{CensusProbeEvery: m.probeEvery}))
			} else {
				opts = append(opts, lfrc.WithWatchdog(lfrc.WatchdogOptions{Disabled: true}))
			}
			sys, err := lfrc.New(opts...)
			if err != nil {
				t.Notes = append(t.Notes, fmt.Sprintf("mode=%s FAILED: %v", m.name, err))
				continue
			}
			d, err := sys.NewDeque()
			if err != nil {
				sys.Close()
				t.Notes = append(t.Notes, fmt.Sprintf("mode=%s FAILED: %v", m.name, err))
				continue
			}
			res := RunThroughput(d, workers, dur, Balanced, prefill)
			d.Close()
			rates[i] = append(rates[i], res.OpsPerSec())
			stats[i] = sys.WatchdogStats()
			if round == o6Rounds-1 && i == len(o6Modes)-1 {
				// Publish the final system for -stats-json/-metrics.
				SetCurrentSystem(sys)
			} else {
				sys.Close()
			}
		}
	}

	var baseline float64
	for i, m := range o6Modes {
		if len(rates[i]) == 0 {
			continue
		}
		rate := o4Median(rates[i])
		rel := "1.00x"
		if !m.watchdog {
			baseline = rate
		} else if baseline > 0 {
			rel = fmt.Sprintf("%.2fx", rate/baseline)
		}
		t.AddRow(kind.String(), m.name, rate, rel,
			int64(stats[i].Evals), int64(stats[i].CensusProbes), int64(stats[i].Firings))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("workers=%d prefill=%d mix=balanced; 'off' keeps the timeline at 100ms but disables the rule engine", workers, prefill),
		"'default' = 100ms cadence, census probe every 64 ticks; 'aggressive' = 10ms cadence, probe every 16",
		fmt.Sprintf("ops/sec is the median of %d interleaved rounds per mode (single runs swing several %% on a shared host)", o6Rounds),
		"evals/probes/firings are from the last round; a healthy workload fires nothing",
	)
	return t
}
