package workload

import (
	"fmt"
	"math"
	"time"
)

// Histogram is a log-scale latency histogram: bucket i covers durations in
// [2^i, 2^(i+1)) nanoseconds. It is not safe for concurrent use; give each
// worker its own and Merge.
type Histogram struct {
	buckets [48]int64
	count   int64
	max     time.Duration
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := 0
	if d > 0 {
		i = int(math.Log2(float64(d.Nanoseconds()))) + 1
		if i < 0 {
			i = 0
		}
		if i >= len(h.buckets) {
			i = len(h.buckets) - 1
		}
	}
	h.buckets[i]++
	h.count++
	if d > h.max {
		h.max = d
	}
}

// Merge adds other's samples into h.
func (h *Histogram) Merge(other *Histogram) {
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
	h.count += other.count
	if other.max > h.max {
		h.max = other.max
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.count }

// Max returns the largest observed duration.
func (h *Histogram) Max() time.Duration { return h.max }

// Quantile returns an upper bound for the q-quantile (0 < q <= 1): the top
// of the bucket containing it.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	target := int64(q * float64(h.count))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i, c := range h.buckets {
		seen += c
		if seen >= target {
			if i == 0 {
				return time.Nanosecond
			}
			return time.Duration(int64(1) << uint(i))
		}
	}
	return h.max
}

// String summarizes the distribution.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d p50=%v p99=%v p999=%v max=%v",
		h.count, h.Quantile(0.50), h.Quantile(0.99), h.Quantile(0.999), h.max)
}
