package workload

import "lfrc/internal/hist"

// Histogram is a log-scale latency histogram: bucket i covers durations in
// [2^i, 2^(i+1)) nanoseconds. It is not safe for concurrent use; give each
// worker its own and Merge.
//
// It is an alias for the shared hist.Duration, which fixed this package's
// historical off-by-one (a duration in [2^k, 2^(k+1)) used to land in bucket
// k+1) and added the p50/p99/max Summary digest and the mergeable concurrent
// variant the flight recorder uses.
type Histogram = hist.Duration
