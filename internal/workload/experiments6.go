package workload

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lfrc"
)

// RunA3 measures the sharded allocation fast path end to end, through the
// public System API. The workload is deliberately allocator-bound: each
// worker pushes a burst onto a shared Treiber stack (every push allocates a
// node) and then pops it back (every pop frees one), so free-list and bump
// traffic dominate. The sweep contrasts one allocation shard — the old
// single-free-list, global-cursor layout — against GOMAXPROCS shards, on
// both engines, from 1 worker up to GOMAXPROCS workers.
//
// Safety is checked, not assumed: after each cell the stack is closed and
// the run fails loudly unless allocs equal frees, nothing was double-freed
// or corrupted, and System.Audit comes back clean. The notes embed the
// unified System.Stats JSON for the busiest sharded cell, which is also what
// cmd/lfrcbench prints — one stats surface for humans and tools.
func RunA3(dur time.Duration) *Table {
	procs := runtime.GOMAXPROCS(0)
	t := &Table{
		ID:     "A3",
		Title:  "sharded allocation fast path: alloc-heavy push/pop throughput",
		Claim:  "striping free lists and the bump cursor across shards removes the allocator's shared CAS hot spots without weakening the heap's safety checks",
		Header: []string{"engine", "workers", "shards", "ops/sec", "recycle %", "steal-free ok"},
	}

	workerCounts := []int{}
	for w := 1; w <= procs; w *= 2 {
		workerCounts = append(workerCounts, w)
	}
	if last := workerCounts[len(workerCounts)-1]; last != procs {
		workerCounts = append(workerCounts, procs)
	}

	var busiestStats string
	for _, kind := range Engines {
		for _, workers := range workerCounts {
			for _, shards := range []int{1, procs} {
				ops, stats, err := runA3Cell(kind, workers, shards, dur)
				if err != nil {
					t.Notes = append(t.Notes, fmt.Sprintf("engine=%s workers=%d shards=%d FAILED: %v", kind, workers, shards, err))
					continue
				}
				recyclePct := 0.0
				if stats.Heap.Allocs > 0 {
					recyclePct = 100 * float64(stats.Heap.Recycles) / float64(stats.Heap.Allocs)
				}
				safe := stats.Heap.Allocs == stats.Heap.Frees &&
					stats.Heap.DoubleFrees == 0 && stats.Heap.Corruptions == 0
				t.AddRow(kind.String(), workers, shards,
					float64(ops)/dur.Seconds(),
					fmt.Sprintf("%.1f%%", recyclePct),
					safe)
				if kind == EngineLocking && workers == procs && shards == procs {
					if raw, err := json.Marshal(stats); err == nil {
						busiestStats = string(raw)
					}
				}
			}
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("GOMAXPROCS=%d; shards=1 reproduces the pre-sharding allocator layout (one free list per size, every bump on the global cursor)", procs),
		"every cell verifies allocs==frees, zero double frees, zero poison corruptions, and a clean System.Audit before being reported",
	)
	if busiestStats != "" {
		t.Notes = append(t.Notes, "unified System.Stats (locking engine, busiest sharded cell): "+busiestStats)
	}
	return t
}

// runA3Cell runs one configuration and returns total push+pop operations and
// the system's final stats snapshot. shards <= 0 keeps the default sharding;
// extra options (experiment R3 passes WithRCStrategy) are appended last.
func runA3Cell(kind EngineKind, workers, shards int, dur time.Duration, extra ...lfrc.Option) (int64, lfrc.Stats, error) {
	var engine lfrc.Engine
	switch kind {
	case EngineMCAS:
		engine = lfrc.EngineMCAS
	default:
		engine = lfrc.EngineLocking
	}
	opts := []lfrc.Option{lfrc.WithEngine(engine)}
	if shards > 0 {
		opts = append(opts, lfrc.WithAllocShards(shards))
	}
	opts = append(opts, extra...)
	sys, err := lfrc.New(opts...)
	if err != nil {
		return 0, lfrc.Stats{}, err
	}
	st, err := sys.NewStack()
	if err != nil {
		return 0, lfrc.Stats{}, err
	}

	const burst = 64
	var (
		stop atomic.Bool
		wg   sync.WaitGroup
		ops  atomic.Int64
		werr atomic.Value
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var n int64
			for !stop.Load() {
				for i := 0; i < burst; i++ {
					if err := st.Push(lfrc.Value(w)<<32 | lfrc.Value(i)); err != nil {
						werr.Store(err)
						stop.Store(true)
						return
					}
				}
				for i := 0; i < burst; i++ {
					if _, ok := st.Pop(); !ok {
						break
					}
				}
				n += 2 * burst
			}
			ops.Add(n)
		}(w)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	if err, _ := werr.Load().(error); err != nil {
		return 0, lfrc.Stats{}, err
	}

	st.Close()
	st.Close() // idempotence is part of the contract under test

	stats := sys.Stats()
	if stats.Heap.Allocs != stats.Heap.Frees+stats.Heap.LiveObjects {
		return 0, stats, fmt.Errorf("conservation violated: allocs %d != frees %d + live %d",
			stats.Heap.Allocs, stats.Heap.Frees, stats.Heap.LiveObjects)
	}
	if stats.Heap.LiveObjects != 0 {
		return 0, stats, fmt.Errorf("%d objects leaked after Close", stats.Heap.LiveObjects)
	}
	if stats.Heap.DoubleFrees != 0 || stats.Heap.Corruptions != 0 {
		return 0, stats, fmt.Errorf("heap damage: %d double frees, %d corruptions",
			stats.Heap.DoubleFrees, stats.Heap.Corruptions)
	}
	if audit := sys.Audit(); len(audit) != 0 {
		return 0, stats, fmt.Errorf("audit: %v", audit)
	}
	SetCurrentSystem(sys)
	return ops.Load(), stats, nil
}
