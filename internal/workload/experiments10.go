package workload

import (
	"fmt"
	"sort"
	"time"

	"lfrc"
)

// o4Mode is one timeline configuration of experiment O4.
type o4Mode struct {
	name string
	// interval is the sampler cadence; < 0 means the timeline is off
	// entirely (the baseline).
	interval time.Duration
}

var o4Modes = []o4Mode{
	{"off", -1},
	{"1s", time.Second},
	{"100ms", 100 * time.Millisecond}, // the default production cadence
	{"10ms", 10 * time.Millisecond},
}

// o4Rounds is how many times each mode is measured. Rounds are interleaved
// round-robin (off, 1s, 100ms, 10ms, off, ...) so slow host-load drift hits
// every mode equally, and the table reports per-mode medians: on a noisy
// shared host single runs swing by several percent, which would swamp a
// sub-1% effect.
const o4Rounds = 5

// RunO4 measures the telemetry timeline's overhead on the balanced deque
// throughput workload (the same workload O1 judges the flight recorder on):
// timeline off, and sampling at 1s, the default 100ms, and an aggressive
// 10ms. The claim under test is that continuous telemetry is free enough to
// leave on: capture is read-only against the striped counters and allocates
// nothing, so even the 10ms cadence spends only ~100 sub-microsecond
// snapshots per second of run.
func RunO4(kind EngineKind, dur time.Duration) *Table {
	t := &Table{
		ID:     "O4",
		Title:  "timeline sampler overhead: balanced deque throughput by capture cadence",
		Claim:  "continuous telemetry is affordable at production cadence: the default 100ms interval stays within 1% of timeline-off",
		Header: []string{"engine", "timeline", "ops/sec", "vs off", "samples", "drops"},
	}
	const (
		workers = 4
		prefill = 64
	)

	rates := make([][]float64, len(o4Modes))
	stats := make([]lfrc.TimelineStats, len(o4Modes))
	for round := 0; round < o4Rounds; round++ {
		for i, m := range o4Modes {
			opts := []lfrc.Option{}
			switch kind {
			case EngineMCAS:
				opts = append(opts, lfrc.WithEngine(lfrc.EngineMCAS))
			default:
				opts = append(opts, lfrc.WithEngine(lfrc.EngineLocking))
			}
			if m.interval >= 0 {
				opts = append(opts, lfrc.WithTimeline(lfrc.TimelineOptions{Interval: m.interval}))
			}
			sys, err := lfrc.New(opts...)
			if err != nil {
				t.Notes = append(t.Notes, fmt.Sprintf("mode=%s FAILED: %v", m.name, err))
				continue
			}
			d, err := sys.NewDeque()
			if err != nil {
				sys.Close()
				t.Notes = append(t.Notes, fmt.Sprintf("mode=%s FAILED: %v", m.name, err))
				continue
			}
			res := RunThroughput(d, workers, dur, Balanced, prefill)
			d.Close()
			rates[i] = append(rates[i], res.OpsPerSec())
			stats[i] = sys.TimelineStats()
			if round == o4Rounds-1 && i == len(o4Modes)-1 {
				// Publish the final system for -stats-json/-metrics; every
				// other one is done with.
				SetCurrentSystem(sys)
			} else {
				sys.Close()
			}
		}
	}

	var baseline float64
	for i, m := range o4Modes {
		if len(rates[i]) == 0 {
			continue
		}
		rate := o4Median(rates[i])
		rel := "1.00x"
		if m.interval < 0 {
			baseline = rate
		} else if baseline > 0 {
			rel = fmt.Sprintf("%.2fx", rate/baseline)
		}
		t.AddRow(kind.String(), m.name, rate, rel, int64(stats[i].Captures), int64(stats[i].Dropped))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("workers=%d prefill=%d mix=balanced; 'timeline off' builds the system without WithTimeline", workers, prefill),
		fmt.Sprintf("ops/sec is the median of %d interleaved rounds per mode (single runs swing several %% on a shared host)", o4Rounds),
		"samples/drops are from the last round; drops counts wraparound evictions (expected 0 at these durations)",
	)
	return t
}

func o4Median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}
