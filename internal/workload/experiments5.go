package workload

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"lfrc/internal/gcsim"
	"lfrc/internal/snark"
)

// RunG1 contrasts the two reclamation regimes the paper positions against
// each other (§1, §6): the same deque workload runs once on a
// stop-the-world-collected heap (the original GC-dependent Snark with a
// periodic tracing collector that excludes all mutators) and once under
// LFRC. The table reports throughput, operation-latency percentiles, and
// the collector's pause profile.
func RunG1(kind EngineKind, dur time.Duration) *Table {
	t := &Table{
		ID:     "G1",
		Title:  "stop-the-world GC vs LFRC under identical deque churn",
		Claim:  "§1: GC environments \"employ excessive synchronization, such as locking and/or stop-the-world mechanisms\"; §6: a delayed collector delays allocation",
		Header: []string{"regime", "engine", "ops/sec", "op p50", "stw pauses", "max pause", "stopped time", "stopped %"},
		Notes: []string{
			"expected shape: stw is cheaper per op (no counts) but spends a growing fraction of wall time with every mutator stalled; lfrc never stops the world",
			"op-latency tails are omitted: on a 1-CPU host scheduler preemption noise dominates them for both regimes",
		},
	}
	const workers = 4

	type opFn func(rng *rand.Rand, v *uint64)
	runSide := func(op opFn) (ops int64, hist *Histogram) {
		var (
			stop  atomic.Bool
			wg    sync.WaitGroup
			hists = make([]Histogram, workers)
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w) + 3))
				v := uint64(w)<<32 + 1
				for !stop.Load() {
					start := time.Now()
					op(rng, &v)
					hists[w].Observe(time.Since(start))
				}
			}(w)
		}
		time.Sleep(dur)
		stop.Store(true)
		wg.Wait()
		total := &Histogram{}
		for i := range hists {
			total.Merge(&hists[i])
		}
		return total.Count(), total
	}

	// Stop-the-world side.
	{
		env := NewEnv(kind)
		world := gcsim.NewWorld(env.Heap, env.Engine)
		ts := gcsim.MustRegisterTypes(env.Heap)
		d, err := gcsim.New(world, ts)
		if err != nil {
			t.Notes = append(t.Notes, "setup failed: "+err.Error())
			return t
		}
		gcStop := make(chan struct{})
		gcDone := make(chan struct{})
		go func() {
			defer close(gcDone)
			ticker := time.NewTicker(10 * time.Millisecond)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					world.Collect()
				case <-gcStop:
					return
				}
			}
		}()
		ops, hist := runSide(func(rng *rand.Rand, v *uint64) {
			switch rng.Intn(4) {
			case 0:
				_ = d.PushLeft(*v)
				*v++
			case 1:
				_ = d.PushRight(*v)
				*v++
			case 2:
				d.PopLeft()
			default:
				d.PopRight()
			}
		})
		close(gcStop)
		<-gcDone

		pauses := world.Pauses()
		var maxPause, totalPause time.Duration
		for _, p := range pauses {
			totalPause += p
			if p > maxPause {
				maxPause = p
			}
		}
		t.AddRow("stop-the-world", kind.String(),
			float64(ops)/dur.Seconds(),
			hist.Quantile(0.50),
			len(pauses), maxPause.Round(time.Microsecond),
			totalPause.Round(time.Microsecond),
			fmt.Sprintf("%.0f%%", 100*totalPause.Seconds()/dur.Seconds()))
	}

	// LFRC side.
	{
		env := NewEnv(kind)
		d, err := env.NewDeque(snark.WithValueClaiming())
		if err != nil {
			t.Notes = append(t.Notes, "setup failed: "+err.Error())
			return t
		}
		ops, hist := runSide(func(rng *rand.Rand, v *uint64) {
			switch rng.Intn(4) {
			case 0:
				_ = d.PushLeft(*v)
				*v++
			case 1:
				_ = d.PushRight(*v)
				*v++
			case 2:
				d.PopLeft()
			default:
				d.PopRight()
			}
		})
		t.AddRow("lfrc", kind.String(),
			float64(ops)/dur.Seconds(),
			hist.Quantile(0.50),
			0, "-", "-", "0%")
		d.Close()
	}
	return t
}
