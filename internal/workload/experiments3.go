package workload

import (
	"fmt"
	"math/rand"
	"time"

	"lfrc/internal/core"
	"lfrc/internal/gcdep"
	"lfrc/internal/gctrace"
	"lfrc/internal/mem"
	"lfrc/internal/snark"
)

// RunE7 demonstrates the methodology's Step 3 (paper §3, §4): with the
// original self-pointer sentinels every pop strands a garbage cycle that
// reference counting cannot reclaim; the null-pointer change eliminates the
// leak entirely.
func RunE7(kind EngineKind, scale Scale) *Table {
	t := &Table{
		ID:     "E7",
		Title:  "garbage cycles from sentinel self-pointers vs Step-3 null sentinels",
		Claim:  "§3 step 3: \"the reference counts of nodes in a garbage cycle will remain non-zero forever\"",
		Header: []string{"sentinel convention", "engine", "pushes", "pops", "objects leaked after close"},
		Notes: []string{
			"expected shape: self-pointer sentinels leak proportionally to pops; null sentinels leak exactly 0",
		},
	}
	n := scale.times(500)

	for _, cyclic := range []bool{true, false} {
		env := NewEnv(kind)
		var opts []snark.Option
		if cyclic {
			opts = append(opts, snark.WithCyclicSentinels())
		}
		d, err := env.NewDeque(opts...)
		if err != nil {
			t.Notes = append(t.Notes, "setup failed: "+err.Error())
			return t
		}
		for i := 0; i < n; i++ {
			_ = d.PushRight(uint64(i + 1))
		}
		pops := 0
		for {
			if _, ok := d.PopRight(); !ok {
				break
			}
			pops++
		}
		d.Close()

		name := "null (Step 3 applied)"
		if cyclic {
			name = "self-pointer (original)"
		}
		t.AddRow(name, kind.String(), n, pops, env.Heap.Stats().LiveObjects)
	}
	return t
}

// RunE8 exercises the paper's §7 proposal: an occasional stop-the-world
// tracing pass reclaims the cyclic garbage LFRC strands, while sparing the
// live structure.
func RunE8(kind EngineKind, scale Scale) *Table {
	t := &Table{
		ID:     "E8",
		Title:  "backup tracing collector on stranded sentinel cycles",
		Claim:  "§7: \"integrate a tracing collector that can be invoked occasionally in order to identify and collect cyclic garbage\"",
		Header: []string{"stage", "live objects", "freed by trace"},
		Notes: []string{
			"expected shape: trace reclaims (nearly) all stranded cycles; a second trace finds nothing; live deque survives intact",
		},
	}
	n := scale.times(500)

	env := NewEnv(kind)
	d, err := env.NewDeque(snark.WithCyclicSentinels())
	if err != nil {
		t.Notes = append(t.Notes, "setup failed: "+err.Error())
		return t
	}
	gc := gctrace.New(env.Heap)
	gc.SetDecoder(env.RC.DecodeLink)
	gc.AddRoot(d.Anchor())

	for i := 0; i < n; i++ {
		_ = d.PushRight(uint64(i + 1))
	}
	for i := 0; i < n/2; i++ {
		d.PopRight()
	}
	t.AddRow("after churn (half popped)", env.Heap.Stats().LiveObjects, "-")

	res := gc.Collect()
	t.AddRow("after first trace", env.Heap.Stats().LiveObjects, res.Freed)

	res2 := gc.Collect()
	t.AddRow("after second trace", env.Heap.Stats().LiveObjects, res2.Freed)

	// Verify the survivors are exactly the live elements.
	drained := 0
	for {
		if _, ok := d.PopLeft(); !ok {
			break
		}
		drained++
	}
	t.Notes = append(t.Notes, fmt.Sprintf("live elements drained after traces: %d (want %d)", drained, n-n/2))
	return t
}

// RunE9 checks that the LFRC transformation preserves the deque's
// sequential semantics (paper §3/§4: the methodology is a semantics-
// preserving code transformation): the same operation script runs on the
// GC-dependent original and the GC-independent transform, and every result
// must match.
func RunE9(kind EngineKind, scale Scale) *Table {
	t := &Table{
		ID:     "E9",
		Title:  "behavioural equivalence of original and transformed Snark",
		Claim:  "§4: Steps 1..6 mechanically transform the implementation without changing its semantics",
		Header: []string{"scripts", "ops per script", "engine", "mismatches"},
		Notes:  []string{"expected shape: 0 mismatches"},
	}
	scripts := scale.times(50)
	const opsPerScript = 400

	mismatches := 0
	for s := 0; s < scripts; s++ {
		env := NewEnv(kind)
		ld, err := env.NewDeque()
		if err != nil {
			t.Notes = append(t.Notes, "setup failed: "+err.Error())
			return t
		}
		gd := gcdep.New()

		rng := rand.New(rand.NewSource(int64(s) + 1))
		next := uint64(1)
		for i := 0; i < opsPerScript; i++ {
			switch rng.Intn(4) {
			case 0:
				_ = ld.PushLeft(next)
				gd.PushLeft(next)
				next++
			case 1:
				_ = ld.PushRight(next)
				gd.PushRight(next)
				next++
			case 2:
				lv, lok := ld.PopLeft()
				gv, gok := gd.PopLeft()
				if lok != gok || lv != gv {
					mismatches++
				}
			case 3:
				lv, lok := ld.PopRight()
				gv, gok := gd.PopRight()
				if lok != gok || lv != gv {
					mismatches++
				}
			}
		}
		// Drain both; remaining sequences must agree.
		for {
			lv, lok := ld.PopLeft()
			gv, gok := gd.PopLeft()
			if lok != gok || lv != gv {
				mismatches++
			}
			if !lok && !gok {
				break
			}
		}
		ld.Close()
	}
	t.AddRow(scripts, opsPerScript, kind.String(), mismatches)
	return t
}

// RunA1 is the engine ablation: identical DCAS/CAS traffic on the modeled
// hardware DCAS vs the lock-free software MCAS, plus a contended deque
// comparison. It quantifies what the paper's hardware assumption is worth.
func RunA1(dur time.Duration) *Table {
	t := &Table{
		ID:     "A1",
		Title:  "ablation: modeled hardware DCAS (locking) vs software MCAS",
		Claim:  "§1: the paper assumes hardware DCAS; software MCAS from CAS is the commodity fallback and costs more",
		Header: []string{"benchmark", "locking", "mcas", "mcas/locking"},
		Notes: []string{
			"expected shape: mcas pays 2-5x per DCAS (descriptor install/resolve/remove), less on CAS-only paths",
		},
	}

	measure := func(kind EngineKind, contended bool) float64 {
		env := NewEnv(kind)
		d, err := env.NewDeque()
		if err != nil {
			return 0
		}
		defer d.Close()
		workers := 1
		if contended {
			workers = 4
		}
		res := RunThroughput(SnarkAdapter{D: d}, workers, dur, Balanced, 128)
		return res.OpsPerSec()
	}

	for _, row := range []struct {
		name      string
		contended bool
	}{
		{name: "deque ops/sec (1 worker)", contended: false},
		{name: "deque ops/sec (4 workers)", contended: true},
	} {
		l := measure(EngineLocking, row.contended)
		m := measure(EngineMCAS, row.contended)
		ratio := "-"
		if l > 0 {
			ratio = fmt.Sprintf("%.2f", m/l)
		}
		t.AddRow(row.name, fmt.Sprintf("%.0f", l), fmt.Sprintf("%.0f", m), ratio)
	}
	return t
}

// RunA2 is the incremental-destroy ablation (paper §7: avoid "long delays
// when a thread destroys the last pointer to a large structure"): dropping a
// K-node list with different per-call budgets, measuring the longest single
// Destroy pause and the total reclamation time.
func RunA2(kind EngineKind, scale Scale) *Table {
	t := &Table{
		ID:     "A2",
		Title:  "ablation: eager vs incremental destruction of a large structure",
		Claim:  "§7: incremental collection \"would avoid long delays when a thread destroys the last pointer to a large structure\"",
		Header: []string{"budget", "nodes", "max pause", "total reclaim time", "drain calls"},
		Notes: []string{
			"expected shape: eager = one pause ~ total time; budgets bound the pause at modest total overhead",
		},
	}
	nodes := scale.times(100_000)

	for _, budget := range []int{0, 64, 4096} {
		var env *Env
		if budget == 0 {
			env = NewEnv(kind)
		} else {
			env = NewEnv(kind, core.WithIncrementalDestroy(budget))
		}
		rc, h := env.RC, env.Heap

		var head mem.Ref
		for i := 0; i < nodes; i++ {
			p, err := rc.NewObject(env.SnarkTypes.SNode)
			if err != nil {
				t.Notes = append(t.Notes, "allocation failed: "+err.Error())
				return t
			}
			rc.StoreAlloc(h.FieldAddr(p, 0), head)
			head = p
		}

		start := time.Now()
		rc.Destroy(head)
		firstPause := time.Since(start)

		maxPause := firstPause
		drains := 0
		for h.Stats().LiveObjects > 0 {
			ds := time.Now()
			if rc.DrainZombies(budget) == 0 && rc.ZombieCount() == 0 {
				break
			}
			if p := time.Since(ds); p > maxPause {
				maxPause = p
			}
			drains++
		}
		total := time.Since(start)

		name := "eager"
		if budget > 0 {
			name = fmt.Sprintf("%d objs", budget)
		}
		t.AddRow(name, nodes, maxPause.Round(time.Microsecond), total.Round(time.Microsecond), drains)
	}
	return t
}
