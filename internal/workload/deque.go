// Package workload provides the shared experiment harness for the
// reproduction: a common deque interface over the three implementations
// (LFRC Snark, GC-dependent Snark, mutex-based), operation-mix runners with
// stall injection, and one driver per experiment in EXPERIMENTS.md. The
// drivers are used both by cmd/lfrcbench (which prints the tables) and by
// the repository-level benchmarks.
package workload

import (
	"sync"

	"lfrc/internal/gcdep"
	"lfrc/internal/snark"
)

// Deque is the common face of the deque implementations under test.
type Deque interface {
	PushLeft(v uint64) error
	PushRight(v uint64) error
	PopLeft() (uint64, bool)
	PopRight() (uint64, bool)
}

// SnarkAdapter adapts the LFRC snark deque (already error-returning).
type SnarkAdapter struct {
	D *snark.Deque
}

var _ Deque = SnarkAdapter{}

// PushLeft implements Deque.
func (a SnarkAdapter) PushLeft(v uint64) error { return a.D.PushLeft(v) }

// PushRight implements Deque.
func (a SnarkAdapter) PushRight(v uint64) error { return a.D.PushRight(v) }

// PopLeft implements Deque.
func (a SnarkAdapter) PopLeft() (uint64, bool) { return a.D.PopLeft() }

// PopRight implements Deque.
func (a SnarkAdapter) PopRight() (uint64, bool) { return a.D.PopRight() }

// GcdepAdapter adapts the GC-dependent snark deque.
type GcdepAdapter struct {
	D *gcdep.Deque
}

var _ Deque = GcdepAdapter{}

// PushLeft implements Deque.
func (a GcdepAdapter) PushLeft(v uint64) error { a.D.PushLeft(v); return nil }

// PushRight implements Deque.
func (a GcdepAdapter) PushRight(v uint64) error { a.D.PushRight(v); return nil }

// PopLeft implements Deque.
func (a GcdepAdapter) PopLeft() (uint64, bool) { return a.D.PopLeft() }

// PopRight implements Deque.
func (a GcdepAdapter) PopRight() (uint64, bool) { return a.D.PopRight() }

// MutexDeque is the lock-based baseline: a slice-backed ring protected by a
// single mutex. Its HoldingLock hook lets the stall experiment (E4) park a
// thread while it owns the lock — the failure mode lock-freedom rules out.
type MutexDeque struct {
	mu   sync.Mutex
	buf  []uint64
	head int // index of leftmost element
	n    int

	// HoldingLock, when non-nil, runs on every operation while the lock
	// is held. Set before sharing the deque.
	HoldingLock func()
}

var _ Deque = (*MutexDeque)(nil)

// NewMutexDeque builds an empty mutex-protected deque.
func NewMutexDeque() *MutexDeque {
	return &MutexDeque{buf: make([]uint64, 16)}
}

func (d *MutexDeque) hook() {
	if d.HoldingLock != nil {
		d.HoldingLock()
	}
}

// grow doubles the ring when full. Caller holds the lock.
func (d *MutexDeque) grow() {
	if d.n < len(d.buf) {
		return
	}
	nb := make([]uint64, 2*len(d.buf))
	for i := 0; i < d.n; i++ {
		nb[i] = d.buf[(d.head+i)%len(d.buf)]
	}
	d.buf = nb
	d.head = 0
}

// PushLeft implements Deque.
func (d *MutexDeque) PushLeft(v uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.hook()
	d.grow()
	d.head = (d.head - 1 + len(d.buf)) % len(d.buf)
	d.buf[d.head] = v
	d.n++
	return nil
}

// PushRight implements Deque.
func (d *MutexDeque) PushRight(v uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.hook()
	d.grow()
	d.buf[(d.head+d.n)%len(d.buf)] = v
	d.n++
	return nil
}

// PopLeft implements Deque.
func (d *MutexDeque) PopLeft() (uint64, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.hook()
	if d.n == 0 {
		return 0, false
	}
	v := d.buf[d.head]
	d.head = (d.head + 1) % len(d.buf)
	d.n--
	return v, true
}

// PopRight implements Deque.
func (d *MutexDeque) PopRight() (uint64, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.hook()
	if d.n == 0 {
		return 0, false
	}
	v := d.buf[(d.head+d.n-1)%len(d.buf)]
	d.n--
	return v, true
}

// Len returns the number of elements (tests only).
func (d *MutexDeque) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.n
}
