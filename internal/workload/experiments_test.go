package workload

import (
	"runtime"
	"strconv"
	"testing"
	"time"
)

// These tests run every experiment driver at small scale and assert the
// *shape* each claims in its notes — they are the executable form of
// EXPERIMENTS.md.

func cell(t *testing.T, tab *Table, row, col int) string {
	t.Helper()
	if row >= len(tab.Rows) || col >= len(tab.Rows[row]) {
		t.Fatalf("table %s has no cell (%d,%d):\n%s", tab.ID, row, col, tab)
	}
	return tab.Rows[row][col]
}

func cellInt(t *testing.T, tab *Table, row, col int) int64 {
	t.Helper()
	n, err := strconv.ParseInt(cell(t, tab, row, col), 10, 64)
	if err != nil {
		t.Fatalf("table %s cell (%d,%d) = %q is not an integer", tab.ID, row, col, cell(t, tab, row, col))
	}
	return n
}

func cellFloat(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	f, err := strconv.ParseFloat(cell(t, tab, row, col), 64)
	if err != nil {
		t.Fatalf("table %s cell (%d,%d) = %q is not a float", tab.ID, row, col, cell(t, tab, row, col))
	}
	return f
}

func TestE1Shape(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	tab := RunE1(EngineLocking, 1)
	if len(tab.Rows) != 2 {
		t.Fatalf("E1 rows = %d, want 2:\n%s", len(tab.Rows), tab)
	}
	// Row 0 = safe, row 1 = naive. Columns: poisoned(4), corruptions(5),
	// double frees(6).
	for col := 4; col <= 6; col++ {
		if got := cellInt(t, tab, 0, col); got != 0 {
			t.Errorf("safe protocol column %d = %d, want 0\n%s", col, got, tab)
		}
	}
	damage := cellInt(t, tab, 1, 4) + cellInt(t, tab, 1, 5) + cellInt(t, tab, 1, 6)
	if damage == 0 {
		t.Errorf("naive protocol caused no observable corruption; expected > 0\n%s", tab)
	}
}

func TestE2Shape(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	for _, kind := range Engines {
		tab := RunE2(kind, 1)
		if len(tab.Rows) != 3 {
			t.Fatalf("E2 rows = %d, want 3", len(tab.Rows))
		}
		for r := range tab.Rows {
			if got := cellInt(t, tab, r, 4); got != 0 {
				t.Errorf("%s: %s live after close = %d, want 0", kind, cell(t, tab, r, 0), got)
			}
			if got := cellInt(t, tab, r, 5); got != 0 {
				t.Errorf("%s: %s corruptions = %d, want 0", kind, cell(t, tab, r, 0), got)
			}
		}
	}
}

func TestE3Shape(t *testing.T) {
	tab := RunE3(EngineLocking, 1)
	if len(tab.Rows) != 5 {
		t.Fatalf("E3 rows = %d, want 5:\n%s", len(tab.Rows), tab)
	}
	lfrcStart := cellInt(t, tab, 0, 1)
	lfrcGrown := cellInt(t, tab, 1, 1)
	lfrcDrained := cellInt(t, tab, 2, 1)
	valGrown := cellInt(t, tab, 1, 2)
	valDrained := cellInt(t, tab, 2, 2)

	if lfrcGrown <= lfrcStart {
		t.Errorf("lfrc footprint did not grow: %d -> %d", lfrcStart, lfrcGrown)
	}
	if lfrcDrained != lfrcStart {
		t.Errorf("lfrc footprint after drain = %d, want resting %d", lfrcDrained, lfrcStart)
	}
	if valDrained < valGrown {
		t.Errorf("valois footprint shrank after drain: %d -> %d (type-stable pool should ratchet)", valGrown, valDrained)
	}
}

func TestE4Shape(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	tab := RunE4(EngineLocking, 100*time.Millisecond)
	if len(tab.Rows) != 2 {
		t.Fatalf("E4 rows = %d, want 2:\n%s", len(tab.Rows), tab)
	}
	lfrcOps := cellInt(t, tab, 0, 3)
	mutexOps := cellInt(t, tab, 1, 3)
	if lfrcOps < 100 {
		t.Errorf("lfrc healthy ops during stall = %d, want progress", lfrcOps)
	}
	// Blocked workers complete at most one op each after release.
	if mutexOps > 16 {
		t.Errorf("mutex healthy ops during stall = %d, want ~0 (lock held)", mutexOps)
	}
}

func TestE5Shape(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	tab := RunE5(30*time.Millisecond, []int{1, 2})
	// 2 mixes × 2 worker counts × 4 implementations.
	if len(tab.Rows) != 16 {
		t.Fatalf("E5 rows = %d, want 16:\n%s", len(tab.Rows), tab)
	}
	for r := range tab.Rows {
		if ops := cellFloat(t, tab, r, 3); ops <= 0 {
			t.Errorf("row %d ops/sec = %f, want > 0", r, ops)
		}
	}
}

func TestE6Shape(t *testing.T) {
	tab := RunE6(1)
	// 8 operations × 2 engines.
	if len(tab.Rows) != 16 {
		t.Fatalf("E6 rows = %d, want 16:\n%s", len(tab.Rows), tab)
	}
	for r := range tab.Rows {
		if ns := cellFloat(t, tab, r, 2); ns <= 0 {
			t.Errorf("row %d ns/op = %f, want > 0", r, ns)
		}
	}
}

func TestE7Shape(t *testing.T) {
	for _, kind := range Engines {
		tab := RunE7(kind, 1)
		if len(tab.Rows) != 2 {
			t.Fatalf("E7 rows = %d, want 2", len(tab.Rows))
		}
		cyclicLeaked := cellInt(t, tab, 0, 4)
		nullLeaked := cellInt(t, tab, 1, 4)
		if cyclicLeaked == 0 {
			t.Errorf("%s: self-pointer sentinels leaked 0 objects, expected leaks", kind)
		}
		if nullLeaked != 0 {
			t.Errorf("%s: null sentinels leaked %d objects, want 0", kind, nullLeaked)
		}
	}
}

func TestE8Shape(t *testing.T) {
	tab := RunE8(EngineLocking, 1)
	if len(tab.Rows) != 3 {
		t.Fatalf("E8 rows = %d, want 3:\n%s", len(tab.Rows), tab)
	}
	beforeLive := cellInt(t, tab, 0, 1)
	afterLive := cellInt(t, tab, 1, 1)
	firstFreed := cellInt(t, tab, 1, 2)
	secondFreed := cellInt(t, tab, 2, 2)
	if firstFreed == 0 {
		t.Errorf("first trace freed nothing:\n%s", tab)
	}
	if afterLive >= beforeLive {
		t.Errorf("live objects did not drop after trace: %d -> %d", beforeLive, afterLive)
	}
	if secondFreed != 0 {
		t.Errorf("second trace freed %d, want 0", secondFreed)
	}
}

func TestE9Shape(t *testing.T) {
	for _, kind := range Engines {
		tab := RunE9(kind, 1)
		if got := cellInt(t, tab, 0, 3); got != 0 {
			t.Errorf("%s: E9 mismatches = %d, want 0", kind, got)
		}
	}
}

func TestA1Shape(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	tab := RunA1(30 * time.Millisecond)
	if len(tab.Rows) != 2 {
		t.Fatalf("A1 rows = %d, want 2", len(tab.Rows))
	}
	for r := range tab.Rows {
		if l := cellFloat(t, tab, r, 1); l <= 0 {
			t.Errorf("row %d locking rate %f, want > 0", r, l)
		}
		if m := cellFloat(t, tab, r, 2); m <= 0 {
			t.Errorf("row %d mcas rate %f, want > 0", r, m)
		}
	}
}

func TestA2Shape(t *testing.T) {
	tab := RunA2(EngineLocking, 1)
	if len(tab.Rows) != 3 {
		t.Fatalf("A2 rows = %d, want 3:\n%s", len(tab.Rows), tab)
	}
	eagerPause, err := time.ParseDuration(cell(t, tab, 0, 2))
	if err != nil {
		t.Fatalf("bad duration %q", cell(t, tab, 0, 2))
	}
	smallBudgetPause, err := time.ParseDuration(cell(t, tab, 1, 2))
	if err != nil {
		t.Fatalf("bad duration %q", cell(t, tab, 1, 2))
	}
	if smallBudgetPause >= eagerPause {
		t.Errorf("budgeted max pause %v not below eager pause %v", smallBudgetPause, eagerPause)
	}
}

func TestRunThroughputSmoke(t *testing.T) {
	d := NewMutexDeque()
	res := RunThroughput(d, 2, 20*time.Millisecond, Balanced, 10)
	if res.Ops <= 0 {
		t.Errorf("Ops = %d, want > 0", res.Ops)
	}
	if res.OpsPerSec() <= 0 {
		t.Errorf("OpsPerSec = %f, want > 0", res.OpsPerSec())
	}
}
