package workload

import (
	"fmt"
	"time"

	"lfrc"
)

// o3Mode is one load shape of experiment O3.
type o3Mode struct {
	name string
	mix  Mix
}

var o3Modes = []o3Mode{
	// Symmetric traffic exercises both hats equally.
	{"symmetric", Balanced},
	// One-sided traffic hammers the right hat only; the left hat goes quiet
	// and the right hat plus its neighbouring cells should dominate the
	// contention profile.
	{"right_only", Mix{PushRight: 1, PopRight: 1}},
}

// RunO3 runs the contention observatory over two Snark deque load shapes and
// tabulates where the DCAS failures land. The claim under test: the profile
// is not a flat histogram but tracks the algorithm's actual hot spots — under
// symmetric load the two hats split the failures, under one-sided load the
// right hat concentrates them. This is the observability payoff: you can
// read the structure's bottleneck off /debug/lfrc/contention instead of
// guessing from throughput numbers.
func RunO3(kind EngineKind, dur time.Duration) *Table {
	t := &Table{
		ID:     "O3",
		Title:  "contention observatory: where DCAS failures land by load shape",
		Claim:  "hot-cell attribution follows the load: symmetric traffic splits failures across both hats, one-sided traffic concentrates them on the used hat",
		Header: []string{"engine", "mode", "ops/sec", "dcas failures", "wasted us", "hottest cell", "top-3 roles by failures"},
	}
	const (
		workers = 4
		prefill = 64
	)

	for _, m := range o3Modes {
		opts := []lfrc.Option{
			lfrc.WithObservability(lfrc.ObservabilityOptions{
				Contention:  true,
				SampleEvery: 64,
			}),
		}
		if kind == EngineMCAS {
			opts = append(opts, lfrc.WithEngine(lfrc.EngineMCAS))
		} else {
			opts = append(opts, lfrc.WithEngine(lfrc.EngineLocking))
		}
		sys, err := lfrc.New(opts...)
		if err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("mode=%s FAILED: %v", m.name, err))
			continue
		}
		d, err := sys.NewDeque()
		if err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("mode=%s FAILED: %v", m.name, err))
			continue
		}
		res := RunThroughput(d, workers, dur, m.mix, prefill)
		d.Close()

		rep := sys.ContentionReport()
		var failures, wasted int64
		byRole := map[string]int64{}
		for _, c := range rep.Cells {
			failures += c.Failures
			wasted += c.WastedNS
			byRole[c.Role] += c.Failures
		}
		hottest := "-"
		if len(rep.Heatmap) > 0 {
			h := rep.Heatmap[0]
			hottest = fmt.Sprintf("%s@0x%x", h.Role, h.Addr)
		}
		t.AddRow(kind.String(), m.name, res.OpsPerSec(), failures,
			float64(wasted)/1e3, hottest, topRoles(byRole, 3))
		if rep.Dropped > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf("mode=%s dropped %d contention records", m.name, rep.Dropped))
		}
		SetCurrentSystem(sys)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("workers=%d prefill=%d; wasted us estimates retry time from 1-in-64 sampled latencies", workers, prefill),
		"failure counts are contended attempts only: uncontended fast-path DCAS never enters the table",
	)
	return t
}

// topRoles renders the k roles with the most failures, "role=n" descending.
func topRoles(byRole map[string]int64, k int) string {
	type rf struct {
		role string
		n    int64
	}
	var rs []rf
	for role, n := range byRole {
		if n > 0 {
			rs = append(rs, rf{role, n})
		}
	}
	for i := 1; i < len(rs); i++ { // insertion sort; tiny n
		for j := i; j > 0 && (rs[j].n > rs[j-1].n || (rs[j].n == rs[j-1].n && rs[j].role < rs[j-1].role)); j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
	if len(rs) > k {
		rs = rs[:k]
	}
	out := ""
	for i, r := range rs {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%s=%d", r.role, r.n)
	}
	if out == "" {
		out = "-"
	}
	return out
}
