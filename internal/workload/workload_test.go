package workload

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestMutexDequeModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := NewMutexDeque()
		var model []uint64
		next := uint64(1)
		for i := 0; i < 300; i++ {
			switch rng.Intn(4) {
			case 0:
				_ = d.PushLeft(next)
				model = append([]uint64{next}, model...)
				next++
			case 1:
				_ = d.PushRight(next)
				model = append(model, next)
				next++
			case 2:
				v, ok := d.PopLeft()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[0] {
						return false
					}
					model = model[1:]
				}
			case 3:
				v, ok := d.PopRight()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[len(model)-1] {
						return false
					}
					model = model[:len(model)-1]
				}
			}
		}
		return d.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMutexDequeGrowth(t *testing.T) {
	d := NewMutexDeque()
	const n = 1000
	for i := 0; i < n; i++ {
		_ = d.PushLeft(uint64(i))
	}
	if d.Len() != n {
		t.Fatalf("Len = %d, want %d", d.Len(), n)
	}
	for i := n - 1; i >= 0; i-- {
		v, ok := d.PopLeft()
		if !ok || v != uint64(i) {
			t.Fatalf("PopLeft = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
}

func TestMixPickRespectsZeroWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := Mix{PushRight: 1, PopLeft: 1} // no PushLeft, no PopRight
	for i := 0; i < 1000; i++ {
		op := m.pick(rng)
		if op == 0 || op == 3 {
			t.Fatalf("pick returned zero-weight op %d", op)
		}
	}
}

func TestMixPickCoversAllOps(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		seen[Balanced.pick(rng)] = true
	}
	for op := 0; op < 4; op++ {
		if !seen[op] {
			t.Errorf("balanced mix never picked op %d", op)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:     "T1",
		Title:  "demo",
		Claim:  "claims are printed",
		Header: []string{"col", "value"},
		Notes:  []string{"a note"},
	}
	tab.AddRow("x", 1)
	tab.AddRow("longer", 3.14159)

	s := tab.String()
	for _, want := range []string{"T1", "demo", "claims are printed", "col", "longer", "3.1", "a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q in:\n%s", want, s)
		}
	}
	md := tab.Markdown()
	if !strings.Contains(md, "| col | value |") {
		t.Errorf("Markdown() missing header row:\n%s", md)
	}
	if !strings.Contains(md, "| --- | --- |") {
		t.Errorf("Markdown() missing separator:\n%s", md)
	}
}

func TestEnvBuildsAllStructures(t *testing.T) {
	for _, kind := range Engines {
		t.Run(kind.String(), func(t *testing.T) {
			env := NewEnv(kind)
			if env.Engine.Name() != kind.String() {
				t.Errorf("engine = %q, want %q", env.Engine.Name(), kind)
			}
			d, err := env.NewDeque()
			if err != nil {
				t.Fatalf("NewDeque: %v", err)
			}
			q, err := env.NewQueue()
			if err != nil {
				t.Fatalf("NewQueue: %v", err)
			}
			s, err := env.NewStack()
			if err != nil {
				t.Fatalf("NewStack: %v", err)
			}
			v, err := env.NewValoisQueue()
			if err != nil {
				t.Fatalf("NewValoisQueue: %v", err)
			}
			_ = d.PushLeft(1)
			_ = q.Enqueue(2)
			_ = s.Push(3)
			_ = v.Enqueue(4)
			d.Close()
			q.Close()
			s.Close()
			v.Close()
		})
	}
}

func TestEngineKindString(t *testing.T) {
	if EngineLocking.String() != "locking" || EngineMCAS.String() != "mcas" {
		t.Error("EngineKind.String mismatch")
	}
	if !strings.Contains(EngineKind(9).String(), "9") {
		t.Error("unknown EngineKind should include its number")
	}
}
