package workload

import (
	"time"

	"lfrc/internal/core"
	"lfrc/internal/mem"
)

// RunL1 measures the operation-latency distribution of a mixed workload in
// which a thread periodically drops the last reference to a large structure
// — the §7 scenario — under eager vs incremental destruction. It is the
// user-visible form of ablation A2: eager reclamation puts the whole pause
// into one operation's latency; a budget spreads it across the maintenance
// drains.
func RunL1(kind EngineKind, scale Scale) *Table {
	t := &Table{
		ID:     "L1",
		Title:  "op latency distribution with periodic large-structure drops",
		Claim:  "§7: incremental collection \"would avoid long delays when a thread destroys the last pointer to a large structure\"",
		Header: []string{"mode", "engine", "ops", "p50", "p99", "p99.9", "max"},
		Notes: []string{
			"expected shape: p50 comparable; eager max ~ the full drop pause (grows with chain size), incremental max bounded by the budget (plus host jitter)",
		},
	}

	chain := scale.times(20_000)
	rounds := 6
	opsPerRound := scale.times(2_000)

	for _, mode := range []string{"eager", "incremental(64)"} {
		var rcOpts []core.Option
		if mode != "eager" {
			rcOpts = append(rcOpts, core.WithIncrementalDestroy(64))
		}
		env := NewEnv(kind, rcOpts...)
		rc, h := env.RC, env.Heap
		d, err := env.NewDeque()
		if err != nil {
			t.Notes = append(t.Notes, "setup failed: "+err.Error())
			return t
		}

		var hist Histogram
		v := uint64(1)
		for r := 0; r < rounds; r++ {
			// Build the large structure (untimed: construction cost is
			// identical in both modes).
			var head mem.Ref
			for i := 0; i < chain; i++ {
				p, err := rc.NewObject(env.SnarkTypes.SNode)
				if err != nil {
					t.Notes = append(t.Notes, "allocation failed: "+err.Error())
					return t
				}
				rc.StoreAlloc(h.FieldAddr(p, 0), head)
				head = p
			}
			// Mixed stream: deque ops, maintenance drains, and one
			// drop of the chain mid-round — every iteration is one
			// timed "operation".
			dropAt := opsPerRound / 2
			for i := 0; i < opsPerRound; i++ {
				start := time.Now()
				switch {
				case i == dropAt:
					rc.Destroy(head) // the §7 pause (or its bounded slice)
					head = 0
				case i%2 == 0:
					_ = d.PushRight(v)
					v++
				default:
					d.PopLeft()
				}
				if mode != "eager" {
					rc.DrainZombies(64) // amortized maintenance
				}
				hist.Observe(time.Since(start))
			}
			rc.DrainZombies(0) // settle between rounds (untimed)
		}
		d.Close()

		t.AddRow(mode, kind.String(), hist.Count(),
			hist.Quantile(0.50), hist.Quantile(0.99), hist.Quantile(0.999), hist.Max())
	}
	return t
}
