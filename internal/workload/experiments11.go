package workload

import (
	"fmt"

	"lfrc"
)

// o5Sizes are the heap populations experiment O5 sweeps, in live objects
// (before the Scale multiplier): the census claims linear cost, so the
// objs/ms column should hold roughly steady while live objects grow 16x.
var o5Sizes = []int{500, 2000, 8000}

// RunO5 measures the heap census's cost against heap size on both
// reclamation backends. Each round builds a queue of n nodes, retires a
// quarter of them (dequeue without drain), and takes one quiescent census.
// On the epoch backend the retired nodes are husks parked in limbo bins; the
// census must classify them as limbo — already en route to the allocator —
// not as leaks, and must find no cycles in a healthy heap. Wall time is the
// pause a production operator pays per snapshot.
func RunO5(kind EngineKind, sc Scale) *Table {
	t := &Table{
		ID:     "O5",
		Title:  "heap census cost vs. heap size, by reclamation backend",
		Claim:  "census cost is linear in live objects, and epoch limbo husks are classified limbo, not leaked",
		Header: []string{"engine", "backend", "live", "census_us", "objs/ms", "limbo", "unreach", "cycles"},
	}
	for _, backend := range []lfrc.Reclaimer{lfrc.ReclaimerLFRC, lfrc.ReclaimerEpoch} {
		for _, base := range o5Sizes {
			n := base * int(sc)
			opts := []lfrc.Option{lfrc.WithReclamation(backend)}
			switch kind {
			case EngineMCAS:
				opts = append(opts, lfrc.WithEngine(lfrc.EngineMCAS))
			default:
				opts = append(opts, lfrc.WithEngine(lfrc.EngineLocking))
			}
			sys, err := lfrc.New(opts...)
			if err != nil {
				t.Notes = append(t.Notes, fmt.Sprintf("backend=%v n=%d FAILED: %v", backend, n, err))
				continue
			}
			q, err := sys.NewQueue()
			if err != nil {
				sys.Close()
				t.Notes = append(t.Notes, fmt.Sprintf("backend=%v n=%d FAILED: %v", backend, n, err))
				continue
			}
			for i := 0; i < n; i++ {
				if err := q.Enqueue(lfrc.Value(i)); err != nil {
					t.Notes = append(t.Notes, fmt.Sprintf("backend=%v n=%d enqueue: %v", backend, n, err))
					break
				}
			}
			// Retire a quarter without draining: on the epoch backend these
			// park as limbo husks the census must not call leaks.
			for i := 0; i < n/4; i++ {
				q.Dequeue()
			}

			snap := sys.Census()
			perMS := float64(0)
			if snap.WallNS > 0 {
				perMS = float64(snap.LiveObjects) / (float64(snap.WallNS) / 1e6)
			}
			t.AddRow(kind.String(), snap.Backend, snap.LiveObjects,
				snap.WallNS/1000, perMS,
				snap.Limbo.Objects, snap.Unreachable.Objects, snap.CycleCount)

			q.Close()
			sys.DrainZombies(0)
			if backend == lfrc.ReclaimerEpoch && base == o5Sizes[len(o5Sizes)-1] {
				// Publish the final system for -stats-json/-metrics.
				SetCurrentSystem(sys)
			} else {
				sys.Close()
			}
		}
	}
	t.Notes = append(t.Notes,
		"each row: build a queue of `live` nodes (node + anchor objects), dequeue a quarter undrained, take one quiescent census",
		"census_us is Snapshot.WallNS for the walk+graph+SCC pass; objs/ms should hold roughly steady if cost is linear",
		"limbo counts retired-but-undrained husks (epoch parks them in bins; lfrc frees eagerly, so 0)",
		"unreach/cycles are the leak verdicts — 0 on a healthy heap; see EXPERIMENTS.md O5",
	)
	return t
}
