package workload

import (
	"fmt"
	"time"

	"lfrc"
)

// RunR2 compares the two reclamation backends behind the Reclaimer seam on
// identical deque churn: the paper's eager LFRC destruction (count zero →
// free now, modulo the incremental-destroy budget) against epoch-based limbo
// batching. The table reports throughput (speed) next to the peak live-word
// footprint and the peak deferred-free backlog (space): the epoch backend's
// grace period buys batching at the price of a standing limbo population that
// eager LFRC never accumulates.
func RunR2(kind EngineKind, dur time.Duration) *Table {
	t := &Table{
		ID:    "R2",
		Title: "reclamation backends: eager LFRC vs epoch limbo, speed and space",
		Claim: "§1: LFRC frees an object \"as soon as\" no pointers to it remain; deferred schemes trade that immediacy for batching, and the backlog is the visible price",
		Header: []string{"workload", "reclaimer", "ops/sec", "peak live words",
			"peak backlog", "retired", "freed", "epoch advances"},
		Notes: []string{
			"peak backlog samples Stats.Reclaim.Pending every 2ms: ~0 under eager lfrc, a standing limbo population under epoch",
			"both backends drain to identical end state at quiescence — the grace period is policy, never safety (DESIGN.md §3.10)",
		},
	}
	const workers, prefill = 4, 64
	for _, wl := range []struct {
		id  string
		mix Mix
	}{
		{"deque/balanced", Balanced},
		{"deque/pop_heavy", PopHeavy},
	} {
		for _, rec := range []lfrc.Reclaimer{lfrc.ReclaimerLFRC, lfrc.ReclaimerEpoch} {
			row, err := r2Side(kind, rec, wl.mix, dur, workers, prefill)
			if err != nil {
				t.Notes = append(t.Notes, fmt.Sprintf("%s on %s failed: %v", wl.id, rec, err))
				continue
			}
			t.AddRow(wl.id, rec.String(), row.rate, row.peakWords,
				row.peakPending, row.retired, row.freed, row.advances)
		}
	}
	return t
}

type r2Row struct {
	rate                   float64
	peakWords, peakPending int64
	retired, freed         int64
	advances               int64
}

// r2Side measures one (backend, mix) cell: a sampler goroutine records the
// space high-water while RunThroughput drives the deque, then the system is
// drained so the final Reclaim accounting covers every retirement.
func r2Side(kind EngineKind, rec lfrc.Reclaimer, mix Mix, dur time.Duration, workers, prefill int) (r2Row, error) {
	eng := lfrc.EngineLocking
	if kind == EngineMCAS {
		eng = lfrc.EngineMCAS
	}
	sys, err := lfrc.New(lfrc.WithEngine(eng), lfrc.WithReclamation(rec))
	if err != nil {
		return r2Row{}, err
	}
	d, err := sys.NewDeque()
	if err != nil {
		return r2Row{}, err
	}

	var out r2Row
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				st := sys.Stats()
				if st.Heap.LiveWords > out.peakWords {
					out.peakWords = st.Heap.LiveWords
				}
				if st.Reclaim.Pending > out.peakPending {
					out.peakPending = st.Reclaim.Pending
				}
			case <-stop:
				return
			}
		}
	}()
	res := RunThroughput(d, workers, dur, mix, prefill)
	close(stop)
	<-done

	d.Close()
	sys.DrainZombies(0)
	st := sys.Stats()
	out.rate = res.OpsPerSec()
	out.retired = st.Reclaim.Retired
	out.freed = st.Reclaim.Freed
	out.advances = st.Reclaim.EpochAdvances
	return out, nil
}
