package workload

import (
	"fmt"
	"time"

	"lfrc"
)

// r3Strategies are the two RC strategies experiment R3 contrasts.
var r3Strategies = []lfrc.RCStrategy{lfrc.RCFigure2, lfrc.RCSplit}

// RunR3 compares the figure2 and split reference-count strategies on the two
// workloads where the difference should show (DESIGN.md §3.14):
//
//   - the one-sided O3 deque mix, under the contention observatory: every
//     figure2 Load lands a DCAS on the hot node's rc cell, so the rc role
//     owns a large share of the failures; split Loads borrow from the
//     pointer-colocated stash instead, so the rc share should collapse (what
//     remains migrates to the pointer/rc_ext roles on the cells that are
//     genuinely contended).
//   - the alloc-heavy A3-style stack workload, balanced and uninstrumented,
//     runs interleaved figure2/split/figure2/split...: link lifetimes are one
//     push/pop, so split's stash bookkeeping is all overhead and no
//     amortization — the worst case the 1.05x acceptance bound is set
//     against.
//
// Every cell verifies a clean quiescent Audit before being reported; the
// summary note states both headline numbers.
func RunR3(dur time.Duration) *Table {
	t := &Table{
		ID:     "R3",
		Title:  "RC strategies: figure2 vs split, contention shape and throughput tax",
		Claim:  "splitting the external count into the pointer word removes the rc DCAS hot spot on read-heavy cells without regressing alloc-heavy throughput past 1.05x",
		Header: []string{"workload", "rc strategy", "ops/sec", "dcas failures", "rc share", "rc_ext share", "top-3 roles by failures"},
	}
	const (
		workers = 4
		prefill = 64
		repeats = 5
	)

	// Part 1: one-sided contention profile. A single run's failure counts are
	// a preemption lottery on small machines — tens of contended attempts,
	// so a role's share can swing by tens of points between runs. The role
	// histogram is therefore summed over `repeats` interleaved runs per
	// strategy; the shares stabilize even when any one run is noisy.
	type contProf struct {
		failures int64
		byRole   map[string]int64
		rates    []float64
	}
	profs := map[string]*contProf{}
	for _, strat := range r3Strategies {
		profs[strat.String()] = &contProf{byRole: map[string]int64{}}
	}
	for r := 0; r < repeats; r++ {
		for _, strat := range r3Strategies {
			sys, err := lfrc.New(
				lfrc.WithRCStrategy(strat),
				lfrc.WithObservability(lfrc.ObservabilityOptions{
					Contention:  true,
					SampleEvery: 64,
				}))
			if err != nil {
				t.Notes = append(t.Notes, fmt.Sprintf("rc=%s FAILED: %v", strat, err))
				continue
			}
			d, err := sys.NewDeque()
			if err != nil {
				t.Notes = append(t.Notes, fmt.Sprintf("rc=%s FAILED: %v", strat, err))
				continue
			}
			res := RunThroughput(d, workers, dur, Mix{PushRight: 1, PopRight: 1}, prefill)
			if vs := sys.Audit(); len(vs) != 0 {
				t.Notes = append(t.Notes, fmt.Sprintf("rc=%s AUDIT FAILED: %s", strat, vs[0]))
			}
			d.Close()

			p := profs[strat.String()]
			for _, c := range sys.ContentionReport().Cells {
				p.failures += c.Failures
				p.byRole[c.Role] += c.Failures
			}
			p.rates = append(p.rates, res.OpsPerSec())
			SetCurrentSystem(sys)
		}
	}
	rcShare := map[string]float64{}
	for _, strat := range r3Strategies {
		p := profs[strat.String()]
		if len(p.rates) == 0 {
			continue
		}
		share := func(role string) float64 {
			if p.failures == 0 {
				return 0
			}
			return 100 * float64(p.byRole[role]) / float64(p.failures)
		}
		rcShare[strat.String()] = share("rc")
		t.AddRow("deque/right_only", strat.String(), o4Median(p.rates), p.failures,
			fmt.Sprintf("%.1f%%", share("rc")),
			fmt.Sprintf("%.1f%%", share("rc_ext")),
			topRoles(p.byRole, 3))
	}

	// Part 2: alloc-heavy balanced throughput, interleaved so run i of each
	// strategy sees near-identical machine state. Reuses the A3 cell runner
	// (stack push/pop bursts, every op an alloc or free) at GOMAXPROCS
	// shards.
	rates := map[string][]float64{}
	for r := 0; r < repeats; r++ {
		for _, strat := range r3Strategies {
			ops, stats, err := runA3Cell(EngineLocking, workers, 0, dur, lfrc.WithRCStrategy(strat))
			if err != nil {
				t.Notes = append(t.Notes, fmt.Sprintf("rc=%s run %d FAILED: %v", strat, r, err))
				continue
			}
			if stats.Heap.Allocs != stats.Heap.Frees || stats.Heap.DoubleFrees != 0 || stats.Heap.Corruptions != 0 {
				t.Notes = append(t.Notes, fmt.Sprintf("rc=%s run %d UNSAFE: allocs=%d frees=%d doubleFrees=%d corruptions=%d",
					strat, r, stats.Heap.Allocs, stats.Heap.Frees, stats.Heap.DoubleFrees, stats.Heap.Corruptions))
			}
			rates[strat.String()] = append(rates[strat.String()], float64(ops)/dur.Seconds())
		}
	}
	med := map[string]float64{}
	for _, strat := range r3Strategies {
		name := strat.String()
		if len(rates[name]) == 0 {
			continue
		}
		med[name] = o4Median(rates[name])
		t.AddRow("stack/alloc_heavy", name, med[name], "-", "-", "-", "-")
	}

	note := fmt.Sprintf("one-sided rc-role failure share: figure2 %.1f%% -> split %.1f%%",
		rcShare["figure2"], rcShare["split"])
	if med["figure2"] > 0 && med["split"] > 0 {
		note += fmt.Sprintf("; alloc-heavy split/figure2 throughput ratio: %.3f (figure2 time / split time bound: 1.05x)",
			med["figure2"]/med["split"])
	}
	t.Notes = append(t.Notes,
		note,
		fmt.Sprintf("workers=%d prefill=%d repeats=%d, strategies interleaved per repeat; contention rows sum role histograms over all repeats (ops/sec is the median run)", workers, prefill, repeats),
		"rc = an object's count word (figure2 Load DCASes it); rc_ext = a pointer cell's colocated stash (split Load CASes it); failures count contended attempts only",
	)
	return t
}
