package workload

import (
	"fmt"
	"sync/atomic"
	"time"

	"lfrc/internal/gcdep"
	"lfrc/internal/mem"
	"lfrc/internal/snark"
)

// RunE4 measures progress while one thread is stalled mid-operation
// (paper §1: lock-free programming overcomes "susceptibility to delays and
// failures"). The LFRC deque's victim parks immediately before its hat DCAS
// while holding counted references; the mutex deque's victim parks while
// holding the lock. Healthy-worker throughput during the stall is the
// metric.
func RunE4(kind EngineKind, dur time.Duration) *Table {
	t := &Table{
		ID:     "E4",
		Title:  "healthy-worker throughput while one worker is stalled mid-operation",
		Claim:  "§1: lock-freedom guarantees some operation completes regardless of delayed threads",
		Header: []string{"implementation", "engine", "healthy workers", "ops during stall", "ops/sec"},
		Notes: []string{
			"expected shape: lfrc-snark sustains throughput; mutex deque collapses to ~0",
		},
	}
	const healthy = 3

	// LFRC snark: the victim parks before its first DCAS.
	{
		env := NewEnv(kind)
		park := make(chan struct{})
		var armed, parked atomic.Bool
		d, err := env.NewDeque(snark.WithBeforeDCAS(func() {
			if armed.Load() && armed.CompareAndSwap(true, false) {
				parked.Store(true)
				<-park
			}
		}))
		if err != nil {
			t.Notes = append(t.Notes, "setup failed: "+err.Error())
			return t
		}
		for i := 0; i < 64; i++ {
			_ = d.PushRight(uint64(i + 1))
		}
		res := RunWithStall(SnarkAdapter{D: d}, healthy, dur,
			func() func() {
				armed.Store(true)
				var once atomic.Bool
				return func() {
					if once.CompareAndSwap(false, true) {
						close(park)
					}
				}
			},
			parked.Load,
		)
		t.AddRow("lfrc snark", kind.String(), healthy, res.HealthyOps, res.OpsPerSec())
		d.Close()
	}

	// Mutex deque: the victim parks while holding the lock.
	{
		d := NewMutexDeque()
		park := make(chan struct{})
		var armed, parked atomic.Bool
		d.HoldingLock = func() {
			if armed.Load() && armed.CompareAndSwap(true, false) {
				parked.Store(true)
				<-park
			}
		}
		for i := 0; i < 64; i++ {
			_ = d.PushRight(uint64(i + 1))
		}
		res := RunWithStall(d, healthy, dur,
			func() func() {
				armed.Store(true)
				var once atomic.Bool
				return func() {
					if once.CompareAndSwap(false, true) {
						close(park)
					}
				}
			},
			parked.Load,
		)
		t.AddRow("mutex deque", "-", healthy, res.HealthyOps, res.OpsPerSec())
	}
	return t
}

// RunE5 sweeps deque throughput across worker counts and operation mixes
// for the three implementations, quantifying what GC-independence costs
// (reference-count maintenance) relative to the GC-dependent baseline.
func RunE5(dur time.Duration, workersList []int) *Table {
	t := &Table{
		ID:     "E5",
		Title:  "deque throughput: LFRC vs GC-dependent vs mutex",
		Claim:  "implicit in §1/§5: LFRC trades per-operation count maintenance for GC-independence",
		Header: []string{"implementation", "workers", "mix", "ops/sec"},
		Notes: []string{
			"expected shape: gcdep > lfrc(locking) > lfrc(mcas); mutex competitive at 1 worker, degrading with contention",
			"absolute numbers are simulation-specific; compare ratios",
		},
	}
	if len(workersList) == 0 {
		workersList = []int{1, 2, 4, 8}
	}
	mixes := []struct {
		name string
		mix  Mix
	}{
		{name: "balanced", mix: Balanced},
		{name: "push-heavy", mix: PushHeavy},
	}

	for _, m := range mixes {
		for _, workers := range workersList {
			for _, impl := range []string{"lfrc(locking)", "lfrc(mcas)", "gcdep", "mutex"} {
				var (
					d       Deque
					cleanup func()
				)
				switch impl {
				case "lfrc(locking)", "lfrc(mcas)":
					kind := EngineLocking
					if impl == "lfrc(mcas)" {
						kind = EngineMCAS
					}
					env := NewEnv(kind)
					sd, err := env.NewDeque()
					if err != nil {
						continue
					}
					d, cleanup = SnarkAdapter{D: sd}, sd.Close
				case "gcdep":
					d, cleanup = GcdepAdapter{D: gcdep.New()}, func() {}
				default:
					d, cleanup = NewMutexDeque(), func() {}
				}
				res := RunThroughput(d, workers, dur, m.mix, 128)
				t.AddRow(impl, workers, m.name, res.OpsPerSec())
				cleanup()
			}
		}
	}
	return t
}

// RunE6 micro-measures each LFRC operation (the structure of Figure 2) on
// both engines, single-threaded: the per-op cost the methodology adds.
func RunE6(scale Scale) *Table {
	t := &Table{
		ID:     "E6",
		Title:  "LFRC operation microbenchmarks (single-threaded)",
		Claim:  "§5 describes each operation's structure; this measures its cost per engine",
		Header: []string{"operation", "engine", "ns/op"},
		Notes: []string{
			"expected shape: Load (1 DCAS) > Store/CAS (1 CAS + rc updates) > Copy (no shared access); mcas multiplies DCAS cost",
		},
	}
	iters := scale.times(200_000)

	for _, kind := range Engines {
		env := NewEnv(kind)
		rc, h := env.RC, env.Heap
		holder, _ := rc.NewObject(env.CellType)
		a := h.FieldAddr(holder, 0)
		obj, _ := rc.NewObject(env.SnarkTypes.SNode)
		rc.Store(a, obj)
		obj2, _ := rc.NewObject(env.SnarkTypes.SNode)

		bench := func(name string, op func()) {
			start := time.Now()
			for i := 0; i < iters; i++ {
				op()
			}
			ns := float64(time.Since(start).Nanoseconds()) / float64(iters)
			t.AddRow(name, kind.String(), fmt.Sprintf("%.1f", ns))
		}

		var dst mem.Ref
		bench("Load", func() { rc.Load(a, &dst) })
		bench("Store", func() { rc.Store(a, obj) })
		var local mem.Ref
		bench("Copy", func() { rc.Copy(&local, obj) })
		bench("CAS (success)", func() { rc.CAS(a, obj, obj) })
		bench("CAS (failure)", func() { rc.CAS(a, obj2, obj2) })
		holder2, _ := rc.NewObject(env.CellType)
		b := h.FieldAddr(holder2, 0)
		rc.Store(b, obj)
		bench("DCAS (success)", func() { rc.DCAS(a, b, obj, obj, obj, obj) })
		bench("DCAS (failure)", func() { rc.DCAS(a, b, obj2, obj2, obj2, obj2) })
		bench("Destroy+New pair", func() {
			n, _ := rc.NewObject(env.SnarkTypes.SNode)
			rc.Destroy(n)
		})
		rc.Destroy(dst, local)
	}
	return t
}
