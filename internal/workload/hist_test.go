package workload

import (
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Errorf("empty histogram not zero: %s", h.String())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 90 fast ops, 10 slow ops: p50 must be fast-scale, p99 slow-scale.
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Nanosecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	if got := h.Quantile(0.5); got > 10*time.Microsecond {
		t.Errorf("p50 = %v, want fast-scale", got)
	}
	if got := h.Quantile(0.99); got < 100*time.Microsecond {
		t.Errorf("p99 = %v, want slow-scale", got)
	}
	if got := h.Max(); got != time.Millisecond {
		t.Errorf("max = %v, want 1ms", got)
	}
	if h.Count() != 100 {
		t.Errorf("count = %d, want 100", h.Count())
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(time.Microsecond)
	b.Observe(time.Second)
	a.Merge(&b)
	if a.Count() != 2 {
		t.Errorf("merged count = %d, want 2", a.Count())
	}
	if a.Max() != time.Second {
		t.Errorf("merged max = %v, want 1s", a.Max())
	}
}

// TestHistogramBucketBoundaries pins the documented bucket bounds at exact
// boundary durations — the regression test for the off-by-one where Observe
// placed a duration in [2^k, 2^(k+1)) into bucket k+1.
func TestHistogramBucketBoundaries(t *testing.T) {
	var h Histogram
	cases := []struct {
		d    time.Duration
		want int
	}{
		{1 * time.Nanosecond, 0}, // bucket 0: {0ns, 1ns}
		{2 * time.Nanosecond, 1}, // bucket 1: [2ns, 4ns)
		{3 * time.Nanosecond, 1}, // bucket 1: [2ns, 4ns)
		{4 * time.Nanosecond, 2}, // bucket 2: [4ns, 8ns)
	}
	for _, c := range cases {
		if got := h.BucketFor(c.d); got != c.want {
			t.Errorf("BucketFor(%v) = %d, want bucket %d", c.d, got, c.want)
		}
	}
	// The quantile upper bound follows the documented bounds: a histogram
	// holding only 3ns must report the top of [2ns, 4ns).
	h.Observe(3 * time.Nanosecond)
	if got := h.Quantile(1.0); got != 4*time.Nanosecond {
		t.Errorf("Quantile(1.0) after Observe(3ns) = %v, want 4ns", got)
	}
}

func TestHistogramNegativeAndZero(t *testing.T) {
	var h Histogram
	h.Observe(-5 * time.Second) // clamped
	h.Observe(0)
	if h.Count() != 2 {
		t.Errorf("count = %d, want 2", h.Count())
	}
	if got := h.Quantile(1.0); got > time.Nanosecond {
		t.Errorf("all-zero quantile = %v", got)
	}
}

// TestQuickHistogramQuantileBounds: the reported quantile is always an
// upper bound within 2x of some observed sample, and quantiles are
// monotone in q.
func TestQuickHistogramQuantileBounds(t *testing.T) {
	f := func(samplesRaw []uint32) bool {
		if len(samplesRaw) == 0 {
			return true
		}
		if len(samplesRaw) > 200 {
			samplesRaw = samplesRaw[:200]
		}
		var h Histogram
		var maxSample time.Duration
		for _, s := range samplesRaw {
			d := time.Duration(s)
			h.Observe(d)
			if d > maxSample {
				maxSample = d
			}
		}
		prev := time.Duration(0)
		for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1.0} {
			v := h.Quantile(q)
			if v < prev {
				return false // not monotone
			}
			prev = v
		}
		// The 100th percentile bound must cover the max sample.
		return h.Quantile(1.0) >= maxSample || h.Quantile(1.0) == h.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestL1Shape(t *testing.T) {
	tab := RunL1(EngineLocking, 1)
	if len(tab.Rows) != 2 {
		t.Fatalf("L1 rows = %d, want 2:\n%s", len(tab.Rows), tab)
	}
	eagerMax, err := time.ParseDuration(cell(t, tab, 0, 6))
	if err != nil {
		t.Fatalf("bad eager max %q", cell(t, tab, 0, 6))
	}
	incrMax, err := time.ParseDuration(cell(t, tab, 1, 6))
	if err != nil {
		t.Fatalf("bad incremental max %q", cell(t, tab, 1, 6))
	}
	if incrMax >= eagerMax {
		t.Errorf("incremental max latency %v not below eager %v:\n%s", incrMax, eagerMax, tab)
	}
}
