package workload

import (
	"math/rand"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"lfrc/internal/lifecycle"
)

// Mix is a weighted operation mix. Zero weights omit the operation.
type Mix struct {
	PushLeft, PushRight, PopLeft, PopRight int
}

// Balanced is the default 25/25/25/25 mix.
var Balanced = Mix{PushLeft: 1, PushRight: 1, PopLeft: 1, PopRight: 1}

// PushHeavy grows the structure (70% pushes).
var PushHeavy = Mix{PushLeft: 7, PushRight: 7, PopLeft: 3, PopRight: 3}

// PopHeavy shrinks the structure (70% pops).
var PopHeavy = Mix{PushLeft: 3, PushRight: 3, PopLeft: 7, PopRight: 7}

// pick selects an operation index 0..3 by weight.
func (m Mix) pick(rng *rand.Rand) int {
	total := m.PushLeft + m.PushRight + m.PopLeft + m.PopRight
	n := rng.Intn(total)
	if n < m.PushLeft {
		return 0
	}
	n -= m.PushLeft
	if n < m.PushRight {
		return 1
	}
	n -= m.PushRight
	if n < m.PopLeft {
		return 2
	}
	return 3
}

// ThroughputResult reports one throughput run.
type ThroughputResult struct {
	// Ops is the total completed operations across all workers.
	Ops int64

	// Duration is the wall-clock measurement window.
	Duration time.Duration
}

// OpsPerSec is the headline rate.
func (r ThroughputResult) OpsPerSec() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Duration.Seconds()
}

// RunThroughput drives d with workers goroutines applying mix for dur,
// after prefilling prefill elements. It reports the completed operations.
func RunThroughput(d Deque, workers int, dur time.Duration, mix Mix, prefill int) ThroughputResult {
	for i := 0; i < prefill; i++ {
		_ = d.PushRight(uint64(i + 1))
	}
	var (
		stop atomic.Bool
		ops  atomic.Int64
		wg   sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Label the worker for diagnosis: pprof profiles filter on
			// lfrc_workload/lfrc_worker, and ledger timelines touched by
			// this goroutine carry its name in Chrome trace export.
			lifecycle.Do("throughput", func() {
				rng := rand.New(rand.NewSource(int64(w)*7919 + 1))
				local := int64(0)
				v := uint64(w)<<32 + 1
				for !stop.Load() {
					switch mix.pick(rng) {
					case 0:
						if d.PushLeft(v) == nil {
							v++
						}
					case 1:
						if d.PushRight(v) == nil {
							v++
						}
					case 2:
						d.PopLeft()
					case 3:
						d.PopRight()
					}
					local++
				}
				ops.Add(local)
			}, "lfrc_worker", strconv.Itoa(w))
		}(w)
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	return ThroughputResult{Ops: ops.Load(), Duration: time.Since(start)}
}

// StallResult reports a stall-injection run (experiment E4).
type StallResult struct {
	// HealthyOps counts operations completed by non-stalled workers
	// while the victim was parked.
	HealthyOps int64

	// Duration is the parked window.
	Duration time.Duration

	// VictimParked reports whether the victim actually reached its park
	// point (it always should).
	VictimParked bool
}

// OpsPerSec is the healthy workers' rate during the stall.
func (r StallResult) OpsPerSec() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.HealthyOps) / r.Duration.Seconds()
}

// RunWithStall measures the progress of healthy workers while one victim
// worker is parked mid-operation for dur. The caller supplies:
//
//   - arm: installs a park point and returns a release function; the park
//     point must fire on the victim's next operation (see the deques'
//     BeforeDCAS / HoldingLock hooks);
//   - parked: reports whether the victim has reached the park point.
//
// The victim issues one operation (which parks); healthy workers run the
// balanced mix meanwhile.
func RunWithStall(d Deque, healthy int, dur time.Duration, arm func() (release func()), parked func() bool) StallResult {
	release := arm()

	var victimWG sync.WaitGroup
	victimWG.Add(1)
	go func() {
		defer victimWG.Done()
		_ = d.PushRight(1) // parks inside
	}()

	deadline := time.Now().Add(5 * time.Second)
	for !parked() {
		if time.Now().After(deadline) {
			release()
			victimWG.Wait()
			return StallResult{}
		}
		runtime.Gosched()
	}

	var (
		stop atomic.Bool
		ops  atomic.Int64
		wg   sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < healthy; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lifecycle.Do("stall_healthy", func() {
				rng := rand.New(rand.NewSource(int64(w) + 42))
				local := int64(0)
				v := uint64(w)<<32 + 2
				for !stop.Load() {
					switch Balanced.pick(rng) {
					case 0:
						_ = d.PushLeft(v)
						v++
					case 1:
						_ = d.PushRight(v)
						v++
					case 2:
						d.PopLeft()
					case 3:
						d.PopRight()
					}
					local++
				}
				ops.Add(local)
			}, "lfrc_worker", strconv.Itoa(w))
		}(w)
	}
	timer := time.NewTimer(dur)
	<-timer.C
	stop.Store(true)
	elapsed := time.Since(start)
	// Release the victim before joining the healthy workers: under the
	// mutex deque they may be blocked on the lock the victim holds, which
	// is precisely the phenomenon being measured.
	release()
	victimWG.Wait()
	wg.Wait()
	return StallResult{HealthyOps: ops.Load(), Duration: elapsed, VictimParked: true}
}
