package workload

import (
	"fmt"
	"runtime"
	"time"

	"lfrc"
)

// BenchSchemaVersion identifies the BenchRecord JSON layout. Bump it on any
// breaking change; cmd/lfrcperf refuses to compare records with different
// versions. v2 added rc_strategy (additive: v1 records read as "figure2" and
// stay comparable).
const BenchSchemaVersion = 2

// BenchRecord is one machine-readable performance measurement of this
// reproduction: the trajectory point `lfrcbench -bench-json` emits and
// cmd/lfrcperf compares. BENCH_*.json files at the repo root are committed
// records of past points, so regressions are caught against history instead
// of folklore.
type BenchRecord struct {
	// SchemaVersion is BenchSchemaVersion at write time.
	SchemaVersion int `json:"schema_version"`

	// CreatedUnixNS timestamps the record (UnixNano).
	CreatedUnixNS int64 `json:"created_unix_ns"`

	// Host describes the machine; records from different hosts are
	// comparable only with generous tolerance.
	Host BenchHost `json:"host"`

	// Engine names the DCAS engine measured.
	Engine string `json:"engine"`

	// Reclaimer names the reclamation backend measured. Absent in records
	// older than the field, which cmd/lfrcperf reads as "lfrc" (the only
	// backend that existed then).
	Reclaimer string `json:"reclaimer,omitempty"`

	// RCStrategy names the reference-count strategy measured. Absent in
	// records older than the field (schema v1), which cmd/lfrcperf reads as
	// "figure2" (the only strategy that existed then). Records taken under
	// different strategies are not comparable: the protocols do different
	// per-operation work by design.
	RCStrategy string `json:"rc_strategy,omitempty"`

	// Config is the workload geometry shared by all experiments.
	Config BenchConfig `json:"config"`

	// Experiments holds one entry per measured workload.
	Experiments []BenchExperiment `json:"experiments"`

	// Contention summarizes the observatory's view of one contention-
	// instrumented balanced run (nil when that run failed).
	Contention *BenchContention `json:"contention,omitempty"`
}

// BenchHost pins the environment a record was taken in.
type BenchHost struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
}

// BenchConfig is the workload geometry of a record.
type BenchConfig struct {
	// DurNS is each run's measurement window in nanoseconds.
	DurNS int64 `json:"dur_ns"`

	// Runs is how many adjacent runs each experiment made; medians are
	// taken over them.
	Runs int `json:"runs"`

	Workers int `json:"workers"`
	Prefill int `json:"prefill"`
}

// BenchExperiment is one measured workload: the raw per-run rates (adjacent
// back-to-back runs, in order) and their median. Rates are ops/sec: higher
// is better, and cmd/lfrcperf's sign test pairs Runs[i] across two records.
type BenchExperiment struct {
	ID     string    `json:"id"`
	Unit   string    `json:"unit"`
	Runs   []float64 `json:"runs"`
	Median float64   `json:"median"`

	// Series is the per-interval throughput trajectory of the final run,
	// taken from the telemetry timeline: one LFRC-op rate per IntervalNS.
	// cmd/lfrcperf uses it to compare steady-state windows (warmup
	// intervals excluded) instead of whole-run medians. Optional — absent
	// in records older than the timeline, which stays schema v1: old and
	// new records remain mutually comparable, just without the steady
	// window.
	Series     []float64 `json:"series,omitempty"`
	SeriesUnit string    `json:"series_unit,omitempty"`
	IntervalNS int64     `json:"interval_ns,omitempty"`
}

// BenchContention is the contention observatory summary embedded in a
// record: enough to see at a glance where the structure hurts, without the
// full profile.
type BenchContention struct {
	Cells    int   `json:"cells"`
	Failures int64 `json:"failures"`
	WastedNS int64 `json:"wasted_ns"`
	Dropped  int64 `json:"dropped"`

	// TopCells is the heatmap head: "role op=failures" strings, hottest
	// first, at most five.
	TopCells []string `json:"top_cells"`
}

// benchWorkloads are the workloads a record measures. The balanced mix is
// the headline; the one-sided mixes expose hat contention asymmetries.
var benchWorkloads = []struct {
	id  string
	mix Mix
}{
	{"deque/balanced", Balanced},
	{"deque/push_heavy", PushHeavy},
	{"deque/pop_heavy", PopHeavy},
}

// seriesInterval picks the timeline cadence for a run of length dur: ~16
// intervals per run, clamped so very short test runs still capture a few
// samples and very long runs don't exceed the default telemetry cadence.
func seriesInterval(dur time.Duration) time.Duration {
	iv := dur / 16
	if iv < time.Millisecond {
		iv = time.Millisecond
	}
	if iv > 100*time.Millisecond {
		iv = 100 * time.Millisecond
	}
	return iv
}

// benchRun builds a fresh system on kind, rec and strat and measures one
// throughput run.
func benchRun(kind EngineKind, rec lfrc.Reclaimer, strat lfrc.RCStrategy, mix Mix, dur time.Duration, workers, prefill int, extra ...lfrc.Option) (float64, *lfrc.System, error) {
	opts := []lfrc.Option{}
	if kind == EngineMCAS {
		opts = append(opts, lfrc.WithEngine(lfrc.EngineMCAS))
	} else {
		opts = append(opts, lfrc.WithEngine(lfrc.EngineLocking))
	}
	if rec != 0 {
		opts = append(opts, lfrc.WithReclamation(rec))
	}
	if strat != 0 {
		opts = append(opts, lfrc.WithRCStrategy(strat))
	}
	opts = append(opts, extra...)
	sys, err := lfrc.New(opts...)
	if err != nil {
		return 0, nil, err
	}
	d, err := sys.NewDeque()
	if err != nil {
		return 0, nil, err
	}
	res := RunThroughput(d, workers, dur, mix, prefill)
	d.Close()
	runtime.GC() // keep one run's GC debt from billing the next
	return res.OpsPerSec(), sys, nil
}

// RunBenchJSON measures the record's workloads on the given engine and
// reclamation backend with runs adjacent repeats each and returns the
// trajectory point. The caller stamps CreatedUnixNS and serializes it. One
// extra contention-instrumented balanced run fills the Contention summary and
// publishes its system (SetCurrentSystem), so -metrics and -stats-json report
// on it.
func RunBenchJSON(kind EngineKind, rec lfrc.Reclaimer, strat lfrc.RCStrategy, dur time.Duration, runs int) (*BenchRecord, error) {
	const (
		workers = 4
		prefill = 64
	)
	if runs < 1 {
		runs = 1
	}
	if rec == 0 {
		rec = lfrc.ReclaimerLFRC
	}
	if strat == 0 {
		strat = lfrc.RCFigure2
	}
	out := &BenchRecord{
		SchemaVersion: BenchSchemaVersion,
		Host: BenchHost{
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			GoVersion:  runtime.Version(),
		},
		Engine:     kind.String(),
		Reclaimer:  rec.String(),
		RCStrategy: strat.String(),
		Config: BenchConfig{
			DurNS:   int64(dur),
			Runs:    runs,
			Workers: workers,
			Prefill: prefill,
		},
	}

	// Warm up the process (page faults, scheduler, frequency) off the books.
	if _, _, err := benchRun(kind, rec, strat, Balanced, dur/4, workers, prefill); err != nil {
		return nil, fmt.Errorf("warmup: %w", err)
	}

	// Interleave the workloads round-robin rather than running each one's
	// repeats in a block: run i of every workload sees near-identical
	// machine state, which is what makes cmd/lfrcperf's run pairing fair.
	// The final run of each workload carries a telemetry timeline whose
	// per-interval rate series lands in the record, with the health watchdog
	// riding it exactly as production would; experiments O4 and O6 bound the
	// sampler and rule-engine taxes at ≤1–2%, so the final run stays
	// pair-comparable.
	interval := seriesInterval(dur)
	rates := make([][]float64, len(benchWorkloads))
	series := make([][]float64, len(benchWorkloads))
	for r := 0; r < runs; r++ {
		for i, wl := range benchWorkloads {
			var extra []lfrc.Option
			if r == runs-1 {
				extra = append(extra,
					lfrc.WithTimeline(lfrc.TimelineOptions{Interval: interval}),
					lfrc.WithWatchdog(lfrc.WatchdogOptions{}))
			}
			rate, sys, err := benchRun(kind, rec, strat, wl.mix, dur, workers, prefill, extra...)
			if err != nil {
				return nil, fmt.Errorf("%s run %d: %w", wl.id, r, err)
			}
			rates[i] = append(rates[i], rate)
			if r == runs-1 {
				for s := range sys.Timeline() {
					if s.DurNS > 0 {
						series[i] = append(series[i], s.Rate())
					}
				}
				sys.Close()
			}
		}
	}
	for i, wl := range benchWorkloads {
		med, _ := median(rates[i])
		e := BenchExperiment{
			ID:     wl.id,
			Unit:   "ops/sec",
			Runs:   rates[i],
			Median: med,
		}
		if len(series[i]) > 0 {
			e.Series = series[i]
			e.SeriesUnit = "rc_ops/sec"
			e.IntervalNS = int64(interval)
		}
		out.Experiments = append(out.Experiments, e)
	}

	// One contention-instrumented run for the summary. Its rate is not
	// recorded (the observatory tax would pollute the trajectory).
	if _, sys, err := benchRun(kind, rec, strat, Balanced, dur, workers, prefill,
		lfrc.WithObservability(lfrc.ObservabilityOptions{Contention: true, SampleEvery: 64})); err == nil {
		crep := sys.ContentionReport()
		c := &BenchContention{Cells: len(crep.Cells), Dropped: crep.Dropped}
		for _, cell := range crep.Cells {
			c.Failures += cell.Failures
			c.WastedNS += cell.WastedNS
		}
		for i, h := range crep.Heatmap {
			if i == 5 {
				break
			}
			c.TopCells = append(c.TopCells,
				fmt.Sprintf("%s failures=%d wasted_ns=%d", h.Role, h.Failures, h.WastedNS))
		}
		out.Contention = c
		SetCurrentSystem(sys)
	}
	return out, nil
}
