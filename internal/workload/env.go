package workload

import (
	"fmt"

	"lfrc/internal/core"
	"lfrc/internal/dcas"
	"lfrc/internal/mem"
	"lfrc/internal/msqueue"
	"lfrc/internal/snark"
	"lfrc/internal/stackrc"
	"lfrc/internal/valois"
)

// EngineKind selects a DCAS engine for an experiment environment.
type EngineKind int

// Engine kinds.
const (
	EngineLocking EngineKind = iota + 1
	EngineMCAS
)

// String implements fmt.Stringer.
func (k EngineKind) String() string {
	switch k {
	case EngineLocking:
		return "locking"
	case EngineMCAS:
		return "mcas"
	default:
		return fmt.Sprintf("EngineKind(%d)", int(k))
	}
}

// Engines lists the engine kinds for ablation sweeps.
var Engines = []EngineKind{EngineLocking, EngineMCAS}

// Env is a fully wired experiment environment: one heap, one engine, one
// RC, and the type registrations every structure needs.
type Env struct {
	Heap   *mem.Heap
	Engine dcas.Engine
	RC     *core.RC

	SnarkTypes  snark.Types
	QueueTypes  msqueue.Types
	StackTypes  stackrc.Types
	ValoisTypes valois.Types

	// CellType is a one-pointer-field holder used by experiments that
	// need a bare shared pointer variable (E1, E6).
	CellType mem.TypeID
}

// NewEnv builds an environment with the given engine and RC options.
func NewEnv(kind EngineKind, rcOpts ...core.Option) *Env {
	h := mem.NewHeap()
	var e dcas.Engine
	switch kind {
	case EngineMCAS:
		e = dcas.NewMCAS(h)
	default:
		e = dcas.NewLocking(h)
	}
	return &Env{
		Heap:        h,
		Engine:      e,
		RC:          core.New(h, e, rcOpts...),
		SnarkTypes:  snark.MustRegisterTypes(h),
		QueueTypes:  msqueue.MustRegisterTypes(h),
		StackTypes:  stackrc.MustRegisterTypes(h),
		ValoisTypes: valois.MustRegisterTypes(h),
		CellType: h.MustRegisterType(mem.TypeDesc{
			Name:      "workload.Cell",
			NumFields: 1,
			PtrFields: []int{0},
		}),
	}
}

// NewDeque builds an LFRC Snark deque in this environment.
func (e *Env) NewDeque(opts ...snark.Option) (*snark.Deque, error) {
	return snark.New(e.RC, e.SnarkTypes, opts...)
}

// NewQueue builds an LFRC Michael–Scott queue in this environment.
func (e *Env) NewQueue() (*msqueue.Queue, error) {
	return msqueue.New(e.RC, e.QueueTypes)
}

// NewStack builds an LFRC Treiber stack in this environment.
func (e *Env) NewStack() (*stackrc.Stack, error) {
	return stackrc.New(e.RC, e.StackTypes)
}

// NewValoisQueue builds a Valois CAS-only queue in this environment.
func (e *Env) NewValoisQueue() (*valois.Queue, error) {
	return valois.New(e.Heap, e.ValoisTypes)
}
