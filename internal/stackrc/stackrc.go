// Package stackrc implements a Treiber stack (R. K. Treiber, 1986)
// transformed to be GC-independent with the LFRC methodology.
//
// The Treiber stack is the canonical victim of the ABA problem the LFRC
// paper describes in §1: with naive CAS-based reclamation, a pop can CAS the
// top pointer from a node that was freed and recycled, corrupting the stack.
// Under LFRC the pop's Load holds a counted reference to the old top, so the
// node cannot be recycled while any pop still names it, and the CAS is safe.
// The algorithm itself needs only LFRCCAS; DCAS appears solely inside
// LFRCLoad.
package stackrc

import (
	"fmt"

	"lfrc/internal/core"
	"lfrc/internal/fault"
	"lfrc/internal/mem"
)

// Value is the payload type. Values must be at most mem.ValueMask.
type Value = uint64

// Node field indices.
const (
	fNext = 0 // next node down (pointer)
	fV    = 1 // payload (scalar)
)

// Types holds the heap type ids the stack uses; register once per heap.
type Types struct {
	Node   mem.TypeID
	Anchor mem.TypeID
}

// RegisterTypes registers the stack's node and anchor types on h.
func RegisterTypes(h *mem.Heap) (Types, error) {
	node, err := h.RegisterType(mem.TypeDesc{
		Name:      "stackrc.Node",
		NumFields: 2,
		PtrFields: []int{fNext},
	})
	if err != nil {
		return Types{}, fmt.Errorf("stackrc: register node: %w", err)
	}
	anchor, err := h.RegisterType(mem.TypeDesc{
		Name:      "stackrc.Anchor",
		NumFields: 1,
		PtrFields: []int{0},
	})
	if err != nil {
		return Types{}, fmt.Errorf("stackrc: register anchor: %w", err)
	}
	return Types{Node: node, Anchor: anchor}, nil
}

// MustRegisterTypes is RegisterTypes for static setup; it panics on error.
func MustRegisterTypes(h *mem.Heap) Types {
	ts, err := RegisterTypes(h)
	if err != nil {
		panic(err)
	}
	return ts
}

// Stack is a GC-independent Treiber stack.
type Stack struct {
	rc *core.RC
	h  *mem.Heap
	ts Types
	fj *fault.Injector // rc's fault injector, cached; nil means disabled

	anchor mem.Ref
	topA   mem.Addr
	closed bool
}

// New builds an empty stack.
func New(rc *core.RC, ts Types) (*Stack, error) {
	s := &Stack{rc: rc, h: rc.Heap(), ts: ts, fj: rc.Fault()}
	anchor, err := rc.NewObject(ts.Anchor)
	if err != nil {
		return nil, fmt.Errorf("stackrc: allocate anchor: %w", err)
	}
	s.anchor = anchor
	s.topA = s.h.FieldAddr(anchor, 0)
	return s, nil
}

// Anchor returns the stack's anchor object, suitable for registering as a
// root with the tracing backup collector (package gctrace). It is 0 after
// Close.
func (s *Stack) Anchor() mem.Ref { return s.anchor }

func (s *Stack) nextA(n mem.Ref) mem.Addr { return s.h.FieldAddr(n, fNext) }
func (s *Stack) vA(n mem.Ref) mem.Addr    { return s.h.FieldAddr(n, fV) }

// Push places v on top of the stack.
func (s *Stack) Push(v Value) error {
	if v > mem.ValueMask {
		return fmt.Errorf("stackrc: %w: %#x", mem.ErrValueRange, v)
	}
	n, err := s.rc.NewObject(s.ts.Node)
	if err != nil {
		return fmt.Errorf("stackrc: %w", err)
	}
	s.rc.WordStore(s.vA(n), v)

	var top mem.Ref
	for {
		s.rc.Load(s.topA, &top)
		s.rc.Store(s.nextA(n), top)
		if s.fj.Inject(fault.StackPush) {
			continue
		}
		if s.rc.CAS(s.topA, top, n) {
			s.rc.Destroy(top, n)
			return nil
		}
	}
}

// Pop removes and returns the top value; ok is false when the stack is
// observed empty.
func (s *Stack) Pop() (v Value, ok bool) {
	var top, next mem.Ref
	for {
		s.rc.Load(s.topA, &top)
		if top == 0 {
			s.rc.Destroy(next)
			return 0, false
		}
		s.rc.Load(s.nextA(top), &next)
		if s.fj.Inject(fault.StackPop) {
			continue
		}
		if s.rc.CAS(s.topA, top, next) {
			value := s.rc.WordLoad(s.vA(top))
			s.rc.Destroy(top, next)
			return value, true
		}
	}
}

// Close drains the stack and releases the anchor. Must not run concurrently
// with other operations.
func (s *Stack) Close() {
	if s.closed {
		return
	}
	s.closed = true
	for {
		if _, ok := s.Pop(); !ok {
			break
		}
	}
	s.rc.Store(s.topA, 0)
	s.rc.Destroy(s.anchor)
	s.anchor = 0
}
