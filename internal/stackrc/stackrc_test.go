package stackrc

import (
	"math/rand"
	"runtime"
	"sync"

	"testing"
	"testing/quick"

	"lfrc/internal/core"
	"lfrc/internal/dcas"
	"lfrc/internal/mem"
)

type world struct {
	h  *mem.Heap
	rc *core.RC
	ts Types
}

func worldFactories() map[string]func(t *testing.T) *world {
	mk := func(engine func(h *mem.Heap) dcas.Engine) func(t *testing.T) *world {
		return func(t *testing.T) *world {
			t.Helper()
			h := mem.NewHeap()
			return &world{h: h, rc: core.New(h, engine(h)), ts: MustRegisterTypes(h)}
		}
	}
	return map[string]func(t *testing.T) *world{
		"locking": mk(func(h *mem.Heap) dcas.Engine { return dcas.NewLocking(h) }),
		"mcas":    mk(func(h *mem.Heap) dcas.Engine { return dcas.NewMCAS(h) }),
	}
}

func newStack(t *testing.T, w *world) *Stack {
	t.Helper()
	s, err := New(w.rc, w.ts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestEmptyPop(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			s := newStack(t, w)
			defer s.Close()
			if _, ok := s.Pop(); ok {
				t.Error("Pop on empty stack reported a value")
			}
		})
	}
}

func TestLIFOOrder(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			s := newStack(t, w)
			defer s.Close()

			for v := Value(1); v <= 100; v++ {
				if err := s.Push(v); err != nil {
					t.Fatalf("Push: %v", err)
				}
			}
			for v := Value(100); v >= 1; v-- {
				got, ok := s.Pop()
				if !ok || got != v {
					t.Fatalf("Pop = (%d,%v), want (%d,true)", got, ok, v)
				}
			}
			if _, ok := s.Pop(); ok {
				t.Error("stack not empty at end")
			}
		})
	}
}

func TestQuickLIFOModel(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				w := mk(t)
				s := newStack(t, w)
				defer s.Close()

				var model []Value
				next := Value(1)
				for i := 0; i < 300; i++ {
					if rng.Intn(2) == 0 {
						if s.Push(next) != nil {
							return false
						}
						model = append(model, next)
						next++
					} else {
						v, ok := s.Pop()
						if ok != (len(model) > 0) {
							return false
						}
						if ok {
							if v != model[len(model)-1] {
								return false
							}
							model = model[:len(model)-1]
						}
					}
				}
				for len(model) > 0 {
					v, ok := s.Pop()
					if !ok || v != model[len(model)-1] {
						return false
					}
					model = model[:len(model)-1]
				}
				_, ok := s.Pop()
				return !ok
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestCloseReclaimsEverything(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			s := newStack(t, w)
			for v := Value(0); v < 200; v++ {
				if err := s.Push(v); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 50; i++ {
				s.Pop()
			}
			s.Close()
			if got := w.h.Stats().LiveObjects; got != 0 {
				t.Errorf("LiveObjects = %d after Close, want 0", got)
			}
		})
	}
}

// TestConcurrentABASafety is the classic Treiber-stack ABA scenario run hot:
// concurrent pushes and pops with immediate reclamation. Under LFRC the
// freed-node recycling that breaks naive CAS stacks must cause no
// corruption, no double free, and exact value conservation.
func TestConcurrentABASafety(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			s := newStack(t, w)

			const workers, perW = 6, 1500
			var (
				mu  sync.Mutex
				got = make(map[Value]int)
				wg  sync.WaitGroup
			)
			for p := 0; p < workers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for i := 0; i < perW; i++ {
						v := Value(p*perW + i + 1)
						if err := s.Push(v); err != nil {
							t.Errorf("Push: %v", err)
							return
						}
						// Pop immediately half the time to force
						// node churn (recycling pressure).
						if i%2 == 0 {
							if v, ok := s.Pop(); ok {
								mu.Lock()
								got[v]++
								mu.Unlock()
							}
						}
					}
				}(p)
			}
			wg.Wait()
			for {
				v, ok := s.Pop()
				if !ok {
					break
				}
				got[v]++
			}

			if len(got) != workers*perW {
				t.Errorf("got %d distinct values, want %d", len(got), workers*perW)
			}
			for v, n := range got {
				if n != 1 {
					t.Errorf("value %d delivered %d times", v, n)
				}
			}
			s.Close()

			hs := w.h.Stats()
			if hs.LiveObjects != 0 || hs.Corruptions != 0 || hs.DoubleFrees != 0 {
				t.Errorf("Live=%d Corruptions=%d DoubleFrees=%d, want 0/0/0",
					hs.LiveObjects, hs.Corruptions, hs.DoubleFrees)
			}
			if hs.Recycles == 0 {
				t.Error("no recycling occurred; ABA scenario not exercised")
			}
		})
	}
}
