package gcsim

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"lfrc/internal/dcas"
	"lfrc/internal/mem"
)

func newWorld(t *testing.T, opts ...mem.Option) (*World, Types) {
	t.Helper()
	h := mem.NewHeap(opts...)
	return NewWorld(h, dcas.NewLocking(h)), MustRegisterTypes(h)
}

func TestSequentialModelEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w, ts := newWorld(t)
		d, err := New(w, ts)
		if err != nil {
			return false
		}
		defer d.Close()

		var model []uint64
		next := uint64(1)
		for i := 0; i < 300; i++ {
			switch rng.Intn(4) {
			case 0:
				if d.PushLeft(next) != nil {
					return false
				}
				model = append([]uint64{next}, model...)
				next++
			case 1:
				if d.PushRight(next) != nil {
					return false
				}
				model = append(model, next)
				next++
			case 2:
				v, ok := d.PopLeft()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[0] {
						return false
					}
					model = model[1:]
				}
			case 3:
				v, ok := d.PopRight()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[len(model)-1] {
						return false
					}
					model = model[:len(model)-1]
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestNoReclamationWithoutCollection(t *testing.T) {
	w, ts := newWorld(t)
	d, err := New(w, ts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	for v := uint64(1); v <= 100; v++ {
		if err := d.PushRight(v); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		d.PopLeft()
	}
	// Without a collection, every popped node is still live garbage.
	if got := w.H.Stats().Frees; got != 0 {
		t.Errorf("Frees = %d before any collection, want 0", got)
	}
	live := w.H.Stats().LiveObjects
	res := w.Collect()
	if res.Freed == 0 {
		t.Fatal("collection freed nothing")
	}
	after := w.H.Stats().LiveObjects
	if after >= live {
		t.Errorf("LiveObjects %d -> %d; collection did not shrink the heap", live, after)
	}
	// The live structure survives: deque still behaves.
	if err := d.PushRight(7); err != nil {
		t.Fatal(err)
	}
	if v, ok := d.PopRight(); !ok || v != 7 {
		t.Fatalf("PopRight = (%d,%v) after collection, want (7,true)", v, ok)
	}
}

func TestCollectionPreservesLiveValues(t *testing.T) {
	w, ts := newWorld(t)
	d, err := New(w, ts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	for v := uint64(1); v <= 50; v++ {
		if err := d.PushRight(v); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		d.PopRight()
		w.Collect()
	}
	for v := uint64(1); v <= 30; v++ {
		got, ok := d.PopLeft()
		if !ok || got != v {
			t.Fatalf("PopLeft = (%d,%v), want (%d,true)", got, ok, v)
		}
	}
}

func TestAllocationTriggersCollection(t *testing.T) {
	// A tiny heap forces the §6 behaviour: an allocation request is
	// delayed by a collection.
	w, ts := newWorld(t, mem.WithMaxWords(1<<16))
	d, err := New(w, ts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	for i := uint64(0); i < 50_000; i++ {
		if err := d.PushRight(i); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
		d.PopLeft() // keep the live set tiny; garbage accumulates
	}
	if got := len(w.Pauses()); got == 0 {
		t.Fatal("no collection was triggered by allocation pressure")
	}
	t.Logf("%d allocation-triggered collections", len(w.Pauses()))
}

func TestCloseThenCollectReclaimsAll(t *testing.T) {
	w, ts := newWorld(t)
	d, err := New(w, ts)
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(1); v <= 100; v++ {
		if err := d.PushRight(v); err != nil {
			t.Fatal(err)
		}
	}
	d.Close()
	w.Collect()
	if got := w.H.Stats().LiveObjects; got != 0 {
		t.Errorf("LiveObjects = %d after Close+Collect, want 0", got)
	}
}

func TestConcurrentMutatorsWithPeriodicSTW(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	w, ts := newWorld(t)
	d, err := New(w, ts)
	if err != nil {
		t.Fatal(err)
	}

	const workers, perW = 4, 1500
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		popped = map[uint64]int{}
		done   atomic.Int64
	)
	// A collector goroutine stops the world periodically.
	stopGC := make(chan struct{})
	gcDone := make(chan struct{})
	go func() {
		defer close(gcDone)
		for {
			select {
			case <-stopGC:
				return
			default:
				w.Collect()
				runtime.Gosched()
			}
		}
	}()

	for p := 0; p < workers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer done.Add(1)
			for i := 0; i < perW; i++ {
				v := uint64(p*perW+i) + 1
				if err := d.PushRight(v); err != nil {
					t.Errorf("push: %v", err)
					return
				}
				if lv, ok := d.PopLeft(); ok {
					mu.Lock()
					popped[lv]++
					mu.Unlock()
				}
			}
		}(p)
	}
	wg.Wait()
	close(stopGC)
	<-gcDone

	for {
		v, ok := d.PopLeft()
		if !ok {
			break
		}
		popped[v]++
	}
	if len(popped) != workers*perW {
		t.Errorf("recovered %d distinct values, want %d", len(popped), workers*perW)
	}
	for v, n := range popped {
		if n != 1 {
			t.Errorf("value %d delivered %d times", v, n)
		}
	}
	if len(w.Pauses()) == 0 {
		t.Error("collector never ran")
	}
	d.Close()
	w.Collect()
	if got := w.H.Stats().LiveObjects; got != 0 {
		t.Errorf("LiveObjects = %d, want 0", got)
	}
}
