// Package gcsim models the environment the LFRC paper's §1 criticizes: a
// garbage-collected runtime whose collector stops the world. It provides
// the original (GC-dependent, self-pointer-sentinel) Snark deque on the
// simulated heap with *no* reference counts — nodes are reclaimed only by
// stop-the-world tracing collections — and a World that implements the
// stop-the-world barrier mutators must respect.
//
// The package exists for experiment G1: the same workload runs here and on
// the LFRC deque, exposing the trade the paper describes — "almost all
// [GC environments] employ excessive synchronization, such as locking
// and/or stop-the-world mechanisms, which brings into question their
// scalability" (§1), and "the overall system is not lock-free, since
// delaying the GC [...] can delay all storage allocation requests" (§6).
package gcsim

import (
	"fmt"
	"sync"
	"time"

	"lfrc/internal/dcas"
	"lfrc/internal/gctrace"
	"lfrc/internal/mem"
)

// World couples a heap with a stop-the-world tracing collector. Mutators
// wrap every operation in Mutate; Collect excludes all mutators for the
// duration of the trace — the barrier the paper's lock-free methodology
// exists to avoid.
type World struct {
	H *mem.Heap
	E dcas.Engine

	gc *gctrace.Collector
	mu sync.RWMutex

	pauses     []time.Duration
	collected  int
	collection sync.Mutex // serializes Collect bookkeeping
}

// NewWorld builds a world over the given heap and engine.
func NewWorld(h *mem.Heap, e dcas.Engine) *World {
	return &World{H: h, E: e, gc: gctrace.New(h)}
}

// Mutate runs one mutator operation under the world's read-side of the
// stop-the-world barrier.
func (w *World) Mutate(f func()) {
	w.mu.RLock()
	f()
	w.mu.RUnlock()
}

// AddRoot registers a root with the collector.
func (w *World) AddRoot(r mem.Ref) { w.gc.AddRoot(r) }

// RemoveRoot unregisters a root.
func (w *World) RemoveRoot(r mem.Ref) { w.gc.RemoveRoot(r) }

// Collect stops the world and runs one tracing collection.
func (w *World) Collect() gctrace.Result {
	start := time.Now()
	w.mu.Lock()
	res := w.gc.Collect()
	w.mu.Unlock()

	w.collection.Lock()
	w.pauses = append(w.pauses, time.Since(start))
	w.collected += res.Freed
	w.collection.Unlock()
	return res
}

// Pauses returns the stop-the-world pause durations so far.
func (w *World) Pauses() []time.Duration {
	w.collection.Lock()
	defer w.collection.Unlock()
	return append([]time.Duration(nil), w.pauses...)
}

// Node field indices (identical layout to the LFRC deque's SNode).
const (
	fL = 0
	fR = 1
	fV = 2
)

// Anchor field indices.
const (
	aDummy = 0
	aLeft  = 1
	aRight = 2
)

// Types holds the heap type ids; register once per heap. Pointer fields are
// declared so the tracing collector can walk them.
type Types struct {
	SNode  mem.TypeID
	Anchor mem.TypeID
}

// RegisterTypes registers the node and anchor types on h.
func RegisterTypes(h *mem.Heap) (Types, error) {
	snode, err := h.RegisterType(mem.TypeDesc{
		Name:      "gcsim.SNode",
		NumFields: 3,
		PtrFields: []int{fL, fR},
	})
	if err != nil {
		return Types{}, fmt.Errorf("gcsim: register SNode: %w", err)
	}
	anchor, err := h.RegisterType(mem.TypeDesc{
		Name:      "gcsim.Anchor",
		NumFields: 3,
		PtrFields: []int{aDummy, aLeft, aRight},
	})
	if err != nil {
		return Types{}, fmt.Errorf("gcsim: register anchor: %w", err)
	}
	return Types{SNode: snode, Anchor: anchor}, nil
}

// MustRegisterTypes is RegisterTypes for static setup; it panics on error.
func MustRegisterTypes(h *mem.Heap) Types {
	ts, err := RegisterTypes(h)
	if err != nil {
		panic(err)
	}
	return ts
}

// Deque is the original GC-dependent Snark (paper Figure 1, left column)
// on the simulated heap: self-pointer sentinels, no reference counts, and
// reclamation only by the world's tracing collector. Every operation must
// run inside World.Mutate; the helper methods do so themselves.
type Deque struct {
	w  *World
	ts Types

	anchor mem.Ref
	dummy  mem.Ref
	dummyA mem.Addr
	leftA  mem.Addr
	rightA mem.Addr
	closed bool
}

// New builds an empty deque and roots it with the collector.
func New(w *World, ts Types) (*Deque, error) {
	d := &Deque{w: w, ts: ts}
	anchor, err := w.H.Alloc(ts.Anchor)
	if err != nil {
		return nil, fmt.Errorf("gcsim: allocate anchor: %w", err)
	}
	d.anchor = anchor
	d.dummyA = w.H.FieldAddr(anchor, aDummy)
	d.leftA = w.H.FieldAddr(anchor, aLeft)
	d.rightA = w.H.FieldAddr(anchor, aRight)

	dummy, err := w.H.Alloc(ts.SNode)
	if err != nil {
		return nil, fmt.Errorf("gcsim: allocate dummy: %w", err)
	}
	d.dummy = dummy
	w.E.Write(w.H.FieldAddr(dummy, fL), uint64(dummy)) // self-pointers: the
	w.E.Write(w.H.FieldAddr(dummy, fR), uint64(dummy)) // original convention
	w.E.Write(d.dummyA, uint64(dummy))
	w.E.Write(d.leftA, uint64(dummy))
	w.E.Write(d.rightA, uint64(dummy))
	w.AddRoot(anchor)
	return d, nil
}

func (d *Deque) fL(n mem.Ref) mem.Addr { return d.w.H.FieldAddr(n, fL) }
func (d *Deque) fR(n mem.Ref) mem.Addr { return d.w.H.FieldAddr(n, fR) }
func (d *Deque) fV(n mem.Ref) mem.Addr { return d.w.H.FieldAddr(n, fV) }

// allocNode allocates a node; on exhaustion the *caller* (outside the
// mutator critical section) must run a collection and retry — §6's point
// that an allocation request can be delayed by the collector.
func (d *Deque) allocNode() (mem.Ref, error) {
	return d.w.H.Alloc(d.ts.SNode)
}

// withCollectRetry runs one mutator operation that may fail on heap
// exhaustion; on failure it stops the world for a collection and retries
// once.
func (d *Deque) withCollectRetry(op func() error) error {
	var err error
	for attempt := 0; attempt < 2; attempt++ {
		d.w.Mutate(func() { err = op() })
		if err == nil {
			return nil
		}
		d.w.Collect()
	}
	return err
}

// PushRight appends v on the right (paper Figure 1, left column).
func (d *Deque) PushRight(v uint64) error {
	return d.withCollectRetry(func() error { return d.pushRight(v) })
}

func (d *Deque) pushRight(v uint64) error {
	e := d.w.E
	nd, err := d.allocNode()
	if err != nil {
		return err
	}
	e.Write(d.fR(nd), uint64(d.dummy))
	e.Write(d.fV(nd), v)
	for {
		rh := mem.Ref(e.Read(d.rightA))
		rhR := mem.Ref(e.Read(d.fR(rh)))
		if rhR == rh {
			e.Write(d.fL(nd), uint64(d.dummy))
			lh := mem.Ref(e.Read(d.leftA))
			if e.DCAS(d.rightA, d.leftA, uint64(rh), uint64(lh), uint64(nd), uint64(nd)) {
				return nil
			}
		} else {
			e.Write(d.fL(nd), uint64(rh))
			if e.DCAS(d.rightA, d.fR(rh), uint64(rh), uint64(rhR), uint64(nd), uint64(nd)) {
				return nil
			}
		}
	}
}

// PushLeft prepends v on the left.
func (d *Deque) PushLeft(v uint64) error {
	return d.withCollectRetry(func() error { return d.pushLeft(v) })
}

func (d *Deque) pushLeft(v uint64) error {
	e := d.w.E
	nd, err := d.allocNode()
	if err != nil {
		return err
	}
	e.Write(d.fL(nd), uint64(d.dummy))
	e.Write(d.fV(nd), v)
	for {
		lh := mem.Ref(e.Read(d.leftA))
		lhL := mem.Ref(e.Read(d.fL(lh)))
		if lhL == lh {
			e.Write(d.fR(nd), uint64(d.dummy))
			rh := mem.Ref(e.Read(d.rightA))
			if e.DCAS(d.leftA, d.rightA, uint64(lh), uint64(rh), uint64(nd), uint64(nd)) {
				return nil
			}
		} else {
			e.Write(d.fR(nd), uint64(lh))
			if e.DCAS(d.leftA, d.fL(lh), uint64(lh), uint64(lhL), uint64(nd), uint64(nd)) {
				return nil
			}
		}
	}
}

// PopRight removes and returns the rightmost value.
func (d *Deque) PopRight() (v uint64, ok bool) {
	d.w.Mutate(func() { v, ok = d.popRight() })
	return v, ok
}

func (d *Deque) popRight() (uint64, bool) {
	e := d.w.E
	for {
		rh := mem.Ref(e.Read(d.rightA))
		lh := mem.Ref(e.Read(d.leftA))
		if mem.Ref(e.Read(d.fR(rh))) == rh {
			return 0, false
		}
		if rh == lh {
			if e.DCAS(d.rightA, d.leftA, uint64(rh), uint64(lh), uint64(d.dummy), uint64(d.dummy)) {
				return e.Read(d.fV(rh)), true
			}
		} else {
			rhL := mem.Ref(e.Read(d.fL(rh)))
			if e.DCAS(d.rightA, d.fL(rh), uint64(rh), uint64(rhL), uint64(rhL), uint64(rh)) {
				v := e.Read(d.fV(rh))
				e.Write(d.fR(rh), uint64(d.dummy))
				return v, true
			}
		}
	}
}

// PopLeft removes and returns the leftmost value.
func (d *Deque) PopLeft() (v uint64, ok bool) {
	d.w.Mutate(func() { v, ok = d.popLeft() })
	return v, ok
}

func (d *Deque) popLeft() (uint64, bool) {
	e := d.w.E
	for {
		lh := mem.Ref(e.Read(d.leftA))
		rh := mem.Ref(e.Read(d.rightA))
		if mem.Ref(e.Read(d.fL(lh))) == lh {
			return 0, false
		}
		if lh == rh {
			if e.DCAS(d.leftA, d.rightA, uint64(lh), uint64(rh), uint64(d.dummy), uint64(d.dummy)) {
				return e.Read(d.fV(lh)), true
			}
		} else {
			lhR := mem.Ref(e.Read(d.fR(lh)))
			if e.DCAS(d.leftA, d.fR(lh), uint64(lh), uint64(lhR), uint64(lhR), uint64(lh)) {
				v := e.Read(d.fV(lh))
				e.Write(d.fL(lh), uint64(d.dummy))
				return v, true
			}
		}
	}
}

// Close unroots the deque; the next collection reclaims everything it
// owned. Must not run concurrently with other operations.
func (d *Deque) Close() {
	if d.closed {
		return
	}
	d.closed = true
	d.w.RemoveRoot(d.anchor)
	d.anchor = 0
}
