package msqueue

import (
	"testing"

	"lfrc/internal/mem"
)

// TestStragglerPinsRetiredChain pins down a real property of reference
// counting applied to the Michael–Scott queue: every retired dummy's next
// pointer references the node retired after it, so a single straggler
// holding a counted reference to one old dummy transitively keeps *every*
// subsequently retired node live. Reclamation is only deferred — releasing
// the straggler's reference cascades the whole chain — but the transient
// footprint is unbounded in the straggler's delay.
//
// The Snark deque does not have this amplification: its pops explicitly
// redirect the popped node's outgoing pointer to Dummy ("rh->R = Dummy"),
// severing garbage chains; see TestSnarkPopsDoNotChainGarbage in package
// snark for the contrast. For the queue this hygiene cannot be added
// without strengthening the enqueue's link CAS (a stale tail could link
// into a severed node), so the behaviour is documented rather than papered
// over.
func TestStragglerPinsRetiredChain(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			q := newQueue(t, w)

			// The straggler takes (and holds) a counted reference to
			// the current dummy node.
			var pin mem.Ref
			w.rc.Load(w.h.FieldAddr(q.Anchor(), aHead), &pin)
			if pin == 0 {
				t.Fatal("no dummy to pin")
			}

			// Churn: every enqueue+dequeue retires one node.
			const churn = 1000
			for i := 0; i < churn; i++ {
				if err := q.Enqueue(uint64(i + 1)); err != nil {
					t.Fatal(err)
				}
				q.Dequeue()
			}

			pinned := w.h.Stats().LiveObjects
			if pinned < churn {
				t.Fatalf("straggler pinned %d live objects, expected >= %d (the whole retired chain)",
					pinned, churn)
			}

			// Releasing the single straggler reference cascades the
			// entire chain.
			w.rc.Destroy(pin)
			after := w.h.Stats().LiveObjects
			if after > 3 { // anchor + dummy + at most one in-flight node
				t.Errorf("after releasing the straggler, %d objects remain live", after)
			}
			q.Close()
			if got := w.h.Stats().LiveObjects; got != 0 {
				t.Errorf("LiveObjects = %d after Close, want 0", got)
			}
		})
	}
}
