package msqueue

import "sync/atomic"

// GoQueue is the GC-dependent Michael–Scott queue on native Go objects:
// the form the methodology would start from. Go's GC supplies reclamation
// and ABA safety, so plain single-word CAS suffices throughout — the
// baseline for measuring what LFRC's counts cost (experiment E5/E6).
type GoQueue struct {
	head atomic.Pointer[goNode]
	tail atomic.Pointer[goNode]
}

type goNode struct {
	next atomic.Pointer[goNode]
	v    Value
}

// NewGoQueue builds an empty GC-dependent queue.
func NewGoQueue() *GoQueue {
	q := &GoQueue{}
	dummy := &goNode{}
	q.head.Store(dummy)
	q.tail.Store(dummy)
	return q
}

// Enqueue appends v at the tail.
func (q *GoQueue) Enqueue(v Value) {
	n := &goNode{v: v}
	for {
		tail := q.tail.Load()
		next := tail.next.Load()
		if next == nil {
			if tail.next.CompareAndSwap(nil, n) {
				q.tail.CompareAndSwap(tail, n)
				return
			}
		} else {
			q.tail.CompareAndSwap(tail, next)
		}
	}
}

// Dequeue removes and returns the oldest value; ok is false when empty.
func (q *GoQueue) Dequeue() (v Value, ok bool) {
	for {
		head := q.head.Load()
		tail := q.tail.Load()
		next := head.next.Load()
		if head == tail {
			if next == nil {
				return 0, false
			}
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		if next == nil {
			continue
		}
		value := next.v
		if q.head.CompareAndSwap(head, next) {
			return value, true
		}
	}
}
