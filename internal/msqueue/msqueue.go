// Package msqueue implements the Michael–Scott lock-free FIFO queue
// (PODC 1996) — reference [13] of the LFRC paper — transformed to be
// GC-independent with the LFRC methodology.
//
// The queue demonstrates two things about the methodology (paper §2.1):
// it applies beyond the worked deque example, and it needs nothing stronger
// than LFRCCAS from the *algorithm* — the only DCAS in the transformed queue
// hides inside LFRCLoad, which is where the paper argues DCAS is genuinely
// necessary. Garbage is naturally acyclic (nodes point only forward), so
// Step 3 required no changes at all.
//
// Known footprint property (finding F1 in EXPERIMENTS.md): each retired
// dummy's next pointer references the node retired after it, so a straggler
// holding a counted reference to one old dummy transitively pins every
// later-retired node until it lets go — reclamation is deferred, never lost.
// Snark avoids this by redirecting popped nodes' pointers to Dummy; doing
// the same here would let an enqueue with a stale tail link into a severed
// node (its CAS on next expects 0), so the MS queue keeps the original
// algorithm and documents the cost. See TestStragglerPinsRetiredChain.
package msqueue

import (
	"fmt"

	"lfrc/internal/core"
	"lfrc/internal/fault"
	"lfrc/internal/mem"
)

// Value is the payload type. Values must be at most mem.ValueMask.
type Value = uint64

// QNode field indices.
const (
	fNext = 0 // next node (pointer)
	fV    = 1 // payload (scalar)
)

// Anchor field indices.
const (
	aHead = 0
	aTail = 1
)

// Types holds the heap type ids the queue uses; register once per heap.
type Types struct {
	QNode  mem.TypeID
	Anchor mem.TypeID
}

// RegisterTypes registers the queue's node and anchor types on h.
func RegisterTypes(h *mem.Heap) (Types, error) {
	qnode, err := h.RegisterType(mem.TypeDesc{
		Name:      "msqueue.QNode",
		NumFields: 2,
		PtrFields: []int{fNext},
	})
	if err != nil {
		return Types{}, fmt.Errorf("msqueue: register QNode: %w", err)
	}
	anchor, err := h.RegisterType(mem.TypeDesc{
		Name:      "msqueue.Anchor",
		NumFields: 2,
		PtrFields: []int{aHead, aTail},
	})
	if err != nil {
		return Types{}, fmt.Errorf("msqueue: register anchor: %w", err)
	}
	return Types{QNode: qnode, Anchor: anchor}, nil
}

// MustRegisterTypes is RegisterTypes for static setup; it panics on error.
func MustRegisterTypes(h *mem.Heap) Types {
	ts, err := RegisterTypes(h)
	if err != nil {
		panic(err)
	}
	return ts
}

// Queue is a GC-independent Michael–Scott queue.
type Queue struct {
	rc *core.RC
	h  *mem.Heap
	ts Types
	fj *fault.Injector // rc's fault injector, cached; nil means disabled

	anchor mem.Ref
	headA  mem.Addr
	tailA  mem.Addr
	closed bool
}

// New builds an empty queue: Head and Tail point at a dummy node.
func New(rc *core.RC, ts Types) (*Queue, error) {
	q := &Queue{rc: rc, h: rc.Heap(), ts: ts, fj: rc.Fault()}
	anchor, err := rc.NewObject(ts.Anchor)
	if err != nil {
		return nil, fmt.Errorf("msqueue: allocate anchor: %w", err)
	}
	q.anchor = anchor
	q.headA = q.h.FieldAddr(anchor, aHead)
	q.tailA = q.h.FieldAddr(anchor, aTail)

	dummy, err := rc.NewObject(ts.QNode)
	if err != nil {
		rc.Destroy(anchor)
		return nil, fmt.Errorf("msqueue: allocate dummy: %w", err)
	}
	rc.StoreAlloc(q.headA, dummy)
	rc.Store(q.tailA, dummy)
	return q, nil
}

// Anchor returns the queue's anchor object, suitable for registering as a
// root with the tracing backup collector (package gctrace). It is 0 after
// Close.
func (q *Queue) Anchor() mem.Ref { return q.anchor }

func (q *Queue) nextA(n mem.Ref) mem.Addr { return q.h.FieldAddr(n, fNext) }
func (q *Queue) vA(n mem.Ref) mem.Addr    { return q.h.FieldAddr(n, fV) }

// Enqueue appends v at the tail.
func (q *Queue) Enqueue(v Value) error {
	if v > mem.ValueMask {
		return fmt.Errorf("msqueue: %w: %#x", mem.ErrValueRange, v)
	}
	n, err := q.rc.NewObject(q.ts.QNode)
	if err != nil {
		return fmt.Errorf("msqueue: %w", err)
	}
	q.rc.WordStore(q.vA(n), v)

	var tail, next mem.Ref
	for {
		q.rc.Load(q.tailA, &tail)
		q.rc.Load(q.nextA(tail), &next)
		if next == 0 {
			// Injected failure lands between the tail loads and the
			// link CAS — the retry path of a lost enqueue race.
			if q.fj.Inject(fault.QueueEnqueue) {
				continue
			}
			if q.rc.CAS(q.nextA(tail), 0, n) {
				// Swing the tail; losing this race is fine —
				// some other thread already advanced it.
				q.rc.CAS(q.tailA, tail, n)
				q.rc.Destroy(tail, next, n)
				return nil
			}
		} else {
			// Tail is lagging: help it forward.
			q.rc.CAS(q.tailA, tail, next)
		}
	}
}

// Dequeue removes and returns the oldest value; ok is false when the queue
// is observed empty.
func (q *Queue) Dequeue() (v Value, ok bool) {
	var head, tail, next mem.Ref
	for {
		q.rc.Load(q.headA, &head)
		q.rc.Load(q.tailA, &tail)
		q.rc.Load(q.nextA(head), &next)
		if head == tail {
			if next == 0 {
				q.rc.Destroy(head, tail, next)
				return 0, false
			}
			q.rc.CAS(q.tailA, tail, next) // help the lagging tail
			continue
		}
		if next == 0 {
			// Transient: head moved under us; retry.
			continue
		}
		value := q.rc.WordLoad(q.vA(next))
		if q.fj.Inject(fault.QueueDequeue) {
			continue
		}
		if q.rc.CAS(q.headA, head, next) {
			q.rc.Destroy(head, tail, next)
			return value, true
		}
	}
}

// Close drains the queue, severs the anchor and releases it. Like the Snark
// destructor it must not run concurrently with other operations.
func (q *Queue) Close() {
	if q.closed {
		return
	}
	q.closed = true
	for {
		if _, ok := q.Dequeue(); !ok {
			break
		}
	}
	q.rc.Store(q.headA, 0)
	q.rc.Store(q.tailA, 0)
	q.rc.Destroy(q.anchor)
	q.anchor = 0
}
