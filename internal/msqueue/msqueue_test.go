package msqueue

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"lfrc/internal/core"
	"lfrc/internal/dcas"
	"lfrc/internal/mem"
)

type world struct {
	h  *mem.Heap
	rc *core.RC
	ts Types
}

func worldFactories() map[string]func(t *testing.T) *world {
	mk := func(engine func(h *mem.Heap) dcas.Engine) func(t *testing.T) *world {
		return func(t *testing.T) *world {
			t.Helper()
			h := mem.NewHeap()
			return &world{h: h, rc: core.New(h, engine(h)), ts: MustRegisterTypes(h)}
		}
	}
	return map[string]func(t *testing.T) *world{
		"locking": mk(func(h *mem.Heap) dcas.Engine { return dcas.NewLocking(h) }),
		"mcas":    mk(func(h *mem.Heap) dcas.Engine { return dcas.NewMCAS(h) }),
	}
}

func newQueue(t *testing.T, w *world) *Queue {
	t.Helper()
	q, err := New(w.rc, w.ts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return q
}

func TestEmptyDequeue(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			q := newQueue(t, w)
			defer q.Close()
			if _, ok := q.Dequeue(); ok {
				t.Error("Dequeue on empty queue reported a value")
			}
		})
	}
}

func TestFIFOOrder(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			q := newQueue(t, w)
			defer q.Close()

			for v := Value(1); v <= 100; v++ {
				if err := q.Enqueue(v); err != nil {
					t.Fatalf("Enqueue: %v", err)
				}
			}
			for v := Value(1); v <= 100; v++ {
				got, ok := q.Dequeue()
				if !ok || got != v {
					t.Fatalf("Dequeue = (%d,%v), want (%d,true)", got, ok, v)
				}
			}
			if _, ok := q.Dequeue(); ok {
				t.Error("queue not empty at end")
			}
		})
	}
}

func TestQuickFIFOModel(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				w := mk(t)
				q := newQueue(t, w)
				defer q.Close()

				var model []Value
				next := Value(1)
				for i := 0; i < 300; i++ {
					if rng.Intn(2) == 0 {
						if q.Enqueue(next) != nil {
							return false
						}
						model = append(model, next)
						next++
					} else {
						v, ok := q.Dequeue()
						if ok != (len(model) > 0) {
							return false
						}
						if ok {
							if v != model[0] {
								return false
							}
							model = model[1:]
						}
					}
				}
				for _, want := range model {
					v, ok := q.Dequeue()
					if !ok || v != want {
						return false
					}
				}
				_, ok := q.Dequeue()
				return !ok
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestCloseReclaimsEverything(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			q := newQueue(t, w)
			for v := Value(0); v < 200; v++ {
				if err := q.Enqueue(v); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < 50; i++ {
				q.Dequeue()
			}
			q.Close()
			if got := w.h.Stats().LiveObjects; got != 0 {
				t.Errorf("LiveObjects = %d after Close, want 0", got)
			}
		})
	}
}

// TestConcurrentExactSemantics asserts exact multiset delivery under
// concurrency: Michael–Scott is linearizable, and the LFRC transformation
// must preserve that (paper §3; experiment E9's queue leg).
func TestConcurrentExactSemantics(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			q := newQueue(t, w)

			const producers, consumers, perP = 4, 4, 1500
			var (
				mu   sync.Mutex
				got  = make(map[Value]int)
				done atomic.Int64
				wg   sync.WaitGroup
			)
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					defer done.Add(1)
					for i := 0; i < perP; i++ {
						if err := q.Enqueue(Value(p*perP + i + 1)); err != nil {
							t.Errorf("Enqueue: %v", err)
							return
						}
					}
				}(p)
			}
			for c := 0; c < consumers; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						v, ok := q.Dequeue()
						if ok {
							mu.Lock()
							got[v]++
							mu.Unlock()
							continue
						}
						if done.Load() == producers {
							if v, ok := q.Dequeue(); ok {
								mu.Lock()
								got[v]++
								mu.Unlock()
								continue
							}
							return
						}
						runtime.Gosched()
					}
				}()
			}
			wg.Wait()

			if len(got) != producers*perP {
				t.Errorf("got %d distinct values, want %d", len(got), producers*perP)
			}
			for v, n := range got {
				if n != 1 {
					t.Errorf("value %d delivered %d times", v, n)
				}
			}
			q.Close()

			hs := w.h.Stats()
			if hs.LiveObjects != 0 || hs.Corruptions != 0 || hs.DoubleFrees != 0 {
				t.Errorf("Live=%d Corruptions=%d DoubleFrees=%d, want 0/0/0",
					hs.LiveObjects, hs.Corruptions, hs.DoubleFrees)
			}
		})
	}
}

// TestPerItemFIFOPerProducer checks the queue preserves each producer's
// internal order at the consumer (single consumer).
func TestPerProducerOrderPreserved(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			q := newQueue(t, w)
			defer q.Close()

			const producers, perP = 4, 1000
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for i := 0; i < perP; i++ {
						// Value encodes (producer, seq).
						if err := q.Enqueue(Value(p)<<32 | Value(i)); err != nil {
							t.Errorf("Enqueue: %v", err)
							return
						}
					}
				}(p)
			}
			wg.Wait()

			lastSeq := map[Value]int64{}
			for i := 0; i < producers*perP; i++ {
				v, ok := q.Dequeue()
				if !ok {
					t.Fatalf("premature empty at %d", i)
				}
				p, seq := v>>32, int64(v&0xFFFFFFFF)
				if last, seen := lastSeq[p]; seen && seq <= last {
					t.Fatalf("producer %d order violated: %d after %d", p, seq, last)
				}
				lastSeq[p] = seq
			}
		})
	}
}

func TestGoQueueMatchesLFRCQueue(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := mem.NewHeap()
		rc := core.New(h, dcas.NewLocking(h))
		lq, err := New(rc, MustRegisterTypes(h))
		if err != nil {
			return false
		}
		defer lq.Close()
		gq := NewGoQueue()

		next := Value(1)
		for i := 0; i < 200; i++ {
			if rng.Intn(2) == 0 {
				if lq.Enqueue(next) != nil {
					return false
				}
				gq.Enqueue(next)
				next++
			} else {
				lv, lok := lq.Dequeue()
				gv, gok := gq.Dequeue()
				if lok != gok || lv != gv {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
