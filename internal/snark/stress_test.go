package snark

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// runStress drives a deque with pushers and poppers, returning pushed and
// popped value multisets. Values are globally unique so duplication and loss
// are detectable.
func runStress(t *testing.T, d *Deque, pushers, poppers, perPusher int) (pushed, popped map[Value]int) {
	t.Helper()
	var (
		mu       sync.Mutex
		pushedMu sync.Mutex
	)
	pushed = make(map[Value]int)
	popped = make(map[Value]int)

	var wg sync.WaitGroup
	var done atomic.Int64
	for p := 0; p < pushers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer done.Add(1)
			for i := 0; i < perPusher; i++ {
				v := Value(p*perPusher + i + 1)
				var err error
				if (p+i)%2 == 0 {
					err = d.PushRight(v)
				} else {
					err = d.PushLeft(v)
				}
				if err != nil {
					t.Errorf("push: %v", err)
					return
				}
				pushedMu.Lock()
				pushed[v]++
				pushedMu.Unlock()
			}
		}(p)
	}
	for c := 0; c < poppers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			record := func(v Value) {
				mu.Lock()
				popped[v]++
				mu.Unlock()
			}
			for {
				var v Value
				var ok bool
				if c%2 == 0 {
					v, ok = d.PopLeft()
				} else {
					v, ok = d.PopRight()
				}
				if ok {
					record(v)
					continue
				}
				if done.Load() == int64(pushers) {
					// One more sweep of both ends after all
					// pushers finished.
					if v, ok := d.PopLeft(); ok {
						record(v)
						continue
					}
					if v, ok := d.PopRight(); ok {
						record(v)
						continue
					}
					return
				}
				runtime.Gosched()
			}
		}(c)
	}
	wg.Wait()
	return pushed, popped
}

// TestConcurrentStressClaimingExactSemantics asserts exact multiset
// conservation on the claiming variant: every pushed value is popped exactly
// once, nothing is invented. (See the package comment for why the published
// 2000/2001 algorithm itself cannot promise this near empty.)
func TestConcurrentStressClaimingExactSemantics(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			d := newDeque(t, w, WithValueClaiming())

			pushed, popped := runStress(t, d, 4, 4, 2000)
			for v, n := range popped {
				if n != 1 {
					t.Errorf("value %d popped %d times", v, n)
				}
				if pushed[v] != 1 {
					t.Errorf("value %d popped but never pushed", v)
				}
			}
			for v := range pushed {
				if popped[v] == 0 {
					t.Errorf("value %d lost", v)
				}
			}
			d.Close()

			hs := w.h.Stats()
			if hs.LiveObjects != 0 {
				t.Errorf("LiveObjects = %d after Close, want 0", hs.LiveObjects)
			}
			if hs.Corruptions != 0 || hs.DoubleFrees != 0 {
				t.Errorf("Corruptions=%d DoubleFrees=%d, want 0/0", hs.Corruptions, hs.DoubleFrees)
			}
			if got := w.rc.Stats().PoisonedRCUpdates; got != 0 {
				t.Errorf("PoisonedRCUpdates = %d, want 0", got)
			}
		})
	}
}

// TestConcurrentStressPublishedAlgorithmMemorySafety runs the published
// algorithm (no claiming) under the same load and asserts the properties the
// LFRC paper is responsible for: no use-after-free, no double free, no
// corruption, and no leaked memory after Close. Value-level anomalies of the
// published Snark (SPAA 2004) are tolerated and logged if they occur.
func TestConcurrentStressPublishedAlgorithmMemorySafety(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			d := newDeque(t, w)

			pushed, popped := runStress(t, d, 4, 4, 2000)
			anomalies := 0
			for v, n := range popped {
				if n != 1 || pushed[v] != 1 {
					anomalies++
				}
			}
			for v := range pushed {
				if popped[v] == 0 {
					anomalies++
				}
			}
			if anomalies > 0 {
				t.Logf("published Snark exhibited %d value anomalies (known SPAA 2004 races)", anomalies)
			}
			d.Close()

			hs := w.h.Stats()
			if hs.LiveObjects != 0 {
				t.Errorf("LiveObjects = %d after Close, want 0", hs.LiveObjects)
			}
			if hs.Corruptions != 0 || hs.DoubleFrees != 0 {
				t.Errorf("Corruptions=%d DoubleFrees=%d, want 0/0", hs.Corruptions, hs.DoubleFrees)
			}
			if got := w.rc.Stats().PoisonedRCUpdates; got != 0 {
				t.Errorf("PoisonedRCUpdates = %d, want 0", got)
			}
		})
	}
}

// TestStalledThreadDoesNotBlockOthers parks one worker indefinitely right
// before its hat DCAS — while it holds counted references to interior nodes
// — and verifies that other workers keep completing operations and that the
// parked worker's references pin only a bounded amount of memory. This is
// the lock-freedom experiment (E4) in unit-test form.
func TestStalledThreadDoesNotBlockOthers(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)

			stall := make(chan struct{})
			var stalled atomic.Bool
			d := newDeque(t, w, WithBeforeDCAS(func() {
				if stalled.CompareAndSwap(false, true) {
					<-stall // first DCAS attempt ever: park forever
				}
			}))

			var wg sync.WaitGroup
			wg.Add(1)
			go func() { // victim: will park inside its first push
				defer wg.Done()
				_ = d.PushRight(1)
			}()

			// Wait until the victim is parked.
			for !stalled.Load() {
				runtime.Gosched()
			}

			// Other workers must make progress.
			doneOps := 0
			deadline := time.Now().Add(5 * time.Second)
			for doneOps < 1000 {
				if time.Now().After(deadline) {
					t.Fatal("no progress while one thread is stalled")
				}
				if err := d.PushLeft(Value(doneOps + 2)); err != nil {
					t.Fatal(err)
				}
				if _, ok := d.PopRight(); ok {
					doneOps++
				}
			}

			close(stall)
			wg.Wait()
			d.Close()
			if got := w.h.Stats().LiveObjects; got != 0 {
				t.Errorf("LiveObjects = %d after Close, want 0", got)
			}
		})
	}
}
