package snark

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lfrc/internal/core"
	"lfrc/internal/dcas"
	"lfrc/internal/mem"
)

// world bundles a heap, RC and registered types for deque tests.
type world struct {
	h  *mem.Heap
	rc *core.RC
	ts Types
}

func worldFactories() map[string]func(t *testing.T) *world {
	mk := func(engine func(h *mem.Heap) dcas.Engine) func(t *testing.T) *world {
		return func(t *testing.T) *world {
			t.Helper()
			h := mem.NewHeap()
			return &world{h: h, rc: core.New(h, engine(h)), ts: MustRegisterTypes(h)}
		}
	}
	return map[string]func(t *testing.T) *world{
		"locking": mk(func(h *mem.Heap) dcas.Engine { return dcas.NewLocking(h) }),
		"mcas":    mk(func(h *mem.Heap) dcas.Engine { return dcas.NewMCAS(h) }),
	}
}

func newDeque(t *testing.T, w *world, opts ...Option) *Deque {
	t.Helper()
	d, err := New(w.rc, w.ts, opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d
}

func TestEmptyDequePops(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			d := newDeque(t, w)
			defer d.Close()

			if _, ok := d.PopLeft(); ok {
				t.Error("PopLeft on empty deque reported a value")
			}
			if _, ok := d.PopRight(); ok {
				t.Error("PopRight on empty deque reported a value")
			}
		})
	}
}

func TestPushPopSingleRight(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			d := newDeque(t, w)
			defer d.Close()

			if err := d.PushRight(42); err != nil {
				t.Fatalf("PushRight: %v", err)
			}
			v, ok := d.PopRight()
			if !ok || v != 42 {
				t.Fatalf("PopRight = (%d,%v), want (42,true)", v, ok)
			}
			if _, ok := d.PopRight(); ok {
				t.Error("deque not empty after popping its only element")
			}
		})
	}
}

func TestAllFourOpCombinations(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			tests := []struct {
				name string
				push func(d *Deque, v Value) error
				pop  func(d *Deque) (Value, bool)
				want []Value // pop order for pushes 1,2,3
			}{
				{
					name: "pushR popR (stack)",
					push: (*Deque).PushRight, pop: (*Deque).PopRight,
					want: []Value{3, 2, 1},
				},
				{
					name: "pushR popL (queue)",
					push: (*Deque).PushRight, pop: (*Deque).PopLeft,
					want: []Value{1, 2, 3},
				},
				{
					name: "pushL popR (queue)",
					push: (*Deque).PushLeft, pop: (*Deque).PopRight,
					want: []Value{1, 2, 3},
				},
				{
					name: "pushL popL (stack)",
					push: (*Deque).PushLeft, pop: (*Deque).PopLeft,
					want: []Value{3, 2, 1},
				},
			}
			for _, tt := range tests {
				t.Run(tt.name, func(t *testing.T) {
					w := mk(t)
					d := newDeque(t, w)
					defer d.Close()

					for v := Value(1); v <= 3; v++ {
						if err := tt.push(d, v); err != nil {
							t.Fatalf("push: %v", err)
						}
					}
					for _, want := range tt.want {
						v, ok := tt.pop(d)
						if !ok || v != want {
							t.Fatalf("pop = (%d,%v), want (%d,true)", v, ok, want)
						}
					}
					if _, ok := tt.pop(d); ok {
						t.Error("deque not empty at end")
					}
				})
			}
		})
	}
}

func TestInterleavedEndsRefillAfterEmpty(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			d := newDeque(t, w)
			defer d.Close()

			// Empty -> fill -> empty -> refill exercises the
			// dummy/sentinel transitions on both sides.
			for round := 0; round < 5; round++ {
				for v := Value(0); v < 10; v++ {
					if v%2 == 0 {
						if err := d.PushLeft(v); err != nil {
							t.Fatal(err)
						}
					} else {
						if err := d.PushRight(v); err != nil {
							t.Fatal(err)
						}
					}
				}
				got := map[Value]bool{}
				for i := 0; i < 10; i++ {
					var v Value
					var ok bool
					if i%2 == 0 {
						v, ok = d.PopRight()
					} else {
						v, ok = d.PopLeft()
					}
					if !ok {
						t.Fatalf("round %d: premature empty at %d", round, i)
					}
					if got[v] {
						t.Fatalf("round %d: duplicate %d", round, v)
					}
					got[v] = true
				}
				if _, ok := d.PopLeft(); ok {
					t.Fatalf("round %d: deque not empty", round)
				}
			}
		})
	}
}

func TestPushRejectsOutOfRangeValue(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			d := newDeque(t, w)
			defer d.Close()
			if err := d.PushRight(MaxValue + 1); err == nil {
				t.Error("PushRight accepted out-of-range value")
			}
			if err := d.PushLeft(MaxValue + 1); err == nil {
				t.Error("PushLeft accepted out-of-range value")
			}
		})
	}
}

// TestSequentialModelEquivalence property-tests the deque against a slice
// model over random operation scripts from both ends.
func TestSequentialModelEquivalence(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				w := mk(t)
				d := newDeque(t, w)
				defer d.Close()

				var model []Value
				next := Value(1)
				for i := 0; i < 300; i++ {
					switch rng.Intn(4) {
					case 0:
						if d.PushLeft(next) != nil {
							return false
						}
						model = append([]Value{next}, model...)
						next++
					case 1:
						if d.PushRight(next) != nil {
							return false
						}
						model = append(model, next)
						next++
					case 2:
						v, ok := d.PopLeft()
						if ok != (len(model) > 0) {
							return false
						}
						if ok {
							if v != model[0] {
								return false
							}
							model = model[1:]
						}
					case 3:
						v, ok := d.PopRight()
						if ok != (len(model) > 0) {
							return false
						}
						if ok {
							if v != model[len(model)-1] {
								return false
							}
							model = model[:len(model)-1]
						}
					}
				}
				// Drain and compare the remainder left-to-right.
				for _, want := range model {
					v, ok := d.PopLeft()
					if !ok || v != want {
						return false
					}
				}
				_, ok := d.PopLeft()
				return !ok
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestCloseReclaimsEverything(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			d := newDeque(t, w)
			for v := Value(0); v < 100; v++ {
				if err := d.PushRight(v); err != nil {
					t.Fatal(err)
				}
			}
			// Pop a few to create sentinel garbage, then close with
			// elements still enqueued.
			for i := 0; i < 10; i++ {
				d.PopLeft()
				d.PopRight()
			}
			d.Close()

			if got := w.h.Stats().LiveObjects; got != 0 {
				t.Errorf("LiveObjects = %d after Close, want 0", got)
			}
			if got := w.h.Stats().Corruptions; got != 0 {
				t.Errorf("Corruptions = %d, want 0", got)
			}
		})
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			d := newDeque(t, w)
			d.PushLeft(1)
			d.Close()
			d.Close() // must not double-free
			if got := w.h.Stats().DoubleFrees; got != 0 {
				t.Errorf("DoubleFrees = %d, want 0", got)
			}
		})
	}
}

// TestCyclicSentinelsLeak pins the behaviour the methodology's Step 3
// eliminates: with the original self-pointer sentinels, each pop strands a
// one-node garbage cycle that reference counting can never reclaim (paper
// §3 step 3, §4 and experiment E7).
func TestCyclicSentinelsLeak(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			d := newDeque(t, w, WithCyclicSentinels())

			const n = 50
			for v := Value(0); v < n; v++ {
				if err := d.PushRight(v); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < n; i++ {
				if _, ok := d.PopRight(); !ok {
					t.Fatalf("premature empty at %d", i)
				}
			}
			d.Close()

			leaked := w.h.Stats().LiveObjects
			if leaked == 0 {
				t.Fatal("cyclic-sentinel deque leaked nothing; expected stranded cycles")
			}
			t.Logf("cyclic sentinels stranded %d objects across %d pops", leaked, n)
		})
	}
}

// TestNullSentinelsDoNotLeak is the transformed counterpart of the test
// above: the identical workload with Step 3 applied leaves zero live
// objects.
func TestNullSentinelsDoNotLeak(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			d := newDeque(t, w)

			const n = 50
			for v := Value(0); v < n; v++ {
				if err := d.PushRight(v); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < n; i++ {
				if _, ok := d.PopRight(); !ok {
					t.Fatalf("premature empty at %d", i)
				}
			}
			d.Close()

			if got := w.h.Stats().LiveObjects; got != 0 {
				t.Errorf("LiveObjects = %d, want 0", got)
			}
		})
	}
}

// TestMemoryShrinksAfterDrain checks the paper's §1 claim that LFRC lets a
// structure's memory consumption grow and shrink over time: live words after
// draining return to the resting footprint.
func TestMemoryShrinksAfterDrain(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			d := newDeque(t, w)
			defer d.Close()

			resting := w.h.Stats().LiveWords
			for v := Value(0); v < 1000; v++ {
				if err := d.PushRight(v); err != nil {
					t.Fatal(err)
				}
			}
			grown := w.h.Stats().LiveWords
			if grown <= resting {
				t.Fatalf("LiveWords did not grow: %d -> %d", resting, grown)
			}
			for {
				if _, ok := d.PopLeft(); !ok {
					break
				}
			}
			if got := w.h.Stats().LiveWords; got != resting {
				t.Errorf("LiveWords after drain = %d, want resting %d", got, resting)
			}
		})
	}
}

func TestMultipleDequesShareHeap(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			d1 := newDeque(t, w)
			d2 := newDeque(t, w)

			for v := Value(0); v < 20; v++ {
				if err := d1.PushRight(v); err != nil {
					t.Fatal(err)
				}
				if err := d2.PushLeft(v + 100); err != nil {
					t.Fatal(err)
				}
			}
			for v := Value(0); v < 20; v++ {
				got, ok := d1.PopLeft()
				if !ok || got != v {
					t.Fatalf("d1.PopLeft = (%d,%v), want (%d,true)", got, ok, v)
				}
				got, ok = d2.PopRight()
				if !ok || got != v+100 {
					t.Fatalf("d2.PopRight = (%d,%v), want (%d,true)", got, ok, v+100)
				}
			}
			d1.Close()
			d2.Close()
			if got := w.h.Stats().LiveObjects; got != 0 {
				t.Errorf("LiveObjects = %d, want 0", got)
			}
		})
	}
}
