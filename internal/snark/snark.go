// Package snark implements the Snark lock-free double-ended queue — the
// DCAS-based deque of Detlefs, Flood, Garthwaite, Martin, Shavit & Steele
// ("Even Better DCAS-Based Concurrent Deques", DISC 2000) — in the
// GC-independent form obtained by the LFRC methodology (PODC 2001, §4 and
// Figure 1, right column).
//
// The deque is a doubly-linked list of SNodes with two hat pointers
// (LeftHat, RightHat) and a Dummy sentinel node. The LFRC transformation
// applied here is exactly the paper's:
//
//   - Step 1/2: nodes carry reference counts managed by package core.
//   - Step 3: sentinel self-pointers become null pointers so that garbage is
//     acyclic (the CyclicSentinels option re-enables the original
//     self-pointers to demonstrate the leak this step prevents — experiment
//     E7).
//   - Step 5/6: every pointer access goes through the LFRC operations, and
//     every local pointer variable is initialized to null and destroyed on
//     every return path.
//
// Historical note: two races in the published Snark algorithm were
// discovered after both papers appeared (Doherty et al., "DCAS is not a
// Silver Bullet for Nonblocking Algorithm Design", SPAA 2004): near-empty
// deques can double-report or lose a value. This package ships the
// *published* algorithm, faithful to what the LFRC paper transformed; the
// WithValueClaiming option adds a per-node claim CAS on the value cell so
// that no value can be returned twice, which is what the stress tests assert
// exact semantics against. Memory safety — the LFRC contribution — holds in
// both variants.
package snark

import (
	"fmt"

	"lfrc/internal/contend"
	"lfrc/internal/core"
	"lfrc/internal/fault"
	"lfrc/internal/mem"
	"lfrc/internal/obs"
)

// Value is the application payload carried by a deque node. It must be at
// most MaxValue; the two top bits of a cell are reserved by the DCAS engine
// and one more bit is reserved for the claim marker.
type Value = uint64

const (
	// MaxValue is the largest storable payload.
	MaxValue Value = 1<<61 - 1

	// claimedMark replaces a node's value once a pop has claimed it
	// (WithValueClaiming only).
	claimedMark uint64 = 1 << 61
)

// Field indices of an SNode (paper Figure 1: L, R, V).
const (
	fL = 0 // left neighbour (pointer)
	fR = 1 // right neighbour (pointer)
	fV = 2 // payload (scalar)
)

// Anchor field indices (the Snark object's own pointers).
const (
	aDummy = 0
	aLeft  = 1
	aRight = 2
)

// ErrValueOutOfRange is returned by pushes of payloads above MaxValue. It
// wraps the shared mem.ErrValueRange sentinel so errors.Is matches across
// every structure package and the root API.
var ErrValueOutOfRange = fmt.Errorf("snark: %w", mem.ErrValueRange)

// Types holds the heap type ids the deque uses. Register them once per heap
// and share across all deques on that heap.
type Types struct {
	SNode  mem.TypeID
	Anchor mem.TypeID
}

// RegisterTypes registers the SNode and anchor types on h.
func RegisterTypes(h *mem.Heap) (Types, error) {
	snode, err := h.RegisterType(mem.TypeDesc{
		Name:      "snark.SNode",
		NumFields: 3,
		PtrFields: []int{fL, fR},
	})
	if err != nil {
		return Types{}, fmt.Errorf("snark: register SNode: %w", err)
	}
	anchor, err := h.RegisterType(mem.TypeDesc{
		Name:      "snark.Anchor",
		NumFields: 3,
		PtrFields: []int{aDummy, aLeft, aRight},
	})
	if err != nil {
		return Types{}, fmt.Errorf("snark: register anchor: %w", err)
	}
	return Types{SNode: snode, Anchor: anchor}, nil
}

// MustRegisterTypes is RegisterTypes for static setup; it panics on error.
func MustRegisterTypes(h *mem.Heap) Types {
	ts, err := RegisterTypes(h)
	if err != nil {
		panic(err)
	}
	return ts
}

// Option configures a Deque.
type Option func(*Deque)

// WithCyclicSentinels restores the original Snark sentinel convention —
// self-pointers instead of null — deliberately violating the methodology's
// Step 3 so that popped sentinel nodes form one-node garbage cycles and
// leak. Used by experiment E7 and the gctrace backup-collector tests.
func WithCyclicSentinels() Option {
	return func(d *Deque) { d.cyclic = true }
}

// WithValueClaiming makes pops claim the node's value with a CAS before
// returning it, hardening the published algorithm's post-publication races
// into at-most-once delivery (see the package comment).
func WithValueClaiming() Option {
	return func(d *Deque) { d.claiming = true }
}

// WithBeforeDCAS installs a hook that runs immediately before every hat
// DCAS attempt. Experiments use it to stall a thread mid-operation (E4) at
// the point where the thread holds counted local references but no
// simulated-hardware resources.
func WithBeforeDCAS(hook func()) Option {
	return func(d *Deque) { d.beforeDCAS = hook }
}

// Deque is a GC-independent Snark deque.
type Deque struct {
	rc  *core.RC
	h   *mem.Heap
	ts  Types
	obs *obs.Recorder   // rc's recorder, cached; nil means disabled
	ct  *contend.Table  // rc's contention observatory, cached; nil means disabled
	fj  *fault.Injector // rc's fault injector, cached; nil means disabled

	anchor mem.Ref // counted reference owned by the Deque
	dummyA mem.Addr
	leftA  mem.Addr
	rightA mem.Addr
	dummy  mem.Ref // borrowed: kept alive by the anchor's Dummy field

	cyclic     bool
	claiming   bool
	beforeDCAS func()
	closed     bool
}

// New builds an empty deque (paper Figure 1, lines 34–39): the Dummy node's
// neighbour pointers are the sentinel value (null here, itself under
// WithCyclicSentinels) and both hats point at Dummy.
func New(rc *core.RC, ts Types, opts ...Option) (*Deque, error) {
	d := &Deque{rc: rc, h: rc.Heap(), ts: ts, obs: rc.Observer(), ct: rc.Contention(), fj: rc.Fault()}
	for _, o := range opts {
		o(d)
	}

	anchor, err := rc.NewObject(ts.Anchor)
	if err != nil {
		return nil, fmt.Errorf("snark: allocate anchor: %w", err)
	}
	d.anchor = anchor
	d.dummyA = d.h.FieldAddr(anchor, aDummy)
	d.leftA = d.h.FieldAddr(anchor, aLeft)
	d.rightA = d.h.FieldAddr(anchor, aRight)
	// Register the long-lived anchor cells with the contention observatory
	// so every recording site — even core's generic Load loop — profiles
	// them under their structural names.
	d.ct.Declare(uint32(d.dummyA), contend.RoleAnchor)
	d.ct.Declare(uint32(d.leftA), contend.RoleLeftHat)
	d.ct.Declare(uint32(d.rightA), contend.RoleRightHat)

	dummy, err := rc.NewObject(ts.SNode)
	if err != nil {
		rc.Destroy(anchor)
		return nil, fmt.Errorf("snark: allocate dummy: %w", err)
	}
	rc.StoreAlloc(d.dummyA, dummy) // transfer the new() reference
	d.dummy = dummy
	if d.cyclic {
		rc.Store(d.fieldL(dummy), dummy)
		rc.Store(d.fieldR(dummy), dummy)
	}
	rc.Store(d.leftA, dummy)
	rc.Store(d.rightA, dummy)
	return d, nil
}

// Anchor returns the deque's anchor object, suitable for registering as a
// root with the tracing backup collector (package gctrace). It is 0 after
// Close.
func (d *Deque) Anchor() mem.Ref { return d.anchor }

// fieldL, fieldR and fieldV compute node cell addresses.
func (d *Deque) fieldL(n mem.Ref) mem.Addr { return d.h.FieldAddr(n, fL) }
func (d *Deque) fieldR(n mem.Ref) mem.Addr { return d.h.FieldAddr(n, fR) }
func (d *Deque) fieldV(n mem.Ref) mem.Addr { return d.h.FieldAddr(n, fV) }

// isSentinel implements the paper's Step 3 reinterpretation: a pointer
// marks its node as a sentinel when it is null (or, in the original cyclic
// convention, a self-pointer).
func (d *Deque) isSentinel(ptr, node mem.Ref) bool {
	if d.cyclic {
		return ptr == node
	}
	return ptr == 0
}

// sentinelFor returns the pointer value a pop installs to mark node as a
// sentinel.
func (d *Deque) sentinelFor(node mem.Ref) mem.Ref {
	if d.cyclic {
		return node
	}
	return 0
}

// hookDCAS runs immediately before a hat-DCAS attempt: it fires the test
// hook, then consults the fault injector. A true return means the attempt is
// injected as failed — the caller retries without touching the hats, exactly
// as if the DCAS had lost a race (no contention attribution: nothing moved).
func (d *Deque) hookDCAS(p fault.Point) bool {
	if d.beforeDCAS != nil {
		d.beforeDCAS()
	}
	return d.fj.Inject(p)
}

// attFail reports a failed hat-DCAS attempt to the contention observatory,
// re-reading the comparands to blame the cell that actually moved.
func (d *Deque) attFail(op obs.Kind, a0 mem.Addr, r0 contend.Role, a1 mem.Addr, r1 contend.Role, old0, old1 mem.Ref) {
	if d.ct == nil {
		return
	}
	m0, m1 := d.rc.AttributeLinks(a0, a1, old0, old1)
	d.ct.Attempt(op, uint32(a0), r0, uint32(a1), r1, m0, m1)
}

// attDone reports a contended operation's successful final attempt (and its
// retry-chain length). Uncontended operations record nothing.
func (d *Deque) attDone(op obs.Kind, a0 mem.Addr, r0 contend.Role, a1 mem.Addr, r1 contend.Role, retries uint32) {
	if retries > 0 {
		d.ct.OpDone(op, uint32(a0), r0, uint32(a1), r1, retries)
	}
}

// PushRight appends v on the right (paper Figure 1, lines 49–68).
func (d *Deque) PushRight(v Value) error {
	if v > MaxValue {
		return fmt.Errorf("%w: %#x", ErrValueOutOfRange, v)
	}
	nd, err := d.rc.NewObject(d.ts.SNode) // line 49
	if err != nil {
		return fmt.Errorf("snark: %w", err) // lines 51..53 (FULL)
	}
	var rh, rhR, lh mem.Ref // line 50: locals start null

	t0 := d.obs.Sample()
	d.rc.Store(d.fieldR(nd), d.dummy) // line 54
	d.rc.WordStore(d.fieldV(nd), v)   // line 55
	for retries := uint32(0); ; retries++ {
		d.rc.Load(d.rightA, &rh)      // line 57
		d.rc.Load(d.fieldR(rh), &rhR) // line 58
		if d.isSentinel(rhR, rh) {    // line 59
			d.rc.Store(d.fieldL(nd), d.dummy) // line 60
			d.rc.Load(d.leftA, &lh)           // line 61
			if d.hookDCAS(fault.SnarkPushRight) {
				continue
			}
			if d.rc.DCAS(d.rightA, d.leftA, rh, lh, nd, nd) { // line 62
				d.attDone(obs.KindPushRight, d.rightA, contend.RoleRightHat, d.leftA, contend.RoleLeftHat, retries)
				d.obs.Record(t0, obs.KindPushRight, uint32(nd), 0, true, retries)
				d.rc.Destroy(rhR, nd, rh, lh) // line 63
				return nil                    // line 64
			}
			d.attFail(obs.KindPushRight, d.rightA, contend.RoleRightHat, d.leftA, contend.RoleLeftHat, rh, lh)
		} else {
			d.rc.Store(d.fieldL(nd), rh) // line 65
			if d.hookDCAS(fault.SnarkPushRight) {
				continue
			}
			if d.rc.DCAS(d.rightA, d.fieldR(rh), rh, rhR, nd, nd) { // line 66
				d.attDone(obs.KindPushRight, d.rightA, contend.RoleRightHat, d.fieldR(rh), contend.RoleNodeLink, retries)
				d.obs.Record(t0, obs.KindPushRight, uint32(nd), 0, true, retries)
				d.rc.Destroy(rhR, nd, rh, lh) // line 67
				return nil                    // line 68
			}
			d.attFail(obs.KindPushRight, d.rightA, contend.RoleRightHat, d.fieldR(rh), contend.RoleNodeLink, rh, rhR)
		}
	}
}

// PushLeft prepends v on the left (mirror image of PushRight).
func (d *Deque) PushLeft(v Value) error {
	if v > MaxValue {
		return fmt.Errorf("%w: %#x", ErrValueOutOfRange, v)
	}
	nd, err := d.rc.NewObject(d.ts.SNode)
	if err != nil {
		return fmt.Errorf("snark: %w", err)
	}
	var lh, lhL, rh mem.Ref

	t0 := d.obs.Sample()
	d.rc.Store(d.fieldL(nd), d.dummy)
	d.rc.WordStore(d.fieldV(nd), v)
	for retries := uint32(0); ; retries++ {
		d.rc.Load(d.leftA, &lh)
		d.rc.Load(d.fieldL(lh), &lhL)
		if d.isSentinel(lhL, lh) {
			d.rc.Store(d.fieldR(nd), d.dummy)
			d.rc.Load(d.rightA, &rh)
			if d.hookDCAS(fault.SnarkPushLeft) {
				continue
			}
			if d.rc.DCAS(d.leftA, d.rightA, lh, rh, nd, nd) {
				d.attDone(obs.KindPushLeft, d.leftA, contend.RoleLeftHat, d.rightA, contend.RoleRightHat, retries)
				d.obs.Record(t0, obs.KindPushLeft, uint32(nd), 0, true, retries)
				d.rc.Destroy(lhL, nd, lh, rh)
				return nil
			}
			d.attFail(obs.KindPushLeft, d.leftA, contend.RoleLeftHat, d.rightA, contend.RoleRightHat, lh, rh)
		} else {
			d.rc.Store(d.fieldR(nd), lh)
			if d.hookDCAS(fault.SnarkPushLeft) {
				continue
			}
			if d.rc.DCAS(d.leftA, d.fieldL(lh), lh, lhL, nd, nd) {
				d.attDone(obs.KindPushLeft, d.leftA, contend.RoleLeftHat, d.fieldL(lh), contend.RoleNodeLink, retries)
				d.obs.Record(t0, obs.KindPushLeft, uint32(nd), 0, true, retries)
				d.rc.Destroy(lhL, nd, lh, rh)
				return nil
			}
			d.attFail(obs.KindPushLeft, d.leftA, contend.RoleLeftHat, d.fieldL(lh), contend.RoleNodeLink, lh, lhL)
		}
	}
}

// PopRight removes and returns the rightmost value; ok is false when the
// deque is observed empty. The structure follows the DISC 2000 popRight with
// the LFRC transformation applied: the one-node case swings both hats back
// to Dummy with a single DCAS, the general case swings RightHat left while
// marking the popped node as a sentinel.
func (d *Deque) PopRight() (v Value, ok bool) {
	var rh, lh, rhR, rhL mem.Ref
	t0 := d.obs.Sample()
	for retries := uint32(0); ; retries++ {
		d.rc.Load(d.rightA, &rh)
		d.rc.Load(d.leftA, &lh)
		d.rc.Load(d.fieldR(rh), &rhR)
		if d.isSentinel(rhR, rh) { // hat rests on a sentinel: empty
			d.obs.Record(t0, obs.KindPopRight, 0, 0, false, retries)
			d.rc.Destroy(rh, lh, rhR, rhL)
			return 0, false
		}
		if rh == lh { // exactly one (apparent) node
			if d.hookDCAS(fault.SnarkPopRight) {
				continue
			}
			if d.rc.DCAS(d.rightA, d.leftA, rh, lh, d.dummy, d.dummy) {
				d.attDone(obs.KindPopRight, d.rightA, contend.RoleRightHat, d.leftA, contend.RoleLeftHat, retries)
				v, claimed := d.takeValue(rh)
				if !claimed {
					continue
				}
				d.obs.Record(t0, obs.KindPopRight, uint32(rh), 0, true, retries)
				d.rc.Destroy(rh, lh, rhR, rhL)
				return v, true
			}
			d.attFail(obs.KindPopRight, d.rightA, contend.RoleRightHat, d.leftA, contend.RoleLeftHat, rh, lh)
		} else {
			d.rc.Load(d.fieldL(rh), &rhL)
			if d.hookDCAS(fault.SnarkPopRight) {
				continue
			}
			if d.rc.DCAS(d.rightA, d.fieldL(rh), rh, rhL, rhL, d.sentinelFor(rh)) {
				d.attDone(obs.KindPopRight, d.rightA, contend.RoleRightHat, d.fieldL(rh), contend.RoleNodeLink, retries)
				v, claimed := d.takeValue(rh)
				if !claimed {
					continue
				}
				// Break any garbage chain hanging off the popped
				// node (original line "rh->R = Dummy").
				d.rc.Store(d.fieldR(rh), d.dummy)
				d.obs.Record(t0, obs.KindPopRight, uint32(rh), 0, true, retries)
				d.rc.Destroy(rh, lh, rhR, rhL)
				return v, true
			}
			d.attFail(obs.KindPopRight, d.rightA, contend.RoleRightHat, d.fieldL(rh), contend.RoleNodeLink, rh, rhL)
		}
	}
}

// PopLeft removes and returns the leftmost value (mirror of PopRight).
func (d *Deque) PopLeft() (v Value, ok bool) {
	var lh, rh, lhL, lhR mem.Ref
	t0 := d.obs.Sample()
	for retries := uint32(0); ; retries++ {
		d.rc.Load(d.leftA, &lh)
		d.rc.Load(d.rightA, &rh)
		d.rc.Load(d.fieldL(lh), &lhL)
		if d.isSentinel(lhL, lh) {
			d.obs.Record(t0, obs.KindPopLeft, 0, 0, false, retries)
			d.rc.Destroy(lh, rh, lhL, lhR)
			return 0, false
		}
		if lh == rh {
			if d.hookDCAS(fault.SnarkPopLeft) {
				continue
			}
			if d.rc.DCAS(d.leftA, d.rightA, lh, rh, d.dummy, d.dummy) {
				d.attDone(obs.KindPopLeft, d.leftA, contend.RoleLeftHat, d.rightA, contend.RoleRightHat, retries)
				v, claimed := d.takeValue(lh)
				if !claimed {
					continue
				}
				d.obs.Record(t0, obs.KindPopLeft, uint32(lh), 0, true, retries)
				d.rc.Destroy(lh, rh, lhL, lhR)
				return v, true
			}
			d.attFail(obs.KindPopLeft, d.leftA, contend.RoleLeftHat, d.rightA, contend.RoleRightHat, lh, rh)
		} else {
			d.rc.Load(d.fieldR(lh), &lhR)
			if d.hookDCAS(fault.SnarkPopLeft) {
				continue
			}
			if d.rc.DCAS(d.leftA, d.fieldR(lh), lh, lhR, lhR, d.sentinelFor(lh)) {
				d.attDone(obs.KindPopLeft, d.leftA, contend.RoleLeftHat, d.fieldR(lh), contend.RoleNodeLink, retries)
				v, claimed := d.takeValue(lh)
				if !claimed {
					continue
				}
				d.rc.Store(d.fieldL(lh), d.dummy)
				d.obs.Record(t0, obs.KindPopLeft, uint32(lh), 0, true, retries)
				d.rc.Destroy(lh, rh, lhL, lhR)
				return v, true
			}
			d.attFail(obs.KindPopLeft, d.leftA, contend.RoleLeftHat, d.fieldR(lh), contend.RoleNodeLink, lh, lhR)
		}
	}
}

// takeValue reads a popped node's payload. Without claiming it simply reads
// the cell. With claiming it CASes the cell to claimedMark; claimed is false
// if another pop got there first, in which case the caller retries the whole
// operation.
func (d *Deque) takeValue(n mem.Ref) (v Value, claimed bool) {
	if !d.claiming {
		return d.rc.WordLoad(d.fieldV(n)), true
	}
	for {
		cur := d.rc.WordLoad(d.fieldV(n))
		if cur == claimedMark {
			return 0, false
		}
		if d.rc.WordCAS(d.fieldV(n), cur, claimedMark) {
			return cur, true
		}
	}
}

// Close drains the deque, severs the anchor's pointers (paper Figure 1,
// lines 40–44, the added destructor) and releases the anchor. It must not
// run concurrently with other operations; the paper makes the same demand of
// the Snark destructor.
func (d *Deque) Close() {
	if d.closed {
		return
	}
	d.closed = true
	for {
		if _, ok := d.PopLeft(); !ok {
			break
		}
	}
	d.rc.Store(d.dummyA, 0)
	d.rc.Store(d.leftA, 0)
	d.rc.Store(d.rightA, 0)
	d.rc.Destroy(d.anchor)
	d.anchor = 0
	d.dummy = 0
}
