package snark

import (
	"testing"

	"lfrc/internal/core"
	"lfrc/internal/dcas"
	"lfrc/internal/mem"
)

// FuzzDequeModel interprets the fuzz input as an operation script and runs
// it against the slice model, on both engines, checking results, leak
// freedom, and heap integrity. `go test` runs the seed corpus; `go test
// -fuzz=FuzzDequeModel ./internal/snark` explores further.
func FuzzDequeModel(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{0, 0, 0, 2, 2, 2, 3})
	f.Add([]byte{1, 3, 1, 3, 1, 2, 0, 2})
	f.Add([]byte{2, 3, 2, 3}) // pops on empty
	f.Add([]byte{0, 2, 1, 3, 0, 2, 1, 3, 0, 2, 1, 3})

	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 512 {
			script = script[:512]
		}
		for _, engine := range []func(h *mem.Heap) dcas.Engine{
			func(h *mem.Heap) dcas.Engine { return dcas.NewLocking(h) },
			func(h *mem.Heap) dcas.Engine { return dcas.NewMCAS(h) },
		} {
			h := mem.NewHeap()
			rc := core.New(h, engine(h))
			d, err := New(rc, MustRegisterTypes(h))
			if err != nil {
				t.Fatalf("New: %v", err)
			}

			var model []Value
			next := Value(1)
			for _, op := range script {
				switch op % 4 {
				case 0:
					if err := d.PushLeft(next); err != nil {
						t.Fatalf("PushLeft: %v", err)
					}
					model = append([]Value{next}, model...)
					next++
				case 1:
					if err := d.PushRight(next); err != nil {
						t.Fatalf("PushRight: %v", err)
					}
					model = append(model, next)
					next++
				case 2:
					v, ok := d.PopLeft()
					if ok != (len(model) > 0) {
						t.Fatalf("PopLeft ok=%v, model len=%d", ok, len(model))
					}
					if ok {
						if v != model[0] {
							t.Fatalf("PopLeft = %d, want %d", v, model[0])
						}
						model = model[1:]
					}
				case 3:
					v, ok := d.PopRight()
					if ok != (len(model) > 0) {
						t.Fatalf("PopRight ok=%v, model len=%d", ok, len(model))
					}
					if ok {
						if v != model[len(model)-1] {
							t.Fatalf("PopRight = %d, want %d", v, model[len(model)-1])
						}
						model = model[:len(model)-1]
					}
				}
			}
			d.Close()
			if got := h.Stats().LiveObjects; got != 0 {
				t.Fatalf("leaked %d objects", got)
			}
			if got := h.Stats().Corruptions; got != 0 {
				t.Fatalf("%d corruptions", got)
			}
		}
	})
}
