package snark

import (
	"testing"

	"lfrc/internal/mem"
)

// TestSnarkPopsDoNotChainGarbage is the counterpart of package msqueue's
// TestStragglerPinsRetiredChain: Snark's pops explicitly redirect the popped
// node's outgoing pointer back to Dummy (the original algorithm's
// "rh->R = Dummy" line, kept by the LFRC transformation), so retired nodes
// never form chains. A straggler holding one popped node pins exactly that
// node — transitive pinning is impossible by construction.
func TestSnarkPopsDoNotChainGarbage(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			d := newDeque(t, w)

			// Straggler: take and hold a counted reference to the
			// current rightmost node, then churn the deque hard.
			if err := d.PushRight(999); err != nil {
				t.Fatal(err)
			}
			var pin mem.Ref
			w.rc.Load(d.rightA, &pin)
			if pin == 0 {
				t.Fatal("no node to pin")
			}

			const churn = 1000
			// Keep the deque non-trivial so pops take the general path.
			for i := 0; i < 4; i++ {
				if err := d.PushLeft(uint64(i + 1)); err != nil {
					t.Fatal(err)
				}
			}
			for i := 0; i < churn; i++ {
				if err := d.PushLeft(uint64(i + 10)); err != nil {
					t.Fatal(err)
				}
				d.PopLeft()
			}

			// The straggler pins a bounded residue — not the churned
			// chain. (The pinned node's own L/R each pin at most one
			// neighbour at pop time, both redirected to Dummy.)
			live := w.h.Stats().LiveObjects
			const bound = 16 // anchor + dummy + deque contents + pinned residue
			if live > bound {
				t.Errorf("straggler pinned %d live objects; snark pops should sever chains (bound %d)",
					live, bound)
			}
			w.rc.Destroy(pin)
			d.Close()
			if got := w.h.Stats().LiveObjects; got != 0 {
				t.Errorf("LiveObjects = %d after Close, want 0", got)
			}
		})
	}
}
