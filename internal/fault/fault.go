// Package fault is the deterministic fault-injection subsystem: it forces
// the nasty interleavings the LFRC proofs are about — DCAS/CAS failures at
// linearization points, allocation failure mid-operation, stalls inside the
// structure retry loops — on demand and reproducibly.
//
// Every instrumented site in the codebase is a declared injection Point.
// A Plan assigns each point a Rule (probabilistic, every-Nth, or scripted
// exact attempt ordinals, optionally bounded and optionally delaying), and an
// Injector evaluates the plan. The design constraints:
//
//   - Deterministic: whether attempt n at point p fires depends only on
//     (seed, p, n) — never on wall time, goroutine identity, or scheduling.
//     Two runs with the same seed and plan produce the same firing schedule
//     at every point, which is what makes a chaos failure replayable. The
//     pure predicate is exposed as Injector.Would.
//   - Zero overhead when disabled: a nil *Injector is valid and fully
//     disabled; every hot-path call is one nil check plus (when an injector
//     is installed) one per-point bool load. Sites on uninstrumented systems
//     pay only the nil check.
//   - Honest semantics: an injected DCAS/CAS failure makes the caller take
//     exactly the retry/compensation path a genuine failure takes, so the
//     paths the paper's §4 proofs cover are exercised, not simulated.
//
// The firing log (Schedule) retains the most recent firings so postmortems
// can capture the injected schedule for replay.
package fault

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Point is a declared injection site.
type Point uint8

// Injection points. The core points cover the LFRC operations' CAS/DCAS
// attempts (Copy and Destroy inject through CoreAddToRC, the count-update
// loop they share); the reclaim points cover the reclamation backends'
// deferral machinery (park/drain CASes on either backend, plus the epoch
// backend's advance CAS); the structure points cover each retry loop at the
// spot between its loads and its linearizing CAS/DCAS — the window the
// proofs close; the mem points cover allocation failure and allocator
// slow-path forcing.
const (
	CoreLoad       Point = iota // DCAS inside LFRCLoad
	CoreStore                   // CAS inside LFRCStore
	CoreStoreAlloc              // CAS inside LFRCStoreAlloc
	CoreCAS                     // LFRCCAS attempt
	CoreDCAS                    // LFRCDCAS / DCASMixed attempt
	CoreAddToRC                 // CAS inside add_to_rc (Copy/Destroy inject here)
	ReclaimPush                 // deferral-list push CAS (zombie stack / limbo bin)
	ReclaimDrain                // deferral-list pop CAS (zombie stack / limbo bin)
	SnarkPushLeft               // left-hat DCAS in Deque.PushLeft
	SnarkPushRight              // right-hat DCAS in Deque.PushRight
	SnarkPopLeft                // left-hat DCAS in Deque.PopLeft
	SnarkPopRight               // right-hat DCAS in Deque.PopRight
	QueueEnqueue                // next-link CAS in Queue.Enqueue
	QueueDequeue                // head CAS in Queue.Dequeue
	StackPush                   // top CAS in Stack.Push
	StackPop                    // top CAS in Stack.Pop
	SetInsert                   // link CAS/DCAS in List.Insert
	SetDelete                   // dead-mark CAS in List.Delete
	SetPopMin                   // dead-mark CAS in List.PopMin
	MemAlloc                    // Alloc fails with ErrOutOfMemory
	MemAllocSlow                // Alloc skips the shard-local free list
	ReclaimEpoch                // epoch-advance CAS in the epoch reclamation backend

	NumPoints
)

// pointNames maps points to their stable spec names (see Parse).
var pointNames = [NumPoints]string{
	CoreLoad:       "core.load",
	CoreStore:      "core.store",
	CoreStoreAlloc: "core.storealloc",
	CoreCAS:        "core.cas",
	CoreDCAS:       "core.dcas",
	CoreAddToRC:    "core.addtorc",
	ReclaimPush:    "reclaim.push",
	ReclaimDrain:   "reclaim.drain",
	ReclaimEpoch:   "reclaim.epoch",
	SnarkPushLeft:  "snark.pushleft",
	SnarkPushRight: "snark.pushright",
	SnarkPopLeft:   "snark.popleft",
	SnarkPopRight:  "snark.popright",
	QueueEnqueue:   "queue.enqueue",
	QueueDequeue:   "queue.dequeue",
	StackPush:      "stack.push",
	StackPop:       "stack.pop",
	SetInsert:      "set.insert",
	SetDelete:      "set.delete",
	SetPopMin:      "set.popmin",
	MemAlloc:       "mem.alloc",
	MemAllocSlow:   "mem.alloc.slow",
}

// String implements fmt.Stringer.
func (p Point) String() string {
	if p < NumPoints {
		return pointNames[p]
	}
	return fmt.Sprintf("Point(%d)", int(p))
}

// ParsePoint resolves a spec name to its Point.
func ParsePoint(s string) (Point, error) {
	for p, n := range pointNames {
		if n == s {
			return Point(p), nil
		}
	}
	return 0, fmt.Errorf("fault: unknown injection point %q", s)
}

// Rule is one point's injection schedule. Exactly one trigger — Prob, EveryN
// or Nth — decides whether attempt n fires; Limit bounds the total number of
// firings; DelayNS (or Gosched) stalls the firing thread; Stall makes a
// firing delay-only instead of forcing a failure.
type Rule struct {
	// Prob fires each attempt independently with this probability,
	// hash-derived from (seed, point, attempt ordinal) so the schedule is
	// seed-reproducible.
	Prob float64

	// EveryN fires every Nth attempt (n % EveryN == 0).
	EveryN uint64

	// Nth fires on exactly these attempt ordinals (1-based, sorted).
	Nth []uint64

	// Limit caps the number of firings (0 = unlimited). Under concurrent
	// attempts the cutoff may overshoot by in-flight attempts; schedules
	// that must be exact use Nth.
	Limit uint64

	// DelayNS sleeps the firing thread this long. With Gosched the thread
	// instead yields its processor — the cheap way to open a race window.
	DelayNS int64
	Gosched bool

	// Stall makes a firing delay-only: the attempt proceeds normally
	// after the stall instead of being forced to fail.
	Stall bool

	// threshold is Prob as a fixed-point uint64 fraction of 2^64.
	threshold uint64
}

// enabled reports whether the rule has any trigger.
func (r *Rule) enabled() bool {
	return r.Prob > 0 || r.EveryN > 0 || len(r.Nth) > 0
}

// fires is the pure decision predicate for attempt n under seed.
func (r *Rule) fires(seed uint64, p Point, n uint64) bool {
	if len(r.Nth) > 0 {
		i := sort.Search(len(r.Nth), func(i int) bool { return r.Nth[i] >= n })
		return i < len(r.Nth) && r.Nth[i] == n
	}
	if r.EveryN > 0 {
		return n%r.EveryN == 0
	}
	if r.threshold > 0 {
		return mix(seed^(uint64(p)+1)*0x9E3779B97F4A7C15^n*0xD1B54A32D192ED03) < r.threshold
	}
	return false
}

// mix is the splitmix64 finalizer: a fast, well-distributed 64-bit hash.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Plan assigns rules to injection points. The zero Plan injects nothing.
type Plan struct {
	rules [NumPoints]Rule
}

// Set installs r at point p (replacing any previous rule).
func (pl *Plan) Set(p Point, r Rule) {
	if r.Prob < 0 {
		r.Prob = 0
	}
	if r.Prob > 1 {
		r.Prob = 1
	}
	if r.Prob >= 1 {
		r.threshold = math.MaxUint64
	} else {
		r.threshold = uint64(r.Prob * float64(1<<63) * 2)
	}
	sort.Slice(r.Nth, func(i, j int) bool { return r.Nth[i] < r.Nth[j] })
	pl.rules[p] = r
}

// Rule returns the rule installed at p.
func (pl *Plan) Rule(p Point) Rule { return pl.rules[p] }

// Empty reports whether no point has a trigger.
func (pl *Plan) Empty() bool {
	if pl == nil {
		return true
	}
	for i := range pl.rules {
		if pl.rules[i].enabled() {
			return true == false
		}
	}
	return true
}

// String renders the plan in the spec syntax Parse accepts.
func (pl *Plan) String() string {
	if pl == nil {
		return ""
	}
	var parts []string
	for i := range pl.rules {
		r := &pl.rules[i]
		if !r.enabled() {
			continue
		}
		var ds []string
		switch {
		case len(r.Nth) > 0:
			ns := make([]string, len(r.Nth))
			for j, n := range r.Nth {
				ns[j] = strconv.FormatUint(n, 10)
			}
			ds = append(ds, "nth="+strings.Join(ns, "+"))
		case r.EveryN > 0:
			ds = append(ds, "every="+strconv.FormatUint(r.EveryN, 10))
		default:
			ds = append(ds, "p="+strconv.FormatFloat(r.Prob, 'g', -1, 64))
		}
		if r.Limit > 0 {
			ds = append(ds, "limit="+strconv.FormatUint(r.Limit, 10))
		}
		if r.DelayNS > 0 {
			ds = append(ds, "delay="+time.Duration(r.DelayNS).String())
		}
		if r.Gosched {
			ds = append(ds, "gosched")
		}
		if r.Stall {
			ds = append(ds, "stall")
		}
		parts = append(parts, Point(i).String()+":"+strings.Join(ds, ","))
	}
	return strings.Join(parts, ";")
}

// Parse builds a Plan from a spec string:
//
//	spec       = point-rule *( ";" point-rule )
//	point-rule = point ":" directive *( "," directive )
//	point      = "core.load" | "snark.popright" | ... | "core.*" | "*"
//	directive  = "p=" FLOAT          probabilistic firing
//	           | "every=" N          fire every Nth attempt
//	           | "nth=" N *( "+" N ) fire on exactly these attempts (1-based)
//	           | "limit=" N          at most N firings
//	           | "delay=" DURATION   stall the firing thread (Go duration)
//	           | "gosched"           yield instead of sleeping
//	           | "stall"             delay-only: do not force a failure
//
// A point ending in "*" is a prefix glob ("core.*" covers every core point,
// "*" covers everything). A rule with only action directives (delay, gosched,
// stall, limit) defaults to every=1. Example:
//
//	core.load:p=0.01;snark.popright:nth=3+7,stall,delay=100us;mem.alloc:every=1000
func Parse(spec string) (*Plan, error) {
	pl := &Plan{}
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return pl, nil
	}
	for _, pr := range strings.Split(spec, ";") {
		pr = strings.TrimSpace(pr)
		if pr == "" {
			continue
		}
		name, directives, ok := strings.Cut(pr, ":")
		if !ok {
			return nil, fmt.Errorf("fault: rule %q: want point:directive[,directive...]", pr)
		}
		name = strings.ToLower(strings.TrimSpace(name))
		var points []Point
		if strings.HasSuffix(name, "*") {
			prefix := strings.TrimSuffix(name, "*")
			for p := Point(0); p < NumPoints; p++ {
				if strings.HasPrefix(p.String(), prefix) {
					points = append(points, p)
				}
			}
			if len(points) == 0 {
				return nil, fmt.Errorf("fault: glob %q matches no injection point", name)
			}
		} else {
			p, err := ParsePoint(name)
			if err != nil {
				return nil, err
			}
			points = []Point{p}
		}

		var r Rule
		for _, d := range strings.Split(directives, ",") {
			d = strings.TrimSpace(d)
			if d == "" {
				continue
			}
			key, val, _ := strings.Cut(d, "=")
			var err error
			switch strings.ToLower(key) {
			case "p":
				r.Prob, err = strconv.ParseFloat(val, 64)
				if err == nil && (r.Prob < 0 || r.Prob > 1) {
					err = fmt.Errorf("probability %v outside [0,1]", r.Prob)
				}
			case "every":
				r.EveryN, err = strconv.ParseUint(val, 10, 64)
				if err == nil && r.EveryN == 0 {
					err = fmt.Errorf("every=0")
				}
			case "nth":
				for _, ns := range strings.Split(val, "+") {
					var n uint64
					n, err = strconv.ParseUint(strings.TrimSpace(ns), 10, 56)
					if err != nil || n == 0 {
						err = fmt.Errorf("bad attempt ordinal %q", ns)
						break
					}
					r.Nth = append(r.Nth, n)
				}
			case "limit":
				r.Limit, err = strconv.ParseUint(val, 10, 64)
			case "delay":
				var dur time.Duration
				dur, err = time.ParseDuration(val)
				if err == nil && dur < 0 {
					err = fmt.Errorf("negative delay")
				}
				r.DelayNS = int64(dur)
			case "gosched":
				r.Gosched = true
			case "stall":
				r.Stall = true
			default:
				err = fmt.Errorf("unknown directive")
			}
			if err != nil {
				return nil, fmt.Errorf("fault: rule %q directive %q: %v", pr, d, err)
			}
		}
		if !r.enabled() {
			r.EveryN = 1 // action-only rules fire on every attempt
		}
		for _, p := range points {
			pl.Set(p, r)
		}
	}
	return pl, nil
}

// scheduleLen is the firing-log retention: enough to replay the tail of a
// chaos run without unbounded memory.
const scheduleLen = 4096

// Injector evaluates a Plan under a seed. A nil *Injector is valid and fully
// disabled. All methods are safe for concurrent use.
type Injector struct {
	seed  uint64
	rules [NumPoints]Rule

	// on is the per-point hot-path gate, kept separate from rules so the
	// inlined Inject wrapper reads one byte.
	on [NumPoints]bool

	pts [NumPoints]pointState

	// ring is the firing log: packed (point << 56 | attempt ordinal)
	// words claimed with one atomic increment. Slots are read racily by
	// Schedule — diagnostics, not a synchronization channel.
	ringPos atomic.Uint64
	ring    [scheduleLen]atomic.Uint64
}

// pointState is one point's counters, padded so neighbouring points on hot
// loops don't false-share.
type pointState struct {
	attempts atomic.Uint64
	fires    atomic.Uint64
	_        [48]byte
}

// NewInjector builds an injector for plan under seed. A nil or empty plan
// returns nil — the disabled injector.
func NewInjector(pl *Plan, seed uint64) *Injector {
	if pl.Empty() {
		return nil
	}
	in := &Injector{seed: seed, rules: pl.rules}
	for i := range in.rules {
		in.on[i] = in.rules[i].enabled()
	}
	return in
}

// Inject is the hot-path call at every declared site: it reports whether the
// caller must treat this attempt as failed. It may stall the calling thread
// first (delay rules). Disabled (nil injector or unruled point) it is one
// nil check and one bool load.
func (in *Injector) Inject(p Point) bool {
	if in == nil || !in.on[p] {
		return false
	}
	return in.inject(p)
}

// inject is the outlined firing path.
func (in *Injector) inject(p Point) bool {
	r := &in.rules[p]
	st := &in.pts[p]
	n := st.attempts.Add(1)
	if !r.fires(in.seed, p, n) {
		return false
	}
	if r.Limit > 0 && st.fires.Load() >= r.Limit {
		return false
	}
	st.fires.Add(1)
	in.ring[(in.ringPos.Add(1)-1)%scheduleLen].Store(uint64(p)<<56 | n&(1<<56-1))
	if r.DelayNS > 0 {
		time.Sleep(time.Duration(r.DelayNS))
	} else if r.Gosched {
		runtime.Gosched()
	}
	return !r.Stall
}

// Would is the pure replay predicate: whether attempt n at point p fires
// under this injector's seed and plan. It consults no mutable state, so a
// recorded schedule can be re-derived or verified offline.
func (in *Injector) Would(p Point, n uint64) bool {
	if in == nil || !in.on[p] {
		return false
	}
	return in.rules[p].fires(in.seed, p, n)
}

// Seed returns the injector's seed (0 for a nil injector).
func (in *Injector) Seed() uint64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// Enabled reports whether any point is armed.
func (in *Injector) Enabled() bool { return in != nil }

// PointStat is one point's injection accounting.
type PointStat struct {
	Point    Point  `json:"-"`
	Name     string `json:"point"`
	Attempts uint64 `json:"attempts"`
	Fires    uint64 `json:"fires"`
}

// Stats returns accounting for every armed point, in point order.
func (in *Injector) Stats() []PointStat {
	if in == nil {
		return nil
	}
	var out []PointStat
	for p := Point(0); p < NumPoints; p++ {
		if !in.on[p] {
			continue
		}
		out = append(out, PointStat{
			Point:    p,
			Name:     p.String(),
			Attempts: in.pts[p].attempts.Load(),
			Fires:    in.pts[p].fires.Load(),
		})
	}
	return out
}

// Fires returns the total number of firings across all points.
func (in *Injector) Fires() uint64 {
	if in == nil {
		return 0
	}
	var t uint64
	for p := range in.pts {
		t += in.pts[p].fires.Load()
	}
	return t
}

// Firing is one entry of the injected schedule: attempt ordinal n at point p
// fired.
type Firing struct {
	Point   Point  `json:"-"`
	Name    string `json:"point"`
	Attempt uint64 `json:"attempt"`
}

// Schedule returns the retained firing log, oldest first (bounded retention:
// the most recent firings survive). Together with the seed and plan it makes
// a failure replayable: the same seed re-fires the same ordinals.
func (in *Injector) Schedule() []Firing {
	if in == nil {
		return nil
	}
	pos := in.ringPos.Load()
	start := uint64(0)
	if pos > scheduleLen {
		start = pos - scheduleLen
	}
	out := make([]Firing, 0, pos-start)
	for i := start; i < pos; i++ {
		w := in.ring[i%scheduleLen].Load()
		if w == 0 {
			continue
		}
		out = append(out, Firing{
			Point:   Point(w >> 56),
			Name:    Point(w >> 56).String(),
			Attempt: w & (1<<56 - 1),
		})
	}
	return out
}

// ScheduleString renders the tail of the firing log compactly
// ("core.load@17 snark.popright@3 ..."), capped at max entries (0 = all
// retained). Postmortems embed it so a capture carries its injected schedule.
func (in *Injector) ScheduleString(max int) string {
	fs := in.Schedule()
	if max > 0 && len(fs) > max {
		fs = fs[len(fs)-max:]
	}
	if len(fs) == 0 {
		return ""
	}
	var sb strings.Builder
	for i, f := range fs {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s@%d", f.Name, f.Attempt)
	}
	return sb.String()
}
