package fault

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParseRoundTrip(t *testing.T) {
	spec := "core.load:p=0.25;snark.popright:nth=3+7,stall;mem.alloc:every=100,limit=5"
	pl, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	if r := pl.Rule(CoreLoad); r.Prob != 0.25 {
		t.Fatalf("core.load prob = %v, want 0.25", r.Prob)
	}
	if r := pl.Rule(SnarkPopRight); len(r.Nth) != 2 || r.Nth[0] != 3 || r.Nth[1] != 7 || !r.Stall {
		t.Fatalf("snark.popright rule = %+v", r)
	}
	if r := pl.Rule(MemAlloc); r.EveryN != 100 || r.Limit != 5 {
		t.Fatalf("mem.alloc rule = %+v", r)
	}
	// String renders a spec Parse accepts and that builds the same rules.
	pl2, err := Parse(pl.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", pl.String(), err)
	}
	for p := Point(0); p < NumPoints; p++ {
		a, b := pl.Rule(p), pl2.Rule(p)
		if a.Prob != b.Prob || a.EveryN != b.EveryN || len(a.Nth) != len(b.Nth) ||
			a.Limit != b.Limit || a.Stall != b.Stall {
			t.Fatalf("%v: round-trip mismatch %+v vs %+v", p, a, b)
		}
	}
}

func TestParseGlob(t *testing.T) {
	pl, err := Parse("core.*:every=10")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Point{CoreLoad, CoreStore, CoreStoreAlloc, CoreCAS, CoreDCAS, CoreAddToRC} {
		if pl.Rule(p).EveryN != 10 {
			t.Fatalf("%v not covered by core.*", p)
		}
	}
	if r := pl.Rule(SnarkPushLeft); r.enabled() {
		t.Fatal("snark point armed by core.* glob")
	}
	if r := pl.Rule(ReclaimPush); r.enabled() {
		t.Fatal("reclaim point armed by core.* glob")
	}
	rpl, err := Parse("reclaim.*:every=7")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Point{ReclaimPush, ReclaimDrain, ReclaimEpoch} {
		if rpl.Rule(p).EveryN != 7 {
			t.Fatalf("%v not covered by reclaim.*", p)
		}
	}
	if r := rpl.Rule(CoreLoad); r.enabled() {
		t.Fatal("core point armed by reclaim.* glob")
	}
	all, err := Parse("*:p=0.5")
	if err != nil {
		t.Fatal(err)
	}
	for p := Point(0); p < NumPoints; p++ {
		if r := all.Rule(p); !r.enabled() {
			t.Fatalf("%v not covered by *", p)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"nosuchpoint:p=0.5",
		"core.load",
		"core.load:p=1.5",
		"core.load:every=0",
		"core.load:nth=0",
		"core.load:frobnicate=1",
		"zzz.*:p=0.1",
		"core.load:delay=-5ms",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
	// Action-only rules default to every=1.
	pl, err := Parse("core.load:gosched,stall")
	if err != nil {
		t.Fatal(err)
	}
	if r := pl.Rule(CoreLoad); r.EveryN != 1 || !r.Gosched || !r.Stall {
		t.Fatalf("action-only rule = %+v", r)
	}
}

func TestNilInjectorIsDisabled(t *testing.T) {
	var in *Injector
	if in.Inject(CoreLoad) || in.Would(CoreLoad, 1) || in.Enabled() {
		t.Fatal("nil injector injected")
	}
	if in.Stats() != nil || in.Schedule() != nil || in.Seed() != 0 || in.Fires() != 0 {
		t.Fatal("nil injector reported state")
	}
	if s := in.ScheduleString(0); s != "" {
		t.Fatalf("nil schedule string %q", s)
	}
	pl := &Plan{}
	if NewInjector(pl, 1) != nil {
		t.Fatal("empty plan built a non-nil injector")
	}
	if NewInjector(nil, 1) != nil {
		t.Fatal("nil plan built a non-nil injector")
	}
}

func TestNthSchedule(t *testing.T) {
	pl, err := Parse("stack.push:nth=2+5+9")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(pl, 42)
	var fired []int
	for n := 1; n <= 12; n++ {
		if in.Inject(StackPush) {
			fired = append(fired, n)
		}
	}
	want := []int{2, 5, 9}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
	st := in.Stats()
	if len(st) != 1 || st[0].Point != StackPush || st[0].Attempts != 12 || st[0].Fires != 3 {
		t.Fatalf("stats %+v", st)
	}
	sched := in.Schedule()
	if len(sched) != 3 || sched[0].Attempt != 2 || sched[2].Attempt != 9 {
		t.Fatalf("schedule %+v", sched)
	}
	if s := in.ScheduleString(2); s != "stack.push@5 stack.push@9" {
		t.Fatalf("schedule string %q", s)
	}
}

func TestEveryNAndLimit(t *testing.T) {
	pl, err := Parse("queue.enqueue:every=3,limit=2")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(pl, 7)
	fires := 0
	for n := 1; n <= 30; n++ {
		if in.Inject(QueueEnqueue) {
			fires++
		}
	}
	if fires != 2 {
		t.Fatalf("fired %d times, want 2 (limit)", fires)
	}
}

// TestDeterministicSameSeed is the core guarantee: the decision for attempt n
// at point p is a pure function of (seed, p, n), so two injectors with the
// same seed and plan agree on every attempt, and Would reproduces Inject.
func TestDeterministicSameSeed(t *testing.T) {
	pl, err := Parse("core.load:p=0.1;core.cas:p=0.5;set.insert:p=0.01")
	if err != nil {
		t.Fatal(err)
	}
	a := NewInjector(pl, 12345)
	b := NewInjector(pl, 12345)
	diff := NewInjector(pl, 54321)
	same, divergent := true, false
	for n := uint64(1); n <= 5000; n++ {
		for _, p := range []Point{CoreLoad, CoreCAS, SetInsert} {
			av, bv := a.Inject(p), b.Inject(p)
			if av != bv {
				same = false
			}
			if av != a.Would(p, n) {
				t.Fatalf("Inject(%v) attempt %d disagrees with Would", p, n)
			}
			if av != diff.Would(p, n) {
				divergent = true
			}
		}
	}
	if !same {
		t.Fatal("same seed produced different firing sequences")
	}
	if !divergent {
		t.Fatal("different seeds produced identical sequences (suspicious hash)")
	}
}

// TestDeterministicUnderConcurrency hammers one point from many goroutines
// and verifies the recorded schedule matches the pure predicate: firing is a
// property of the attempt ordinal, not of scheduling.
func TestDeterministicUnderConcurrency(t *testing.T) {
	pl, err := Parse("core.dcas:p=0.05")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(pl, 99)
	var wg sync.WaitGroup
	const goroutines, per = 8, 400 // 3200 attempts < scheduleLen: nothing evicted
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				in.Inject(CoreDCAS)
			}
		}()
	}
	wg.Wait()
	sched := in.Schedule()
	want := 0
	for n := uint64(1); n <= goroutines*per; n++ {
		if in.Would(CoreDCAS, n) {
			want++
		}
	}
	if len(sched) != want {
		t.Fatalf("recorded %d firings, predicate says %d", len(sched), want)
	}
	for _, f := range sched {
		if !in.Would(f.Point, f.Attempt) {
			t.Fatalf("recorded firing %+v not predicted by Would", f)
		}
	}
}

func TestProbabilityRoughlyHolds(t *testing.T) {
	pl, err := Parse("mem.alloc:p=0.2")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(pl, 3)
	const n = 20000
	fires := 0
	for i := 0; i < n; i++ {
		if in.Inject(MemAlloc) {
			fires++
		}
	}
	got := float64(fires) / n
	if got < 0.17 || got > 0.23 {
		t.Fatalf("p=0.2 fired at rate %v", got)
	}
}

func TestStallDelaysWithoutFailing(t *testing.T) {
	pl, err := Parse("snark.popleft:stall,delay=2ms")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(pl, 1)
	t0 := time.Now()
	if in.Inject(SnarkPopLeft) {
		t.Fatal("stall rule forced a failure")
	}
	if d := time.Since(t0); d < 2*time.Millisecond {
		t.Fatalf("stall waited only %v", d)
	}
	if in.Fires() != 1 {
		t.Fatalf("stall firing not counted: %d", in.Fires())
	}
}

func TestScheduleRetention(t *testing.T) {
	pl, err := Parse("stack.pop:every=1")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(pl, 1)
	total := scheduleLen + 100
	for i := 0; i < total; i++ {
		in.Inject(StackPop)
	}
	sched := in.Schedule()
	if len(sched) != scheduleLen {
		t.Fatalf("retained %d firings, want %d", len(sched), scheduleLen)
	}
	if sched[0].Attempt != 101 || sched[len(sched)-1].Attempt != uint64(total) {
		t.Fatalf("retention window [%d, %d], want [101, %d]",
			sched[0].Attempt, sched[len(sched)-1].Attempt, total)
	}
}

func TestPointNamesComplete(t *testing.T) {
	seen := map[string]Point{}
	for p := Point(0); p < NumPoints; p++ {
		name := p.String()
		if name == "" || strings.HasPrefix(name, "Point(") {
			t.Fatalf("point %d has no spec name", p)
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("points %v and %v share name %q", prev, p, name)
		}
		seen[name] = p
		rt, err := ParsePoint(name)
		if err != nil || rt != p {
			t.Fatalf("ParsePoint(%q) = %v, %v", name, rt, err)
		}
	}
}
