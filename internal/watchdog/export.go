package watchdog

import (
	"encoding/json"
	"io"
)

// SchemaVersion is the incidents.json document schema version; bump on any
// incompatible field change (the schema is locked by a golden test).
const SchemaVersion = 1

// RuleInfo is one rule's descriptor as rendered in the document.
type RuleInfo struct {
	Name     string   `json:"name"`
	Severity string   `json:"severity"`
	Level    Severity `json:"level"`
	Window   int      `json:"window"`
	Help     string   `json:"help"`
}

// Doc is the incidents.json document: the engine's accounting, the active
// rule set, and the retained incidents (oldest first).
type Doc struct {
	SchemaVersion int        `json:"schema_version"`
	Enabled       bool       `json:"enabled"`
	Stats         Stats      `json:"stats"`
	Rules         []RuleInfo `json:"rules"`
	Incidents     []Incident `json:"incidents"`
}

// Document snapshots the engine as a Doc. Nil-safe: a nil engine yields a
// valid document with Enabled false and empty (non-null) lists.
func (e *Engine) Document() Doc {
	d := Doc{
		SchemaVersion: SchemaVersion,
		Rules:         []RuleInfo{},
		Incidents:     []Incident{},
	}
	if e == nil {
		return d
	}
	d.Enabled = true
	d.Stats = e.Stats()
	for i := range e.rules {
		r := &e.rules[i]
		d.Rules = append(d.Rules, RuleInfo{
			Name:     r.Name,
			Severity: r.Severity.String(),
			Level:    r.Severity,
			Window:   r.Window,
			Help:     r.Help,
		})
	}
	d.Incidents = e.Incidents()
	return d
}

// WriteJSON writes the document, indented. Nil-safe.
func (e *Engine) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e.Document())
}
