package watchdog

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"lfrc/internal/contend"
	"lfrc/internal/timeline"
)

// tick builds a quiet input at a given ordinal (100ms cadence).
func tick(seq uint64) *Input {
	return &Input{Sample: timeline.Sample{
		Seq:   seq,
		TS:    int64(seq) * int64(100*time.Millisecond),
		DurNS: int64(100 * time.Millisecond),
	}}
}

func findIncident(incs []Incident, rule string) *Incident {
	for i := range incs {
		if incs[i].Rule == rule {
			return &incs[i]
		}
	}
	return nil
}

// TestQuietPathAllocatesNothing: Observe with no rule firing is on the
// timeline capture path and must not allocate.
func TestQuietPathAllocatesNothing(t *testing.T) {
	e := New(Options{})
	in := tick(1)
	e.Observe(in) // warm the prev buffer
	n := testing.AllocsPerRun(1000, func() {
		in.Sample.Seq++
		in.Sample.TS += int64(100 * time.Millisecond)
		e.Observe(in)
	})
	if n != 0 {
		t.Fatalf("quiet Observe allocates %v times per run, want 0", n)
	}
	if got := e.Stats().Incidents; got != 0 {
		t.Fatalf("quiet run minted %d incidents", got)
	}
}

// TestRetryStormWindow: the rule needs its full consecutive window; a single
// calm tick resets the streak.
func TestRetryStormWindow(t *testing.T) {
	e := New(Options{})
	seq := uint64(0)
	hot := func() *Input {
		seq++
		in := tick(seq)
		in.Sample.RetryP99 = DefaultRetryP99Threshold + 1
		return in
	}
	calm := func() *Input { seq++; return tick(seq) }

	for i := 0; i < 4; i++ {
		e.Observe(hot())
	}
	e.Observe(calm()) // breaks the streak at 4/5
	for i := 0; i < 4; i++ {
		e.Observe(hot())
	}
	if n := len(e.Incidents()); n != 0 {
		t.Fatalf("rule fired with a broken streak: %d incidents", n)
	}
	e.Observe(hot()) // 5th consecutive
	incs := e.Incidents()
	inc := findIncident(incs, "retry_storm")
	if inc == nil {
		t.Fatalf("no retry_storm incident after a full window: %+v", incs)
	}
	if inc.Severity != "warn" || inc.Level != SevWarn {
		t.Errorf("severity = %s/%d", inc.Severity, inc.Level)
	}
	if inc.ToSeq-inc.FromSeq != 4 {
		t.Errorf("evidence window [%d,%d], want 5 ticks", inc.FromSeq, inc.ToSeq)
	}
}

// TestLimboStallEvidence: fires after ten non-decreasing zero-free ticks and
// renders the growth range in the message.
func TestLimboStallEvidence(t *testing.T) {
	e := New(Options{})
	pending := int64(80)
	for i := uint64(1); i <= 10; i++ {
		in := tick(i)
		in.Sample.ReclaimPending = pending
		pending += 200
		e.Observe(in)
	}
	inc := findIncident(e.Incidents(), "limbo_stall")
	if inc == nil {
		t.Fatalf("no limbo_stall incident: %+v", e.Incidents())
	}
	if inc.First != 80 || inc.Value != 80+9*200 {
		t.Errorf("evidence %d→%d, want 80→%d", inc.First, inc.Value, 80+9*200)
	}
	if !strings.Contains(inc.Message, "limbo grew 80→1880") || !strings.Contains(inc.Message, "zero drains") {
		t.Errorf("message = %q", inc.Message)
	}

	// Any interval that actually freed resets the streak.
	e2 := New(Options{})
	for i := uint64(1); i <= 20; i++ {
		in := tick(i)
		in.Sample.ReclaimPending = 1000
		if i%5 == 0 {
			in.Sample.ReclaimFreed = 3
		}
		e2.Observe(in)
	}
	if n := len(e2.Incidents()); n != 0 {
		t.Errorf("limbo_stall fired despite periodic drains: %d incidents", n)
	}
}

// TestPostmortemDelta: fires on increases of the cumulative count, not on a
// pre-existing baseline.
func TestPostmortemDelta(t *testing.T) {
	e := New(Options{})
	in := tick(1)
	in.Postmortems = 7 // pre-existing at attach time: baseline, not news
	e.Observe(in)
	if n := len(e.Incidents()); n != 0 {
		t.Fatalf("fired on the baseline tick: %d incidents", n)
	}
	in = tick(2)
	in.Postmortems = 9
	e.Observe(in)
	inc := findIncident(e.Incidents(), "postmortem")
	if inc == nil {
		t.Fatal("no postmortem incident on count increase")
	}
	if inc.Value != 2 || inc.Aux != 9 {
		t.Errorf("delta/total = %d/%d, want 2/9", inc.Value, inc.Aux)
	}
}

// TestCensusRulesNeedProbe: census evidence only counts on probe ticks.
func TestCensusRulesNeedProbe(t *testing.T) {
	e := New(Options{})
	in := tick(1)
	in.CensusMismatches = 3
	in.CensusCycles = 2
	in.CensusCycleBytes = 512
	e.Observe(in) // stale census fields without Probed: ignored
	if n := len(e.Incidents()); n != 0 {
		t.Fatalf("census rules fired without a probe: %d incidents", n)
	}
	in = tick(2)
	in.Probed = true
	in.CensusMismatches = 3
	in.CensusCycles = 2
	in.CensusCycleBytes = 512
	e.Observe(in)
	if inc := findIncident(e.Incidents(), "rc_mismatch"); inc == nil || inc.Value != 3 {
		t.Errorf("rc_mismatch = %+v", inc)
	}
	inc := findIncident(e.Incidents(), "cycle_leak")
	if inc == nil || inc.Value != 2 || inc.Aux != 512 {
		t.Fatalf("cycle_leak = %+v", inc)
	}
	if !strings.Contains(inc.Message, "2 unreachable cycle(s) holding 512 bytes") {
		t.Errorf("message = %q", inc.Message)
	}
}

// TestRCHotspotBothEncodings: online samples carry only the numeric role id,
// decoded offline samples only the rendered name; the rule must match both.
func TestRCHotspotBothEncodings(t *testing.T) {
	for name, cell := range map[string]timeline.HotCell{
		"online":  {Addr: 0x40, RoleID: uint8(contend.RoleRC), Hot: 99, Failures: 1234},
		"offline": {Addr: 0x40, Role: "rc", Hot: 99, Failures: 1234},
	} {
		e := New(Options{})
		for i := uint64(1); i <= 3; i++ {
			in := tick(i)
			in.Sample.Hot[0] = cell
			e.Observe(in)
		}
		inc := findIncident(e.Incidents(), "rc_hotspot")
		if inc == nil {
			t.Fatalf("%s: no rc_hotspot incident", name)
		}
		if inc.Value != 99 || inc.Aux != 1234 {
			t.Errorf("%s: evidence = %d/%d", name, inc.Value, inc.Aux)
		}
	}
	// A non-rc hottest cell must not fire even with an rc cell at rank 2.
	e := New(Options{})
	for i := uint64(1); i <= 6; i++ {
		in := tick(i)
		in.Sample.Hot[0] = timeline.HotCell{Addr: 0x8, Role: "right_hat", Hot: 200}
		in.Sample.Hot[1] = timeline.HotCell{Addr: 0x40, Role: "rc", Hot: 100}
		e.Observe(in)
	}
	if n := len(e.Incidents()); n != 0 {
		t.Errorf("rc_hotspot fired on a non-rc top cell: %d incidents", n)
	}
}

// TestCooldownCoalescing: firings inside the cooldown fold into the open
// incident; past it a fresh record is minted.
func TestCooldownCoalescing(t *testing.T) {
	e := New(Options{Cooldown: time.Second})
	fire := func(seq uint64) {
		in := tick(seq)
		in.Sample.DegExhaustions = 1
		e.Observe(in)
	}
	fire(1)
	fire(2) // 100ms later: coalesces
	fire(3)
	incs := e.Incidents()
	if len(incs) != 1 {
		t.Fatalf("got %d incident records inside the cooldown, want 1", len(incs))
	}
	if incs[0].Count != 3 || incs[0].ToSeq != 3 {
		t.Errorf("coalesced incident = %+v", incs[0])
	}
	fire(3 + 11) // 1.1s after the last firing: past the cooldown
	incs = e.Incidents()
	if len(incs) != 2 {
		t.Fatalf("got %d incident records past the cooldown, want 2", len(incs))
	}
	st := e.Stats()
	if st.Firings != 4 || st.Incidents != 2 || st.Coalesced != 2 {
		t.Errorf("stats = %+v", st)
	}
}

// TestRetentionBound: the record ring evicts oldest and counts drops.
func TestRetentionBound(t *testing.T) {
	e := New(Options{MaxIncidents: 4, Cooldown: -1}) // no coalescing
	for i := uint64(1); i <= 10; i++ {
		in := tick(i)
		in.Sample.DegExhaustions = 1
		e.Observe(in)
	}
	incs := e.Incidents()
	if len(incs) != 4 {
		t.Fatalf("retained %d, want 4", len(incs))
	}
	if incs[0].ID != 7 || incs[3].ID != 10 {
		t.Errorf("retained IDs %d..%d, want 7..10", incs[0].ID, incs[3].ID)
	}
	if st := e.Stats(); st.Dropped != 6 {
		t.Errorf("dropped = %d, want 6", st.Dropped)
	}
}

// TestDocumentJSON: the document round-trips and a nil engine still renders a
// valid disabled document.
func TestDocumentJSON(t *testing.T) {
	e := New(Options{})
	in := tick(1)
	in.Sample.DegExhaustions = 2
	e.Observe(in)

	var buf bytes.Buffer
	if err := e.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var d Doc
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if d.SchemaVersion != SchemaVersion || !d.Enabled || len(d.Rules) != len(DefaultRules()) || len(d.Incidents) != 1 {
		t.Errorf("doc = %+v", d)
	}
	if d.Incidents[0].Rule != "heap_exhaustion" || d.Incidents[0].Severity != "critical" {
		t.Errorf("incident = %+v", d.Incidents[0])
	}

	buf.Reset()
	var nilEngine *Engine
	if err := nilEngine.WriteJSON(&buf); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatalf("nil round-trip: %v", err)
	}
	if d.Enabled || d.Rules == nil || d.Incidents == nil {
		t.Errorf("nil doc = %s", buf.String())
	}
	if !strings.Contains(buf.String(), `"incidents": []`) {
		t.Errorf("nil doc incidents not an empty array:\n%s", buf.String())
	}
}

// TestOnIncidentCallback fires for minted records only, not coalesced
// re-firings.
func TestOnIncidentCallback(t *testing.T) {
	var got []Incident
	e := New(Options{OnIncident: func(inc Incident) { got = append(got, inc) }})
	for i := uint64(1); i <= 3; i++ {
		in := tick(i)
		in.Sample.DegExhaustions = 1
		e.Observe(in)
	}
	if len(got) != 1 || got[0].Rule != "heap_exhaustion" {
		t.Fatalf("callback saw %+v, want one heap_exhaustion", got)
	}
}
