// Package watchdog is the always-on health evaluator: a declarative rule set
// run over the telemetry timeline, turning threshold crossings into
// structured, rate-limited Incidents.
//
// The engine owns no goroutine and no clock. It is driven by whoever owns a
// cadence — online that is the timeline sampler's capture tick (the root
// package installs Observe as the sampler's on-sample hook), offline it is
// cmd/lfrcdoctor replaying a bundle's decoded samples. Time comes exclusively
// from the samples themselves (Sample.TS), so a replayed evaluation reaches
// bit-identical verdicts to the live one.
//
// Like every observer layer before it (obs, timeline), the watchdog must not
// perturb what it watches: Observe allocates nothing on the quiet path — a
// fixed rule walk over scalar fields under one mutex. Allocation (message
// formatting, incident records) happens only when a rule actually fires,
// which is by definition not the steady state.
package watchdog

import (
	"fmt"
	"sync"
	"time"

	"lfrc/internal/contend"
	"lfrc/internal/timeline"
)

// Severity ranks incidents. Higher is worse.
type Severity uint8

// Severities.
const (
	SevInfo     Severity = 1
	SevWarn     Severity = 2
	SevCritical Severity = 3
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarn:
		return "warn"
	case SevCritical:
		return "critical"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// Input is one evaluation tick: the interval's timeline sample plus the
// signals that live outside the sample — the flight recorder's cumulative
// postmortem count and, on probe ticks, the census cross-check results.
type Input struct {
	// Sample is the interval's delta sample (counters are per-interval
	// deltas, gauges instantaneous; see timeline.Sample).
	Sample timeline.Sample

	// Postmortems is the cumulative postmortem count at capture time (the
	// postmortem rule fires on increases between ticks).
	Postmortems uint64

	// Probed reports that a census probe ran this tick; the Census* fields
	// are meaningful only then.
	Probed            bool
	CensusMismatches  int64
	CensusCycles      int64
	CensusCycleBytes  int64
	CensusUnreachable int64
}

// Rule is one declarative health check. Cond is evaluated once per tick; it
// must not allocate. After Window consecutive qualifying ticks the rule
// fires, producing (or coalescing into) an Incident.
type Rule struct {
	// Name identifies the rule in incidents, metrics, and verdicts.
	Name string

	// Severity is the incidents' rank.
	Severity Severity

	// Help is the one-line description rendered in incidents.json.
	Help string

	// Window is how many consecutive qualifying ticks arm the rule
	// (1 = fire on the first).
	Window int

	// Cond reports whether the tick qualifies, plus the primary and
	// secondary evidence values. prev is the previous tick's input (nil on
	// the first tick).
	Cond func(prev, in *Input) (ok bool, value, aux int64)

	// Format renders the incident's human message from its evidence.
	Format func(inc *Incident) string
}

// Incident is one structured finding: a rule that held for its full window,
// with the evidence values at the start and end of the qualifying streak.
// Re-firings within the engine's cooldown coalesce into the open incident
// (Count, Value, LastTS, ToSeq advance) rather than minting a new record.
type Incident struct {
	// ID is the engine-unique incident ordinal (1-based).
	ID int64 `json:"id"`

	// Rule and severity identify what fired.
	Rule     string   `json:"rule"`
	Severity string   `json:"severity"`
	Level    Severity `json:"level"`

	// Message is the rendered human evidence line.
	Message string `json:"message"`

	// Count is how many firings this record has absorbed (>= 1).
	Count int64 `json:"count"`

	// First/Value are the rule's primary evidence value at the start of the
	// qualifying streak and at the most recent firing; Aux is the rule's
	// secondary evidence (rule-specific; 0 when unused).
	First int64 `json:"first_value"`
	Value int64 `json:"value"`
	Aux   int64 `json:"aux"`

	// The evidence window: sample sequence numbers and capture timestamps
	// (ns since the Unix epoch) from the start of the qualifying streak to
	// the most recent firing, plus the rule's arming window in ticks.
	FromSeq uint64 `json:"from_seq"`
	ToSeq   uint64 `json:"to_seq"`
	FirstTS int64  `json:"first_ts"`
	LastTS  int64  `json:"last_ts"`
	Window  int    `json:"window"`
}

// Default rule thresholds.
const (
	// DefaultRetryP99Threshold is the sampled retry-count p99 at or above
	// which the retry_storm rule starts counting.
	DefaultRetryP99Threshold = 8

	// DefaultLimboMin is the deferred-reclamation backlog below which the
	// limbo_stall rule never arms (small backlogs are normal).
	DefaultLimboMin = 64
)

// hotIsRC reports whether a heatmap cell is an rc-role cell. Online samples
// carry only the numeric role id (the capture path must not touch strings);
// decoded offline samples carry only the rendered name.
func hotIsRC(h *timeline.HotCell) bool {
	if h.Addr == 0 {
		return false
	}
	if h.Role != "" {
		return h.Role == contend.RoleRC.String()
	}
	return h.RoleID == uint8(contend.RoleRC)
}

// DefaultRules is the standard rule set: the paper's invariants and the
// failure modes PRs 2–8 made visible, as watchable conditions.
func DefaultRules() []Rule {
	return []Rule{
		{
			Name: "retry_storm", Severity: SevWarn, Window: 5,
			Help: "sampled DCAS retry p99 held at or above threshold for a sustained window",
			Cond: func(_, in *Input) (bool, int64, int64) {
				return in.Sample.RetryP99 >= DefaultRetryP99Threshold, in.Sample.RetryP99, 0
			},
			Format: func(inc *Incident) string {
				return fmt.Sprintf("retry p99 held at %d (threshold %d) across %d intervals",
					inc.Value, int64(DefaultRetryP99Threshold), inc.Count+int64(inc.Window)-1)
			},
		},
		{
			Name: "limbo_stall", Severity: SevCritical, Window: 10,
			Help: "deferred-reclamation backlog rising (or pinned) with zero frees for a full window",
			Cond: func(prev, in *Input) (bool, int64, int64) {
				p := in.Sample.ReclaimPending
				if p < DefaultLimboMin || in.Sample.ReclaimFreed != 0 {
					return false, 0, 0
				}
				if prev != nil && p < prev.Sample.ReclaimPending {
					return false, 0, 0
				}
				return true, p, 0
			},
			Format: func(inc *Incident) string {
				return fmt.Sprintf("limbo grew %d→%d over %.1fs with zero drains",
					inc.First, inc.Value, float64(inc.LastTS-inc.FirstTS)/1e9)
			},
		},
		{
			Name: "heap_exhaustion", Severity: SevCritical, Window: 1,
			Help: "operations failed even after the full heap-pressure degradation policy",
			Cond: func(_, in *Input) (bool, int64, int64) {
				return in.Sample.DegExhaustions > 0, in.Sample.DegExhaustions, 0
			},
			Format: func(inc *Incident) string {
				return fmt.Sprintf("%d operation(s) exhausted the full heap-pressure policy", inc.Value)
			},
		},
		{
			Name: "postmortem", Severity: SevCritical, Window: 1,
			Help: "the flight recorder captured new violation postmortems (auditor findings or poison corruptions)",
			Cond: func(prev, in *Input) (bool, int64, int64) {
				if prev == nil {
					return false, 0, 0
				}
				d := int64(in.Postmortems) - int64(prev.Postmortems)
				return d > 0, d, int64(in.Postmortems)
			},
			Format: func(inc *Incident) string {
				return fmt.Sprintf("%d new violation postmortem(s) captured (%d total)", inc.Value, inc.Aux)
			},
		},
		{
			Name: "rc_mismatch", Severity: SevCritical, Window: 1,
			Help: "a census probe found stored reference counts disagreeing with actual in-edges",
			Cond: func(_, in *Input) (bool, int64, int64) {
				return in.Probed && in.CensusMismatches > 0, in.CensusMismatches, in.CensusUnreachable
			},
			Format: func(inc *Incident) string {
				return fmt.Sprintf("census probe found %d stored-RC vs in-edge mismatch(es)", inc.Value)
			},
		},
		{
			Name: "cycle_leak", Severity: SevCritical, Window: 1,
			Help: "a census probe found unreachable reference-counted cycles (garbage LFRC can never free)",
			Cond: func(_, in *Input) (bool, int64, int64) {
				return in.Probed && in.CensusCycles > 0, in.CensusCycles, in.CensusCycleBytes
			},
			Format: func(inc *Incident) string {
				return fmt.Sprintf("census probe found %d unreachable cycle(s) holding %d bytes", inc.Value, inc.Aux)
			},
		},
		{
			Name: "rc_hotspot", Severity: SevWarn, Window: 3,
			Help: "the contention heatmap's hottest cell is an rc-role cell (the paper's known DCAS hot spot)",
			Cond: func(_, in *Input) (bool, int64, int64) {
				h := &in.Sample.Hot[0]
				return hotIsRC(h), h.Hot, h.Failures
			},
			Format: func(inc *Incident) string {
				return fmt.Sprintf("hottest contention cell is an rc cell (hot score %d, %d attributed failures)",
					inc.Value, inc.Aux)
			},
		},
	}
}

// Defaults for Options fields left zero.
const (
	DefaultMaxIncidents = 64
	DefaultCooldown     = 5 * time.Second
)

// Options configures an Engine.
type Options struct {
	// Rules is the rule set; nil selects DefaultRules.
	Rules []Rule

	// MaxIncidents bounds the retained incident records (oldest evicted);
	// 0 selects DefaultMaxIncidents.
	MaxIncidents int

	// Cooldown is the per-rule rate limit: re-firings within it coalesce
	// into the rule's open incident instead of minting a new record.
	// 0 selects DefaultCooldown; negative disables coalescing.
	Cooldown time.Duration

	// OnIncident, when set, is called with each newly minted incident
	// (not coalesced re-firings), synchronously under the engine lock —
	// implementations that do real work must hand off to a goroutine.
	OnIncident func(Incident)
}

// ruleState is one rule's streak accounting.
type ruleState struct {
	streak    int
	firstVal  int64
	firstTS   int64
	fromSeq   uint64
	lastIncID int64
}

// Engine evaluates a rule set over a stream of Inputs. Create with New; feed
// it with Observe; read back with Incidents, Stats, and Document. All methods
// are safe for concurrent use and nil-safe.
type Engine struct {
	mu       sync.Mutex
	rules    []Rule
	states   []ruleState
	prev     Input
	havePrev bool

	incidents []Incident // oldest first, bounded by maxIncidents
	nextID    int64

	evals     uint64
	probes    uint64
	firings   uint64
	created   uint64
	coalesced uint64
	dropped   uint64
	lastTS    int64

	maxIncidents int
	cooldownNS   int64
	onIncident   func(Incident)
}

// New creates an Engine.
func New(o Options) *Engine {
	rules := o.Rules
	if rules == nil {
		rules = DefaultRules()
	}
	maxInc := o.MaxIncidents
	if maxInc <= 0 {
		maxInc = DefaultMaxIncidents
	}
	cd := o.Cooldown
	if cd == 0 {
		cd = DefaultCooldown
	}
	return &Engine{
		rules:        rules,
		states:       make([]ruleState, len(rules)),
		incidents:    make([]Incident, 0, maxInc),
		maxIncidents: maxInc,
		cooldownNS:   int64(cd),
		onIncident:   o.OnIncident,
	}
}

// Observe evaluates every rule against one tick. Quiet path (no rule firing)
// allocates nothing. Nil-safe.
func (e *Engine) Observe(in *Input) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.evals++
	if in.Probed {
		e.probes++
	}
	var prev *Input
	if e.havePrev {
		prev = &e.prev
	}
	for i := range e.rules {
		r := &e.rules[i]
		st := &e.states[i]
		ok, val, aux := r.Cond(prev, in)
		if !ok {
			st.streak = 0
			continue
		}
		if st.streak == 0 {
			st.firstVal = val
			st.firstTS = in.Sample.TS
			st.fromSeq = in.Sample.Seq
		}
		st.streak++
		if st.streak < r.Window {
			continue
		}
		e.fire(r, st, in, val, aux)
	}
	e.prev = *in
	e.havePrev = true
	e.mu.Unlock()
}

// fire records one rule firing: coalesce into the rule's open incident while
// inside the cooldown, else mint a new record. Called with e.mu held.
func (e *Engine) fire(r *Rule, st *ruleState, in *Input, val, aux int64) {
	e.firings++
	e.lastTS = in.Sample.TS
	if st.lastIncID != 0 && e.cooldownNS > 0 {
		if inc := e.findLocked(st.lastIncID); inc != nil && in.Sample.TS-inc.LastTS <= e.cooldownNS {
			inc.Count++
			inc.Value = val
			inc.Aux = aux
			inc.LastTS = in.Sample.TS
			inc.ToSeq = in.Sample.Seq
			inc.Message = r.Format(inc)
			e.coalesced++
			return
		}
	}
	e.nextID++
	inc := Incident{
		ID:       e.nextID,
		Rule:     r.Name,
		Severity: r.Severity.String(),
		Level:    r.Severity,
		Count:    1,
		First:    st.firstVal,
		Value:    val,
		Aux:      aux,
		FromSeq:  st.fromSeq,
		ToSeq:    in.Sample.Seq,
		FirstTS:  st.firstTS,
		LastTS:   in.Sample.TS,
		Window:   r.Window,
	}
	inc.Message = r.Format(&inc)
	if len(e.incidents) == e.maxIncidents {
		copy(e.incidents, e.incidents[1:])
		e.incidents = e.incidents[:e.maxIncidents-1]
		e.dropped++
	}
	e.incidents = append(e.incidents, inc)
	st.lastIncID = inc.ID
	e.created++
	if e.onIncident != nil {
		e.onIncident(inc)
	}
}

// findLocked returns the retained incident with the given id, or nil if
// eviction has dropped it. Called with e.mu held.
func (e *Engine) findLocked(id int64) *Incident {
	for i := range e.incidents {
		if e.incidents[i].ID == id {
			return &e.incidents[i]
		}
	}
	return nil
}

// Incidents returns the retained incident records, oldest first. Nil-safe.
func (e *Engine) Incidents() []Incident {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	out := make([]Incident, len(e.incidents))
	copy(out, e.incidents)
	e.mu.Unlock()
	return out
}

// Stats is the engine's own accounting (the lfrc_watchdog_* meta-metrics).
type Stats struct {
	// Enabled reports whether a watchdog is installed.
	Enabled bool `json:"enabled"`

	// Rules is the rule-set size.
	Rules int `json:"rules"`

	// Evals counts Observe ticks; CensusProbes the ticks that carried
	// census cross-check data.
	Evals        uint64 `json:"evals"`
	CensusProbes uint64 `json:"census_probes"`

	// Firings counts rule firings (including coalesced ones); Incidents the
	// incident records minted; Coalesced the firings absorbed into open
	// incidents; Dropped the records evicted by the retention bound.
	Firings   uint64 `json:"firings"`
	Incidents uint64 `json:"incidents"`
	Coalesced uint64 `json:"coalesced"`
	Dropped   uint64 `json:"dropped"`

	// Retained is the current record count; LastIncidentTS the most recent
	// firing's sample timestamp (0 = never).
	Retained       int   `json:"retained"`
	LastIncidentTS int64 `json:"last_incident_ts"`
}

// Stats snapshots the engine's accounting. Nil-safe (zero Stats, Enabled
// false).
func (e *Engine) Stats() Stats {
	if e == nil {
		return Stats{}
	}
	e.mu.Lock()
	st := Stats{
		Enabled:        true,
		Rules:          len(e.rules),
		Evals:          e.evals,
		CensusProbes:   e.probes,
		Firings:        e.firings,
		Incidents:      e.created,
		Coalesced:      e.coalesced,
		Dropped:        e.dropped,
		Retained:       len(e.incidents),
		LastIncidentTS: e.lastTS,
	}
	e.mu.Unlock()
	return st
}
