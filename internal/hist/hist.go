// Package hist provides the log-scale histograms shared by the workload
// harness and the flight recorder (package obs).
//
// All variants bucket non-negative int64 values on a power-of-two scale:
// bucket 0 counts values in {0, 1} and bucket i (i >= 1) counts values in
// [2^i, 2^(i+1)). Quantiles report the upper bound of the bucket containing
// the requested rank, so they are conservative (never below the true
// quantile, never more than 2x above it).
//
// Histogram is the plain single-goroutine variant; Concurrent is the
// mergeable atomic variant the flight recorder stripes its latency and retry
// accounting over; Duration is a time.Duration facade over Histogram with
// the exact API the workload harness historically exposed.
package hist

import (
	"fmt"
	"math"
	"math/bits"
)

// NumBuckets is the number of power-of-two buckets; 64 covers every
// non-negative int64.
const NumBuckets = 64

// BucketOf returns the bucket index for value v: 0 for v <= 1, otherwise
// floor(log2(v)), so bucket i covers exactly [2^i, 2^(i+1)). Negative values
// are clamped to 0.
func BucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	return bits.Len64(uint64(v)) - 1
}

// UpperBound returns the exclusive upper bound of bucket i: 2 for bucket 0,
// 2^(i+1) otherwise (saturating at MaxInt64 for the last bucket).
func UpperBound(i int) int64 {
	if i >= 62 {
		return math.MaxInt64
	}
	return int64(1) << uint(i+1)
}

// Bucket is one non-empty histogram bucket, for exporters.
type Bucket struct {
	// UpperBound is the bucket's exclusive upper bound (see UpperBound).
	UpperBound int64

	// Count is the number of samples in this bucket (not cumulative).
	Count int64
}

// Summary is the fixed quantile digest the observability surfaces report.
type Summary struct {
	Count int64 `json:"count"`
	P50   int64 `json:"p50"`
	P99   int64 `json:"p99"`
	Max   int64 `json:"max"`
}

// Histogram is a log-scale histogram of non-negative int64 values. It is not
// safe for concurrent use; give each worker its own and Merge, or use
// Concurrent.
type Histogram struct {
	buckets [NumBuckets]int64
	count   int64
	sum     int64
	max     int64
}

// Observe records one value. Negative values are clamped to 0.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[BucketOf(v)]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Merge adds other's samples into h.
func (h *Histogram) Merge(other *Histogram) {
	for i := range h.buckets {
		h.buckets[i] += other.buckets[i]
	}
	h.count += other.count
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// Count returns the number of samples.
func (h Histogram) Count() int64 { return h.count }

// Sum returns the sum of all samples.
func (h Histogram) Sum() int64 { return h.sum }

// Max returns the largest observed value.
func (h Histogram) Max() int64 { return h.max }

// Quantile returns an upper bound for the q-quantile (0 < q <= 1): the upper
// bound of the bucket containing it, except bucket 0, which reports 1 (its
// largest representable value). An empty histogram reports 0.
func (h Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	target := int64(q * float64(h.count))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i, c := range h.buckets {
		seen += c
		if seen >= target {
			if i == 0 {
				return 1
			}
			return UpperBound(i)
		}
	}
	return h.max
}

// Summary returns the fixed p50/p99/max digest.
func (h Histogram) Summary() Summary {
	return Summary{
		Count: h.count,
		P50:   h.Quantile(0.50),
		P99:   h.Quantile(0.99),
		Max:   h.max,
	}
}

// Buckets returns every bucket up to and including the last non-empty one,
// in ascending bound order. Empty histograms return nil.
func (h Histogram) Buckets() []Bucket {
	last := -1
	for i := range h.buckets {
		if h.buckets[i] != 0 {
			last = i
		}
	}
	if last < 0 {
		return nil
	}
	out := make([]Bucket, 0, last+1)
	for i := 0; i <= last; i++ {
		out = append(out, Bucket{UpperBound: UpperBound(i), Count: h.buckets[i]})
	}
	return out
}

// String summarizes the distribution.
func (h Histogram) String() string {
	return fmt.Sprintf("n=%d p50=%d p99=%d max=%d", h.count, h.Quantile(0.50), h.Quantile(0.99), h.max)
}
