package hist

import (
	"sync"
	"testing"
	"time"
)

// TestBucketBoundaries is the regression test for the historical workload
// histogram off-by-one: a duration in [2^k, 2^(k+1)) used to land in bucket
// k+1, contradicting the documented bounds. The exact boundary values must
// land in the documented buckets.
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0},
		{1, 0}, // bucket 0 holds {0, 1}
		{2, 1}, // [2, 4)
		{3, 1}, // [2, 4)
		{4, 2}, // [4, 8)
		{7, 2}, // [4, 8)
		{8, 3}, // [8, 16)
		{1023, 9},
		{1024, 10},
	}
	for _, c := range cases {
		if got := BucketOf(c.v); got != c.want {
			t.Errorf("BucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}

	// The same boundaries through the Duration facade (the workload alias).
	var d Duration
	for _, c := range []struct {
		x    time.Duration
		want int
	}{
		{1 * time.Nanosecond, 0},
		{2 * time.Nanosecond, 1},
		{3 * time.Nanosecond, 1},
		{4 * time.Nanosecond, 2},
	} {
		if got := d.BucketFor(c.x); got != c.want {
			t.Errorf("BucketFor(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestUpperBound(t *testing.T) {
	if got := UpperBound(0); got != 2 {
		t.Errorf("UpperBound(0) = %d, want 2", got)
	}
	if got := UpperBound(3); got != 16 {
		t.Errorf("UpperBound(3) = %d, want 16", got)
	}
	if got := UpperBound(63); got <= 0 {
		t.Errorf("UpperBound(63) = %d, want saturated positive", got)
	}
}

func TestQuantileUpperBoundProperty(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 2, 3, 100, 1000, 5000} {
		h.Observe(v)
	}
	// Every quantile is >= the true quantile and <= 2x the max sample.
	if q := h.Quantile(1.0); q < 5000 || q > 10000 {
		t.Errorf("Quantile(1.0) = %d, want in [5000, 10000]", q)
	}
	if q := h.Quantile(0.01); q < 1 {
		t.Errorf("Quantile(0.01) = %d, want >= 1", q)
	}
	prev := int64(0)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1.0} {
		v := h.Quantile(q)
		if v < prev {
			t.Errorf("quantiles not monotone: Quantile(%v) = %d < %d", q, v, prev)
		}
		prev = v
	}
}

func TestSummaryAndBuckets(t *testing.T) {
	var h Histogram
	for i := 0; i < 99; i++ {
		h.Observe(10) // bucket 3: [8, 16)
	}
	h.Observe(1000) // bucket 9: [512, 1024)
	s := h.Summary()
	if s.Count != 100 {
		t.Errorf("Count = %d, want 100", s.Count)
	}
	if s.P50 != 16 {
		t.Errorf("P50 = %d, want 16", s.P50)
	}
	if s.P99 != 16 {
		t.Errorf("P99 = %d, want 16 (99th sample is still 10)", s.P99)
	}
	if s.Max != 1000 {
		t.Errorf("Max = %d, want 1000", s.Max)
	}

	bs := h.Buckets()
	if len(bs) != 10 {
		t.Fatalf("Buckets() len = %d, want 10 (through last non-empty)", len(bs))
	}
	if bs[3].Count != 99 || bs[3].UpperBound != 16 {
		t.Errorf("bucket 3 = %+v, want {16 99}", bs[3])
	}
	if bs[9].Count != 1 || bs[9].UpperBound != 1024 {
		t.Errorf("bucket 9 = %+v, want {1024 1}", bs[9])
	}

	var empty Histogram
	if empty.Buckets() != nil {
		t.Error("empty histogram Buckets() != nil")
	}
}

func TestMergeAndSum(t *testing.T) {
	var a, b Histogram
	a.Observe(5)
	b.Observe(50)
	b.Observe(-3) // clamped to 0
	a.Merge(&b)
	if a.Count() != 3 {
		t.Errorf("merged count = %d, want 3", a.Count())
	}
	if a.Sum() != 55 {
		t.Errorf("merged sum = %d, want 55", a.Sum())
	}
	if a.Max() != 50 {
		t.Errorf("merged max = %d, want 50", a.Max())
	}
}

func TestConcurrent(t *testing.T) {
	var c Concurrent
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Observe(int64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	h := c.Snapshot()
	if h.Count() != workers*per {
		t.Errorf("count = %d, want %d", h.Count(), workers*per)
	}
	if h.Max() != workers*per-1 {
		t.Errorf("max = %d, want %d", h.Max(), workers*per-1)
	}
	var total int64
	for _, b := range h.Buckets() {
		total += b.Count
	}
	if total != workers*per {
		t.Errorf("bucket total = %d, want %d", total, workers*per)
	}
}

func TestDurationFacade(t *testing.T) {
	var d Duration
	d.Observe(100 * time.Nanosecond) // bucket 6: [64, 128)
	if got := d.Quantile(1.0); got != 128*time.Nanosecond {
		t.Errorf("Quantile(1.0) = %v, want 128ns", got)
	}
	if d.Max() != 100*time.Nanosecond {
		t.Errorf("Max = %v, want 100ns", d.Max())
	}
	var e Duration
	e.Observe(time.Millisecond)
	d.Merge(&e)
	if d.Count() != 2 {
		t.Errorf("Count = %d, want 2", d.Count())
	}
	if d.Sum() != time.Millisecond+100*time.Nanosecond {
		t.Errorf("Sum = %v", d.Sum())
	}
}
