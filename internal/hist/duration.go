package hist

import (
	"fmt"
	"time"
)

// Duration is a log-scale latency histogram over time.Durations: bucket i
// covers durations in [2^i, 2^(i+1)) nanoseconds (bucket 0 additionally
// holds 0ns). It is not safe for concurrent use; give each worker its own
// and Merge. The workload harness aliases its Histogram to this type.
type Duration struct {
	h Histogram
}

// Observe records one duration. Negative durations are clamped to 0.
func (d *Duration) Observe(x time.Duration) { d.h.Observe(int64(x)) }

// BucketFor returns the bucket index Observe(x) increments; exported so
// tests can pin the documented bucket bounds exactly.
func (d *Duration) BucketFor(x time.Duration) int {
	if x < 0 {
		x = 0
	}
	return BucketOf(int64(x))
}

// Merge adds other's samples into d.
func (d *Duration) Merge(other *Duration) { d.h.Merge(&other.h) }

// Count returns the number of samples.
func (d *Duration) Count() int64 { return d.h.Count() }

// Max returns the largest observed duration.
func (d *Duration) Max() time.Duration { return time.Duration(d.h.Max()) }

// Sum returns the sum of all observed durations.
func (d *Duration) Sum() time.Duration { return time.Duration(d.h.Sum()) }

// Quantile returns an upper bound for the q-quantile (0 < q <= 1): the top
// of the bucket containing it.
func (d *Duration) Quantile(q float64) time.Duration {
	return time.Duration(d.h.Quantile(q))
}

// Summary returns the p50/p99/max digest in nanoseconds.
func (d *Duration) Summary() Summary { return d.h.Summary() }

// Hist returns the underlying value histogram (for exporters).
func (d *Duration) Hist() *Histogram { return &d.h }

// String summarizes the distribution.
func (d *Duration) String() string {
	return fmt.Sprintf("n=%d p50=%v p99=%v p999=%v max=%v",
		d.Count(), d.Quantile(0.50), d.Quantile(0.99), d.Quantile(0.999), d.Max())
}
