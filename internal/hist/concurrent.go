package hist

import "sync/atomic"

// Concurrent is the mergeable concurrent histogram: the same buckets as
// Histogram with every counter atomic, so any number of goroutines may
// Observe while others take snapshots. A snapshot is internally racy in the
// usual striped-counter sense (counters are read one at a time), which is
// fine for monitoring; take it at quiescence when exact totals matter.
type Concurrent struct {
	buckets [NumBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// Observe records one value. Negative values are clamped to 0.
func (c *Concurrent) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	c.buckets[BucketOf(v)].Add(1)
	c.count.Add(1)
	c.sum.Add(v)
	for {
		old := c.max.Load()
		if v <= old || c.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// Count returns the number of samples recorded so far.
func (c *Concurrent) Count() int64 { return c.count.Load() }

// QuantilesInto computes the upper-bound quantile for each probability in ps
// directly from the live buckets, writing results into out (out[i] answers
// ps[i]; the slices must be the same length). The buckets are read once into
// a stack buffer — no Histogram value copies, no allocation — so per-interval
// callers like the telemetry timeline can afford it. Returns the sample count
// the quantiles were computed over; when it is 0, out is zero-filled.
func (c *Concurrent) QuantilesInto(ps []float64, out []int64) int64 {
	var buckets [NumBuckets]int64
	var count int64
	for i := range c.buckets {
		buckets[i] = c.buckets[i].Load()
		count += buckets[i]
	}
	if count == 0 {
		for i := range out {
			out[i] = 0
		}
		return 0
	}
	max := c.max.Load()
	for pi, q := range ps {
		target := int64(q * float64(count))
		if target < 1 {
			target = 1
		}
		var seen int64
		res := max
		for i, bc := range buckets {
			seen += bc
			if seen >= target {
				if i == 0 {
					res = 1
				} else {
					res = UpperBound(i)
				}
				break
			}
		}
		out[pi] = res
	}
	return count
}

// Snapshot copies the current counters into a plain Histogram, which can
// then be merged, summarized, and exported without further atomics.
func (c *Concurrent) Snapshot() Histogram {
	var h Histogram
	for i := range c.buckets {
		h.buckets[i] = c.buckets[i].Load()
	}
	h.count = c.count.Load()
	h.sum = c.sum.Load()
	h.max = c.max.Load()
	return h
}
