package hist

import "sync/atomic"

// Concurrent is the mergeable concurrent histogram: the same buckets as
// Histogram with every counter atomic, so any number of goroutines may
// Observe while others take snapshots. A snapshot is internally racy in the
// usual striped-counter sense (counters are read one at a time), which is
// fine for monitoring; take it at quiescence when exact totals matter.
type Concurrent struct {
	buckets [NumBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// Observe records one value. Negative values are clamped to 0.
func (c *Concurrent) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	c.buckets[BucketOf(v)].Add(1)
	c.count.Add(1)
	c.sum.Add(v)
	for {
		old := c.max.Load()
		if v <= old || c.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// Count returns the number of samples recorded so far.
func (c *Concurrent) Count() int64 { return c.count.Load() }

// Snapshot copies the current counters into a plain Histogram, which can
// then be merged, summarized, and exported without further atomics.
func (c *Concurrent) Snapshot() Histogram {
	var h Histogram
	for i := range c.buckets {
		h.buckets[i] = c.buckets[i].Load()
	}
	h.count = c.count.Load()
	h.sum = c.sum.Load()
	h.max = c.max.Load()
	return h
}
