package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if tok := r.Sample(); tok != 0 {
		t.Errorf("nil Sample() = %d, want 0", tok)
	}
	r.Record(123, KindLoad, 1, 2, true, 0)
	r.Note(KindAlloc, 1, 0)
	if got := r.Events(); got != nil {
		t.Errorf("nil Events() = %v, want nil", got)
	}
	if got := r.Trace(); got.Recorded != 0 || len(got.Events) != 0 {
		t.Errorf("nil Trace() = %+v, want zero", got)
	}
	if got := r.Postmortems(); got != nil {
		t.Errorf("nil Postmortems() = %v, want nil", got)
	}
	if r.SampleEvery() != 0 {
		t.Errorf("nil SampleEvery() = %d, want 0", r.SampleEvery())
	}
	p := r.CapturePostmortem("x", 7)
	if p.Ref != 7 || len(p.Events) != 0 {
		t.Errorf("nil CapturePostmortem = %+v", p)
	}
}

func TestDisabledRecorderRecordsNothing(t *testing.T) {
	r := New(WithSampleEvery(0))
	for i := 0; i < 100; i++ {
		if tok := r.Sample(); tok != 0 {
			t.Fatalf("disabled Sample() = %d, want 0", tok)
		}
		r.Note(KindAlloc, uint32(i), 0)
	}
	if got := r.Recorded(); got != 0 {
		t.Errorf("disabled recorder recorded %d events, want 0", got)
	}
}

func TestFullSamplingRecordsEverything(t *testing.T) {
	r := New(WithSampleEvery(1), WithStripes(2), WithRingSize(256))
	const n = 100
	for i := 0; i < n; i++ {
		t0 := r.Sample()
		if t0 == 0 {
			t.Fatal("full sampling returned 0 token")
		}
		r.Record(t0, KindDCAS, uint32(i+8), uint32(i+100), i%2 == 0, uint32(i%3))
	}
	if got := r.Recorded(); got != n {
		t.Errorf("Recorded() = %d, want %d", got, n)
	}
	evs := r.Events()
	if len(evs) != n {
		t.Fatalf("Events() len = %d, want %d", len(evs), n)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("events not seq-ordered: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
	// Round-trip of every packed field.
	var found bool
	for _, e := range evs {
		if e.Ref == 9 { // i == 1
			found = true
			if e.Kind != KindDCAS || e.Addr != 101 || e.OK || e.Retries != 1 {
				t.Errorf("event round-trip broken: %+v", e)
			}
			if e.TS == 0 {
				t.Error("event timestamp is zero")
			}
		}
	}
	if !found {
		t.Error("recorded event not found in snapshot")
	}

	lat := r.LatencySnapshots()
	if lat[KindDCAS].Count() != n {
		t.Errorf("DCAS latency count = %d, want %d", lat[KindDCAS].Count(), n)
	}
	if got := r.RetrySnapshot().Count(); got != n {
		t.Errorf("retry count = %d, want %d", got, n)
	}
}

func TestSampledRecordingIsSparse(t *testing.T) {
	r := New(WithSampleEvery(8), WithStripes(1))
	const n = 800
	for i := 0; i < n; i++ {
		if t0 := r.Sample(); t0 != 0 {
			r.Record(t0, KindLoad, 1, 2, true, 0)
		}
	}
	got := r.Recorded()
	if got != n/8 {
		t.Errorf("Recorded() = %d, want %d (1-in-8 on one stripe)", got, n/8)
	}
}

func TestRingWraps(t *testing.T) {
	r := New(WithSampleEvery(1), WithStripes(1), WithRingSize(16))
	const n = 100
	for i := 0; i < n; i++ {
		t0 := r.Sample()
		r.Record(t0, KindStore, uint32(i+1), 0, true, 0)
	}
	evs := r.Events()
	if len(evs) != 16 {
		t.Fatalf("Events() len = %d, want ring size 16", len(evs))
	}
	if evs[0].Seq != n-16+1 || evs[len(evs)-1].Seq != n {
		t.Errorf("ring kept [%d, %d], want the most recent [%d, %d]",
			evs[0].Seq, evs[len(evs)-1].Seq, n-16+1, n)
	}
}

func TestEventsTouchingAndPostmortem(t *testing.T) {
	r := New(WithSampleEvery(1), WithStripes(1), WithRingSize(256))
	const victim = 0x40
	// Events on the victim by ref, by cell address, and unrelated noise.
	for i := 0; i < 10; i++ {
		r.Record(r.Sample(), KindLoad, victim, 0, true, 0)
		r.Record(r.Sample(), KindStore, 9999, victim+3, true, 0) // victim's field cell
		r.Record(r.Sample(), KindCAS, 5000, 5001, true, 0)       // unrelated
	}
	got := r.EventsTouching(victim, 100)
	if len(got) != 20 {
		t.Fatalf("EventsTouching = %d events, want 20", len(got))
	}
	limited := r.EventsTouching(victim, 5)
	if len(limited) != 5 {
		t.Fatalf("EventsTouching(n=5) = %d events", len(limited))
	}
	if limited[0].Seq >= limited[4].Seq {
		t.Error("postmortem events not oldest-first")
	}
	// The limited window must be the *last* 5.
	if limited[4].Seq != got[len(got)-1].Seq {
		t.Error("EventsTouching(n) did not keep the trailing events")
	}

	p := r.CapturePostmortem("poison corruption", victim)
	if p.Ref != victim || p.Reason != "poison corruption" {
		t.Errorf("postmortem header = %+v", p)
	}
	if len(p.Events) == 0 {
		t.Fatal("postmortem captured no events")
	}
	if !strings.Contains(p.String(), "ref=0x40") {
		t.Errorf("postmortem string does not name the ref: %s", p.String())
	}
	pms := r.Postmortems()
	if len(pms) != 1 || pms[0].Ref != victim {
		t.Errorf("Postmortems() = %+v", pms)
	}
	// The capture itself leaves a violation event in the ring.
	tr := r.Trace()
	var sawViolation bool
	for _, e := range tr.Events {
		if e.Kind == KindViolation && e.Ref == victim {
			sawViolation = true
		}
	}
	if !sawViolation {
		t.Error("no violation event recorded by CapturePostmortem")
	}
	if len(tr.Postmortems) != 1 {
		t.Errorf("Trace postmortems = %d, want 1", len(tr.Postmortems))
	}
}

func TestTraceDigests(t *testing.T) {
	r := New(WithSampleEvery(1), WithStripes(1))
	for i := 0; i < 50; i++ {
		r.Record(r.Sample(), KindLoad, 8, 9, true, 2)
	}
	tr := r.Trace()
	if tr.SampleEvery != 1 || tr.Recorded != 50 {
		t.Errorf("trace header = %+v", tr)
	}
	if tr.Latency["load"].Count != 50 {
		t.Errorf("load latency count = %d, want 50", tr.Latency["load"].Count)
	}
	if tr.Retries.Count != 50 || tr.Retries.Max != 2 {
		t.Errorf("retries digest = %+v", tr.Retries)
	}
}

// TestConcurrentRecordAndSnapshot hammers the recorder from many writers
// while snapshotting; under -race this also proves the seqlock discipline is
// race-clean, and every returned event must be internally consistent (never
// torn).
func TestConcurrentRecordAndSnapshot(t *testing.T) {
	r := New(WithSampleEvery(1), WithRingSize(64))
	const workers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker writes a self-consistent pattern: ref == addr.
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				v := uint32(w*1_000_000 + i + 1)
				r.Record(r.Sample(), KindDCAS, v, v, true, 0)
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		for _, e := range r.Events() {
			if e.Ref != e.Addr {
				t.Errorf("torn event: ref=%d addr=%d", e.Ref, e.Addr)
			}
			if e.Kind != KindDCAS {
				t.Errorf("torn event kind: %v", e.Kind)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestKindString(t *testing.T) {
	if KindLoad.String() != "load" || KindZombiePush.String() != "zombie_push" {
		t.Error("kind names wrong")
	}
	if Kind(200).String() != "Kind(200)" {
		t.Errorf("out-of-range kind = %s", Kind(200))
	}
}

func TestPostmortemRingKeepsNewest(t *testing.T) {
	r := New(WithSampleEvery(1), WithStripes(1))
	const captures = maxPostmortems + 8
	for i := 0; i < captures; i++ {
		r.CapturePostmortem(fmt.Sprintf("cap %d", i), uint32(i+1))
	}
	pms := r.Postmortems()
	if len(pms) != maxPostmortems {
		t.Fatalf("retained %d postmortems, want %d", len(pms), maxPostmortems)
	}
	// Oldest-first rotation: the survivors are the newest captures.
	for i, p := range pms {
		wantRef := uint32(captures - maxPostmortems + i + 1)
		if p.Ref != wantRef {
			t.Fatalf("pms[%d].Ref = %d, want %d (ring not rotated oldest-first)", i, p.Ref, wantRef)
		}
	}
	if got := r.PostmortemCount(); got != captures {
		t.Errorf("PostmortemCount = %d, want %d", got, captures)
	}
}

func TestPostmortemConcurrentCapture(t *testing.T) {
	r := New(WithSampleEvery(1))
	const (
		workers = 8
		each    = 50
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.CapturePostmortem("storm", uint32(w*each+i+1))
				// Interleave reads with captures: the ring must stay
				// well-formed under concurrent rotation.
				if pms := r.Postmortems(); len(pms) > maxPostmortems {
					t.Errorf("ring overflow: %d retained", len(pms))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.PostmortemCount(); got != workers*each {
		t.Errorf("PostmortemCount = %d, want %d (lost captures under concurrency)", got, workers*each)
	}
	for _, p := range r.Postmortems() {
		if p.Ref == 0 || p.Reason != "storm" {
			t.Errorf("malformed retained postmortem: %+v", p)
		}
	}
}

// recordingSink collects sink deliveries for tap tests. It claims every ref
// it sees allocated, mirroring the ledger's birth-time decision.
type recordingSink struct {
	mu     sync.Mutex
	wanted *RefSet
	got    []Event
}

func (s *recordingSink) Tracked() *RefSet { return s.wanted }

func (s *recordingSink) OnEvent(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.got = append(s.got, e)
	if e.Kind == KindAlloc {
		s.wanted.Add(e.Ref)
	}
}

func (s *recordingSink) events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.got...)
}

func TestSinkSeesUnsampledEventsForWantedRefs(t *testing.T) {
	// Op sampling off: the ring must stay empty, yet the sink must still
	// receive every alloc (to decide tracking) and every event touching a
	// ref it claimed.
	r := New(WithSampleEvery(0), WithStripes(1))
	sink := &recordingSink{wanted: NewRefSet(16)}
	r.SetSink(sink)

	r.Record(r.Sample(), KindAlloc, 0x10, 0, false, 0)
	r.Record(r.Sample(), KindLoad, 0x10, 0x99, true, 2)
	r.Record(r.Sample(), KindLoad, 0x20, 0, true, 0) // unclaimed ref
	r.Note(KindZombiePush, 0x10, 0)

	if got := r.Recorded(); got != 0 {
		t.Errorf("ring recorded %d events with sampling off", got)
	}
	evs := sink.events()
	if len(evs) != 3 {
		t.Fatalf("sink got %d events, want 3 (alloc, load, zombie_push): %+v", len(evs), evs)
	}
	if evs[0].Kind != KindAlloc || evs[1].Kind != KindLoad || evs[2].Kind != KindZombiePush {
		t.Errorf("sink event kinds = %v %v %v", evs[0].Kind, evs[1].Kind, evs[2].Kind)
	}
	if evs[1].Addr != 0x99 || evs[1].Retries != 2 {
		t.Errorf("sink load event lost fields: %+v", evs[1])
	}
}

func TestRecordCarriesTransitionValues(t *testing.T) {
	r := New(WithSampleEvery(1), WithStripes(1))
	r.RecordT(r.Sample(), KindCopy, 0x10, 0, true, 0, 3, 4)
	evs := r.Events()
	if len(evs) != 1 {
		t.Fatalf("recorded %d events, want 1", len(evs))
	}
	if evs[0].Old != 3 || evs[0].New != 4 {
		t.Errorf("transition = %d->%d, want 3->4", evs[0].Old, evs[0].New)
	}
	if !strings.Contains(evs[0].String(), "3->4") {
		t.Errorf("String() omits the transition: %s", evs[0])
	}
}
