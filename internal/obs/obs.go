// Package obs is the lock-free flight recorder behind the reproduction's
// observability layer.
//
// The paper's correctness story (no premature free, no leak) and all of its
// performance claims hinge on events — DCAS outcomes, retries, allocator
// recycling, deferred reclamation — that were previously visible only as
// aggregate counters, or not at all. The recorder makes the recent event
// history first-class while obeying one hard rule: it must never perturb the
// lock-free algorithms it watches. Concretely:
//
//   - Recording is sampled and allocation-free. A disabled or unsampled call
//     costs one nil/zero check (and, when sampling, one striped atomic add);
//     nothing is ever locked on the hot path.
//   - Events land in per-stripe rings of cache-line-independent slots. A
//     writer claims a slot with one striped atomic increment and publishes
//     the event with a per-slot seqlock (sequence word written last), so
//     concurrent snapshots see each slot either whole or not at all — no
//     torn events, no locks, no waiting.
//   - Latency and retry distributions go to mergeable concurrent histograms
//     (package hist), observed only on sampled operations.
//
// The cold paths — Trace snapshots and violation postmortems — may allocate
// and (for postmortem retention only) take a mutex; they run during
// diagnostics, not inside the algorithms.
//
// The package deliberately depends only on hist and stripe so that mem,
// core, and the structure packages can all record into one Recorder without
// import cycles; object references are plain uint32 word addresses
// (mem.Ref's underlying type).
package obs

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lfrc/internal/hist"
	"lfrc/internal/stripe"
)

// defaultStripes is the stripe-count fallback: one per schedulable thread.
func defaultStripes() int { return runtime.GOMAXPROCS(0) }

// Kind classifies a recorded event.
type Kind uint8

// Event kinds. The LFRC operation kinds (Load..Destroy) are recorded by
// package core, the allocator kinds (Alloc..ZombieDrain) by package mem and
// the zombie machinery, and the structure kinds (PushLeft..PopRight) by the
// deque; Violation marks a postmortem trigger.
const (
	KindNone Kind = iota
	KindLoad
	KindNaiveLoad
	KindStore
	KindCopy
	KindCAS
	KindDCAS
	KindDestroy
	KindAlloc
	KindFree
	KindSteal
	KindZombiePush
	KindZombieDrain
	KindPushLeft
	KindPushRight
	KindPopLeft
	KindPopRight
	KindViolation

	numKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	names := [...]string{
		KindNone:        "none",
		KindLoad:        "load",
		KindNaiveLoad:   "naive_load",
		KindStore:       "store",
		KindCopy:        "copy",
		KindCAS:         "cas",
		KindDCAS:        "dcas",
		KindDestroy:     "destroy",
		KindAlloc:       "alloc",
		KindFree:        "free",
		KindSteal:       "steal",
		KindZombiePush:  "zombie_push",
		KindZombieDrain: "zombie_drain",
		KindPushLeft:    "push_left",
		KindPushRight:   "push_right",
		KindPopLeft:     "pop_left",
		KindPopRight:    "pop_right",
		KindViolation:   "violation",
	}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one recorded flight event.
type Event struct {
	// Seq is the event's global sequence number (1-based, total order
	// across stripes).
	Seq uint64 `json:"seq"`

	// TS is the event's completion time, nanoseconds since the Unix epoch.
	TS int64 `json:"ts"`

	// Kind classifies the event.
	Kind Kind `json:"kind"`

	// OK is the operation's outcome: DCAS/CAS success, or whether a
	// Destroy dropped the count to zero.
	OK bool `json:"ok"`

	// Retries counts failed attempts before the recorded outcome.
	Retries uint32 `json:"retries"`

	// Ref is the primary object the event touched (0 if none).
	Ref uint32 `json:"ref"`

	// Addr is the shared cell involved (0 if none): the loaded/stored
	// cell, a DCAS's first address, and so on.
	Addr uint32 `json:"addr"`

	// Old and New carry the event's transition values, when it has any:
	// the before/after reference count for rc-updating operations
	// (Load/Store/Copy/CAS/DCAS increments, Destroy decrements), and the
	// slot generation / heap epoch for Alloc and Free. Zero when the
	// event carries no transition.
	Old uint32 `json:"old,omitempty"`
	New uint32 `json:"new,omitempty"`
}

// String renders one event for postmortem dumps.
func (e Event) String() string {
	s := fmt.Sprintf("#%d %s ref=%#x addr=%#x ok=%t retries=%d",
		e.Seq, e.Kind, e.Ref, e.Addr, e.OK, e.Retries)
	if e.Old != 0 || e.New != 0 {
		s += fmt.Sprintf(" %d->%d", e.Old, e.New)
	}
	return s
}

// Slot words pack an Event for seqlock publication:
//
//	w0: sequence number (0 = never written; doubles as the publish word)
//	w1: timestamp
//	w2: kind(8) | ok(8) | retries(32)
//	w3: ref(32) | addr(32)
//	w4: old(32) | new(32)
type slot struct {
	w0, w1, w2, w3, w4 atomic.Uint64
}

func packW2(k Kind, ok bool, retries uint32) uint64 {
	v := uint64(k)<<48 | uint64(retries)
	if ok {
		v |= 1 << 40
	}
	return v
}

func (s *slot) store(e Event) {
	// Invalidate, write payload, publish. The release ordering of Go
	// atomics makes the payload visible before the new sequence number.
	s.w0.Store(0)
	s.w1.Store(uint64(e.TS))
	s.w2.Store(packW2(e.Kind, e.OK, e.Retries))
	s.w3.Store(uint64(e.Ref)<<32 | uint64(e.Addr))
	s.w4.Store(uint64(e.Old)<<32 | uint64(e.New))
	s.w0.Store(e.Seq)
}

// load returns the slot's event, or ok=false if it is empty or was being
// rewritten while we read it.
func (s *slot) load() (Event, bool) {
	seq := s.w0.Load()
	if seq == 0 {
		return Event{}, false
	}
	e := Event{
		Seq: seq,
		TS:  int64(s.w1.Load()),
	}
	w2 := s.w2.Load()
	e.Kind = Kind(w2 >> 48)
	e.OK = w2&(1<<40) != 0
	e.Retries = uint32(w2)
	w3 := s.w3.Load()
	e.Ref = uint32(w3 >> 32)
	e.Addr = uint32(w3)
	w4 := s.w4.Load()
	e.Old = uint32(w4 >> 32)
	e.New = uint32(w4)
	if s.w0.Load() != seq || e.Kind >= numKinds {
		return Event{}, false
	}
	return e, true
}

// recStripe is one stripe of the recorder: a private ring cursor and
// sampling counter (padded so neighbouring stripes never false-share) plus
// the stripe's event ring.
type recStripe struct {
	pos     atomic.Uint64 // next ring slot (monotonic; masked on use)
	sampleN atomic.Uint64 // operations seen, for 1-in-N sampling
	_       [48]byte
	ring    []slot
}

// Option configures a Recorder.
type Option func(*config)

type config struct {
	every    uint64
	ringSize int
	stripes  int
}

// WithSampleEvery records every nth eligible operation: 1 records all, 0
// disables recording entirely (the recorder stays installed and the hot
// paths pay only the disabled check). The default is 64.
func WithSampleEvery(n int) Option {
	return func(c *config) {
		if n < 0 {
			n = 0
		}
		c.every = uint64(n)
	}
}

// WithRingSize sets each stripe's event-ring capacity, rounded up to a power
// of two. The default is 1024 events per stripe.
func WithRingSize(n int) Option {
	return func(c *config) { c.ringSize = n }
}

// WithStripes sets the stripe count; the default is GOMAXPROCS, clamped like
// every other striped facility (package stripe).
func WithStripes(n int) Option {
	return func(c *config) { c.stripes = n }
}

// Sink is a secondary event consumer fed by the recorder: the per-ref
// lifecycle ledger (package lifecycle). A sink samples by *object*, not by
// operation: the recorder consults the sink's Tracked set for every event
// with a nonzero ref — including operations its own 1-in-N sampling skipped
// — so a sink sees the complete event chain of every object it claims. Alloc
// events are always offered (the set is not consulted) so the sink can make
// its track/ignore decision at object birth.
//
// The membership gate is a concrete *RefSet rather than a method so the
// per-operation check is a direct inlinable probe, not an interface call:
// with nothing tracked the whole tap costs one atomic load per operation.
// OnEvent runs only for claimed refs (plus allocs) and may take short
// per-object locks. Events whose operation was not op-sampled arrive with
// TS 0; a sink that needs a timestamp stamps them itself.
type Sink interface {
	// Tracked returns the set of refs the sink currently claims. The
	// recorder caches the pointer at SetSink time; it must stay valid for
	// the recorder's lifetime. A nil set claims nothing (alloc-only tap).
	Tracked() *RefSet

	// OnEvent delivers one event touching a claimed ref (or any Alloc).
	// The event's Seq is 0: sink delivery is independent of the ring.
	OnEvent(e Event)
}

// Agg is the recorder's aggregation tap: a consumer of every op-sampled
// event together with the operation's measured latency, which the Event
// itself does not carry. The contention observatory (package contend)
// implements it to charge retried operations' wasted time to their cells.
// Unlike a Sink, an Agg sees only ring-recorded events — its cost is paid
// once per sampled operation, never on the unsampled fast path — and its
// implementation must be lock-free and allocation-free.
type Agg interface {
	// Aggregate receives one op-sampled event and its latency in
	// nanoseconds. The event's Seq is 0: aggregation is independent of
	// the ring.
	Aggregate(e Event, latencyNS int64)
}

// Recorder is the flight recorder. The zero value is not usable; call New.
// A nil *Recorder is a valid disabled recorder: every hot-path method on it
// is a cheap no-op, so callers embed one pointer and never branch twice.
type Recorder struct {
	every   uint64
	stripes []recStripe
	mask    uint64
	seq     atomic.Uint64

	// sink is the optional per-ref event tap; nil costs one branch per
	// recorded call. Set once via SetSink before the recorder is shared.
	// sinkRefs caches sink.Tracked() so the per-operation membership probe
	// is a direct call on the concrete set, not interface dispatch.
	sink     Sink
	sinkRefs *RefSet

	// agg is the optional aggregation tap; nil costs one branch per
	// sampled record. Set once via SetAgg before the recorder is shared.
	agg Agg

	lat     [numKinds]hist.Concurrent
	retries hist.Concurrent

	pmMu    sync.Mutex
	pms     []Postmortem // ring: the newest maxPostmortems captures
	pmHead  int          // index of the oldest retained capture once full
	pmTotal uint64       // captures ever taken (rolls past the ring bound)
}

// maxPostmortems bounds retained postmortems so a corruption storm cannot
// grow memory without bound.
const maxPostmortems = 32

// PostmortemEvents is how many trailing events a postmortem captures.
const PostmortemEvents = 32

// refSpan is the address window after an object base treated as "touching"
// that object when matching events by cell address; it mirrors the heap's
// maximum object size in words.
const refSpan = 64

// New creates a Recorder.
func New(opts ...Option) *Recorder {
	cfg := config{every: 64, ringSize: 1024}
	for _, o := range opts {
		o(&cfg)
	}
	size := 1
	for size < cfg.ringSize {
		size <<= 1
	}
	n := stripe.Clamp(cfg.stripes, defaultStripes())
	r := &Recorder{
		every:   cfg.every,
		stripes: make([]recStripe, n),
		mask:    uint64(size - 1),
	}
	for i := range r.stripes {
		r.stripes[i].ring = make([]slot, size)
	}
	return r
}

// SetSink installs the per-ref event tap. It must be called before the
// recorder starts receiving events (the field is read without
// synchronization on the hot path); installation is one-shot by convention.
// A nil sink leaves tapping disabled.
func (r *Recorder) SetSink(s Sink) {
	if r == nil {
		return
	}
	r.sink = s
	if s != nil {
		r.sinkRefs = s.Tracked()
	} else {
		r.sinkRefs = nil
	}
}

// SetAgg installs the aggregation tap. Like SetSink it must be called
// before the recorder starts receiving events (the field is read without
// synchronization on the hot path). A nil agg leaves aggregation disabled.
func (r *Recorder) SetAgg(a Agg) {
	if r == nil {
		return
	}
	r.agg = a
}

// SampleEvery reports the configured sampling interval (0 = disabled).
func (r *Recorder) SampleEvery() int {
	if r == nil {
		return 0
	}
	return int(r.every)
}

// Recorded reports how many events have been recorded so far.
func (r *Recorder) Recorded() uint64 {
	if r == nil {
		return 0
	}
	return r.seq.Load()
}

// Sample begins one potentially recorded operation: it returns a nonzero
// start timestamp when this operation was selected for recording and 0
// otherwise (including on a nil or disabled recorder). Callers thread the
// token through to Record, which is a no-op for 0, so an unsampled operation
// pays exactly this one check.
func (r *Recorder) Sample() int64 {
	if r == nil || r.every == 0 {
		return 0
	}
	if r.every > 1 {
		st := &r.stripes[stripe.Hint(len(r.stripes))]
		if st.sampleN.Add(1)%r.every != 0 {
			return 0
		}
	}
	return time.Now().UnixNano()
}

// Record completes a sampled operation begun by Sample: it appends the event
// to the calling stripe's ring and feeds the operation's latency and retry
// count to the histograms. t0 of 0 (unsampled) makes it a no-op for the ring
// and histograms; an installed sink still receives events for refs it claims.
func (r *Recorder) Record(t0 int64, kind Kind, ref, addr uint32, ok bool, retries uint32) {
	r.RecordT(t0, kind, ref, addr, ok, retries, 0, 0)
}

// RecordT is Record carrying a transition (old/new reference count, or
// generation/epoch stamps for allocator events) in the event's Old/New
// fields.
func (r *Recorder) RecordT(t0 int64, kind Kind, ref, addr uint32, ok bool, retries, oldv, newv uint32) {
	if r == nil {
		return
	}
	wanted := r.sink != nil && ref != 0 && (kind == KindAlloc || r.sinkRefs.Has(ref))
	if t0 == 0 && !wanted {
		return
	}
	// Only op-sampled events pay for a timestamp; sink-only deliveries go
	// out with TS 0 and the sink stamps them if it keeps the event.
	var now int64
	if t0 != 0 {
		now = time.Now().UnixNano()
	}
	e := Event{TS: now, Kind: kind, OK: ok, Retries: retries, Ref: ref, Addr: addr, Old: oldv, New: newv}
	if wanted {
		r.sink.OnEvent(e)
	}
	if t0 == 0 {
		return
	}
	if kind < numKinds {
		r.lat[kind].Observe(now - t0)
	}
	r.retries.Observe(int64(retries))
	if r.agg != nil {
		r.agg.Aggregate(e, now-t0)
	}
	r.append(e)
}

// Note records a point event (no latency) subject to the same sampling as
// Sample: allocator recycling, steals, zombie parking. Nil-safe. An
// installed sink receives the event for refs it claims regardless of
// sampling.
func (r *Recorder) Note(kind Kind, ref, addr uint32) {
	r.NoteT(kind, ref, addr, 0, 0)
}

// NoteT is Note carrying a transition in the event's Old/New fields.
func (r *Recorder) NoteT(kind Kind, ref, addr, oldv, newv uint32) {
	if r == nil {
		return
	}
	wanted := r.sink != nil && ref != 0 && (kind == KindAlloc || r.sinkRefs.Has(ref))
	sampled := r.every != 0
	if sampled && r.every > 1 {
		st := &r.stripes[stripe.Hint(len(r.stripes))]
		if st.sampleN.Add(1)%r.every != 0 {
			sampled = false
		}
	}
	if !sampled && !wanted {
		return
	}
	var now int64
	if sampled {
		now = time.Now().UnixNano()
	}
	e := Event{TS: now, Kind: kind, Ref: ref, Addr: addr, OK: true, Old: oldv, New: newv}
	if wanted {
		r.sink.OnEvent(e)
	}
	if sampled {
		r.append(e)
	}
}

// noteAlways records an event regardless of sampling — used for violations,
// which must never be sampled away.
func (r *Recorder) noteAlways(kind Kind, ref, addr uint32) {
	if r == nil {
		return
	}
	e := Event{TS: time.Now().UnixNano(), Kind: kind, Ref: ref, Addr: addr}
	if r.sink != nil && ref != 0 && r.sinkRefs.Has(ref) {
		r.sink.OnEvent(e)
	}
	r.append(e)
}

// append claims a slot on the calling stripe and publishes the event.
func (r *Recorder) append(e Event) {
	e.Seq = r.seq.Add(1)
	st := &r.stripes[stripe.Hint(len(r.stripes))]
	idx := st.pos.Add(1) - 1
	st.ring[idx&r.mask].store(e)
}

// Events returns a snapshot of every buffered event in ascending sequence
// order. Slots being rewritten during the scan are skipped whole (seqlock),
// never returned torn. Cold path; allocates.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for i := range r.stripes {
		ring := r.stripes[i].ring
		for j := range ring {
			if e, ok := ring[j].load(); ok {
				out = append(out, e)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// EventsTouching returns the last n buffered events touching ref: events
// whose Ref is ref or whose cell address falls inside ref's object span.
func (r *Recorder) EventsTouching(ref uint32, n int) []Event {
	if r == nil || n <= 0 {
		return nil
	}
	all := r.Events()
	var out []Event
	for _, e := range all {
		if e.Ref == ref || (e.Addr >= ref && e.Addr < ref+refSpan) {
			out = append(out, e)
		}
	}
	if len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// LatencySnapshots returns the per-kind latency histograms (nanoseconds) for
// kinds with at least one sample.
func (r *Recorder) LatencySnapshots() map[Kind]hist.Histogram {
	if r == nil {
		return nil
	}
	out := make(map[Kind]hist.Histogram)
	for k := Kind(1); k < numKinds; k++ {
		if h := r.lat[k].Snapshot(); h.Count() > 0 {
			out[k] = h
		}
	}
	return out
}

// KindLatencyQuantiles computes latency quantiles (nanoseconds) for one op
// kind straight off the live histogram: unlike LatencySnapshots it copies no
// Histogram values and allocates nothing, so the timeline capture path can
// digest quantiles every interval. out[i] answers ps[i]; the return value is
// the sample count (0 leaves out zero-filled). Nil-safe; out-of-range kinds
// report 0 samples.
func (r *Recorder) KindLatencyQuantiles(k Kind, ps []float64, out []int64) int64 {
	if r == nil || k <= KindNone || k >= numKinds {
		for i := range out {
			out[i] = 0
		}
		return 0
	}
	return r.lat[k].QuantilesInto(ps, out)
}

// RetryQuantiles is KindLatencyQuantiles for the cross-kind retry-count
// histogram.
func (r *Recorder) RetryQuantiles(ps []float64, out []int64) int64 {
	if r == nil {
		for i := range out {
			out[i] = 0
		}
		return 0
	}
	return r.retries.QuantilesInto(ps, out)
}

// RetrySnapshot returns the retry-count histogram across all recorded
// operations.
func (r *Recorder) RetrySnapshot() hist.Histogram {
	if r == nil {
		return hist.Histogram{}
	}
	return r.retries.Snapshot()
}

// Postmortem is the flight-recorder dump captured when a violation fires:
// the trailing events that touched the offending object.
type Postmortem struct {
	// Reason describes the trigger ("rc violation", "poison corruption").
	Reason string `json:"reason"`

	// Ref is the offending object.
	Ref uint32 `json:"ref"`

	// TS is the capture time (nanoseconds since the Unix epoch).
	TS int64 `json:"ts"`

	// Events are the last PostmortemEvents flight events touching Ref,
	// oldest first.
	Events []Event `json:"events"`
}

// String renders the postmortem, one event per line.
func (p Postmortem) String() string {
	s := fmt.Sprintf("postmortem %s ref=%#x: %d flight events", p.Reason, p.Ref, len(p.Events))
	for _, e := range p.Events {
		s += "\n  " + e.String()
	}
	return s
}

// CapturePostmortem snapshots the trailing events touching ref, retains the
// result (bounded at maxPostmortems), records a violation event, and returns
// the capture. It is the dump-on-violation entry point, called by the heap's
// corruption detector and the quiescent auditors; it locks, which is fine on
// a violation path and unacceptable anywhere else.
func (r *Recorder) CapturePostmortem(reason string, ref uint32) Postmortem {
	if r == nil {
		return Postmortem{Reason: reason, Ref: ref}
	}
	p := Postmortem{
		Reason: reason,
		Ref:    ref,
		TS:     time.Now().UnixNano(),
		Events: r.EventsTouching(ref, PostmortemEvents),
	}
	r.noteAlways(KindViolation, ref, 0)
	r.pmMu.Lock()
	if len(r.pms) < maxPostmortems {
		r.pms = append(r.pms, p)
	} else {
		// Ring: overwrite the oldest so a violation storm keeps the most
		// recent captures instead of freezing the first 32.
		r.pms[r.pmHead] = p
		r.pmHead = (r.pmHead + 1) % maxPostmortems
	}
	r.pmTotal++
	r.pmMu.Unlock()
	return p
}

// Postmortems returns the retained postmortems (the newest maxPostmortems
// captures), oldest first.
func (r *Recorder) Postmortems() []Postmortem {
	if r == nil {
		return nil
	}
	r.pmMu.Lock()
	defer r.pmMu.Unlock()
	if len(r.pms) == 0 {
		return nil
	}
	out := make([]Postmortem, 0, len(r.pms))
	out = append(out, r.pms[r.pmHead:]...)
	out = append(out, r.pms[:r.pmHead]...)
	return out
}

// PostmortemCount reports how many postmortems have ever been captured,
// including captures the retention ring has since overwritten.
func (r *Recorder) PostmortemCount() uint64 {
	if r == nil {
		return 0
	}
	r.pmMu.Lock()
	defer r.pmMu.Unlock()
	return r.pmTotal
}

// Trace is the one-call dump of the recorder's state.
type Trace struct {
	// SampleEvery is the sampling interval (0 = disabled, 1 = full).
	SampleEvery int `json:"sample_every"`

	// Recorded is the total number of events recorded since creation
	// (the ring keeps only the most recent ones).
	Recorded uint64 `json:"recorded"`

	// Events is the buffered event history, ascending sequence order.
	Events []Event `json:"events"`

	// Latency digests sampled operation latencies per kind, nanoseconds.
	Latency map[string]hist.Summary `json:"latency_ns"`

	// Retries digests retry counts across sampled operations.
	Retries hist.Summary `json:"retries"`

	// Postmortems are the retained dump-on-violation captures.
	Postmortems []Postmortem `json:"postmortems,omitempty"`
}

// Trace returns the full dump. Nil-safe: a nil recorder returns a zero
// Trace.
func (r *Recorder) Trace() Trace {
	if r == nil {
		return Trace{}
	}
	t := Trace{
		SampleEvery: r.SampleEvery(),
		Recorded:    r.Recorded(),
		Events:      r.Events(),
		Latency:     make(map[string]hist.Summary),
		Retries:     r.retries.Snapshot().Summary(),
		Postmortems: r.Postmortems(),
	}
	for k, h := range r.LatencySnapshots() {
		t.Latency[k.String()] = h.Summary()
	}
	return t
}
