package obs

import "testing"

func BenchmarkSampleRecordDisabledPath(b *testing.B) {
	b.Run("nil", func(b *testing.B) {
		var r *Recorder
		for i := 0; i < b.N; i++ {
			t0 := r.Sample()
			r.Record(t0, KindLoad, 1, 2, true, 0)
		}
	})
	b.Run("installed-off", func(b *testing.B) {
		r := New(WithSampleEvery(0))
		for i := 0; i < b.N; i++ {
			t0 := r.Sample()
			r.Record(t0, KindLoad, 1, 2, true, 0)
		}
	})
	b.Run("sampled64", func(b *testing.B) {
		r := New(WithSampleEvery(64))
		for i := 0; i < b.N; i++ {
			t0 := r.Sample()
			r.Record(t0, KindLoad, 1, 2, true, 0)
		}
	})
	b.Run("full", func(b *testing.B) {
		r := New(WithSampleEvery(1))
		for i := 0; i < b.N; i++ {
			t0 := r.Sample()
			r.Record(t0, KindLoad, 1, 2, true, 0)
		}
	})
}
