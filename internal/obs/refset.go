package obs

import "sync/atomic"

// RefSet is a fixed-capacity lock-free membership set of object refs. It is
// the hot-path gate between the recorder and a Sink: the recorder asks Has
// for every event with a nonzero ref — including operations its own 1-in-N
// sampling skipped — so membership checks must cost nanoseconds, not a map
// lookup through an interface. The implementation is an open-addressed table
// of atomic words probed linearly; when the set is empty (the common case for
// a disabled or freshly started ledger) Has is a single atomic load.
//
// The writer side (Add/Remove) is expected to be rare — one Add per sampled
// allocation, one Remove per retirement — and tolerates concurrent callers,
// but a given ref must not be Added twice without an intervening Remove (the
// ledger's track table enforces this).
type RefSet struct {
	mask uint32
	n    atomic.Int64

	// summary is a 64-bit bloom filter over the membership: bit
	// hash(ref)%64 is set while any member maps to it (bitCounts holds the
	// per-bit member counts so Remove can clear exactly). Has rejects on a
	// clear bit with a single load of this one read-mostly word — without
	// it, every miss probes a random, likely uncached line of the slot
	// table, which at operation rate is the tap's dominant cost.
	summary   atomic.Uint64
	bitCounts [64]atomic.Int64

	slots []atomic.Uint64
}

// refTombstone marks a slot whose ref was removed. Probe chains walk through
// tombstones (clearing to zero would break lookups of refs displaced past
// this slot); Add reuses them so chains stay short.
const refTombstone = ^uint64(0)

// NewRefSet creates a set able to hold capacity refs. The table is sized at
// 4x capacity (rounded up to a power of two) so load factor stays low enough
// that misses terminate on the first or second probe.
func NewRefSet(capacity int) *RefSet {
	size := 64
	for size < capacity*4 {
		size <<= 1
	}
	return &RefSet{mask: uint32(size - 1), slots: make([]atomic.Uint64, size)}
}

// slotFor is Fibonacci hashing plus linear probe offset i.
func (s *RefSet) slotFor(ref, i uint32) *atomic.Uint64 {
	return &s.slots[(ref*2654435761+i)&s.mask]
}

// bitFor picks the summary bit from the top hash bits (the slot index uses
// the low ones, so the two stay decorrelated).
func bitFor(ref uint32) uint64 {
	return 1 << ((ref * 2654435761) >> 26)
}

// Has reports membership. Nil-safe; a single load of the summary word when
// ref's bloom bit is clear — the overwhelmingly common case for untracked
// refs.
func (s *RefSet) Has(ref uint32) bool {
	if s == nil || ref == 0 || s.summary.Load()&bitFor(ref) == 0 {
		return false
	}
	for i := uint32(0); i <= s.mask; i++ {
		switch v := s.slotFor(ref, i).Load(); v {
		case 0:
			return false
		case uint64(ref):
			return true
		}
	}
	return false
}

// summaryFix reconciles ref's bloom bit with its member count after a
// membership change (CAS loop: the module floor predates
// atomic.Uint64.Or/And). It loops until bit and count agree, so concurrent
// adders and removers of colliding refs cannot strand the bit in the wrong
// state — the last writer out re-checks and repairs.
func (s *RefSet) summaryFix(ref uint32) {
	idx := (ref * 2654435761) >> 26
	bit := uint64(1) << idx
	for {
		old := s.summary.Load()
		want := old &^ bit
		if s.bitCounts[idx].Load() > 0 {
			want = old | bit
		}
		if want == old || s.summary.CompareAndSwap(old, want) {
			if (s.bitCounts[idx].Load() > 0) == (s.summary.Load()&bit != 0) {
				return
			}
		}
	}
}

// Add inserts ref, reusing the first tombstone or empty slot on its probe
// chain. It reports whether the insert happened (false when the table is
// full or ref is 0).
func (s *RefSet) Add(ref uint32) bool {
	if s == nil || ref == 0 {
		return false
	}
	for i := uint32(0); i <= s.mask; i++ {
		slot := s.slotFor(ref, i)
		for {
			v := slot.Load()
			if v == uint64(ref) {
				return false
			}
			if v != 0 && v != refTombstone {
				break // occupied by another ref; next probe
			}
			if slot.CompareAndSwap(v, uint64(ref)) {
				s.n.Add(1)
				s.bitCounts[(ref*2654435761)>>26].Add(1)
				s.summaryFix(ref)
				return true
			}
			// Lost a race for this slot; re-read and reconsider it.
		}
	}
	return false
}

// Remove deletes ref, leaving a tombstone so other refs' probe chains stay
// intact. It reports whether ref was present.
func (s *RefSet) Remove(ref uint32) bool {
	if s == nil || ref == 0 {
		return false
	}
	for i := uint32(0); i <= s.mask; i++ {
		slot := s.slotFor(ref, i)
		v := slot.Load()
		if v == 0 {
			return false
		}
		if v == uint64(ref) {
			if slot.CompareAndSwap(v, refTombstone) {
				s.n.Add(-1)
				s.bitCounts[(ref*2654435761)>>26].Add(-1)
				s.summaryFix(ref)
				return true
			}
			return false // concurrent remover won
		}
	}
	return false
}

// Len reports the current membership count.
func (s *RefSet) Len() int64 {
	if s == nil {
		return 0
	}
	return s.n.Load()
}
