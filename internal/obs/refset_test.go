package obs

import (
	"sync"
	"testing"
)

func TestRefSetAddHasRemove(t *testing.T) {
	s := NewRefSet(8)
	if s.Has(0x10) {
		t.Fatalf("empty set claims membership")
	}
	if !s.Add(0x10) || !s.Add(0x20) {
		t.Fatalf("Add failed on fresh set")
	}
	if s.Add(0x10) {
		t.Fatalf("duplicate Add reported success")
	}
	if !s.Has(0x10) || !s.Has(0x20) || s.Has(0x30) {
		t.Fatalf("membership wrong after adds")
	}
	if got := s.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	if !s.Remove(0x10) {
		t.Fatalf("Remove of member failed")
	}
	if s.Remove(0x10) {
		t.Fatalf("second Remove reported success")
	}
	if s.Has(0x10) || !s.Has(0x20) {
		t.Fatalf("membership wrong after remove")
	}
	if got := s.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
}

func TestRefSetZeroAndNil(t *testing.T) {
	var nilSet *RefSet
	if nilSet.Has(1) || nilSet.Add(1) || nilSet.Remove(1) || nilSet.Len() != 0 {
		t.Fatalf("nil RefSet is not a no-op")
	}
	s := NewRefSet(4)
	if s.Add(0) || s.Has(0) || s.Remove(0) {
		t.Fatalf("ref 0 must never be a member")
	}
}

// TestRefSetTombstoneReuse churns adds and removes of colliding refs far past
// the table capacity: tombstone reuse must keep the table from filling up and
// probe chains must stay correct across displacements.
func TestRefSetTombstoneReuse(t *testing.T) {
	s := NewRefSet(4) // table of 64 slots
	// Refs spaced by the table size collide on the same probe chain.
	const stride = 64
	for round := 0; round < 1000; round++ {
		a := uint32(1 + round*stride)
		b := uint32(2 + round*stride)
		if !s.Add(a) || !s.Add(b) {
			t.Fatalf("round %d: Add failed (table clogged by tombstones?)", round)
		}
		if !s.Has(a) || !s.Has(b) {
			t.Fatalf("round %d: members missing", round)
		}
		if !s.Remove(a) || !s.Remove(b) {
			t.Fatalf("round %d: Remove failed", round)
		}
	}
	if got := s.Len(); got != 0 {
		t.Fatalf("Len = %d after churn, want 0", got)
	}
}

// TestRefSetConcurrent exercises disjoint add/remove churn from many
// goroutines with concurrent readers — the recorder-vs-ledger access pattern.
func TestRefSetConcurrent(t *testing.T) {
	s := NewRefSet(256)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				ref := uint32(1 + w*1000 + i%16)
				s.Add(ref)
				s.Has(ref)
				s.Remove(ref)
			}
		}(w)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				s.Has(uint32(1 + w*1000 + i%16))
			}
		}(w)
	}
	wg.Wait()
	if got := s.Len(); got != 0 {
		t.Fatalf("Len = %d after balanced churn, want 0", got)
	}
}

// TestRefSetBloomCollision removes one of two refs sharing a summary bit:
// the survivor must stay visible (the bit only clears at member count 0).
func TestRefSetBloomCollision(t *testing.T) {
	a := uint32(1)
	b := uint32(0)
	for c := uint32(2); c < 1<<20; c++ {
		if (c*2654435761)>>26 == (a*2654435761)>>26 {
			b = c
			break
		}
	}
	if b == 0 {
		t.Fatalf("no colliding ref found")
	}
	s := NewRefSet(8)
	s.Add(a)
	s.Add(b)
	if !s.Remove(a) {
		t.Fatalf("Remove(a) failed")
	}
	if s.Has(a) {
		t.Fatalf("removed ref still a member")
	}
	if !s.Has(b) {
		t.Fatalf("bloom bit cleared while a colliding member remains")
	}
	if s.Remove(b); s.summary.Load() != 0 {
		t.Fatalf("summary not empty after last member removed: %#x", s.summary.Load())
	}
}

// BenchmarkRefSetMiss prices the recorder's per-operation gate for an
// untracked ref while members exist — the sampled-mode hot path.
func BenchmarkRefSetMiss(b *testing.B) {
	s := NewRefSet(4096)
	s.Add(42)
	r := uint32(0)
	for i := 0; i < b.N; i++ {
		r += 97
		if s.Has(r) {
			b.Fatal("unexpected member")
		}
	}
}
