// Package check provides stop-the-world invariant auditors for LFRC heaps.
//
// The LFRC paper's correctness argument (§1, §5) rests on two properties of
// reference counts: a count is never less than the number of pointers to the
// object (no premature free), and at quiescence — when no operation is
// mid-flight holding conservative extra increments — the count is exactly
// the number of pointers plus the holder-declared external references.
// AuditRC checks the quiescent equality directly by re-deriving every
// object's expected count from the heap graph. ScanPoison independently
// verifies that no thread has written to freed memory.
//
// All functions require a quiescent heap (no concurrent mutators).
package check

import (
	"fmt"
	"sort"

	"lfrc/internal/mem"
)

// Violation reports one object whose state contradicts an invariant.
type Violation struct {
	// Ref is the object in violation.
	Ref mem.Ref

	// Kind classifies the violation: "rc" (count mismatch) or "poison"
	// (freed memory overwritten).
	Kind string

	// Want and Got are the expected and observed values (counts for
	// "rc"; for "poison", Got is the damaged cell's offset).
	Want, Got int64
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("%s violation at %#x: want %d, got %d", v.Kind, v.Ref, v.Want, v.Got)
}

// Decoder interprets one raw pointer-cell word as (referent, count weight).
// The figure2 strategy stores bare refs, each worth one count unit; the split
// strategy packs a weight stash next to the ref, and the stored count equals
// the sum of link weights plus external references. A nil Decoder means the
// bare-ref reading.
type Decoder func(u uint64) (mem.Ref, int64)

// AuditRC verifies that at quiescence every live object's reference count
// equals the number of heap pointers to it plus the caller-declared external
// references (extra), e.g. one per Go-side anchor handle. It returns all
// violations found. It assumes bare-ref pointer cells (the figure2 strategy);
// heaps running a packing strategy audit through AuditRCDecoded.
//
// Objects managed outside the LFRC protocol (such as a valois queue's
// type-stable pool) should not share a heap with audited objects, or should
// be accounted for in extra.
func AuditRC(h *mem.Heap, extra map[mem.Ref]int64) []Violation {
	return AuditRCDecoded(h, extra, nil)
}

// AuditRCDecoded is AuditRC under an explicit link decoder: each pointer cell
// is decoded to (referent, weight) and the expected count is the weighted
// in-edge sum plus extra. decode == nil means bare refs at weight 1.
func AuditRCDecoded(h *mem.Heap, extra map[mem.Ref]int64, decode Decoder) []Violation {
	if decode == nil {
		decode = func(u uint64) (mem.Ref, int64) {
			if u == 0 {
				return 0, 0
			}
			return mem.Ref(u), 1
		}
	}
	expected := make(map[mem.Ref]int64, 256)
	var live []mem.Ref
	h.Walk(func(r mem.Ref, freed bool) bool {
		if freed {
			return true
		}
		live = append(live, r)
		d, err := h.Type(h.TypeOf(r))
		if err != nil {
			return true
		}
		for _, f := range d.PtrFields {
			if t, w := decode(h.Load(h.FieldAddr(r, f))); t != 0 {
				expected[t] += w // self-pointers count too
			}
		}
		return true
	})

	var violations []Violation
	for _, r := range live {
		want := expected[r] + extra[r]
		got := int64(h.Load(h.RCAddr(r)))
		if got != want {
			violations = append(violations, Violation{Ref: r, Kind: "rc", Want: want, Got: got})
		}
	}
	return violations
}

// Leaks returns every live object on the heap. After a complete teardown
// (all structures closed) the result should be empty; anything left is
// either a genuine leak or stranded cyclic garbage.
func Leaks(h *mem.Heap) []mem.Ref {
	var live []mem.Ref
	h.Walk(func(r mem.Ref, freed bool) bool {
		if !freed {
			live = append(live, r)
		}
		return true
	})
	return live
}

// TypeCensus summarizes one object type's heap population.
type TypeCensus struct {
	// Name is the registered type name.
	Name string

	// Live and Freed count slots currently holding that type.
	Live, Freed int64

	// LiveWords is the heap footprint of the live objects.
	LiveWords int64
}

// Census returns a per-type population count of the heap, sorted by
// descending live words. Requires quiescence, like every walker here.
func Census(h *mem.Heap) []TypeCensus {
	byType := map[mem.TypeID]*TypeCensus{}
	h.Walk(func(r mem.Ref, freed bool) bool {
		id := h.TypeOf(r)
		c := byType[id]
		if c == nil {
			name := fmt.Sprintf("type#%d", id)
			if d, err := h.Type(id); err == nil {
				name = d.Name
			}
			c = &TypeCensus{Name: name}
			byType[id] = c
		}
		if freed {
			c.Freed++
		} else {
			c.Live++
			c.LiveWords += int64(h.SizeOf(r))
		}
		return true
	})
	out := make([]TypeCensus, 0, len(byType))
	for _, c := range byType {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].LiveWords != out[j].LiveWords {
			return out[i].LiveWords > out[j].LiveWords
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// ScanPoison verifies the poison pattern of every freed slot (the count cell
// and all payload cells; the aux cell carries the free-list link and is
// exempt). Each damaged slot yields one violation whose Got field is the
// first damaged cell's offset from the object base.
func ScanPoison(h *mem.Heap) []Violation {
	var violations []Violation
	h.Walk(func(r mem.Ref, freed bool) bool {
		if !freed {
			return true
		}
		size := h.SizeOf(r)
		if h.Load(h.RCAddr(r)) != mem.Poison {
			violations = append(violations, Violation{Ref: r, Kind: "poison", Got: 1})
			return true
		}
		for a := r + mem.HeaderWords; a < r+mem.Ref(size); a++ {
			if h.Load(a) != mem.Poison {
				violations = append(violations, Violation{Ref: r, Kind: "poison", Got: int64(a - r)})
				return true
			}
		}
		return true
	})
	return violations
}
