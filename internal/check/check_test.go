package check

import (
	"testing"

	"lfrc/internal/core"
	"lfrc/internal/dcas"
	"lfrc/internal/mem"
	"lfrc/internal/snark"
)

type world struct {
	h    *mem.Heap
	rc   *core.RC
	node mem.TypeID
}

func newWorld(t *testing.T) *world {
	t.Helper()
	h := mem.NewHeap()
	return &world{
		h:    h,
		rc:   core.New(h, dcas.NewLocking(h)),
		node: h.MustRegisterType(mem.TypeDesc{Name: "node", NumFields: 3, PtrFields: []int{0, 1}}),
	}
}

func TestAuditCleanGraph(t *testing.T) {
	w := newWorld(t)
	// root -> {a, b}; b -> a. Locals: root, a, b.
	root, _ := w.rc.NewObject(w.node)
	a, _ := w.rc.NewObject(w.node)
	b, _ := w.rc.NewObject(w.node)
	w.rc.Store(w.h.FieldAddr(root, 0), a)
	w.rc.Store(w.h.FieldAddr(root, 1), b)
	w.rc.Store(w.h.FieldAddr(b, 0), a)

	extra := map[mem.Ref]int64{root: 1, a: 1, b: 1}
	if vs := AuditRC(w.h, extra); len(vs) != 0 {
		t.Errorf("AuditRC on clean graph = %v, want none", vs)
	}
}

func TestAuditDetectsInflatedCount(t *testing.T) {
	w := newWorld(t)
	a, _ := w.rc.NewObject(w.node)
	w.h.Store(w.h.RCAddr(a), 5) // corrupt: only the local ref exists

	vs := AuditRC(w.h, map[mem.Ref]int64{a: 1})
	if len(vs) != 1 {
		t.Fatalf("AuditRC = %v, want 1 violation", vs)
	}
	if vs[0].Ref != a || vs[0].Kind != "rc" || vs[0].Want != 1 || vs[0].Got != 5 {
		t.Errorf("violation = %+v", vs[0])
	}
}

func TestAuditDetectsDeflatedCount(t *testing.T) {
	w := newWorld(t)
	root, _ := w.rc.NewObject(w.node)
	a, _ := w.rc.NewObject(w.node)
	w.rc.Store(w.h.FieldAddr(root, 0), a)
	w.h.Store(w.h.RCAddr(a), 1) // lost the root's field reference

	vs := AuditRC(w.h, map[mem.Ref]int64{root: 1, a: 1})
	if len(vs) != 1 || vs[0].Ref != a || vs[0].Want != 2 || vs[0].Got != 1 {
		t.Errorf("AuditRC = %v, want one deflation at %d", vs, a)
	}
}

func TestAuditCountsSelfPointers(t *testing.T) {
	w := newWorld(t)
	a, _ := w.rc.NewObject(w.node)
	w.rc.Store(w.h.FieldAddr(a, 0), a)

	if vs := AuditRC(w.h, map[mem.Ref]int64{a: 1}); len(vs) != 0 {
		t.Errorf("AuditRC with self-pointer = %v, want none", vs)
	}
}

func TestAuditQuiescentSnark(t *testing.T) {
	w := newWorld(t)
	ts := snark.MustRegisterTypes(w.h)
	d, err := snark.New(w.rc, ts)
	if err != nil {
		t.Fatalf("snark.New: %v", err)
	}
	for v := snark.Value(0); v < 200; v++ {
		if err := d.PushRight(v); err != nil {
			t.Fatal(err)
		}
		if v%3 == 0 {
			d.PopLeft()
		}
		if v%7 == 0 {
			d.PopRight()
		}
	}

	// At quiescence the only external reference is the Deque struct's
	// anchor handle.
	vs := AuditRC(w.h, map[mem.Ref]int64{d.Anchor(): 1})
	if len(vs) != 0 {
		t.Errorf("AuditRC on quiescent deque found %d violations: %v", len(vs), vs)
	}
	d.Close()
	if leaks := Leaks(w.h); len(leaks) != 0 {
		t.Errorf("Leaks after Close = %v, want none", leaks)
	}
}

func TestLeaksListsLiveObjects(t *testing.T) {
	w := newWorld(t)
	a, _ := w.rc.NewObject(w.node)
	b, _ := w.rc.NewObject(w.node)

	leaks := Leaks(w.h)
	if len(leaks) != 2 {
		t.Fatalf("Leaks = %v, want 2 entries", leaks)
	}
	w.rc.Destroy(a, b)
	if leaks := Leaks(w.h); len(leaks) != 0 {
		t.Errorf("Leaks after destroy = %v, want none", leaks)
	}
}

func TestScanPoisonCleanHeap(t *testing.T) {
	w := newWorld(t)
	a, _ := w.rc.NewObject(w.node)
	w.rc.Destroy(a)
	if vs := ScanPoison(w.h); len(vs) != 0 {
		t.Errorf("ScanPoison = %v, want none", vs)
	}
}

func TestScanPoisonDetectsDamage(t *testing.T) {
	tests := []struct {
		name   string
		damage func(w *world, a mem.Ref)
		offset int64
	}{
		{
			name:   "rc cell",
			damage: func(w *world, a mem.Ref) { w.h.Store(w.h.RCAddr(a), mem.Poison+1) },
			offset: 1,
		},
		{
			name:   "payload cell",
			damage: func(w *world, a mem.Ref) { w.h.Store(w.h.FieldAddr(a, 1), 0) },
			offset: int64(mem.HeaderWords + 1),
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			w := newWorld(t)
			a, _ := w.rc.NewObject(w.node)
			w.rc.Destroy(a)
			tt.damage(w, a)

			vs := ScanPoison(w.h)
			if len(vs) != 1 {
				t.Fatalf("ScanPoison = %v, want 1 violation", vs)
			}
			if vs[0].Ref != a || vs[0].Kind != "poison" || vs[0].Got != tt.offset {
				t.Errorf("violation = %+v, want offset %d at %d", vs[0], tt.offset, a)
			}
		})
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Ref: 0x40, Kind: "rc", Want: 2, Got: 3}
	want := "rc violation at 0x40: want 2, got 3"
	if got := v.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestCensusCountsByType(t *testing.T) {
	w := newWorld(t)
	leaf := w.h.MustRegisterType(mem.TypeDesc{Name: "leaf", NumFields: 1})

	var nodes, leaves []mem.Ref
	for i := 0; i < 5; i++ {
		n, _ := w.rc.NewObject(w.node)
		nodes = append(nodes, n)
	}
	for i := 0; i < 3; i++ {
		l, _ := w.rc.NewObject(leaf)
		leaves = append(leaves, l)
	}
	w.rc.Destroy(nodes[0])
	w.rc.Destroy(leaves[0])

	census := Census(w.h)
	got := map[string]TypeCensus{}
	for _, c := range census {
		got[c.Name] = c
	}
	if c := got["node"]; c.Live != 4 || c.Freed != 1 {
		t.Errorf("node census = %+v, want live 4 freed 1", c)
	}
	if c := got["leaf"]; c.Live != 2 || c.Freed != 1 {
		t.Errorf("leaf census = %+v, want live 2 freed 1", c)
	}
	// Sorted by live words descending: node objects are larger and more.
	if len(census) > 0 && census[0].Name != "node" {
		t.Errorf("census[0] = %+v, want node first", census[0])
	}
	if c := got["node"]; c.LiveWords != 4*(mem.HeaderWords+3) {
		t.Errorf("node LiveWords = %d", c.LiveWords)
	}
}

func TestCensusEmptyHeap(t *testing.T) {
	w := newWorld(t)
	if census := Census(w.h); len(census) != 0 {
		t.Errorf("Census of empty heap = %v", census)
	}
}
