package lifecycle

import (
	"encoding/json"
	"fmt"
	"io"

	"lfrc/internal/obs"
)

// chromeEvent is one entry in the Chrome trace_event JSON array ("JSON Object
// Format"), loadable by Perfetto and chrome://tracing. Field semantics:
//
//	ph "M"      metadata (process_name / thread_name)
//	ph "i"      instant event (requires scope "s")
//	ph "b"/"n"/"e"  async nested begin / instant / end, matched by id
//
// ts is microseconds, normalized so the earliest event in the export is 0.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	TS    float64        `json:"ts"`
	Pid   int            `json:"pid"`
	Tid   uint64         `json:"tid"`
	ID    string         `json:"id,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON Object Format top level.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// The export's track (tid) layout: the flight recorder's sampled ring dumps
// onto a dedicated pseudo-thread, and ledger entries land on the track of
// the goroutine that performed them (tid = runtime goroutine id).
const flightRecorderTid = 0

// WriteChromeTrace renders the recorder's trace and the ledger's timelines
// as Chrome trace_event JSON: one track per goroutine (named after the role
// registered with Do, where known), instants for flight-ring events, and one
// async span per sampled object lifetime carrying its full event chain.
// led may be nil (flight ring only).
func WriteChromeTrace(w io.Writer, tr obs.Trace, led *Ledger) error {
	var timelines []Timeline
	if led != nil {
		timelines = append(timelines, led.Completed()...)
		for _, st := range led.Live() {
			timelines = append(timelines, st.Timeline)
		}
	}

	// Normalize timestamps to the earliest event so the viewer does not
	// open on decades of empty timeline.
	var base int64
	for _, e := range tr.Events {
		if base == 0 || (e.TS != 0 && e.TS < base) {
			base = e.TS
		}
	}
	for _, tl := range timelines {
		if base == 0 || (tl.Start != 0 && tl.Start < base) {
			base = tl.Start
		}
	}
	us := func(ts int64) float64 { return float64(ts-base) / 1e3 }

	out := []chromeEvent{
		{Name: "process_name", Ph: "M", Pid: 1, Args: map[string]any{"name": "lfrc"}},
		{Name: "thread_name", Ph: "M", Pid: 1, Tid: flightRecorderTid,
			Args: map[string]any{"name": "flight recorder (sampled ring)"}},
	}

	// Flight-ring events: instants on the recorder's pseudo-track.
	for _, e := range tr.Events {
		out = append(out, chromeEvent{
			Name:  e.Kind.String(),
			Cat:   "flight",
			Ph:    "i",
			Scope: "t",
			TS:    us(e.TS),
			Pid:   1,
			Tid:   flightRecorderTid,
			Args: map[string]any{
				"seq": e.Seq, "ref": hex(e.Ref), "addr": hex(e.Addr),
				"ok": e.OK, "retries": e.Retries, "old": e.Old, "new": e.New,
			},
		})
	}

	// Ledger timelines: an async span per object lifetime, nested instants
	// per touch, plus a same-moment instant on the touching goroutine's
	// own track.
	named := map[uint64]bool{flightRecorderTid: true}
	for i, tl := range timelines {
		id := fmt.Sprintf("%#x.%d", tl.Ref, i)
		name := fmt.Sprintf("obj %#x gen %d", tl.Ref, tl.Gen)
		spanTid := uint64(flightRecorderTid)
		if len(tl.Entries) > 0 {
			spanTid = tl.Entries[0].GID
		}
		out = append(out, chromeEvent{
			Name: name, Cat: "lifetime", Ph: "b", TS: us(tl.Start),
			Pid: 1, Tid: spanTid, ID: id,
			Args: map[string]any{"ref": hex(tl.Ref), "gen": tl.Gen, "dropped": tl.Dropped},
		})
		for _, e := range tl.Entries {
			if e.GID != 0 && !named[e.GID] {
				named[e.GID] = true
				tname := fmt.Sprintf("goroutine %d", e.GID)
				if role, ok := GoroutineName(e.GID); ok {
					tname = fmt.Sprintf("%s (goroutine %d)", role, e.GID)
				}
				out = append(out, chromeEvent{
					Name: "thread_name", Ph: "M", Pid: 1, Tid: e.GID,
					Args: map[string]any{"name": tname},
				})
			}
			args := map[string]any{
				"ok": e.OK, "retries": e.Retries, "gid": e.GID,
				"addr": hex(e.Addr), "old": e.Old, "new": e.New,
			}
			out = append(out, chromeEvent{
				Name: e.Kind.String(), Cat: "lifetime", Ph: "n",
				TS: us(e.TS), Pid: 1, Tid: spanTid, ID: id, Args: args,
			})
			// Unattributed entries (plain reads, GID 0) have no
			// goroutine track to echo onto.
			if e.GID != 0 {
				out = append(out, chromeEvent{
					Name: fmt.Sprintf("%s %#x", e.Kind, tl.Ref), Cat: "op",
					Ph: "i", Scope: "t", TS: us(e.TS), Pid: 1, Tid: e.GID, Args: args,
				})
			}
		}
		endTS, state := tl.Start, "live"
		if n := len(tl.Entries); n > 0 {
			endTS = tl.Entries[n-1].TS
		}
		if tl.Freed {
			endTS, state = tl.End, "freed"
		}
		out = append(out, chromeEvent{
			Name: name, Cat: "lifetime", Ph: "e", TS: us(endTS),
			Pid: 1, Tid: spanTid, ID: id, Args: map[string]any{"state": state},
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: out, DisplayTimeUnit: "ms"})
}

func hex(v uint32) string { return fmt.Sprintf("%#x", v) }
