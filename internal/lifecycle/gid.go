package lifecycle

import (
	"context"
	"runtime"
	"runtime/pprof"
	"sync"
)

// CurrentGID returns the runtime's id for the calling goroutine, parsed from
// the "goroutine N [...]" header of a single-frame stack dump. The id is the
// same one runtime tracebacks print, which makes ledger timelines directly
// cross-referenceable with panics and pprof goroutine profiles. Cost is one
// small runtime.Stack call; the ledger pays it only for tracked objects.
func CurrentGID() uint64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	const prefix = len("goroutine ")
	var id uint64
	for _, c := range buf[prefix:n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

// gidNames maps goroutine id -> role name for goroutines running under Do.
var gidNames sync.Map // uint64 -> string

// Do runs f on the calling goroutine with diagnosis attribution: pprof
// labels ("lfrc_workload" = name, plus any extra key/value pairs) are
// applied so CPU and goroutine profiles can be filtered by workload role,
// and the goroutine's id is registered under name so ledger timelines and
// Chrome trace export title its track. The registration is removed when f
// returns. extra must alternate key, value.
func Do(name string, f func(), extra ...string) {
	gid := CurrentGID()
	gidNames.Store(gid, name)
	defer gidNames.Delete(gid)
	kv := make([]string, 0, 2+len(extra))
	kv = append(kv, "lfrc_workload", name)
	kv = append(kv, extra...)
	pprof.Do(context.Background(), pprof.Labels(kv...), func(context.Context) { f() })
}

// GoroutineName reports the role name registered (via Do) for gid.
func GoroutineName(gid uint64) (string, bool) {
	v, ok := gidNames.Load(gid)
	if !ok {
		return "", false
	}
	return v.(string), true
}
