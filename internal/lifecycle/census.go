package lifecycle

import (
	"time"

	"lfrc/internal/mem"
)

// Census is a point-in-time population report over the heap, bucketed by
// reference count, plus age distribution of the ledger's tracked objects.
// It is the leak-triage companion to the auditor: the auditor names
// individual stuck objects, the census shows whether the population as a
// whole is skewing old and high-rc (a systemic leak) or healthy.
type Census struct {
	// Epoch is the reclamation epoch at capture time.
	Epoch uint64 `json:"epoch"`

	// TS is the capture time, nanoseconds since the Unix epoch.
	TS int64 `json:"ts"`

	// LiveObjects and FreedSlots count every slot ever carved.
	LiveObjects int64 `json:"live_objects"`
	FreedSlots  int64 `json:"freed_slots"`

	// ByRC buckets live objects by current reference count. Keys:
	// "1", "2", "3-4", "5-8", "9+", and "invalid" for live objects whose
	// rc cell holds the poison pattern or zero (corruption signatures).
	ByRC map[string]int64 `json:"by_rc"`

	// Tracked counts ledgered live objects; TrackedFreed those whose
	// incarnation has been freed but not yet retired by the auditor.
	Tracked      int64 `json:"tracked"`
	TrackedFreed int64 `json:"tracked_freed"`

	// ByAge buckets tracked live objects by time since allocation. Keys:
	// "lt_1ms", "1ms_10ms", "10ms_100ms", "100ms_1s", "ge_1s".
	ByAge map[string]int64 `json:"by_age,omitempty"`

	// OldestNS is the age of the oldest tracked live object.
	OldestNS int64 `json:"oldest_ns,omitempty"`
}

// rcBucket names the census bucket for a live object's rc cell value.
func rcBucket(rc uint64) string {
	switch {
	case rc == 0 || rc >= mem.Poison:
		return "invalid"
	case rc == 1:
		return "1"
	case rc == 2:
		return "2"
	case rc <= 4:
		return "3-4"
	case rc <= 8:
		return "5-8"
	default:
		return "9+"
	}
}

// ageBucket names the census bucket for a tracked object's age.
func ageBucket(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return "lt_1ms"
	case d < 10*time.Millisecond:
		return "1ms_10ms"
	case d < 100*time.Millisecond:
		return "10ms_100ms"
	case d < time.Second:
		return "100ms_1s"
	default:
		return "ge_1s"
	}
}

// TakeCensus walks the heap and snapshots the ledger (led may be nil). The
// walk reads live cells without stopping the world, so counts are a
// consistent-enough snapshot for triage, not an exact quiescent census.
func TakeCensus(h *mem.Heap, led *Ledger) Census {
	now := time.Now().UnixNano()
	c := Census{
		Epoch: h.Epoch(),
		TS:    now,
		ByRC:  make(map[string]int64),
	}
	h.Walk(func(r mem.Ref, freed bool) bool {
		if freed {
			c.FreedSlots++
			return true
		}
		c.LiveObjects++
		c.ByRC[rcBucket(h.Load(h.RCAddr(r)))]++
		return true
	})
	if led == nil {
		return c
	}
	c.ByAge = make(map[string]int64)
	for _, st := range led.Live() {
		if st.Timeline.Freed {
			c.TrackedFreed++
			continue
		}
		c.Tracked++
		age := now - st.Timeline.Start
		c.ByAge[ageBucket(time.Duration(age))]++
		if age > c.OldestNS {
			c.OldestNS = age
		}
	}
	return c
}
