package lifecycle

import (
	"strings"
	"sync"
	"testing"
	"time"

	"lfrc/internal/mem"
	"lfrc/internal/obs"
)

// ev builds a synthetic flight event for ledger tests.
func ev(kind obs.Kind, ref uint32, ts int64, ok bool) obs.Event {
	return obs.Event{TS: ts, Kind: kind, Ref: ref, OK: ok}
}

func TestLedgerTracksSampledObject(t *testing.T) {
	l := New(WithSampleEvery(1))
	base := time.Now().UnixNano()

	alloc := ev(obs.KindAlloc, 0x100, base, false)
	alloc.Old, alloc.New = 1, 0 // gen 1, epoch 0
	l.OnEvent(alloc)
	if !l.Wants(0x100) {
		t.Fatalf("Wants(0x100) = false after sampled alloc")
	}
	if l.Wants(0x200) {
		t.Fatalf("Wants(0x200) = true for untracked ref")
	}
	l.OnEvent(ev(obs.KindLoad, 0x100, base+10, true))
	l.OnEvent(ev(obs.KindDestroy, 0x100, base+20, true))
	l.OnEvent(ev(obs.KindFree, 0x100, base+30, true))

	tl, ok := l.Timeline(0x100)
	if !ok {
		t.Fatalf("Timeline(0x100) not found")
	}
	if len(tl.Entries) != 4 {
		t.Fatalf("got %d entries, want 4: %s", len(tl.Entries), tl)
	}
	if !tl.Freed || tl.End != base+30 {
		t.Fatalf("freed=%t end=%d, want freed at %d", tl.Freed, tl.End, base+30)
	}
	if tl.Gen != 1 {
		t.Fatalf("gen = %d, want 1", tl.Gen)
	}
	// Count-moving and allocator events are goroutine-attributed; the plain
	// successful read deliberately is not (attribution costs a runtime.Stack
	// walk and reads never move the count).
	for i, e := range tl.Entries {
		switch e.Kind {
		case obs.KindLoad, obs.KindNaiveLoad:
			if e.GID != 0 {
				t.Fatalf("entry %d: plain read paid for attribution: %s", i, e)
			}
		default:
			if e.GID == 0 {
				t.Fatalf("entry %d has no goroutine attribution: %s", i, e)
			}
		}
	}
	if got := l.SampledObjects(); got != 1 {
		t.Fatalf("SampledObjects = %d, want 1", got)
	}
}

func TestLedgerSamplingDisabled(t *testing.T) {
	l := New(WithSampleEvery(0))
	l.OnEvent(ev(obs.KindAlloc, 0x100, 1, false))
	if l.Wants(0x100) || l.TrackedCount() != 0 {
		t.Fatalf("disabled ledger tracked an object")
	}
	if l.SampleEvery() != 0 {
		t.Fatalf("SampleEvery = %d, want 0", l.SampleEvery())
	}
}

func TestLedgerSamplesOneInN(t *testing.T) {
	l := New(WithSampleEvery(4))
	for i := uint32(1); i <= 16; i++ {
		l.OnEvent(ev(obs.KindAlloc, i*8, int64(i), false))
	}
	if got := l.TrackedCount(); got != 4 {
		t.Fatalf("tracked %d of 16 allocs at 1-in-4, want 4", got)
	}
}

func TestLedgerCompactionKeepsBirthAndTail(t *testing.T) {
	l := New(WithSampleEvery(1), WithMaxEvents(16))
	base := int64(1000)
	l.OnEvent(ev(obs.KindAlloc, 0x100, base, false))
	for i := 1; i <= 100; i++ {
		l.OnEvent(ev(obs.KindLoad, 0x100, base+int64(i), true))
	}
	tl, _ := l.Timeline(0x100)
	if len(tl.Entries) > 16 {
		t.Fatalf("entries grew past the bound: %d", len(tl.Entries))
	}
	if tl.Dropped == 0 {
		t.Fatalf("no entries counted as dropped after 101 appends with bound 16")
	}
	if tl.Entries[0].Kind != obs.KindAlloc {
		t.Fatalf("compaction lost the birth entry: first is %s", tl.Entries[0].Kind)
	}
	if last := tl.Entries[len(tl.Entries)-1]; last.TS != base+100 {
		t.Fatalf("compaction lost the tail: last ts %d, want %d", last.TS, base+100)
	}
}

func TestLedgerRecycleRotatesIncarnation(t *testing.T) {
	l := New(WithSampleEvery(1))
	l.OnEvent(ev(obs.KindAlloc, 0x100, 10, false))
	l.OnEvent(ev(obs.KindFree, 0x100, 20, true))
	// Slot reuse: a second alloc on the same ref starts a new incarnation.
	realloc := ev(obs.KindAlloc, 0x100, 30, true)
	realloc.Old = 2
	l.OnEvent(realloc)

	done := l.Completed()
	if len(done) != 1 || !done[0].Freed || len(done[0].Entries) != 2 {
		t.Fatalf("expected 1 completed freed timeline with 2 entries, got %+v", done)
	}
	tl, ok := l.Timeline(0x100)
	if !ok || tl.Freed || tl.Gen != 2 {
		t.Fatalf("live incarnation wrong: ok=%t freed=%t gen=%d", ok, tl.Freed, tl.Gen)
	}
}

func TestLedgerMaxTracked(t *testing.T) {
	l := New(WithSampleEvery(1), WithMaxTracked(2))
	for i := uint32(1); i <= 5; i++ {
		l.OnEvent(ev(obs.KindAlloc, i*8, int64(i), false))
	}
	if got := l.TrackedCount(); got != 2 {
		t.Fatalf("TrackedCount = %d, want 2", got)
	}
	if got := l.SkippedFull(); got != 3 {
		t.Fatalf("SkippedFull = %d, want 3", got)
	}
}

func TestCurrentGIDDistinctAcrossGoroutines(t *testing.T) {
	g0 := CurrentGID()
	if g0 == 0 {
		t.Fatalf("CurrentGID returned 0")
	}
	var g1 uint64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		g1 = CurrentGID()
	}()
	wg.Wait()
	if g1 == 0 || g1 == g0 {
		t.Fatalf("goroutine ids not distinct: %d vs %d", g0, g1)
	}
}

func TestDoRegistersGoroutineName(t *testing.T) {
	var during string
	var gid uint64
	Do("worker-7", func() {
		gid = CurrentGID()
		during, _ = GoroutineName(gid)
	}, "lfrc_shard", "3")
	if during != "worker-7" {
		t.Fatalf("GoroutineName during Do = %q, want worker-7", during)
	}
	if _, ok := GoroutineName(gid); ok {
		t.Fatalf("registration leaked after Do returned")
	}
}

// fakeProbe is a canned Probe for auditor tests.
type fakeProbe struct {
	mu    sync.Mutex
	rc    map[uint32]uint64
	freed map[uint32]bool
	epoch uint64
}

func (p *fakeProbe) RCOf(ref uint32) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rc[ref]
}

func (p *fakeProbe) Freed(ref uint32) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.freed[ref]
}

func (p *fakeProbe) AdvanceEpoch() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.epoch++
	return p.epoch
}

func findViolation(vs []Violation, kind string) (Violation, bool) {
	for _, v := range vs {
		if v.Kind == kind {
			return v, true
		}
	}
	return Violation{}, false
}

func TestAuditorFlagsLeakCandidate(t *testing.T) {
	l := New(WithSampleEvery(1))
	rec := obs.New(obs.WithSampleEvery(1))
	probe := &fakeProbe{rc: map[uint32]uint64{0x100: 2}, freed: map[uint32]bool{}}
	a := NewAuditor(l, probe, rec, WithLeakEpochs(2))

	l.OnEvent(ev(obs.KindAlloc, 0x100, time.Now().UnixNano(), false))
	l.OnEvent(ev(obs.KindLoad, 0x100, time.Now().UnixNano(), true))

	var leak Violation
	for i := 0; i < 4; i++ {
		if v, ok := findViolation(a.RunPass(), KindLeakCandidate); ok {
			leak = v
			break
		}
	}
	if leak.Kind == "" {
		t.Fatalf("no leak candidate after 4 idle passes; violations: %v", a.Violations())
	}
	if leak.Ref != 0x100 {
		t.Fatalf("leak names ref %#x, want 0x100", leak.Ref)
	}
	if !strings.Contains(leak.Detail, "rc stuck at 2") {
		t.Fatalf("detail does not name the stuck rc: %q", leak.Detail)
	}
	if len(leak.Timeline.Entries) != 2 {
		t.Fatalf("violation carries %d timeline entries, want 2", len(leak.Timeline.Entries))
	}

	// Dedupe: further passes must not re-flag the same incarnation.
	for i := 0; i < 3; i++ {
		if _, ok := findViolation(a.RunPass(), KindLeakCandidate); ok {
			t.Fatalf("leak candidate re-flagged on a later pass")
		}
	}

	// The finding surfaced through the recorder's postmortem pipeline.
	found := false
	for _, pm := range rec.Postmortems() {
		if strings.Contains(pm.Reason, KindLeakCandidate) && pm.Ref == 0x100 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no postmortem captured for the leak candidate")
	}
}

func TestAuditorIgnoresActiveObjects(t *testing.T) {
	l := New(WithSampleEvery(1))
	probe := &fakeProbe{rc: map[uint32]uint64{0x100: 5}, freed: map[uint32]bool{}}
	a := NewAuditor(l, probe, nil, WithLeakEpochs(2))

	l.OnEvent(ev(obs.KindAlloc, 0x100, 1, false))
	for i := 0; i < 6; i++ {
		// A touch between every pass keeps the track non-stale.
		l.OnEvent(ev(obs.KindCopy, 0x100, int64(10+i), true))
		if vs := a.RunPass(); len(vs) != 0 {
			t.Fatalf("active object flagged: %v", vs)
		}
	}
}

func TestAuditorFlagsDoubleFree(t *testing.T) {
	l := New(WithSampleEvery(1))
	probe := &fakeProbe{rc: map[uint32]uint64{}, freed: map[uint32]bool{0x100: true}}
	a := NewAuditor(l, probe, nil)

	l.OnEvent(ev(obs.KindAlloc, 0x100, 10, false))
	l.OnEvent(ev(obs.KindFree, 0x100, 20, true))
	l.OnEvent(ev(obs.KindFree, 0x100, 30, false)) // rejected second free

	v, ok := findViolation(a.RunPass(), KindDoubleFree)
	if !ok {
		t.Fatalf("double free not flagged; violations: %v", a.Violations())
	}
	if v.Ref != 0x100 || !strings.Contains(v.Detail, "already freed") {
		t.Fatalf("unexpected double-free violation: %+v", v)
	}
}

func TestAuditorFlagsUseAfterFree(t *testing.T) {
	l := New(WithSampleEvery(1))
	probe := &fakeProbe{rc: map[uint32]uint64{}, freed: map[uint32]bool{0x100: true}}
	a := NewAuditor(l, probe, nil)

	l.OnEvent(ev(obs.KindAlloc, 0x100, 10, false))
	l.OnEvent(ev(obs.KindFree, 0x100, 20, true))
	l.OnEvent(ev(obs.KindDestroy, 0x100, 40, false)) // touch after death

	v, ok := findViolation(a.RunPass(), KindUseAfterFree)
	if !ok {
		t.Fatalf("use after free not flagged; violations: %v", a.Violations())
	}
	if v.Ref != 0x100 || !strings.Contains(v.Detail, "after its free") {
		t.Fatalf("unexpected use-after-free violation: %+v", v)
	}
}

func TestAuditorFlagsStuckZombie(t *testing.T) {
	l := New(WithSampleEvery(1))
	probe := &fakeProbe{rc: map[uint32]uint64{}, freed: map[uint32]bool{}}
	a := NewAuditor(l, probe, nil, WithLeakEpochs(2))

	l.OnEvent(ev(obs.KindAlloc, 0x100, 10, false))
	l.OnEvent(ev(obs.KindZombiePush, 0x100, 20, true))

	var got Violation
	for i := 0; i < 4; i++ {
		if v, ok := findViolation(a.RunPass(), KindStuckZombie); ok {
			got = v
			break
		}
	}
	if got.Kind == "" {
		t.Fatalf("stuck zombie not flagged; violations: %v", a.Violations())
	}
	if got.Ref != 0x100 {
		t.Fatalf("stuck zombie names ref %#x, want 0x100", got.Ref)
	}
}

func TestAuditorRetiresQuietFreedTracks(t *testing.T) {
	l := New(WithSampleEvery(1))
	probe := &fakeProbe{rc: map[uint32]uint64{}, freed: map[uint32]bool{0x100: true}}
	a := NewAuditor(l, probe, nil, WithLeakEpochs(2))

	l.OnEvent(ev(obs.KindAlloc, 0x100, 10, false))
	l.OnEvent(ev(obs.KindFree, 0x100, 20, true))
	for i := 0; i < 4; i++ {
		a.RunPass()
	}
	if l.TrackedCount() != 0 {
		t.Fatalf("quiet freed track not retired: %d still tracked", l.TrackedCount())
	}
	if len(l.Completed()) != 1 {
		t.Fatalf("retired track missing from completed ring")
	}
}

func TestAuditorStartStop(t *testing.T) {
	l := New(WithSampleEvery(1))
	probe := &fakeProbe{rc: map[uint32]uint64{}, freed: map[uint32]bool{}}
	a := NewAuditor(l, probe, nil, WithInterval(time.Millisecond))
	a.Start()
	a.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for a.Passes() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	a.Stop()
	a.Stop() // idempotent
	if a.Passes() == 0 {
		t.Fatalf("background auditor never ran a pass")
	}

	// Stop without Start must not hang.
	b := NewAuditor(l, probe, nil)
	b.Stop()
}

func TestTakeCensus(t *testing.T) {
	h := mem.NewHeap(mem.WithMaxWords(1 << 16))
	typ := h.MustRegisterType(mem.TypeDesc{Name: "t", NumFields: 2})
	refs := make([]mem.Ref, 0, 5)
	for i := 0; i < 5; i++ {
		refs = append(refs, h.MustAlloc(typ))
	}
	if err := h.Free(refs[0]); err != nil {
		t.Fatalf("Free: %v", err)
	}
	h.AdvanceEpoch()

	l := New(WithSampleEvery(1))
	l.OnEvent(ev(obs.KindAlloc, uint32(refs[1]), time.Now().UnixNano(), false))

	c := TakeCensus(h, l)
	if c.LiveObjects != 4 || c.FreedSlots != 1 {
		t.Fatalf("live=%d freed=%d, want 4/1", c.LiveObjects, c.FreedSlots)
	}
	if c.ByRC["1"] != 4 {
		t.Fatalf("ByRC[1] = %d, want 4 (all live objects born at rc 1); census %+v", c.ByRC["1"], c)
	}
	if c.Epoch != 1 {
		t.Fatalf("epoch = %d, want 1", c.Epoch)
	}
	if c.Tracked != 1 || len(c.ByAge) == 0 {
		t.Fatalf("tracked=%d byAge=%v, want 1 tracked with an age bucket", c.Tracked, c.ByAge)
	}
}

// BenchmarkCurrentGID prices goroutine attribution — the dominant per-event
// cost for tracked objects (it walks the runtime.Stack header).
func BenchmarkCurrentGID(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sinkGID = CurrentGID()
	}
}

var sinkGID uint64

// BenchmarkLedgerOnEventTracked prices one delivered event for a tracked
// object end to end (gid parse + per-track mutex + append).
func BenchmarkLedgerOnEventTracked(b *testing.B) {
	l := New(WithSampleEvery(1))
	l.OnEvent(obs.Event{TS: 1, Kind: obs.KindAlloc, Ref: 0x40, Old: 1})
	e := obs.Event{TS: 2, Kind: obs.KindLoad, Ref: 0x40, OK: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.OnEvent(e)
	}
}
