package lifecycle

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lfrc/internal/obs"
)

// Violation kinds reported by the Auditor. "Candidate" kinds are heuristic:
// the auditor runs online, without stopping the world, so a leak candidate
// may simply be a long-lived object. The definite kinds (use_after_free,
// double_free) are read directly off the ledger's event chain.
const (
	// KindLeakCandidate: a tracked live object whose reference count is
	// stuck above zero with no ledgered activity for N audit epochs — the
	// signature of a missing LFRCDestroy (the paper's no-leak guarantee
	// holds only if clients release the counts they own).
	KindLeakCandidate = "leak_candidate"

	// KindUseAfterFree: the ledger recorded rc-manipulating touches on an
	// object after its free event — the premature-free scenario LFRC
	// exists to prevent.
	KindUseAfterFree = "use_after_free"

	// KindDoubleFree: the heap rejected a second free of the same
	// incarnation (a free event with OK=false on the timeline).
	KindDoubleFree = "double_free"

	// KindStuckZombie: the object was pushed onto the deferred-
	// reclamation (zombie) list but has neither drained nor freed for N
	// audit epochs — reclamation has stalled.
	KindStuckZombie = "stuck_zombie"
)

// Violation is one flagged invariant breach, carrying the object's full
// ledger timeline for diagnosis.
type Violation struct {
	// Kind is one of the Kind* violation constants.
	Kind string `json:"kind"`

	// Ref is the offending object.
	Ref uint32 `json:"ref"`

	// Epoch is the audit epoch the violation was flagged in.
	Epoch uint64 `json:"epoch"`

	// Detail is a one-line human-readable diagnosis.
	Detail string `json:"detail"`

	// Timeline is the object's ledger timeline at flag time.
	Timeline Timeline `json:"timeline"`
}

// String renders the violation with its timeline, one entry per line.
func (v Violation) String() string {
	return fmt.Sprintf("lifecycle %s ref=%#x epoch=%d: %s\n%s",
		v.Kind, v.Ref, v.Epoch, v.Detail, v.Timeline.String())
}

// Probe is the view of the system the auditor cross-checks the ledger
// against: the live reference count and freed bit of an object, and the
// reclamation epoch clock it ticks once per pass.
type Probe interface {
	// RCOf returns the current reference count of the object at ref.
	RCOf(ref uint32) uint64

	// Freed reports whether the slot at ref has its freed bit set.
	Freed(ref uint32) bool

	// AdvanceEpoch ticks the reclamation epoch and returns the new value.
	AdvanceEpoch() uint64
}

// AuditOption configures an Auditor.
type AuditOption func(*auditConfig)

type auditConfig struct {
	interval      time.Duration
	leakEpochs    int
	maxViolations int
}

// WithInterval sets the background pass interval (default 100ms).
func WithInterval(d time.Duration) AuditOption {
	return func(c *auditConfig) {
		if d > 0 {
			c.interval = d
		}
	}
}

// WithLeakEpochs sets how many consecutive idle audit epochs a live tracked
// object must sit at rc > 0 before it is flagged as a leak candidate (and a
// zombied object before it is flagged stuck). Default 3.
func WithLeakEpochs(n int) AuditOption {
	return func(c *auditConfig) {
		if n > 0 {
			c.leakEpochs = n
		}
	}
}

// WithMaxViolations bounds retained violations (default 256; newest kept).
func WithMaxViolations(n int) AuditOption {
	return func(c *auditConfig) {
		if n > 0 {
			c.maxViolations = n
		}
	}
}

// Auditor is the online invariant auditor: it periodically sweeps the
// ledger's tracked objects, cross-checks them against the heap via the
// Probe, and flags violations of the paper's guarantees. Each new violation
// also captures a flight-recorder postmortem, so auditor findings surface
// through the existing Postmortems() pipeline.
type Auditor struct {
	led        *Ledger
	probe      Probe
	rec        *obs.Recorder
	interval   time.Duration
	leakEpochs int
	maxViol    int

	mu        sync.Mutex
	seen      map[uint32]*auditSeen
	flagged   map[flagKey]bool
	viols     []Violation
	violN     int // ring head when viols is full
	violTotal uint64
	passes    uint64

	started  atomic.Bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// auditSeen is the auditor's per-track memory across passes.
type auditSeen struct {
	start int64  // incarnation start TS (detects slot reuse)
	count uint64 // ledger entry count at last pass
	stale int    // consecutive passes with no new entries
}

// flagKey dedupes violations: one flag per (object incarnation, kind).
type flagKey struct {
	ref   uint32
	start int64
	kind  string
}

// NewAuditor creates an auditor over led, cross-checking via probe. rec may
// be nil (no postmortem capture). Call Start for background operation or
// RunPass for explicit single passes (tests, CLI).
func NewAuditor(led *Ledger, probe Probe, rec *obs.Recorder, opts ...AuditOption) *Auditor {
	cfg := auditConfig{
		interval:      100 * time.Millisecond,
		leakEpochs:    3,
		maxViolations: 256,
	}
	for _, o := range opts {
		o(&cfg)
	}
	return &Auditor{
		led:        led,
		probe:      probe,
		rec:        rec,
		interval:   cfg.interval,
		leakEpochs: cfg.leakEpochs,
		maxViol:    cfg.maxViolations,
		seen:       make(map[uint32]*auditSeen),
		flagged:    make(map[flagKey]bool),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
}

// Start launches the background pass loop. It is idempotent.
func (a *Auditor) Start() {
	if !a.started.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer close(a.done)
		Do("lfrc_auditor", func() {
			tick := time.NewTicker(a.interval)
			defer tick.Stop()
			for {
				select {
				case <-a.stop:
					return
				case <-tick.C:
					a.RunPass()
				}
			}
		})
	}()
}

// Stop halts the background loop and waits for it to exit. Safe to call
// multiple times, and before Start (in which case it only marks the auditor
// stopped).
func (a *Auditor) Stop() {
	a.stopOnce.Do(func() { close(a.stop) })
	if a.started.Load() {
		<-a.done
	}
}

// Passes reports how many audit passes have run.
func (a *Auditor) Passes() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.passes
}

// ViolationCount reports how many violations have ever been flagged,
// including any the retention ring has since overwritten.
func (a *Auditor) ViolationCount() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.violTotal
}

// Violations returns the retained violations, oldest first.
func (a *Auditor) Violations() []Violation {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Violation, 0, len(a.viols))
	out = append(out, a.viols[a.violN:]...)
	out = append(out, a.viols[:a.violN]...)
	return out
}

// RunPass executes one audit pass: it ticks the reclamation epoch, sweeps
// every tracked object, and returns the violations newly flagged this pass.
// Safe to call concurrently with a running background loop (passes
// serialize on the auditor's mutex).
func (a *Auditor) RunPass() []Violation {
	epoch := a.probe.AdvanceEpoch()
	states := a.led.Live()

	a.mu.Lock()
	a.passes++
	var fresh []Violation
	live := make(map[uint32]bool, len(states))
	var retire []uint32
	for _, st := range states {
		tl := st.Timeline
		live[tl.Ref] = true
		sn := a.seen[tl.Ref]
		if sn == nil || sn.start != tl.Start {
			sn = &auditSeen{start: tl.Start}
			a.seen[tl.Ref] = sn
		}
		if st.Count == sn.count {
			sn.stale++
		} else {
			sn.count = st.Count
			sn.stale = 0
		}
		if tl.Freed {
			fresh = a.checkFreedLocked(tl, epoch, fresh)
			// A freed track that has gone quiet with no violations is
			// done telling its story: release its tracking slot.
			if sn.stale >= a.leakEpochs {
				retire = append(retire, tl.Ref)
			}
			continue
		}
		fresh = a.checkLiveLocked(tl, sn, epoch, fresh)
	}
	// Forget per-track state for refs no longer tracked.
	for ref := range a.seen {
		if !live[ref] {
			delete(a.seen, ref)
		}
	}
	a.mu.Unlock()

	for _, ref := range retire {
		a.led.Retire(ref)
	}
	for _, v := range fresh {
		if a.rec != nil {
			a.rec.CapturePostmortem(
				fmt.Sprintf("lifecycle %s: %s", v.Kind, v.Detail), v.Ref)
		}
	}
	return fresh
}

// flagLocked records a violation once per (incarnation, kind).
func (a *Auditor) flagLocked(tl Timeline, epoch uint64, kind, detail string, out []Violation) []Violation {
	k := flagKey{ref: tl.Ref, start: tl.Start, kind: kind}
	if a.flagged[k] {
		return out
	}
	a.flagged[k] = true
	a.violTotal++
	v := Violation{Kind: kind, Ref: tl.Ref, Epoch: epoch, Detail: detail, Timeline: tl}
	if len(a.viols) < a.maxViol {
		a.viols = append(a.viols, v)
	} else {
		a.viols[a.violN] = v
		a.violN = (a.violN + 1) % a.maxViol
	}
	return append(out, v)
}

// touchKind reports whether k manipulates an object's reference count or
// payload — the kinds that must never appear after the object's free event.
func touchKind(k obs.Kind) bool {
	switch k {
	case obs.KindLoad, obs.KindNaiveLoad, obs.KindStore, obs.KindCopy,
		obs.KindCAS, obs.KindDCAS, obs.KindDestroy:
		return true
	}
	return false
}

// checkFreedLocked examines a freed incarnation's chain for definite
// violations: rc touches after the free, and rejected double frees.
func (a *Auditor) checkFreedLocked(tl Timeline, epoch uint64, out []Violation) []Violation {
	freeTS := tl.End
	for _, e := range tl.Entries {
		if e.Kind == obs.KindFree && !e.OK {
			out = a.flagLocked(tl, epoch, KindDoubleFree, fmt.Sprintf(
				"free of ref=%#x gen=%d rejected: slot already freed (gid=%d)",
				tl.Ref, tl.Gen, e.GID), out)
		}
		if freeTS != 0 && e.TS > freeTS && touchKind(e.Kind) {
			out = a.flagLocked(tl, epoch, KindUseAfterFree, fmt.Sprintf(
				"%s on ref=%#x %.3fms after its free (gid=%d) — premature free or stale pointer",
				e.Kind, tl.Ref, float64(e.TS-freeTS)/1e6, e.GID), out)
		}
	}
	return out
}

// checkLiveLocked examines a live incarnation for stall-pattern candidates:
// stuck zombies and leak candidates. Both require the track to have been
// idle for leakEpochs consecutive passes, so actively used objects are never
// flagged no matter how long they live.
func (a *Auditor) checkLiveLocked(tl Timeline, sn *auditSeen, epoch uint64, out []Violation) []Violation {
	if sn.stale < a.leakEpochs {
		return out
	}
	// Zombied but never drained or freed?
	zombied := false
	for _, e := range tl.Entries {
		switch e.Kind {
		case obs.KindZombiePush:
			zombied = true
		case obs.KindZombieDrain, obs.KindFree:
			zombied = false
		}
	}
	if zombied {
		return a.flagLocked(tl, epoch, KindStuckZombie, fmt.Sprintf(
			"ref=%#x pushed to the zombie list but not drained for %d audit epochs",
			tl.Ref, sn.stale), out)
	}
	if a.probe.Freed(tl.Ref) {
		// Freed under us between the ledger snapshot and this check;
		// the free event will show on the next pass.
		return out
	}
	rc := a.probe.RCOf(tl.Ref)
	if rc == 0 {
		return out
	}
	age := time.Duration(0)
	if n := len(tl.Entries); n > 0 {
		age = time.Duration(tl.Entries[n-1].TS - tl.Start)
	}
	return a.flagLocked(tl, epoch, KindLeakCandidate, fmt.Sprintf(
		"ref=%#x rc stuck at %d with no activity for %d audit epochs (active span %v, %d ledgered events) — missing LFRCDestroy?",
		tl.Ref, rc, sn.stale, age, len(tl.Entries)), out)
}
