package lifecycle

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"lfrc/internal/obs"
)

// chromeFixture builds a ledger and trace exercising every exported phase:
// metadata, flight instants, and a full async object span.
func chromeFixture() (obs.Trace, *Ledger) {
	l := New(WithSampleEvery(1))
	base := int64(1_000_000)
	l.OnEvent(ev(obs.KindAlloc, 0x100, base, false))
	load := ev(obs.KindLoad, 0x100, base+1000, true)
	load.Old, load.New = 1, 2
	l.OnEvent(load)
	l.OnEvent(ev(obs.KindDestroy, 0x100, base+2000, false))
	l.OnEvent(ev(obs.KindDestroy, 0x100, base+3000, true))
	l.OnEvent(ev(obs.KindFree, 0x100, base+4000, true))
	// A second, still-live object.
	l.OnEvent(ev(obs.KindAlloc, 0x200, base+5000, false))

	tr := obs.Trace{Events: []obs.Event{
		{Seq: 1, TS: base, Kind: obs.KindAlloc, Ref: 0x100},
		{Seq: 2, TS: base + 1000, Kind: obs.KindLoad, Ref: 0x100, Addr: 0x80, OK: true},
	}}
	return tr, l
}

// TestChromeTraceSchemaGolden pins the export's JSON schema: the top-level
// key set, the union of event keys, and the set of phase letters. Perfetto
// and chrome://tracing key off exactly these; a drift here is a breaking
// change to every saved trace and must be deliberate.
func TestChromeTraceSchemaGolden(t *testing.T) {
	tr, l := chromeFixture()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr, l); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}

	var top map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &top); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var events []map[string]json.RawMessage
	if err := json.Unmarshal(top["traceEvents"], &events); err != nil {
		t.Fatalf("traceEvents is not an array of objects: %v", err)
	}

	topKeys := sortedKeys(top)
	eventKeys := map[string]bool{}
	phases := map[string]bool{}
	for _, e := range events {
		for k := range e {
			eventKeys[k] = true
		}
		var ph string
		if err := json.Unmarshal(e["ph"], &ph); err != nil {
			t.Fatalf("event without a string ph: %v", err)
		}
		phases[ph] = true
	}

	got := fmt.Sprintf("event_keys: %s\nphases: %s\ntop_keys: %s\n",
		strings.Join(sortedSet(eventKeys), ","),
		strings.Join(sortedSet(phases), ","),
		strings.Join(topKeys, ","))

	goldenPath := filepath.Join("testdata", "chrome_schema.golden")
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if got != string(want) {
		t.Fatalf("trace schema drifted from %s:\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
	}
}

func sortedKeys(m map[string]json.RawMessage) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedSet(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func TestChromeTraceSpansAndInstants(t *testing.T) {
	tr, l := chromeFixture()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr, l); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var out chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if out.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", out.DisplayTimeUnit)
	}

	counts := map[string]int{}
	minTS := 0.0
	for _, e := range out.TraceEvents {
		counts[e.Ph]++
		if e.TS < minTS {
			minTS = e.TS
		}
		if e.Ph == "b" || e.Ph == "n" || e.Ph == "e" {
			if e.ID == "" {
				t.Fatalf("async event without id: %+v", e)
			}
		}
		if e.Ph == "i" && e.Scope == "" {
			t.Fatalf("instant without scope: %+v", e)
		}
	}
	// Two sampled objects -> two async spans.
	if counts["b"] != 2 || counts["e"] != 2 {
		t.Fatalf("span begin/end counts = %d/%d, want 2/2", counts["b"], counts["e"])
	}
	// 6 ledger entries -> 6 nested async instants.
	if counts["n"] != 6 {
		t.Fatalf("nested instant count = %d, want 6", counts["n"])
	}
	// 2 flight-ring instants + 5 per-goroutine op instants (the plain
	// successful read is unattributed — GID 0 — and echoes onto no
	// goroutine track).
	if counts["i"] != 7 {
		t.Fatalf("instant count = %d, want 7", counts["i"])
	}
	if minTS < 0 {
		t.Fatalf("timestamps not normalized: min %f", minTS)
	}
}
