// Package lifecycle turns the flight recorder's aggregate event stream into
// per-object diagnosis: which object leaked, which LFRCCopy/LFRCDestroy pair
// went missing, which freed slot was touched after death.
//
// The paper's two correctness guarantees are per-object properties:
//
//  1. while pointers to an object exist its reference count stays positive
//     (no premature free), and
//  2. once no pointers remain the count reaches zero and the object is
//     reclaimed (no leak, for cycle-free garbage).
//
// Aggregate counters (PR 2's metrics) can show *that* these properties are
// being strained — zombies backing up, poisoned rc updates ticking — but not
// *which* object or *which* operation chain is responsible. This package
// adds three layers on top of the obs recorder:
//
//   - Ledger: a sampled per-ref lifecycle ledger. One in N allocations is
//     selected at birth; every subsequent event touching a selected object —
//     including operations the recorder's own 1-in-N op sampling would have
//     skipped — is appended to that object's timeline with goroutine
//     attribution (alloc → Load/Copy/Store/CAS/DCAS touches → rc
//     transitions → zombie push/drain → free → reuse).
//   - Auditor (auditor.go): a background goroutine cross-checking ledgered
//     objects against the paper's guarantees and flagging candidates.
//   - Chrome trace export (chrome.go): the ledger and recorder rendered as
//     trace_event JSON, one track per goroutine and one async span per
//     sampled object lifetime, loadable in Perfetto.
//
// The ledger is an obs.Sink: the recorder probes the ledger's tracked-ref
// set (obs.RefSet — one atomic load when nothing is tracked, a short
// lock-free probe otherwise) on the operation hot path and delivers OnEvent
// only for claimed refs, so cost scales with the object sampling rate, not
// the operation rate. A system without a ledger pays one nil check.
package lifecycle

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lfrc/internal/obs"
	"lfrc/internal/stripe"
)

// DefaultSampleEvery is the default object sampling interval: one in every
// 1024 allocations is ledgered.
const DefaultSampleEvery = 1024

// Defaults for the ledger's retention bounds.
const (
	defaultMaxTracked = 4096
	defaultMaxEvents  = 512
	defaultMaxDone    = 256
)

// Option configures a Ledger.
type Option func(*config)

type config struct {
	every      uint64
	maxTracked int
	maxEvents  int
	maxDone    int
}

// WithSampleEvery ledgers every nth allocation: 1 tracks every object, 0
// installs the ledger with object sampling disabled (the hot paths pay only
// the sink check — the "disabled" mode of experiment O2). The default is
// DefaultSampleEvery.
func WithSampleEvery(n int) Option {
	return func(c *config) {
		if n < 0 {
			n = 0
		}
		c.every = uint64(n)
	}
}

// WithMaxTracked bounds the number of concurrently tracked objects; once
// full, new allocations are not ledgered until a tracked slot retires.
func WithMaxTracked(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.maxTracked = n
		}
	}
}

// WithMaxEvents bounds the entries retained per timeline. When a timeline
// overflows, the middle half is dropped (the head — birth — and the most
// recent tail both survive) and the drop is counted.
func WithMaxEvents(n int) Option {
	return func(c *config) {
		if n >= 8 {
			c.maxEvents = n
		}
	}
}

// WithMaxDone bounds retained completed timelines (objects whose slot was
// reused, or tracks retired by the auditor).
func WithMaxDone(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.maxDone = n
		}
	}
}

// Entry is one ledgered event on an object's timeline.
type Entry struct {
	// TS is the event time, nanoseconds since the Unix epoch.
	TS int64 `json:"ts"`

	// Kind classifies the event (obs kind names).
	Kind obs.Kind `json:"kind"`

	// OK is the operation outcome (CAS/DCAS success; for a free event,
	// false marks a rejected double free).
	OK bool `json:"ok"`

	// Retries counts failed attempts before the outcome.
	Retries uint32 `json:"retries,omitempty"`

	// Addr is the shared cell involved, 0 if none.
	Addr uint32 `json:"addr,omitempty"`

	// Old and New carry the event's transition: before/after reference
	// count for rc updates, generation/epoch stamps for alloc and free.
	Old uint32 `json:"old,omitempty"`
	New uint32 `json:"new,omitempty"`

	// GID is the runtime id of the goroutine that performed the
	// operation (see CurrentGID); names registered with Do attach in
	// trace export.
	GID uint64 `json:"gid"`
}

// String renders one entry for violation reports.
func (e Entry) String() string {
	s := fmt.Sprintf("%s gid=%d ok=%t", e.Kind, e.GID, e.OK)
	if e.Addr != 0 {
		s += fmt.Sprintf(" addr=%#x", e.Addr)
	}
	if e.Old != 0 || e.New != 0 {
		s += fmt.Sprintf(" %d->%d", e.Old, e.New)
	}
	if e.Retries != 0 {
		s += fmt.Sprintf(" retries=%d", e.Retries)
	}
	return s
}

// Timeline is one sampled object's event chain, from allocation until its
// slot is reused (or the present, for live objects).
type Timeline struct {
	// Ref is the object's word address.
	Ref uint32 `json:"ref"`

	// Gen is the slot generation of this incarnation (1 = first carve).
	Gen uint32 `json:"gen"`

	// Start is the allocation time, End the free time (0 while live).
	Start int64 `json:"start"`
	End   int64 `json:"end,omitempty"`

	// Freed reports whether this incarnation has been freed.
	Freed bool `json:"freed"`

	// Entries is the retained event chain, oldest first. When the
	// per-object bound was hit, Dropped counts entries compacted away
	// from the middle (birth and the latest tail are always kept).
	Entries []Entry `json:"entries"`
	Dropped uint64  `json:"dropped,omitempty"`
}

// String renders the timeline, one entry per line with offsets from birth.
func (tl Timeline) String() string {
	state := "live"
	if tl.Freed {
		state = "freed"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "timeline ref=%#x gen=%d %s: %d entries", tl.Ref, tl.Gen, state, len(tl.Entries))
	if tl.Dropped > 0 {
		fmt.Fprintf(&b, " (+%d dropped)", tl.Dropped)
	}
	for _, e := range tl.Entries {
		fmt.Fprintf(&b, "\n  +%.3fms %s", float64(e.TS-tl.Start)/1e6, e.String())
	}
	return b.String()
}

// track is one live tracked object. Entries append under the per-object
// mutex; contention is limited to touches of that single sampled object.
type track struct {
	mu    sync.Mutex
	tl    Timeline
	count uint64 // entries ever appended, including compacted ones

	// lastAttr is the TS of the last rate-limited goroutine attribution
	// (see attrClass); atomic so the decision happens before the mutex.
	lastAttr atomic.Int64
}

// appendLocked appends one entry, compacting when the bound is hit: the
// first quarter (birth and early pointer establishment) and the last quarter
// (most recent activity) survive; the middle is dropped and counted.
func (t *track) appendLocked(e Entry, maxEvents int) {
	if len(t.tl.Entries) >= maxEvents {
		q := maxEvents / 4
		kept := make([]Entry, 0, maxEvents/2+1)
		kept = append(kept, t.tl.Entries[:q]...)
		dropped := len(t.tl.Entries) - q - q
		kept = append(kept, t.tl.Entries[len(t.tl.Entries)-q:]...)
		t.tl.Dropped += uint64(dropped)
		t.tl.Entries = kept
	}
	t.tl.Entries = append(t.tl.Entries, e)
	t.count++
}

func (t *track) snapshotLocked() Timeline {
	tl := t.tl
	tl.Entries = append([]Entry(nil), t.tl.Entries...)
	return tl
}

// TrackState is one live track as seen by the auditor: the timeline plus the
// total entry count (which advances even when retention compacts entries, so
// staleness detection cannot be fooled by the bound).
type TrackState struct {
	Timeline Timeline
	Count    uint64
}

// allocStripe is one padded allocation-sampling counter: every allocation
// ticks a counter, and a single shared one would be a contended cache line
// at allocation rate (experiment O2). Each stripe independently selects
// 1-in-every, so the overall selection rate is unchanged in expectation.
type allocStripe struct {
	n atomic.Uint64
	_ [56]byte
}

// Ledger is the sampled per-ref lifecycle ledger. Create with New; install
// on a recorder with obs.Recorder.SetSink. All methods are safe for
// concurrent use.
type Ledger struct {
	every      uint64
	maxTracked int
	maxEvents  int
	maxDone    int

	allocN      []allocStripe // striped allocation counters for 1-in-N selection
	tracked     atomic.Int64  // currently tracked objects
	sampledObjs atomic.Uint64 // objects ever selected
	skipped     atomic.Uint64 // selections skipped because the table was full

	tracks sync.Map    // uint32 ref -> *track
	refs   *obs.RefSet // hot-path membership gate, mirrors tracks' keys

	doneMu   sync.Mutex
	done     []Timeline // ring of completed timelines
	doneHead int
}

// New creates a Ledger.
func New(opts ...Option) *Ledger {
	cfg := config{
		every:      DefaultSampleEvery,
		maxTracked: defaultMaxTracked,
		maxEvents:  defaultMaxEvents,
		maxDone:    defaultMaxDone,
	}
	for _, o := range opts {
		o(&cfg)
	}
	return &Ledger{
		every:      cfg.every,
		maxTracked: cfg.maxTracked,
		maxEvents:  cfg.maxEvents,
		maxDone:    cfg.maxDone,
		refs:       obs.NewRefSet(cfg.maxTracked),
		allocN:     make([]allocStripe, stripe.Clamp(0, runtime.GOMAXPROCS(0))),
	}
}

// SampleEvery reports the object sampling interval (0 = disabled).
func (l *Ledger) SampleEvery() int {
	if l == nil {
		return 0
	}
	return int(l.every)
}

// TrackedCount reports how many objects are currently tracked.
func (l *Ledger) TrackedCount() int64 {
	if l == nil {
		return 0
	}
	return l.tracked.Load()
}

// SampledObjects reports how many objects have ever been selected.
func (l *Ledger) SampledObjects() uint64 {
	if l == nil {
		return 0
	}
	return l.sampledObjs.Load()
}

// SkippedFull reports selections skipped because the track table was full.
func (l *Ledger) SkippedFull() uint64 {
	if l == nil {
		return 0
	}
	return l.skipped.Load()
}

// Tracked implements obs.Sink: it exposes the set of currently tracked refs
// as the recorder's hot-path gate.
func (l *Ledger) Tracked() *obs.RefSet {
	if l == nil {
		return nil
	}
	return l.refs
}

// Wants reports whether ref is currently tracked — the same probe the
// recorder performs through Tracked().
func (l *Ledger) Wants(ref uint32) bool {
	if l == nil {
		return false
	}
	return l.refs.Has(ref)
}

// OnEvent implements obs.Sink. Alloc events arrive for every object (the
// recorder always offers them) and carry the track/ignore decision; all
// other events arrive only for tracked refs. Events whose operation was not
// op-sampled carry TS 0 and are stamped here, so the timestamp is only paid
// for events the ledger keeps.
func (l *Ledger) OnEvent(e obs.Event) {
	if e.Kind == obs.KindAlloc {
		if l.refs.Has(e.Ref) {
			if v, ok := l.tracks.Load(e.Ref); ok {
				// The slot was reused: this tracked incarnation is over.
				l.retire(e.Ref, v.(*track))
			}
		}
		if l.every == 0 || l.allocN[stripe.Hint(len(l.allocN))].n.Add(1)%l.every != 0 {
			return
		}
		if l.tracked.Load() >= int64(l.maxTracked) {
			l.skipped.Add(1)
			return
		}
		if e.TS == 0 {
			e.TS = time.Now().UnixNano()
		}
		t := &track{tl: Timeline{Ref: e.Ref, Gen: e.Old, Start: e.TS}}
		birth := entryOf(e)
		birth.GID = CurrentGID() // births are always attributed
		t.appendLocked(birth, l.maxEvents)
		l.tracks.Store(e.Ref, t)
		l.refs.Add(e.Ref)
		l.tracked.Add(1)
		l.sampledObjs.Add(1)
		return
	}
	v, ok := l.tracks.Load(e.Ref)
	if !ok {
		return
	}
	t := v.(*track)
	en := entryOf(e)
	switch attrClass(e) {
	case attrAlways:
		en.GID = CurrentGID()
	case attrRated:
		if last := t.lastAttr.Load(); en.TS-last >= attrInterval &&
			t.lastAttr.CompareAndSwap(last, en.TS) {
			en.GID = CurrentGID()
		}
	}
	t.mu.Lock()
	t.appendLocked(en, l.maxEvents)
	if e.Kind == obs.KindFree && e.OK {
		t.tl.Freed = true
		t.tl.End = en.TS
	}
	t.mu.Unlock()
}

// entryOf converts a flight event into a ledger entry with no goroutine
// attribution; OnEvent attaches one per attrClass (it runs on the goroutine
// that performed the operation).
func entryOf(e obs.Event) Entry {
	ts := e.TS
	if ts == 0 {
		ts = time.Now().UnixNano()
	}
	return Entry{
		TS:      ts,
		Kind:    e.Kind,
		OK:      e.OK,
		Retries: e.Retries,
		Addr:    e.Addr,
		Old:     e.Old,
		New:     e.New,
	}
}

// Goroutine-attribution classes. CurrentGID walks the runtime.Stack header
// (microseconds), so for a *hot* sampled object unconditional attribution
// would dominate the tap's cost (experiment O2). The economy:
//
//	attrAlways  rare or diagnostic events — allocator traffic, zombie
//	            parking, and any failed or retried operation — always name
//	            their goroutine.
//	attrRated   successful count transitions (copy/destroy/store/CAS/DCAS)
//	            are attributed at most once per attrInterval per track: the
//	            transition chain stays complete, only the gid column thins
//	            on hot objects.
//	attrNever   plain successful reads — the bulk of a hot object's touch
//	            volume, and the one kind that never moves the count — stay
//	            unattributed (GID 0).
const (
	attrNever = iota
	attrRated
	attrAlways
)

// attrInterval is the minimum spacing of rate-limited attributions per track.
const attrInterval = int64(100 * time.Microsecond)

func attrClass(e obs.Event) int {
	if !e.OK || e.Retries != 0 {
		return attrAlways
	}
	switch e.Kind {
	case obs.KindLoad, obs.KindNaiveLoad:
		return attrNever
	case obs.KindCopy, obs.KindDestroy, obs.KindStore, obs.KindCAS, obs.KindDCAS:
		return attrRated
	}
	return attrAlways
}

// retire finalizes a live track into the completed ring.
func (l *Ledger) retire(ref uint32, t *track) {
	if _, loaded := l.tracks.LoadAndDelete(ref); !loaded {
		return
	}
	l.refs.Remove(ref)
	l.tracked.Add(-1)
	t.mu.Lock()
	tl := t.snapshotLocked()
	t.mu.Unlock()
	l.doneMu.Lock()
	if len(l.done) < l.maxDone {
		l.done = append(l.done, tl)
	} else {
		l.done[l.doneHead] = tl
		l.doneHead = (l.doneHead + 1) % l.maxDone
	}
	l.doneMu.Unlock()
}

// Retire removes ref from the live table and moves its timeline to the
// completed ring; the auditor uses it to release capacity held by freed
// tracks it has finished examining. It reports whether ref was tracked.
func (l *Ledger) Retire(ref uint32) bool {
	v, ok := l.tracks.Load(ref)
	if !ok {
		return false
	}
	l.retire(ref, v.(*track))
	return true
}

// Timeline returns the most recent timeline for ref: the live track if one
// exists, else the newest completed incarnation.
func (l *Ledger) Timeline(ref uint32) (Timeline, bool) {
	if l == nil {
		return Timeline{}, false
	}
	if v, ok := l.tracks.Load(ref); ok {
		t := v.(*track)
		t.mu.Lock()
		tl := t.snapshotLocked()
		t.mu.Unlock()
		return tl, true
	}
	l.doneMu.Lock()
	defer l.doneMu.Unlock()
	for i := len(l.done) - 1; i >= 0; i-- {
		idx := (l.doneHead + i) % len(l.done)
		if l.done[idx].Ref == ref {
			return l.done[idx], true
		}
	}
	return Timeline{}, false
}

// Live snapshots every live track, ordered by ref.
func (l *Ledger) Live() []TrackState {
	if l == nil {
		return nil
	}
	var out []TrackState
	l.tracks.Range(func(_, v any) bool {
		t := v.(*track)
		t.mu.Lock()
		out = append(out, TrackState{Timeline: t.snapshotLocked(), Count: t.count})
		t.mu.Unlock()
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Timeline.Ref < out[j].Timeline.Ref })
	return out
}

// Completed returns the retained completed timelines, oldest first.
func (l *Ledger) Completed() []Timeline {
	if l == nil {
		return nil
	}
	l.doneMu.Lock()
	defer l.doneMu.Unlock()
	out := make([]Timeline, 0, len(l.done))
	out = append(out, l.done[l.doneHead:]...)
	out = append(out, l.done[:l.doneHead]...)
	return out
}
