// Package gcdep implements the GC-dependent Snark deque — the left column
// of the LFRC paper's Figure 1, i.e. the algorithm as it exists *before* the
// LFRC methodology is applied.
//
// Nodes are ordinary Go objects reclaimed by Go's garbage collector, which
// supplies exactly what the paper says GC supplies: a free solution to the
// ABA problem (a node's address cannot be recycled while any thread still
// holds it) and no need for reference counts, destructors, or careful local
// pointer management. Sentinels use the original self-pointer convention —
// cycles in garbage are harmless under tracing GC.
//
// DCAS is simulated the same way the LockingEngine simulates it for the
// simulated heap: every pointer location carries a stripe id, and a DCAS
// locks its two stripes in order. This keeps the baseline's DCAS cost
// profile comparable to the LFRC deque's (experiment E5 measures the *rc
// maintenance* overhead, not an artifact of two different DCAS simulations).
package gcdep

import (
	"sync"
	"sync/atomic"
)

// Value is the payload type carried by the deque.
type Value = uint64

const stripes = 256

// loc is a DCAS-addressable pointer location: the pointer plus its stripe.
type loc struct {
	p  *atomic.Pointer[SNode]
	id uint32
}

// SNode is a deque node (paper Figure 1, lines 1..2, plus stripe ids).
type SNode struct {
	l, r atomic.Pointer[SNode]
	v    atomic.Uint64

	lID, rID uint32
}

// Deque is the GC-dependent Snark deque (paper Figure 1, lines 3..13).
type Deque struct {
	dummy    *SNode
	leftHat  atomic.Pointer[SNode]
	rightHat atomic.Pointer[SNode]

	locks  [stripes]sync.Mutex
	nextID atomic.Uint32

	claiming   bool
	beforeDCAS func()
}

// Option configures a Deque.
type Option func(*Deque)

// WithValueClaiming makes pops claim a node's value with a CAS before
// returning it (same hardening as the LFRC variant; see package snark).
func WithValueClaiming() Option {
	return func(d *Deque) { d.claiming = true }
}

// WithBeforeDCAS installs a hook invoked before every hat DCAS attempt
// (stall injection for experiment E4).
func WithBeforeDCAS(hook func()) Option {
	return func(d *Deque) { d.beforeDCAS = hook }
}

// claimedMark replaces a claimed value; application payloads are unrestricted
// except for this single reserved bit pattern when claiming is enabled.
const claimedMark = ^uint64(0)

// New builds an empty deque (paper lines 4..9): Dummy's pointers are
// self-pointers and both hats point at Dummy.
func New(opts ...Option) *Deque {
	d := &Deque{}
	for _, o := range opts {
		o(d)
	}
	dummy := d.newNode()
	dummy.l.Store(dummy)
	dummy.r.Store(dummy)
	d.dummy = dummy
	d.leftHat.Store(dummy)
	d.rightHat.Store(dummy)
	return d
}

// newNode allocates a node with fresh stripe ids.
func (d *Deque) newNode() *SNode {
	base := d.nextID.Add(2)
	return &SNode{lID: base - 2, rID: base - 1}
}

// hat locations.
func (d *Deque) locLeftHat() loc  { return loc{p: &d.leftHat, id: 0} }
func (d *Deque) locRightHat() loc { return loc{p: &d.rightHat, id: 1} }

// node field locations.
func locL(n *SNode) loc { return loc{p: &n.l, id: n.lID} }
func locR(n *SNode) loc { return loc{p: &n.r, id: n.rID} }

// dcas simulates the hardware instruction over two pointer locations.
func (d *Deque) dcas(l0, l1 loc, old0, old1, new0, new1 *SNode) bool {
	if d.beforeDCAS != nil {
		d.beforeDCAS()
	}
	s0 := l0.id % stripes
	s1 := l1.id % stripes
	if s0 > s1 {
		s0, s1 = s1, s0
	}
	d.locks[s0].Lock()
	if s1 != s0 {
		d.locks[s1].Lock()
	}
	ok := l0.p.Load() == old0 && l1.p.Load() == old1
	if ok {
		l0.p.Store(new0)
		l1.p.Store(new1)
	}
	if s1 != s0 {
		d.locks[s1].Unlock()
	}
	d.locks[s0].Unlock()
	return ok
}

// PushRight appends v on the right (paper lines 14..30).
func (d *Deque) PushRight(v Value) {
	nd := d.newNode() // line 14
	nd.r.Store(d.dummy)
	nd.v.Store(v) // lines 18..19
	for {         // line 20
		rh := d.rightHat.Load() // line 21
		rhR := rh.r.Load()      // line 22
		if rhR == rh {          // line 23
			nd.l.Store(d.dummy)    // line 24
			lh := d.leftHat.Load() // line 25
			if d.dcas(d.locRightHat(), d.locLeftHat(), rh, lh, nd, nd) {
				return // lines 26..27
			}
		} else {
			nd.l.Store(rh) // line 28
			if d.dcas(d.locRightHat(), locR(rh), rh, rhR, nd, nd) {
				return // lines 29..30
			}
		}
	}
}

// PushLeft prepends v on the left (mirror of PushRight).
func (d *Deque) PushLeft(v Value) {
	nd := d.newNode()
	nd.l.Store(d.dummy)
	nd.v.Store(v)
	for {
		lh := d.leftHat.Load()
		lhL := lh.l.Load()
		if lhL == lh {
			nd.r.Store(d.dummy)
			rh := d.rightHat.Load()
			if d.dcas(d.locLeftHat(), d.locRightHat(), lh, rh, nd, nd) {
				return
			}
		} else {
			nd.r.Store(lh)
			if d.dcas(d.locLeftHat(), locL(lh), lh, lhL, nd, nd) {
				return
			}
		}
	}
}

// PopRight removes and returns the rightmost value; ok is false when the
// deque is observed empty (DISC 2000 popRight, original self-pointer
// sentinels).
func (d *Deque) PopRight() (v Value, ok bool) {
	for {
		rh := d.rightHat.Load()
		lh := d.leftHat.Load()
		if rh.r.Load() == rh {
			return 0, false
		}
		if rh == lh {
			if d.dcas(d.locRightHat(), d.locLeftHat(), rh, lh, d.dummy, d.dummy) {
				v, claimed := d.takeValue(rh)
				if !claimed {
					continue
				}
				return v, true
			}
		} else {
			rhL := rh.l.Load()
			if d.dcas(d.locRightHat(), locL(rh), rh, rhL, rhL, rh) {
				v, claimed := d.takeValue(rh)
				if !claimed {
					continue
				}
				rh.r.Store(d.dummy) // break the garbage chain
				return v, true
			}
		}
	}
}

// PopLeft removes and returns the leftmost value (mirror of PopRight).
func (d *Deque) PopLeft() (v Value, ok bool) {
	for {
		lh := d.leftHat.Load()
		rh := d.rightHat.Load()
		if lh.l.Load() == lh {
			return 0, false
		}
		if lh == rh {
			if d.dcas(d.locLeftHat(), d.locRightHat(), lh, rh, d.dummy, d.dummy) {
				v, claimed := d.takeValue(lh)
				if !claimed {
					continue
				}
				return v, true
			}
		} else {
			lhR := lh.r.Load()
			if d.dcas(d.locLeftHat(), locR(lh), lh, lhR, lhR, lh) {
				v, claimed := d.takeValue(lh)
				if !claimed {
					continue
				}
				lh.l.Store(d.dummy)
				return v, true
			}
		}
	}
}

// takeValue mirrors the snark package's claim protocol.
func (d *Deque) takeValue(n *SNode) (v Value, claimed bool) {
	if !d.claiming {
		return n.v.Load(), true
	}
	for {
		cur := n.v.Load()
		if cur == claimedMark {
			return 0, false
		}
		if n.v.CompareAndSwap(cur, claimedMark) {
			return cur, true
		}
	}
}
