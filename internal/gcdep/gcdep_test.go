package gcdep

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestEmptyPops(t *testing.T) {
	d := New()
	if _, ok := d.PopLeft(); ok {
		t.Error("PopLeft on empty deque reported a value")
	}
	if _, ok := d.PopRight(); ok {
		t.Error("PopRight on empty deque reported a value")
	}
}

func TestAllFourOpCombinations(t *testing.T) {
	tests := []struct {
		name string
		push func(d *Deque, v Value)
		pop  func(d *Deque) (Value, bool)
		want []Value
	}{
		{name: "pushR popR", push: (*Deque).PushRight, pop: (*Deque).PopRight, want: []Value{3, 2, 1}},
		{name: "pushR popL", push: (*Deque).PushRight, pop: (*Deque).PopLeft, want: []Value{1, 2, 3}},
		{name: "pushL popR", push: (*Deque).PushLeft, pop: (*Deque).PopRight, want: []Value{1, 2, 3}},
		{name: "pushL popL", push: (*Deque).PushLeft, pop: (*Deque).PopLeft, want: []Value{3, 2, 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := New()
			for v := Value(1); v <= 3; v++ {
				tt.push(d, v)
			}
			for _, want := range tt.want {
				v, ok := tt.pop(d)
				if !ok || v != want {
					t.Fatalf("pop = (%d,%v), want (%d,true)", v, ok, want)
				}
			}
			if _, ok := tt.pop(d); ok {
				t.Error("deque not empty at end")
			}
		})
	}
}

// TestSequentialModelEquivalence property-tests the GC-dependent deque
// against a slice model, exactly as the LFRC variant is tested — the
// methodology demands the transformation preserve semantics (E9).
func TestSequentialModelEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := New()
		var model []Value
		next := Value(1)
		for i := 0; i < 300; i++ {
			switch rng.Intn(4) {
			case 0:
				d.PushLeft(next)
				model = append([]Value{next}, model...)
				next++
			case 1:
				d.PushRight(next)
				model = append(model, next)
				next++
			case 2:
				v, ok := d.PopLeft()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[0] {
						return false
					}
					model = model[1:]
				}
			case 3:
				v, ok := d.PopRight()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[len(model)-1] {
						return false
					}
					model = model[:len(model)-1]
				}
			}
		}
		for _, want := range model {
			v, ok := d.PopLeft()
			if !ok || v != want {
				return false
			}
		}
		_, ok := d.PopLeft()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRefillAfterEmpty(t *testing.T) {
	d := New()
	for round := 0; round < 5; round++ {
		for v := Value(0); v < 10; v++ {
			if v%2 == 0 {
				d.PushLeft(v)
			} else {
				d.PushRight(v)
			}
		}
		got := map[Value]bool{}
		for i := 0; i < 10; i++ {
			var v Value
			var ok bool
			if i%2 == 0 {
				v, ok = d.PopRight()
			} else {
				v, ok = d.PopLeft()
			}
			if !ok {
				t.Fatalf("round %d: premature empty", round)
			}
			if got[v] {
				t.Fatalf("round %d: duplicate %d", round, v)
			}
			got[v] = true
		}
	}
}

// TestConcurrentStressClaiming mirrors the LFRC deque's exact-semantics
// stress on the GC-dependent baseline.
func TestConcurrentStressClaiming(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	d := New(WithValueClaiming())

	const (
		pushers   = 4
		poppers   = 4
		perPusher = 2000
	)
	var (
		mu     sync.Mutex
		popped = make(map[Value]int)
		done   atomic.Int64
		wg     sync.WaitGroup
	)
	for p := 0; p < pushers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer done.Add(1)
			for i := 0; i < perPusher; i++ {
				v := Value(p*perPusher + i + 1)
				if (p+i)%2 == 0 {
					d.PushRight(v)
				} else {
					d.PushLeft(v)
				}
			}
		}(p)
	}
	for c := 0; c < poppers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			record := func(v Value) {
				mu.Lock()
				popped[v]++
				mu.Unlock()
			}
			for {
				var v Value
				var ok bool
				if c%2 == 0 {
					v, ok = d.PopLeft()
				} else {
					v, ok = d.PopRight()
				}
				if ok {
					record(v)
					continue
				}
				if done.Load() == pushers {
					if v, ok := d.PopLeft(); ok {
						record(v)
						continue
					}
					if v, ok := d.PopRight(); ok {
						record(v)
						continue
					}
					return
				}
				runtime.Gosched()
			}
		}(c)
	}
	wg.Wait()

	if len(popped) != pushers*perPusher {
		t.Errorf("popped %d distinct values, want %d", len(popped), pushers*perPusher)
	}
	for v, n := range popped {
		if n != 1 {
			t.Errorf("value %d popped %d times", v, n)
		}
	}
}
