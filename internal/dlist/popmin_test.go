package dlist

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

func TestPopMinEmptySet(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			l := newList(t, w)
			defer l.Close()
			if _, ok := l.PopMin(); ok {
				t.Error("PopMin on empty set reported a value")
			}
		})
	}
}

func TestPopMinDrainsAscending(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			l := newList(t, w)
			defer l.Close()

			keys := []Key{42, 7, 99, 1, 63, 12, 55}
			for _, k := range keys {
				mustInsert(t, l, k)
			}
			var got []Key
			for {
				k, ok := l.PopMin()
				if !ok {
					break
				}
				got = append(got, k)
			}
			if len(got) != len(keys) {
				t.Fatalf("drained %d keys, want %d", len(got), len(keys))
			}
			for i := 1; i < len(got); i++ {
				if got[i-1] >= got[i] {
					t.Fatalf("PopMin order not ascending: %v", got)
				}
			}
			if got[0] != 1 || got[len(got)-1] != 99 {
				t.Errorf("drain = %v", got)
			}
		})
	}
}

func TestPopMinInterleavedWithInserts(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			l := newList(t, w)
			defer l.Close()

			mustInsert(t, l, 10)
			mustInsert(t, l, 20)
			if k, ok := l.PopMin(); !ok || k != 10 {
				t.Fatalf("PopMin = (%d,%v), want (10,true)", k, ok)
			}
			mustInsert(t, l, 5)
			if k, ok := l.PopMin(); !ok || k != 5 {
				t.Fatalf("PopMin = (%d,%v), want (5,true)", k, ok)
			}
			if k, ok := l.PopMin(); !ok || k != 20 {
				t.Fatalf("PopMin = (%d,%v), want (20,true)", k, ok)
			}
		})
	}
}

// TestPopMinConcurrentExactness: concurrent PopMin consumers must partition
// the key set — nothing lost, nothing delivered twice.
func TestPopMinConcurrentExactness(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			l := newList(t, w)

			const n = 2000
			perm := rand.New(rand.NewSource(5)).Perm(n)
			for _, k := range perm {
				mustInsert(t, l, Key(k))
			}

			const consumers = 4
			var (
				mu  sync.Mutex
				got = map[Key]int{}
				wg  sync.WaitGroup
			)
			for c := 0; c < consumers; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						k, ok := l.PopMin()
						if !ok {
							return
						}
						mu.Lock()
						got[k]++
						mu.Unlock()
					}
				}()
			}
			wg.Wait()

			if len(got) != n {
				t.Errorf("delivered %d distinct keys, want %d", len(got), n)
			}
			for k, c := range got {
				if c != 1 {
					t.Errorf("key %d delivered %d times", k, c)
				}
			}
			l.Close()
			if live := w.h.Stats().LiveObjects; live != 0 {
				t.Errorf("LiveObjects = %d, want 0", live)
			}
		})
	}
}
