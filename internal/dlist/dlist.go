// Package dlist implements a lock-free sorted linked-list set built
// directly on the LFRC operations, demonstrating the methodology on a
// structure the paper did not transform (§2.1: "the set of operations ...
// seems to be sufficient to support a wide range of concurrent data
// structure implementations").
//
// The algorithm is a DCAS flavour of the marked-node sorted list: each node
// carries a scalar "dead" cell next to its key.
//
//   - Delete first marks the victim dead with a single CAS on the dead cell
//     (the linearization point), then attempts the physical unlink.
//   - Every structural update — inserting after a node or unlinking its
//     successor — is a DCASMixed on (pred.next, pred.dead) that verifies the
//     predecessor is still undead, so no update ever hangs new nodes off a
//     physically removed predecessor. This is where DCAS replaces the
//     pointer-mark bit-stealing of CAS-only designs (Harris 2001): the mark
//     lives in its own cell, and DCAS reads it atomically with the pointer
//     update.
//   - Traversals help unlink the first marked node they meet and restart.
//
// Garbage is acyclic (nodes point only forward), so the methodology's
// Cycle-Free Garbage criterion holds with no extra work, and unlinked nodes
// are reclaimed by their reference counts as the last traverser lets go.
package dlist

import (
	"fmt"

	"lfrc/internal/core"
	"lfrc/internal/fault"
	"lfrc/internal/mem"
)

// Key is a set element. Keys must be at most mem.ValueMask.
type Key = uint64

// Node field indices.
const (
	fNext = 0 // next node (pointer)
	fKey  = 1 // key (scalar)
	fDead = 2 // deletion mark (scalar: 0 live, 1 dead)
)

// Types holds the heap type ids the list uses; register once per heap.
type Types struct {
	Node   mem.TypeID
	Anchor mem.TypeID
}

// RegisterTypes registers the list's node and anchor types on h.
func RegisterTypes(h *mem.Heap) (Types, error) {
	node, err := h.RegisterType(mem.TypeDesc{
		Name:      "dlist.Node",
		NumFields: 3,
		PtrFields: []int{fNext},
	})
	if err != nil {
		return Types{}, fmt.Errorf("dlist: register node: %w", err)
	}
	anchor, err := h.RegisterType(mem.TypeDesc{
		Name:      "dlist.Anchor",
		NumFields: 1,
		PtrFields: []int{0},
	})
	if err != nil {
		return Types{}, fmt.Errorf("dlist: register anchor: %w", err)
	}
	return Types{Node: node, Anchor: anchor}, nil
}

// MustRegisterTypes is RegisterTypes for static setup; it panics on error.
func MustRegisterTypes(h *mem.Heap) Types {
	ts, err := RegisterTypes(h)
	if err != nil {
		panic(err)
	}
	return ts
}

// List is a GC-independent lock-free sorted set.
type List struct {
	rc *core.RC
	h  *mem.Heap
	ts Types
	fj *fault.Injector // rc's fault injector, cached; nil means disabled

	anchor mem.Ref
	headA  mem.Addr
	closed bool
}

// New builds an empty set.
func New(rc *core.RC, ts Types) (*List, error) {
	l := &List{rc: rc, h: rc.Heap(), ts: ts, fj: rc.Fault()}
	anchor, err := rc.NewObject(ts.Anchor)
	if err != nil {
		return nil, fmt.Errorf("dlist: allocate anchor: %w", err)
	}
	l.anchor = anchor
	l.headA = l.h.FieldAddr(anchor, 0)
	return l, nil
}

// Anchor returns the list's anchor object for collector rooting. It is 0
// after Close.
func (l *List) Anchor() mem.Ref { return l.anchor }

func (l *List) nextA(n mem.Ref) mem.Addr { return l.h.FieldAddr(n, fNext) }
func (l *List) keyA(n mem.Ref) mem.Addr  { return l.h.FieldAddr(n, fKey) }
func (l *List) deadA(n mem.Ref) mem.Addr { return l.h.FieldAddr(n, fDead) }

// search walks the list to the first node with key >= k, helping to unlink
// any marked node it meets (and restarting afterwards). It returns counted
// references (pred, curr); pred is 0 when curr is the first node. The caller
// must Destroy both.
func (l *List) search(k Key) (pred, curr mem.Ref) {
	for {
		l.rc.Destroy(pred, curr)
		pred, curr = 0, 0
		l.rc.Load(l.headA, &curr)
		helping := false
		for curr != 0 {
			if l.rc.WordLoad(l.deadA(curr)) != 0 {
				// Help unlink the first marked node, then restart.
				var next mem.Ref
				l.rc.Load(l.nextA(curr), &next)
				if pred == 0 {
					l.rc.CAS(l.headA, curr, next)
				} else {
					l.rc.DCASMixed(l.nextA(pred), curr, next, l.deadA(pred), 0, 0)
				}
				l.rc.Destroy(next)
				helping = true
				break
			}
			if l.rc.WordLoad(l.keyA(curr)) >= k {
				return pred, curr
			}
			l.rc.Copy(&pred, curr)
			l.rc.Load(l.nextA(curr), &curr)
		}
		if !helping {
			return pred, curr // curr == 0: ran off the end
		}
	}
}

// Insert adds k to the set. It returns false (with no error) if k was
// already present.
func (l *List) Insert(k Key) (bool, error) {
	if k > mem.ValueMask {
		return false, fmt.Errorf("dlist: %w: %#x", mem.ErrValueRange, k)
	}
	n, err := l.rc.NewObject(l.ts.Node)
	if err != nil {
		return false, fmt.Errorf("dlist: %w", err)
	}
	l.rc.WordStore(l.keyA(n), k)

	for {
		pred, curr := l.search(k)
		if curr != 0 && l.rc.WordLoad(l.keyA(curr)) == k && l.rc.WordLoad(l.deadA(curr)) == 0 {
			l.rc.Destroy(pred, curr, n)
			return false, nil
		}
		l.rc.Store(l.nextA(n), curr)
		// Injected failure lands between the search and the link attempt;
		// the counted (pred, curr) pair must be released before retrying.
		if l.fj.Inject(fault.SetInsert) {
			l.rc.Destroy(pred, curr)
			continue
		}
		var ok bool
		if pred == 0 {
			ok = l.rc.CAS(l.headA, curr, n)
		} else {
			ok = l.rc.DCASMixed(l.nextA(pred), curr, n, l.deadA(pred), 0, 0)
		}
		l.rc.Destroy(pred, curr)
		if ok {
			l.rc.Destroy(n)
			return true, nil
		}
	}
}

// Delete removes k from the set, returning whether this call removed it.
func (l *List) Delete(k Key) bool {
	for {
		pred, curr := l.search(k)
		if curr == 0 || l.rc.WordLoad(l.keyA(curr)) != k {
			l.rc.Destroy(pred, curr)
			return false
		}
		if l.fj.Inject(fault.SetDelete) {
			l.rc.Destroy(pred, curr)
			continue
		}
		if !l.rc.WordCAS(l.deadA(curr), 0, 1) {
			// Another deleter marked it first; retry — a fresh live
			// duplicate may have been inserted before the corpse is
			// unlinked.
			l.rc.Destroy(pred, curr)
			continue
		}
		// Logical delete done (the linearization point); attempt the
		// physical unlink and let traversals finish it if we fail.
		var next mem.Ref
		l.rc.Load(l.nextA(curr), &next)
		if pred == 0 {
			l.rc.CAS(l.headA, curr, next)
		} else {
			l.rc.DCASMixed(l.nextA(pred), curr, next, l.deadA(pred), 0, 0)
		}
		l.rc.Destroy(pred, curr, next)
		return true
	}
}

// PopMin removes and returns the smallest element, giving the sorted list
// priority-queue semantics; ok is false when the set is observed empty.
func (l *List) PopMin() (k Key, ok bool) {
	for {
		pred, curr := l.search(0) // first live node
		if curr == 0 {
			l.rc.Destroy(pred, curr)
			return 0, false
		}
		key := l.rc.WordLoad(l.keyA(curr))
		if l.fj.Inject(fault.SetPopMin) {
			l.rc.Destroy(pred, curr)
			continue
		}
		if !l.rc.WordCAS(l.deadA(curr), 0, 1) {
			// Lost the claim to a deleter; retry from a fresh search.
			l.rc.Destroy(pred, curr)
			continue
		}
		var next mem.Ref
		l.rc.Load(l.nextA(curr), &next)
		if pred == 0 {
			l.rc.CAS(l.headA, curr, next)
		} else {
			l.rc.DCASMixed(l.nextA(pred), curr, next, l.deadA(pred), 0, 0)
		}
		l.rc.Destroy(pred, curr, next)
		return key, true
	}
}

// Contains reports whether k is in the set.
func (l *List) Contains(k Key) bool {
	pred, curr := l.search(k)
	found := curr != 0 &&
		l.rc.WordLoad(l.keyA(curr)) == k &&
		l.rc.WordLoad(l.deadA(curr)) == 0
	l.rc.Destroy(pred, curr)
	return found
}

// Len counts the live elements. Exact at quiescence; a snapshot otherwise.
func (l *List) Len() int {
	n := 0
	var curr mem.Ref
	l.rc.Load(l.headA, &curr)
	for curr != 0 {
		if l.rc.WordLoad(l.deadA(curr)) == 0 {
			n++
		}
		l.rc.Load(l.nextA(curr), &curr)
	}
	l.rc.Destroy(curr)
	return n
}

// Range walks the live elements in ascending order, calling yield for each
// until it returns false. The traversal holds a counted reference to the node
// it stands on — and releases it even on early exit — so concurrent deleters
// can never free the ground under it. Exact at quiescence; a snapshot
// otherwise.
func (l *List) Range(yield func(Key) bool) {
	var curr mem.Ref
	l.rc.Load(l.headA, &curr)
	for curr != 0 {
		if l.rc.WordLoad(l.deadA(curr)) == 0 {
			if !yield(l.rc.WordLoad(l.keyA(curr))) {
				break
			}
		}
		l.rc.Load(l.nextA(curr), &curr)
	}
	l.rc.Destroy(curr)
}

// Keys returns the live elements in ascending order. Exact at quiescence.
func (l *List) Keys() []Key {
	var out []Key
	l.Range(func(k Key) bool {
		out = append(out, k)
		return true
	})
	return out
}

// Close releases the whole list. Must not run concurrently with other
// operations.
func (l *List) Close() {
	if l.closed {
		return
	}
	l.closed = true
	l.rc.Store(l.headA, 0) // cascades through the chain
	l.rc.Destroy(l.anchor)
	l.anchor = 0
}
