package dlist

import (
	"testing"

	"lfrc/internal/core"
	"lfrc/internal/dcas"
	"lfrc/internal/mem"
)

// FuzzSetModel interprets the fuzz input as (op, key) pairs and runs them
// against a map model on both engines, checking results, ordering, leak
// freedom, and heap integrity.
func FuzzSetModel(f *testing.F) {
	f.Add([]byte{0, 5, 2, 5, 1, 5, 2, 5})
	f.Add([]byte{0, 1, 0, 2, 0, 3, 1, 2, 2, 1, 2, 2, 2, 3})
	f.Add([]byte{0, 9, 0, 9, 1, 9, 1, 9})
	f.Add([]byte{1, 0, 2, 0})

	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 512 {
			script = script[:512]
		}
		for _, engine := range []func(h *mem.Heap) dcas.Engine{
			func(h *mem.Heap) dcas.Engine { return dcas.NewLocking(h) },
			func(h *mem.Heap) dcas.Engine { return dcas.NewMCAS(h) },
		} {
			h := mem.NewHeap()
			rc := core.New(h, engine(h))
			l, err := New(rc, MustRegisterTypes(h))
			if err != nil {
				t.Fatalf("New: %v", err)
			}

			model := map[Key]bool{}
			for i := 0; i+1 < len(script); i += 2 {
				op, k := script[i]%3, Key(script[i+1]%32)
				switch op {
				case 0:
					ok, err := l.Insert(k)
					if err != nil {
						t.Fatalf("Insert: %v", err)
					}
					if ok == model[k] {
						t.Fatalf("Insert(%d) = %v, model has %v", k, ok, model[k])
					}
					model[k] = true
				case 1:
					if got := l.Delete(k); got != model[k] {
						t.Fatalf("Delete(%d) = %v, model has %v", k, got, model[k])
					}
					delete(model, k)
				case 2:
					if got := l.Contains(k); got != model[k] {
						t.Fatalf("Contains(%d) = %v, model has %v", k, got, model[k])
					}
				}
			}
			if got := l.Len(); got != len(model) {
				t.Fatalf("Len = %d, model %d", got, len(model))
			}
			keys := l.Keys()
			for i := 1; i < len(keys); i++ {
				if keys[i-1] >= keys[i] {
					t.Fatalf("Keys not strictly ascending: %v", keys)
				}
			}
			l.Close()
			if got := h.Stats().LiveObjects; got != 0 {
				t.Fatalf("leaked %d objects", got)
			}
		}
	})
}
