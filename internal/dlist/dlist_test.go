package dlist

import (
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"lfrc/internal/core"
	"lfrc/internal/dcas"
	"lfrc/internal/mem"
)

type world struct {
	h  *mem.Heap
	rc *core.RC
	ts Types
}

func worldFactories() map[string]func(t *testing.T) *world {
	mk := func(engine func(h *mem.Heap) dcas.Engine) func(t *testing.T) *world {
		return func(t *testing.T) *world {
			t.Helper()
			h := mem.NewHeap()
			return &world{h: h, rc: core.New(h, engine(h)), ts: MustRegisterTypes(h)}
		}
	}
	return map[string]func(t *testing.T) *world{
		"locking": mk(func(h *mem.Heap) dcas.Engine { return dcas.NewLocking(h) }),
		"mcas":    mk(func(h *mem.Heap) dcas.Engine { return dcas.NewMCAS(h) }),
	}
}

func newList(t *testing.T, w *world) *List {
	t.Helper()
	l, err := New(w.rc, w.ts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return l
}

func mustInsert(t *testing.T, l *List, k Key) bool {
	t.Helper()
	ok, err := l.Insert(k)
	if err != nil {
		t.Fatalf("Insert(%d): %v", k, err)
	}
	return ok
}

func TestEmptyList(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			l := newList(t, w)
			defer l.Close()
			if l.Contains(1) {
				t.Error("empty list contains 1")
			}
			if l.Delete(1) {
				t.Error("Delete on empty list succeeded")
			}
			if l.Len() != 0 {
				t.Errorf("Len = %d, want 0", l.Len())
			}
		})
	}
}

func TestInsertContainsDelete(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			l := newList(t, w)
			defer l.Close()

			if !mustInsert(t, l, 5) {
				t.Fatal("first insert reported duplicate")
			}
			if mustInsert(t, l, 5) {
				t.Fatal("duplicate insert succeeded")
			}
			if !l.Contains(5) {
				t.Fatal("Contains(5) false after insert")
			}
			if !l.Delete(5) {
				t.Fatal("Delete(5) failed")
			}
			if l.Contains(5) {
				t.Fatal("Contains(5) true after delete")
			}
			if l.Delete(5) {
				t.Fatal("second Delete(5) succeeded")
			}
			// Reinsertion after deletion works.
			if !mustInsert(t, l, 5) {
				t.Fatal("reinsert after delete reported duplicate")
			}
		})
	}
}

func TestKeysSortedAscending(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			l := newList(t, w)
			defer l.Close()

			input := []Key{42, 7, 99, 1, 63, 12, 55}
			for _, k := range input {
				mustInsert(t, l, k)
			}
			got := l.Keys()
			want := append([]Key(nil), input...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			if len(got) != len(want) {
				t.Fatalf("Keys = %v, want %v", got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("Keys = %v, want %v", got, want)
				}
			}
		})
	}
}

func TestInsertPositions(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			l := newList(t, w)
			defer l.Close()
			// Middle, head, tail insertions.
			mustInsert(t, l, 10)
			mustInsert(t, l, 30)
			mustInsert(t, l, 20) // middle
			mustInsert(t, l, 5)  // new head
			mustInsert(t, l, 40) // new tail
			got := l.Keys()
			want := []Key{5, 10, 20, 30, 40}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("Keys = %v, want %v", got, want)
				}
			}
		})
	}
}

func TestDeletePositions(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			l := newList(t, w)
			defer l.Close()
			for _, k := range []Key{1, 2, 3, 4, 5} {
				mustInsert(t, l, k)
			}
			if !l.Delete(1) { // head
				t.Fatal("delete head failed")
			}
			if !l.Delete(3) { // middle
				t.Fatal("delete middle failed")
			}
			if !l.Delete(5) { // tail
				t.Fatal("delete tail failed")
			}
			got := l.Keys()
			want := []Key{2, 4}
			if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
				t.Fatalf("Keys = %v, want %v", got, want)
			}
		})
	}
}

func TestKeyOutOfRange(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			l := newList(t, w)
			defer l.Close()
			if _, err := l.Insert(mem.ValueMask + 1); err == nil {
				t.Error("Insert accepted out-of-range key")
			}
		})
	}
}

// TestQuickSetModel property-tests the list against a map model over random
// operation scripts.
func TestQuickSetModel(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			f := func(seed int64) bool {
				rng := rand.New(rand.NewSource(seed))
				w := mk(t)
				l := newList(t, w)
				defer l.Close()

				model := map[Key]bool{}
				for i := 0; i < 400; i++ {
					k := Key(rng.Intn(40))
					switch rng.Intn(3) {
					case 0:
						ok, err := l.Insert(k)
						if err != nil || ok == model[k] {
							return false
						}
						model[k] = true
					case 1:
						if l.Delete(k) != model[k] {
							return false
						}
						delete(model, k)
					case 2:
						if l.Contains(k) != model[k] {
							return false
						}
					}
				}
				if l.Len() != len(model) {
					return false
				}
				for _, k := range l.Keys() {
					if !model[k] {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestCloseReclaimsEverything(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			l := newList(t, w)
			for k := Key(0); k < 300; k++ {
				mustInsert(t, l, k)
			}
			for k := Key(0); k < 300; k += 3 {
				l.Delete(k)
			}
			l.Close()
			if got := w.h.Stats().LiveObjects; got != 0 {
				t.Errorf("LiveObjects = %d after Close, want 0", got)
			}
		})
	}
}

// TestConcurrentDisjointKeys has each worker churn its own key range; final
// contents must be exactly each worker's last state, with no leaks and no
// corruption.
func TestConcurrentDisjointKeys(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			l := newList(t, w)

			const workers, keysPerW, rounds = 4, 16, 400
			var wg sync.WaitGroup
			finals := make([]map[Key]bool, workers)
			for p := 0; p < workers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(p) + 5))
					mine := map[Key]bool{}
					base := Key(p * 1000)
					for i := 0; i < rounds; i++ {
						k := base + Key(rng.Intn(keysPerW))
						if rng.Intn(2) == 0 {
							ok, err := l.Insert(k)
							if err != nil {
								t.Errorf("Insert: %v", err)
								return
							}
							if ok == mine[k] {
								t.Errorf("Insert(%d) = %v but model says %v", k, ok, mine[k])
								return
							}
							mine[k] = true
						} else {
							if l.Delete(k) != mine[k] {
								t.Errorf("Delete(%d) disagrees with model", k)
								return
							}
							delete(mine, k)
						}
					}
					finals[p] = mine
				}(p)
			}
			wg.Wait()

			want := 0
			for p := 0; p < workers; p++ {
				for k := range finals[p] {
					want++
					if !l.Contains(k) {
						t.Errorf("key %d missing from final set", k)
					}
				}
			}
			if got := l.Len(); got != want {
				t.Errorf("Len = %d, want %d", got, want)
			}
			l.Close()
			hs := w.h.Stats()
			if hs.LiveObjects != 0 || hs.Corruptions != 0 || hs.DoubleFrees != 0 {
				t.Errorf("Live=%d Corruptions=%d DoubleFrees=%d, want 0/0/0",
					hs.LiveObjects, hs.Corruptions, hs.DoubleFrees)
			}
		})
	}
}

// TestConcurrentContendedKeys has all workers fight over a tiny key space;
// the success counts must balance: inserts won − deletes won == final
// presence, per key.
func TestConcurrentContendedKeys(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			l := newList(t, w)

			const workers, rounds, keys = 6, 500, 4
			var insertWins, deleteWins [keys]atomic.Int64
			var wg sync.WaitGroup
			for p := 0; p < workers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(p) + 31))
					for i := 0; i < rounds; i++ {
						k := Key(rng.Intn(keys))
						if rng.Intn(2) == 0 {
							ok, err := l.Insert(k)
							if err != nil {
								t.Errorf("Insert: %v", err)
								return
							}
							if ok {
								insertWins[k].Add(1)
							}
						} else if l.Delete(k) {
							deleteWins[k].Add(1)
						}
					}
				}(p)
			}
			wg.Wait()

			for k := 0; k < keys; k++ {
				present := int64(0)
				if l.Contains(Key(k)) {
					present = 1
				}
				if got := insertWins[k].Load() - deleteWins[k].Load(); got != present {
					t.Errorf("key %d: insertWins-deleteWins = %d, presence = %d", k, got, present)
				}
			}
			l.Close()
			hs := w.h.Stats()
			if hs.LiveObjects != 0 || hs.Corruptions != 0 {
				t.Errorf("Live=%d Corruptions=%d, want 0/0", hs.LiveObjects, hs.Corruptions)
			}
		})
	}
}

// TestHelpingUnlinksCorpses verifies that a logically deleted node whose
// physical unlink was suppressed is cleaned up by a later traversal.
func TestHelpingUnlinksCorpses(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			l := newList(t, w)
			defer l.Close()
			mustInsert(t, l, 1)
			mustInsert(t, l, 2)
			mustInsert(t, l, 3)

			// Mark 2 dead directly (simulating a deleter that died
			// between its logical and physical phases).
			pred, curr := l.search(2)
			if curr == 0 || w.rc.WordLoad(l.keyA(curr)) != 2 {
				t.Fatal("search(2) did not find the node")
			}
			if !w.rc.WordCAS(l.deadA(curr), 0, 1) {
				t.Fatal("mark failed")
			}
			w.rc.Destroy(pred, curr)

			if l.Contains(2) {
				t.Error("Contains(2) true for a marked node")
			}
			// A traversal past the corpse must unlink it; afterwards
			// only live nodes remain reachable.
			if got := l.Len(); got != 2 {
				t.Errorf("Len = %d, want 2", got)
			}
			if !l.Contains(3) || !l.Contains(1) {
				t.Error("live keys lost while helping")
			}
			got := l.Keys()
			if len(got) != 2 || got[0] != 1 || got[1] != 3 {
				t.Errorf("Keys = %v, want [1 3]", got)
			}
		})
	}
}
