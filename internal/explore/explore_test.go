package explore

import (
	"fmt"
	"testing"

	"lfrc/internal/core"
	"lfrc/internal/dcas"
	"lfrc/internal/mem"
)

// racyCounterScenario is the explorer's self-test: two threads perform a
// read-modify-write through the engine *without* CAS, so a preemption
// between the read and the write loses an update. The final count detects
// it.
func racyCounterScenario(useCAS bool) Scenario {
	return func(instrument func(dcas.Engine) dcas.Engine) ([]func(), func() error) {
		h := mem.NewHeap()
		e := instrument(dcas.NewLocking(h))
		id := h.MustRegisterType(mem.TypeDesc{Name: "ctr", NumFields: 1})
		r := h.MustAlloc(id)
		a := h.FieldAddr(r, 0)

		inc := func() {
			if useCAS {
				for {
					v := e.Read(a)
					if e.CAS(a, v, v+1) {
						return
					}
				}
			}
			v := e.Read(a)
			e.Write(a, v+1)
		}
		threads := []func(){inc, inc}
		check := func() error {
			if got := e.Read(a); got != 2 {
				return fmt.Errorf("count = %d, want 2", got)
			}
			return nil
		}
		return threads, check
	}
}

func TestExplorerFindsLostUpdate(t *testing.T) {
	// Without any preemption the racy counter is correct...
	res := RunDFS(racyCounterScenario(false), 0, 100, 10_000)
	if res.Violations != 0 {
		t.Fatalf("0-preemption exploration found %d violations; the bug needs a preemption", res.Violations)
	}
	// ...one preemption exposes the lost update...
	res = RunDFS(racyCounterScenario(false), 1, 1000, 10_000)
	if res.Violations == 0 {
		t.Fatalf("1-preemption exploration missed the lost update (%d runs)", res.Runs)
	}
	t.Logf("lost update found: %d violations in %d runs; trace %v", res.Violations, res.Runs, res.FirstViolation)

	// ...and the trace replays deterministically.
	if err := Replay(racyCounterScenario(false), res.FirstViolation, 10_000); err == nil {
		t.Fatal("replay of the violating schedule did not reproduce the bug")
	}
}

func TestExplorerCASCounterIsCorrect(t *testing.T) {
	res := RunDFS(racyCounterScenario(true), 2, 3000, 10_000)
	if res.Violations != 0 {
		t.Fatalf("CAS counter violated under exploration: %v (%v)", res.FirstViolation, res.FirstError)
	}
	if res.Runs < 10 {
		t.Fatalf("exploration only ran %d schedules", res.Runs)
	}
}

func TestExplorerRandomModeFindsLostUpdate(t *testing.T) {
	res := RunRandom(racyCounterScenario(false), 200, 3, 10_000)
	if res.Violations == 0 {
		t.Fatal("random exploration missed the lost update in 200 runs")
	}
}

// lfrcLoadScenario explores the heart of the paper: one thread Loads a
// shared pointer while another swings it and frees the displaced object.
// Under the safe DCAS protocol no schedule may corrupt freed memory; the
// check also verifies the loaded reference is never a freed object.
func lfrcLoadScenario(naive bool) Scenario {
	return func(instrument func(dcas.Engine) dcas.Engine) ([]func(), func() error) {
		h := mem.NewHeap()
		e := instrument(dcas.NewLocking(h))
		rc := core.New(h, e)
		cell := h.MustRegisterType(mem.TypeDesc{Name: "cell", NumFields: 1, PtrFields: []int{0}})
		node := h.MustRegisterType(mem.TypeDesc{Name: "node", NumFields: 2, PtrFields: []int{0}})

		holder := h.MustAlloc(cell)
		a := h.FieldAddr(holder, 0)
		seed := h.MustAlloc(node)
		rc.StoreAlloc(a, seed)

		var dst mem.Ref
		loadedFreed := false
		reader := func() {
			for i := 0; i < 2; i++ {
				rc.Destroy(dst)
				dst = 0
				if naive {
					rc.NaiveLoad(a, &dst)
				} else {
					rc.Load(a, &dst)
				}
				if dst != 0 && h.IsFreed(dst) {
					loadedFreed = true
				}
			}
		}
		swinger := func() {
			for i := 0; i < 2; i++ {
				n, err := rc.NewObject(node)
				if err != nil {
					return
				}
				rc.StoreAlloc(a, n)
			}
		}
		check := func() error {
			rc.Destroy(dst)
			if loadedFreed {
				return fmt.Errorf("Load returned a freed object")
			}
			if p := rc.Stats().PoisonedRCUpdates; p != 0 {
				return fmt.Errorf("%d poisoned rc updates", p)
			}
			if c := h.Stats().Corruptions; c != 0 {
				return fmt.Errorf("%d heap corruptions", c)
			}
			return nil
		}
		return []func(){reader, swinger}, check
	}
}

// TestSafeLoadSurvivesAllSchedules is the paper's §5 safety argument run as
// bounded model checking: with up to 3 preemptions at shared-memory
// granularity, no schedule makes LFRCLoad touch freed memory.
func TestSafeLoadSurvivesAllSchedules(t *testing.T) {
	res := RunDFS(lfrcLoadScenario(false), 3, 20_000, 50_000)
	if res.Violations != 0 {
		t.Fatalf("safe Load violated: trace %v: %v", res.FirstViolation, res.FirstError)
	}
	if res.Incomplete != 0 {
		t.Errorf("%d runs hit the step cap", res.Incomplete)
	}
	t.Logf("safe load verified over %d schedules (<=3 preemptions)", res.Runs)
}

// TestNaiveLoadFailsUnderExploration shows the explorer finds the §5 bug in
// the CAS-only protocol without any injected schedule: systematic search
// alone uncovers a schedule that corrupts freed memory.
func TestNaiveLoadFailsUnderExploration(t *testing.T) {
	res := RunDFS(lfrcLoadScenario(true), 2, 20_000, 50_000)
	if res.Violations == 0 {
		t.Fatalf("exploration missed the naive-load corruption in %d runs", res.Runs)
	}
	t.Logf("naive load corrupted on %d of %d schedules; first trace %v (%v)",
		res.Violations, res.Runs, res.FirstViolation, res.FirstError)

	if err := Replay(lfrcLoadScenario(true), res.FirstViolation, 50_000); err == nil {
		t.Fatal("replay did not reproduce the corruption")
	}
}
