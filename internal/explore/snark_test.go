package explore

import (
	"fmt"
	"sort"
	"testing"

	"lfrc/internal/core"
	"lfrc/internal/dcas"
	"lfrc/internal/mem"
	"lfrc/internal/snark"
)

// snarkScenario prefills a deque and runs the given operations on separate
// threads under the controlled scheduler. The check drains the deque and
// verifies value conservation (each value delivered exactly once across pops
// and the final drain), plus heap integrity.
type dequeOp struct {
	push  bool
	left  bool
	value uint64
}

func snarkScenario(prefill []uint64, ops [][]dequeOp, claiming bool) Scenario {
	return func(instrument func(dcas.Engine) dcas.Engine) ([]func(), func() error) {
		h := mem.NewHeap()
		e := instrument(dcas.NewLocking(h))
		rc := core.New(h, e)
		var sopts []snark.Option
		if claiming {
			sopts = append(sopts, snark.WithValueClaiming())
		}
		d, err := snark.New(rc, snark.MustRegisterTypes(h), sopts...)
		if err != nil {
			panic(err)
		}
		expected := map[uint64]int{}
		for _, v := range prefill {
			if err := d.PushRight(v); err != nil {
				panic(err)
			}
			expected[v]++
		}

		results := make([][]uint64, len(ops))
		threads := make([]func(), len(ops))
		for i, script := range ops {
			i, script := i, script
			for _, op := range script {
				if op.push {
					expected[op.value]++
				}
			}
			threads[i] = func() {
				for _, op := range script {
					switch {
					case op.push && op.left:
						_ = d.PushLeft(op.value)
					case op.push:
						_ = d.PushRight(op.value)
					case op.left:
						if v, ok := d.PopLeft(); ok {
							results[i] = append(results[i], v)
						}
					default:
						if v, ok := d.PopRight(); ok {
							results[i] = append(results[i], v)
						}
					}
				}
			}
		}

		check := func() error {
			got := map[uint64]int{}
			for _, rs := range results {
				for _, v := range rs {
					got[v]++
				}
			}
			for {
				v, ok := d.PopLeft()
				if !ok {
					break
				}
				got[v]++
			}
			var problems []string
			for v, n := range got {
				if n != expected[v] {
					problems = append(problems, fmt.Sprintf("value %d delivered %d times (want %d)", v, n, expected[v]))
				}
			}
			for v, n := range expected {
				if got[v] != n {
					if got[v] == 0 {
						problems = append(problems, fmt.Sprintf("value %d lost", v))
					}
				}
			}
			d.Close()
			if hs := h.Stats(); hs.Corruptions != 0 || hs.DoubleFrees != 0 || hs.LiveObjects != 0 {
				problems = append(problems, fmt.Sprintf(
					"heap: corruptions=%d doubleFrees=%d live=%d", hs.Corruptions, hs.DoubleFrees, hs.LiveObjects))
			}
			if len(problems) > 0 {
				sort.Strings(problems)
				return fmt.Errorf("%v", problems)
			}
			return nil
		}
		return threads, check
	}
}

// popL/popR/pushL/pushR build scripts.
func popL() dequeOp          { return dequeOp{left: true} }
func popR() dequeOp          { return dequeOp{} }
func pushR(v uint64) dequeOp { return dequeOp{push: true, value: v} }
func pushL(v uint64) dequeOp { return dequeOp{push: true, left: true, value: v} }

// snarkScenarios enumerates small near-empty scenarios — the neighbourhood
// of the Doherty et al. (SPAA 2004) races in the published algorithm.
func snarkScenarios(claiming bool) map[string]Scenario {
	return map[string]Scenario{
		"2elem popL+popR": snarkScenario(
			[]uint64{1, 2},
			[][]dequeOp{{popL()}, {popR()}},
			claiming),
		"1elem popL+popR": snarkScenario(
			[]uint64{1},
			[][]dequeOp{{popL()}, {popR()}},
			claiming),
		"1elem popL+popR+pushR": snarkScenario(
			[]uint64{1},
			[][]dequeOp{{popL()}, {popR()}, {pushR(2)}},
			claiming),
		"popL+pushLpopL": snarkScenario(
			[]uint64{1},
			[][]dequeOp{{popL()}, {pushL(2), popL()}},
			claiming),
		"2elem popLpopL+popR": snarkScenario(
			[]uint64{1, 2},
			[][]dequeOp{{popL(), popL()}, {popR()}},
			claiming),
	}
}

// TestSnarkMemorySafetyUnderExploration verifies the LFRC guarantees — no
// corruption, no double free, no leak — over every explored schedule of
// every scenario, for both deque variants. Memory safety is the paper's
// contribution and must hold regardless of the algorithm's value-level
// races.
func TestSnarkMemorySafetyUnderExploration(t *testing.T) {
	for _, claiming := range []bool{false, true} {
		for name, s := range snarkScenarios(claiming) {
			res := RunDFS(s, 2, 4_000, 100_000)
			// Value anomalies are assessed in the test below; here only
			// heap-integrity problems fail.
			if res.FirstError != nil {
				msg := res.FirstError.Error()
				if containsHeapProblem(msg) {
					t.Errorf("claiming=%v %q: heap violation: %v (trace %v)",
						claiming, name, res.FirstError, res.FirstViolation)
				}
			}
			t.Logf("claiming=%v %q: %d schedules explored, %d value anomalies",
				claiming, name, res.Runs, res.Violations)
		}
	}
}

func containsHeapProblem(msg string) bool {
	for _, bad := range []string{"corruptions=", "doubleFrees=", "live="} {
		idx := 0
		for idx < len(msg) {
			j := idx + len(bad)
			if j <= len(msg) && msg[idx:j] == bad {
				// "corruptions=0" is fine; any nonzero digit right after is not.
				if j < len(msg) && msg[j] != '0' {
					return true
				}
			}
			idx++
		}
	}
	return false
}

// TestClaimingDequeExactUnderExploration asserts that with value claiming
// no explored schedule can double-deliver a value, and logs whether the
// published (non-claiming) algorithm exhibits its historical races at this
// preemption bound.
func TestClaimingDequeExactUnderExploration(t *testing.T) {
	for name, s := range snarkScenarios(true) {
		res := RunDFS(s, 2, 4_000, 100_000)
		if res.Violations != 0 {
			t.Errorf("claiming deque %q: %d anomalies, first: %v (trace %v)",
				name, res.Violations, res.FirstError, res.FirstViolation)
		}
	}

	totalRuns, totalViolations := 0, 0
	for name, s := range snarkScenarios(false) {
		res := RunDFS(s, 2, 4_000, 100_000)
		totalRuns += res.Runs
		totalViolations += res.Violations
		if res.Violations > 0 {
			t.Logf("published Snark %q: %d/%d schedules anomalous; first: %v",
				name, res.Violations, res.Runs, res.FirstError)
		}
	}
	t.Logf("published Snark total: %d anomalies across %d explored schedules (<=2 preemptions)",
		totalViolations, totalRuns)
}
