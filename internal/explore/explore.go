// Package explore is a controlled-concurrency test harness: it serializes a
// small group of threads and drives every context switch itself, so that
// interleavings of the LFRC algorithms can be searched systematically
// instead of sampled by the Go scheduler.
//
// The preemption points are exactly the shared-memory operations: the
// harness wraps the DCAS engine so that every Read/Write/CAS/DCAS yields to
// the scheduler first. Since all shared state in this repository is accessed
// through an engine, engine-operation granularity captures every observable
// interleaving of the algorithms — the same granularity a model checker of
// the paper's pseudocode would use.
//
// Two search modes are provided:
//
//   - RunRandom: many runs under seeded random schedulers (uniform or
//     sticky), good for fast smoke coverage;
//   - RunDFS: exhaustive enumeration of schedules with a bounded number of
//     preemptions (in the spirit of Musuvathi & Qadeer's CHESS), which is
//     complete for small scenarios at the chosen bound.
//
// A Scenario builds a fresh system for each run and returns the thread
// bodies plus a post-run validator; a violation is any run whose validator
// fails, and the offending schedule trace is returned for replay.
package explore

import (
	"fmt"
	"math/rand"

	"lfrc/internal/dcas"
	"lfrc/internal/mem"
)

// SUT is a system under test: either a Scenario (preemption points at
// engine-operation granularity — right for algorithms built *on* an engine)
// or a CellScenario (preemption points at cell granularity — fine enough to
// interleave the internal steps of the software MCAS engine itself).
type SUT interface {
	build(yield func()) (threads []func(), check func() error)
}

// Scenario builds one fresh instance of a system under test. The supplied
// instrument function must wrap the scenario's DCAS engine; every engine
// operation then becomes a scheduling point. The returned check runs after
// all threads finish (single-threaded) and reports a property violation.
type Scenario func(instrument func(dcas.Engine) dcas.Engine) (threads []func(), check func() error)

func (s Scenario) build(yield func()) ([]func(), func() error) {
	return s(func(e dcas.Engine) dcas.Engine {
		return &instrumentedEngine{inner: e, yield: yield}
	})
}

// CellScenario builds a system whose *memory cells* are instrumented, so
// every single Load/Store/CAS — including those inside an engine's helping
// protocol — is a scheduling point.
type CellScenario func(instrument func(dcas.CellStore) dcas.CellStore) (threads []func(), check func() error)

func (s CellScenario) build(yield func()) ([]func(), func() error) {
	return s(func(cs dcas.CellStore) dcas.CellStore {
		return &instrumentedCells{inner: cs, yield: yield}
	})
}

// instrumentedCells yields to the scheduler before every cell operation.
type instrumentedCells struct {
	inner dcas.CellStore
	yield func()
}

var _ dcas.CellStore = (*instrumentedCells)(nil)

func (c *instrumentedCells) Load(a mem.Addr) uint64 {
	c.yield()
	return c.inner.Load(a)
}

func (c *instrumentedCells) Store(a mem.Addr, v uint64) {
	c.yield()
	c.inner.Store(a, v)
}

func (c *instrumentedCells) CAS(a mem.Addr, old, new uint64) bool {
	c.yield()
	return c.inner.CAS(a, old, new)
}

// Result summarizes one exploration.
type Result struct {
	// Runs is the number of schedules executed.
	Runs int

	// Violations is the number of runs whose check failed.
	Violations int

	// FirstViolation, when Violations > 0, holds the failing schedule's
	// trace (sequence of thread ids granted) and the check error.
	FirstViolation []int
	FirstError     error

	// Incomplete counts runs aborted by the step cap (livelock guard).
	Incomplete int
}

// instrumentedEngine yields to the scheduler before every operation.
type instrumentedEngine struct {
	inner dcas.Engine
	yield func()
}

var _ dcas.Engine = (*instrumentedEngine)(nil)

func (e *instrumentedEngine) Name() string { return e.inner.Name() + "+explore" }

func (e *instrumentedEngine) Read(a mem.Addr) uint64 {
	e.yield()
	return e.inner.Read(a)
}

func (e *instrumentedEngine) Write(a mem.Addr, v uint64) {
	e.yield()
	e.inner.Write(a, v)
}

func (e *instrumentedEngine) CAS(a mem.Addr, old, new uint64) bool {
	e.yield()
	return e.inner.CAS(a, old, new)
}

func (e *instrumentedEngine) DCAS(a0, a1 mem.Addr, old0, old1, new0, new1 uint64) bool {
	e.yield()
	return e.inner.DCAS(a0, a1, old0, old1, new0, new1)
}

// picker chooses the next thread to step. runnable is non-empty and sorted;
// cur is the previously running thread (-1 initially; may not be runnable).
type picker func(runnable []int, cur int) int

// schedEvent is a thread's announcement: parked at a yield point, or done.
type schedEvent struct {
	tid  int
	done bool
}

// runOnce executes the scenario under the given picker, returning the
// schedule trace, whether every thread completed within maxSteps, and the
// check error (nil if check passed or the run was incomplete).
func runOnce(s SUT, pick picker, maxSteps int) (trace []int, completed bool, checkErr error) {
	events := make(chan schedEvent)
	var grants []chan struct{}
	cur := -1
	// active gates the yield points: scenario construction and the final
	// check run on this goroutine with no scheduler behind them, so
	// yields must be inert outside the scheduled phase. All transitions
	// are ordered by the grant/event channels.
	active := false

	yield := func() {
		if !active {
			return
		}
		// Only the single running thread executes here, and the
		// scheduler is blocked waiting for its event, so reading cur is
		// race-free — but it must be captured *before* the send: the
		// moment the event is received the scheduler may grant another
		// thread and overwrite cur.
		tid := cur
		events <- schedEvent{tid: tid}
		<-grants[tid]
	}
	threads, check := s.build(yield)
	n := len(threads)
	grants = make([]chan struct{}, n)
	for i := range grants {
		grants[i] = make(chan struct{})
	}

	parked := make([]bool, n)
	done := make([]bool, n)
	active = true
	for i := range threads {
		go func(i int) {
			<-grants[i] // wait for the first grant before touching anything
			threads[i]()
			events <- schedEvent{tid: i, done: true}
		}(i)
	}
	// All threads are initially parked at their birth grant.
	for i := range parked {
		parked[i] = true
	}

	live := n
	for live > 0 {
		if len(trace) >= maxSteps {
			// Livelock guard: release everything and drain.
			releaseAll(grants, parked, done, events, &live)
			active = false
			return trace, false, nil
		}
		var runnable []int
		for i := 0; i < n; i++ {
			if parked[i] && !done[i] {
				runnable = append(runnable, i)
			}
		}
		t := pick(runnable, cur)
		trace = append(trace, t)
		parked[t] = false
		cur = t
		grants[t] <- struct{}{}
		ev := <-events
		if ev.done {
			done[ev.tid] = true
			live--
		} else {
			parked[ev.tid] = true
		}
	}
	active = false
	return trace, true, check()
}

// releaseAll ends an aborted run by letting every remaining thread run to
// completion one at a time.
func releaseAll(grants []chan struct{}, parked, done []bool, events chan schedEvent, live *int) {
	for *live > 0 {
		for i := range grants {
			if parked[i] && !done[i] {
				parked[i] = false
				grants[i] <- struct{}{}
				ev := <-events
				if ev.done {
					done[ev.tid] = true
					*live--
				} else {
					parked[ev.tid] = true
				}
				break
			}
		}
	}
}

// RunRandom explores the scenario under `runs` seeded random schedules.
// sticky > 0 keeps the current thread running with probability
// sticky/(sticky+1), producing long runs punctuated by preemptions (usually
// more effective than uniform switching).
func RunRandom(s SUT, runs int, sticky int, maxSteps int) Result {
	var res Result
	for seed := 0; seed < runs; seed++ {
		rng := rand.New(rand.NewSource(int64(seed) + 1))
		pick := func(runnable []int, cur int) int {
			if sticky > 0 && cur >= 0 && rng.Intn(sticky+1) != 0 {
				for _, t := range runnable {
					if t == cur {
						return t
					}
				}
			}
			return runnable[rng.Intn(len(runnable))]
		}
		trace, completed, err := runOnce(s, pick, maxSteps)
		res.Runs++
		if !completed {
			res.Incomplete++
			continue
		}
		if err != nil {
			res.Violations++
			if res.FirstViolation == nil {
				res.FirstViolation = trace
				res.FirstError = err
			}
		}
	}
	return res
}

// Replay executes the scenario under a recorded schedule trace (running the
// lowest-numbered runnable thread once the trace is exhausted) and returns
// the check error.
func Replay(s SUT, trace []int, maxSteps int) error {
	i := 0
	pick := func(runnable []int, cur int) int {
		if i < len(trace) {
			t := trace[i]
			i++
			for _, r := range runnable {
				if r == t {
					return t
				}
			}
		}
		return runnable[0]
	}
	_, completed, err := runOnce(s, pick, maxSteps)
	if !completed {
		return fmt.Errorf("explore: replay exceeded %d steps", maxSteps)
	}
	return err
}

// RunDFS exhaustively explores all schedules with at most maxPreemptions
// context switches away from the default run-to-completion order, up to
// maxRuns runs. A preemption is a switch to a different thread at a point
// where the current thread is still runnable.
func RunDFS(s SUT, maxPreemptions, maxRuns, maxSteps int) Result {
	var res Result

	// frontier holds schedule prefixes (each a list of forced choices)
	// still to be explored, paired with their preemption budgets.
	type job struct {
		prefix []int
		budget int
	}
	frontier := []job{{budget: maxPreemptions}}

	for len(frontier) > 0 && res.Runs < maxRuns {
		j := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]

		// Execute: follow the prefix, then default policy (stay on the
		// current thread while runnable, else lowest id). Record the
		// choice points so children can be generated.
		type choicePoint struct {
			step     int
			runnable []int
			chose    int
			curAlive bool
		}
		var points []choicePoint
		i := 0
		pick := func(runnable []int, cur int) int {
			var t int
			if i < len(j.prefix) {
				t = j.prefix[i]
				ok := false
				for _, r := range runnable {
					if r == t {
						ok = true
					}
				}
				if !ok {
					t = runnable[0]
				}
			} else {
				t = runnable[0]
				curAlive := false
				for _, r := range runnable {
					if r == cur {
						curAlive = true
						t = cur
						break
					}
				}
				points = append(points, choicePoint{
					step:     i,
					runnable: append([]int(nil), runnable...),
					chose:    t,
					curAlive: curAlive,
				})
			}
			i++
			return t
		}
		trace, completed, err := runOnce(s, pick, maxSteps)
		res.Runs++
		if !completed {
			res.Incomplete++
			continue
		}
		if err != nil {
			res.Violations++
			if res.FirstViolation == nil {
				res.FirstViolation = trace
				res.FirstError = err
			}
			continue
		}
		// Generate children: at every default-policy choice point,
		// branch to each alternative thread. Branching away from a
		// still-runnable current thread costs one preemption.
		for _, cp := range points {
			for _, alt := range cp.runnable {
				if alt == cp.chose {
					continue
				}
				cost := 0
				if cp.curAlive {
					cost = 1
				}
				if j.budget-cost < 0 {
					continue
				}
				child := make([]int, cp.step+1)
				copy(child, trace[:cp.step])
				child[cp.step] = alt
				frontier = append(frontier, job{prefix: child, budget: j.budget - cost})
			}
		}
	}
	return res
}
