package explore

import (
	"fmt"
	"testing"

	"lfrc/internal/dcas"
	"lfrc/internal/mem"
)

// This file model-checks the software MCAS engine itself: the CellScenario
// instrumentation interleaves every *internal* Load/Store/CAS of the
// RDCSS/MCAS protocol, so the preemption-bounded DFS exercises descriptor
// installation, helping, and removal at every explored switch point. The
// oracle is permutation-based: because the engine's operations must be
// linearizable and every thread runs exactly one (or two sequential)
// operations, the observed (results, final cells) must equal the outcome of
// SOME sequential order of the operations.

// memOp is one engine operation a thread performs.
type memOp struct {
	kind             int // 0 = CAS, 1 = DCAS, 2 = Read, 3 = Write, 4 = 3-word NCAS
	a0, a1, a2       int // cell indices
	old0, old1, old2 uint64
	new0, new1, new2 uint64
}

// applySeq runs an op sequentially against a model memory, returning the
// boolean outcome (CAS/DCAS) or the value read (Read; reported via val).
func (op memOp) applySeq(cells []uint64) (ok bool, val uint64) {
	switch op.kind {
	case 0:
		if cells[op.a0] == op.old0 {
			cells[op.a0] = op.new0
			return true, 0
		}
		return false, 0
	case 1:
		if cells[op.a0] == op.old0 && cells[op.a1] == op.old1 {
			cells[op.a0] = op.new0
			cells[op.a1] = op.new1
			return true, 0
		}
		return false, 0
	case 2:
		return true, cells[op.a0]
	case 4:
		if cells[op.a0] == op.old0 && cells[op.a1] == op.old1 && cells[op.a2] == op.old2 {
			cells[op.a0] = op.new0
			cells[op.a1] = op.new1
			cells[op.a2] = op.new2
			return true, 0
		}
		return false, 0
	default:
		cells[op.a0] = op.new0
		return true, 0
	}
}

// outcome captures one run's observable behaviour.
type outcome struct {
	results string // per-thread op results, encoded
	final   string // final cell values, encoded
}

// legalOutcomes enumerates every interleaving-as-permutation of the threads'
// op streams (respecting per-thread order) and collects the legal outcomes.
func legalOutcomes(nCells int, threads [][]memOp) map[outcome]bool {
	legal := map[outcome]bool{}
	idx := make([]int, len(threads))
	results := make([][]string, len(threads))
	for i := range results {
		results[i] = make([]string, len(threads[i]))
	}
	cells := make([]uint64, nCells)

	var rec func()
	rec = func() {
		doneAll := true
		for t := range threads {
			if idx[t] < len(threads[t]) {
				doneAll = false
				// Take thread t's next op.
				op := threads[t][idx[t]]
				saved := append([]uint64(nil), cells...)
				ok, val := op.applySeq(cells)
				results[t][idx[t]] = fmt.Sprint(ok, val)
				idx[t]++
				rec()
				idx[t]--
				copy(cells, saved)
			}
		}
		if doneAll {
			legal[outcome{results: fmt.Sprint(results), final: fmt.Sprint(cells)}] = true
		}
	}
	rec()
	return legal
}

// mcasCellScenario builds the engine over instrumented cells and runs the
// threads' op streams, checking the observed outcome against the oracle.
func mcasCellScenario(nCells int, threads [][]memOp, legal map[outcome]bool) CellScenario {
	return func(instrument func(dcas.CellStore) dcas.CellStore) ([]func(), func() error) {
		h := mem.NewHeap()
		id := h.MustRegisterType(mem.TypeDesc{Name: "cells", NumFields: nCells})
		r := h.MustAlloc(id)
		addr := make([]mem.Addr, nCells)
		for i := range addr {
			addr[i] = h.FieldAddr(r, i)
		}
		e := dcas.NewMCAS(instrument(h), dcas.WithPoolSize(8))

		results := make([][]string, len(threads))
		for i := range results {
			results[i] = make([]string, len(threads[i]))
		}
		bodies := make([]func(), len(threads))
		for t, ops := range threads {
			t, ops := t, ops
			bodies[t] = func() {
				for i, op := range ops {
					var ok bool
					var val uint64
					switch op.kind {
					case 0:
						ok = e.CAS(addr[op.a0], op.old0, op.new0)
					case 1:
						ok = e.DCAS(addr[op.a0], addr[op.a1], op.old0, op.old1, op.new0, op.new1)
					case 2:
						ok, val = true, e.Read(addr[op.a0])
					case 4:
						ok = e.NCAS(
							[]mem.Addr{addr[op.a0], addr[op.a1], addr[op.a2]},
							[]uint64{op.old0, op.old1, op.old2},
							[]uint64{op.new0, op.new1, op.new2})
					default:
						ok = true
						e.Write(addr[op.a0], op.new0)
					}
					results[t][i] = fmt.Sprint(ok, val)
				}
			}
		}
		check := func() error {
			final := make([]uint64, nCells)
			for i := range final {
				final[i] = e.Read(addr[i])
			}
			got := outcome{results: fmt.Sprint(results), final: fmt.Sprint(final)}
			if !legal[got] {
				return fmt.Errorf("outcome %+v not in the %d legal sequential outcomes", got, len(legal))
			}
			return nil
		}
		return bodies, check
	}
}

// checkMCASLinearizable explores the scenario and fails on any outcome
// outside the sequential-oracle set.
func checkMCASLinearizable(t *testing.T, name string, nCells int, threads [][]memOp, preemptions, maxRuns int) {
	t.Helper()
	legal := legalOutcomes(nCells, threads)
	s := mcasCellScenario(nCells, threads, legal)
	res := RunDFS(s, preemptions, maxRuns, 100_000)
	if res.Violations != 0 {
		t.Errorf("%s: %d non-linearizable outcomes in %d schedules; first: %v (trace %v)",
			name, res.Violations, res.Runs, res.FirstError, res.FirstViolation)
	}
	if res.Incomplete != 0 {
		t.Errorf("%s: %d runs hit the step cap (livelock?)", name, res.Incomplete)
	}
	t.Logf("%s: %d schedules explored, %d legal outcomes, all conform", name, res.Runs, len(legal))
}

func cas(a int, old, new uint64) memOp { return memOp{kind: 0, a0: a, old0: old, new0: new} }
func read(a int) memOp                 { return memOp{kind: 2, a0: a} }
func write(a int, v uint64) memOp      { return memOp{kind: 3, a0: a, new0: v} }
func dcasOp(a0, a1 int, o0, o1, n0, n1 uint64) memOp {
	return memOp{kind: 1, a0: a0, a1: a1, old0: o0, old1: o1, new0: n0, new1: n1}
}

func TestMCASModelCheckCompetingDCAS(t *testing.T) {
	checkMCASLinearizable(t, "two DCAS same cells", 2, [][]memOp{
		{dcasOp(0, 1, 0, 0, 1, 1)},
		{dcasOp(0, 1, 0, 0, 2, 2)},
	}, 3, 50_000)
}

func TestMCASModelCheckDCASvsCAS(t *testing.T) {
	checkMCASLinearizable(t, "DCAS vs CAS on shared cell", 2, [][]memOp{
		{dcasOp(0, 1, 0, 0, 1, 1)},
		{cas(1, 0, 5)},
	}, 3, 50_000)
}

func TestMCASModelCheckChainedOverlap(t *testing.T) {
	checkMCASLinearizable(t, "chained DCAS overlap", 3, [][]memOp{
		{dcasOp(0, 1, 0, 0, 1, 1)},
		{dcasOp(1, 2, 1, 0, 2, 2)},
	}, 3, 50_000)
}

func TestMCASModelCheckReaderDuringDCAS(t *testing.T) {
	checkMCASLinearizable(t, "reader during DCAS", 2, [][]memOp{
		{dcasOp(0, 1, 0, 0, 7, 7)},
		{read(0), read(1)},
	}, 3, 50_000)
}

func TestMCASModelCheckWriterInterference(t *testing.T) {
	checkMCASLinearizable(t, "writer vs DCAS", 2, [][]memOp{
		{dcasOp(0, 1, 0, 0, 1, 1)},
		{write(0, 9)},
	}, 2, 50_000)
}

func TestMCASModelCheckThreeWay(t *testing.T) {
	checkMCASLinearizable(t, "three-way contention", 2, [][]memOp{
		{dcasOp(0, 1, 0, 0, 1, 1)},
		{dcasOp(0, 1, 0, 0, 2, 2)},
		{cas(0, 0, 3)},
	}, 2, 60_000)
}

// ncas3 is a three-word NCAS op (kind 4).
func ncas3(a0, a1, a2 int, o [3]uint64, n [3]uint64) memOp {
	return memOp{kind: 4, a0: a0, a1: a1, a2: a2, old0: o[0], old1: o[1], old2: o[2],
		new0: n[0], new1: n[1], new2: n[2]}
}

func TestMCASModelCheckThreeWordNCAS(t *testing.T) {
	checkMCASLinearizable(t, "3-word NCAS vs DCAS", 3, [][]memOp{
		{ncas3(0, 1, 2, [3]uint64{0, 0, 0}, [3]uint64{1, 1, 1})},
		{dcasOp(1, 2, 0, 0, 2, 2)},
	}, 2, 60_000)
}

func TestMCASModelCheckTwoThreeWordNCAS(t *testing.T) {
	checkMCASLinearizable(t, "competing 3-word NCAS", 3, [][]memOp{
		{ncas3(0, 1, 2, [3]uint64{0, 0, 0}, [3]uint64{1, 1, 1})},
		{ncas3(0, 1, 2, [3]uint64{0, 0, 0}, [3]uint64{2, 2, 2})},
	}, 2, 60_000)
}
