package census

import "sort"

// TypeDelta is one type's growth between two snapshots.
type TypeDelta struct {
	Name string `json:"name"`

	// Objects and Bytes are (to - from) for the type's live population;
	// UnreachableBytes is the growth of its unreachable share.
	Objects          int64 `json:"objects"`
	Bytes            int64 `json:"bytes"`
	UnreachableBytes int64 `json:"unreachable_bytes"`
}

// Delta is the difference between two snapshots: per-type growth and
// newly-appeared cycles. It is what lfrcbench -census and chaos mode use to
// turn "the heap got bigger" into "these types grew and these cycles are
// new".
type Delta struct {
	FromTS int64 `json:"from_ts"`
	ToTS   int64 `json:"to_ts"`

	LiveObjects        int64 `json:"live_objects"`
	LiveBytes          int64 `json:"live_bytes"`
	UnreachableObjects int64 `json:"unreachable_objects"`
	UnreachableBytes   int64 `json:"unreachable_bytes"`
	LimboObjects       int64 `json:"limbo_objects"`

	// NewCycles counts cycles present in the newer snapshot whose key does
	// not appear in the older one; NewCycleBytes sums their member bytes.
	// Keys are hashes of member refs, so a cycle that persists across both
	// snapshots is not "new" even if other heap traffic moved around it.
	NewCycles     int64 `json:"new_cycles"`
	NewCycleBytes int64 `json:"new_cycle_bytes"`

	// Types lists every type whose population changed, largest |Bytes|
	// first.
	Types []TypeDelta `json:"types"`
}

// Diff computes to - from.
func Diff(from, to *Snapshot) Delta {
	d := Delta{
		FromTS:             from.TS,
		ToTS:               to.TS,
		LiveObjects:        to.LiveObjects - from.LiveObjects,
		LiveBytes:          to.LiveBytes - from.LiveBytes,
		UnreachableObjects: to.Unreachable.Objects - from.Unreachable.Objects,
		UnreachableBytes:   to.Unreachable.Bytes - from.Unreachable.Bytes,
		LimboObjects:       to.Limbo.Objects - from.Limbo.Objects,
	}

	old := map[string]bool{}
	for _, c := range from.Cycles {
		old[c.Key] = true
	}
	for _, c := range to.Cycles {
		if !old[c.Key] {
			d.NewCycles++
			d.NewCycleBytes += c.Bytes
		}
	}

	prev := map[string]TypeStat{}
	for _, t := range from.Types {
		prev[t.Name] = t
	}
	seen := map[string]bool{}
	for _, t := range to.Types {
		seen[t.Name] = true
		p := prev[t.Name]
		td := TypeDelta{
			Name:             t.Name,
			Objects:          t.Objects - p.Objects,
			Bytes:            t.Bytes - p.Bytes,
			UnreachableBytes: t.UnreachableBytes - p.UnreachableBytes,
		}
		if td.Objects != 0 || td.Bytes != 0 || td.UnreachableBytes != 0 {
			d.Types = append(d.Types, td)
		}
	}
	for _, t := range from.Types {
		if !seen[t.Name] {
			d.Types = append(d.Types, TypeDelta{
				Name:             t.Name,
				Objects:          -t.Objects,
				Bytes:            -t.Bytes,
				UnreachableBytes: -t.UnreachableBytes,
			})
		}
	}
	sort.Slice(d.Types, func(a, b int) bool {
		av, bv := abs64(d.Types[a].Bytes), abs64(d.Types[b].Bytes)
		if av != bv {
			return av > bv
		}
		return d.Types[a].Name < d.Types[b].Name
	})
	return d
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
