// Package census takes on-demand whole-heap object-graph snapshots.
//
// Reference counting's classic blind spot is cyclic garbage: a cycle's counts
// never reach zero, so LFRC (PAPER.md §7) can never free it, and the sampled
// lifecycle auditor can only flag *candidates* from its 1-in-N ledger. The
// census is the ground truth the auditor lacks. It walks every allocated
// block (the heap knows each block's TypeID, and mem.TypeDesc.PtrFields gives
// the pointer layout), reads each pointer field through a side-effect-free
// load, and materializes the full reference graph plus per-object stored
// counts. From the graph it computes:
//
//   - reachability from the declared roots (collection anchors, plus any
//     extra roots the caller registers),
//   - unreachable-but-counted strongly connected components — cycle leaks,
//     with member lists and retained bytes,
//   - stored-RC vs. actual-in-edge mismatches, the per-object form of the
//     quiescent Audit,
//   - per-type retained-size attribution.
//
// The census is strictly read-only: every cell access is a plain atomic load
// (never an engine read, which would help — i.e. mutate — in-flight MCAS
// operations), it frees nothing and retains nothing. Taken while mutators
// run it is race-clean and internally consistent per cell, but edges and
// counts are a moving target; quiescent snapshots are exact.
//
// Husks parked by deferred reclamation — the epoch backend's limbo bins, the
// lfrc backend's budget-parked zombie stack — are live blocks with a zero
// stored count. They are classified "limbo", not leaked: they are already on
// a path to the allocator and merely awaiting a drain. Objects only such
// husks still pin (the lfrc backend parks zombies with fields intact) are
// limbo too.
package census

import (
	"time"

	"lfrc/internal/mem"
)

// SchemaVersion identifies the Snapshot JSON schema. Bump it on any change
// to the key set; the golden test locks the current shape.
const SchemaVersion = 1

// Default caps on snapshot list lengths; counts always stay exact.
const (
	DefaultMaxCycles       = 64
	DefaultMaxCycleObjects = 32
	DefaultMaxMismatches   = 64
)

// Root is one declared reachability root.
type Root struct {
	// Ref is the root object.
	Ref uint32 `json:"ref"`

	// Name labels the structure kind that anchored it ("deque", "queue",
	// "stack", "set", "extra" for caller-registered roots).
	Name string `json:"name"`

	// Count is the number of registrations (external handles) holding it.
	Count int64 `json:"count"`
}

// Config describes how to take a snapshot.
type Config struct {
	// Heap is the arena to walk.
	Heap *mem.Heap

	// Read loads one heap cell without side effects (core.RC.SnapshotRead):
	// a plain atomic load that never helps an in-flight engine operation,
	// reporting descriptor-tagged cells as 0 after a bounded retry.
	Read func(mem.Addr) uint64

	// Decode interprets a raw pointer-cell word as (referent, count weight)
	// under the system's RC strategy (core.RC.DecodeLink): figure2 stores
	// bare refs at weight 1, split packs a weight stash beside the ref and
	// the stored count equals the weighted in-edge sum. Nil means the
	// bare-ref reading.
	Decode func(u uint64) (mem.Ref, int64)

	// Roots are the reachability roots, keyed by ref.
	Roots map[uint32]Root

	// Backend names the reclamation backend, recorded in the snapshot.
	Backend string

	// MaxCycles, MaxCycleObjects and MaxMismatches cap the snapshot's list
	// lengths (0 = package default). Aggregate counts are always exact.
	MaxCycles       int
	MaxCycleObjects int
	MaxMismatches   int
}

// Bucket is an (objects, bytes) pair for one reachability class.
type Bucket struct {
	Objects int64 `json:"objects"`
	Bytes   int64 `json:"bytes"`
}

// Object identifies one heap object in a snapshot list.
type Object struct {
	Ref  uint32 `json:"ref"`
	Type string `json:"type"`
	RC   uint64 `json:"rc"`
}

// Cycle is one unreachable-but-counted strongly connected component: garbage
// LFRC can never free on its own (only the backup tracing collector can).
type Cycle struct {
	// Key identifies the cycle across snapshots (a hash of the sorted
	// member refs); the diff uses it to tell new cycles from persisting
	// ones.
	Key string `json:"key"`

	// Size and Bytes cover the SCC members themselves (exact).
	Size  int64 `json:"size"`
	Bytes int64 `json:"bytes"`

	// RetainedObjects and RetainedBytes additionally count the unreachable
	// non-limbo garbage the cycle pins — everything that would become
	// collectable if the cycle were broken. Cycles reachable from one
	// another attribute shared downstream garbage to each.
	RetainedObjects int64 `json:"retained_objects"`
	RetainedBytes   int64 `json:"retained_bytes"`

	// Objects lists the members in address order, capped at
	// MaxCycleObjects; Truncated reports whether the cap bit.
	Objects   []Object `json:"objects"`
	Truncated bool     `json:"truncated"`
}

// Mismatch is one object whose stored reference count disagrees with its
// actual in-edges plus root registrations. At quiescence any mismatch is a
// count bug (the per-object form of a failed Audit); while mutators run,
// in-flight operations produce transient ones.
type Mismatch struct {
	Ref      uint32 `json:"ref"`
	Type     string `json:"type"`
	Stored   uint64 `json:"stored"`
	Expected int64  `json:"expected"`
	Class    string `json:"class"` // reachable | unreachable | limbo
}

// TypeStat is per-type retained-size attribution.
type TypeStat struct {
	Name string `json:"name"`

	// Objects and Bytes cover every live object of the type.
	Objects int64 `json:"objects"`
	Bytes   int64 `json:"bytes"`

	ReachableObjects   int64 `json:"reachable_objects"`
	ReachableBytes     int64 `json:"reachable_bytes"`
	UnreachableObjects int64 `json:"unreachable_objects"`
	UnreachableBytes   int64 `json:"unreachable_bytes"`
	LimboObjects       int64 `json:"limbo_objects"`
	LimboBytes         int64 `json:"limbo_bytes"`
}

// Snapshot is one whole-heap census.
type Snapshot struct {
	SchemaVersion int    `json:"schema_version"`
	TS            int64  `json:"ts"`
	Backend       string `json:"backend"`

	// WallNS is how long the census took (experiment O5's cost metric).
	WallNS int64 `json:"wall_ns"`

	// Roots lists the declared roots, in ref order.
	Roots []Root `json:"roots"`

	// LiveObjects/LiveBytes count every live block; FreedSlots counts
	// carved-but-freed slots awaiting reuse.
	LiveObjects int64 `json:"live_objects"`
	LiveBytes   int64 `json:"live_bytes"`
	FreedSlots  int64 `json:"freed_slots"`

	// Edges counts materialized pointer edges between live objects;
	// DanglingEdges counts pointer fields naming a non-live target (freed
	// mid-walk, mid-reuse, or descriptor-suppressed — expected to be zero
	// at quiescence).
	Edges         int64 `json:"edges"`
	DanglingEdges int64 `json:"dangling_edges"`

	// Reachable / Unreachable / Limbo partition the live objects.
	// Unreachable is true garbage the mutator can no longer release
	// (cycle members and what they pin); Limbo is deferred-reclamation
	// husks and what those pin — already headed to the allocator.
	Reachable   Bucket `json:"reachable"`
	Unreachable Bucket `json:"unreachable"`
	Limbo       Bucket `json:"limbo"`

	// Cycle aggregates are exact; Cycles lists the largest (by retained
	// bytes), capped at MaxCycles.
	CycleCount   int64   `json:"cycle_count"`
	CycleObjects int64   `json:"cycle_objects"`
	CycleBytes   int64   `json:"cycle_bytes"`
	Cycles       []Cycle `json:"cycles"`

	// RCMismatchCount is exact; RCMismatches is capped at MaxMismatches.
	RCMismatchCount int64      `json:"rc_mismatch_count"`
	RCMismatches    []Mismatch `json:"rc_mismatches"`

	// Types is the per-type attribution, largest Bytes first.
	Types []TypeStat `json:"types"`

	// g retains the materialized graph for the DOT export; it is not
	// serialized, so a Snapshot decoded from JSON cannot render DOT.
	g *graph

	// cycleByType aggregates cycle members per type name (exact, before
	// list caps) for the pprof export's "cycle leak" class.
	cycleByType    map[string]Bucket
	cycleTypeOrder []string
}

// graph is the materialized object graph a snapshot was computed from.
type graph struct {
	heap  *mem.Heap
	nodes []node
	index map[uint32]int32 // ref -> nodes index
}

// node classes, in verdict order.
const (
	classReachable = iota
	classUnreachable
	classLimbo
)

func className(c uint8) string {
	switch c {
	case classReachable:
		return "reachable"
	case classUnreachable:
		return "unreachable"
	default:
		return "limbo"
	}
}

type node struct {
	ref   uint32
	typ   mem.TypeID
	words int32
	rc    uint64
	edges []int32 // out-neighbor node indices
	in    int32   // in-edge count (self-edges included)
	inw   int64   // weighted in-edge sum (== in under figure2)
	class uint8
	root  bool
}

func (n *node) bytes() int64 { return int64(n.words) * 8 }

// Take captures one census.
func Take(cfg Config) *Snapshot {
	start := time.Now()
	s := &Snapshot{
		SchemaVersion: SchemaVersion,
		TS:            start.UnixNano(),
		Backend:       cfg.Backend,
	}
	if cfg.MaxCycles == 0 {
		cfg.MaxCycles = DefaultMaxCycles
	}
	if cfg.MaxCycleObjects == 0 {
		cfg.MaxCycleObjects = DefaultMaxCycleObjects
	}
	if cfg.MaxMismatches == 0 {
		cfg.MaxMismatches = DefaultMaxMismatches
	}

	g := materialize(cfg, s)
	s.g = g
	classify(cfg, s, g)
	findCycles(cfg, s, g)
	findMismatches(cfg, s, g)
	attributeTypes(cfg, s, g)

	s.WallNS = time.Since(start).Nanoseconds()
	return s
}

// materialize walks the heap and builds the node table and edge lists.
func materialize(cfg Config, s *Snapshot) *graph {
	decode := cfg.Decode
	if decode == nil {
		decode = func(u uint64) (mem.Ref, int64) {
			if u == 0 {
				return 0, 0
			}
			return mem.Ref(u), 1
		}
	}
	g := &graph{heap: cfg.Heap, index: make(map[uint32]int32)}
	cfg.Heap.WalkBlocks(func(b mem.Block) bool {
		if b.Freed {
			s.FreedSlots++
			return true
		}
		g.index[uint32(b.Ref)] = int32(len(g.nodes))
		g.nodes = append(g.nodes, node{
			ref:   uint32(b.Ref),
			typ:   b.Type,
			words: int32(b.Size),
			rc:    cfg.Read(cfg.Heap.RCAddr(b.Ref)),
		})
		return true
	})
	s.LiveObjects = int64(len(g.nodes))

	for i := range g.nodes {
		n := &g.nodes[i]
		s.LiveBytes += n.bytes()
		d, err := cfg.Heap.Type(n.typ)
		if err != nil {
			continue
		}
		for _, f := range d.PtrFields {
			v := cfg.Read(cfg.Heap.FieldAddr(mem.Ref(n.ref), f))
			if v == 0 {
				continue
			}
			child, w := decode(v)
			if child == 0 {
				continue
			}
			j, ok := int32(-1), false
			if uint64(child) <= 0xFFFF_FFFF {
				j, ok = g.index[uint32(child)]
			}
			if !ok {
				s.DanglingEdges++
				continue
			}
			n.edges = append(n.edges, j)
			g.nodes[j].in++
			g.nodes[j].inw += w
			s.Edges++
		}
	}
	return g
}

// classify partitions the nodes: BFS reachability from the roots, then limbo
// husks (live blocks with a zero or poisoned stored count — retired, awaiting
// a drain) and everything only husks still pin, then the rest of the
// unreachable set, which is true garbage.
func classify(cfg Config, s *Snapshot, g *graph) {
	for ref, r := range cfg.Roots {
		s.Roots = append(s.Roots, r)
		if i, ok := g.index[ref]; ok {
			g.nodes[i].root = true
		}
	}
	sortRoots(s.Roots)

	// Reachability from the roots.
	var stack []int32
	for i := range g.nodes {
		if g.nodes[i].root {
			g.nodes[i].class = classReachable
			stack = append(stack, int32(i))
		} else {
			g.nodes[i].class = classUnreachable
		}
	}
	visited := make([]bool, len(g.nodes))
	for _, i := range stack {
		visited[i] = true
	}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, j := range g.nodes[i].edges {
			if !visited[j] {
				visited[j] = true
				g.nodes[j].class = classReachable
				stack = append(stack, j)
			}
		}
	}

	// Limbo: unreachable husks (rc 0 or poisoned) and, transitively,
	// unreachable objects they pin — the lfrc backend parks budget-deferred
	// zombies with fields intact, so a husk's subgraph is en route to the
	// allocator, not leaked.
	for i := range g.nodes {
		n := &g.nodes[i]
		if n.class == classUnreachable && (n.rc == 0 || n.rc >= mem.Poison) {
			n.class = classLimbo
			stack = append(stack, int32(i))
		}
	}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, j := range g.nodes[i].edges {
			if g.nodes[j].class == classUnreachable {
				g.nodes[j].class = classLimbo
				stack = append(stack, j)
			}
		}
	}

	for i := range g.nodes {
		n := &g.nodes[i]
		switch n.class {
		case classReachable:
			s.Reachable.Objects++
			s.Reachable.Bytes += n.bytes()
		case classUnreachable:
			s.Unreachable.Objects++
			s.Unreachable.Bytes += n.bytes()
		default:
			s.Limbo.Objects++
			s.Limbo.Bytes += n.bytes()
		}
	}
}

// findMismatches compares each object's stored count against its weighted
// in-edge sum (each link contributes its decoded weight — 1 under figure2,
// the stash under split) plus root registrations. Poisoned counts are
// skipped: the block was freed between the header read and the rc read,
// which is a walk race, not a count bug.
func findMismatches(cfg Config, s *Snapshot, g *graph) {
	for i := range g.nodes {
		n := &g.nodes[i]
		if n.rc >= mem.Poison {
			continue
		}
		expected := n.inw
		if n.root {
			expected += cfg.Roots[n.ref].Count
		}
		if int64(n.rc) == expected {
			continue
		}
		s.RCMismatchCount++
		if len(s.RCMismatches) < cfg.MaxMismatches {
			s.RCMismatches = append(s.RCMismatches, Mismatch{
				Ref:      n.ref,
				Type:     g.typeName(n.typ),
				Stored:   n.rc,
				Expected: expected,
				Class:    className(n.class),
			})
		}
	}
}

// attributeTypes builds the per-type retained-size table, largest first.
func attributeTypes(cfg Config, s *Snapshot, g *graph) {
	byType := map[mem.TypeID]*TypeStat{}
	var order []mem.TypeID
	for i := range g.nodes {
		n := &g.nodes[i]
		t := byType[n.typ]
		if t == nil {
			t = &TypeStat{Name: g.typeName(n.typ)}
			byType[n.typ] = t
			order = append(order, n.typ)
		}
		b := n.bytes()
		t.Objects++
		t.Bytes += b
		switch n.class {
		case classReachable:
			t.ReachableObjects++
			t.ReachableBytes += b
		case classUnreachable:
			t.UnreachableObjects++
			t.UnreachableBytes += b
		default:
			t.LimboObjects++
			t.LimboBytes += b
		}
	}
	for _, id := range order {
		s.Types = append(s.Types, *byType[id])
	}
	sortTypes(s.Types)
}

// typeName resolves a TypeID for reports; unknown ids (the descriptor table
// moved under the walk) are named by number.
func (g *graph) typeName(id mem.TypeID) string {
	if d, err := g.heap.Type(id); err == nil && d.Name != "" {
		return d.Name
	}
	return "type#" + itoa(int64(id))
}
