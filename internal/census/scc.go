package census

import (
	"fmt"
	"sort"
)

// findCycles runs Tarjan's SCC algorithm over the unreachable (non-limbo)
// subgraph and reports every component that actually cycles — size > 1, or a
// single node with a self-edge. These are exactly the leaks reference
// counting can never reclaim (PAPER.md §7): every member's count is held up
// by a fellow member.
func findCycles(cfg Config, s *Snapshot, g *graph) {
	n := len(g.nodes)
	leaked := func(i int32) bool { return g.nodes[i].class == classUnreachable }

	index := make([]int32, n) // discovery order, 0 = unvisited
	lowlink := make([]int32, n)
	onStack := make([]bool, n)
	var sccStack []int32
	var next int32 = 1

	var sccs [][]int32

	// Iterative Tarjan: frame.ei is the edge cursor into nodes[v].edges.
	type frame struct {
		v  int32
		ei int
	}
	var callStack []frame

	strongconnect := func(v0 int32) {
		callStack = append(callStack[:0], frame{v: v0})
		index[v0] = next
		lowlink[v0] = next
		next++
		sccStack = append(sccStack, v0)
		onStack[v0] = true

		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			v := f.v
			advanced := false
			for f.ei < len(g.nodes[v].edges) {
				w := g.nodes[v].edges[f.ei]
				f.ei++
				if !leaked(w) {
					continue
				}
				if index[w] == 0 {
					// Recurse.
					index[w] = next
					lowlink[w] = next
					next++
					sccStack = append(sccStack, w)
					onStack[w] = true
					callStack = append(callStack, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < lowlink[v] {
					lowlink[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// v is done: pop, fold lowlink into the parent, and emit the
			// component if v is its root.
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				p := callStack[len(callStack)-1].v
				if lowlink[v] < lowlink[p] {
					lowlink[p] = lowlink[v]
				}
			}
			if lowlink[v] == index[v] {
				var comp []int32
				for {
					w := sccStack[len(sccStack)-1]
					sccStack = sccStack[:len(sccStack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				sccs = append(sccs, comp)
			}
		}
	}

	for i := int32(0); i < int32(n); i++ {
		if leaked(i) && index[i] == 0 {
			strongconnect(i)
		}
	}

	// Keep only genuine cycles.
	selfLoop := func(v int32) bool {
		for _, w := range g.nodes[v].edges {
			if w == v {
				return true
			}
		}
		return false
	}
	var cycles []Cycle
	stamp := make([]int32, n)
	for ci, comp := range sccs {
		if len(comp) == 1 && !selfLoop(comp[0]) {
			continue
		}
		sort.Slice(comp, func(a, b int) bool { return g.nodes[comp[a]].ref < g.nodes[comp[b]].ref })

		c := Cycle{Size: int64(len(comp))}
		h := uint64(14695981039346656037) // FNV-1a over the sorted member refs
		for _, v := range comp {
			nd := &g.nodes[v]
			c.Bytes += nd.bytes()
			for sh := 0; sh < 32; sh += 8 {
				h = (h ^ uint64(nd.ref>>sh&0xFF)) * 1099511628211
			}
			if len(c.Objects) < cfg.MaxCycleObjects {
				c.Objects = append(c.Objects, Object{Ref: nd.ref, Type: g.typeName(nd.typ), RC: nd.rc})
			} else {
				c.Truncated = true
			}
			typ := g.typeName(nd.typ)
			if s.cycleByType == nil {
				s.cycleByType = map[string]Bucket{}
			}
			b, seen := s.cycleByType[typ]
			if !seen {
				s.cycleTypeOrder = append(s.cycleTypeOrder, typ)
			}
			b.Objects++
			b.Bytes += nd.bytes()
			s.cycleByType[typ] = b
		}
		c.Key = fmt.Sprintf("%016x", h)

		// Retained set: every unreachable object the cycle can reach —
		// what breaking the cycle would hand back to the allocator.
		mark := int32(ci + 1)
		work := append([]int32(nil), comp...)
		for _, v := range work {
			stamp[v] = mark
		}
		for len(work) > 0 {
			v := work[len(work)-1]
			work = work[:len(work)-1]
			c.RetainedObjects++
			c.RetainedBytes += g.nodes[v].bytes()
			for _, w := range g.nodes[v].edges {
				if leaked(w) && stamp[w] != mark {
					stamp[w] = mark
					work = append(work, w)
				}
			}
		}

		s.CycleCount++
		s.CycleObjects += c.Size
		s.CycleBytes += c.Bytes
		cycles = append(cycles, c)
	}

	sort.Slice(cycles, func(a, b int) bool {
		if cycles[a].RetainedBytes != cycles[b].RetainedBytes {
			return cycles[a].RetainedBytes > cycles[b].RetainedBytes
		}
		return cycles[a].Objects[0].Ref < cycles[b].Objects[0].Ref
	})
	if len(cycles) > cfg.MaxCycles {
		cycles = cycles[:cfg.MaxCycles]
	}
	s.Cycles = cycles
}

// sortRoots orders a root list by ref.
func sortRoots(rs []Root) {
	sort.Slice(rs, func(a, b int) bool { return rs[a].Ref < rs[b].Ref })
}

// sortTypes orders the per-type table by total bytes, largest first, name as
// the tiebreak.
func sortTypes(ts []TypeStat) {
	sort.Slice(ts, func(a, b int) bool {
		if ts[a].Bytes != ts[b].Bytes {
			return ts[a].Bytes > ts[b].Bytes
		}
		return ts[a].Name < ts[b].Name
	})
}

// itoa is strconv.Itoa for int64 without the import churn.
func itoa(v int64) string { return fmt.Sprintf("%d", v) }
