package census

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"lfrc/internal/mem"
	"lfrc/internal/pprofenc"
)

// WriteJSON writes the snapshot as indented, schema-versioned JSON (the
// /debug/lfrc/census.json payload; the key set is golden-tested).
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteProfile writes the census in pprof's gzipped profile.proto format,
// shaped like a heap profile: sample values are (objects, bytes) and every
// sample sits under a two-frame stack — the reachability class calls the type
// — so
//
//	go tool pprof -top census.pb.gz
//
// ranks types by retained bytes and the cumulative view rolls them up under
// reachable / unreachable / limbo. Cycle members additionally appear under a
// third "cycle leak" class so leak sources surface even when the unreachable
// set is small.
func (s *Snapshot) WriteProfile(w io.Writer) error {
	p := pprofenc.NewBuilder()

	objectsType := p.ValueType("objects", "count")
	bytesType := p.ValueType("bytes", "bytes")
	p.Msg.BytesField(1, objectsType)
	p.Msg.BytesField(1, bytesType)

	emit := func(class, typ string, objects, bytes int64) {
		if objects == 0 && bytes == 0 {
			return
		}
		typLoc := p.Location(typ)
		classLoc := p.Location("class:" + class)

		var sample pprofenc.Buf
		sample.PackedUint64(1, []uint64{typLoc, classLoc}) // leaf first
		sample.PackedInt64(2, []int64{objects, bytes})
		sample.BytesField(3, p.Label("class", class))
		sample.BytesField(3, p.Label("type", typ))
		p.Msg.BytesField(2, sample.Bytes())
	}
	for _, t := range s.Types {
		emit("reachable", t.Name, t.ReachableObjects, t.ReachableBytes)
		emit("unreachable", t.Name, t.UnreachableObjects, t.UnreachableBytes)
		emit("limbo", t.Name, t.LimboObjects, t.LimboBytes)
	}
	// Cycle members again, under their own class, aggregated by type
	// (exact member totals, recorded by findCycles before any list caps).
	for _, typ := range s.cycleTypeOrder {
		b := s.cycleByType[typ]
		emit("cycle leak", typ, b.Objects, b.Bytes)
	}

	p.FlushLocations()
	p.Msg.Int64Field(9, s.TS)
	p.Msg.BytesField(11, bytesType) // period type
	p.Msg.Int64Field(12, 1)
	p.Msg.Int64Field(13, p.Str(fmt.Sprintf(
		"lfrc heap census: backend=%s live=%d unreachable_bytes=%d cycles=%d limbo=%d",
		s.Backend, s.LiveObjects, s.Unreachable.Bytes, s.CycleCount, s.Limbo.Objects)))
	p.Msg.Int64Field(14, 1) // default_sample_type = bytes

	return p.WriteGzipped(w)
}

// ErrNoGraph reports a DOT export attempted on a snapshot that no longer
// holds its object graph (for example one decoded from JSON).
var ErrNoGraph = errors.New("census: snapshot holds no object graph")

// ErrTooLarge reports a DOT export refused because the heap exceeds the node
// cap — DOT is a small-heap debugging view, not a production export.
var ErrTooLarge = errors.New("census: heap too large for DOT export")

// WriteDOT renders the object graph in Graphviz DOT, for small heaps: nodes
// are labeled ref/type/rc and colored by class (reachable gray, unreachable
// red, limbo yellow; roots get a bold border). maxNodes caps the render
// (0 = 256); a larger heap returns ErrTooLarge rather than an unreadable
// hairball.
func (s *Snapshot) WriteDOT(w io.Writer, maxNodes int) error {
	if s.g == nil {
		return ErrNoGraph
	}
	if maxNodes <= 0 {
		maxNodes = 256
	}
	if len(s.g.nodes) > maxNodes {
		return fmt.Errorf("%w: %d live objects > cap %d", ErrTooLarge, len(s.g.nodes), maxNodes)
	}
	bw := newErrWriter(w)
	fmt.Fprintf(bw, "digraph census {\n  rankdir=LR;\n  node [shape=box, style=filled, fontsize=10];\n")
	fmt.Fprintf(bw, "  label=\"lfrc heap census backend=%s live=%d unreachable=%d limbo=%d cycles=%d\";\n",
		s.Backend, s.LiveObjects, s.Unreachable.Objects, s.Limbo.Objects, s.CycleCount)
	for i := range s.g.nodes {
		n := &s.g.nodes[i]
		color := "lightgray"
		switch n.class {
		case classUnreachable:
			color = "lightcoral"
		case classLimbo:
			color = "khaki"
		}
		extra := ""
		if n.root {
			extra = ", penwidth=3"
		}
		rc := fmt.Sprintf("%d", n.rc)
		if n.rc >= mem.Poison {
			rc = "poisoned"
		}
		fmt.Fprintf(bw, "  n%d [label=\"%#x\\n%s rc=%s\", fillcolor=%s%s];\n",
			n.ref, n.ref, s.g.typeName(n.typ), rc, color, extra)
	}
	for i := range s.g.nodes {
		n := &s.g.nodes[i]
		for _, j := range n.edges {
			fmt.Fprintf(bw, "  n%d -> n%d;\n", n.ref, s.g.nodes[j].ref)
		}
	}
	fmt.Fprintf(bw, "}\n")
	return bw.err
}

// errWriter folds the first write error so the DOT renderer can stay
// fmt.Fprintf-shaped.
type errWriter struct {
	w   io.Writer
	err error
}

func newErrWriter(w io.Writer) *errWriter { return &errWriter{w: w} }

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return len(p), nil
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
	}
	return n, nil
}
