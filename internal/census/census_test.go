package census_test

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"lfrc/internal/census"
	"lfrc/internal/mem"
)

// fixture is a hand-built heap with every census verdict represented:
//
//	root ──▶ child                    (reachable)
//	a ⇄ b, a ──▶ pinned               (unreachable 2-cycle retaining a third)
//	husk(rc=0) ──▶ kept               (limbo: a retired husk and what it pins)
//	stray(rc=7) ──▶ freed slot        (rc mismatch + dangling edge)
//
// plus one freed slot. The "pair" type has two pointer fields and one scalar
// (6 words with the header = 48 bytes per object).
type fixture struct {
	h                                     *mem.Heap
	tid                                   mem.TypeID
	root, child, a, b, pinned, husk, kept mem.Ref
	stray                                 mem.Ref
}

func build(t *testing.T) *fixture {
	t.Helper()
	f := &fixture{h: mem.NewHeap()}
	tid, err := f.h.RegisterType(mem.TypeDesc{Name: "pair", NumFields: 3, PtrFields: []int{0, 1}})
	if err != nil {
		t.Fatalf("RegisterType: %v", err)
	}
	f.tid = tid
	alloc := func() mem.Ref {
		r, err := f.h.Alloc(tid)
		if err != nil {
			t.Fatalf("Alloc: %v", err)
		}
		return r
	}
	link := func(from mem.Ref, field int, to mem.Ref) {
		f.h.Store(f.h.FieldAddr(from, field), uint64(to))
	}
	f.root, f.child = alloc(), alloc()
	link(f.root, 0, f.child)

	f.a, f.b, f.pinned = alloc(), alloc(), alloc()
	link(f.a, 0, f.b)
	link(f.b, 0, f.a)
	link(f.a, 1, f.pinned)

	f.husk, f.kept = alloc(), alloc()
	f.h.Store(f.h.RCAddr(f.husk), 0)
	link(f.husk, 0, f.kept)

	f.stray = alloc()
	f.h.Store(f.h.RCAddr(f.stray), 7)

	freed := alloc()
	link(f.stray, 0, freed)
	if err := f.h.Free(freed); err != nil {
		t.Fatalf("Free: %v", err)
	}
	return f
}

func (f *fixture) take(opts ...func(*census.Config)) *census.Snapshot {
	cfg := census.Config{
		Heap: f.h,
		Read: f.h.Load,
		Roots: map[uint32]census.Root{
			uint32(f.root): {Ref: uint32(f.root), Name: "deque", Count: 1},
		},
		Backend: "test",
	}
	for _, o := range opts {
		o(&cfg)
	}
	return census.Take(cfg)
}

func TestTakeClassifiesEveryVerdict(t *testing.T) {
	f := build(t)
	s := f.take()

	if s.SchemaVersion != census.SchemaVersion {
		t.Errorf("SchemaVersion = %d, want %d", s.SchemaVersion, census.SchemaVersion)
	}
	if s.Backend != "test" {
		t.Errorf("Backend = %q", s.Backend)
	}
	if s.LiveObjects != 8 || s.FreedSlots != 1 {
		t.Errorf("live=%d freed=%d, want 8/1", s.LiveObjects, s.FreedSlots)
	}
	if s.LiveBytes != 8*48 {
		t.Errorf("LiveBytes = %d, want %d", s.LiveBytes, 8*48)
	}
	// root→child, a→b, b→a, a→pinned, husk→kept; stray→freed dangles.
	if s.Edges != 5 || s.DanglingEdges != 1 {
		t.Errorf("edges=%d dangling=%d, want 5/1", s.Edges, s.DanglingEdges)
	}
	if s.Reachable.Objects != 2 || s.Limbo.Objects != 2 || s.Unreachable.Objects != 4 {
		t.Errorf("reachable=%d limbo=%d unreachable=%d, want 2/2/4",
			s.Reachable.Objects, s.Limbo.Objects, s.Unreachable.Objects)
	}
	if s.Reachable.Bytes != 2*48 || s.Limbo.Bytes != 2*48 || s.Unreachable.Bytes != 4*48 {
		t.Errorf("bucket bytes wrong: %+v %+v %+v", s.Reachable, s.Limbo, s.Unreachable)
	}
	if got := s.Reachable.Objects + s.Limbo.Objects + s.Unreachable.Objects; got != s.LiveObjects {
		t.Errorf("buckets do not partition the heap: %d != %d", got, s.LiveObjects)
	}

	if len(s.Roots) != 1 || s.Roots[0].Ref != uint32(f.root) || s.Roots[0].Name != "deque" {
		t.Errorf("roots = %+v", s.Roots)
	}

	// Exactly one cycle: {a, b}, retaining pinned as well.
	if s.CycleCount != 1 || len(s.Cycles) != 1 {
		t.Fatalf("cycles = %d (%d listed), want 1", s.CycleCount, len(s.Cycles))
	}
	cy := s.Cycles[0]
	if cy.Size != 2 || cy.Bytes != 2*48 {
		t.Errorf("cycle size=%d bytes=%d, want 2/96", cy.Size, cy.Bytes)
	}
	if cy.RetainedObjects != 3 || cy.RetainedBytes != 3*48 {
		t.Errorf("cycle retained=%d objs %d B, want 3/144", cy.RetainedObjects, cy.RetainedBytes)
	}
	if cy.Key == "" || cy.Truncated {
		t.Errorf("cycle key=%q truncated=%v", cy.Key, cy.Truncated)
	}
	members := map[uint32]bool{}
	for _, o := range cy.Objects {
		members[o.Ref] = true
		if o.Type != "pair" || o.RC != 1 {
			t.Errorf("cycle member %+v, want pair rc=1", o)
		}
	}
	if !members[uint32(f.a)] || !members[uint32(f.b)] {
		t.Errorf("cycle members %v missing a=%d b=%d", cy.Objects, f.a, f.b)
	}
	if s.CycleObjects != 2 || s.CycleBytes != 2*48 {
		t.Errorf("cycle aggregates objects=%d bytes=%d, want 2/96", s.CycleObjects, s.CycleBytes)
	}

	// Exactly one mismatch: stray stores 7 against zero in-edges.
	if s.RCMismatchCount != 1 || len(s.RCMismatches) != 1 {
		t.Fatalf("mismatches = %d (%v)", s.RCMismatchCount, s.RCMismatches)
	}
	m := s.RCMismatches[0]
	if m.Ref != uint32(f.stray) || m.Stored != 7 || m.Expected != 0 || m.Class != "unreachable" {
		t.Errorf("mismatch = %+v", m)
	}

	// One type carrying everything.
	if len(s.Types) != 1 {
		t.Fatalf("types = %+v", s.Types)
	}
	ty := s.Types[0]
	if ty.Name != "pair" || ty.Objects != 8 || ty.Bytes != 8*48 {
		t.Errorf("type stat = %+v", ty)
	}
	if ty.ReachableObjects != 2 || ty.UnreachableObjects != 4 || ty.LimboObjects != 2 {
		t.Errorf("type classes = %+v", ty)
	}
	if s.WallNS <= 0 || s.TS <= 0 {
		t.Errorf("wall=%d ts=%d", s.WallNS, s.TS)
	}
}

// TestSelfLoopIsACycle locks the size-1 special case: an SCC of one node only
// counts as a cycle when it actually references itself.
func TestSelfLoopIsACycle(t *testing.T) {
	h := mem.NewHeap()
	tid := h.MustRegisterType(mem.TypeDesc{Name: "self", NumFields: 1, PtrFields: []int{0}})
	r, err := h.Alloc(tid)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	h.Store(h.FieldAddr(r, 0), uint64(r))
	lone, err := h.Alloc(tid) // unreachable, counted, but no self edge
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	_ = lone

	s := census.Take(census.Config{Heap: h, Read: h.Load, Backend: "test"})
	if s.CycleCount != 1 || s.Cycles[0].Size != 1 {
		t.Fatalf("self-loop not reported as a 1-cycle: %+v", s.Cycles)
	}
	if s.Cycles[0].Objects[0].Ref != uint32(r) {
		t.Errorf("cycle member = %+v, want %d", s.Cycles[0].Objects, r)
	}
	if s.Unreachable.Objects != 2 {
		t.Errorf("unreachable = %d, want 2 (the loop and the lone stray)", s.Unreachable.Objects)
	}
}

// TestListCapsKeepAggregatesExact: caps trim the lists, never the counts.
func TestListCapsKeepAggregatesExact(t *testing.T) {
	h := mem.NewHeap()
	tid := h.MustRegisterType(mem.TypeDesc{Name: "pair", NumFields: 2, PtrFields: []int{0, 1}})
	for i := 0; i < 3; i++ {
		a, _ := h.Alloc(tid)
		b, _ := h.Alloc(tid)
		h.Store(h.FieldAddr(a, 0), uint64(b))
		h.Store(h.FieldAddr(b, 0), uint64(a))
	}
	s := census.Take(census.Config{
		Heap: h, Read: h.Load, Backend: "test",
		MaxCycles: 2, MaxCycleObjects: 1,
	})
	if s.CycleCount != 3 || s.CycleObjects != 6 {
		t.Fatalf("aggregates = %d cycles / %d objects, want 3/6", s.CycleCount, s.CycleObjects)
	}
	if len(s.Cycles) != 2 {
		t.Fatalf("listed cycles = %d, want cap 2", len(s.Cycles))
	}
	for _, cy := range s.Cycles {
		if len(cy.Objects) != 1 || !cy.Truncated {
			t.Errorf("cycle list not truncated to 1: %+v", cy)
		}
		if cy.Size != 2 {
			t.Errorf("truncation changed Size: %+v", cy)
		}
	}
}

func TestDiffSpotsNewCycles(t *testing.T) {
	f := build(t)
	before := f.take()

	// Grow a second, disjoint cycle.
	c, _ := f.h.Alloc(f.tid)
	d, _ := f.h.Alloc(f.tid)
	f.h.Store(f.h.FieldAddr(c, 0), uint64(d))
	f.h.Store(f.h.FieldAddr(d, 0), uint64(c))
	after := f.take()

	delta := census.Diff(before, after)
	if delta.NewCycles != 1 || delta.NewCycleBytes != 2*48 {
		t.Errorf("new cycles = %d (%d B), want 1 (96 B)", delta.NewCycles, delta.NewCycleBytes)
	}
	if delta.LiveObjects != 2 || delta.UnreachableObjects != 2 {
		t.Errorf("delta live=%+d unreachable=%+d, want +2/+2", delta.LiveObjects, delta.UnreachableObjects)
	}
	if len(delta.Types) != 1 || delta.Types[0].Objects != 2 {
		t.Errorf("type deltas = %+v", delta.Types)
	}

	// A snapshot diffed against itself is all zeroes: persisting cycles are
	// not "new".
	same := census.Diff(after, after)
	if same.NewCycles != 0 || same.LiveObjects != 0 || len(same.Types) != 0 {
		t.Errorf("self-diff not empty: %+v", same)
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	f := build(t)
	var buf bytes.Buffer
	if err := f.take().WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var got census.Snapshot
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("census.json invalid: %v", err)
	}
	if got.SchemaVersion != census.SchemaVersion || got.CycleCount != 1 || got.RCMismatchCount != 1 {
		t.Errorf("round trip lost data: %+v", got)
	}
}

// TestJSONSchemaGolden locks the census.json key surface the same way
// stats_keys.golden locks Stats: /debug/lfrc/census.json is an exported
// interface, so a key rename must surface as a golden-file diff in review.
// The fixture covers every list (roots, cycles with members, mismatches,
// types), so the full key set is exercised.
//
// Regenerate with: UPDATE_GOLDEN=1 go test -run TestJSONSchemaGolden .
func TestJSONSchemaGolden(t *testing.T) {
	f := build(t)
	var buf bytes.Buffer
	if err := f.take().WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var tree any
	if err := json.Unmarshal(buf.Bytes(), &tree); err != nil {
		t.Fatalf("census.json invalid: %v", err)
	}
	keys := keyPaths("", tree)
	sort.Strings(keys)
	got := strings.Join(keys, "\n") + "\n"

	golden := filepath.Join("testdata", "census_schema.golden")
	if os.Getenv("UPDATE_GOLDEN") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatalf("mkdir testdata: %v", err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("census.json key set changed.\n--- got ---\n%s--- want (%s) ---\n%s"+
			"If the change is intentional, bump SchemaVersion, regenerate with "+
			"UPDATE_GOLDEN=1, and call it out in review.", got, golden, want)
	}
}

// keyPaths flattens a decoded JSON tree into dotted key paths, collapsing
// array elements into one "[]" segment (mirrors the root package's golden
// helper).
func keyPaths(prefix string, v any) []string {
	switch x := v.(type) {
	case map[string]any:
		var out []string
		for k, child := range x {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			out = append(out, p)
			out = append(out, keyPaths(p, child)...)
		}
		return out
	case []any:
		seen := map[string]bool{}
		var out []string
		for _, child := range x {
			for _, p := range keyPaths(prefix+"[]", child) {
				if !seen[p] {
					seen[p] = true
					out = append(out, p)
				}
			}
		}
		return out
	default:
		return nil
	}
}

func TestWriteProfileIsValidGzipWithLeakClass(t *testing.T) {
	f := build(t)
	var buf bytes.Buffer
	if err := f.take().WriteProfile(&buf); err != nil {
		t.Fatalf("WriteProfile: %v", err)
	}
	zr, err := gzip.NewReader(&buf)
	if err != nil {
		t.Fatalf("profile is not gzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("gunzip: %v", err)
	}
	// The string table is stored verbatim in the protobuf, so the class
	// frames and type names must appear as raw bytes.
	for _, want := range []string{"pair", "reachable", "unreachable", "limbo", "cycle leak", "objects", "bytes"} {
		if !bytes.Contains(raw, []byte(want)) {
			t.Errorf("profile lacks string %q", want)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	f := build(t)
	s := f.take()

	var buf bytes.Buffer
	if err := s.WriteDOT(&buf, 0); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	dot := buf.String()
	if !strings.HasPrefix(dot, "digraph census") || !strings.HasSuffix(strings.TrimSpace(dot), "}") {
		t.Errorf("not a DOT document:\n%s", dot)
	}
	for _, want := range []string{"lightgray", "lightcoral", "khaki", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT lacks %q:\n%s", want, dot)
		}
	}

	// An 8-node heap over a 4-node cap is a hairball, not a render.
	if err := s.WriteDOT(io.Discard, 4); !errors.Is(err, census.ErrTooLarge) {
		t.Errorf("WriteDOT over cap = %v, want ErrTooLarge", err)
	}

	// A snapshot decoded from JSON has no graph to render.
	var jsonBuf bytes.Buffer
	if err := s.WriteJSON(&jsonBuf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var decoded census.Snapshot
	if err := json.Unmarshal(jsonBuf.Bytes(), &decoded); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if err := decoded.WriteDOT(io.Discard, 0); !errors.Is(err, census.ErrNoGraph) {
		t.Errorf("decoded WriteDOT = %v, want ErrNoGraph", err)
	}
}

// TestTakeIsReadOnly: a census mutates nothing — a second census over an
// untouched heap reports identical structure.
func TestTakeIsReadOnly(t *testing.T) {
	f := build(t)
	s1 := f.take()
	s2 := f.take()
	if s1.LiveObjects != s2.LiveObjects || s1.Edges != s2.Edges ||
		s1.CycleCount != s2.CycleCount || s1.RCMismatchCount != s2.RCMismatchCount ||
		s1.Unreachable != s2.Unreachable || s1.Limbo != s2.Limbo {
		t.Errorf("censuses of an untouched heap differ:\n%+v\n%+v", s1, s2)
	}
	if f.h.Load(f.h.RCAddr(f.stray)) != 7 {
		t.Errorf("census changed a stored count")
	}
}
