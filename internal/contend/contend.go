// Package contend is the DCAS contention observatory: it aggregates the
// reproduction's retry traffic into per-cell contention profiles.
//
// Every one of the six LFRC pointer operations loops on DCAS (or CAS), and
// the paper's whole performance argument rests on how often those loops
// retry — yet the paper (§5) only asserts the safety shape of the loops and
// leaves "where do retries concentrate and what do they cost" unmeasured.
// The flight recorder (package obs) made individual events visible; this
// package answers the aggregate question: *which memory cells are hot*, by
// operation kind and cell role (deque hat, anchor word, reference-count
// word, node link), and how many nanoseconds of work the retries wasted.
//
// The table is fed from two directions:
//
//   - Failed-attempt attribution (exact, always on while installed): the
//     retry loops in internal/core and internal/snark report every failed
//     DCAS/CAS attempt, split across the two comparands by re-reading them
//     (dcas.Attribute) so the blame lands on the cell that actually moved.
//     Recording is a handful of atomic adds on the failure path — a path
//     that just lost a race and is about to spin anyway.
//   - Wasted-work timing (sampled): the flight recorder's aggregation tap
//     delivers each op-sampled event together with its measured latency;
//     the retried fraction of that latency, scaled by the op-sampling
//     interval, estimates the total nanoseconds burned re-executing loop
//     bodies on the event's cell.
//
// Storage is a lock-free striped hot-cell table: per-stripe open-addressed
// arrays of cache-padded entries keyed by (cell address, op kind), claimed
// with one CAS and updated with plain atomic adds, merged at snapshot time.
// A decaying activity score per entry drives the top-K "heatmap", so the
// report ranks what is hot *now*, not what was hot an hour ago.
//
// Read it back three ways: Report (human-readable, served on
// /debug/lfrc/contention), Prometheus series (root metrics.go), and a
// pprof-compatible profile (WriteProfile, served on
// /debug/lfrc/contention.pb.gz) whose samples are weighted by wasted
// nanoseconds so `go tool pprof` renders the contention flame directly.
package contend

import (
	"runtime"
	"sync/atomic"
	"time"

	"lfrc/internal/obs"
	"lfrc/internal/stripe"
)

// Role classifies what a contended cell *is* inside the structure that owns
// it. Roles make the profile legible: "the right hat is hot" is actionable,
// "cell 0x2c1 is hot" is not.
type Role uint8

// Cell roles, from generic to specific. Recording sites pass the most
// specific role they know; a Declare'd role (structure anchors register
// their cells at construction) wins over a generic one.
const (
	RoleUnknown  Role = iota
	RolePointer       // a shared pointer cell with no more specific identity
	RoleRC            // an object's reference-count word
	RoleNodeLink      // a deque/queue node's left or right neighbour link
	RoleLeftHat       // the Snark anchor's LeftHat word
	RoleRightHat      // the Snark anchor's RightHat word
	RoleAnchor        // another anchor word (e.g. the Dummy pointer)
	RoleRCExt         // a pointer cell's colocated external count (split RC strategy weight stash)

	numRoles
)

// String implements fmt.Stringer.
func (r Role) String() string {
	names := [...]string{
		RoleUnknown:  "unknown",
		RolePointer:  "pointer",
		RoleRC:       "rc",
		RoleNodeLink: "node_link",
		RoleLeftHat:  "left_hat",
		RoleRightHat: "right_hat",
		RoleAnchor:   "anchor",
		RoleRCExt:    "rc_ext",
	}
	if int(r) < len(names) {
		return names[r]
	}
	return "unknown"
}

// specificity orders roles for merging: higher wins when the same cell is
// recorded under different roles (a hat cell reached through a generic
// pointer load keeps its hat identity).
func (r Role) specificity() int {
	switch r {
	case RoleUnknown:
		return 0
	case RolePointer:
		return 1
	default:
		return 2
	}
}

// entry is one (cell, op-kind) accumulator. The key word doubles as the
// claim word: 0 is empty, and a single CAS publishes the key before any
// counter is touched. Counters are monotonic except hot, which Decay halves.
// Padded to its own cache-line neighbourhood so probing one hot entry does
// not false-share with the next.
type entry struct {
	key      atomic.Uint64 // addr<<8 | kind; 0 = empty
	role     atomic.Uint32 // Role, monotonically upgraded by specificity
	attempts atomic.Int64  // DCAS/CAS attempts involving this cell
	failures atomic.Int64  // failed attempts attributed to this cell
	ops      atomic.Int64  // completed operations resolved on this cell
	retrySum atomic.Int64  // total retry-chain length across those ops
	retryMax atomic.Int64  // longest observed retry chain
	wastedNS atomic.Int64  // estimated ns burned in failed attempts (scaled)
	hot      atomic.Int64  // decaying activity score (failures + wasted ns)
	_        [48]byte
}

func key(addr uint32, kind obs.Kind) uint64 {
	return uint64(addr)<<8 | uint64(kind)
}

// tStripe is one stripe of the table: a private open-addressed entry array.
// Goroutines hash to stripes the same way the allocator shards do, so two
// goroutines hammering the same hot cell usually update different stripes'
// entries; snapshots merge by key.
type tStripe struct {
	entries []entry

	// used is the append-only directory of claimed entry indices, each
	// stored as index+1 (0 = slot reserved but not yet published). Entries
	// are claimed once and never evicted, so the directory only grows.
	// TopInto walks it instead of scanning the whole entry array: the
	// timeline's per-interval capture then costs proportional to occupied
	// entries (typically dozens), not table capacity (1024 padded entries
	// per stripe — half a megabyte of cache lines at default geometry).
	used  []atomic.Int32
	usedN atomic.Int32
}

// declaredRole is one structure-registered cell identity (see Declare).
type declaredRole struct {
	addr atomic.Uint32
	role atomic.Uint32
}

// maxDeclared bounds the declared-role registry; each live structure
// declares a handful of anchor cells.
const maxDeclared = 256

// Table is the striped hot-cell table. The zero value is not usable; call
// New. A nil *Table is a valid disabled observatory: every recording method
// is a cheap no-op, so callers embed one pointer and never branch twice.
type Table struct {
	stripes []tStripe
	mask    uint64 // per-stripe capacity - 1

	declared  [maxDeclared]declaredRole
	declaredN atomic.Int32

	// opScale multiplies sampled wasted-ns contributions so estimates
	// approximate the un-sampled total (set to the recorder's op-sampling
	// interval at wiring time; 1 when every op is sampled).
	opScale atomic.Int64

	dropped atomic.Int64 // records lost because a stripe's table was full

	// ewma holds a per-op-kind EWMA of observed per-attempt latency (ns),
	// ewmaAll the cross-kind estimate. They back the snapshot-time
	// wasted-ns fallback: with sparse op sampling (one CPU, 1-in-64
	// sampling) the recorder can easily keep no latency sample for any
	// retried attempt of a kind, which used to leave every cell's
	// wasted_ns at exactly 0 (BENCH_0004) while failures were plainly
	// being counted. Indexed by the kind's low byte, matching the key
	// encoding.
	ewma    [256]atomic.Int64
	ewmaAll atomic.Int64

	// Decay state for the heatmap score: lastDecay is unix-nanos of the
	// last applied halving, halfLife the interval between halvings.
	lastDecay atomic.Int64
	halfLife  time.Duration

	now func() int64 // time source, swappable in tests
}

// Option configures a Table.
type Option func(*Table)

// WithCapacity sets each stripe's entry capacity, rounded up to a power of
// two. The default is 1024 entries per stripe; the table tracks distinct
// (cell, op) pairs, so the default covers thousands of simultaneously hot
// cells before Dropped grows.
func WithCapacity(n int) Option {
	return func(t *Table) {
		size := 1
		for size < n {
			size <<= 1
		}
		t.mask = uint64(size - 1)
	}
}

// WithStripes sets the stripe count; the default is GOMAXPROCS, clamped
// like every other striped facility (package stripe).
func WithStripes(n int) Option {
	return func(t *Table) { t.stripes = make([]tStripe, stripe.Clamp(n, len(t.stripes))) }
}

// WithHalfLife sets the heatmap score's half-life (how fast "hot" cools).
// The default is 30s; 0 disables decay entirely.
func WithHalfLife(d time.Duration) Option {
	return func(t *Table) { t.halfLife = d }
}

// New creates a Table.
func New(opts ...Option) *Table {
	t := &Table{
		stripes:  make([]tStripe, stripe.Clamp(0, defaultStripes())),
		mask:     1024 - 1,
		halfLife: 30 * time.Second,
		now:      func() int64 { return time.Now().UnixNano() },
	}
	t.opScale.Store(1)
	for _, o := range opts {
		o(t)
	}
	for i := range t.stripes {
		t.stripes[i].entries = make([]entry, t.mask+1)
		t.stripes[i].used = make([]atomic.Int32, t.mask+1)
	}
	t.lastDecay.Store(t.now())
	return t
}

// defaultStripes is the stripe-count fallback: one per schedulable thread.
func defaultStripes() int { return runtime.GOMAXPROCS(0) }

// SetOpScale records the flight recorder's op-sampling interval so sampled
// wasted-ns contributions can be scaled up to estimate the total. Values
// below 1 are clamped to 1. Called once at wiring time.
func (t *Table) SetOpScale(n int) {
	if t == nil {
		return
	}
	if n < 1 {
		n = 1
	}
	t.opScale.Store(int64(n))
}

// OpScale reports the configured wasted-ns scaling factor.
func (t *Table) OpScale() int {
	if t == nil {
		return 1
	}
	return int(t.opScale.Load())
}

// Declare registers a cell's structural identity: structures call it at
// construction for their long-lived anchor cells (the Snark hats and Dummy
// word), so that even generic recording sites (core's Load loop sees only
// "a pointer cell") profile those cells under their real names. Declaring
// is idempotent per address; the registry is bounded and extra declarations
// beyond its capacity are dropped silently (they only cost specificity).
func (t *Table) Declare(addr uint32, role Role) {
	if t == nil || addr == 0 {
		return
	}
	n := int(t.declaredN.Load())
	for i := 0; i < n && i < maxDeclared; i++ {
		if t.declared[i].addr.Load() == addr {
			t.declared[i].role.Store(uint32(role))
			return
		}
	}
	for {
		n := t.declaredN.Load()
		if int(n) >= maxDeclared {
			return
		}
		if t.declaredN.CompareAndSwap(n, n+1) {
			// Publish role before addr: lookups key on addr.
			t.declared[n].role.Store(uint32(role))
			t.declared[n].addr.Store(addr)
			return
		}
	}
}

// declaredRoleOf returns the registered role for addr, or RoleUnknown.
func (t *Table) declaredRoleOf(addr uint32) Role {
	n := int(t.declaredN.Load())
	if n > maxDeclared {
		n = maxDeclared
	}
	for i := 0; i < n; i++ {
		if t.declared[i].addr.Load() == addr {
			return Role(t.declared[i].role.Load())
		}
	}
	return RoleUnknown
}

// find locates (or claims) the calling stripe's entry for (addr, kind). It
// returns nil when the stripe's table is full (recorded in Dropped: the
// profile degrades by omission, never by blocking).
func (t *Table) find(addr uint32, kind obs.Kind, role Role) *entry {
	k := key(addr, kind)
	st := &t.stripes[stripe.Hint(len(t.stripes))]
	// Fibonacci hash, linear probe.
	h := (k * 0x9E3779B97F4A7C15) >> 13
	for i := uint64(0); i <= t.mask; i++ {
		e := &st.entries[(h+i)&t.mask]
		got := e.key.Load()
		if got == k {
			t.upgradeRole(e, addr, role)
			return e
		}
		if got == 0 {
			if e.key.CompareAndSwap(0, k) {
				// Publish the claim in the stripe's occupancy
				// directory (index+1; readers skip unpublished 0s).
				if slot := st.usedN.Add(1) - 1; int(slot) < len(st.used) {
					st.used[slot].Store(int32((h+i)&t.mask) + 1)
				}
				t.upgradeRole(e, addr, role)
				return e
			}
			if e.key.Load() == k { // lost the claim race to the same key
				t.upgradeRole(e, addr, role)
				return e
			}
		}
	}
	t.dropped.Add(1)
	return nil
}

// upgradeRole settles an entry's role: a Declare'd identity wins, then the
// most specific role any recording site has passed.
func (t *Table) upgradeRole(e *entry, addr uint32, role Role) {
	if d := t.declaredRoleOf(addr); d != RoleUnknown {
		role = d
	}
	for {
		cur := Role(e.role.Load())
		if role.specificity() <= cur.specificity() {
			return
		}
		if e.role.CompareAndSwap(uint32(cur), uint32(role)) {
			return
		}
	}
}

// Attempt records one failed DCAS/CAS attempt by op kind involving cells a0
// (role r0) and, when nonzero and distinct, a1 (role r1). failed0/failed1
// report which comparand actually mismatched (dcas.Attribute); a failure
// with neither — the cell changed and changed back between the attempt and
// the re-read — is charged to a0, the operation's primary cell. Nil-safe.
func (t *Table) Attempt(op obs.Kind, a0 uint32, r0 Role, a1 uint32, r1 Role, failed0, failed1 bool) {
	if t == nil {
		return
	}
	if !failed0 && !failed1 {
		failed0 = true // transient: blame the primary cell
	}
	if a0 != 0 {
		if e := t.find(a0, op, r0); e != nil {
			e.attempts.Add(1)
			if failed0 {
				e.failures.Add(1)
				e.hot.Add(1)
			}
		}
	}
	if a1 != 0 && a1 != a0 {
		if e := t.find(a1, op, r1); e != nil {
			e.attempts.Add(1)
			if failed1 {
				e.failures.Add(1)
				e.hot.Add(1)
			}
		}
	}
}

// OpDone records one completed operation's final, successful attempt: the
// attempt is counted on both cells, and the operation's retry-chain length
// lands on a0, the cell the operation resolved on. Nil-safe.
func (t *Table) OpDone(op obs.Kind, a0 uint32, r0 Role, a1 uint32, r1 Role, retries uint32) {
	if t == nil {
		return
	}
	if a0 != 0 {
		if e := t.find(a0, op, r0); e != nil {
			e.attempts.Add(1)
			e.ops.Add(1)
			if retries > 0 {
				e.retrySum.Add(int64(retries))
				for {
					m := e.retryMax.Load()
					if int64(retries) <= m || e.retryMax.CompareAndSwap(m, int64(retries)) {
						break
					}
				}
			}
		}
	}
	if a1 != 0 && a1 != a0 {
		if e := t.find(a1, op, r1); e != nil {
			e.attempts.Add(1)
		}
	}
}

// Aggregate implements the flight recorder's aggregation tap (obs.Agg): it
// receives every op-sampled event with its measured latency and charges the
// retried fraction of that latency — scaled by the op-sampling interval —
// to the event's cell as wasted work. Events with no retries or no cell
// carry no wasted work and are dropped immediately.
func (t *Table) Aggregate(e obs.Event, latNS int64) {
	if t == nil || latNS <= 0 {
		return
	}
	// Every delivered event — retried or not — feeds the per-kind EWMA of
	// per-attempt latency (an op that retried k times made k+1 attempts).
	// The EWMA is the snapshot-time fallback for cells whose failures were
	// counted but whose retried attempts the op sampler never timed.
	// Racy read-modify-write is fine: it is a smoothing estimator.
	if per := latNS / (int64(e.Retries) + 1); per > 0 {
		ew := &t.ewma[uint8(e.Kind)]
		if old := ew.Load(); old == 0 {
			ew.Store(per)
		} else {
			ew.Store(old + (per-old)/8)
		}
		if old := t.ewmaAll.Load(); old == 0 {
			t.ewmaAll.Store(per)
		} else {
			t.ewmaAll.Store(old + (per-old)/8)
		}
	}
	if e.Retries == 0 || e.Addr == 0 {
		return
	}
	// A loop that succeeded on attempt k+1 spent ~k/(k+1) of its time on
	// the k discarded iterations.
	wasted := latNS * int64(e.Retries) / (int64(e.Retries) + 1)
	wasted *= t.opScale.Load()
	if en := t.find(e.Addr, e.Kind, RoleUnknown); en != nil {
		en.wastedNS.Add(wasted)
		en.hot.Add(wasted)
	}
}

// retryEWMA reports the per-attempt latency estimate for kind in
// nanoseconds: the kind's own EWMA when it has one, else the cross-kind
// estimate, else 0 (nothing sampled yet).
func (t *Table) retryEWMA(k obs.Kind) int64 {
	if v := t.ewma[uint8(k)].Load(); v > 0 {
		return v
	}
	return t.ewmaAll.Load()
}

// Dropped reports how many records were lost to full stripes.
func (t *Table) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// decayTick applies any halvings the half-life schedule owes. It runs on
// the snapshot path (cold); recording paths never touch it.
func (t *Table) decayTick() {
	if t.halfLife <= 0 {
		return
	}
	now := t.now()
	for {
		last := t.lastDecay.Load()
		n := (now - last) / int64(t.halfLife)
		if n <= 0 {
			return
		}
		if n > 62 {
			n = 62
		}
		if !t.lastDecay.CompareAndSwap(last, last+n*int64(t.halfLife)) {
			continue // another snapshot took the tick
		}
		for i := range t.stripes {
			es := t.stripes[i].entries
			for j := range es {
				if es[j].key.Load() == 0 {
					continue
				}
				// Racy halving is fine: hot is a ranking heuristic.
				es[j].hot.Store(es[j].hot.Load() >> uint(n))
			}
		}
		return
	}
}
