package contend

import (
	"fmt"
	"io"
	"time"

	"lfrc/internal/pprofenc"
)

// WriteProfile writes the contention profile in pprof's gzipped protobuf
// format (the profile.proto wire format, hand-encoded by internal/pprofenc:
// the repo is stdlib-only by policy). Each sample is one (cell, op-kind)
// accumulator with two values — attributed failure count and estimated wasted
// nanoseconds — under a synthesized two-frame stack: the operation kind
// calls the cell (named by role and address), so
//
//	go tool pprof -top contention.pb.gz
//
// ranks cells by wasted-ns directly and the flame view groups them under
// the operations that burned the time.
func (t *Table) WriteProfile(w io.Writer) error {
	return writeProfile(w, t.Snapshot(), time.Now().UnixNano())
}

// writeProfile is the testable core: profile from an explicit snapshot and
// timestamp.
func writeProfile(w io.Writer, rep Report, timeNanos int64) error {
	p := pprofenc.NewBuilder()

	// Sample types: value[0] = failures (count), value[1] = wasted
	// (nanoseconds). Default to wasted so -top ranks by burned time.
	failuresType := p.ValueType("failures", "count")
	wastedType := p.ValueType("wasted", "nanoseconds")
	p.Msg.BytesField(1, failuresType)
	p.Msg.BytesField(1, wastedType)

	for _, c := range rep.Cells {
		if c.Failures == 0 && c.WastedNS == 0 {
			continue // uncontended traffic is not a contention sample
		}
		opLoc := p.Location("op:" + c.Op)
		cellLoc := p.Location(fmt.Sprintf("cell %#x (%s)", c.Addr, c.Role))

		var sample pprofenc.Buf
		sample.PackedUint64(1, []uint64{cellLoc, opLoc}) // leaf first
		sample.PackedInt64(2, []int64{c.Failures, c.WastedNS})
		sample.BytesField(3, p.Label("cell", fmt.Sprintf("%#x", c.Addr)))
		sample.BytesField(3, p.Label("role", c.Role))
		sample.BytesField(3, p.Label("op", c.Op))
		p.Msg.BytesField(2, sample.Bytes())
	}

	p.FlushLocations()
	p.Msg.Int64Field(9, timeNanos)
	p.Msg.BytesField(11, wastedType) // period type
	p.Msg.Int64Field(12, int64(rep.OpScale))
	p.Msg.Int64Field(13, p.Str(fmt.Sprintf(
		"lfrc contention profile: wasted-ns scaled x%d for 1-in-%d op sampling; %d records dropped",
		rep.OpScale, rep.OpScale, rep.Dropped)))
	p.Msg.Int64Field(14, 1) // default_sample_type = wasted

	return p.WriteGzipped(w)
}
