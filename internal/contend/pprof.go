package contend

import (
	"compress/gzip"
	"fmt"
	"io"
	"time"
)

// WriteProfile writes the contention profile in pprof's gzipped protobuf
// format (the profile.proto wire format, hand-encoded: the repo is
// stdlib-only by policy). Each sample is one (cell, op-kind) accumulator
// with two values — attributed failure count and estimated wasted
// nanoseconds — under a synthesized two-frame stack: the operation kind
// calls the cell (named by role and address), so
//
//	go tool pprof -top contention.pb.gz
//
// ranks cells by wasted-ns directly and the flame view groups them under
// the operations that burned the time.
func (t *Table) WriteProfile(w io.Writer) error {
	return writeProfile(w, t.Snapshot(), time.Now().UnixNano())
}

// writeProfile is the testable core: profile from an explicit snapshot and
// timestamp.
func writeProfile(w io.Writer, rep Report, timeNanos int64) error {
	p := newProfileBuilder()

	// Sample types: value[0] = failures (count), value[1] = wasted
	// (nanoseconds). Default to wasted so -top ranks by burned time.
	failuresType := p.valueType("failures", "count")
	wastedType := p.valueType("wasted", "nanoseconds")
	p.msg.bytesField(1, failuresType)
	p.msg.bytesField(1, wastedType)

	for _, c := range rep.Cells {
		if c.Failures == 0 && c.WastedNS == 0 {
			continue // uncontended traffic is not a contention sample
		}
		opLoc := p.location("op:" + c.Op)
		cellLoc := p.location(fmt.Sprintf("cell %#x (%s)", c.Addr, c.Role))

		var sample protoBuf
		sample.packedUint64(1, []uint64{cellLoc, opLoc}) // leaf first
		sample.packedInt64(2, []int64{c.Failures, c.WastedNS})
		sample.bytesField(3, p.label("cell", fmt.Sprintf("%#x", c.Addr)))
		sample.bytesField(3, p.label("role", c.Role))
		sample.bytesField(3, p.label("op", c.Op))
		p.msg.bytesField(2, sample.buf)
	}

	p.flushLocations()
	p.msg.int64Field(9, timeNanos)
	p.msg.bytesField(11, wastedType) // period type
	p.msg.int64Field(12, int64(rep.OpScale))
	p.msg.int64Field(13, int64(p.str(fmt.Sprintf(
		"lfrc contention profile: wasted-ns scaled x%d for 1-in-%d op sampling; %d records dropped",
		rep.OpScale, rep.OpScale, rep.Dropped))))
	p.msg.int64Field(14, 1) // default_sample_type = wasted

	// String table last in construction, but protobuf fields may appear in
	// any order; emit it now.
	for _, s := range p.strings {
		p.msg.stringField(6, s)
	}

	gz := gzip.NewWriter(w)
	if _, err := gz.Write(p.msg.buf); err != nil {
		return err
	}
	return gz.Close()
}

// profileBuilder interns strings, functions and locations while the samples
// are streamed out.
type profileBuilder struct {
	msg     protoBuf
	strings []string
	strIdx  map[string]int64
	locIdx  map[string]uint64
	locs    []string // location id-1 -> name
}

func newProfileBuilder() *profileBuilder {
	b := &profileBuilder{strIdx: map[string]int64{}, locIdx: map[string]uint64{}}
	b.str("") // index 0 must be the empty string
	return b
}

// str interns s in the profile string table.
func (b *profileBuilder) str(s string) int64 {
	if i, ok := b.strIdx[s]; ok {
		return i
	}
	i := int64(len(b.strings))
	b.strings = append(b.strings, s)
	b.strIdx[s] = i
	return i
}

// valueType encodes a ValueType message.
func (b *profileBuilder) valueType(typ, unit string) []byte {
	var m protoBuf
	m.int64Field(1, b.str(typ))
	m.int64Field(2, b.str(unit))
	return m.buf
}

// label encodes a string Label message.
func (b *profileBuilder) label(key, value string) []byte {
	var m protoBuf
	m.int64Field(1, b.str(key))
	m.int64Field(2, b.str(value))
	return m.buf
}

// location interns a synthetic one-frame location named name and returns
// its id. Locations and their functions are emitted by flushLocations.
func (b *profileBuilder) location(name string) uint64 {
	if id, ok := b.locIdx[name]; ok {
		return id
	}
	id := uint64(len(b.locs) + 1)
	b.locs = append(b.locs, name)
	b.locIdx[name] = id
	return id
}

// flushLocations emits one Function and one Location per interned name,
// sharing ids (function i backs location i).
func (b *profileBuilder) flushLocations() {
	for i, name := range b.locs {
		id := uint64(i + 1)

		var fn protoBuf
		fn.uint64Field(1, id)
		fn.int64Field(2, b.str(name))
		fn.int64Field(3, b.str(name))
		b.msg.bytesField(5, fn.buf)

		var line protoBuf
		line.uint64Field(1, id)
		var loc protoBuf
		loc.uint64Field(1, id)
		loc.bytesField(4, line.buf)
		b.msg.bytesField(4, loc.buf)
	}
}

// protoBuf is a minimal protobuf wire-format writer: varints, length-
// delimited fields, and packed repeated scalars — all profile.proto needs.
type protoBuf struct{ buf []byte }

func (b *protoBuf) varint(v uint64) {
	for v >= 0x80 {
		b.buf = append(b.buf, byte(v)|0x80)
		v >>= 7
	}
	b.buf = append(b.buf, byte(v))
}

// tag writes a field key (field number + wire type).
func (b *protoBuf) tag(field, wire int) { b.varint(uint64(field)<<3 | uint64(wire)) }

func (b *protoBuf) int64Field(field int, v int64) {
	if v == 0 {
		return
	}
	b.tag(field, 0)
	b.varint(uint64(v))
}

func (b *protoBuf) uint64Field(field int, v uint64) {
	if v == 0 {
		return
	}
	b.tag(field, 0)
	b.varint(v)
}

func (b *protoBuf) bytesField(field int, data []byte) {
	b.tag(field, 2)
	b.varint(uint64(len(data)))
	b.buf = append(b.buf, data...)
}

func (b *protoBuf) stringField(field int, s string) {
	b.tag(field, 2)
	b.varint(uint64(len(s)))
	b.buf = append(b.buf, s...)
}

func (b *protoBuf) packedUint64(field int, vs []uint64) {
	var body protoBuf
	for _, v := range vs {
		body.varint(v)
	}
	b.bytesField(field, body.buf)
}

func (b *protoBuf) packedInt64(field int, vs []int64) {
	var body protoBuf
	for _, v := range vs {
		body.varint(uint64(v))
	}
	b.bytesField(field, body.buf)
}
