package contend

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"testing"

	"lfrc/internal/obs"
)

// --- minimal profile.proto reader (test-only) ---------------------------

type pbField struct {
	num  int
	wire int
	varV uint64
	data []byte
}

func pbParse(t *testing.T, buf []byte) []pbField {
	t.Helper()
	var out []pbField
	for len(buf) > 0 {
		key, n := pbVarint(buf)
		if n == 0 {
			t.Fatalf("truncated key at %d fields", len(out))
		}
		buf = buf[n:]
		f := pbField{num: int(key >> 3), wire: int(key & 7)}
		switch f.wire {
		case 0:
			v, n := pbVarint(buf)
			if n == 0 {
				t.Fatal("truncated varint")
			}
			f.varV, buf = v, buf[n:]
		case 2:
			l, n := pbVarint(buf)
			if n == 0 || uint64(len(buf[n:])) < l {
				t.Fatal("truncated bytes field")
			}
			f.data, buf = buf[n:n+int(l)], buf[n+int(l):]
		default:
			t.Fatalf("unexpected wire type %d", f.wire)
		}
		out = append(out, f)
	}
	return out
}

func pbVarint(b []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(b) && i < 10; i++ {
		v |= uint64(b[i]&0x7F) << (7 * i)
		if b[i] < 0x80 {
			return v, i + 1
		}
	}
	return 0, 0
}

func pbPacked(t *testing.T, data []byte) []uint64 {
	t.Helper()
	var out []uint64
	for len(data) > 0 {
		v, n := pbVarint(data)
		if n == 0 {
			t.Fatal("truncated packed varint")
		}
		out = append(out, v)
		data = data[n:]
	}
	return out
}

// parsedProfile is the subset of profile.proto the tests assert on.
type parsedProfile struct {
	strings    []string
	sampleType [][2]string // (type, unit) resolved
	samples    []parsedSample
	locNames   map[uint64]string // location id -> function name
	comment    []string
	defaultST  uint64
	period     uint64
}

type parsedSample struct {
	locs   []uint64
	values []uint64
	labels map[string]string
}

func parseProfile(t *testing.T, gzBytes []byte) parsedProfile {
	t.Helper()
	zr, err := gzip.NewReader(bytes.NewReader(gzBytes))
	if err != nil {
		t.Fatalf("profile is not gzip: %v", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("gunzip: %v", err)
	}

	p := parsedProfile{locNames: map[uint64]string{}}
	fields := pbParse(t, raw)

	// First pass: string table.
	var sampleTypeRaw [][]byte
	var samplesRaw [][]byte
	var locsRaw [][]byte
	var fnsRaw [][]byte
	var commentIdx []uint64
	for _, f := range fields {
		switch f.num {
		case 1:
			sampleTypeRaw = append(sampleTypeRaw, f.data)
		case 2:
			samplesRaw = append(samplesRaw, f.data)
		case 4:
			locsRaw = append(locsRaw, f.data)
		case 5:
			fnsRaw = append(fnsRaw, f.data)
		case 6:
			p.strings = append(p.strings, string(f.data))
		case 12:
			p.period = f.varV
		case 13:
			commentIdx = append(commentIdx, f.varV)
		case 14:
			p.defaultST = f.varV
		}
	}
	str := func(i uint64) string {
		if i >= uint64(len(p.strings)) {
			t.Fatalf("string index %d out of range (%d strings)", i, len(p.strings))
		}
		return p.strings[i]
	}
	for _, i := range commentIdx {
		p.comment = append(p.comment, str(i))
	}
	for _, d := range sampleTypeRaw {
		var typ, unit uint64
		for _, f := range pbParse(t, d) {
			switch f.num {
			case 1:
				typ = f.varV
			case 2:
				unit = f.varV
			}
		}
		p.sampleType = append(p.sampleType, [2]string{str(typ), str(unit)})
	}
	fnName := map[uint64]string{}
	for _, d := range fnsRaw {
		var id, name uint64
		for _, f := range pbParse(t, d) {
			switch f.num {
			case 1:
				id = f.varV
			case 2:
				name = f.varV
			}
		}
		fnName[id] = str(name)
	}
	for _, d := range locsRaw {
		var id, fn uint64
		for _, f := range pbParse(t, d) {
			switch f.num {
			case 1:
				id = f.varV
			case 4:
				for _, lf := range pbParse(t, f.data) {
					if lf.num == 1 {
						fn = lf.varV
					}
				}
			}
		}
		p.locNames[id] = fnName[fn]
	}
	for _, d := range samplesRaw {
		s := parsedSample{labels: map[string]string{}}
		for _, f := range pbParse(t, d) {
			switch f.num {
			case 1:
				s.locs = pbPacked(t, f.data)
			case 2:
				s.values = pbPacked(t, f.data)
			case 3:
				var k, v uint64
				for _, lf := range pbParse(t, f.data) {
					switch lf.num {
					case 1:
						k = lf.varV
					case 2:
						v = lf.varV
					}
				}
				s.labels[str(k)] = str(v)
			}
		}
		p.samples = append(p.samples, s)
	}
	return p
}

// --- tests ---------------------------------------------------------------

func TestWriteProfileWellFormed(t *testing.T) {
	tb := New(WithStripes(1))
	tb.SetOpScale(8)
	tb.Declare(0xA0, RoleRightHat)
	tb.Attempt(obs.KindPushRight, 0xA0, RolePointer, 0xA1, RoleNodeLink, true, true)
	tb.Attempt(obs.KindPushRight, 0xA0, RolePointer, 0xA1, RoleNodeLink, true, false)
	tb.Aggregate(obs.Event{Kind: obs.KindPushRight, Addr: 0xA0, Retries: 1}, 1000)

	var buf bytes.Buffer
	if err := tb.WriteProfile(&buf); err != nil {
		t.Fatalf("WriteProfile: %v", err)
	}
	p := parseProfile(t, buf.Bytes())

	if len(p.sampleType) != 2 ||
		p.sampleType[0] != [2]string{"failures", "count"} ||
		p.sampleType[1] != [2]string{"wasted", "nanoseconds"} {
		t.Fatalf("sample types = %v", p.sampleType)
	}
	if p.defaultST != 1 {
		t.Fatalf("default_sample_type = %d, want 1 (wasted)", p.defaultST)
	}
	if p.period != 8 {
		t.Fatalf("period = %d, want op scale 8", p.period)
	}
	if len(p.comment) != 1 || !bytes.Contains([]byte(p.comment[0]), []byte("1-in-8")) {
		t.Fatalf("comment = %q", p.comment)
	}

	if len(p.samples) != 2 {
		t.Fatalf("samples = %d, want 2 (two contended cells)", len(p.samples))
	}
	var hat *parsedSample
	for i := range p.samples {
		if p.samples[i].labels["cell"] == "0xa0" {
			hat = &p.samples[i]
		}
	}
	if hat == nil {
		t.Fatalf("no sample labeled cell=0xa0: %+v", p.samples)
	}
	// Declared role wins over the generic one the recording site passed.
	if hat.labels["role"] != "right_hat" || hat.labels["op"] != "push_right" {
		t.Fatalf("hat labels = %v", hat.labels)
	}
	// values[0] = failures, values[1] = wasted (500ns sampled * scale 8).
	if hat.values[0] != 2 || hat.values[1] != 4000 {
		t.Fatalf("hat values = %v, want [2 4000]", hat.values)
	}
	// Two-frame stack, leaf (the cell) first, caller (the op) second.
	if len(hat.locs) != 2 {
		t.Fatalf("hat stack = %v", hat.locs)
	}
	leaf, caller := p.locNames[hat.locs[0]], p.locNames[hat.locs[1]]
	if leaf != fmt.Sprintf("cell %#x (%s)", 0xA0, "right_hat") {
		t.Fatalf("leaf frame = %q", leaf)
	}
	if caller != "op:push_right" {
		t.Fatalf("caller frame = %q", caller)
	}
	if p.strings[0] != "" {
		t.Fatalf("string table index 0 = %q, want empty", p.strings[0])
	}
}

func TestWriteProfileEmptyTable(t *testing.T) {
	tb := New(WithStripes(1))
	var buf bytes.Buffer
	if err := tb.WriteProfile(&buf); err != nil {
		t.Fatalf("WriteProfile on empty table: %v", err)
	}
	p := parseProfile(t, buf.Bytes())
	if len(p.samples) != 0 {
		t.Fatalf("samples = %d, want 0", len(p.samples))
	}
	if len(p.sampleType) != 2 {
		t.Fatalf("sample types = %v", p.sampleType)
	}
}
