package contend

import (
	"fmt"
	"io"
	"sort"

	"lfrc/internal/obs"
)

// CellStats is one (cell, op-kind) row of the contention profile.
type CellStats struct {
	// Addr is the cell's word address in the simulated heap.
	Addr uint32 `json:"addr"`

	// Role names what the cell is (hat, rc word, node link, ...).
	Role string `json:"role"`

	// Op names the operation kind the row accounts for.
	Op string `json:"op"`

	// Attempts counts DCAS/CAS attempts involving the cell; Failures the
	// failed attempts attributed to it (the comparand that moved).
	Attempts int64 `json:"attempts"`
	Failures int64 `json:"failures"`

	// Ops counts completed operations that resolved on this cell;
	// RetrySum and RetryMax describe their retry-chain lengths.
	Ops      int64 `json:"ops"`
	RetrySum int64 `json:"retry_sum"`
	RetryMax int64 `json:"retry_max"`

	// WastedNS estimates the nanoseconds burned in failed attempts on
	// this cell (sampled latencies scaled by the op-sampling interval).
	WastedNS int64 `json:"wasted_ns"`

	// Hot is the decaying activity score the heatmap ranks by.
	Hot int64 `json:"hot"`
}

// HotCell is one row of the per-address heatmap: every op kind touching the
// address merged together, ranked by the decaying activity score.
type HotCell struct {
	Addr     uint32 `json:"addr"`
	Role     string `json:"role"`
	Attempts int64  `json:"attempts"`
	Failures int64  `json:"failures"`
	WastedNS int64  `json:"wasted_ns"`
	Hot      int64  `json:"hot"`

	// Ops lists the operation kinds seen on this cell, hottest first.
	Ops []string `json:"ops"`
}

// Report is the one-call dump of the observatory's state.
type Report struct {
	// OpScale is the wasted-ns scaling factor (the recorder's op-sampling
	// interval); estimates approximate un-sampled totals.
	OpScale int `json:"op_scale"`

	// Dropped counts records lost because a stripe's table was full.
	Dropped int64 `json:"dropped"`

	// Cells holds every (cell, op) accumulator, most wasted-ns first.
	Cells []CellStats `json:"cells"`

	// Heatmap is the decaying top-K per-address ranking, hottest first.
	Heatmap []HotCell `json:"heatmap"`
}

// heatmapK is how many cells the heatmap ranks.
const heatmapK = 16

// merged is the snapshot-time merge accumulator for one (addr, kind) key.
type merged struct {
	addr  uint32
	kind  obs.Kind
	role  Role
	stats CellStats
}

// Snapshot merges the stripes into a Report. Cold path; allocates. Racy
// reads of individual counters are acceptable: the profile is a triage
// surface, not an audit.
func (t *Table) Snapshot() Report {
	if t == nil {
		return Report{OpScale: 1}
	}
	t.decayTick()
	byKey := map[uint64]*merged{}
	for i := range t.stripes {
		es := t.stripes[i].entries
		for j := range es {
			e := &es[j]
			k := e.key.Load()
			if k == 0 {
				continue
			}
			m := byKey[k]
			if m == nil {
				m = &merged{addr: uint32(k >> 8), kind: obs.Kind(k & 0xFF)}
				byKey[k] = m
			}
			if r := Role(e.role.Load()); r.specificity() > m.role.specificity() {
				m.role = r
			}
			m.stats.Attempts += e.attempts.Load()
			m.stats.Failures += e.failures.Load()
			m.stats.Ops += e.ops.Load()
			m.stats.RetrySum += e.retrySum.Load()
			if rm := e.retryMax.Load(); rm > m.stats.RetryMax {
				m.stats.RetryMax = rm
			}
			m.stats.WastedNS += e.wastedNS.Load()
			m.stats.Hot += e.hot.Load()
		}
	}

	// Wasted-ns fallback: a cell can accumulate failures through exact
	// Attempt attribution while the op sampler never times one of its
	// retried operations (sparse sampling, single CPU) — direct wasted-ns
	// would then read 0 forever. Estimate instead: each attributed failure
	// is one discarded attempt, charged at the kind's EWMA per-attempt
	// latency. Failures are exact counts (Attempt is unsampled), so the
	// estimate is NOT scaled by OpScale.
	for _, m := range byKey {
		if m.stats.WastedNS == 0 && m.stats.Failures > 0 {
			m.stats.WastedNS = m.stats.Failures * t.retryEWMA(m.kind)
		}
	}

	rep := Report{OpScale: t.OpScale(), Dropped: t.Dropped()}
	byAddr := map[uint32]*HotCell{}
	type opHeat struct {
		op  string
		hot int64
	}
	opsByAddr := map[uint32][]opHeat{}
	for _, m := range byKey {
		m.stats.Addr = m.addr
		m.stats.Role = m.role.String()
		m.stats.Op = m.kind.String()
		rep.Cells = append(rep.Cells, m.stats)

		h := byAddr[m.addr]
		if h == nil {
			h = &HotCell{Addr: m.addr}
			byAddr[m.addr] = h
		}
		if h.Role == "" || m.role.specificity() > roleSpecificityOf(h.Role) {
			h.Role = m.role.String()
		}
		h.Attempts += m.stats.Attempts
		h.Failures += m.stats.Failures
		h.WastedNS += m.stats.WastedNS
		h.Hot += m.stats.Hot
		opsByAddr[m.addr] = append(opsByAddr[m.addr], opHeat{m.kind.String(), m.stats.Hot})
	}
	sort.Slice(rep.Cells, func(i, j int) bool {
		a, b := rep.Cells[i], rep.Cells[j]
		if a.WastedNS != b.WastedNS {
			return a.WastedNS > b.WastedNS
		}
		if a.Failures != b.Failures {
			return a.Failures > b.Failures
		}
		if a.Addr != b.Addr {
			return a.Addr < b.Addr
		}
		return a.Op < b.Op
	})

	for addr, h := range byAddr {
		ops := opsByAddr[addr]
		sort.Slice(ops, func(i, j int) bool {
			if ops[i].hot != ops[j].hot {
				return ops[i].hot > ops[j].hot
			}
			return ops[i].op < ops[j].op
		})
		for _, o := range ops {
			h.Ops = append(h.Ops, o.op)
		}
		rep.Heatmap = append(rep.Heatmap, *h)
	}
	sort.Slice(rep.Heatmap, func(i, j int) bool {
		a, b := rep.Heatmap[i], rep.Heatmap[j]
		if a.Hot != b.Hot {
			return a.Hot > b.Hot
		}
		if a.WastedNS != b.WastedNS {
			return a.WastedNS > b.WastedNS
		}
		return a.Addr < b.Addr
	})
	if len(rep.Heatmap) > heatmapK {
		rep.Heatmap = rep.Heatmap[:heatmapK]
	}
	return rep
}

// HotSample is one TopInto entry: a cell's activity at sampling time with the
// role as a raw id (the timeline stores ids on its capture path and renders
// names only at snapshot time).
type HotSample struct {
	Addr     uint32
	Role     uint8
	Hot      int64
	Failures int64
}

// TopInto fills dst with the approximately hottest cells (by decaying score,
// hottest first) and reports how many entries it wrote. Unlike Snapshot it
// allocates nothing and writes nothing (no decay tick), so the timeline
// capture path can call it every interval. The per-address merge is greedy —
// an entry only folds into a cell already resident in dst — so rankings near
// the cutoff can differ slightly from Snapshot's exact merge; for a top-4
// dashboard panel that tolerance is fine. Nil-safe.
func (t *Table) TopInto(dst []HotSample) int {
	for i := range dst {
		dst[i] = HotSample{}
	}
	if t == nil || len(dst) == 0 {
		return 0
	}
	n := 0
	for i := range t.stripes {
		st := &t.stripes[i]
		es := st.entries
		// Walk the stripe's occupancy directory, not the entry array: cost
		// scales with claimed entries, which is what a per-interval caller
		// can afford.
		un := int(st.usedN.Load())
		if un > len(st.used) {
			un = len(st.used)
		}
		for u := 0; u < un; u++ {
			idx := st.used[u].Load()
			if idx == 0 {
				continue
			}
			e := &es[idx-1]
			k := e.key.Load()
			if k == 0 {
				continue
			}
			addr := uint32(k >> 8)
			hot := e.hot.Load()
			fails := e.failures.Load()
			role := Role(e.role.Load())
			merged := false
			for m := 0; m < n; m++ {
				if dst[m].Addr == addr {
					dst[m].Hot += hot
					dst[m].Failures += fails
					if role.specificity() > Role(dst[m].Role).specificity() {
						dst[m].Role = uint8(role)
					}
					// Re-sink into rank order (score grew).
					for m > 0 && dst[m].Hot > dst[m-1].Hot {
						dst[m], dst[m-1] = dst[m-1], dst[m]
						m--
					}
					merged = true
					break
				}
			}
			if merged {
				continue
			}
			if n < len(dst) {
				dst[n] = HotSample{Addr: addr, Role: uint8(role), Hot: hot, Failures: fails}
				for m := n; m > 0 && dst[m].Hot > dst[m-1].Hot; m-- {
					dst[m], dst[m-1] = dst[m-1], dst[m]
				}
				n++
			} else if last := len(dst) - 1; hot > dst[last].Hot {
				dst[last] = HotSample{Addr: addr, Role: uint8(role), Hot: hot, Failures: fails}
				for m := last; m > 0 && dst[m].Hot > dst[m-1].Hot; m-- {
					dst[m], dst[m-1] = dst[m-1], dst[m]
				}
			}
		}
	}
	return n
}

// roleSpecificityOf recovers merge precedence from a rendered role name.
func roleSpecificityOf(name string) int {
	switch name {
	case "", "unknown":
		return 0
	case "pointer":
		return 1
	default:
		return 2
	}
}

// WriteReport renders the human-readable contention report served on
// /debug/lfrc/contention: the heatmap first (what is hot now), then the
// full per-(cell, op) table ranked by wasted work.
func (t *Table) WriteReport(w io.Writer) {
	rep := t.Snapshot()
	fmt.Fprintf(w, "lfrc contention observatory (wasted-ns scaled x%d; %d records dropped)\n\n",
		rep.OpScale, rep.Dropped)
	if len(rep.Cells) == 0 {
		fmt.Fprintln(w, "no contention recorded")
		return
	}

	fmt.Fprintf(w, "hot cells (decaying top-%d):\n", heatmapK)
	fmt.Fprintf(w, "  %-4s %-10s %-10s %10s %10s %14s  %s\n",
		"rank", "cell", "role", "attempts", "failures", "wasted", "ops")
	for i, h := range rep.Heatmap {
		fmt.Fprintf(w, "  %-4d %-10s %-10s %10d %10d %14s  %s\n",
			i+1, fmt.Sprintf("%#x", h.Addr), h.Role, h.Attempts, h.Failures,
			fmtNS(h.WastedNS), joinMax(h.Ops, 4))
	}

	fmt.Fprintf(w, "\nper-(cell, op) profile, most wasted first:\n")
	fmt.Fprintf(w, "  %-10s %-10s %-12s %10s %10s %10s %9s %9s %14s\n",
		"cell", "role", "op", "attempts", "failures", "ops", "retry/op", "retrymax", "wasted")
	for _, c := range rep.Cells {
		perOp := 0.0
		if c.Ops > 0 {
			perOp = float64(c.RetrySum) / float64(c.Ops)
		}
		fmt.Fprintf(w, "  %-10s %-10s %-12s %10d %10d %10d %9.2f %9d %14s\n",
			fmt.Sprintf("%#x", c.Addr), c.Role, c.Op, c.Attempts, c.Failures,
			c.Ops, perOp, c.RetryMax, fmtNS(c.WastedNS))
	}
}

// fmtNS renders nanoseconds with a unit suffix for the text report.
func fmtNS(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}

// joinMax joins up to n strings with "+", appending "…" when truncated.
func joinMax(ss []string, n int) string {
	out := ""
	for i, s := range ss {
		if i == n {
			return out + "+…"
		}
		if i > 0 {
			out += "+"
		}
		out += s
	}
	return out
}
