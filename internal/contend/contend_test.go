package contend

import (
	"strings"
	"sync"
	"testing"
	"time"

	"lfrc/internal/obs"
)

// findCell fetches the merged (addr, op) row from a snapshot, if present.
func findCell(rep Report, addr uint32, op string) (CellStats, bool) {
	for _, c := range rep.Cells {
		if c.Addr == addr && c.Op == op {
			return c, true
		}
	}
	return CellStats{}, false
}

func TestNilTableIsDisabled(t *testing.T) {
	var tb *Table
	tb.Attempt(obs.KindLoad, 1, RolePointer, 2, RoleRC, true, false)
	tb.OpDone(obs.KindLoad, 1, RolePointer, 2, RoleRC, 3)
	tb.Aggregate(obs.Event{Kind: obs.KindLoad, Addr: 1, Retries: 2}, 100)
	tb.Declare(1, RoleLeftHat)
	tb.SetOpScale(8)
	if got := tb.OpScale(); got != 1 {
		t.Fatalf("nil OpScale = %d, want 1", got)
	}
	if got := tb.Dropped(); got != 0 {
		t.Fatalf("nil Dropped = %d, want 0", got)
	}
	rep := tb.Snapshot()
	if len(rep.Cells) != 0 || len(rep.Heatmap) != 0 {
		t.Fatalf("nil Snapshot not empty: %+v", rep)
	}
	var sb strings.Builder
	tb.WriteReport(&sb)
	if !strings.Contains(sb.String(), "no contention recorded") {
		t.Fatalf("nil WriteReport = %q", sb.String())
	}
}

func TestAttemptAttribution(t *testing.T) {
	tb := New(WithStripes(1))

	// Pointer cell moved, rc cell did not.
	tb.Attempt(obs.KindLoad, 0x10, RolePointer, 0x20, RoleRC, true, false)
	// RC cell moved, pointer did not.
	tb.Attempt(obs.KindLoad, 0x10, RolePointer, 0x20, RoleRC, false, true)
	// Transient (neither re-read mismatched): blamed on the primary cell.
	tb.Attempt(obs.KindLoad, 0x10, RolePointer, 0x20, RoleRC, false, false)

	rep := tb.Snapshot()
	p, ok := findCell(rep, 0x10, "load")
	if !ok {
		t.Fatal("pointer cell missing from snapshot")
	}
	if p.Attempts != 3 || p.Failures != 2 {
		t.Fatalf("pointer cell attempts/failures = %d/%d, want 3/2", p.Attempts, p.Failures)
	}
	if p.Role != "pointer" {
		t.Fatalf("pointer cell role = %q", p.Role)
	}
	r, ok := findCell(rep, 0x20, "load")
	if !ok {
		t.Fatal("rc cell missing from snapshot")
	}
	if r.Attempts != 3 || r.Failures != 1 {
		t.Fatalf("rc cell attempts/failures = %d/%d, want 3/1", r.Attempts, r.Failures)
	}
	if r.Role != "rc" {
		t.Fatalf("rc cell role = %q", r.Role)
	}
}

func TestOpDoneRetryAccounting(t *testing.T) {
	tb := New(WithStripes(1))
	tb.OpDone(obs.KindPushRight, 0x30, RoleRightHat, 0x40, RoleLeftHat, 2)
	tb.OpDone(obs.KindPushRight, 0x30, RoleRightHat, 0x40, RoleLeftHat, 5)

	rep := tb.Snapshot()
	c, ok := findCell(rep, 0x30, "push_right")
	if !ok {
		t.Fatal("hat cell missing")
	}
	if c.Ops != 2 || c.RetrySum != 7 || c.RetryMax != 5 {
		t.Fatalf("ops/retrySum/retryMax = %d/%d/%d, want 2/7/5", c.Ops, c.RetrySum, c.RetryMax)
	}
	if c.Role != "right_hat" {
		t.Fatalf("role = %q, want right_hat", c.Role)
	}
	// The secondary cell only counts the attempt.
	s, ok := findCell(rep, 0x40, "push_right")
	if !ok {
		t.Fatal("secondary cell missing")
	}
	if s.Attempts != 2 || s.Ops != 0 {
		t.Fatalf("secondary attempts/ops = %d/%d, want 2/0", s.Attempts, s.Ops)
	}
}

func TestAggregateWastedNS(t *testing.T) {
	tb := New(WithStripes(1))
	tb.SetOpScale(4)

	// 3 retries over 400ns: wasted = 400*3/4 = 300, scaled x4 = 1200.
	tb.Aggregate(obs.Event{Kind: obs.KindLoad, Addr: 0x50, Retries: 3}, 400)
	// No retries: no wasted work recorded.
	tb.Aggregate(obs.Event{Kind: obs.KindLoad, Addr: 0x50, Retries: 0}, 400)
	// No cell: dropped.
	tb.Aggregate(obs.Event{Kind: obs.KindLoad, Addr: 0, Retries: 3}, 400)

	rep := tb.Snapshot()
	c, ok := findCell(rep, 0x50, "load")
	if !ok {
		t.Fatal("cell missing")
	}
	if c.WastedNS != 1200 {
		t.Fatalf("wastedNS = %d, want 1200", c.WastedNS)
	}
}

// TestWastedNSFallbackEWMA is the regression test for the all-zero wasted_ns
// columns in BENCH_0004: a cell whose failures are counted exactly (Attempt
// is unsampled) but whose retried operations the op sampler never timed used
// to report wasted_ns = 0 forever. The snapshot must fall back to the kind's
// EWMA of per-attempt latency instead of multiplying by zero.
func TestWastedNSFallbackEWMA(t *testing.T) {
	tb := New(WithStripes(1))
	tb.SetOpScale(64)

	// A contended run: five failures attributed to the hat cell...
	for i := 0; i < 5; i++ {
		tb.Attempt(obs.KindPushRight, 0x70, RoleRightHat, 0, RoleUnknown, true, false)
	}
	// ...while every latency sample the recorder kept for the kind was a
	// retry-free op (with 1-in-64 sampling on one CPU that is the common
	// case), so the direct wasted-ns path never fires.
	for i := 0; i < 10; i++ {
		tb.Aggregate(obs.Event{Kind: obs.KindPushRight, Addr: 0x70, Retries: 0}, 800)
	}

	rep := tb.Snapshot()
	c, ok := findCell(rep, 0x70, "push_right")
	if !ok {
		t.Fatal("cell missing")
	}
	if c.Failures != 5 {
		t.Fatalf("failures = %d, want 5", c.Failures)
	}
	// 5 failures charged at the 800ns per-attempt EWMA; the estimate is
	// built from exact failure counts, so OpScale must NOT inflate it.
	if c.WastedNS != 5*800 {
		t.Fatalf("fallback wastedNS = %d, want %d (5 failures x 800ns EWMA, unscaled)", c.WastedNS, 5*800)
	}
	if len(rep.Heatmap) == 0 || rep.Heatmap[0].WastedNS == 0 {
		t.Fatalf("heatmap did not inherit the fallback estimate: %+v", rep.Heatmap)
	}
}

// TestWastedNSFallbackCrossKind: when a kind has no latency samples at all,
// the fallback uses the cross-kind EWMA rather than reporting zero.
func TestWastedNSFallbackCrossKind(t *testing.T) {
	tb := New(WithStripes(1))
	tb.Attempt(obs.KindPushLeft, 0x80, RoleLeftHat, 0, RoleUnknown, true, false)
	// The only timed op is a load elsewhere: 1 retry over 200ns = 100ns
	// per attempt.
	tb.Aggregate(obs.Event{Kind: obs.KindLoad, Addr: 0, Retries: 1}, 200)

	rep := tb.Snapshot()
	c, ok := findCell(rep, 0x80, "push_left")
	if !ok {
		t.Fatal("cell missing")
	}
	if c.WastedNS != 100 {
		t.Fatalf("cross-kind fallback wastedNS = %d, want 100", c.WastedNS)
	}
}

// TestWastedNSFallbackNoSamples: with no latency information anywhere the
// estimate stays 0 — the fallback never invents latency out of thin air.
func TestWastedNSFallbackNoSamples(t *testing.T) {
	tb := New(WithStripes(1))
	tb.Attempt(obs.KindPushLeft, 0x90, RoleLeftHat, 0, RoleUnknown, true, false)
	rep := tb.Snapshot()
	c, ok := findCell(rep, 0x90, "push_left")
	if !ok {
		t.Fatal("cell missing")
	}
	if c.WastedNS != 0 {
		t.Fatalf("wastedNS = %d with no latency samples, want 0", c.WastedNS)
	}
}

// TestTopInto checks the timeline's zero-alloc heatmap tap: hottest first,
// per-address merge, zero-filled tail, nil safety.
func TestTopInto(t *testing.T) {
	tb := New(WithStripes(1))
	for i := 0; i < 8; i++ {
		tb.Attempt(obs.KindPushRight, 0xA0, RoleRightHat, 0, RoleUnknown, true, false)
	}
	tb.Attempt(obs.KindPopLeft, 0xA0, RoleRightHat, 0, RoleUnknown, true, false) // same addr, other kind
	tb.Attempt(obs.KindLoad, 0xB0, RolePointer, 0, RoleUnknown, true, false)

	var top [4]HotSample
	n := tb.TopInto(top[:])
	if n != 2 {
		t.Fatalf("TopInto wrote %d entries, want 2", n)
	}
	if top[0].Addr != 0xA0 || top[0].Failures != 9 {
		t.Fatalf("hottest = %+v, want addr 0xA0 with 9 merged failures", top[0])
	}
	if Role(top[0].Role) != RoleRightHat {
		t.Fatalf("hottest role = %v, want right_hat", Role(top[0].Role))
	}
	if top[1].Addr != 0xB0 || top[2] != (HotSample{}) {
		t.Fatalf("rest = %+v", top[1:])
	}

	allocs := testing.AllocsPerRun(100, func() { tb.TopInto(top[:]) })
	if allocs != 0 {
		t.Fatalf("TopInto allocates %.0f/op, want 0", allocs)
	}

	var nilTb *Table
	if got := nilTb.TopInto(top[:]); got != 0 {
		t.Fatalf("nil TopInto = %d, want 0", got)
	}
}

func TestDeclareUpgradesRole(t *testing.T) {
	tb := New(WithStripes(1))
	tb.Declare(0x60, RoleRightHat)

	// A generic site records the declared cell as a mere pointer…
	tb.Attempt(obs.KindLoad, 0x60, RolePointer, 0, RoleUnknown, true, false)

	rep := tb.Snapshot()
	c, ok := findCell(rep, 0x60, "load")
	if !ok {
		t.Fatal("cell missing")
	}
	// …but the profile shows its structural identity.
	if c.Role != "right_hat" {
		t.Fatalf("role = %q, want right_hat", c.Role)
	}

	// Re-declaring an address updates in place without growing the registry.
	tb.Declare(0x60, RoleLeftHat)
	if n := tb.declaredN.Load(); n != 1 {
		t.Fatalf("declaredN = %d, want 1", n)
	}
}

func TestHeatmapMergesOpsPerCell(t *testing.T) {
	tb := New(WithStripes(1))
	tb.Attempt(obs.KindPushRight, 0x70, RoleRightHat, 0, RoleUnknown, true, false)
	tb.Attempt(obs.KindPopRight, 0x70, RoleRightHat, 0, RoleUnknown, true, false)
	tb.Attempt(obs.KindPopRight, 0x70, RoleRightHat, 0, RoleUnknown, true, false)

	rep := tb.Snapshot()
	if len(rep.Heatmap) != 1 {
		t.Fatalf("heatmap rows = %d, want 1", len(rep.Heatmap))
	}
	h := rep.Heatmap[0]
	if h.Addr != 0x70 || h.Failures != 3 {
		t.Fatalf("heatmap row = %+v", h)
	}
	// pop_right is hotter (2 failures) so it leads the op list.
	if len(h.Ops) != 2 || h.Ops[0] != "pop_right" || h.Ops[1] != "push_right" {
		t.Fatalf("heatmap ops = %v", h.Ops)
	}
}

func TestHeatmapTruncatesToK(t *testing.T) {
	tb := New(WithStripes(1))
	for i := 0; i < heatmapK+8; i++ {
		tb.Attempt(obs.KindStore, uint32(0x100+i), RolePointer, 0, RoleUnknown, true, false)
	}
	rep := tb.Snapshot()
	if len(rep.Heatmap) != heatmapK {
		t.Fatalf("heatmap rows = %d, want %d", len(rep.Heatmap), heatmapK)
	}
	if len(rep.Cells) != heatmapK+8 {
		t.Fatalf("cells = %d, want %d (full profile is not truncated)", len(rep.Cells), heatmapK+8)
	}
}

func TestDecayHalvesHotScore(t *testing.T) {
	tb := New(WithStripes(1), WithHalfLife(time.Second))
	clock := tb.now() // real start
	now := clock
	tb.now = func() int64 { return now }
	tb.lastDecay.Store(now)

	tb.Attempt(obs.KindLoad, 0x80, RolePointer, 0, RoleUnknown, true, false)
	tb.Aggregate(obs.Event{Kind: obs.KindLoad, Addr: 0x80, Retries: 1}, 2048)

	hot0 := tb.Snapshot().Heatmap[0].Hot
	if hot0 == 0 {
		t.Fatal("hot score not accumulated")
	}

	// Two half-lives later the score has quartered.
	now += 2 * int64(time.Second)
	hot1 := tb.Snapshot().Heatmap[0].Hot
	if want := hot0 >> 2; hot1 != want {
		t.Fatalf("hot after 2 half-lives = %d, want %d (from %d)", hot1, want, hot0)
	}

	// Monotonic counters are untouched by decay.
	c, _ := findCell(tb.Snapshot(), 0x80, "load")
	if c.Failures != 1 {
		t.Fatalf("failures decayed: %d", c.Failures)
	}
}

func TestFullStripeDrops(t *testing.T) {
	tb := New(WithStripes(1), WithCapacity(4))
	for i := 0; i < 16; i++ {
		tb.Attempt(obs.KindLoad, uint32(0x200+i), RolePointer, 0, RoleUnknown, true, false)
	}
	if tb.Dropped() == 0 {
		t.Fatal("expected drops when the stripe overflows")
	}
	if n := len(tb.Snapshot().Cells); n != 4 {
		t.Fatalf("cells = %d, want 4 (stripe capacity)", n)
	}
}

func TestConcurrentRecording(t *testing.T) {
	tb := New()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				addr := uint32(0x300 + i%4)
				tb.Attempt(obs.KindDCAS, addr, RoleRightHat, addr+1, RoleNodeLink, true, false)
				tb.OpDone(obs.KindDCAS, addr, RoleRightHat, addr+1, RoleNodeLink, 1)
				tb.Aggregate(obs.Event{Kind: obs.KindDCAS, Addr: addr, Retries: 1}, 64)
			}
		}()
	}
	wg.Wait()

	rep := tb.Snapshot()
	var failures, ops int64
	for _, c := range rep.Cells {
		failures += c.Failures
		ops += c.Ops
	}
	if want := int64(workers * perWorker); failures != want || ops != want {
		t.Fatalf("failures/ops = %d/%d, want %d each (dropped=%d)",
			failures, ops, want, tb.Dropped())
	}
}

func TestWriteReportRendersTables(t *testing.T) {
	tb := New(WithStripes(1))
	tb.SetOpScale(64)
	tb.Declare(0x90, RoleLeftHat)
	tb.Attempt(obs.KindPopLeft, 0x90, RolePointer, 0, RoleUnknown, true, false)
	tb.Aggregate(obs.Event{Kind: obs.KindPopLeft, Addr: 0x90, Retries: 1}, 1000)

	var sb strings.Builder
	tb.WriteReport(&sb)
	out := sb.String()
	for _, want := range []string{"scaled x64", "hot cells", "0x90", "left_hat", "pop_left"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestRoleStringAndSpecificity(t *testing.T) {
	if RoleRightHat.String() != "right_hat" || Role(250).String() != "unknown" {
		t.Fatal("Role.String broken")
	}
	if !(RoleUnknown.specificity() < RolePointer.specificity() &&
		RolePointer.specificity() < RoleRC.specificity()) {
		t.Fatal("specificity ordering broken")
	}
}
