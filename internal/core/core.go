// Package core implements LFRC — the lock-free reference counting
// operations of Detlefs, Martin, Moir & Steele (PODC 2001), Figure 2.
//
// Each heap object carries a reference count with two guarantees that are
// deliberately weaker than exactness (paper §1):
//
//  1. whenever the number of pointers to an object is non-zero, so is its
//     reference count (no premature free), and
//  2. when the number of pointers reaches zero the count eventually reaches
//     zero too (no leak, for acyclic garbage).
//
// Counts may therefore run transiently high: an operation conservatively
// increments the target's count *before* creating a pointer to it and
// compensates with a decrement if the pointer is never created. The one
// place this is impossible with plain CAS is LFRCLoad: between reading a
// pointer and incrementing the count of its referent, the referent could be
// freed and recycled, so the increment would corrupt unrelated memory. LFRC
// closes that window with DCAS, incrementing the count atomically with a
// check that the pointer still exists (paper §5). NaiveLoad preserves the
// broken CAS-only protocol for experiment E1.
//
// Pointer cells managed by this package must be accessed only through these
// operations (the paper's "LFRC compliance" criterion, §2.1).
package core

import (
	"runtime"
	"sync/atomic"

	"lfrc/internal/contend"
	"lfrc/internal/dcas"
	"lfrc/internal/fault"
	"lfrc/internal/mem"
	"lfrc/internal/obs"
	"lfrc/internal/stripe"
)

// RC provides the LFRC operations over one heap and one DCAS engine.
type RC struct {
	h *mem.Heap
	e dcas.Engine

	// destroyBudget caps the number of objects reclaimed per Destroy
	// call when positive (the paper's §7 "incremental collection of large
	// structures"); the remainder parks on the zombie list.
	destroyBudget int

	// zombieHead is a Treiber stack of objects whose count reached zero
	// but whose reclamation was deferred. The link lives in each parked
	// object's aux word; the head packs a 32-bit pop counter with the
	// 32-bit object address.
	zombieHead  atomic.Uint64
	zombieCount atomic.Int64

	// LoadHook and NaiveHook, when non-nil, run inside Load and
	// NaiveLoad respectively, between reading the pointer and updating
	// the referent's count. They exist so tests and experiments can open
	// the race window deterministically (see experiment E1); they must be
	// set before the RC is shared between goroutines.
	LoadHook  func(v mem.Ref)
	NaiveHook func(v mem.Ref)

	// stats is striped across cache-line-padded counter blocks so hot
	// operations on different goroutines don't contend on one line;
	// snapshots sum across stripes.
	stats []opStripe

	// obs is the optional flight recorder. A nil recorder is fully
	// disabled: every hot-path call on it is a single nil check.
	obs *obs.Recorder

	// ct is the optional contention observatory. A nil table is fully
	// disabled; when installed, every retry loop reports its failed
	// attempts (attributed to the comparand that moved) and retry chains.
	ct *contend.Table

	// fj is the optional fault injector. A nil injector is fully disabled;
	// when installed, every CAS/DCAS attempt in the LFRC operations and the
	// zombie machinery consults it and treats a firing as a genuine failure
	// — taking exactly the retry or compensation path a lost race takes.
	// Injected failures are not reported to the contention observatory:
	// no comparand actually moved.
	fj *fault.Injector
}

// Option configures an RC.
type Option func(*RC)

// WithIncrementalDestroy caps reclamation work per Destroy call at budget
// objects; excess dead objects are parked on a zombie list and reclaimed by
// later Destroy calls or by DrainZombies. This implements the paper's §7
// suggestion for avoiding long pauses when the last pointer to a large
// structure is dropped. A budget of 0 (the default) reclaims eagerly.
func WithIncrementalDestroy(budget int) Option {
	return func(rc *RC) { rc.destroyBudget = budget }
}

// WithObserver attaches a flight recorder: LFRC operations record sampled
// events (kind, ref, cell, outcome, retry count, latency) into its lock-free
// per-stripe rings. A nil recorder leaves observation disabled.
func WithObserver(r *obs.Recorder) Option {
	return func(rc *RC) { rc.obs = r }
}

// WithContention attaches a contention observatory: the DCAS/CAS retry
// loops of every LFRC operation report failed attempts per cell (split
// across the two comparands by re-reading them — see dcas.Attribute) and
// retry-chain lengths per completed contended operation. Uncontended
// operations (no retry) record nothing, so the hot path pays one nil/zero
// check. A nil table leaves observation disabled.
func WithContention(t *contend.Table) Option {
	return func(rc *RC) { rc.ct = t }
}

// WithFault attaches a fault injector: the DCAS/CAS attempts of every LFRC
// operation, add_to_rc, and the zombie push/drain loops consult it and treat
// a firing as a failed attempt. A nil injector leaves injection disabled.
func WithFault(in *fault.Injector) Option {
	return func(rc *RC) { rc.fj = in }
}

// New creates an RC over the given heap and engine.
func New(h *mem.Heap, e dcas.Engine, opts ...Option) *RC {
	rc := &RC{
		h:     h,
		e:     e,
		stats: make([]opStripe, stripe.Clamp(0, runtime.GOMAXPROCS(0))),
	}
	for _, o := range opts {
		o(rc)
	}
	return rc
}

// st routes the calling goroutine to a counter stripe.
func (rc *RC) st() *opStripe { return &rc.stats[stripe.Hint(len(rc.stats))] }

// Observer returns the attached flight recorder, which is nil (a valid,
// disabled recorder) unless WithObserver was used. Structure packages built
// on this RC record their own op-level events through it.
func (rc *RC) Observer() *obs.Recorder { return rc.obs }

// Contention returns the attached contention observatory, which is nil (a
// valid, disabled table) unless WithContention was used. Structure packages
// built on this RC attribute their own retry loops through it.
func (rc *RC) Contention() *contend.Table { return rc.ct }

// Fault returns the attached fault injector, which is nil (a valid, disabled
// injector) unless WithFault was used. Structure packages built on this RC
// consult it in their own retry loops.
func (rc *RC) Fault() *fault.Injector { return rc.fj }

// Heap returns the underlying heap (for address computation and stats).
func (rc *RC) Heap() *mem.Heap { return rc.h }

// Engine returns the underlying DCAS engine.
func (rc *RC) Engine() dcas.Engine { return rc.e }

// NewObject allocates an object of type t with reference count 1 — the
// reference returned to the caller, which the caller must eventually either
// store somewhere with StoreAlloc or release with Destroy.
func (rc *RC) NewObject(t mem.TypeID) (mem.Ref, error) {
	r, err := rc.h.Alloc(t)
	if err != nil {
		return 0, err
	}
	rc.st().allocs.Add(1)
	return r, nil
}

// Load implements LFRCLoad (paper Figure 2, lines 1–12): it loads the
// pointer at shared cell a into *dest, incrementing the referent's count
// atomically — via DCAS — with the check that the pointer still exists, and
// then releases the reference previously held in *dest.
func (rc *RC) Load(a mem.Addr, dest *mem.Ref) {
	t0 := rc.obs.Sample()
	var retries uint32
	var oldrc uint64
	olddest := *dest
	for {
		v := mem.Ref(rc.e.Read(a))
		if v == 0 {
			*dest = 0
			break
		}
		r := rc.e.Read(rc.h.RCAddr(v))
		if rc.LoadHook != nil {
			rc.LoadHook(v)
		}
		// An injected firing here lands in the paper's §5 window — between
		// reading (v, rc) and the DCAS — and forces the retry path.
		if rc.fj.Inject(fault.CoreLoad) {
			retries++
			rc.st().loadRetries.Add(1)
			continue
		}
		if rc.e.DCAS(a, rc.h.RCAddr(v), uint64(v), r, uint64(v), r+1) {
			*dest = v
			oldrc = r
			break
		}
		retries++
		rc.st().loadRetries.Add(1)
		if rc.ct != nil {
			m0, m1 := dcas.Attribute(rc.e, a, rc.h.RCAddr(v), uint64(v), r)
			rc.ct.Attempt(obs.KindLoad, uint32(a), contend.RolePointer,
				uint32(rc.h.RCAddr(v)), contend.RoleRC, m0, m1)
		}
	}
	rc.st().loads.Add(1)
	if retries > 0 {
		var rcA uint32
		if *dest != 0 {
			rcA = uint32(rc.h.RCAddr(*dest))
		}
		rc.ct.OpDone(obs.KindLoad, uint32(a), contend.RolePointer, rcA, contend.RoleRC, retries)
	}
	rc.recordT(t0, obs.KindLoad, *dest, a, true, retries, oldrc, 1)
	rc.Destroy(olddest)
}

// NaiveLoad is the CAS-only load the paper argues against in §5 (the
// approach of Valois [19] without type-stable memory): it increments the
// referent's count in a separate step from reading the pointer. Between the
// two steps the object may be freed and recycled, so the increment can
// corrupt freed or reallocated memory. It exists solely for experiment E1;
// never use it in real code.
func (rc *RC) NaiveLoad(a mem.Addr, dest *mem.Ref) {
	t0 := rc.obs.Sample()
	var retries uint32
	var oldrc uint64
	olddest := *dest
	for {
		v := mem.Ref(rc.e.Read(a))
		if v == 0 {
			*dest = 0
			break
		}
		if rc.NaiveHook != nil {
			rc.NaiveHook(v)
		}
		oldrc = rc.addToRC(obs.KindNaiveLoad, v, 1) // unsafe: v may already be freed
		if mem.Ref(rc.e.Read(a)) == v {
			*dest = v
			break
		}
		rc.addToRC(obs.KindNaiveLoad, v, -1)
		retries++
		rc.st().loadRetries.Add(1)
		rc.ct.Attempt(obs.KindNaiveLoad, uint32(a), contend.RolePointer, 0, contend.RoleUnknown, true, false)
	}
	rc.st().loads.Add(1)
	if retries > 0 {
		rc.ct.OpDone(obs.KindNaiveLoad, uint32(a), contend.RolePointer, 0, contend.RoleUnknown, retries)
	}
	rc.recordT(t0, obs.KindNaiveLoad, *dest, a, true, retries, oldrc, 1)
	rc.Destroy(olddest)
}

// Store implements LFRCStore (Figure 2, lines 21–28): it stores pointer
// value v into shared cell a, incrementing v's count first and releasing the
// overwritten pointer afterwards.
func (rc *RC) Store(a mem.Addr, v mem.Ref) {
	t0 := rc.obs.Sample()
	var oldrc uint64
	if v != 0 {
		oldrc = rc.addToRC(obs.KindStore, v, 1)
	}
	var retries uint32
	for {
		old := mem.Ref(rc.e.Read(a))
		if rc.fj.Inject(fault.CoreStore) {
			retries++
			continue
		}
		if rc.e.CAS(a, uint64(old), uint64(v)) {
			rc.st().stores.Add(1)
			if retries > 0 {
				rc.ct.OpDone(obs.KindStore, uint32(a), contend.RolePointer, 0, contend.RoleUnknown, retries)
			}
			rc.recordT(t0, obs.KindStore, v, a, true, retries, oldrc, 1)
			rc.Destroy(old)
			return
		}
		retries++
		rc.ct.Attempt(obs.KindStore, uint32(a), contend.RolePointer, 0, contend.RoleUnknown, true, false)
	}
}

// StoreAlloc is LFRCStoreAlloc (paper §4, Figure 1 caption): like Store but
// without incrementing v's count — it transfers the reference that NewObject
// returned directly into the cell. After StoreAlloc the caller's local copy
// of v is dead weight: do not Destroy it and do not use it as a counted
// reference.
func (rc *RC) StoreAlloc(a mem.Addr, v mem.Ref) {
	t0 := rc.obs.Sample()
	var retries uint32
	for {
		old := mem.Ref(rc.e.Read(a))
		if rc.fj.Inject(fault.CoreStoreAlloc) {
			retries++
			continue
		}
		if rc.e.CAS(a, uint64(old), uint64(v)) {
			rc.st().stores.Add(1)
			if retries > 0 {
				rc.ct.OpDone(obs.KindStore, uint32(a), contend.RolePointer, 0, contend.RoleUnknown, retries)
			}
			rc.obs.Record(t0, obs.KindStore, uint32(v), uint32(a), true, retries)
			rc.Destroy(old)
			return
		}
		retries++
		rc.ct.Attempt(obs.KindStore, uint32(a), contend.RolePointer, 0, contend.RoleUnknown, true, false)
	}
}

// Copy implements LFRCCopy (Figure 2, lines 29–32): it assigns pointer value
// w to the local pointer variable *v, adjusting both reference counts.
func (rc *RC) Copy(v *mem.Ref, w mem.Ref) {
	t0 := rc.obs.Sample()
	var oldrc uint64
	if w != 0 {
		oldrc = rc.addToRC(obs.KindCopy, w, 1)
	}
	old := *v
	*v = w
	rc.st().copies.Add(1)
	rc.recordT(t0, obs.KindCopy, w, 0, true, 0, oldrc, 1)
	rc.Destroy(old)
}

// CAS implements LFRCCAS: the single-location simplification of DCAS (paper
// §2.2 and Figure 2 caption).
func (rc *RC) CAS(a mem.Addr, old, new mem.Ref) bool {
	t0 := rc.obs.Sample()
	var oldrc uint64
	if new != 0 {
		oldrc = rc.addToRC(obs.KindCAS, new, 1)
	}
	rc.st().casOps.Add(1)
	// An injected firing fails the whole operation: the caller observes a
	// lost CAS and the provisional increment on new is compensated below —
	// the exact path a genuine failure takes.
	if !rc.fj.Inject(fault.CoreCAS) && rc.e.CAS(a, uint64(old), uint64(new)) {
		rc.recordT(t0, obs.KindCAS, new, a, true, 0, oldrc, 1)
		rc.Destroy(old)
		return true
	}
	rc.recordT(t0, obs.KindCAS, new, a, false, 0, oldrc, 1)
	rc.Destroy(new)
	return false
}

// DCAS implements LFRCDCAS (Figure 2, lines 33–39): reference counts of the
// new referents are raised before the attempt; on success the two displaced
// pointers are released, on failure the two provisional increments are
// compensated.
func (rc *RC) DCAS(a0, a1 mem.Addr, old0, old1, new0, new1 mem.Ref) bool {
	t0 := rc.obs.Sample()
	var oldrc0 uint64
	if new0 != 0 {
		oldrc0 = rc.addToRC(obs.KindDCAS, new0, 1)
	}
	if new1 != 0 {
		rc.addToRC(obs.KindDCAS, new1, 1)
	}
	rc.st().dcasOps.Add(1)
	if !rc.fj.Inject(fault.CoreDCAS) && rc.e.DCAS(a0, a1, uint64(old0), uint64(old1), uint64(new0), uint64(new1)) {
		rc.recordT(t0, obs.KindDCAS, new0, a0, true, 0, oldrc0, 1)
		rc.Destroy(old0, old1)
		return true
	}
	rc.recordT(t0, obs.KindDCAS, new0, a0, false, 0, oldrc0, 1)
	rc.Destroy(new0, new1)
	return false
}

// Destroy implements LFRCDestroy (Figure 2, lines 13–15) for any number of
// local pointer values: each non-null argument's count is decremented, and
// objects whose count reaches zero are reclaimed — recursively releasing
// every pointer they contain — either eagerly or, under
// WithIncrementalDestroy, up to the configured budget per call.
func (rc *RC) Destroy(vs ...mem.Ref) {
	t0 := rc.obs.Sample()
	var stack []mem.Ref
	for _, v := range vs {
		if v == 0 {
			continue
		}
		rc.st().destroys.Add(1)
		old := rc.addToRC(obs.KindDestroy, v, -1)
		hitZero := old == 1
		// The first released ref carries the sampled latency token; the
		// rest are sink-only (t0 = 0) so every decrement still reaches a
		// tracked object's lifecycle timeline with its rc transition.
		rc.recordT(t0, obs.KindDestroy, v, 0, hitZero, 0, old, -1)
		t0 = 0
		if hitZero {
			stack = append(stack, v)
		}
	}
	if len(stack) == 0 {
		return
	}
	rc.reclaim(stack, rc.destroyBudget)
}

// reclaim frees every object on stack plus any of their descendants whose
// count drops to zero. With a positive budget it frees at most budget
// objects and parks the rest on the zombie list.
func (rc *RC) reclaim(stack []mem.Ref, budget int) int {
	processed := 0
	for len(stack) > 0 {
		if budget > 0 && processed >= budget {
			for _, p := range stack {
				rc.pushZombie(p)
			}
			return processed
		}
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		d, err := rc.h.Type(rc.h.TypeOf(p))
		if err == nil {
			for _, f := range d.PtrFields {
				c := mem.Ref(rc.e.Read(rc.h.FieldAddr(p, f)))
				if c == 0 {
					continue
				}
				rc.st().destroys.Add(1)
				old := rc.addToRC(obs.KindDestroy, c, -1)
				rc.recordT(0, obs.KindDestroy, c, 0, old == 1, 0, old, -1)
				if old == 1 {
					stack = append(stack, c)
				}
			}
		}
		if err := rc.h.Free(p); err != nil {
			rc.st().freeErrors.Add(1)
		} else {
			rc.st().frees.Add(1)
		}
		processed++
	}
	return processed
}

// DrainZombies reclaims up to max parked objects (and their newly dead
// descendants), returning the number of objects actually freed. A max of 0
// drains everything.
func (rc *RC) DrainZombies(max int) int {
	processed := 0
	for max <= 0 || processed < max {
		z := rc.popZombie()
		if z == 0 {
			break
		}
		budget := 0
		if max > 0 {
			budget = max - processed
		}
		processed += rc.reclaim([]mem.Ref{z}, budget)
	}
	return processed
}

// ZombieCount reports the number of objects currently parked for deferred
// reclamation.
func (rc *RC) ZombieCount() int64 { return rc.zombieCount.Load() }

// pushZombie parks a dead object (rc already zero) on the zombie stack,
// linking through its aux word.
func (rc *RC) pushZombie(p mem.Ref) {
	for {
		old := rc.zombieHead.Load()
		rc.h.Store(rc.h.AuxAddr(p), old&0xFFFF_FFFF)
		if rc.fj.Inject(fault.CoreZombiePush) {
			continue
		}
		if rc.zombieHead.CompareAndSwap(old, old&^uint64(0xFFFF_FFFF)|uint64(p)) {
			rc.zombieCount.Add(1)
			rc.st().zombiePushes.Add(1)
			rc.obs.Note(obs.KindZombiePush, uint32(p), 0)
			return
		}
	}
}

// popZombie removes one parked object, or returns 0 if none are parked.
func (rc *RC) popZombie() mem.Ref {
	for {
		old := rc.zombieHead.Load()
		p := mem.Ref(old & 0xFFFF_FFFF)
		if p == 0 {
			return 0
		}
		next := rc.h.Load(rc.h.AuxAddr(p)) & 0xFFFF_FFFF
		cnt := (old >> 32) + 1
		if rc.fj.Inject(fault.CoreZombieDrain) {
			continue
		}
		if rc.zombieHead.CompareAndSwap(old, cnt<<32|next) {
			rc.zombieCount.Add(-1)
			rc.obs.Note(obs.KindZombieDrain, uint32(p), 0)
			return p
		}
	}
}

// addToRC implements add_to_rc (Figure 2, lines 16–20): a CAS loop adding v
// to p's reference count and returning the count's previous value. It is
// safe only when the caller knows a counted reference to p exists (paper
// §5); NaiveLoad violates that precondition on purpose. Updates that find
// poison in the count cell — evidence of a use-after-free — are tallied in
// Stats().PoisonedRCUpdates and still performed, faithfully simulating the
// memory corruption the paper describes.
func (rc *RC) addToRC(kind obs.Kind, p mem.Ref, v int64) uint64 {
	a := rc.h.RCAddr(p)
	var retries uint32
	for {
		old := rc.e.Read(a)
		if old >= mem.Poison && old <= mem.Poison+8 {
			rc.st().poisonedRCUpdates.Add(1)
		}
		if rc.fj.Inject(fault.CoreAddToRC) {
			retries++
			continue
		}
		if rc.e.CAS(a, old, uint64(int64(old)+v)) {
			if retries > 0 {
				rc.ct.OpDone(kind, uint32(a), contend.RoleRC, 0, contend.RoleUnknown, retries)
			}
			return old
		}
		retries++
		rc.ct.Attempt(kind, uint32(a), contend.RoleRC, 0, contend.RoleUnknown, true, false)
	}
}

// recordT records one operation's flight event carrying its rc transition:
// the count before the update and the count after applying delta. A null ref
// carries no transition; counts are truncated to 32 bits (a poisoned count
// truncates to a distinctive 0xEF5C0DED).
func (rc *RC) recordT(t0 int64, kind obs.Kind, ref mem.Ref, addr mem.Addr, ok bool, retries uint32, old uint64, delta int64) {
	var o, n uint32
	if ref != 0 {
		o, n = uint32(old), uint32(uint64(int64(old)+delta))
	}
	rc.obs.RecordT(t0, kind, uint32(ref), uint32(addr), ok, retries, o, n)
}

// RCOf returns the current reference count of p (diagnostics only).
func (rc *RC) RCOf(p mem.Ref) uint64 { return rc.e.Read(rc.h.RCAddr(p)) }

// WordLoad reads a non-pointer (scalar) cell through the engine. Scalar
// fields are outside the LFRC protocol but still share cells with DCAS
// traffic, so they must be read engine-aware.
func (rc *RC) WordLoad(a mem.Addr) uint64 { return rc.e.Read(a) }

// WordStore writes a non-pointer (scalar) cell through the engine.
func (rc *RC) WordStore(a mem.Addr, v uint64) { rc.e.Write(a, v) }

// WordCAS compare-and-swaps a non-pointer (scalar) cell through the engine.
func (rc *RC) WordCAS(a mem.Addr, old, new uint64) bool { return rc.e.CAS(a, old, new) }

// opStripe is one stripe of the RC's atomic accounting, padded out to a
// cache-line multiple so neighbouring stripes never false-share.
type opStripe struct {
	allocs            atomic.Int64
	loads             atomic.Int64
	loadRetries       atomic.Int64
	stores            atomic.Int64
	copies            atomic.Int64
	casOps            atomic.Int64
	dcasOps           atomic.Int64
	destroys          atomic.Int64
	frees             atomic.Int64
	freeErrors        atomic.Int64
	zombiePushes      atomic.Int64
	poisonedRCUpdates atomic.Int64
	_                 [32]byte
}

// Stats is a snapshot of LFRC operation counters.
type Stats struct {
	// Allocs counts NewObject calls; Frees counts objects reclaimed when
	// their count hit zero. FreeErrors counts reclamations the heap
	// rejected (double frees caused by corrupted counts).
	Allocs, Frees, FreeErrors int64

	// Loads, Stores, Copies, CASOps, DCASOps and Destroys count the
	// corresponding LFRC operations; LoadRetries counts DCAS failures
	// inside Load (contention on the pointer or its referent's count).
	Loads, LoadRetries, Stores, Copies, CASOps, DCASOps, Destroys int64

	// ZombiePushes counts objects parked for incremental reclamation.
	ZombiePushes int64

	// PoisonedRCUpdates counts reference-count updates that found poison
	// in the count cell — each one is a use-after-free that DCAS-based
	// Load would have prevented.
	PoisonedRCUpdates int64
}

// Stats returns a snapshot of the RC's counters, summed across stripes.
func (rc *RC) Stats() Stats {
	var s Stats
	for i := range rc.stats {
		st := &rc.stats[i]
		s.Allocs += st.allocs.Load()
		s.Frees += st.frees.Load()
		s.FreeErrors += st.freeErrors.Load()
		s.Loads += st.loads.Load()
		s.LoadRetries += st.loadRetries.Load()
		s.Stores += st.stores.Load()
		s.Copies += st.copies.Load()
		s.CASOps += st.casOps.Load()
		s.DCASOps += st.dcasOps.Load()
		s.Destroys += st.destroys.Load()
		s.ZombiePushes += st.zombiePushes.Load()
		s.PoisonedRCUpdates += st.poisonedRCUpdates.Load()
	}
	return s
}
