// Package core implements LFRC — the lock-free reference counting
// operations of Detlefs, Martin, Moir & Steele (PODC 2001), Figure 2.
//
// Each heap object carries a reference count with two guarantees that are
// deliberately weaker than exactness (paper §1):
//
//  1. whenever the number of pointers to an object is non-zero, so is its
//     reference count (no premature free), and
//  2. when the number of pointers reaches zero the count eventually reaches
//     zero too (no leak, for acyclic garbage).
//
// Counts may therefore run transiently high: an operation conservatively
// increments the target's count *before* creating a pointer to it and
// compensates with a decrement if the pointer is never created. The one
// place this is impossible with plain CAS is LFRCLoad: between reading a
// pointer and incrementing the count of its referent, the referent could be
// freed and recycled, so the increment would corrupt unrelated memory. LFRC
// closes that window with DCAS, incrementing the count atomically with a
// check that the pointer still exists (paper §5). NaiveLoad preserves the
// broken CAS-only protocol for experiment E1.
//
// What happens *after* a count reaches zero is not this package's policy:
// count-zero objects are handed to a pluggable reclamation backend (the
// internal/reclaim seam — the paper-faithful zombie stack by default, or
// epoch-based limbo bins), and the RC implements reclaim.Env so backends
// can release children and return slots without knowing the LFRC protocol.
//
// Pointer cells managed by this package must be accessed only through these
// operations (the paper's "LFRC compliance" criterion, §2.1).
package core

import (
	"runtime"
	"sync/atomic"

	"lfrc/internal/contend"
	"lfrc/internal/dcas"
	"lfrc/internal/fault"
	"lfrc/internal/mem"
	"lfrc/internal/obs"
	"lfrc/internal/reclaim"
	"lfrc/internal/stripe"
)

// RC provides the LFRC operations over one heap and one DCAS engine.
type RC struct {
	h *mem.Heap
	e dcas.Engine

	// strat is the reference-count strategy (see strategy.go): the paper's
	// figure2 single-count protocol by default, or the weighted split
	// external/internal protocol. stratKind and the split weights are the
	// construction-time knobs it is built from.
	strat       Strategy
	stratKind   StrategyKind
	splitLink   int64
	splitRefill int64

	// reclaimKind selects the reclamation backend built at construction;
	// destroyBudget is the incremental-destroy budget handed to it (the
	// paper's §7 "incremental collection of large structures").
	reclaimKind   reclaim.Kind
	destroyBudget int

	// rec is the reclamation backend: every object whose count this RC
	// observes dropping to zero is retired through it, and it frees them
	// back through the reclaim.Env methods below.
	rec reclaim.Reclaimer

	// LoadHook and NaiveHook, when non-nil, run inside Load and
	// NaiveLoad respectively, between reading the pointer and updating
	// the referent's count. They exist so tests and experiments can open
	// the race window deterministically (see experiment E1); they must be
	// set before the RC is shared between goroutines.
	LoadHook  func(v mem.Ref)
	NaiveHook func(v mem.Ref)

	// stats is striped across cache-line-padded counter blocks so hot
	// operations on different goroutines don't contend on one line;
	// snapshots sum across stripes.
	stats []opStripe

	// obs is the optional flight recorder. A nil recorder is fully
	// disabled: every hot-path call on it is a single nil check.
	obs *obs.Recorder

	// ct is the optional contention observatory. A nil table is fully
	// disabled; when installed, every retry loop reports its failed
	// attempts (attributed to the comparand that moved) and retry chains.
	ct *contend.Table

	// fj is the optional fault injector. A nil injector is fully disabled;
	// when installed, every CAS/DCAS attempt in the LFRC operations and the
	// reclamation machinery consults it and treats a firing as a genuine
	// failure — taking exactly the retry or compensation path a lost race
	// takes. Injected failures are not reported to the contention
	// observatory: no comparand actually moved.
	fj *fault.Injector
}

// Option configures an RC.
type Option func(*RC)

// WithIncrementalDestroy caps reclamation work per release at budget
// objects; excess dead objects stay parked with the reclamation backend and
// are reclaimed by later releases or by DrainZombies. This implements the
// paper's §7 suggestion for avoiding long pauses when the last pointer to a
// large structure is dropped. A budget of 0 (the default) reclaims eagerly.
func WithIncrementalDestroy(budget int) Option {
	return func(c *RC) { c.destroyBudget = budget }
}

// WithReclaimerKind selects the reclamation backend (see internal/reclaim).
// The default is reclaim.KindLFRC, the paper-faithful zombie stack.
func WithReclaimerKind(k reclaim.Kind) Option {
	return func(c *RC) { c.reclaimKind = k }
}

// WithStrategyKind selects the reference-count strategy (see strategy.go).
// The default is StrategyFigure2, the paper-faithful single-count protocol.
func WithStrategyKind(k StrategyKind) Option {
	return func(c *RC) { c.stratKind = k }
}

// WithSplitWeights overrides the split strategy's link stash size and refill
// amount (both default to splitDefaultWeight). It only takes effect when
// StrategySplit is selected; tests use tiny weights to force the refill and
// merge boundaries that are vanishingly rare at the default size.
func WithSplitWeights(link, refill int64) Option {
	return func(c *RC) { c.splitLink, c.splitRefill = link, refill }
}

// WithObserver attaches a flight recorder: LFRC operations record sampled
// events (kind, ref, cell, outcome, retry count, latency) into its lock-free
// per-stripe rings. A nil recorder leaves observation disabled.
func WithObserver(r *obs.Recorder) Option {
	return func(c *RC) { c.obs = r }
}

// WithContention attaches a contention observatory: the DCAS/CAS retry
// loops of every LFRC operation report failed attempts per cell (split
// across the two comparands by re-reading them — see dcas.Attribute) and
// retry-chain lengths per completed contended operation. Uncontended
// operations (no retry) record nothing, so the hot path pays one nil/zero
// check. A nil table leaves observation disabled.
func WithContention(t *contend.Table) Option {
	return func(c *RC) { c.ct = t }
}

// WithFault attaches a fault injector: the DCAS/CAS attempts of every LFRC
// operation, add_to_rc, and the reclamation backend's park/drain loops
// consult it and treat a firing as a failed attempt. A nil injector leaves
// injection disabled.
func WithFault(in *fault.Injector) Option {
	return func(c *RC) { c.fj = in }
}

// New creates an RC over the given heap and engine. The reclamation backend
// is built last, over the fully configured RC, which implements its Env.
func New(h *mem.Heap, e dcas.Engine, opts ...Option) *RC {
	c := &RC{
		h:           h,
		e:           e,
		reclaimKind: reclaim.KindLFRC,
		stats:       make([]opStripe, stripe.Clamp(0, runtime.GOMAXPROCS(0))),
	}
	for _, o := range opts {
		o(c)
	}
	c.strat = strategyFor(c.stratKind, c.splitLink, c.splitRefill)
	c.rec = reclaim.New(c.reclaimKind, c,
		reclaim.WithBudget(c.destroyBudget),
		reclaim.WithObserver(c.obs),
		reclaim.WithFault(c.fj),
	)
	return c
}

// st routes the calling goroutine to a counter stripe.
func (c *RC) st() *opStripe { return &c.stats[stripe.Hint(len(c.stats))] }

// Observer returns the attached flight recorder, which is nil (a valid,
// disabled recorder) unless WithObserver was used. Structure packages built
// on this RC record their own op-level events through it.
func (c *RC) Observer() *obs.Recorder { return c.obs }

// Contention returns the attached contention observatory, which is nil (a
// valid, disabled table) unless WithContention was used. Structure packages
// built on this RC attribute their own retry loops through it.
func (c *RC) Contention() *contend.Table { return c.ct }

// Fault returns the attached fault injector, which is nil (a valid, disabled
// injector) unless WithFault was used. Structure packages built on this RC
// consult it in their own retry loops.
func (c *RC) Fault() *fault.Injector { return c.fj }

// Heap returns the underlying heap (for address computation and stats).
func (c *RC) Heap() *mem.Heap { return c.h }

// Engine returns the underlying DCAS engine.
func (c *RC) Engine() dcas.Engine { return c.e }

// Reclaimer returns the reclamation backend the RC was built with.
func (c *RC) Reclaimer() reclaim.Reclaimer { return c.rec }

// Strategy returns the reference-count strategy the RC was built with.
func (c *RC) Strategy() Strategy { return c.strat }

// StrategyName returns the active strategy's name ("figure2" or "split").
func (c *RC) StrategyName() string { return c.strat.Name() }

// DecodeLink decodes a raw pointer-cell word into the referent it links to
// and the reference-count weight the link carries (0, 0 for null). Strictly
// read-only observers (census, audits, the tracing collector) use it to
// understand cells without assuming the figure2 bare-ref encoding.
func (c *RC) DecodeLink(u uint64) (mem.Ref, int64) {
	return c.strat.Ref(u), c.strat.Weight(u)
}

// NewObject allocates an object of type t with reference count 1 — the
// reference returned to the caller, which the caller must eventually either
// store somewhere with StoreAlloc or release with Destroy.
func (c *RC) NewObject(t mem.TypeID) (mem.Ref, error) {
	r, err := c.h.Alloc(t)
	if err != nil {
		return 0, err
	}
	c.st().allocs.Add(1)
	return r, nil
}

// Load implements LFRCLoad: it loads the pointer at shared cell a into
// *dest, securing a counted reference to the referent per the active
// strategy — the paper's Figure-2 DCAS (lines 1–12) under figure2, a
// weight-stash borrow under split — and then releases the reference
// previously held in *dest. The retry loop itself lives with the strategy
// (see strategy.go).
func (c *RC) Load(a mem.Addr, dest *mem.Ref) {
	t0 := c.obs.Sample()
	olddest := *dest
	v, old, delta, retries := c.strat.Load(c, a)
	*dest = v
	c.st().loads.Add(1)
	c.recordT(t0, obs.KindLoad, v, a, true, retries, old, delta)
	c.Destroy(olddest)
}

// NaiveLoad is the CAS-only load the paper argues against in §5 (the
// approach of Valois [19] without type-stable memory): it increments the
// referent's count in a separate step from reading the pointer. Between the
// two steps the object may be freed and recycled, so the increment can
// corrupt freed or reallocated memory. It exists solely for experiment E1;
// never use it in real code.
func (c *RC) NaiveLoad(a mem.Addr, dest *mem.Ref) {
	t0 := c.obs.Sample()
	var retries uint32
	var oldrc uint64
	olddest := *dest
	for {
		v := c.strat.Ref(c.e.Read(a))
		if v == 0 {
			*dest = 0
			break
		}
		if c.NaiveHook != nil {
			c.NaiveHook(v)
		}
		oldrc = c.addToRC(obs.KindNaiveLoad, v, 1) // unsafe: v may already be freed
		if c.strat.Ref(c.e.Read(a)) == v {
			*dest = v
			break
		}
		c.addToRC(obs.KindNaiveLoad, v, -1)
		retries++
		c.st().loadRetries.Add(1)
		c.ct.Attempt(obs.KindNaiveLoad, uint32(a), contend.RolePointer, 0, contend.RoleUnknown, true, false)
	}
	c.st().loads.Add(1)
	if retries > 0 {
		c.ct.OpDone(obs.KindNaiveLoad, uint32(a), contend.RolePointer, 0, contend.RoleUnknown, retries)
	}
	c.recordT(t0, obs.KindNaiveLoad, *dest, a, true, retries, oldrc, 1)
	c.Destroy(olddest)
}

// Store implements LFRCStore (Figure 2, lines 21–28): it stores pointer
// value v into shared cell a, crediting v's count with a full link's worth
// first and releasing the displaced link afterwards.
func (c *RC) Store(a mem.Addr, v mem.Ref) {
	t0 := c.obs.Sample()
	var oldrc uint64
	lc := c.strat.LinkCredit()
	if v != 0 {
		oldrc = c.addToRC(obs.KindStore, v, lc)
	}
	nw := c.strat.Pack(v)
	var retries uint32
	for {
		u := c.e.Read(a)
		if c.fj.Inject(fault.CoreStore) {
			retries++
			continue
		}
		if c.e.CAS(a, u, nw) {
			c.st().stores.Add(1)
			if retries > 0 {
				c.ct.OpDone(obs.KindStore, uint32(a), contend.RolePointer, 0, contend.RoleUnknown, retries)
			}
			c.recordT(t0, obs.KindStore, v, a, true, retries, oldrc, lc)
			c.releaseWord(u)
			return
		}
		retries++
		if c.ct != nil {
			c.ct.Attempt(obs.KindStore, uint32(a), c.strat.FailRole(c, a, u), 0, contend.RoleUnknown, true, false)
		}
	}
}

// StoreAlloc is LFRCStoreAlloc (paper §4, Figure 1 caption): like Store but
// transferring the reference that NewObject returned directly into the cell
// (under split, the strategy's AllocCredit tops the transferred weight-1
// reference up to a full link stash). After StoreAlloc the caller's local
// copy of v is dead weight: do not Destroy it and do not use it as a counted
// reference.
func (c *RC) StoreAlloc(a mem.Addr, v mem.Ref) {
	t0 := c.obs.Sample()
	if ac := c.strat.AllocCredit(); ac > 0 && v != 0 {
		c.addToRC(obs.KindStore, v, ac)
	}
	nw := c.strat.Pack(v)
	var retries uint32
	for {
		u := c.e.Read(a)
		if c.fj.Inject(fault.CoreStoreAlloc) {
			retries++
			continue
		}
		if c.e.CAS(a, u, nw) {
			c.st().stores.Add(1)
			if retries > 0 {
				c.ct.OpDone(obs.KindStore, uint32(a), contend.RolePointer, 0, contend.RoleUnknown, retries)
			}
			c.obs.Record(t0, obs.KindStore, uint32(v), uint32(a), true, retries)
			c.releaseWord(u)
			return
		}
		retries++
		if c.ct != nil {
			c.ct.Attempt(obs.KindStore, uint32(a), c.strat.FailRole(c, a, u), 0, contend.RoleUnknown, true, false)
		}
	}
}

// Copy implements LFRCCopy (Figure 2, lines 29–32): it assigns pointer value
// w to the local pointer variable *v, adjusting both reference counts.
func (c *RC) Copy(v *mem.Ref, w mem.Ref) {
	t0 := c.obs.Sample()
	var oldrc uint64
	if w != 0 {
		oldrc = c.addToRC(obs.KindCopy, w, 1)
	}
	old := *v
	*v = w
	c.st().copies.Add(1)
	c.recordT(t0, obs.KindCopy, w, 0, true, 0, oldrc, 1)
	c.Destroy(old)
}

// CAS implements LFRCCAS: the single-location simplification of DCAS (paper
// §2.2 and Figure 2 caption). The comparison is over abstract pointer values
// — the strategy's Swing absorbs weight-stash churn internally.
func (c *RC) CAS(a mem.Addr, old, new mem.Ref) bool {
	t0 := c.obs.Sample()
	var oldrc uint64
	lc := c.strat.LinkCredit()
	if new != 0 {
		oldrc = c.addToRC(obs.KindCAS, new, lc)
	}
	c.st().casOps.Add(1)
	// An injected firing fails the whole operation: the caller observes a
	// lost CAS and the provisional credit on new is compensated below — the
	// exact path a genuine failure takes.
	if !c.fj.Inject(fault.CoreCAS) {
		if d, ok := c.strat.Swing(c, a, old, new); ok {
			c.recordT(t0, obs.KindCAS, new, a, true, 0, oldrc, lc)
			c.releaseWord(d)
			return true
		}
	}
	c.recordT(t0, obs.KindCAS, new, a, false, 0, oldrc, lc)
	c.releaseWeight(new, lc)
	return false
}

// DCAS implements LFRCDCAS (Figure 2, lines 33–39): reference counts of the
// new referents are credited before the attempt; on success the two
// displaced links are released, on failure the two provisional credits are
// compensated.
func (c *RC) DCAS(a0, a1 mem.Addr, old0, old1, new0, new1 mem.Ref) bool {
	t0 := c.obs.Sample()
	var oldrc0 uint64
	lc := c.strat.LinkCredit()
	if new0 != 0 {
		oldrc0 = c.addToRC(obs.KindDCAS, new0, lc)
	}
	if new1 != 0 {
		c.addToRC(obs.KindDCAS, new1, lc)
	}
	c.st().dcasOps.Add(1)
	if !c.fj.Inject(fault.CoreDCAS) {
		if d0, d1, ok := c.strat.SwingPair(c, a0, a1, old0, old1, new0, new1); ok {
			c.recordT(t0, obs.KindDCAS, new0, a0, true, 0, oldrc0, lc)
			c.releasePair(d0, d1)
			return true
		}
	}
	c.recordT(t0, obs.KindDCAS, new0, a0, false, 0, oldrc0, lc)
	if lc == 1 {
		c.Destroy(new0, new1)
	} else {
		c.releaseWeight(new0, lc)
		c.releaseWeight(new1, lc)
	}
	return false
}

// releaseWord releases the link credit carried by a displaced pointer word.
func (c *RC) releaseWord(u uint64) {
	v := c.strat.Ref(u)
	if v == 0 {
		return
	}
	c.releaseWeight(v, c.strat.Weight(u))
}

// releasePair releases two displaced pointer words from one DCAS, keeping
// the figure2 path on the exact batched-Destroy shape it always had.
func (c *RC) releasePair(d0, d1 uint64) {
	w0, w1 := c.strat.Weight(d0), c.strat.Weight(d1)
	if w0 <= 1 && w1 <= 1 {
		c.Destroy(c.strat.Ref(d0), c.strat.Ref(d1))
		return
	}
	c.releaseWord(d0)
	c.releaseWord(d1)
}

// releaseWeight drops w units of v's reference count, retiring v when the
// count hits zero. Weight 1 is exactly Destroy of one local reference; a
// larger weight is a split-strategy external merge — a destroyed link's
// remaining stash folded back into the count in one update.
func (c *RC) releaseWeight(v mem.Ref, w int64) {
	if v == 0 || w <= 0 {
		return
	}
	if w == 1 {
		c.Destroy(v)
		return
	}
	c.st().destroys.Add(1)
	c.st().extMerges.Add(1)
	old := c.addToRC(obs.KindDestroy, v, -w)
	hitZero := old == uint64(w)
	c.recordT(0, obs.KindDestroy, v, 0, hitZero, 0, old, -w)
	if hitZero {
		c.rec.Retire([]mem.Ref{v})
	}
}

// Destroy implements LFRCDestroy (Figure 2, lines 13–15) for any number of
// local pointer values: each non-null argument's count is decremented, and
// objects whose count reaches zero are retired to the reclamation backend —
// which releases every pointer they contain when it frees them, either
// eagerly or deferred, per its policy.
func (c *RC) Destroy(vs ...mem.Ref) {
	t0 := c.obs.Sample()
	var dead []mem.Ref
	for _, v := range vs {
		if v == 0 {
			continue
		}
		c.st().destroys.Add(1)
		old := c.addToRC(obs.KindDestroy, v, -1)
		hitZero := old == 1
		// The first released ref carries the sampled latency token; the
		// rest are sink-only (t0 = 0) so every decrement still reaches a
		// tracked object's lifecycle timeline with its rc transition.
		c.recordT(t0, obs.KindDestroy, v, 0, hitZero, 0, old, -1)
		t0 = 0
		if hitZero {
			dead = append(dead, v)
		}
	}
	if len(dead) == 0 {
		return
	}
	c.rec.Retire(dead)
}

// ReleaseChildren implements reclaim.Env: it decrements the reference count
// of every pointer field of p, nulls the field, and appends children whose
// count reached zero to dst. The backend chooses when to call it — the lfrc
// backend at free time (a budget-parked zombie keeps its fields until its
// destruction resumes, §7), the epoch backend at retire time (so a parked
// husk holds no edges and cannot transitively pin its subgraph in limbo).
// Nulling is safe either way: p is count-zero and unreachable, and it keeps
// a mid-drain Audit consistent — a cleared field contributes no expected
// count, matching the already-decremented child.
func (c *RC) ReleaseChildren(p mem.Ref, dst []mem.Ref) []mem.Ref {
	d, err := c.h.Type(c.h.TypeOf(p))
	if err != nil {
		return dst
	}
	for _, f := range d.PtrFields {
		u := c.e.Read(c.h.FieldAddr(p, f))
		child := c.strat.Ref(u)
		if child == 0 {
			continue
		}
		c.h.Store(c.h.FieldAddr(p, f), 0)
		// The dying link's whole remaining weight merges back in one update
		// (weight is always 1 under figure2).
		w := c.strat.Weight(u)
		c.st().destroys.Add(1)
		if w > 1 {
			c.st().extMerges.Add(1)
		}
		old := c.addToRC(obs.KindDestroy, child, -w)
		c.recordT(0, obs.KindDestroy, child, 0, old == uint64(w), 0, old, -w)
		if old == uint64(w) {
			dst = append(dst, child)
		}
	}
	return dst
}

// FreeObject implements reclaim.Env: it returns p's slot to the heap,
// counting frees and heap-rejected reclamations (double frees caused by
// corrupted counts).
func (c *RC) FreeObject(p mem.Ref) {
	if err := c.h.Free(p); err != nil {
		c.st().freeErrors.Add(1)
	} else {
		c.st().frees.Add(1)
	}
}

// LinkLoad implements reclaim.Env: it reads p's aux word, the cell backends
// link deferral lists through.
func (c *RC) LinkLoad(p mem.Ref) uint64 { return c.h.Load(c.h.AuxAddr(p)) }

// LinkStore implements reclaim.Env: it writes p's aux word.
func (c *RC) LinkStore(p mem.Ref, v uint64) { c.h.Store(c.h.AuxAddr(p), v) }

// DrainZombies finishes up to max deferred reclamations (0 = all),
// returning the number of objects actually freed, whatever the backend.
func (c *RC) DrainZombies(max int) int { return c.rec.Drain(max) }

// ZombieCount reports the number of objects currently parked for deferred
// reclamation (the backend's pending backlog).
func (c *RC) ZombieCount() int64 { return c.rec.Pending() }

// addToRC implements add_to_rc (Figure 2, lines 16–20): a CAS loop adding v
// to p's reference count and returning the count's previous value. It is
// safe only when the caller knows a counted reference to p exists (paper
// §5); NaiveLoad violates that precondition on purpose. Updates that find
// poison in the count cell — evidence of a use-after-free — are tallied in
// Stats().PoisonedRCUpdates and still performed, faithfully simulating the
// memory corruption the paper describes.
func (c *RC) addToRC(kind obs.Kind, p mem.Ref, v int64) uint64 {
	a := c.h.RCAddr(p)
	var retries uint32
	for {
		old := c.e.Read(a)
		if old >= mem.Poison && old <= mem.Poison+8 {
			c.st().poisonedRCUpdates.Add(1)
		}
		if c.fj.Inject(fault.CoreAddToRC) {
			retries++
			continue
		}
		if c.e.CAS(a, old, uint64(int64(old)+v)) {
			if retries > 0 {
				c.ct.OpDone(kind, uint32(a), contend.RoleRC, 0, contend.RoleUnknown, retries)
			}
			return old
		}
		retries++
		c.ct.Attempt(kind, uint32(a), contend.RoleRC, 0, contend.RoleUnknown, true, false)
	}
}

// recordT records one operation's flight event carrying its rc transition:
// the count before the update and the count after applying delta. A null ref
// carries no transition; counts are truncated to 32 bits (a poisoned count
// truncates to a distinctive 0xEF5C0DED).
func (c *RC) recordT(t0 int64, kind obs.Kind, ref mem.Ref, addr mem.Addr, ok bool, retries uint32, old uint64, delta int64) {
	var o, n uint32
	if ref != 0 {
		o, n = uint32(old), uint32(uint64(int64(old)+delta))
	}
	c.obs.RecordT(t0, kind, uint32(ref), uint32(addr), ok, retries, o, n)
}

// AttributeLinks assigns blame for a failed pointer-cell CAS/DCAS the way
// dcas.Attribute does, but over abstract pointer values: the two cells are
// re-read and decoded through the strategy before comparing, so split-
// strategy weight-stash churn is not mistaken for pointer motion. Structure
// packages attribute their own retry loops through it.
func (c *RC) AttributeLinks(a0, a1 mem.Addr, old0, old1 mem.Ref) (m0, m1 bool) {
	m0 = c.strat.Ref(c.e.Read(a0)) != old0
	if a1 != a0 {
		m1 = c.strat.Ref(c.e.Read(a1)) != old1
	}
	return m0, m1
}

// RCOf returns the current reference count of p (diagnostics only).
func (c *RC) RCOf(p mem.Ref) uint64 { return c.e.Read(c.h.RCAddr(p)) }

// WordLoad reads a non-pointer (scalar) cell through the engine. Scalar
// fields are outside the LFRC protocol but still share cells with DCAS
// traffic, so they must be read engine-aware.
func (c *RC) WordLoad(a mem.Addr) uint64 { return c.e.Read(a) }

// SnapshotRead reads the cell at a for a strictly read-only observer (the
// heap census). Unlike WordLoad it never goes through the engine: Engine.Read
// helps in-flight MCAS operations to completion, which mutates shared cells —
// exactly what an observer guaranteed to be side-effect-free must not do.
// Instead it takes a plain atomic load; if the value carries a descriptor tag
// (a software-MCAS operation is mid-flight through this cell) it backs off
// briefly and retries, and after a bounded number of attempts reports 0. The
// observer sees the edge as momentarily absent rather than dereferencing
// engine-internal descriptor state.
func (c *RC) SnapshotRead(a mem.Addr) uint64 {
	for i := 0; ; i++ {
		v := c.h.Load(a)
		if v&^mem.ValueMask == 0 {
			return v
		}
		if i >= 8 {
			return 0
		}
		runtime.Gosched()
	}
}

// WordStore writes a non-pointer (scalar) cell through the engine.
func (c *RC) WordStore(a mem.Addr, v uint64) { c.e.Write(a, v) }

// WordCAS compare-and-swaps a non-pointer (scalar) cell through the engine.
func (c *RC) WordCAS(a mem.Addr, old, new uint64) bool { return c.e.CAS(a, old, new) }

// opStripe is one stripe of the RC's atomic accounting, padded out to a
// cache-line multiple so neighbouring stripes never false-share.
type opStripe struct {
	allocs            atomic.Int64
	loads             atomic.Int64
	loadRetries       atomic.Int64
	stores            atomic.Int64
	copies            atomic.Int64
	casOps            atomic.Int64
	dcasOps           atomic.Int64
	destroys          atomic.Int64
	frees             atomic.Int64
	freeErrors        atomic.Int64
	poisonedRCUpdates atomic.Int64
	weightRefills     atomic.Int64
	extMerges         atomic.Int64
	_                 [24]byte
}

// Stats is a snapshot of LFRC operation counters.
type Stats struct {
	// Allocs counts NewObject calls; Frees counts objects reclaimed when
	// their count hit zero. FreeErrors counts reclamations the heap
	// rejected (double frees caused by corrupted counts).
	Allocs, Frees, FreeErrors int64

	// Loads, Stores, Copies, CASOps, DCASOps and Destroys count the
	// corresponding LFRC operations; LoadRetries counts DCAS failures
	// inside Load (contention on the pointer or its referent's count).
	Loads, LoadRetries, Stores, Copies, CASOps, DCASOps, Destroys int64

	// ZombiePushes counts objects parked for deferred reclamation (the
	// backend's park traffic, whatever the backend).
	ZombiePushes int64

	// PoisonedRCUpdates counts reference-count updates that found poison
	// in the count cell — each one is a use-after-free that DCAS-based
	// Load would have prevented.
	PoisonedRCUpdates int64

	// WeightRefills and ExtMerges are split-strategy traffic (always 0
	// under figure2): refills recharge a drained link weight stash via the
	// slow-path DCAS, merges fold a destroyed link's remaining stash back
	// into the internal count in one update.
	WeightRefills, ExtMerges int64
}

// Stats returns a snapshot of the RC's counters, summed across stripes.
func (c *RC) Stats() Stats {
	var s Stats
	for i := range c.stats {
		st := &c.stats[i]
		s.Allocs += st.allocs.Load()
		s.Frees += st.frees.Load()
		s.FreeErrors += st.freeErrors.Load()
		s.Loads += st.loads.Load()
		s.LoadRetries += st.loadRetries.Load()
		s.Stores += st.stores.Load()
		s.Copies += st.copies.Load()
		s.CASOps += st.casOps.Load()
		s.DCASOps += st.dcasOps.Load()
		s.Destroys += st.destroys.Load()
		s.PoisonedRCUpdates += st.poisonedRCUpdates.Load()
		s.WeightRefills += st.weightRefills.Load()
		s.ExtMerges += st.extMerges.Load()
	}
	s.ZombiePushes = c.rec.Stats().Parked
	return s
}
