package core

import (
	"runtime"
	"sync"
	"testing"

	"lfrc/internal/mem"
)

// TestLoadSurvivesConcurrentFree opens the Load race window
// deterministically: while a loader sits between reading (pointer, count)
// and its DCAS, the owner swings the shared pointer away and frees the old
// referent. The DCAS must fail (the pointer changed) and the retry must
// return the new referent — with zero poisoned count updates. This is the
// paper's §5 argument for DCAS, made executable.
func TestLoadSurvivesConcurrentFree(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			a := w.sharedPtr(t)
			p, _ := w.rc.NewObject(w.node)
			q, _ := w.rc.NewObject(w.node)
			w.rc.StoreAlloc(a, p)

			fired := false
			w.rc.LoadHook = func(v mem.Ref) {
				if fired || v != p {
					return
				}
				fired = true
				// Owner: replace p with q and drop p's last ref.
				w.rc.Store(a, q)
			}

			var dst mem.Ref
			w.rc.Load(a, &dst)
			w.rc.LoadHook = nil

			if !fired {
				t.Fatal("hook did not fire")
			}
			if !w.h.IsFreed(p) {
				t.Fatal("old referent not freed by owner")
			}
			if dst != q {
				t.Fatalf("Load returned %d, want the new referent %d", dst, q)
			}
			if got := w.rc.Stats().PoisonedRCUpdates; got != 0 {
				t.Errorf("PoisonedRCUpdates = %d, want 0: safe Load touched freed memory", got)
			}
			if got := w.h.Stats().Corruptions; got != 0 {
				t.Errorf("heap Corruptions = %d, want 0", got)
			}
			w.rc.Destroy(dst, q)
		})
	}
}

// TestNaiveLoadCorruptsFreedMemory opens the same window for the CAS-only
// protocol: the increment lands in a freed (poisoned) cell, which the RC
// tallies and the heap would surface as corruption on reuse.
func TestNaiveLoadCorruptsFreedMemory(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			a := w.sharedPtr(t)
			p, _ := w.rc.NewObject(w.node)
			q, _ := w.rc.NewObject(w.node)
			w.rc.StoreAlloc(a, p)

			fired := false
			w.rc.NaiveHook = func(v mem.Ref) {
				if fired || v != p {
					return
				}
				fired = true
				w.rc.Store(a, q) // frees p while the naive loader holds it
			}

			var dst mem.Ref
			w.rc.NaiveLoad(a, &dst)
			w.rc.NaiveHook = nil

			if !fired {
				t.Fatal("hook did not fire")
			}
			if got := w.rc.Stats().PoisonedRCUpdates; got == 0 {
				t.Error("naive CAS-only load did not touch freed memory; expected corruption")
			}
			w.rc.Destroy(dst, q)
		})
	}
}

// TestConcurrentLoadStoreChurn is the E1 workload in miniature: an owner
// continuously replaces the referent of a shared pointer (freeing the old
// one) while readers Load it. With the safe protocol there must be no
// corruption, no double frees, and no leaks.
func TestConcurrentLoadStoreChurn(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			a := w.sharedPtr(t)
			p, _ := w.rc.NewObject(w.node)
			w.rc.StoreAlloc(a, p)

			const (
				readers = 6
				rounds  = 3000
			)
			var wg sync.WaitGroup
			stop := make(chan struct{})
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					var dst mem.Ref
					for {
						select {
						case <-stop:
							w.rc.Destroy(dst)
							return
						default:
							w.rc.Load(a, &dst)
							if dst != 0 && w.h.IsFreed(dst) {
								t.Error("Load returned a freed object")
								w.rc.Destroy(dst)
								return
							}
						}
					}
				}()
			}
			for i := 0; i < rounds; i++ {
				n, err := w.rc.NewObject(w.node)
				if err != nil {
					t.Fatalf("NewObject: %v", err)
				}
				w.rc.StoreAlloc(a, n)
			}
			close(stop)
			wg.Wait()
			w.rc.Store(a, 0)

			s := w.rc.Stats()
			if s.PoisonedRCUpdates != 0 {
				t.Errorf("PoisonedRCUpdates = %d, want 0", s.PoisonedRCUpdates)
			}
			hs := w.h.Stats()
			if hs.Corruptions != 0 || hs.DoubleFrees != 0 {
				t.Errorf("Corruptions=%d DoubleFrees=%d, want 0/0", hs.Corruptions, hs.DoubleFrees)
			}
			// Only the holder object remains live.
			if hs.LiveObjects != 1 {
				t.Errorf("LiveObjects = %d, want 1 (the holder)", hs.LiveObjects)
			}
		})
	}
}

// TestConcurrentSharedCounterViaCopy stresses Copy/Destroy reference
// juggling across goroutines: every goroutine repeatedly copies a shared
// root into a local, then drops it; the root's count must return to exactly
// its resting value.
func TestConcurrentCopyDestroyBalance(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			root, _ := w.rc.NewObject(w.node)

			const workers, perW = 8, 2000
			var wg sync.WaitGroup
			for i := 0; i < workers; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					var local mem.Ref
					for j := 0; j < perW; j++ {
						w.rc.Copy(&local, root)
					}
					w.rc.Destroy(local)
				}()
			}
			wg.Wait()
			if got := w.rc.RCOf(root); got != 1 {
				t.Errorf("rc(root) = %d after balanced copy/destroy, want 1", got)
			}
			w.rc.Destroy(root)
			if got := w.h.Stats().LiveObjects; got != 0 {
				t.Errorf("LiveObjects = %d, want 0", got)
			}
		})
	}
}
