package core

import (
	"lfrc/internal/contend"
	"lfrc/internal/dcas"
	"lfrc/internal/fault"
	"lfrc/internal/mem"
	"lfrc/internal/obs"
)

// This file is the pluggable reference-count strategy seam. The paper's
// Figure 2 keeps one count per object and guards *every* Load with a DCAS on
// (pointer cell, count cell) — which is what makes rc words rank among the
// hottest DCAS failure sites in the contention observatory even at low
// parallelism: every reader of a popular cell serializes on the referent's
// count word.
//
// The seam splits the protocol into a codec over pointer-cell words plus the
// handful of decision points where the two strategies differ, so the
// operation shells in core.go stay shared:
//
//   - figure2: the paper-faithful baseline. A pointer cell holds the bare
//     ref; every reference (link or local) is worth exactly 1; Load is the
//     Figure-2 DCAS. Kept bit-for-bit identical to the pre-seam code so it
//     remains the ablation baseline.
//   - split: weighted reference counting. Each *link* (shared pointer cell)
//     carries an external count — a weight stash packed into the upper bits
//     of the pointer word — while the object's count word holds the total
//     outstanding weight. Load borrows one unit from the stash with a
//     single-word CAS on the pointer cell alone: the count word is untouched
//     on the read fast path, which is the hot spot this strategy exists to
//     kill. Only link creation/destruction (and the rare stash refill) touch
//     the count word, and stash destruction merges the remaining external
//     weight back with one add.
//
// The split invariant is the weighted-RC one: an object's count equals the
// sum of the weights of all references to it — packed link stashes plus
// weight-1 local refs. No premature free: a borrow succeeds only while the
// link exists (the CAS re-validates the pointer word), and the borrowed unit
// was already in the count. No leak: every unit borrowed or packed is
// eventually returned through Destroy or a merge. The §5 use-after-free
// window does not reopen: the fast path never touches the referent's memory
// at all, and the refill path uses the same DCAS shape as Figure-2 Load.

// StrategyKind selects a reference-count strategy at construction.
type StrategyKind int

const (
	// StrategyFigure2 is the paper's single-count protocol (the default).
	StrategyFigure2 StrategyKind = iota + 1
	// StrategySplit is the weighted external/internal split-count protocol.
	StrategySplit
)

// Split-strategy packing layout for pointer-cell words: the ref lives in the
// low 32 bits (mem.Ref is 32-bit), the link's weight stash in bits 32..61.
// Bit 61 is shared with structure-level scalar marks (e.g. the Snark claim
// bit), but those live in scalar cells — a disjoint cell population — and
// both stay inside mem.ValueMask, clear of the MCAS descriptor tag bits.
const (
	splitRefMask     = uint64(1)<<32 - 1
	splitWeightShift = 32
	splitMaxWeight   = int64(1)<<29 - 1

	// splitDefaultWeight is the stash installed on each new link and added
	// back on each refill. Large enough that refills are vanishingly rare
	// (one count-word DCAS per 2^16 loads of one link), small enough that
	// thousands of links to one object stay far from count overflow.
	splitDefaultWeight = int64(1) << 16
)

// Strategy is the reference-count protocol behind the LFRC operations. The
// operation shells in core.go (Store/StoreAlloc/CAS/DCAS/Destroy/...) are
// strategy-generic; a Strategy supplies the pointer-word codec, the credit
// discipline for links, and the two loops whose shape genuinely differs
// (Load, and the one-shot link swings).
//
// Word codec: pointer cells hold Pack(v)-encoded words; Ref and Weight
// decode them. Weight is the reference-count credit the cell's link carries
// (0 for null). Credits: LinkCredit is added to a referent's count before a
// new link to it is published; AllocCredit is the extra credit StoreAlloc
// must add beyond the weight-1 reference transferred from NewObject.
type Strategy interface {
	Name() string

	Ref(word uint64) mem.Ref
	Weight(word uint64) int64
	Pack(v mem.Ref) uint64

	LinkCredit() int64
	AllocCredit() int64

	// Load secures a weight-1 counted reference to the referent of the
	// pointer cell at a (or 0 if null), running the strategy's retry loop
	// with fault injection and contention attribution. It returns the
	// loaded ref, the pre-update value of whichever counter the strategy
	// touched, the delta applied to it (for the lifecycle rc-transition
	// event), and the retry count.
	Load(c *RC, a mem.Addr) (v mem.Ref, old uint64, delta int64, retries uint32)

	// Swing is one abstract CAS attempt on the pointer cell at a: replace
	// the link to old with a full-credit link to new iff the cell still
	// points at old. On success it returns the displaced word (whose weight
	// the caller must release). Weight-only churn from concurrent borrows
	// is absorbed internally — Swing fails only when the *pointer* moved,
	// so callers keep Figure-2 CAS semantics.
	Swing(c *RC, a mem.Addr, old, new mem.Ref) (displaced uint64, ok bool)

	// SwingPair is Swing over two pointer cells at once (LFRCDCAS).
	SwingPair(c *RC, a0, a1 mem.Addr, old0, old1, new0, new1 mem.Ref) (d0, d1 uint64, ok bool)

	// SwingMixed is Swing where a0 is a pointer cell and a1 a scalar cell
	// outside the counting protocol (DCASMixed; see llsc.go).
	SwingMixed(c *RC, a0 mem.Addr, old0, new0 mem.Ref, a1 mem.Addr, old1, new1 uint64) (d0 uint64, ok bool)

	// FailRole attributes one failed blind-store CAS that read word u from
	// cell a: the role of what most likely moved it (pointer churn vs
	// weight-stash noise from concurrent borrows).
	FailRole(c *RC, a mem.Addr, u uint64) contend.Role
}

// strategyFor builds the Strategy for a kind, clamping split weights into
// the packable range.
func strategyFor(k StrategyKind, link, refill int64) Strategy {
	if k == StrategySplit {
		clamp := func(w int64) int64 {
			if w < 1 {
				return splitDefaultWeight
			}
			if w > splitMaxWeight {
				return splitMaxWeight
			}
			return w
		}
		return &splitStrategy{link: clamp(link), refill: clamp(refill)}
	}
	return figure2Strategy{}
}

// figure2Strategy is the paper's protocol: bare refs in pointer cells, every
// reference worth 1, Load guarded by the Figure-2 DCAS.
type figure2Strategy struct{}

func (figure2Strategy) Name() string            { return "figure2" }
func (figure2Strategy) Ref(w uint64) mem.Ref    { return mem.Ref(w) }
func (figure2Strategy) Pack(v mem.Ref) uint64   { return uint64(v) }
func (figure2Strategy) LinkCredit() int64       { return 1 }
func (figure2Strategy) AllocCredit() int64      { return 0 }
func (figure2Strategy) Weight(w uint64) int64 {
	if w == 0 {
		return 0
	}
	return 1
}

// Load implements LFRCLoad (paper Figure 2, lines 1–12): the pointer is
// loaded and the referent's count incremented atomically — via DCAS — with
// the check that the pointer still exists.
func (figure2Strategy) Load(c *RC, a mem.Addr) (mem.Ref, uint64, int64, uint32) {
	var retries uint32
	for {
		v := mem.Ref(c.e.Read(a))
		if v == 0 {
			c.loadDone(a, 0, retries)
			return 0, 0, 1, retries
		}
		r := c.e.Read(c.h.RCAddr(v))
		if c.LoadHook != nil {
			c.LoadHook(v)
		}
		// An injected firing here lands in the paper's §5 window — between
		// reading (v, rc) and the DCAS — and forces the retry path.
		if c.fj.Inject(fault.CoreLoad) {
			retries++
			c.st().loadRetries.Add(1)
			continue
		}
		if c.e.DCAS(a, c.h.RCAddr(v), uint64(v), r, uint64(v), r+1) {
			c.loadDone(a, v, retries)
			return v, r, 1, retries
		}
		retries++
		c.st().loadRetries.Add(1)
		if c.ct != nil {
			m0, m1 := dcas.Attribute(c.e, a, c.h.RCAddr(v), uint64(v), r)
			c.ct.Attempt(obs.KindLoad, uint32(a), contend.RolePointer,
				uint32(c.h.RCAddr(v)), contend.RoleRC, m0, m1)
		}
	}
}

// loadDone reports a contended Load's retry chain once it completes.
func (c *RC) loadDone(a mem.Addr, v mem.Ref, retries uint32) {
	if retries == 0 {
		return
	}
	var rcA uint32
	if v != 0 {
		rcA = uint32(c.h.RCAddr(v))
	}
	c.ct.OpDone(obs.KindLoad, uint32(a), contend.RolePointer, rcA, contend.RoleRC, retries)
}

func (figure2Strategy) Swing(c *RC, a mem.Addr, old, new mem.Ref) (uint64, bool) {
	if c.e.CAS(a, uint64(old), uint64(new)) {
		return uint64(old), true
	}
	return 0, false
}

func (figure2Strategy) SwingPair(c *RC, a0, a1 mem.Addr, old0, old1, new0, new1 mem.Ref) (uint64, uint64, bool) {
	if c.e.DCAS(a0, a1, uint64(old0), uint64(old1), uint64(new0), uint64(new1)) {
		return uint64(old0), uint64(old1), true
	}
	return 0, 0, false
}

func (figure2Strategy) SwingMixed(c *RC, a0 mem.Addr, old0, new0 mem.Ref, a1 mem.Addr, old1, new1 uint64) (uint64, bool) {
	if c.e.DCAS(a0, a1, uint64(old0), old1, uint64(new0), new1) {
		return uint64(old0), true
	}
	return 0, false
}

func (figure2Strategy) FailRole(*RC, mem.Addr, uint64) contend.Role { return contend.RolePointer }

// splitStrategy is weighted reference counting: links carry a packed weight
// stash, the count word holds total outstanding weight, and Load borrows
// from the stash with a single-word CAS.
type splitStrategy struct {
	link   int64 // stash installed on each new link
	refill int64 // weight added when a drained stash is recharged
}

func (s *splitStrategy) Name() string { return "split" }

func (s *splitStrategy) Ref(w uint64) mem.Ref { return mem.Ref(w & splitRefMask) }

func (s *splitStrategy) Weight(w uint64) int64 {
	if w&splitRefMask == 0 {
		return 0
	}
	// A correctly published link always carries ≥1; treat a bare-ref word
	// (weight bits zero) as a weight-1 link so a stray legacy word cannot
	// make a release vanish.
	if wt := int64(w >> splitWeightShift); wt > 0 {
		return wt
	}
	return 1
}

func (s *splitStrategy) pack(v mem.Ref, w int64) uint64 {
	if v == 0 {
		return 0
	}
	return uint64(v) | uint64(w)<<splitWeightShift
}

func (s *splitStrategy) Pack(v mem.Ref) uint64 { return s.pack(v, s.link) }

func (s *splitStrategy) LinkCredit() int64  { return s.link }
func (s *splitStrategy) AllocCredit() int64 { return s.link - 1 }

// Load borrows one weight unit from the link's stash. Fast path: a single
// CAS on the pointer cell decrements the packed weight — the referent's
// count word is never read or written, so rc cells stay cold under read
// traffic. When the stash is down to its last unit, the slow path recharges
// it with a Figure-2-shaped DCAS on (pointer cell, count word), adding
// refill units to both sides at once; the stash therefore never reaches 0,
// which keeps "link exists ⇒ stash ≥ 1 ⇒ count ≥ 1" — no premature free.
func (s *splitStrategy) Load(c *RC, a mem.Addr) (mem.Ref, uint64, int64, uint32) {
	var retries uint32
	for {
		u := c.e.Read(a)
		v := mem.Ref(u & splitRefMask)
		if v == 0 {
			c.loadDone(a, 0, retries)
			return 0, 0, 1, retries
		}
		if c.LoadHook != nil {
			c.LoadHook(v)
		}
		if c.fj.Inject(fault.CoreLoad) {
			retries++
			c.st().loadRetries.Add(1)
			continue
		}
		if w := int64(u >> splitWeightShift); w > 1 {
			if c.e.CAS(a, u, u-(1<<splitWeightShift)) {
				c.loadDone(a, v, retries)
				return v, uint64(w), -1, retries
			}
		} else {
			r := c.e.Read(c.h.RCAddr(v))
			if c.e.DCAS(a, c.h.RCAddr(v), u, r, s.pack(v, s.refill), r+uint64(s.refill)) {
				c.st().weightRefills.Add(1)
				c.loadDone(a, v, retries)
				return v, r, s.refill, retries
			}
		}
		retries++
		c.st().loadRetries.Add(1)
		if c.ct != nil {
			// Attribute the lost race: if the pointer itself moved this is
			// ordinary pointer churn; if only the weight bits changed, the
			// contender was another borrower — the split strategy's own
			// external-count traffic, tagged rc_ext so the heatmap can
			// distinguish it from the figure2 rc hot spot.
			role := contend.RoleRCExt
			if mem.Ref(c.e.Read(a)&splitRefMask) != v {
				role = contend.RolePointer
			}
			c.ct.Attempt(obs.KindLoad, uint32(a), role, 0, contend.RoleUnknown, true, false)
		}
	}
}

// Swing retries internally while only the weight bits of the cell churn
// (concurrent borrows): the abstract pointer value is unchanged, so failing
// the caller's CAS would break Figure-2 semantics over refs. It reports
// failure only when the pointer itself no longer equals old.
func (s *splitStrategy) Swing(c *RC, a mem.Addr, old, new mem.Ref) (uint64, bool) {
	nw := s.Pack(new)
	for {
		u := c.e.Read(a)
		if mem.Ref(u&splitRefMask) != old {
			return 0, false
		}
		if c.e.CAS(a, u, nw) {
			return u, true
		}
	}
}

func (s *splitStrategy) SwingPair(c *RC, a0, a1 mem.Addr, old0, old1, new0, new1 mem.Ref) (uint64, uint64, bool) {
	n0, n1 := s.Pack(new0), s.Pack(new1)
	for {
		u0 := c.e.Read(a0)
		if mem.Ref(u0&splitRefMask) != old0 {
			return 0, 0, false
		}
		u1 := c.e.Read(a1)
		if mem.Ref(u1&splitRefMask) != old1 {
			return 0, 0, false
		}
		if c.e.DCAS(a0, a1, u0, u1, n0, n1) {
			return u0, u1, true
		}
	}
}

func (s *splitStrategy) SwingMixed(c *RC, a0 mem.Addr, old0, new0 mem.Ref, a1 mem.Addr, old1, new1 uint64) (uint64, bool) {
	n0 := s.Pack(new0)
	for {
		u0 := c.e.Read(a0)
		if mem.Ref(u0&splitRefMask) != old0 {
			return 0, false
		}
		if c.e.Read(a1) != old1 {
			return 0, false
		}
		if c.e.DCAS(a0, a1, u0, old1, n0, new1) {
			return u0, true
		}
	}
}

func (s *splitStrategy) FailRole(c *RC, a mem.Addr, u uint64) contend.Role {
	if c.e.Read(a)&splitRefMask != u&splitRefMask {
		return contend.RolePointer
	}
	return contend.RoleRCExt
}
