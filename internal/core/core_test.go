package core

import (
	"testing"

	"lfrc/internal/dcas"
	"lfrc/internal/mem"
)

// world bundles a heap, engine and RC plus a couple of registered types.
type world struct {
	h    *mem.Heap
	rc   *RC
	node mem.TypeID // 2 pointer fields + 1 scalar
	cell mem.TypeID // 1 pointer field (a shared pointer variable holder)
}

// worldFactories builds test worlds over each engine.
func worldFactories() map[string]func(t *testing.T, opts ...Option) *world {
	mk := func(engine func(h *mem.Heap) dcas.Engine) func(t *testing.T, opts ...Option) *world {
		return func(t *testing.T, opts ...Option) *world {
			t.Helper()
			h := mem.NewHeap()
			w := &world{
				h:    h,
				rc:   New(h, engine(h), opts...),
				node: h.MustRegisterType(mem.TypeDesc{Name: "node", NumFields: 3, PtrFields: []int{0, 1}}),
				cell: h.MustRegisterType(mem.TypeDesc{Name: "cell", NumFields: 1, PtrFields: []int{0}}),
			}
			return w
		}
	}
	return map[string]func(t *testing.T, opts ...Option) *world{
		"locking": mk(func(h *mem.Heap) dcas.Engine { return dcas.NewLocking(h) }),
		"mcas":    mk(func(h *mem.Heap) dcas.Engine { return dcas.NewMCAS(h) }),
	}
}

// sharedPtr allocates a holder object and returns the address of its single
// pointer field, pinning the holder itself alive.
func (w *world) sharedPtr(t *testing.T) mem.Addr {
	t.Helper()
	holder, err := w.rc.NewObject(w.cell)
	if err != nil {
		t.Fatalf("NewObject: %v", err)
	}
	return w.h.FieldAddr(holder, 0)
}

func TestNewObjectStartsAtRCOne(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			p, err := w.rc.NewObject(w.node)
			if err != nil {
				t.Fatalf("NewObject: %v", err)
			}
			if got := w.rc.RCOf(p); got != 1 {
				t.Errorf("fresh rc = %d, want 1", got)
			}
		})
	}
}

func TestDestroyLastReferenceFrees(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			before := w.h.Stats().LiveObjects
			p, _ := w.rc.NewObject(w.node)
			w.rc.Destroy(p)
			if got := w.h.Stats().LiveObjects; got != before {
				t.Errorf("LiveObjects = %d, want %d", got, before)
			}
			if !w.h.IsFreed(p) {
				t.Error("object not freed after last Destroy")
			}
		})
	}
}

func TestDestroyNullIsNoOp(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			w.rc.Destroy(0, 0, 0) // must not panic or count frees
			if got := w.rc.Stats().Frees; got != 0 {
				t.Errorf("Frees = %d, want 0", got)
			}
		})
	}
}

func TestStoreIncrementsAndReleases(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			a := w.sharedPtr(t)
			p, _ := w.rc.NewObject(w.node)
			q, _ := w.rc.NewObject(w.node)

			w.rc.Store(a, p)
			if got := w.rc.RCOf(p); got != 2 {
				t.Errorf("after Store, rc(p) = %d, want 2 (local + cell)", got)
			}

			// Overwriting releases the old referent.
			w.rc.Store(a, q)
			if got := w.rc.RCOf(p); got != 1 {
				t.Errorf("after overwrite, rc(p) = %d, want 1", got)
			}
			if got := w.rc.RCOf(q); got != 2 {
				t.Errorf("after overwrite, rc(q) = %d, want 2", got)
			}

			// Storing null releases q's cell reference.
			w.rc.Store(a, 0)
			if got := w.rc.RCOf(q); got != 1 {
				t.Errorf("after null Store, rc(q) = %d, want 1", got)
			}
			w.rc.Destroy(p, q)
		})
	}
}

func TestStoreAllocTransfersReference(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			a := w.sharedPtr(t)
			p, _ := w.rc.NewObject(w.node)

			w.rc.StoreAlloc(a, p)
			if got := w.rc.RCOf(p); got != 1 {
				t.Errorf("after StoreAlloc, rc = %d, want 1 (transferred)", got)
			}
			// The cell's reference is the only one; clearing it frees p.
			w.rc.Store(a, 0)
			if !w.h.IsFreed(p) {
				t.Error("object not freed after its only reference was cleared")
			}
		})
	}
}

func TestLoadIncrementsReferent(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			a := w.sharedPtr(t)
			p, _ := w.rc.NewObject(w.node)
			w.rc.StoreAlloc(a, p)

			var dst mem.Ref
			w.rc.Load(a, &dst)
			if dst != p {
				t.Fatalf("Load read %d, want %d", dst, p)
			}
			if got := w.rc.RCOf(p); got != 2 {
				t.Errorf("after Load, rc = %d, want 2", got)
			}

			// Loading again into the same variable releases the old
			// value and re-acquires: rc stays 2.
			w.rc.Load(a, &dst)
			if got := w.rc.RCOf(p); got != 2 {
				t.Errorf("after re-Load, rc = %d, want 2", got)
			}
			w.rc.Destroy(dst)
		})
	}
}

func TestLoadNullReleasesOldDest(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			a := w.sharedPtr(t) // holds null
			p, _ := w.rc.NewObject(w.node)

			dst := p // dest variable currently references p
			w.rc.Load(a, &dst)
			if dst != 0 {
				t.Fatalf("Load of null cell gave %d, want 0", dst)
			}
			if !w.h.IsFreed(p) {
				t.Error("old dest reference not released by Load")
			}
		})
	}
}

func TestCopySemantics(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			p, _ := w.rc.NewObject(w.node)
			q, _ := w.rc.NewObject(w.node)

			x := p // x owns a reference to p
			w.rc.Copy(&x, q)
			if x != q {
				t.Fatalf("Copy set x = %d, want %d", x, q)
			}
			if !w.h.IsFreed(p) {
				t.Error("Copy did not release the overwritten reference")
			}
			if got := w.rc.RCOf(q); got != 2 {
				t.Errorf("rc(q) = %d, want 2", got)
			}
			w.rc.Destroy(x, q)
		})
	}
}

func TestCASSuccessAndFailureAccounting(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			a := w.sharedPtr(t)
			p, _ := w.rc.NewObject(w.node)
			q, _ := w.rc.NewObject(w.node)
			w.rc.StoreAlloc(a, p)

			// Failing CAS must compensate its provisional increment.
			if w.rc.CAS(a, q, q) {
				t.Fatal("CAS with wrong old succeeded")
			}
			if got := w.rc.RCOf(q); got != 1 {
				t.Errorf("after failed CAS, rc(q) = %d, want 1", got)
			}

			// Successful CAS releases the displaced pointer.
			if !w.rc.CAS(a, p, q) {
				t.Fatal("CAS with right old failed")
			}
			if !w.h.IsFreed(p) {
				t.Error("successful CAS did not release the displaced reference")
			}
			if got := w.rc.RCOf(q); got != 2 {
				t.Errorf("after successful CAS, rc(q) = %d, want 2", got)
			}
			w.rc.Destroy(q)
		})
	}
}

func TestDCASSuccessAndFailureAccounting(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			a0 := w.sharedPtr(t)
			a1 := w.sharedPtr(t)
			p, _ := w.rc.NewObject(w.node)
			q, _ := w.rc.NewObject(w.node)
			n, _ := w.rc.NewObject(w.node)
			w.rc.StoreAlloc(a0, p)
			w.rc.StoreAlloc(a1, q)

			// Failure: both provisional increments compensated.
			if w.rc.DCAS(a0, a1, p, p /* wrong */, n, n) {
				t.Fatal("DCAS with wrong olds succeeded")
			}
			if got := w.rc.RCOf(n); got != 1 {
				t.Errorf("after failed DCAS, rc(n) = %d, want 1", got)
			}

			// Success: both displaced pointers released, both new
			// pointers counted.
			if !w.rc.DCAS(a0, a1, p, q, n, n) {
				t.Fatal("DCAS with right olds failed")
			}
			if !w.h.IsFreed(p) || !w.h.IsFreed(q) {
				t.Error("successful DCAS did not release displaced references")
			}
			if got := w.rc.RCOf(n); got != 3 {
				t.Errorf("after successful DCAS, rc(n) = %d, want 3 (local + 2 cells)", got)
			}
			w.rc.Destroy(n)
		})
	}
}

func TestDestroyCascadesThroughChain(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			const n = 10_000
			// Build a chain head -> ... -> tail through field 0.
			var head mem.Ref
			for i := 0; i < n; i++ {
				p, err := w.rc.NewObject(w.node)
				if err != nil {
					t.Fatalf("NewObject: %v", err)
				}
				w.rc.StoreAlloc(w.h.FieldAddr(p, 0), head)
				head = p
			}
			if got := w.h.Stats().LiveObjects; got != n+0 {
				// The chain holders are the only allocations here.
				t.Fatalf("LiveObjects = %d, want %d", got, n)
			}
			w.rc.Destroy(head)
			if got := w.h.Stats().LiveObjects; got != 0 {
				t.Errorf("after cascade, LiveObjects = %d, want 0", got)
			}
		})
	}
}

func TestDestroyDiamondSharing(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			child, _ := w.rc.NewObject(w.node)
			left, _ := w.rc.NewObject(w.node)
			right, _ := w.rc.NewObject(w.node)
			w.rc.Store(w.h.FieldAddr(left, 0), child)
			w.rc.Store(w.h.FieldAddr(right, 0), child)
			w.rc.Destroy(child) // drop our local ref; parents keep it alive

			w.rc.Destroy(left)
			if w.h.IsFreed(child) {
				t.Fatal("shared child freed while one parent remains")
			}
			w.rc.Destroy(right)
			if !w.h.IsFreed(child) {
				t.Error("shared child not freed after both parents died")
			}
		})
	}
}

func TestCyclicGarbageLeaksByDesign(t *testing.T) {
	// The paper's Cycle-Free Garbage criterion (§2.1/§3 step 3): reference
	// counts in a garbage cycle stay non-zero forever, so LFRC alone never
	// reclaims it. This test pins that documented behaviour; package
	// gctrace provides the §7 backup collector.
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			a, _ := w.rc.NewObject(w.node)
			b, _ := w.rc.NewObject(w.node)
			w.rc.Store(w.h.FieldAddr(a, 0), b)
			w.rc.Store(w.h.FieldAddr(b, 0), a)
			w.rc.Destroy(a, b)

			if w.h.IsFreed(a) || w.h.IsFreed(b) {
				t.Fatal("cycle member freed; refcounting should not reclaim cycles")
			}
			if got := w.h.Stats().LiveObjects; got != 2 {
				t.Errorf("LiveObjects = %d, want 2 leaked cycle members", got)
			}
		})
	}
}

func TestWordOps(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			p, _ := w.rc.NewObject(w.node)
			a := w.h.FieldAddr(p, 2) // scalar field

			w.rc.WordStore(a, 77)
			if got := w.rc.WordLoad(a); got != 77 {
				t.Errorf("WordLoad = %d, want 77", got)
			}
			if w.rc.WordCAS(a, 76, 78) {
				t.Error("WordCAS succeeded with wrong old")
			}
			if !w.rc.WordCAS(a, 77, 78) {
				t.Error("WordCAS failed with right old")
			}
			w.rc.Destroy(p)
		})
	}
}

func TestStatsCounting(t *testing.T) {
	for name, mk := range worldFactories() {
		t.Run(name, func(t *testing.T) {
			w := mk(t)
			a := w.sharedPtr(t)
			p, _ := w.rc.NewObject(w.node)
			w.rc.Store(a, p)
			var dst mem.Ref
			w.rc.Load(a, &dst)
			w.rc.Destroy(dst, p)
			w.rc.Store(a, 0)

			s := w.rc.Stats()
			if s.Allocs != 2 { // holder + p
				t.Errorf("Allocs = %d, want 2", s.Allocs)
			}
			if s.Loads != 1 {
				t.Errorf("Loads = %d, want 1", s.Loads)
			}
			if s.Stores != 2 {
				t.Errorf("Stores = %d, want 2", s.Stores)
			}
			if s.Frees != 1 { // p freed; holder still referenced locally
				t.Errorf("Frees = %d, want 1", s.Frees)
			}
			if s.PoisonedRCUpdates != 0 {
				t.Errorf("PoisonedRCUpdates = %d, want 0", s.PoisonedRCUpdates)
			}
		})
	}
}
