package core

import (
	"lfrc/internal/fault"
	"lfrc/internal/mem"
	"lfrc/internal/obs"
)

// This file implements the extension the paper's §2.1 invites: "it should
// be straightforward to extend our methodology to support other operations
// such as load-linked and store-conditional", plus a mixed pointer/scalar
// DCAS that structures like the DCAS-based sorted list (package dlist) need.
//
// LL/SC emulated over CAS is normally unsound because of ABA: the location
// may change and change back between the LL and the SC. Under LFRC that
// cannot happen for pointer cells — the LL holds a counted reference to the
// linked object, so the object cannot be freed and its address cannot be
// recycled while the link is live. CAS against the linked value is therefore
// a faithful SC. (This is the same observation that makes LFRCCAS safe, §1.)

// Link is an outstanding load-link: the location, the pointer value
// observed, and the counted reference that pins it. A Link must be ended by
// exactly one of StoreConditional or Unlink.
type Link struct {
	addr  mem.Addr
	value mem.Ref
	live  bool
}

// Value returns the pointer value the LL observed.
func (l *Link) Value() mem.Ref { return l.value }

// LoadLinked performs LFRCLoadLinked on the pointer cell at a: it loads the
// pointer, takes a counted reference to its referent (via the same DCAS
// protocol as Load), and records the link for a later StoreConditional.
func (rc *RC) LoadLinked(a mem.Addr) Link {
	var dst mem.Ref
	rc.Load(a, &dst)
	return Link{addr: a, value: dst, live: true}
}

// StoreConditional performs LFRCStoreConditional: it installs v in the
// linked cell if and only if the cell still holds the linked value. Whether
// or not it succeeds, the link is consumed. The reference-count discipline
// matches LFRCCAS: v's count is raised before the attempt and compensated on
// failure; on success the displaced pointer's count is dropped.
func (rc *RC) StoreConditional(l *Link, v mem.Ref) bool {
	if !l.live {
		return false
	}
	ok := rc.CAS(l.addr, l.value, v)
	rc.Destroy(l.value)
	l.live = false
	l.value = 0
	return ok
}

// Unlink abandons an outstanding link, releasing the reference it pinned.
func (rc *RC) Unlink(l *Link) {
	if !l.live {
		return
	}
	rc.Destroy(l.value)
	l.live = false
	l.value = 0
}

// DCASMixed is LFRCDCAS where location a0 is a pointer cell (participating
// in reference counting) and location a1 is a scalar cell (outside the
// counting protocol, e.g. a deletion mark). It atomically compares both and
// swaps both, maintaining counts only for the pointer side. The scalar
// values must fit mem.ValueMask.
//
// The paper's operation set does not include mixed DCAS; it is the natural
// generalization its §2.1 anticipates, and the DCAS-based sorted list
// (package dlist) is its client.
func (rc *RC) DCASMixed(a0 mem.Addr, old0, new0 mem.Ref, a1 mem.Addr, old1, new1 uint64) bool {
	lc := rc.strat.LinkCredit()
	if new0 != 0 {
		rc.addToRC(obs.KindDCAS, new0, lc)
	}
	rc.st().dcasOps.Add(1)
	if !rc.fj.Inject(fault.CoreDCAS) {
		if d0, ok := rc.strat.SwingMixed(rc, a0, old0, new0, a1, old1, new1); ok {
			rc.releaseWord(d0)
			return true
		}
	}
	rc.releaseWeight(new0, lc)
	return false
}
